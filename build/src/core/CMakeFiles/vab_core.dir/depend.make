# Empty dependencies file for vab_core.
# This may be replaced when dependencies are built.
