file(REMOVE_RECURSE
  "CMakeFiles/vab_core.dir/energy.cpp.o"
  "CMakeFiles/vab_core.dir/energy.cpp.o.d"
  "CMakeFiles/vab_core.dir/fieldtrial.cpp.o"
  "CMakeFiles/vab_core.dir/fieldtrial.cpp.o.d"
  "CMakeFiles/vab_core.dir/node.cpp.o"
  "CMakeFiles/vab_core.dir/node.cpp.o.d"
  "CMakeFiles/vab_core.dir/reader.cpp.o"
  "CMakeFiles/vab_core.dir/reader.cpp.o.d"
  "CMakeFiles/vab_core.dir/system.cpp.o"
  "CMakeFiles/vab_core.dir/system.cpp.o.d"
  "libvab_core.a"
  "libvab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
