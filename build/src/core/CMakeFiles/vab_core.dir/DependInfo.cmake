
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/vab_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/vab_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/fieldtrial.cpp" "src/core/CMakeFiles/vab_core.dir/fieldtrial.cpp.o" "gcc" "src/core/CMakeFiles/vab_core.dir/fieldtrial.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/vab_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/vab_core.dir/node.cpp.o.d"
  "/root/repo/src/core/reader.cpp" "src/core/CMakeFiles/vab_core.dir/reader.cpp.o" "gcc" "src/core/CMakeFiles/vab_core.dir/reader.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/vab_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/vab_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vab_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/vab_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/piezo/CMakeFiles/vab_piezo.dir/DependInfo.cmake"
  "/root/repo/build/src/vanatta/CMakeFiles/vab_vanatta.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/vab_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vab_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
