file(REMOVE_RECURSE
  "libvab_core.a"
)
