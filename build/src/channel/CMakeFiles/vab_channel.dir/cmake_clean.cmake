file(REMOVE_RECURSE
  "CMakeFiles/vab_channel.dir/absorption.cpp.o"
  "CMakeFiles/vab_channel.dir/absorption.cpp.o.d"
  "CMakeFiles/vab_channel.dir/multipath.cpp.o"
  "CMakeFiles/vab_channel.dir/multipath.cpp.o.d"
  "CMakeFiles/vab_channel.dir/noise.cpp.o"
  "CMakeFiles/vab_channel.dir/noise.cpp.o.d"
  "CMakeFiles/vab_channel.dir/raytrace.cpp.o"
  "CMakeFiles/vab_channel.dir/raytrace.cpp.o.d"
  "CMakeFiles/vab_channel.dir/soundspeed.cpp.o"
  "CMakeFiles/vab_channel.dir/soundspeed.cpp.o.d"
  "CMakeFiles/vab_channel.dir/spreading.cpp.o"
  "CMakeFiles/vab_channel.dir/spreading.cpp.o.d"
  "CMakeFiles/vab_channel.dir/waveform_channel.cpp.o"
  "CMakeFiles/vab_channel.dir/waveform_channel.cpp.o.d"
  "libvab_channel.a"
  "libvab_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
