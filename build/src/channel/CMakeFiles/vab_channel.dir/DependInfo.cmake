
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/absorption.cpp" "src/channel/CMakeFiles/vab_channel.dir/absorption.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/absorption.cpp.o.d"
  "/root/repo/src/channel/multipath.cpp" "src/channel/CMakeFiles/vab_channel.dir/multipath.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/multipath.cpp.o.d"
  "/root/repo/src/channel/noise.cpp" "src/channel/CMakeFiles/vab_channel.dir/noise.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/noise.cpp.o.d"
  "/root/repo/src/channel/raytrace.cpp" "src/channel/CMakeFiles/vab_channel.dir/raytrace.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/raytrace.cpp.o.d"
  "/root/repo/src/channel/soundspeed.cpp" "src/channel/CMakeFiles/vab_channel.dir/soundspeed.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/soundspeed.cpp.o.d"
  "/root/repo/src/channel/spreading.cpp" "src/channel/CMakeFiles/vab_channel.dir/spreading.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/spreading.cpp.o.d"
  "/root/repo/src/channel/waveform_channel.cpp" "src/channel/CMakeFiles/vab_channel.dir/waveform_channel.cpp.o" "gcc" "src/channel/CMakeFiles/vab_channel.dir/waveform_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vab_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
