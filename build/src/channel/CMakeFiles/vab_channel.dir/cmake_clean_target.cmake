file(REMOVE_RECURSE
  "libvab_channel.a"
)
