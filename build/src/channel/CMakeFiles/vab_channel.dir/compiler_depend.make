# Empty compiler generated dependencies file for vab_channel.
# This may be replaced when dependencies are built.
