file(REMOVE_RECURSE
  "CMakeFiles/vab_piezo.dir/bvd.cpp.o"
  "CMakeFiles/vab_piezo.dir/bvd.cpp.o.d"
  "CMakeFiles/vab_piezo.dir/harvester.cpp.o"
  "CMakeFiles/vab_piezo.dir/harvester.cpp.o.d"
  "CMakeFiles/vab_piezo.dir/matching.cpp.o"
  "CMakeFiles/vab_piezo.dir/matching.cpp.o.d"
  "CMakeFiles/vab_piezo.dir/modulator.cpp.o"
  "CMakeFiles/vab_piezo.dir/modulator.cpp.o.d"
  "CMakeFiles/vab_piezo.dir/network.cpp.o"
  "CMakeFiles/vab_piezo.dir/network.cpp.o.d"
  "libvab_piezo.a"
  "libvab_piezo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_piezo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
