# Empty compiler generated dependencies file for vab_piezo.
# This may be replaced when dependencies are built.
