file(REMOVE_RECURSE
  "libvab_piezo.a"
)
