
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/piezo/bvd.cpp" "src/piezo/CMakeFiles/vab_piezo.dir/bvd.cpp.o" "gcc" "src/piezo/CMakeFiles/vab_piezo.dir/bvd.cpp.o.d"
  "/root/repo/src/piezo/harvester.cpp" "src/piezo/CMakeFiles/vab_piezo.dir/harvester.cpp.o" "gcc" "src/piezo/CMakeFiles/vab_piezo.dir/harvester.cpp.o.d"
  "/root/repo/src/piezo/matching.cpp" "src/piezo/CMakeFiles/vab_piezo.dir/matching.cpp.o" "gcc" "src/piezo/CMakeFiles/vab_piezo.dir/matching.cpp.o.d"
  "/root/repo/src/piezo/modulator.cpp" "src/piezo/CMakeFiles/vab_piezo.dir/modulator.cpp.o" "gcc" "src/piezo/CMakeFiles/vab_piezo.dir/modulator.cpp.o.d"
  "/root/repo/src/piezo/network.cpp" "src/piezo/CMakeFiles/vab_piezo.dir/network.cpp.o" "gcc" "src/piezo/CMakeFiles/vab_piezo.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
