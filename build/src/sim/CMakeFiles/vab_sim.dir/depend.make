# Empty dependencies file for vab_sim.
# This may be replaced when dependencies are built.
