file(REMOVE_RECURSE
  "CMakeFiles/vab_sim.dir/linkbudget.cpp.o"
  "CMakeFiles/vab_sim.dir/linkbudget.cpp.o.d"
  "CMakeFiles/vab_sim.dir/montecarlo.cpp.o"
  "CMakeFiles/vab_sim.dir/montecarlo.cpp.o.d"
  "CMakeFiles/vab_sim.dir/scenario.cpp.o"
  "CMakeFiles/vab_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/vab_sim.dir/waveform_sim.cpp.o"
  "CMakeFiles/vab_sim.dir/waveform_sim.cpp.o.d"
  "libvab_sim.a"
  "libvab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
