file(REMOVE_RECURSE
  "libvab_sim.a"
)
