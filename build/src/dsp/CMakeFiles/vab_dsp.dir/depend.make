# Empty dependencies file for vab_dsp.
# This may be replaced when dependencies are built.
