file(REMOVE_RECURSE
  "CMakeFiles/vab_dsp.dir/agc.cpp.o"
  "CMakeFiles/vab_dsp.dir/agc.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/correlate.cpp.o"
  "CMakeFiles/vab_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/fft.cpp.o"
  "CMakeFiles/vab_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/fir.cpp.o"
  "CMakeFiles/vab_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/vab_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/iir.cpp.o"
  "CMakeFiles/vab_dsp.dir/iir.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/lms.cpp.o"
  "CMakeFiles/vab_dsp.dir/lms.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/mixer.cpp.o"
  "CMakeFiles/vab_dsp.dir/mixer.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/resample.cpp.o"
  "CMakeFiles/vab_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/vab_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/vab_dsp.dir/window.cpp.o"
  "CMakeFiles/vab_dsp.dir/window.cpp.o.d"
  "libvab_dsp.a"
  "libvab_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
