file(REMOVE_RECURSE
  "libvab_dsp.a"
)
