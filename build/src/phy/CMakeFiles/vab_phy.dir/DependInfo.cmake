
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/ber.cpp" "src/phy/CMakeFiles/vab_phy.dir/ber.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/ber.cpp.o.d"
  "/root/repo/src/phy/coding.cpp" "src/phy/CMakeFiles/vab_phy.dir/coding.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/coding.cpp.o.d"
  "/root/repo/src/phy/equalizer.cpp" "src/phy/CMakeFiles/vab_phy.dir/equalizer.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/equalizer.cpp.o.d"
  "/root/repo/src/phy/fec.cpp" "src/phy/CMakeFiles/vab_phy.dir/fec.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/fec.cpp.o.d"
  "/root/repo/src/phy/fm0.cpp" "src/phy/CMakeFiles/vab_phy.dir/fm0.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/fm0.cpp.o.d"
  "/root/repo/src/phy/miller.cpp" "src/phy/CMakeFiles/vab_phy.dir/miller.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/miller.cpp.o.d"
  "/root/repo/src/phy/modem.cpp" "src/phy/CMakeFiles/vab_phy.dir/modem.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/modem.cpp.o.d"
  "/root/repo/src/phy/pie.cpp" "src/phy/CMakeFiles/vab_phy.dir/pie.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/pie.cpp.o.d"
  "/root/repo/src/phy/sic.cpp" "src/phy/CMakeFiles/vab_phy.dir/sic.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/sic.cpp.o.d"
  "/root/repo/src/phy/wakeup.cpp" "src/phy/CMakeFiles/vab_phy.dir/wakeup.cpp.o" "gcc" "src/phy/CMakeFiles/vab_phy.dir/wakeup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vab_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
