file(REMOVE_RECURSE
  "CMakeFiles/vab_phy.dir/ber.cpp.o"
  "CMakeFiles/vab_phy.dir/ber.cpp.o.d"
  "CMakeFiles/vab_phy.dir/coding.cpp.o"
  "CMakeFiles/vab_phy.dir/coding.cpp.o.d"
  "CMakeFiles/vab_phy.dir/equalizer.cpp.o"
  "CMakeFiles/vab_phy.dir/equalizer.cpp.o.d"
  "CMakeFiles/vab_phy.dir/fec.cpp.o"
  "CMakeFiles/vab_phy.dir/fec.cpp.o.d"
  "CMakeFiles/vab_phy.dir/fm0.cpp.o"
  "CMakeFiles/vab_phy.dir/fm0.cpp.o.d"
  "CMakeFiles/vab_phy.dir/miller.cpp.o"
  "CMakeFiles/vab_phy.dir/miller.cpp.o.d"
  "CMakeFiles/vab_phy.dir/modem.cpp.o"
  "CMakeFiles/vab_phy.dir/modem.cpp.o.d"
  "CMakeFiles/vab_phy.dir/pie.cpp.o"
  "CMakeFiles/vab_phy.dir/pie.cpp.o.d"
  "CMakeFiles/vab_phy.dir/sic.cpp.o"
  "CMakeFiles/vab_phy.dir/sic.cpp.o.d"
  "CMakeFiles/vab_phy.dir/wakeup.cpp.o"
  "CMakeFiles/vab_phy.dir/wakeup.cpp.o.d"
  "libvab_phy.a"
  "libvab_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
