file(REMOVE_RECURSE
  "libvab_phy.a"
)
