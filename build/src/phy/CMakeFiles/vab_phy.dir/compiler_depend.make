# Empty compiler generated dependencies file for vab_phy.
# This may be replaced when dependencies are built.
