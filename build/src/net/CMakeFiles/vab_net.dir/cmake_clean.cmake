file(REMOVE_RECURSE
  "CMakeFiles/vab_net.dir/app.cpp.o"
  "CMakeFiles/vab_net.dir/app.cpp.o.d"
  "CMakeFiles/vab_net.dir/discovery.cpp.o"
  "CMakeFiles/vab_net.dir/discovery.cpp.o.d"
  "CMakeFiles/vab_net.dir/frame.cpp.o"
  "CMakeFiles/vab_net.dir/frame.cpp.o.d"
  "CMakeFiles/vab_net.dir/mac.cpp.o"
  "CMakeFiles/vab_net.dir/mac.cpp.o.d"
  "libvab_net.a"
  "libvab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
