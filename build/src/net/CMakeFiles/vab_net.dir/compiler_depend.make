# Empty compiler generated dependencies file for vab_net.
# This may be replaced when dependencies are built.
