
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/app.cpp" "src/net/CMakeFiles/vab_net.dir/app.cpp.o" "gcc" "src/net/CMakeFiles/vab_net.dir/app.cpp.o.d"
  "/root/repo/src/net/discovery.cpp" "src/net/CMakeFiles/vab_net.dir/discovery.cpp.o" "gcc" "src/net/CMakeFiles/vab_net.dir/discovery.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/vab_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/vab_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/vab_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/vab_net.dir/mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/vab_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vab_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
