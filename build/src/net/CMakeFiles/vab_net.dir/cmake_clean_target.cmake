file(REMOVE_RECURSE
  "libvab_net.a"
)
