file(REMOVE_RECURSE
  "libvab_vanatta.a"
)
