file(REMOVE_RECURSE
  "CMakeFiles/vab_vanatta.dir/array.cpp.o"
  "CMakeFiles/vab_vanatta.dir/array.cpp.o.d"
  "CMakeFiles/vab_vanatta.dir/mismatch.cpp.o"
  "CMakeFiles/vab_vanatta.dir/mismatch.cpp.o.d"
  "CMakeFiles/vab_vanatta.dir/pattern.cpp.o"
  "CMakeFiles/vab_vanatta.dir/pattern.cpp.o.d"
  "CMakeFiles/vab_vanatta.dir/planar.cpp.o"
  "CMakeFiles/vab_vanatta.dir/planar.cpp.o.d"
  "libvab_vanatta.a"
  "libvab_vanatta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_vanatta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
