# Empty dependencies file for vab_vanatta.
# This may be replaced when dependencies are built.
