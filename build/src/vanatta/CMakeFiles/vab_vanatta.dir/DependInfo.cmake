
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vanatta/array.cpp" "src/vanatta/CMakeFiles/vab_vanatta.dir/array.cpp.o" "gcc" "src/vanatta/CMakeFiles/vab_vanatta.dir/array.cpp.o.d"
  "/root/repo/src/vanatta/mismatch.cpp" "src/vanatta/CMakeFiles/vab_vanatta.dir/mismatch.cpp.o" "gcc" "src/vanatta/CMakeFiles/vab_vanatta.dir/mismatch.cpp.o.d"
  "/root/repo/src/vanatta/pattern.cpp" "src/vanatta/CMakeFiles/vab_vanatta.dir/pattern.cpp.o" "gcc" "src/vanatta/CMakeFiles/vab_vanatta.dir/pattern.cpp.o.d"
  "/root/repo/src/vanatta/planar.cpp" "src/vanatta/CMakeFiles/vab_vanatta.dir/planar.cpp.o" "gcc" "src/vanatta/CMakeFiles/vab_vanatta.dir/planar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/piezo/CMakeFiles/vab_piezo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
