# Empty compiler generated dependencies file for vab_common.
# This may be replaced when dependencies are built.
