file(REMOVE_RECURSE
  "CMakeFiles/vab_common.dir/config.cpp.o"
  "CMakeFiles/vab_common.dir/config.cpp.o.d"
  "CMakeFiles/vab_common.dir/linalg.cpp.o"
  "CMakeFiles/vab_common.dir/linalg.cpp.o.d"
  "CMakeFiles/vab_common.dir/log.cpp.o"
  "CMakeFiles/vab_common.dir/log.cpp.o.d"
  "CMakeFiles/vab_common.dir/rng.cpp.o"
  "CMakeFiles/vab_common.dir/rng.cpp.o.d"
  "CMakeFiles/vab_common.dir/stats.cpp.o"
  "CMakeFiles/vab_common.dir/stats.cpp.o.d"
  "CMakeFiles/vab_common.dir/table.cpp.o"
  "CMakeFiles/vab_common.dir/table.cpp.o.d"
  "CMakeFiles/vab_common.dir/units.cpp.o"
  "CMakeFiles/vab_common.dir/units.cpp.o.d"
  "libvab_common.a"
  "libvab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
