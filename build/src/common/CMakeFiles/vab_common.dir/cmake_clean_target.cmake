file(REMOVE_RECURSE
  "libvab_common.a"
)
