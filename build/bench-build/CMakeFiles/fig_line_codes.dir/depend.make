# Empty dependencies file for fig_line_codes.
# This may be replaced when dependencies are built.
