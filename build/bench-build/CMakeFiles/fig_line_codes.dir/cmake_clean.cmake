file(REMOVE_RECURSE
  "../bench/fig_line_codes"
  "../bench/fig_line_codes.pdb"
  "CMakeFiles/fig_line_codes.dir/fig_line_codes.cpp.o"
  "CMakeFiles/fig_line_codes.dir/fig_line_codes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_line_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
