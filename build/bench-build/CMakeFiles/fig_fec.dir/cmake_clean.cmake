file(REMOVE_RECURSE
  "../bench/fig_fec"
  "../bench/fig_fec.pdb"
  "CMakeFiles/fig_fec.dir/fig_fec.cpp.o"
  "CMakeFiles/fig_fec.dir/fig_fec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
