# Empty compiler generated dependencies file for fig_fec.
# This may be replaced when dependencies are built.
