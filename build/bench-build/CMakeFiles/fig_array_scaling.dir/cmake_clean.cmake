file(REMOVE_RECURSE
  "../bench/fig_array_scaling"
  "../bench/fig_array_scaling.pdb"
  "CMakeFiles/fig_array_scaling.dir/fig_array_scaling.cpp.o"
  "CMakeFiles/fig_array_scaling.dir/fig_array_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_array_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
