# Empty compiler generated dependencies file for fig_sea_state.
# This may be replaced when dependencies are built.
