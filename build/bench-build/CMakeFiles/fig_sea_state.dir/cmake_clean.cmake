file(REMOVE_RECURSE
  "../bench/fig_sea_state"
  "../bench/fig_sea_state.pdb"
  "CMakeFiles/fig_sea_state.dir/fig_sea_state.cpp.o"
  "CMakeFiles/fig_sea_state.dir/fig_sea_state.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sea_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
