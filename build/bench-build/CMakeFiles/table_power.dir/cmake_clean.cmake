file(REMOVE_RECURSE
  "../bench/table_power"
  "../bench/table_power.pdb"
  "CMakeFiles/table_power.dir/table_power.cpp.o"
  "CMakeFiles/table_power.dir/table_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
