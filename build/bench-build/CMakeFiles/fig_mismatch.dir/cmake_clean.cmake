file(REMOVE_RECURSE
  "../bench/fig_mismatch"
  "../bench/fig_mismatch.pdb"
  "CMakeFiles/fig_mismatch.dir/fig_mismatch.cpp.o"
  "CMakeFiles/fig_mismatch.dir/fig_mismatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
