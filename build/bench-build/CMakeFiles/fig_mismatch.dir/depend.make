# Empty dependencies file for fig_mismatch.
# This may be replaced when dependencies are built.
