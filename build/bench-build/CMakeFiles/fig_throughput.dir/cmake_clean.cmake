file(REMOVE_RECURSE
  "../bench/fig_throughput"
  "../bench/fig_throughput.pdb"
  "CMakeFiles/fig_throughput.dir/fig_throughput.cpp.o"
  "CMakeFiles/fig_throughput.dir/fig_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
