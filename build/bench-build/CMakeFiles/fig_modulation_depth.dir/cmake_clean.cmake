file(REMOVE_RECURSE
  "../bench/fig_modulation_depth"
  "../bench/fig_modulation_depth.pdb"
  "CMakeFiles/fig_modulation_depth.dir/fig_modulation_depth.cpp.o"
  "CMakeFiles/fig_modulation_depth.dir/fig_modulation_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_modulation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
