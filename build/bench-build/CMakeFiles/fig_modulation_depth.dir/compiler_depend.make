# Empty compiler generated dependencies file for fig_modulation_depth.
# This may be replaced when dependencies are built.
