# Empty compiler generated dependencies file for fig_ocean.
# This may be replaced when dependencies are built.
