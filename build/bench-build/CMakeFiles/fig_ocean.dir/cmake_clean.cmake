file(REMOVE_RECURSE
  "../bench/fig_ocean"
  "../bench/fig_ocean.pdb"
  "CMakeFiles/fig_ocean.dir/fig_ocean.cpp.o"
  "CMakeFiles/fig_ocean.dir/fig_ocean.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ocean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
