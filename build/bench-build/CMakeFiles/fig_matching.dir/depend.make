# Empty dependencies file for fig_matching.
# This may be replaced when dependencies are built.
