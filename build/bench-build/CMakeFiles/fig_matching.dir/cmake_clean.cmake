file(REMOVE_RECURSE
  "../bench/fig_matching"
  "../bench/fig_matching.pdb"
  "CMakeFiles/fig_matching.dir/fig_matching.cpp.o"
  "CMakeFiles/fig_matching.dir/fig_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
