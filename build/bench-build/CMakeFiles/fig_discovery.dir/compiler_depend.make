# Empty compiler generated dependencies file for fig_discovery.
# This may be replaced when dependencies are built.
