file(REMOVE_RECURSE
  "../bench/fig_discovery"
  "../bench/fig_discovery.pdb"
  "CMakeFiles/fig_discovery.dir/fig_discovery.cpp.o"
  "CMakeFiles/fig_discovery.dir/fig_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
