file(REMOVE_RECURSE
  "../bench/fig_retrodirectivity"
  "../bench/fig_retrodirectivity.pdb"
  "CMakeFiles/fig_retrodirectivity.dir/fig_retrodirectivity.cpp.o"
  "CMakeFiles/fig_retrodirectivity.dir/fig_retrodirectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_retrodirectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
