# Empty dependencies file for fig_retrodirectivity.
# This may be replaced when dependencies are built.
