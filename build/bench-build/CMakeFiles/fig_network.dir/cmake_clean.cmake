file(REMOVE_RECURSE
  "../bench/fig_network"
  "../bench/fig_network.pdb"
  "CMakeFiles/fig_network.dir/fig_network.cpp.o"
  "CMakeFiles/fig_network.dir/fig_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
