# Empty compiler generated dependencies file for fig_network.
# This may be replaced when dependencies are built.
