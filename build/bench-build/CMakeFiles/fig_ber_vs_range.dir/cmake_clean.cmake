file(REMOVE_RECURSE
  "../bench/fig_ber_vs_range"
  "../bench/fig_ber_vs_range.pdb"
  "CMakeFiles/fig_ber_vs_range.dir/fig_ber_vs_range.cpp.o"
  "CMakeFiles/fig_ber_vs_range.dir/fig_ber_vs_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ber_vs_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
