# Empty dependencies file for fig_ber_vs_range.
# This may be replaced when dependencies are built.
