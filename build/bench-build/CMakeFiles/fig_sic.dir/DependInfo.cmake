
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_sic.cpp" "bench-build/CMakeFiles/fig_sic.dir/fig_sic.cpp.o" "gcc" "bench-build/CMakeFiles/fig_sic.dir/fig_sic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/vab_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/vanatta/CMakeFiles/vab_vanatta.dir/DependInfo.cmake"
  "/root/repo/build/src/piezo/CMakeFiles/vab_piezo.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/vab_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vab_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
