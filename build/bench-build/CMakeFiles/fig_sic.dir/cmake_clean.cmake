file(REMOVE_RECURSE
  "../bench/fig_sic"
  "../bench/fig_sic.pdb"
  "CMakeFiles/fig_sic.dir/fig_sic.cpp.o"
  "CMakeFiles/fig_sic.dir/fig_sic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
