# Empty compiler generated dependencies file for fig_sic.
# This may be replaced when dependencies are built.
