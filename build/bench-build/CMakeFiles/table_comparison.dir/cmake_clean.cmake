file(REMOVE_RECURSE
  "../bench/table_comparison"
  "../bench/table_comparison.pdb"
  "CMakeFiles/table_comparison.dir/table_comparison.cpp.o"
  "CMakeFiles/table_comparison.dir/table_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
