file(REMOVE_RECURSE
  "CMakeFiles/inventory_roundtrip.dir/inventory_roundtrip.cpp.o"
  "CMakeFiles/inventory_roundtrip.dir/inventory_roundtrip.cpp.o.d"
  "inventory_roundtrip"
  "inventory_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
