# Empty compiler generated dependencies file for inventory_roundtrip.
# This may be replaced when dependencies are built.
