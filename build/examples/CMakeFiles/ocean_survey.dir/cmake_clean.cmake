file(REMOVE_RECURSE
  "CMakeFiles/ocean_survey.dir/ocean_survey.cpp.o"
  "CMakeFiles/ocean_survey.dir/ocean_survey.cpp.o.d"
  "ocean_survey"
  "ocean_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
