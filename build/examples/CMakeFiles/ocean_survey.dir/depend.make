# Empty dependencies file for ocean_survey.
# This may be replaced when dependencies are built.
