file(REMOVE_RECURSE
  "CMakeFiles/coastal_monitoring.dir/coastal_monitoring.cpp.o"
  "CMakeFiles/coastal_monitoring.dir/coastal_monitoring.cpp.o.d"
  "coastal_monitoring"
  "coastal_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coastal_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
