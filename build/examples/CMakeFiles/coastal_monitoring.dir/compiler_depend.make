# Empty compiler generated dependencies file for coastal_monitoring.
# This may be replaced when dependencies are built.
