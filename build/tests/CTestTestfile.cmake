# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_fft[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_filters[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_detect[1]_include.cmake")
include("/root/repo/build/tests/test_phy_modem[1]_include.cmake")
include("/root/repo/build/tests/test_waveform_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_multipath[1]_include.cmake")
include("/root/repo/build/tests/test_piezo[1]_include.cmake")
include("/root/repo/build/tests/test_vanatta[1]_include.cmake")
include("/root/repo/build/tests/test_phy_coding[1]_include.cmake")
include("/root/repo/build/tests/test_phy_line_codes[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_phy_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_raytrace_energy[1]_include.cmake")
include("/root/repo/build/tests/test_fieldtrial[1]_include.cmake")
include("/root/repo/build/tests/test_discovery[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_planar[1]_include.cmake")
