# Empty compiler generated dependencies file for test_dsp_detect.
# This may be replaced when dependencies are built.
