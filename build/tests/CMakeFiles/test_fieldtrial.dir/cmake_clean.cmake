file(REMOVE_RECURSE
  "CMakeFiles/test_fieldtrial.dir/test_fieldtrial.cpp.o"
  "CMakeFiles/test_fieldtrial.dir/test_fieldtrial.cpp.o.d"
  "test_fieldtrial"
  "test_fieldtrial.pdb"
  "test_fieldtrial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fieldtrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
