# Empty dependencies file for test_fieldtrial.
# This may be replaced when dependencies are built.
