file(REMOVE_RECURSE
  "CMakeFiles/test_raytrace_energy.dir/test_raytrace_energy.cpp.o"
  "CMakeFiles/test_raytrace_energy.dir/test_raytrace_energy.cpp.o.d"
  "test_raytrace_energy"
  "test_raytrace_energy.pdb"
  "test_raytrace_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raytrace_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
