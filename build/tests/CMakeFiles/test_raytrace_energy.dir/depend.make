# Empty dependencies file for test_raytrace_energy.
# This may be replaced when dependencies are built.
