# Empty compiler generated dependencies file for test_phy_line_codes.
# This may be replaced when dependencies are built.
