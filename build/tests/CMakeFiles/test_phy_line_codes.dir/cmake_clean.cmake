file(REMOVE_RECURSE
  "CMakeFiles/test_phy_line_codes.dir/test_phy_line_codes.cpp.o"
  "CMakeFiles/test_phy_line_codes.dir/test_phy_line_codes.cpp.o.d"
  "test_phy_line_codes"
  "test_phy_line_codes.pdb"
  "test_phy_line_codes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_line_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
