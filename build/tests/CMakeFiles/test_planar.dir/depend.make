# Empty dependencies file for test_planar.
# This may be replaced when dependencies are built.
