file(REMOVE_RECURSE
  "CMakeFiles/test_phy_extensions.dir/test_phy_extensions.cpp.o"
  "CMakeFiles/test_phy_extensions.dir/test_phy_extensions.cpp.o.d"
  "test_phy_extensions"
  "test_phy_extensions.pdb"
  "test_phy_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
