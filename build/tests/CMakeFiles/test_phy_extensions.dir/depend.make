# Empty dependencies file for test_phy_extensions.
# This may be replaced when dependencies are built.
