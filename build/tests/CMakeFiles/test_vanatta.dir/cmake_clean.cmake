file(REMOVE_RECURSE
  "CMakeFiles/test_vanatta.dir/test_vanatta.cpp.o"
  "CMakeFiles/test_vanatta.dir/test_vanatta.cpp.o.d"
  "test_vanatta"
  "test_vanatta.pdb"
  "test_vanatta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vanatta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
