# Empty compiler generated dependencies file for test_vanatta.
# This may be replaced when dependencies are built.
