# Empty dependencies file for test_waveform_e2e.
# This may be replaced when dependencies are built.
