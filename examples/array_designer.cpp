// Array design explorer: sweeps the Van Atta configuration space (element
// count, spacing, losses, mismatch budget) and prints the resulting retro
// gain, field of view and expected communication range — the trade study a
// deployment engineer would run before building a node.
//
//   ./array_designer [elements=8] [spacing_lambda=0.5] [line_loss_db=0.5]
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "vanatta/mismatch.hpp"
#include "vanatta/pattern.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 4)));

  const double lambda = 1500.0 / 18500.0;
  vanatta::VanAttaConfig base = sim::vab_river_scenario().node.array;
  base.n_elements = static_cast<std::size_t>(cfg.get_int("elements", 8));
  base.spacing_m = cfg.get_double("spacing_lambda", 0.5) * lambda;
  base.line_loss_db = cfg.get_double("line_loss_db", 0.5);

  std::cout << "Van Atta array designer (carrier 18.5 kHz, lambda = "
            << common::Table::num(lambda * 100.0, 1) << " cm)\n\n";

  // 1) Element-count trade: gain, physical size, range.
  common::Table t({"elements", "aperture_cm", "retro_gain_db", "fov_3db_deg",
                   "est_range_m"});
  for (std::size_t n : {2u, 4u, 6u, 8u, 12u, 16u}) {
    vanatta::VanAttaConfig ac = base;
    ac.n_elements = n;
    const vanatta::VanAttaArray arr(ac);
    sim::Scenario s = sim::vab_river_scenario();
    s.node.array = ac;
    common::Rng local = rng.child(n);
    t.add_row({std::to_string(n),
               common::Table::num(static_cast<double>(n - 1) * ac.spacing_m * 100.0 +
                                      ac.spacing_m * 100.0,
                                  1),
               common::Table::num(arr.monostatic_gain_db(0.0, 18500.0), 1),
               common::Table::num(vanatta::retro_fov_deg(arr, 18500.0), 0),
               common::Table::num(
                   sim::LinkBudget(s).max_range(1e-3, 150, local).raw(), 0)});
  }
  std::cout << t.to_string() << "\n";

  // 2) Retro pattern of the chosen design vs the fixed-phase baseline.
  std::cout << "monostatic pattern (chosen design vs fixed-phase baseline):\n";
  common::Table p({"angle_deg", "van_atta_db", "fixed_phase_db"});
  vanatta::VanAttaConfig fixed = base;
  fixed.mode = vanatta::ArrayMode::kFixedPhase;
  const vanatta::VanAttaArray va(base), fx(fixed);
  for (double deg = -60.0; deg <= 60.0 + 1e-9; deg += 15.0) {
    const double th = common::deg_to_rad(deg);
    p.add_row({common::Table::num(deg, 0),
               common::Table::num(va.monostatic_gain_db(th, 18500.0), 1),
               common::Table::num(fx.monostatic_gain_db(th, 18500.0), 1)});
  }
  std::cout << p.to_string() << "\n";

  // 3) Construction tolerance: how precisely must the pair lines match?
  std::cout << "line-length tolerance budget (0.5 dB mean retro-gain loss):\n";
  for (double sigma_deg : {5.0, 10.0, 20.0, 40.0}) {
    common::Rng local = rng.child(static_cast<std::uint64_t>(sigma_deg) + 100);
    const auto r = vanatta::mismatch_monte_carlo(
        base, 0.0, 18500.0, common::deg_to_rad(sigma_deg), 0.0, 300, local);
    std::cout << "  sigma " << common::Table::num(sigma_deg, 0) << " deg ("
              << common::Table::num(sigma_deg / 360.0 * lambda * 1000.0, 1)
              << " mm): mean loss " << common::Table::num(r.mean_loss_db, 2)
              << " dB, p95 " << common::Table::num(r.p95_loss_db, 2) << " dB"
              << (r.mean_loss_db <= 0.5 ? "  <- OK" : "") << "\n";
  }
  return 0;
}
