// Ocean survey with a moving reader: a boat transects past a line of
// battery-free nodes, querying as it goes. Tracks, per node, when it is in
// communication range, when it harvests enough to be energy-neutral, and
// the storage-capacitor voltage over the day — the deployment arithmetic
// behind the paper's coastal-monitoring pitch.
//
//   ./ocean_survey [passes=4] [spacing_m=150] [nodes=5] [seed=9]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/energy.hpp"
#include "phy/ber.hpp"
#include "piezo/bvd.hpp"
#include "piezo/harvester.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  const auto n_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 5));
  const double spacing = cfg.get_double("spacing_m", 150.0);
  const auto passes = static_cast<std::size_t>(cfg.get_int("passes", 4));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 9)));
  // threads=N overrides VAB_THREADS / hardware autodetection (0 = auto).
  common::set_thread_count(static_cast<unsigned>(cfg.get_int("threads", 0)));

  std::cout << "Ocean survey: boat transects past " << n_nodes << " nodes at " << spacing
            << " m spacing, " << passes << " passes over 24 h\n\n";

  const sim::Scenario base = sim::vab_ocean_scenario();
  const piezo::BvdModel bvd =
      piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
  const piezo::EnergyHarvester harvester({}, bvd);
  const piezo::PowerBudget power{};

  // Node baseline load between passes: sleep plus ~40 s/day of sensing
  // bursts — the logging cadence a 0.1 F reservoir can actually sustain.
  const double idle_load = power.average_power_w(0.9995, 0.0, 0.0, 0.0005);

  // Each pass: the boat dwells ~10 minutes within range of each node,
  // projecting the carrier; nodes harvest while absorbing and answer
  // queries. Between passes: 24h/passes of idle drain.
  const double dwell_s = cfg.get_double("dwell_s", 600.0);
  const double gap_s = 24.0 * 3600.0 / static_cast<double>(passes) - dwell_s;

  // Each node is an independent simulation with its own child stream, so the
  // per-node loop fans out over the parallel engine and the table is
  // identical for any thread count (and to a serial run).
  struct NodeRow {
    double cross = 0.0;
    std::size_t queries_ok = 0;
    double harvest_w = 0.0;
    double min_v = 0.0;
    bool alive = true;
  };
  std::vector<NodeRow> node_rows(n_nodes);
  common::parallel_for(0, n_nodes, [&](std::size_t i) {
    common::Rng node_rng = rng.child(i);
    // Node offset from the boat track (cross-track distance at closest pass).
    const double cross = node_rng.uniform(20.0, 0.9 * spacing);
    sim::Scenario s = base;
    s.range_m = cross;
    const sim::LinkBudget lb(s);

    // Communication: PER at the closest approach.
    const double ber = lb.evaluate(common::Meters{cross}).ber;
    const double per = phy::packet_error_rate(ber, (4 + 6 + 2) * 8);
    std::size_t ok = 0;
    for (std::size_t p = 0; p < passes; ++p)
      if (!node_rng.coin(per)) ++ok;

    // Energy: harvest during dwell, drain during the gap.
    const double spl = lb.carrier_spl_at_node(common::Meters{cross}).raw();
    const double harvest_w =
        harvester.harvested_power_w(common::pressure_from_spl(spl), 18500.0);
    core::CapacitorConfig cc;
    core::StorageCapacitor cap(cc);
    double min_v = cap.voltage();
    bool alive = true;
    for (std::size_t p = 0; p < passes && alive; ++p) {
      cap.charge(common::PowerW{harvest_w}, common::Seconds{dwell_s});
      cap.draw(common::PowerW{power.rx_listen_w + power.backscatter_w * 0.1},
               common::Seconds{dwell_s});
      alive = cap.draw(common::PowerW{idle_load}, common::Seconds{gap_s});
      min_v = std::min(min_v, cap.voltage());
    }
    node_rows[i] = {cross, ok, harvest_w, min_v, alive};
  });

  common::Table t({"node", "dist_from_track_m", "queries_ok", "harvest_per_pass_J",
                   "min_cap_V", "survives_day"});
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto& r = node_rows[i];
    t.add_row({std::to_string(i), common::Table::num(r.cross, 0),
               std::to_string(r.queries_ok) + "/" + std::to_string(passes),
               common::Table::num(r.harvest_w * dwell_s, 3),
               common::Table::num(r.min_v, 2), r.alive ? "yes" : "NO (brownout)"});
  }
  std::cout << t.to_string();
  std::cout << "\nidle load " << common::Table::num(idle_load * 1e6, 2)
            << " uW; capacitor " << core::CapacitorConfig{}.capacitance_f
            << " F usable "
            << common::Table::num(
                   core::StorageCapacitor(core::CapacitorConfig{}).usable_energy_j(), 3)
            << " J\n";
  return 0;
}
