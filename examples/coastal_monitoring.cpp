// Coastal monitoring deployment: the application the paper's introduction
// motivates. A reader buoy inventories a field of battery-free Van Atta
// sensor nodes over TDMA rounds; we track delivery, goodput and each node's
// energy ledger over a simulated deployment.
//
//   ./coastal_monitoring [nodes=12] [radius_m=300] [hours=24] [seed=7]
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/system.hpp"
#include "piezo/bvd.hpp"
#include "piezo/harvester.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  const auto n_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 12));
  const double radius = cfg.get_double("radius_m", 300.0);
  const double hours = cfg.get_double("hours", 24.0);
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 7)));

  std::cout << "Coastal monitoring: " << n_nodes << " battery-free nodes within "
            << radius << " m of the reader buoy, " << hours << " h deployment\n\n";

  // Scatter nodes over the field with arbitrary orientations — Van Atta
  // retrodirectivity is what makes the random orientation survivable.
  sim::Scenario scenario = sim::vab_ocean_scenario();
  std::vector<core::NetworkNode> nodes;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    core::NetworkNode n;
    n.address = static_cast<std::uint8_t>(i);
    n.slot = static_cast<std::uint8_t>(i);
    n.range_m = rng.uniform(0.15 * radius, radius);
    n.orientation_rad = rng.uniform(-common::kPi / 3.0, common::kPi / 3.0);
    nodes.push_back(n);
  }

  core::NetworkSimulator net(scenario, nodes);
  // Round cadence: one inventory round per minute of deployment.
  const auto rounds = static_cast<std::size_t>(hours * 60.0);
  const auto res = net.run(rounds, 6, rng);

  std::cout << "rounds: " << res.rounds << " ("
            << common::Table::num(res.round_duration_s, 2) << " s each)\n";
  std::cout << "delivery: " << res.packets_delivered << "/" << res.packets_attempted
            << " (" << common::Table::num(100.0 * res.delivery_rate(), 1) << "%)\n";
  std::cout << "network goodput: " << common::Table::num(res.goodput_bps, 1)
            << " bps of sensor payload\n\n";

  // Per-node view, including the harvesting budget at each node's range.
  const piezo::BvdModel bvd =
      piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
  const piezo::EnergyHarvester harvester({}, bvd);
  const piezo::PowerBudget power{};
  const sim::LinkBudget budget(scenario);
  // Duty cycle per round: the node backscatters one slot per round.
  const double bs_frac =
      net.nodes().empty() ? 0.0
                          : 0.3 / std::max(res.round_duration_s, 1e-9);

  common::Table t({"node", "range_m", "orient_deg", "delivery", "harvest_uW",
                   "load_uW", "battery_free"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double spl =
        budget.carrier_spl_at_node(common::Meters{nodes[i].range_m}).raw();
    const double harvest =
        harvester.harvested_power_w(common::pressure_from_spl(spl), 18500.0);
    const double load = power.average_power_w(0.97 - bs_frac, 0.02, bs_frac, 0.01);
    t.add_row({std::to_string(i), common::Table::num(nodes[i].range_m, 0),
               common::Table::num(common::rad_to_deg(nodes[i].orientation_rad), 0),
               common::Table::num(100.0 * res.per_node_delivery[i], 1) + "%",
               common::Table::num(harvest * 1e6, 2), common::Table::num(load * 1e6, 2),
               harvest * 0.97 >= load ? "yes" : "no (cap-buffered)"});
  }
  std::cout << t.to_string();
  std::cout << "\nnodes beyond the harvesting radius run from their storage capacitor\n"
               "between reader passes; communication still works to ~300 m.\n";
  return 0;
}
