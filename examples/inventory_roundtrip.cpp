// Full protocol round trip through the public API: the reader PIE-encodes a
// query onto its carrier, the node's envelope detector + MAC decode it and
// schedule an FM0 backscatter report, and the reader's uplink chain decodes
// the sensor frame — all at waveform level.
//
//   ./inventory_roundtrip [node_addr=3] [temp_c=18.25] [seed=2]
#include <cmath>
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/node.hpp"
#include "core/reader.hpp"
#include "dsp/iir.hpp"

namespace {

using namespace vab;

// Node analog front end: passive rectifier + RC low-pass.
rvec envelope_detect(const rvec& passband, double fs) {
  dsp::OnePole lp(200.0, fs);
  rvec env(passband.size());
  for (std::size_t i = 0; i < passband.size(); ++i)
    env[i] = lp.process(std::abs(passband[i]));
  return env;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  const auto addr = static_cast<std::uint8_t>(cfg.get_int("node_addr", 3));
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 2)));

  // --- Set up reader and node ---------------------------------------------
  core::ReaderConfig rc;
  rc.phy.fs_hz = 96000.0;
  core::VabReader reader(rc);

  core::NodeConfig nc;
  nc.address = addr;
  nc.phy = rc.phy;
  nc.array.f_design_hz = rc.phy.carrier_hz;
  const piezo::BvdModel transducer =
      piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
  core::VabNode node(nc, transducer);
  node.set_sensor_reading({cfg.get_double("temp_c", 18.25), 204.2, 2870});

  std::cout << "reader -> node " << static_cast<int>(addr) << ": QUERY\n";

  // --- Downlink -------------------------------------------------------------
  const net::Frame query = reader.mac().make_query(addr);
  rvec downlink = reader.make_downlink_waveform(query);
  // Simple attenuating channel for the downlink demo (the node's envelope
  // detector is threshold-based, so scale does not matter).
  for (auto& v : downlink) v *= 0.01;
  const auto uplink = node.handle_downlink(envelope_detect(downlink, rc.phy.fs_hz),
                                           rc.phy.fs_hz);
  if (!uplink) {
    std::cout << "node did not respond (downlink decode failed)\n";
    return 1;
  }
  std::cout << "node decoded the query; backscattering seq "
            << static_cast<int>(uplink->frame.seq) << " after "
            << common::Table::num(uplink->tx_offset_s, 2) << " s guard\n";

  // --- Uplink: node switch states modulate the reader's carrier ------------
  const bitvec frame_bits = net::serialize_bits(uplink->frame);
  const std::size_t n = uplink->switch_states.size() + 4096;
  rvec rx = reader.make_carrier(n);
  phy::BackscatterModulator mod(rc.phy);
  const bitvec mask = mod.active_mask(frame_bits.size());
  const double mod_depth = 2e-3;  // backscatter ~54 dB below the blast
  for (std::size_t i = 0; i < n; ++i) {
    double coef = 1.0;
    if (i < uplink->switch_states.size() && i < mask.size() && mask[i])
      coef += mod_depth * (uplink->switch_states[i] ? 1.0 : -1.0);
    rx[i] *= coef;
    rx[i] += 1e-4 * rng.gaussian();
  }

  const auto decode = reader.decode_uplink(rx, uplink->frame.payload.size());
  std::cout << "reader uplink: sync=" << (decode.demod.sync_found ? "yes" : "no")
            << " corr=" << common::Table::num(decode.demod.corr_peak, 2)
            << " SIC=" << common::Table::num(decode.demod.sic_suppression_db, 1)
            << " dB\n";
  if (!decode.frame) {
    std::cout << "frame CRC failed\n";
    return 1;
  }
  const auto reading = net::decode_reading(decode.frame->payload);
  if (!reading) {
    std::cout << "payload malformed\n";
    return 1;
  }
  std::cout << "\nsensor report from node " << static_cast<int>(decode.frame->addr)
            << ": temperature " << common::Table::num(reading->temperature_c, 3)
            << " C, pressure " << common::Table::num(reading->pressure_kpa, 1)
            << " kPa, storage " << reading->battery_mv << " mV\n";
  return 0;
}
