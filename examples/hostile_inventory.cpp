// ARQ inventory under a hostile channel: a reader collects one ACKed report
// from every node through Gilbert–Elliott burst loss, wake misses, and frame
// corruption, and prints what the retry protocol had to do to get there.
//
//   ./hostile_inventory [nodes=12] [mean_loss=0.25] [seed=7]
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "net/inventory.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);
  const auto n_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 12));
  const double mean_loss = cfg.get_double("mean_loss", 0.25);
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 7)));

  std::vector<std::uint8_t> population(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    population[i] = static_cast<std::uint8_t>(i + 1);

  // Burst loss tuned to the requested mean, plus mild wake misses and bit
  // flips — roughly the hostile_river_scenario() impairment mix.
  fault::FaultPlan plan;
  plan.seed = 0x40571E;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.p_good_to_bad = 0.3 * mean_loss / (1.0 - mean_loss);
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  plan.wake_miss_prob = 0.05;
  plan.bit_flip_prob = 0.05;
  fault::FaultInjector inj(plan);

  std::cout << "inventory of " << n_nodes << " nodes through a "
            << common::Table::num(100.0 * plan.burst.mean_loss(), 0)
            << "% burst-loss channel\n\n";

  net::InventoryConfig inv;
  const net::InventoryResult r = net::run_inventory(population, inv, &inj, rng);

  common::Table t({"metric", "value"});
  t.add_row({"delivered", std::to_string(r.delivered) + "/" + std::to_string(r.nodes)});
  t.add_row({"delivery_ratio", common::Table::num(r.delivery_ratio(), 3)});
  t.add_row({"polls", std::to_string(r.polls)});
  t.add_row({"retries", std::to_string(r.retries)});
  t.add_row({"timeouts", std::to_string(r.timeouts)});
  t.add_row({"duplicates_deduped", std::to_string(r.duplicates)});
  t.add_row({"acks_sent", std::to_string(r.acks_sent)});
  t.add_row({"demotions", std::to_string(r.demotions)});
  t.add_row({"rounds", std::to_string(r.rounds)});
  t.add_row({"airtime_s", common::Table::num(r.duration_s, 2)});
  std::cout << t.to_string();

  std::cout << "\n"
            << (r.complete ? "complete: every node delivered within the retry budget"
                           : "INCOMPLETE: poll budget exhausted")
            << "\n";
  return r.complete ? 0 : 1;
}
