// Quickstart: one Van Atta backscatter uplink, end to end at waveform level.
//
//   ./quickstart [range_m=100] [bitrate=500] [env=river|ocean] [seed=1]
//
// Builds the river scenario, runs one full trial (projector carrier ->
// multipath -> 8-element Van Atta node -> multipath -> hydrophone -> SIC ->
// equalizer -> FM0 decode) and prints the link diagnostics.
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

int main(int argc, char** argv) {
  using namespace vab;
  const auto cfg = common::Config::from_args(argc, argv);

  sim::Scenario s = cfg.get_string("env", "river") == "ocean"
                        ? sim::vab_ocean_scenario()
                        : sim::vab_river_scenario();
  s.range_m = cfg.get_double("range_m", 100.0);
  s.phy.bitrate_bps = cfg.get_double("bitrate", 500.0);
  common::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 1)));

  std::cout << "VAB quickstart: " << s.env.name << " @ " << s.range_m << " m, "
            << s.phy.bitrate_bps << " bps, " << s.node.array.n_elements
            << "-element Van Atta array\n\n";

  // What the link budget predicts.
  const sim::LinkBudget budget(s);
  const auto lb = budget.evaluate(common::Meters{s.range_m});
  std::cout << "link budget: TL(one-way) "
            << common::Table::num(lb.tl_one_way_db.raw(), 1) << " dB | carrier at node "
            << common::Table::num(lb.received_at_node_db.raw(), 1)
            << " dB re uPa | return "
            << common::Table::num(lb.modulated_return_db.raw(), 1)
            << " dB | chip SNR " << common::Table::num(lb.snr_chip_db.raw(), 1)
            << " dB | predicted BER " << common::Table::sci(lb.ber) << "\n\n";

  // One real trial through the full DSP chain.
  sim::WaveformSimulator wsim(s, rng);
  const bitvec payload = rng.random_bits(
      static_cast<std::size_t>(cfg.get_int("payload_bits", 64)));
  const auto res = wsim.run_trial(payload);

  std::cout << "waveform trial:\n";
  std::cout << "  sync:            " << (res.demod.sync_found ? "yes" : "NO") << " (corr "
            << common::Table::num(res.demod.corr_peak, 2) << ")\n";
  std::cout << "  bit errors:      " << res.bit_errors << " / " << payload.size() << "\n";
  std::cout << "  chip SNR:        " << common::Table::num(res.demod.snr_db, 1)
            << " dB\n";
  std::cout << "  SIC suppression: "
            << common::Table::num(res.demod.sic_suppression_db, 1)
            << " dB\n";
  std::cout << "  channel fit err: " << common::Table::num(res.demod.channel_fit_error, 3)
            << "\n";
  std::cout << "  SPL at node:     "
            << common::Table::num(res.incident_spl_at_node_db, 1) << " dB re 1 uPa\n";
  std::cout << "\n" << (res.frame_ok ? "frame decoded OK" : "frame FAILED") << "\n";
  return res.frame_ok ? 0 : 1;
}
