// VabNode / VabReader end-to-end protocol logic and the network simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "core/node.hpp"
#include "core/reader.hpp"
#include "core/system.hpp"
#include "dsp/iir.hpp"
#include "sim/scenario.hpp"

namespace vab::core {
namespace {

piezo::BvdModel transducer() {
  return piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
}

NodeConfig node_config(std::uint8_t addr) {
  NodeConfig cfg;
  cfg.address = addr;
  cfg.phy.fs_hz = 96000.0;
  cfg.array.f_design_hz = cfg.phy.carrier_hz;
  return cfg;
}

// The node's analog front end: rectify the passband downlink and low-pass
// to recover the PIE envelope.
rvec envelope_detect(const rvec& passband, double fs) {
  dsp::OnePole lp(200.0, fs);
  rvec env(passband.size());
  for (std::size_t i = 0; i < passband.size(); ++i)
    env[i] = lp.process(std::abs(passband[i]));
  return env;
}

TEST(CoreLoop, DownlinkQueryToScheduledUplink) {
  ReaderConfig rc;
  rc.phy.fs_hz = 96000.0;
  VabReader reader(rc);
  VabNode node(node_config(3), transducer());
  node.set_sensor_reading({21.5, 180.0, 2900});

  const net::Frame query = reader.mac().make_query(3);
  const rvec downlink = reader.make_downlink_waveform(query);
  const rvec env = envelope_detect(downlink, rc.phy.fs_hz);

  const auto up = node.handle_downlink(env, rc.phy.fs_hz);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->frame.addr, 3);
  EXPECT_EQ(up->frame.type, net::FrameType::kSensorReport);
  EXPECT_GT(up->switch_states.size(), 0u);
  EXPECT_GT(up->tx_offset_s, 0.0);
  const auto reading = net::decode_reading(up->frame.payload);
  ASSERT_TRUE(reading.has_value());
  EXPECT_NEAR(reading->temperature_c, 21.5, net::kTempResolutionC);
}

TEST(CoreLoop, WrongAddressIgnored) {
  ReaderConfig rc;
  rc.phy.fs_hz = 96000.0;
  VabReader reader(rc);
  VabNode node(node_config(3), transducer());
  const rvec downlink = reader.make_downlink_waveform(reader.mac().make_query(9));
  EXPECT_FALSE(node.handle_downlink(envelope_detect(downlink, rc.phy.fs_hz), rc.phy.fs_hz)
                   .has_value());
}

TEST(CoreLoop, GarbageEnvelopeIgnored) {
  VabNode node(node_config(3), transducer());
  EXPECT_FALSE(node.handle_downlink(rvec(5000, 0.3), 96000.0).has_value());
}

TEST(CoreLoop, UplinkDecodeThroughReader) {
  // Node produces switch states; emulate an ideal reflection channel and
  // feed the reader's uplink chain.
  ReaderConfig rc;
  rc.phy.fs_hz = 96000.0;
  VabReader reader(rc);
  VabNode node(node_config(3), transducer());
  node.set_sensor_reading({15.25, 120.5, 3100});

  const net::Frame query = reader.mac().make_query(3);
  const rvec env = envelope_detect(reader.make_downlink_waveform(query), rc.phy.fs_hz);
  const auto up = node.handle_downlink(env, rc.phy.fs_hz);
  ASSERT_TRUE(up.has_value());

  // Carrier multiplied by modulated reflection + blast.
  const std::size_t n = up->switch_states.size() + 2048;
  rvec rx = reader.make_carrier(n);
  phy::BackscatterModulator mod(rc.phy);
  const bitvec mask = mod.active_mask(net::serialize_bits(up->frame).size());
  for (std::size_t i = 0; i < n; ++i) {
    double coef = 1.0;  // blast
    if (i < up->switch_states.size() && i < mask.size() && mask[i])
      coef += 0.05 * (up->switch_states[i] ? 1.0 : -1.0);
    rx[i] *= coef;
  }
  const auto decode = reader.decode_uplink(rx, up->frame.payload.size());
  ASSERT_TRUE(decode.demod.sync_found);
  ASSERT_TRUE(decode.frame.has_value());
  EXPECT_EQ(decode.frame->addr, 3);
  const auto reading = net::decode_reading(decode.frame->payload);
  ASSERT_TRUE(reading.has_value());
  EXPECT_NEAR(reading->pressure_kpa, 120.5, net::kPressureResolutionKpa);
}

TEST(CoreLoop, EnergyLedger) {
  VabNode node(node_config(1), transducer());
  node.account_harvest(100.0, 100.0);  // strong incident field (160 dB), 100 s
  EXPECT_GT(node.harvested_j(), 0.0);
  node.account_backscatter(1.0);
  node.account_listen(1.0);
  EXPECT_GT(node.spent_j(), 0.0);
  EXPECT_EQ(node.energy_balance_j(), node.harvested_j() - node.spent_j());
}

TEST(Network, DeliveryDegradesWithRange) {
  sim::Scenario s = sim::vab_river_scenario();
  std::vector<NetworkNode> near_nodes, far_nodes;
  for (std::uint8_t i = 0; i < 4; ++i) {
    near_nodes.push_back({i, 100.0 + 10.0 * i, 0.0, i});
    far_nodes.push_back({i, 380.0 + 10.0 * i, 0.0, i});
  }
  common::Rng rng(1);
  const auto near_res = NetworkSimulator(s, near_nodes).run(50, 6, rng);
  common::Rng rng2(2);
  const auto far_res = NetworkSimulator(s, far_nodes).run(50, 6, rng2);
  EXPECT_GT(near_res.delivery_rate(), 0.95);
  EXPECT_LT(far_res.delivery_rate(), near_res.delivery_rate());
}

TEST(Network, GoodputScalesWithNodeCount) {
  sim::Scenario s = sim::vab_river_scenario();
  common::Rng rng(3);
  std::vector<NetworkNode> one{{0, 100.0, 0.0, 0}};
  std::vector<NetworkNode> four;
  for (std::uint8_t i = 0; i < 4; ++i) four.push_back({i, 100.0, 0.0, i});
  const auto r1 = NetworkSimulator(s, one).run(30, 6, rng);
  common::Rng rng2(4);
  const auto r4 = NetworkSimulator(s, four).run(30, 6, rng2);
  // More nodes: longer rounds but more packets per round; goodput rises
  // (sub-linearly) because the downlink+guard overhead amortizes.
  EXPECT_GT(r4.goodput_bps, r1.goodput_bps);
  EXPECT_GT(r4.round_duration_s, r1.round_duration_s);
}

TEST(Network, PerNodeStatsTrackOrientation) {
  sim::Scenario s = sim::vab_river_scenario();
  // Same range; one node badly oriented with a fixed-phase array would fail,
  // but Van Atta keeps both alive.
  std::vector<NetworkNode> nodes{{0, 250.0, 0.0, 0},
                                 {1, 250.0, common::deg_to_rad(35.0), 1}};
  common::Rng rng(5);
  const auto res = NetworkSimulator(s, nodes).run(60, 6, rng);
  ASSERT_EQ(res.per_node_delivery.size(), 2u);
  EXPECT_GT(res.per_node_delivery[1], 0.6);
}

TEST(Network, EmptyNodeListRejected) {
  EXPECT_THROW(NetworkSimulator(sim::vab_river_scenario(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace vab::core
