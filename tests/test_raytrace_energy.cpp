// Ray tracing against image-method ground truth, refraction behaviour, and
// storage-capacitor dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/multipath.hpp"
#include "channel/raytrace.hpp"
#include "core/energy.hpp"

namespace vab {
namespace {

using channel::RayTraceConfig;
using channel::SoundSpeedProfile;

RayTraceConfig rt_config() {
  RayTraceConfig cfg;
  cfg.water_depth_m = 20.0;
  cfg.max_bounces = 2;
  cfg.n_rays = 801;
  cfg.step_m = 0.5;
  cfg.capture_tolerance_m = 0.75;
  return cfg;
}

TEST(RayTrace, IsovelocityMatchesImageMethodDirectPath) {
  const SoundSpeedProfile iso(1500.0);
  const auto arrivals = channel::trace_eigenrays(common::Meters{200.0},
                                                 common::Meters{5.0},
                        common::Meters{10.0}, iso, rt_config());
  ASSERT_FALSE(arrivals.empty());
  // First arrival = direct path; compare to straight-line geometry.
  const double direct_r = std::sqrt(200.0 * 200.0 + 25.0);
  // Step-size discretization bounds the accuracy to ~0.3%.
  EXPECT_NEAR(arrivals.front().delay_s, direct_r / 1500.0, 5e-4);
  EXPECT_EQ(arrivals.front().surface_bounces, 0);
  EXPECT_EQ(arrivals.front().bottom_bounces, 0);
}

TEST(RayTrace, IsovelocityBounceDelaysMatchImageMethod) {
  const SoundSpeedProfile iso(1500.0);
  const auto rays = channel::trace_eigenrays(common::Meters{150.0}, common::Meters{5.0},
                        common::Meters{10.0}, iso, rt_config());

  channel::MultipathConfig mp;
  mp.water_depth_m = 20.0;
  mp.max_order = 2;
  const auto images = channel::image_method_taps(common::Meters{150.0},
                                                 common::Meters{5.0},
                        common::Meters{10.0}, 1500.0, mp);

  // Each traced bounce combination should match an image-method tap delay.
  for (const auto& ray : rays) {
    bool matched = false;
    for (const auto& img : images) {
      if (img.surface_bounces == ray.surface_bounces &&
          img.bottom_bounces == ray.bottom_bounces &&
          std::abs(img.delay_s - ray.delay_s) < 5e-4)
        matched = true;
    }
    EXPECT_TRUE(matched) << "s=" << ray.surface_bounces << " b=" << ray.bottom_bounces
                         << " delay=" << ray.delay_s;
  }
}

TEST(RayTrace, SurfaceBounceFlipsSign) {
  const SoundSpeedProfile iso(1500.0);
  const auto rays = channel::trace_eigenrays(common::Meters{100.0}, common::Meters{5.0},
                        common::Meters{10.0}, iso, rt_config());
  for (const auto& r : rays) {
    if (r.surface_bounces % 2 == 1)
      EXPECT_LT(r.gain, 0.0);
    else
      EXPECT_GT(r.gain, 0.0);
  }
}

TEST(RayTrace, DownwardRefractionBendsRaysDown) {
  // Speed decreasing with depth bends rays downward (toward lower speed):
  // a horizontally-launched ray ends deeper than it started.
  const SoundSpeedProfile down({0.0, 20.0}, {1520.0, 1480.0});
  RayTraceConfig cfg = rt_config();
  cfg.max_bounces = 0;            // kill boundary interactions
  cfg.capture_tolerance_m = 20.0;  // capture anything that survives
  cfg.max_launch_deg = 0.5;       // near-horizontal fan
  cfg.n_rays = 3;
  // Curvature radius c/|dc/dz| = 750 m: over 150 m the ray drops ~15 m,
  // staying inside the 20 m column.
  const auto rays = channel::trace_eigenrays(common::Meters{150.0}, common::Meters{5.0},
                        common::Meters{10.0}, down, cfg);
  ASSERT_FALSE(rays.empty());
  // Arrival angle points downward for the surviving near-horizontal rays.
  for (const auto& r : rays) EXPECT_GT(r.arrival_angle_rad, 0.0);
}

TEST(RayTrace, TapsConversion) {
  const SoundSpeedProfile iso(1500.0);
  const auto rays = channel::trace_eigenrays(common::Meters{100.0}, common::Meters{5.0},
                        common::Meters{10.0}, iso, rt_config());
  const auto taps = channel::taps_from_arrivals(rays);
  ASSERT_EQ(taps.size(), rays.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_DOUBLE_EQ(taps[i].delay_s, rays[i].delay_s);
    EXPECT_DOUBLE_EQ(taps[i].gain, rays[i].gain);
  }
}

TEST(RayTrace, ValidatesGeometry) {
  const SoundSpeedProfile iso(1500.0);
  EXPECT_THROW(channel::trace_eigenrays(common::Meters{-5.0}, common::Meters{5.0},
                        common::Meters{10.0}, iso, rt_config()),
               std::invalid_argument);
  EXPECT_THROW(channel::trace_eigenrays(common::Meters{100.0}, common::Meters{50.0},
                        common::Meters{10.0}, iso, rt_config()),
               std::invalid_argument);
}

TEST(Capacitor, VoltageEnergyRelation) {
  core::CapacitorConfig cfg;
  cfg.capacitance_f = 0.1;
  cfg.initial_voltage_v = 2.5;
  core::StorageCapacitor cap(cfg);
  EXPECT_NEAR(cap.voltage(), 2.5, 1e-9);
  EXPECT_NEAR(cap.energy_j(), 0.5 * 0.1 * 2.5 * 2.5, 1e-9);
}

TEST(Capacitor, ChargeClampsAtMax) {
  core::CapacitorConfig cfg;
  core::StorageCapacitor cap(cfg);
  cap.charge(common::PowerW{1000.0}, common::Seconds{1000.0});  // absurd input
  EXPECT_NEAR(cap.voltage(), cfg.max_voltage_v, 1e-9);
}

TEST(Capacitor, DrawUntilBrownout) {
  core::CapacitorConfig cfg;
  cfg.capacitance_f = 0.01;
  cfg.initial_voltage_v = 2.5;
  cfg.brownout_voltage_v = 1.8;
  core::StorageCapacitor cap(cfg);
  const double usable = cap.usable_energy_j();
  // Draw slightly less than usable: survives.
  EXPECT_TRUE(cap.draw(common::PowerW{usable * 0.9}, common::Seconds{1.0}));
  EXPECT_FALSE(cap.browned_out());
  // Draw past the floor: brownout, voltage pinned at threshold.
  EXPECT_FALSE(cap.draw(common::PowerW{usable}, common::Seconds{1.0}));
  EXPECT_TRUE(cap.browned_out());
  EXPECT_NEAR(cap.voltage(), 1.8, 1e-9);
  // Recharging above threshold clears the brownout.
  cap.charge(common::PowerW{1.0}, common::Seconds{1.0});
  EXPECT_FALSE(cap.browned_out());
}

TEST(Capacitor, EnduranceFormula) {
  core::CapacitorConfig cfg;
  cfg.capacitance_f = 0.1;
  cfg.max_voltage_v = 2.7;
  cfg.brownout_voltage_v = 1.8;
  // Usable energy = 0.5*0.1*(2.7^2-1.8^2) = 0.2025 J; at net 10 uW drain:
  const double t =
      core::endurance(cfg, common::PowerW{15e-6}, common::PowerW{5e-6}).raw();
  EXPECT_NEAR(t, 0.5 * 0.1 * (2.7 * 2.7 - 1.8 * 1.8) / 10e-6, 1.0);
  EXPECT_TRUE(std::isinf(
      core::endurance(cfg, common::PowerW{5e-6}, common::PowerW{10e-6}).raw()));
}

TEST(Capacitor, ValidatesConfig) {
  core::CapacitorConfig bad;
  bad.brownout_voltage_v = 3.0;
  EXPECT_THROW(core::StorageCapacitor{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace vab
