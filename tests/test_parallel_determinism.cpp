// Thread-count-invariant determinism of the Monte-Carlo engine: the same
// master seed must produce BIT-IDENTICAL sweep points, waveform statistics
// and mismatch aggregates with 1, 2 and 8 threads. This is the regression
// lock for the parallel trial-execution engine — any scheduling-dependent
// reduction or shared-stream draw breaks it immediately.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dsp/correlate.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"
#include "vanatta/mismatch.hpp"

namespace vab {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("VAB_THREADS");
    common::set_thread_count(0);
  }
  void TearDown() override { common::set_thread_count(0); }
};

void expect_sweeps_identical(const std::vector<sim::SweepPoint>& a,
                             const std::vector<sim::SweepPoint>& b, unsigned threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact equality on purpose: error *counts* and the bit-patterns of the
    // floating-point aggregates, not just the BER to some tolerance.
    EXPECT_EQ(a[i].errors, b[i].errors) << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].bits, b[i].bits) << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].range_m, b[i].range_m) << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].ber, b[i].ber) << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].snr_db, b[i].snr_db) << "threads=" << threads << " point " << i;
  }
}

void expect_waveform_stats_identical(const sim::WaveformStats& a,
                                     const sim::WaveformStats& b, unsigned threads) {
  EXPECT_EQ(a.trials, b.trials) << "threads=" << threads;
  EXPECT_EQ(a.frames_synced, b.frames_synced) << "threads=" << threads;
  EXPECT_EQ(a.frames_ok, b.frames_ok) << "threads=" << threads;
  EXPECT_EQ(a.total_bits, b.total_bits) << "threads=" << threads;
  EXPECT_EQ(a.bit_errors, b.bit_errors) << "threads=" << threads;
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << "threads=" << threads;
  EXPECT_EQ(a.mean_corr_peak, b.mean_corr_peak) << "threads=" << threads;
  EXPECT_EQ(a.mean_sic_suppression_db, b.mean_sic_suppression_db)
      << "threads=" << threads;
}

TEST_F(DeterminismTest, BerSweepBitIdenticalAcrossThreadCounts) {
  const sim::Scenario s = sim::vab_river_scenario();
  const rvec ranges{50, 150, 250, 350};
  auto run = [&](unsigned threads) {
    common::set_thread_count(threads);
    common::Rng rng(42);
    return sim::ber_vs_range_sweep(s, ranges, 200, 512, rng);
  };
  const auto serial = run(1);
  // The sweep must produce real, countable errors for the check to bite.
  std::size_t total_errors = 0;
  for (const auto& p : serial) total_errors += p.errors;
  ASSERT_GT(total_errors, 0u);
  for (unsigned t : kThreadCounts) expect_sweeps_identical(serial, run(t), t);
}

TEST_F(DeterminismTest, WaveformTrialsBitIdenticalAcrossThreadCounts) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 40.0;  // short range: full-chain trials stay fast
  s.env.fading_sigma_db = 0.0;
  auto run = [&](unsigned threads) {
    common::set_thread_count(threads);
    common::Rng rng(42);
    return sim::run_waveform_trials(s, 6, 32, rng);
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.trials, 6u);
  ASSERT_GT(serial.frames_synced, 0u);
  for (unsigned t : kThreadCounts) expect_waveform_stats_identical(serial, run(t), t);
}

TEST_F(DeterminismTest, WaveformBatchMatchesPerJobRuns) {
  // The flat (job, trial) fan-out must reproduce per-job run_waveform_trials
  // bit-for-bit, at every thread count.
  std::vector<sim::WaveformJob> jobs;
  common::Rng master(7);
  for (double r : {30.0, 45.0}) {
    sim::WaveformJob j;
    j.scenario = sim::vab_river_scenario();
    j.scenario.range_m = r;
    j.scenario.env.fading_sigma_db = 0.0;
    j.trials = 3;
    j.payload_bits = 24;
    j.rng = master.child(static_cast<std::uint64_t>(r));
    jobs.push_back(j);
  }
  common::set_thread_count(1);
  std::vector<sim::WaveformStats> reference;
  for (auto& j : jobs) {
    common::Rng rng = j.rng;
    reference.push_back(
        sim::run_waveform_trials(j.scenario, j.trials, j.payload_bits, rng));
  }
  for (unsigned t : kThreadCounts) {
    common::set_thread_count(t);
    const auto batch = sim::run_waveform_batch(jobs);
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t j = 0; j < batch.size(); ++j)
      expect_waveform_stats_identical(reference[j], batch[j], t);
  }
}

TEST_F(DeterminismTest, MismatchMonteCarloBitIdenticalAcrossThreadCounts) {
  vanatta::VanAttaConfig cfg;
  cfg.n_elements = 8;
  auto run = [&](unsigned threads) {
    common::set_thread_count(threads);
    common::Rng rng(11);
    return vanatta::mismatch_monte_carlo(cfg, 0.0, 18500.0, 0.2, 0.5, 300, rng);
  };
  const auto serial = run(1);
  for (unsigned t : kThreadCounts) {
    const auto r = run(t);
    EXPECT_EQ(serial.mean_loss_db, r.mean_loss_db) << "threads=" << t;
    EXPECT_EQ(serial.p95_loss_db, r.p95_loss_db) << "threads=" << t;
    EXPECT_EQ(serial.worst_loss_db, r.worst_loss_db) << "threads=" << t;
  }
}

TEST_F(DeterminismTest, FftCorrelationPipelineBitIdenticalAcrossThreadCounts) {
  // The FFT overlap-save correlation path runs inside worker threads with
  // thread-local plan caches and scratch arenas. Per-item results must be
  // bit-identical regardless of which thread (and hence which cache/arena)
  // serves the item, at 1, 2 and 8 threads.
  constexpr std::size_t kItems = 24;
  auto run = [&](unsigned threads) {
    common::set_thread_count(threads);
    std::vector<std::pair<std::size_t, double>> peaks(kItems);
    common::parallel_for(std::size_t{0}, kItems, [&](std::size_t i) {
      common::Rng master(97);
      common::Rng rng = master.child(i);
      cvec ref(360);
      for (auto& v : ref) v = rng.complex_gaussian();
      cvec sig(6000);
      for (auto& v : sig) v = 0.2 * rng.complex_gaussian();
      const std::size_t at = 500 + 200 * i;
      for (std::size_t n = 0; n < ref.size(); ++n) sig[at + n] += ref[n];
      const auto peak = dsp::find_peak(sig, ref, 0.5);
      peaks[i] = peak ? std::make_pair(peak->index, peak->value)
                      : std::make_pair(std::size_t{0}, -1.0);
    });
    return peaks;
  };
  const auto serial = run(1);
  for (std::size_t i = 0; i < kItems; ++i)
    ASSERT_EQ(serial[i].first, 500 + 200 * i) << "item " << i;
  for (unsigned t : kThreadCounts) {
    const auto r = run(t);
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(serial[i].first, r[i].first) << "threads=" << t << " item " << i;
      EXPECT_EQ(serial[i].second, r[i].second) << "threads=" << t << " item " << i;
    }
  }
}

TEST_F(DeterminismTest, VabThreadsEnvGivesSameResults) {
  // The env path (how users set the count) must agree with the API path.
  const sim::Scenario s = sim::vab_river_scenario();
  const rvec ranges{100, 300};
  common::set_thread_count(1);
  common::Rng r1(5);
  const auto serial = sim::ber_vs_range_sweep(s, ranges, 100, 256, r1);
  setenv("VAB_THREADS", "8", 1);
  common::set_thread_count(0);
  common::Rng r2(5);
  const auto env_run = sim::ber_vs_range_sweep(s, ranges, 100, 256, r2);
  unsetenv("VAB_THREADS");
  expect_sweeps_identical(serial, env_run, 8);
}

}  // namespace
}  // namespace vab
