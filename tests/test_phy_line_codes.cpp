// FM0 uplink coding, PIE downlink coding, SIC and the equalizer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/equalizer.hpp"
#include "phy/fm0.hpp"
#include "phy/pie.hpp"
#include "phy/sic.hpp"

namespace vab::phy {
namespace {

TEST(Fm0, EncodeDecodeRoundTrip) {
  common::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const bitvec bits = rng.random_bits(64);
    EXPECT_EQ(fm0_decode(fm0_encode(bits)), bits);
  }
}

TEST(Fm0, TwoChipsPerBit) {
  EXPECT_EQ(fm0_encode(bitvec(10, 1)).size(), 20u);
}

TEST(Fm0, AlwaysTransitionsAtBitBoundary) {
  common::Rng rng(2);
  const bitvec bits = rng.random_bits(100);
  const bitvec chips = fm0_encode(bits);
  for (std::size_t b = 1; b < bits.size(); ++b) {
    // Last chip of bit b-1 differs from first chip of bit b.
    EXPECT_NE(chips[2 * b - 1], chips[2 * b]) << "bit " << b;
  }
}

TEST(Fm0, MaxRunLengthIsTwo) {
  common::Rng rng(3);
  const bitvec chips = fm0_encode(rng.random_bits(500));
  std::size_t run = 1, max_run = 1;
  for (std::size_t i = 1; i < chips.size(); ++i) {
    run = (chips[i] == chips[i - 1]) ? run + 1 : 1;
    max_run = std::max(max_run, run);
  }
  EXPECT_LE(max_run, 2u);
}

TEST(Fm0, DcBalanced) {
  common::Rng rng(4);
  const bitvec chips = fm0_encode(rng.random_bits(2000));
  double sum = 0.0;
  for (auto c : chips) sum += c ? 1.0 : -1.0;
  EXPECT_LT(std::abs(sum) / static_cast<double>(chips.size()), 0.05);
}

TEST(Fm0, SoftDecodePhaseInvariant) {
  common::Rng rng(5);
  const bitvec bits = rng.random_bits(32);
  const bitvec chips = fm0_encode(bits);
  rvec soft(chips.size()), soft_flipped(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    soft[i] = chips[i] ? 1.0 : -1.0;
    soft_flipped[i] = -soft[i];
  }
  EXPECT_EQ(fm0_decode_soft(soft), bits);
  EXPECT_EQ(fm0_decode_soft(soft_flipped), bits);  // BPSK ambiguity tolerated
}

TEST(Fm0, SoftDecodeSurvivesScaling) {
  common::Rng rng(6);
  const bitvec bits = rng.random_bits(32);
  const bitvec chips = fm0_encode(bits);
  rvec soft(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i)
    soft[i] = (chips[i] ? 1.0 : -1.0) * 1e-6;
  EXPECT_EQ(fm0_decode_soft(soft), bits);
}

TEST(Fm0, PreambleIsBarker13) {
  const rvec lv = fm0_preamble_levels();
  ASSERT_EQ(lv.size(), 13u);
  // Barker autocorrelation: off-peak sidelobes at most 1 (in absolute sum).
  for (std::size_t lag = 1; lag < lv.size(); ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < lv.size(); ++i) acc += lv[i] * lv[i + lag];
    EXPECT_LE(std::abs(acc), 1.0 + 1e-9) << "lag " << lag;
  }
}

TEST(Pie, EncodeDecodeRoundTrip) {
  common::Rng rng(7);
  const PieConfig cfg;
  for (int trial = 0; trial < 10; ++trial) {
    const bitvec bits = rng.random_bits(24);
    const rvec env = pie_encode_envelope(bits, cfg, 8000.0);
    const auto decoded = pie_decode_envelope(env, cfg, 8000.0);
    ASSERT_TRUE(decoded.has_value()) << trial;
    EXPECT_EQ(*decoded, bits) << trial;
  }
}

TEST(Pie, OnesTakeLongerThanZeros) {
  const PieConfig cfg;
  const rvec all0 = pie_encode_envelope(bitvec(16, 0), cfg, 8000.0);
  const rvec all1 = pie_encode_envelope(bitvec(16, 1), cfg, 8000.0);
  EXPECT_GT(all1.size(), all0.size());
}

TEST(Pie, SurvivesAmplitudeScalingAndNoise) {
  common::Rng rng(8);
  const PieConfig cfg;
  const bitvec bits = rng.random_bits(16);
  rvec env = pie_encode_envelope(bits, cfg, 8000.0);
  for (auto& v : env) v = 0.3 * v + 0.02 * std::abs(rng.gaussian());
  const auto decoded = pie_decode_envelope(env, cfg, 8000.0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(Pie, NoDelimiterNoDecode) {
  EXPECT_FALSE(pie_decode_envelope(rvec(1000, 1.0), PieConfig{}, 8000.0).has_value());
  EXPECT_FALSE(pie_decode_envelope(rvec{}, PieConfig{}, 8000.0).has_value());
}

TEST(Pie, DurationEstimateCoversWaveform) {
  const PieConfig cfg;
  const bitvec bits(32, 1);  // worst case
  const rvec env = pie_encode_envelope(bits, cfg, 8000.0);
  EXPECT_LE(static_cast<double>(env.size()) / 8000.0, pie_duration_s(32, cfg) + 1e-6);
}

TEST(Sic, RemovesConstantCarrier) {
  SicConfig cfg;
  SelfInterferenceCanceller sic(cfg, 1000.0, 8000.0);
  cvec x(4000, cplx{100.0, 50.0});
  const cvec y = sic.process(x);
  double residual = 0.0;
  for (std::size_t i = 1000; i < y.size(); ++i)
    residual = std::max(residual, std::abs(y[i]));
  EXPECT_LT(residual, 1e-6);
  EXPECT_GT(sic.last_suppression_db(), 60.0);
}

TEST(Sic, PreservesChipRateSignal) {
  SicConfig cfg;
  SelfInterferenceCanceller sic(cfg, 1000.0, 8000.0);
  // Carrier + alternating-chip signal at 500 Hz.
  cvec x(8000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double chip = ((i / 8) % 2) ? 1.0 : -1.0;
    x[i] = cplx{50.0, 0.0} + cplx{0.1 * chip, 0.0};
  }
  const cvec y = sic.process(x);
  double sig = 0.0;
  for (std::size_t i = 2000; i < y.size(); ++i) sig += std::norm(y[i]);
  sig /= static_cast<double>(y.size() - 2000);
  EXPECT_NEAR(std::sqrt(sig), 0.1, 0.02);  // modulation survives
}

TEST(Sic, TracksSlowDrift) {
  SicConfig cfg;
  SelfInterferenceCanceller sic(cfg, 1000.0, 8000.0);
  cvec x(16000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Carrier amplitude drifting 1%/second at 8 kHz.
    const double a = 100.0 * (1.0 + 0.01 * static_cast<double>(i) / 8000.0);
    x[i] = cplx{a, 0.0};
  }
  const cvec y = sic.process(x);
  double residual = 0.0;
  for (std::size_t i = 8000; i < y.size(); ++i)
    residual = std::max(residual, std::abs(y[i]));
  EXPECT_LT(residual, 0.2);  // drift absorbed by the tracker
}

TEST(Equalizer, RecoversKnownChannel) {
  common::Rng rng(9);
  // Known +/-1 training through a 3-tap channel.
  const cvec h{{1.0, 0.2}, {0.45, -0.3}, {-0.2, 0.1}};
  rvec known(64);
  for (auto& v : known) v = rng.coin() ? 1.0 : -1.0;
  cvec observed(known.size(), cplx{});
  const cplx baseline{0.05, -0.02};
  for (std::size_t c = 0; c < known.size(); ++c) {
    observed[c] = baseline;
    for (std::size_t k = 0; k < h.size(); ++k)
      if (c >= k) observed[c] += h[k] * known[c - k];
  }
  const auto est = estimate_channel_ls(observed, known, 3, 0);
  ASSERT_EQ(est.taps.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(std::abs(est.taps[k] - h[k]), 0.0, 1e-6) << k;
  EXPECT_NEAR(std::abs(est.baseline - baseline), 0.0, 1e-6);
  EXPECT_LT(est.fit_error, 1e-10);
}

TEST(Equalizer, ZfInverseFlattensChannel) {
  common::Rng rng(10);
  ChannelEstimate est;
  est.taps = {{1.0, 0.0}, {0.5, 0.2}};
  est.precursors = 0;
  std::size_t delay = 0;
  const cvec w = design_zf_equalizer(est, 9, delay);
  // Push known data through channel then equalizer; expect near-identity.
  rvec data(128);
  for (auto& v : data) v = rng.coin() ? 1.0 : -1.0;
  cvec through(data.size(), cplx{});
  for (std::size_t c = 0; c < data.size(); ++c)
    for (std::size_t k = 0; k < est.taps.size(); ++k)
      if (c >= k) through[c] += est.taps[k] * data[c - k];
  const cvec eq = equalize(through, w, delay);
  double err = 0.0;
  for (std::size_t c = 10; c + 10 < data.size(); ++c)
    err += std::norm(eq[c] - cplx{data[c], 0.0});
  EXPECT_LT(err / static_cast<double>(data.size() - 20), 0.01);
}

TEST(Equalizer, ValidatesInputs) {
  EXPECT_THROW(estimate_channel_ls(cvec(8), rvec(9), 2, 0), std::invalid_argument);
  EXPECT_THROW(estimate_channel_ls(cvec(8), rvec(8), 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vab::phy
