// Cross-fidelity equivalence: the abstracted PHY (link-budget SNR -> BER ->
// frame-loss draw) must agree with the full waveform pipeline on the overlap
// scenarios where both models are trustworthy.
//
// Calibrated tolerance bands (see DESIGN.md):
//  - solidly good links (mid range, SNR well above the waterfall): both
//    fidelities deliver; |rate_budget - rate_waveform| <= 0.15.
//  - solidly dead links (far past the budget's maximum range): both starve;
//    each delivery rate <= 0.10.
//  - the waterfall edge itself is EXCLUDED from equivalence: the waveform
//    chain carries up to ~6 dB of implementation loss relative to the
//    analytic budget (see WaveformE2E.LinkBudgetCalibratesAgainstWaveformSnr),
//    which is decisive exactly there. That disagreement region is why the
//    adaptive fidelity policy escalates links within escalate_margin_db of
//    the waterfall to the waveform model instead of trusting the budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/rng.hpp"
#include "net/app.hpp"
#include "net/frame.hpp"
#include "sim/fleet/transport.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

namespace vab {
namespace {

using sim::fleet::FidelityMode;
using sim::fleet::FidelityPolicy;
using sim::fleet::FleetLinkTransport;

constexpr std::size_t kReportBits = 96;  // header + packed reading + CRC

bytes report_wire(std::uint8_t seq) {
  net::Frame f;
  f.addr = 0;
  f.type = net::FrameType::kSensorReport;
  f.seq = seq;
  f.payload = net::encode_reading({14.0, 101.3, 3100});
  return net::serialize(f);
}

/// Delivery rate of `trials` polls of one link at `range_m` under `mode`:
/// the wire must survive the transport AND still parse with a valid CRC.
double delivery_rate(const sim::Scenario& base, FidelityMode mode,
                     double range_m, std::size_t trials, std::uint64_t seed) {
  FidelityPolicy policy;
  policy.mode = mode;
  policy.max_waveform_polls = trials + 1;
  FleetLinkTransport tp(base, policy, common::Db{3.0}, kReportBits);
  const common::Rng rng(seed);
  tp.begin_window({{1, range_m, common::SnrDb{0.0}}}, rng.child(1));
  common::Rng poll_rng = rng.child(2);
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    bytes wire = report_wire(static_cast<std::uint8_t>(t));
    if (!tp.uplink_delivered(0, wire, poll_rng)) continue;
    const net::ParseResult parsed = net::parse_checked(wire);
    if (parsed.frame && parsed.frame->type == net::FrameType::kSensorReport)
      ++delivered;
  }
  return static_cast<double>(delivered) / static_cast<double>(trials);
}

sim::Scenario overlap_scenario() {
  sim::Scenario s = sim::vab_river_scenario();
  s.env.fading_sigma_db = 0.0;  // no shadowing: the models' means must meet
  return s;
}

TEST(FleetFidelity, MidRangeDeliveryMatchesWaveform) {
  const sim::Scenario s = overlap_scenario();
  const double budget = delivery_rate(s, FidelityMode::kBudgetOnly, 100.0, 32, 31);
  const double wave = delivery_rate(s, FidelityMode::kWaveformOnly, 100.0, 12, 32);
  EXPECT_GE(budget, 0.9);
  EXPECT_GE(wave, 0.9);
  EXPECT_NEAR(budget, wave, 0.15);
}

TEST(FleetFidelity, DeadRangeStarvesUnderBothFidelities) {
  const sim::Scenario s = overlap_scenario();
  const double budget = delivery_rate(s, FidelityMode::kBudgetOnly, 700.0, 32, 33);
  const double wave = delivery_rate(s, FidelityMode::kWaveformOnly, 700.0, 6, 34);
  EXPECT_LE(budget, 0.10);
  EXPECT_LE(wave, 0.10);
}

TEST(FleetFidelity, BudgetPathMatchesItsOwnAnalyticMean) {
  // With lognormal shadowing on, the budget path's empirical delivery rate
  // must converge to E_fade[p(snr + fade)]; estimate the expectation by
  // Gauss-grid integration and require 3-sigma binomial agreement. This
  // pins the draw composition (one gaussian + one coin per poll).
  sim::Scenario s = sim::vab_river_scenario();
  s.env.fading_sigma_db = 3.0;
  const sim::LinkBudget lb(s);
  const double range = 290.0;
  const double snr = lb.evaluate(common::Meters{range}).snr_chip_db.raw();

  double expected = 0.0, weight = 0.0;
  for (double z = -4.0; z <= 4.0; z += 0.05) {
    const double w = std::exp(-0.5 * z * z);
    expected += w * FleetLinkTransport::frame_delivery_prob(
                        common::SnrDb{snr + 3.0 * z}, kReportBits);
    weight += w;
  }
  expected /= weight;

  const std::size_t trials = 3000;
  const double rate =
      delivery_rate(s, FidelityMode::kBudgetOnly, range, trials, 35);
  const double sigma = std::sqrt(expected * (1.0 - expected) /
                                 static_cast<double>(trials));
  EXPECT_NEAR(rate, expected, 3.0 * sigma + 0.01);
}

TEST(FleetFidelity, DeliveryRatesDecayWithRangeUnderBothFidelities) {
  const sim::Scenario s = overlap_scenario();
  const double b_near = delivery_rate(s, FidelityMode::kBudgetOnly, 50.0, 24, 36);
  const double b_far = delivery_rate(s, FidelityMode::kBudgetOnly, 700.0, 24, 36);
  EXPECT_GE(b_near, b_far);
  const double w_near = delivery_rate(s, FidelityMode::kWaveformOnly, 50.0, 6, 37);
  const double w_far = delivery_rate(s, FidelityMode::kWaveformOnly, 700.0, 6, 37);
  EXPECT_GE(w_near, w_far);
}

TEST(FleetFidelity, EscalationRegionCoversTheModelDisagreementBand) {
  // The default policy's escalation margin must cover the range band where
  // the budget's predicted delivery transitions from good to dead — i.e. a
  // link the budget calls marginal is exactly a link sent to the waveform.
  const sim::Scenario s = overlap_scenario();
  const FidelityPolicy policy;  // defaults: adaptive, 2 dB margin
  const FleetLinkTransport tp(s, policy, common::Db{3.0}, kReportBits);
  const double w = tp.waterfall_snr_db().raw();
  const double p_hi = FleetLinkTransport::frame_delivery_prob(
      common::SnrDb{w + policy.escalate_margin_db}, kReportBits);
  const double p_lo = FleetLinkTransport::frame_delivery_prob(
      common::SnrDb{w - policy.escalate_margin_db}, kReportBits);
  EXPECT_GT(p_hi, 0.75);  // above the margin: budget is trustworthy-good
  EXPECT_LT(p_lo, 0.25);  // below the margin: budget is trustworthy-dead
}

}  // namespace
}  // namespace vab
