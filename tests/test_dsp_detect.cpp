// Correlation, Goertzel, LMS, AGC and spectral estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/agc.hpp"
#include "dsp/correlate.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/lms.hpp"
#include "dsp/mixer.hpp"
#include "dsp/spectrum.hpp"

namespace vab::dsp {
namespace {

TEST(Correlate, FindsEmbeddedPattern) {
  common::Rng rng(1);
  cvec ref(40);
  for (auto& v : ref) v = rng.complex_gaussian();
  cvec sig(500);
  for (auto& v : sig) v = 0.1 * rng.complex_gaussian();
  const std::size_t at = 123;
  for (std::size_t i = 0; i < ref.size(); ++i) sig[at + i] += ref[i];
  const auto peak = find_peak(sig, ref, 0.5);
  ASSERT_TRUE(peak.has_value());
  EXPECT_EQ(peak->index, at);
  EXPECT_GT(peak->value, 0.9);
}

TEST(Correlate, PhaseCarriedInRawValue) {
  cvec ref(32, cplx{1.0, 0.0});
  const cplx rot = std::exp(cplx{0.0, 0.7});
  cvec sig(100);
  for (std::size_t i = 0; i < ref.size(); ++i) sig[20 + i] = rot;
  const auto peak = find_peak(sig, ref, 0.3);
  ASSERT_TRUE(peak.has_value());
  EXPECT_NEAR(std::arg(peak->raw), 0.7, 1e-6);
}

TEST(Correlate, BelowThresholdReturnsNothing) {
  common::Rng rng(2);
  cvec ref(32);
  for (auto& v : ref) v = rng.complex_gaussian();
  cvec noise(400);
  for (auto& v : noise) v = rng.complex_gaussian();
  EXPECT_FALSE(find_peak(noise, ref, 0.9).has_value());
}

cvec random_cvec(std::size_t n, unsigned seed) {
  common::Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian();
  return x;
}

void expect_correlates_equivalent(const cvec& sig, const cvec& ref,
                                  const char* label) {
  const cvec naive = sliding_correlate_naive(sig, ref);
  const cvec fast = sliding_correlate(sig, ref);
  ASSERT_EQ(fast.size(), naive.size()) << label;
  double scale = 0.0;
  for (const auto& v : naive) scale = std::max(scale, std::abs(v));
  for (std::size_t k = 0; k < naive.size(); ++k)
    EXPECT_LE(std::abs(fast[k] - naive[k]), 1e-9 * std::max(scale, 1.0))
        << label << " lag " << k;
}

TEST(CorrelateFft, MatchesNaiveOnSyncLengthProblem) {
  // The demod sync shape: long capture, a few-hundred-sample reference.
  // Big enough that the FFT overlap-save path is guaranteed to engage.
  expect_correlates_equivalent(random_cvec(4096, 20), random_cvec(360, 21),
                               "sync-length");
}

TEST(CorrelateFft, MatchesNaiveAcrossBlockBoundaries) {
  // Lengths chosen so the overlap-save loop runs several partial blocks.
  expect_correlates_equivalent(random_cvec(3000, 22), random_cvec(257, 23),
                               "multi-block");
}

TEST(CorrelateFft, DegenerateSizes) {
  // Signal equal to reference length: exactly one output lag.
  {
    const cvec sig = random_cvec(360, 24);
    const cvec ref = random_cvec(360, 25);
    const cvec out = sliding_correlate(sig, ref);
    ASSERT_EQ(out.size(), 1u);
    expect_correlates_equivalent(sig, ref, "equal-length");
  }
  // Signal shorter than the reference: no valid alignment.
  EXPECT_TRUE(sliding_correlate(random_cvec(100, 26), random_cvec(101, 27)).empty());
  // Empty reference.
  EXPECT_TRUE(sliding_correlate(random_cvec(64, 28), cvec{}).empty());
  // Single-sample signal and reference.
  {
    const cvec sig{cplx{2.0, 1.0}};
    const cvec ref{cplx{0.5, -0.5}};
    const cvec out = sliding_correlate(sig, ref);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], sig[0] * std::conj(ref[0]));
  }
  // Single-tap reference over a long signal.
  expect_correlates_equivalent(random_cvec(512, 29), random_cvec(1, 30),
                               "one-tap-ref");
}

TEST(CorrelateFft, NormalizedMatchesNaiveDefinition) {
  const cvec sig = random_cvec(4096, 31);
  const cvec ref = random_cvec(360, 32);
  const rvec fast = normalized_correlate(sig, ref);
  const cvec dot = sliding_correlate_naive(sig, ref);
  const double ref_norm = std::sqrt(energy(ref));
  ASSERT_EQ(fast.size(), dot.size());
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double win = 0.0;
    for (std::size_t n = 0; n < ref.size(); ++n) win += std::norm(sig[k + n]);
    const double expect = std::abs(dot[k]) / (std::sqrt(win) * ref_norm);
    EXPECT_NEAR(fast[k], expect, 1e-9) << "lag " << k;
  }
}

TEST(CorrelateFft, FindPeakAgreesWithNaiveScan) {
  // Same embedded-pattern setup as FindsEmbeddedPattern but long enough to
  // force the FFT path; the chosen peak must match a naive argmax scan and
  // carry the exact direct-dot raw value.
  common::Rng rng(33);
  cvec ref(360);
  for (auto& v : ref) v = rng.complex_gaussian();
  cvec sig(8000);
  for (auto& v : sig) v = 0.1 * rng.complex_gaussian();
  const std::size_t at = 3217;
  for (std::size_t i = 0; i < ref.size(); ++i) sig[at + i] += ref[i];
  const auto peak = find_peak(sig, ref, 0.5);
  ASSERT_TRUE(peak.has_value());
  EXPECT_EQ(peak->index, at);
  cplx raw{};
  for (std::size_t n = 0; n < ref.size(); ++n) raw += sig[at + n] * std::conj(ref[n]);
  EXPECT_EQ(peak->raw, raw);  // recomputed directly -> exactly equal
}

TEST(Correlate, EnergyAndRms) {
  const rvec x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(energy(x), 25.0);
  EXPECT_NEAR(rms(x), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms(rvec{}), 0.0);
}

TEST(Goertzel, MatchesToneAmplitude) {
  const double fs = 8000.0;
  const rvec x = make_tone(440.0, fs, 4000, 2.0);
  // Real tone of amplitude A has a single-bin complex coefficient ~A/2.
  EXPECT_NEAR(std::abs(goertzel(x, 440.0, fs)), 1.0, 0.01);
  EXPECT_LT(std::abs(goertzel(x, 1000.0, fs)), 0.02);
}

TEST(Goertzel, StreamingBlocksDetectTone) {
  const double fs = 8000.0;
  GoertzelDetector det(440.0, fs, 400);
  const rvec x = make_tone(440.0, fs, 1200, 1.0);
  int blocks = 0;
  double power = 0.0;
  for (double v : x)
    if (det.push(v, power)) {
      ++blocks;
      EXPECT_NEAR(power, 0.25, 0.02);  // (A/2)^2
    }
  EXPECT_EQ(blocks, 3);
}

TEST(Lms, CancelsCorrelatedInterference) {
  common::Rng rng(3);
  LmsCanceller lms(4, 0.5);
  // Interference = scaled/rotated copy of the reference; signal = small noise.
  const cplx coupling{0.8, -0.3};
  double residual_late = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const cplx ref = rng.complex_gaussian();
    const cplx input = coupling * ref;
    const cplx err = lms.process(input, ref);
    if (i > 2500) residual_late += std::norm(err);
  }
  EXPECT_LT(residual_late / 500.0, 1e-4);
}

TEST(Lms, FreezeStopsAdaptation) {
  LmsCanceller lms(2, 0.5);
  lms.set_adapting(false);
  for (int i = 0; i < 100; ++i) lms.process(cplx{1.0, 0.0}, cplx{1.0, 0.0});
  for (const auto& w : lms.weights()) EXPECT_EQ(w, cplx{});
}

TEST(Lms, ParameterValidation) {
  EXPECT_THROW(LmsCanceller(0, 0.5), std::invalid_argument);
  EXPECT_THROW(LmsCanceller(4, 2.5), std::invalid_argument);
}

TEST(Agc, ConvergesToTargetRms) {
  common::Rng rng(4);
  Agc agc(1.0, 10.0, 100.0);
  double rms_acc = 0.0;
  int count = 0;
  for (int i = 0; i < 5000; ++i) {
    const double y = agc.process(0.01 * rng.gaussian());
    if (i > 4000) {
      rms_acc += y * y;
      ++count;
    }
  }
  EXPECT_NEAR(std::sqrt(rms_acc / count), 1.0, 0.35);
}

TEST(Agc, GainCapped) {
  Agc agc(1.0, 1.0, 1.0, 100.0);
  for (int i = 0; i < 100; ++i) agc.process(1e-9);
  EXPECT_LE(agc.gain(), 100.0);
}

TEST(Welch, WhiteNoisePsdFlatAtCorrectLevel) {
  common::Rng rng(5);
  const double fs = 10000.0;
  const double sigma = 0.5;
  rvec x(200000);
  for (auto& v : x) v = sigma * rng.gaussian();
  const Psd psd = welch_psd(x, fs, 1024);
  // White noise: PSD = sigma^2 / fs per Hz (one-sided doubles it except at DC).
  const double expect_db = 10.0 * std::log10(2.0 * sigma * sigma / fs);
  double acc = 0.0;
  int cnt = 0;
  for (std::size_t k = 10; k + 10 < psd.freq_hz.size(); ++k) {
    acc += psd.power_db[k];
    ++cnt;
  }
  EXPECT_NEAR(acc / cnt, expect_db, 0.5);
}

TEST(Welch, TonePeakAtCorrectFrequency) {
  const double fs = 48000.0;
  const rvec x = make_tone(1500.0, fs, 48000);
  const Psd psd = welch_psd(x, fs, 2048);
  std::size_t best = 0;
  for (std::size_t k = 1; k < psd.power_db.size(); ++k)
    if (psd.power_db[k] > psd.power_db[best]) best = k;
  EXPECT_NEAR(psd.freq_hz[best], 1500.0, fs / 2048.0);
}

TEST(Welch, BandPowerIntegratesTone) {
  const double fs = 48000.0;
  const rvec x = make_tone(1500.0, fs, 96000, 2.0);  // power = A^2/2 = 2
  const double p = band_power(x, fs, 1200.0, 1800.0, 2048);
  EXPECT_NEAR(p, 2.0, 0.1);
}

}  // namespace
}  // namespace vab::dsp
