// Fault-matrix regression suite: the enforcement arm of the fault-injection
// subsystem and the reader-MAC ARQ.
//
// Three layers of locks:
//  1. Fault primitives — Gilbert–Elliott burst statistics, frame corruption
//     fates, empty-plan no-op guarantees.
//  2. ARQ edge cases under fixed seeds — lost ACK (idempotent dedupe on
//     seq), retry budget exhaustion, backoff ceiling, demotion followed by
//     re-discovery.
//  3. The matrix — {fault kind} x {intensity} x {1/2/8 threads}: protocol
//     outcomes (delivery ratio, rounds-to-complete, retry counts) must be
//     bit-identical for every thread count, and the zero-fault path must be
//     bit-identical to a run with no injector at all.
//  4. The MCS dimension — every ARQ edge case re-runs pinned to the lowest
//     and highest ladder rung, and a {fault kind} x {rung} x {1/2/8
//     threads} matrix pins that fault outcomes are rung-independent where
//     they should be (the injector and the ARQ never consult the rate).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "channel/waveform_channel.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "net/discovery.hpp"
#include "net/inventory.hpp"
#include "net/mcs/transport.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace vab {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FrameFate;
using net::InventoryConfig;
using net::InventoryResult;
using net::run_inventory;

std::vector<std::uint8_t> make_population(std::size_t n) {
  std::vector<std::uint8_t> pop(n);
  for (std::size_t i = 0; i < n; ++i) pop[i] = static_cast<std::uint8_t>(i + 1);
  return pop;
}

FaultPlan burst_plan(double mean_loss_target, std::uint64_t seed = 0xB00F) {
  // Fix the chain dynamics and scale the bad-state dwell to hit the target:
  // pi_bad = p_gb / (p_gb + p_bg); with loss_bad = 1, loss_good = 0 the mean
  // loss equals pi_bad.
  FaultPlan plan;
  plan.seed = seed;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.p_good_to_bad =
      0.3 * mean_loss_target / (1.0 - mean_loss_target);
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  return plan;
}

// ---------------------------------------------------------------------------
// 1. Fault primitives
// ---------------------------------------------------------------------------

TEST(FaultPlanBasics, EmptyPlanIsEmptyAndDrawsNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.reply_lost());
    EXPECT_FALSE(inj.wake_missed());
    EXPECT_FALSE(inj.dropped_out());
    EXPECT_EQ(inj.clock_skew_s(1.0), 0.0);
  }
  bytes wire{1, 2, 3, 4, 5, 6};
  const bytes before = wire;
  EXPECT_EQ(inj.corrupt_frame(wire), FrameFate::kIntact);
  EXPECT_EQ(wire, before);
  rvec samples(64, 1.0);
  EXPECT_FALSE(inj.apply_snr_dip(samples));
  for (double v : samples) EXPECT_EQ(v, 1.0);
}

TEST(FaultPlanBasics, DefaultScenariosCarryEmptyPlans) {
  EXPECT_TRUE(sim::vab_river_scenario().fault.empty());
  EXPECT_TRUE(sim::vab_ocean_scenario().fault.empty());
  EXPECT_TRUE(sim::pab_river_scenario().fault.empty());
  EXPECT_FALSE(sim::hostile_river_scenario().fault.empty());
}

TEST(GilbertElliott, MeanLossMatchesStationaryDistribution) {
  const FaultPlan plan = burst_plan(0.2);
  EXPECT_NEAR(plan.burst.mean_loss(), 0.2, 1e-12);

  FaultInjector inj(plan);
  std::size_t lost = 0;
  const std::size_t n = 200000;
  for (std::size_t i = 0; i < n; ++i) lost += inj.reply_lost() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / static_cast<double>(n), 0.2, 0.02);
}

TEST(GilbertElliott, LossComesInBursts) {
  // Conditional loss probability after a loss must far exceed the marginal:
  // that is what distinguishes a GE channel from i.i.d. loss.
  FaultInjector inj(burst_plan(0.2));
  std::size_t losses = 0, loss_after_loss = 0;
  bool prev = false;
  const std::size_t n = 100000;
  for (std::size_t i = 0; i < n; ++i) {
    const bool lost = inj.reply_lost();
    if (prev) {
      if (lost) ++loss_after_loss;
    }
    if (lost && i + 1 < n) ++losses;
    prev = lost;
  }
  const double conditional =
      static_cast<double>(loss_after_loss) / static_cast<double>(losses);
  EXPECT_GT(conditional, 0.5);  // bad state persists (1 - 0.3 = 0.7 nominal)
}

TEST(FaultPrimitives, CorruptFrameFatesAndDeterminism) {
  FaultPlan plan;
  plan.seed = 7;
  plan.frame_drop_prob = 0.2;
  plan.frame_truncate_prob = 0.2;
  plan.bit_flip_prob = 0.5;
  auto run = [&] {
    FaultInjector inj(plan);
    std::vector<FrameFate> fates;
    std::size_t dropped = 0, truncated = 0, corrupted = 0, intact = 0;
    for (int i = 0; i < 2000; ++i) {
      bytes wire(12, 0xAB);
      switch (inj.corrupt_frame(wire)) {
        case FrameFate::kDropped: ++dropped; break;
        case FrameFate::kTruncated:
          ++truncated;
          EXPECT_LT(wire.size(), 12u);
          EXPECT_GE(wire.size(), 1u);
          break;
        case FrameFate::kCorrupted: ++corrupted; EXPECT_NE(wire, bytes(12, 0xAB)); break;
        case FrameFate::kIntact: ++intact; EXPECT_EQ(wire, bytes(12, 0xAB)); break;
      }
    }
    return std::vector<std::size_t>{dropped, truncated, corrupted, intact};
  };
  const auto a = run();
  EXPECT_EQ(a, run());  // same plan seed -> same fate sequence
  for (std::size_t c : a) EXPECT_GT(c, 0u);
}

TEST(FaultPrimitives, SnrDipAttenuatesAWindow) {
  FaultPlan plan;
  plan.seed = 9;
  plan.snr_dip_prob = 1.0;
  plan.snr_dip_db = 20.0;
  plan.snr_dip_duration_frac = 0.25;
  FaultInjector inj(plan);
  rvec samples(1000, 1.0);
  ASSERT_TRUE(inj.apply_snr_dip(samples));
  std::size_t dipped = 0;
  for (double v : samples) {
    if (v < 0.99) {
      EXPECT_NEAR(v, 0.1, 1e-9);  // -20 dB
      ++dipped;
    }
  }
  EXPECT_EQ(dipped, 250u);
}

TEST(FaultPrimitives, ClockSkewBoundedByPlan) {
  FaultPlan plan;
  plan.seed = 11;
  plan.clock_skew_rel = 0.4;
  FaultInjector inj(plan);
  for (int i = 0; i < 1000; ++i) {
    const double skew = inj.clock_skew_s(2.0);
    EXPECT_LE(std::abs(skew), 0.8);
  }
}

// ---------------------------------------------------------------------------
// 2. ARQ edge cases (fixed seeds)
// ---------------------------------------------------------------------------

TEST(ArqEdgeCases, CleanChannelIsOnePollPerNode) {
  common::Rng rng(1);
  InventoryConfig cfg;
  const auto res = run_inventory(make_population(8), cfg, nullptr, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.delivered, 8u);
  EXPECT_EQ(res.polls, 8u);
  EXPECT_EQ(res.retries, 0u);
  EXPECT_EQ(res.duplicates, 0u);
  EXPECT_EQ(res.rounds, 1u);
  EXPECT_GT(res.duration_s, 0.0);
}

TEST(ArqEdgeCases, LostAckDeduplicatesOnSeq) {
  // Drop every ACK: each report is received, the node never hears the ACK,
  // and completion happens via the duplicate path — exactly once per node.
  common::Rng rng(2);
  InventoryConfig cfg;
  cfg.ack_loss_prob = 1.0;
  const auto res = run_inventory(make_population(5), cfg, nullptr, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.delivered, 5u);
  EXPECT_EQ(res.acks_lost, res.acks_sent);
  // Delivery is idempotent: stats count each node's report once.
  EXPECT_EQ(res.duplicates, 0u);  // inventory accepts on first receipt
}

TEST(ArqEdgeCases, IntermittentAckLossProducesDedupedDuplicates) {
  common::Rng rng(3);
  InventoryConfig cfg;
  cfg.ack_loss_prob = 0.0;
  cfg.reply_loss_prob = 0.4;  // forces re-polls; some reports got through
  cfg.arq.max_retries = 8;
  FaultPlan plan;
  plan.seed = 0xACED;
  FaultInjector inj(plan);
  const auto res = run_inventory(make_population(12), cfg, &inj, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.retries, 0u);
  EXPECT_EQ(res.delivered, 12u);
}

TEST(ArqEdgeCases, RetryBudgetExhaustionParksAndRecovers) {
  // A harsh burst plan with a tiny budget: some nodes exhaust their retry
  // budget in a round, get parked, and complete in a later round.
  common::Rng rng(4);
  InventoryConfig cfg;
  cfg.arq.max_retries = 1;
  cfg.arq.demote_after_misses = 50;  // demotion out of the way
  FaultInjector inj(burst_plan(0.5, 0xBAD));
  const auto res = run_inventory(make_population(10), cfg, &inj, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.budget_exhaustions, 0u);
  EXPECT_GT(res.rounds, 1u);
}

TEST(ArqEdgeCases, PermanentlyDarkNodeTerminatesIncomplete) {
  common::Rng rng(5);
  InventoryConfig cfg;
  cfg.max_polls = 200;
  FaultPlan plan;
  plan.seed = 13;
  plan.dropout_prob = 1.0;  // node never answers
  FaultInjector inj(plan);
  const auto res = run_inventory(make_population(3), cfg, &inj, rng);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.delivered, 0u);
  EXPECT_EQ(res.polls, 200u);  // bounded, no livelock
  EXPECT_EQ(res.delivery_ratio(), 0.0);
}

TEST(ArqEdgeCases, DemotionThenRediscoveryCompletes) {
  // demote_after_misses below the retry budget: bad bursts demote nodes to
  // re-discovery (costed, state wiped) and the inventory still completes.
  // Long bursts (mean ~6.7 polls) make 3 consecutive misses structural
  // rather than a coin-flip of the seed.
  common::Rng rng(6);
  InventoryConfig cfg;
  cfg.arq.max_retries = 6;
  cfg.arq.demote_after_misses = 2;
  FaultPlan plan;
  plan.seed = 0xDE40;
  plan.burst.p_good_to_bad = 0.5;
  plan.burst.p_bad_to_good = 0.15;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan);
  const auto res = run_inventory(make_population(10), cfg, &inj, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.demotions, 0u);
  EXPECT_EQ(res.rediscoveries, res.demotions);
  EXPECT_EQ(res.delivered, 10u);
}

TEST(ArqEdgeCases, AcceptanceBurstPlanTwentyPercent) {
  // The PR acceptance pin: a fixed-seed Gilbert–Elliott plan at 20% mean
  // loss must reach 100% delivery within the default retry budget.
  common::Rng rng(42);
  InventoryConfig cfg;
  FaultInjector inj(burst_plan(0.2, 0x20CE));
  const auto res = run_inventory(make_population(16), cfg, &inj, rng);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.delivery_ratio(), 1.0);
  EXPECT_GT(res.retries, 0u);       // the channel did bite
  EXPECT_LT(res.polls, 3 * 16u);    // and the ARQ paid a bounded price
}

// ---------------------------------------------------------------------------
// 3. The matrix: {kind} x {intensity} x {1/2/8 threads}
// ---------------------------------------------------------------------------

struct MatrixCell {
  const char* kind;
  double intensity;
  FaultPlan plan;
};

std::vector<MatrixCell> fault_matrix() {
  std::vector<MatrixCell> cells;
  for (double loss : {0.1, 0.2, 0.4}) cells.push_back({"burst", loss, burst_plan(loss)});
  for (double p : {0.05, 0.15, 0.3}) {
    FaultPlan plan;
    plan.seed = 0xC0 + static_cast<std::uint64_t>(p * 100);
    plan.frame_drop_prob = p;
    plan.frame_truncate_prob = p / 2;
    plan.bit_flip_prob = p;
    cells.push_back({"corrupt", p, plan});
  }
  for (double p : {0.1, 0.3}) {
    FaultPlan plan;
    plan.seed = 0xD0 + static_cast<std::uint64_t>(p * 100);
    plan.wake_miss_prob = p;
    plan.dropout_prob = p / 3;
    cells.push_back({"dropout", p, plan});
  }
  for (double rel : {0.3, 0.8}) {
    FaultPlan plan;
    plan.seed = 0xE0 + static_cast<std::uint64_t>(rel * 100);
    plan.clock_skew_rel = rel;
    cells.push_back({"skew", rel, plan});
  }
  return cells;
}

struct CellOutcome {
  std::size_t delivered = 0, polls = 0, retries = 0, timeouts = 0, duplicates = 0,
              demotions = 0, rounds = 0;
  double delivery_ratio = 0.0, duration_s = 0.0;
  bool complete = false;

  bool operator==(const CellOutcome&) const = default;
};

std::vector<CellOutcome> run_matrix(unsigned threads) {
  common::set_thread_count(threads);
  const auto cells = fault_matrix();
  common::Rng master(0xFA57);
  std::vector<CellOutcome> out(cells.size());
  common::parallel_for(0, cells.size(), [&](std::size_t c) {
    // Per-cell child stream + per-cell injector: the parallel discipline
    // every sweep in this repo follows.
    common::Rng rng = master.child(c);
    FaultInjector inj(cells[c].plan);
    InventoryConfig cfg;
    cfg.arq.demote_after_misses = 8;
    const InventoryResult r = run_inventory(make_population(12), cfg, &inj, rng);
    out[c] = CellOutcome{r.delivered,  r.polls,          r.retries,
                         r.timeouts,   r.duplicates,     r.demotions,
                         r.rounds,     r.delivery_ratio(), r.duration_s,
                         r.complete};
  });
  common::set_thread_count(0);
  return out;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("VAB_THREADS");
    common::set_thread_count(0);
  }
  void TearDown() override { common::set_thread_count(0); }
};

TEST_F(FaultMatrixTest, OutcomesBitIdenticalAcrossThreadCounts) {
  const auto serial = run_matrix(1);
  // The matrix must exercise the protocol: every cell delivers everything
  // (these intensities are inside the ARQ's envelope) and the channel bites.
  std::size_t total_retries = 0;
  for (const auto& cell : serial) {
    EXPECT_TRUE(cell.complete);
    EXPECT_EQ(cell.delivery_ratio, 1.0);
    total_retries += cell.retries;
  }
  EXPECT_GT(total_retries, 0u);

  for (unsigned threads : {2u, 8u}) {
    const auto parallel = run_matrix(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_EQ(parallel[c], serial[c])
          << "threads=" << threads << " cell=" << c << " ("
          << fault_matrix()[c].kind << " @ " << fault_matrix()[c].intensity << ")";
    }
  }
}

TEST_F(FaultMatrixTest, RunsAreReproducibleAtFixedSeed) {
  const auto a = run_matrix(2);
  const auto b = run_matrix(2);
  EXPECT_EQ(a, b);
}

TEST_F(FaultMatrixTest, BurstLossCostsExtraPolls) {
  // Every burst cell must pay more polls than the loss-free count (one per
  // node): the matrix would not be measuring anything otherwise. Poll counts
  // between adjacent intensities are seed-dependent at this population size,
  // so the pin is against the clean floor, not between cells.
  const auto outcomes = run_matrix(1);
  const auto cells = fault_matrix();
  std::size_t burst_cells = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (std::string(cells[c].kind) != "burst") continue;
    ++burst_cells;
    EXPECT_GT(outcomes[c].polls, 12u) << "intensity " << cells[c].intensity;
    EXPECT_GT(outcomes[c].retries, 0u) << "intensity " << cells[c].intensity;
  }
  EXPECT_EQ(burst_cells, 3u);
}

// ---------------------------------------------------------------------------
// 4. Zero-fault bit-identity
// ---------------------------------------------------------------------------

TEST(ZeroFaultIdentity, InventoryMatchesNullInjector) {
  InventoryConfig cfg;
  cfg.reply_loss_prob = 0.3;  // clean-channel randomness still in play
  common::Rng rng_null(77);
  const auto without = run_inventory(make_population(10), cfg, nullptr, rng_null);
  common::Rng rng_empty(77);
  FaultInjector empty{FaultPlan{}};
  const auto with = run_inventory(make_population(10), cfg, &empty, rng_empty);
  EXPECT_EQ(without.delivered, with.delivered);
  EXPECT_EQ(without.polls, with.polls);
  EXPECT_EQ(without.retries, with.retries);
  EXPECT_EQ(without.rounds, with.rounds);
  EXPECT_EQ(without.duration_s, with.duration_s);
}

TEST(ZeroFaultIdentity, WaveformChannelMatchesNullInjector) {
  // An attached injector with an empty plan must leave propagate() output
  // bit-identical to the null hook, including every Rng draw.
  channel::WaveformChannelConfig cfg;
  cfg.fs_hz = 96000.0;
  cfg.taps = channel::single_tap(0.01, 0.005);
  cfg.fading_sigma_db = 2.0;
  rvec tx(4096);
  for (std::size_t i = 0; i < tx.size(); ++i)
    tx[i] = std::sin(0.07 * static_cast<double>(i));

  common::Rng rng_a(5);
  channel::WaveformChannel plain(cfg, rng_a);
  const rvec out_plain = plain.propagate(tx);

  FaultInjector empty{FaultPlan{}};
  channel::WaveformChannelConfig cfg_hooked = cfg;
  cfg_hooked.fault = &empty;
  common::Rng rng_b(5);
  channel::WaveformChannel hooked(cfg_hooked, rng_b);
  const rvec out_hooked = hooked.propagate(tx);

  ASSERT_EQ(out_plain.size(), out_hooked.size());
  for (std::size_t i = 0; i < out_plain.size(); ++i)
    ASSERT_EQ(out_plain[i], out_hooked[i]) << "sample " << i;
}

TEST(ZeroFaultIdentity, DiscoveryMatchesNullInjector) {
  net::DiscoveryConfig cfg;
  cfg.reply_loss_prob = 0.2;
  common::Rng rng_a(9);
  const auto without = net::run_discovery(make_population(20), cfg, rng_a);
  FaultInjector empty{FaultPlan{}};
  net::DiscoveryConfig cfg_hooked = cfg;
  cfg_hooked.fault = &empty;
  common::Rng rng_b(9);
  const auto with = net::run_discovery(make_population(20), cfg_hooked, rng_b);
  EXPECT_EQ(without.total_slots, with.total_slots);
  EXPECT_EQ(without.discovered, with.discovered);
  EXPECT_EQ(without.rounds.size(), with.rounds.size());
}

TEST(ZeroFaultIdentity, WaveformTrialMatchesEmptyPlanScenario) {
  // E1/E3-style seeded waveform output with the fault member present but
  // empty: same demod result bit-for-bit (the golden pins in
  // test_golden_experiments guard the full experiments at their own seeds).
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 40.0;
  s.env.fading_sigma_db = 0.0;
  ASSERT_TRUE(s.fault.empty());

  common::Rng rng_a(3);
  sim::WaveformSimulator sim_a(s, rng_a);
  common::Rng bits_rng(8);
  const bitvec payload = bits_rng.random_bits(48);
  const auto r_a = sim_a.run_trial(payload);

  common::Rng rng_b(3);
  sim::WaveformSimulator sim_b(s, rng_b);
  const auto r_b = sim_b.run_trial(payload);

  EXPECT_EQ(r_a.bit_errors, r_b.bit_errors);
  EXPECT_EQ(r_a.frame_ok, r_b.frame_ok);
  EXPECT_EQ(r_a.demod.snr_db, r_b.demod.snr_db);
  EXPECT_EQ(r_a.demod.corr_peak, r_b.demod.corr_peak);
}

// ---------------------------------------------------------------------------
// 5. Impairment actually degrades the waveform link (sanity of the hook)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// 6. The MCS dimension: ARQ edge cases and the fault matrix, rung-pinned
// ---------------------------------------------------------------------------

const net::mcs::McsLadder& shared_ladder() {
  static const net::mcs::McsLadder* l =
      new net::mcs::McsLadder(net::mcs::McsLadder::default_ladder());
  return *l;
}

std::size_t top_rung() { return shared_ladder().size() - 1; }

/// Inventory config pinned (frozen controller) to one ladder rung.
InventoryConfig rung_pinned_config(std::size_t rung) {
  InventoryConfig cfg;
  cfg.ladder = &shared_ladder();
  cfg.adapt.frozen = true;
  cfg.adapt.start_rung = rung;
  return cfg;
}

/// High-SNR analytic transport: every rung's curve is in its clean region,
/// so channel loss comes only from the explicit erasure knobs and the fault
/// injector — the rung cannot influence outcomes except via airtime.
net::mcs::AnalyticMcsTransport clean_mcs_transport(double reply_loss = 0.0,
                                                   double ack_loss = 0.0) {
  net::mcs::AnalyticMcsConfig tcfg;
  tcfg.snr_ref_db = 25.0;
  tcfg.fading_sigma_db = 0.0;
  tcfg.reply_loss_prob = reply_loss;
  tcfg.ack_loss_prob = ack_loss;
  return net::mcs::AnalyticMcsTransport(shared_ladder(), tcfg);
}

TEST(ArqEdgeCasesAtRungs, LostAckDeduplicatesOnSeqAtBothExtremes) {
  for (const std::size_t rung : {std::size_t{0}, top_rung()}) {
    common::Rng rng(2);
    const InventoryConfig cfg = rung_pinned_config(rung);
    auto tp = clean_mcs_transport(0.0, 1.0);  // every ACK lost
    const auto res = run_inventory(make_population(5), cfg, nullptr, rng, &tp);
    EXPECT_TRUE(res.complete) << "rung " << rung;
    EXPECT_EQ(res.delivered, 5u) << "rung " << rung;
    EXPECT_EQ(res.acks_lost, res.acks_sent) << "rung " << rung;
    EXPECT_EQ(res.duplicates, 0u) << "rung " << rung;
  }
}

TEST(ArqEdgeCasesAtRungs, RetryBudgetExhaustionParksAndRecoversAtBothExtremes) {
  for (const std::size_t rung : {std::size_t{0}, top_rung()}) {
    common::Rng rng(4);
    InventoryConfig cfg = rung_pinned_config(rung);
    cfg.arq.max_retries = 1;
    cfg.arq.demote_after_misses = 50;
    FaultInjector inj(burst_plan(0.5, 0xBAD));
    auto tp = clean_mcs_transport();
    const auto res = run_inventory(make_population(10), cfg, &inj, rng, &tp);
    EXPECT_TRUE(res.complete) << "rung " << rung;
    EXPECT_GT(res.budget_exhaustions, 0u) << "rung " << rung;
    EXPECT_GT(res.rounds, 1u) << "rung " << rung;
  }
}

TEST(ArqEdgeCasesAtRungs, DemotionThenRediscoveryCompletesAtBothExtremes) {
  for (const std::size_t rung : {std::size_t{0}, top_rung()}) {
    common::Rng rng(6);
    InventoryConfig cfg = rung_pinned_config(rung);
    cfg.arq.max_retries = 6;
    cfg.arq.demote_after_misses = 2;
    FaultPlan plan;
    plan.seed = 0xDE40;
    plan.burst.p_good_to_bad = 0.5;
    plan.burst.p_bad_to_good = 0.15;
    plan.burst.loss_good = 0.0;
    plan.burst.loss_bad = 1.0;
    FaultInjector inj(plan);
    auto tp = clean_mcs_transport();
    const auto res = run_inventory(make_population(10), cfg, &inj, rng, &tp);
    EXPECT_TRUE(res.complete) << "rung " << rung;
    EXPECT_GT(res.demotions, 0u) << "rung " << rung;
    EXPECT_EQ(res.rediscoveries, res.demotions) << "rung " << rung;
  }
}

TEST(ArqEdgeCasesAtRungs, FrozenControllerNeverLeavesItsRung) {
  for (const std::size_t rung : {std::size_t{0}, top_rung()}) {
    common::Rng rng(8);
    const InventoryConfig cfg = rung_pinned_config(rung);
    FaultInjector inj(burst_plan(0.3, 0xF00));
    auto tp = clean_mcs_transport();
    const auto res = run_inventory(make_population(8), cfg, &inj, rng, &tp);
    EXPECT_EQ(res.mcs_steps_up, 0u) << "rung " << rung;
    EXPECT_EQ(res.mcs_steps_down, 0u) << "rung " << rung;
    ASSERT_EQ(res.rung_polls.size(), 1u) << "rung " << rung;
    EXPECT_EQ(res.rung_polls.begin()->first, rung);
    // Nodes start at the paper rung and reconfigure at most once, to the
    // pinned rung, on the first commanded query.
    const std::size_t expect_reconf =
        rung == net::mcs::McsLadder::kPaperRung ? 0u : 8u;
    EXPECT_EQ(res.reconfigures, expect_reconf) << "rung " << rung;
  }
}

TEST(ArqEdgeCasesAtRungs, SlowestRungCostsMoreAirtimeSameOutcomes) {
  // Same seed, same faults: the rung must not change *protocol* outcomes,
  // only the airtime bill (rung 0 is 32x slower than the top rung).
  auto run_at = [](std::size_t rung) {
    common::Rng rng(10);
    const InventoryConfig cfg = rung_pinned_config(rung);
    FaultInjector inj(burst_plan(0.2, 0xA1D));
    auto tp = clean_mcs_transport();
    return run_inventory(make_population(10), cfg, &inj, rng, &tp);
  };
  const auto lo = run_at(0);
  const auto hi = run_at(top_rung());
  EXPECT_EQ(lo.delivered, hi.delivered);
  EXPECT_EQ(lo.polls, hi.polls);
  EXPECT_EQ(lo.retries, hi.retries);
  EXPECT_EQ(lo.timeouts, hi.timeouts);
  EXPECT_EQ(lo.rounds, hi.rounds);
  EXPECT_GT(lo.duration_s, hi.duration_s);
}

/// Integer protocol outcomes only: airtime legitimately varies with the
/// rung, so rung-independence is asserted on everything *but* duration.
struct RungCellOutcome {
  std::size_t delivered = 0, polls = 0, retries = 0, timeouts = 0,
              duplicates = 0, demotions = 0, rediscoveries = 0,
              budget_exhaustions = 0, rounds = 0;
  bool complete = false;

  bool operator==(const RungCellOutcome&) const = default;
};

RungCellOutcome to_rung_outcome(const InventoryResult& r) {
  return RungCellOutcome{r.delivered,  r.polls,       r.retries,
                         r.timeouts,   r.duplicates,  r.demotions,
                         r.rediscoveries, r.budget_exhaustions, r.rounds,
                         r.complete};
}

std::vector<std::size_t> matrix_rungs() {
  return {0, net::mcs::McsLadder::kPaperRung, top_rung()};
}

/// {fault kind} x {rung} x {threads}: cells laid out rung-major.
std::vector<RungCellOutcome> run_mcs_matrix(unsigned threads) {
  common::set_thread_count(threads);
  const auto cells = fault_matrix();
  const auto rungs = matrix_rungs();
  common::Rng master(0x5C37);
  std::vector<RungCellOutcome> out(cells.size() * rungs.size());
  common::parallel_for(0, out.size(), [&](std::size_t i) {
    const std::size_t c = i % cells.size();
    const std::size_t rung = rungs[i / cells.size()];
    // The same fault cell must see the same injector and poll streams at
    // every rung: seed by cell, not by (cell, rung).
    common::Rng rng = master.child(c);
    FaultInjector inj(cells[c].plan);
    InventoryConfig cfg = rung_pinned_config(rung);
    cfg.arq.demote_after_misses = 8;
    auto tp = clean_mcs_transport();
    out[i] = to_rung_outcome(
        run_inventory(make_population(12), cfg, &inj, rng, &tp));
  });
  common::set_thread_count(0);
  return out;
}

TEST_F(FaultMatrixTest, McsMatrixBitIdenticalAcrossThreadCounts) {
  const auto serial = run_mcs_matrix(1);
  std::size_t total_retries = 0;
  for (const auto& cell : serial) {
    EXPECT_TRUE(cell.complete);
    total_retries += cell.retries;
  }
  EXPECT_GT(total_retries, 0u);
  for (unsigned threads : {2u, 8u}) {
    const auto parallel = run_mcs_matrix(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(parallel[i], serial[i]) << "threads=" << threads << " i=" << i;
  }
}

TEST_F(FaultMatrixTest, McsMatrixOutcomesAreRungIndependent) {
  // Identical injector + poll streams at every rung, and a transport whose
  // clean-region curves never flip a coin differently: every fault cell's
  // protocol outcome must be identical across the whole rung axis.
  const auto out = run_mcs_matrix(1);
  const std::size_t n_cells = fault_matrix().size();
  const std::size_t n_rungs = matrix_rungs().size();
  ASSERT_EQ(out.size(), n_cells * n_rungs);
  for (std::size_t c = 0; c < n_cells; ++c) {
    for (std::size_t r = 1; r < n_rungs; ++r) {
      EXPECT_EQ(out[r * n_cells + c], out[c])
          << "cell " << c << " (" << fault_matrix()[c].kind << ") at rung axis "
          << r;
    }
  }
}

TEST_F(FaultMatrixTest, McsMatrixReproducibleAtFixedSeed) {
  const auto a = run_mcs_matrix(2);
  const auto b = run_mcs_matrix(2);
  EXPECT_EQ(a, b);
}

TEST(FaultWaveform, SnrDipLowersDemodSnr) {
  sim::Scenario clean = sim::vab_river_scenario();
  clean.range_m = 100.0;
  clean.env.fading_sigma_db = 0.0;
  sim::Scenario dipped = clean;
  dipped.fault.snr_dip_prob = 1.0;
  dipped.fault.snr_dip_db = 12.0;
  dipped.fault.snr_dip_duration_frac = 0.5;

  common::Rng bits_rng(4);
  const bitvec payload = bits_rng.random_bits(64);
  common::Rng rng_a(21);
  const auto r_clean = sim::WaveformSimulator(clean, rng_a).run_trial(payload);
  common::Rng rng_b(21);
  const auto r_dip = sim::WaveformSimulator(dipped, rng_b).run_trial(payload);

  EXPECT_LT(r_dip.demod.snr_db, r_clean.demod.snr_db);
}

}  // namespace
}  // namespace vab
