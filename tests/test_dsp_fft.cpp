// FFT correctness against a direct DFT, convolution and correlation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"

namespace vab::dsp {
namespace {

cvec direct_dft(const cvec& x) {
  const std::size_t n = x.size();
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{};
    for (std::size_t t = 0; t < n; ++t)
      acc += x[t] * std::exp(cplx{0.0, -common::kTwoPi * static_cast<double>(k * t) /
                                            static_cast<double>(n)});
    out[k] = acc;
  }
  return out;
}

TEST(Fft, Pow2Helpers) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(255));
  EXPECT_FALSE(is_pow2(0));
}

TEST(Fft, MatchesDirectDft) {
  common::Rng rng(1);
  cvec x(64);
  for (auto& v : x) v = rng.complex_gaussian();
  const cvec ref = direct_dft(x);
  const cvec got = fft(x);
  for (std::size_t k = 0; k < x.size(); ++k)
    EXPECT_NEAR(std::abs(got[k] - ref[k]), 0.0, 1e-9) << "bin " << k;
}

TEST(Fft, InverseRoundTrip) {
  common::Rng rng(2);
  cvec x(256);
  for (auto& v : x) v = rng.complex_gaussian();
  const cvec y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST(Fft, ParsevalHolds) {
  common::Rng rng(3);
  cvec x(512);
  for (auto& v : x) v = rng.complex_gaussian();
  double time_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  const cvec spec = fft(x);
  double freq_e = 0.0;
  for (const auto& v : spec) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / static_cast<double>(x.size()), time_e, 1e-6 * time_e);
}

TEST(Fft, ToneLandsInCorrectBin) {
  const std::size_t n = 1024;
  cvec x(n);
  const std::size_t bin = 37;
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::exp(cplx{0.0, common::kTwoPi * static_cast<double>(bin * t) /
                              static_cast<double>(n)});
  const cvec spec = fft(x);
  std::size_t best = 0;
  for (std::size_t k = 1; k < n; ++k)
    if (std::abs(spec[k]) > std::abs(spec[best])) best = k;
  EXPECT_EQ(best, bin);
  EXPECT_NEAR(std::abs(spec[bin]), static_cast<double>(n), 1e-6);
}

TEST(Fft, NonPow2InputIsZeroPadded) {
  cvec x(100, cplx{1.0, 0.0});
  const cvec spec = fft(x);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(Fft, ThrowsOnNonPow2Inplace) {
  cvec x(100);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(FftConvolve, MatchesDirectConvolution) {
  const rvec a{1, 2, 3, 4};
  const rvec b{0.5, -1, 2};
  const rvec got = fft_convolve(a, b);
  ASSERT_EQ(got.size(), a.size() + b.size() - 1);
  rvec ref(got.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) ref[i + j] += a[i] * b[j];
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-10);
}

TEST(FftPlan, MatchesDirectDftAcrossSizes) {
  common::Rng rng(10);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                        std::size_t{128}, std::size_t{512}}) {
    cvec x(n);
    for (auto& v : x) v = rng.complex_gaussian();
    const cvec ref = direct_dft(x);
    cvec got = x;
    fft_plan(n).forward(got.data());
    double ref_scale = 0.0;
    for (const auto& v : ref) ref_scale = std::max(ref_scale, std::abs(v));
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_LE(std::abs(got[k] - ref[k]), 1e-9 * std::max(ref_scale, 1.0))
          << "n=" << n << " bin " << k;
  }
}

TEST(FftPlan, DegenerateSizeOne) {
  // N=1 is the identity transform in both directions.
  cvec x{cplx{3.5, -1.25}};
  fft_plan(1).forward(x.data());
  EXPECT_EQ(x[0], (cplx{3.5, -1.25}));
  fft_plan(1).inverse(x.data());
  EXPECT_EQ(x[0], (cplx{3.5, -1.25}));
}

TEST(FftPlan, ThrowsOnNonPow2) {
  EXPECT_THROW(FftPlan(100), std::invalid_argument);
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
}

TEST(FftPlan, CachedPlanBitIdenticalToFreshPlan) {
  common::Rng rng(11);
  cvec x(256);
  for (auto& v : x) v = rng.complex_gaussian();
  // Repeated transforms through the thread-local cache and a freshly built
  // plan must agree bit-for-bit: the cache changes where the twiddles live,
  // never their values.
  cvec cached1 = x, cached2 = x, fresh = x;
  fft_plan(256).forward(cached1.data());
  fft_plan(256).forward(cached2.data());
  FftPlan(256).forward(fresh.data());
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_EQ(cached1[k], cached2[k]) << "bin " << k;
    EXPECT_EQ(cached1[k], fresh[k]) << "bin " << k;
  }
}

TEST(FftPlan, InverseRoundTripInPlace) {
  common::Rng rng(12);
  cvec x(1024);
  for (auto& v : x) v = rng.complex_gaussian();
  cvec y = x;
  const FftPlan& plan = fft_plan(1024);
  plan.forward(y.data());
  plan.inverse(y.data());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST(FftReal, MatchesComplexFftAcrossSizes) {
  common::Rng rng(13);
  // Non-power-of-two and degenerate lengths zero-pad exactly like fft().
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{100}, std::size_t{360}, std::size_t{1024}}) {
    rvec x(n);
    for (auto& v : x) v = rng.gaussian();
    cvec xc(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) xc[i] = cplx{x[i], 0.0};
    const cvec ref = fft(xc);
    const cvec got = fft_real(x);
    ASSERT_EQ(got.size(), ref.size()) << "n=" << n;
    double ref_scale = 0.0;
    for (const auto& v : ref) ref_scale = std::max(ref_scale, std::abs(v));
    for (std::size_t k = 0; k < got.size(); ++k)
      EXPECT_LE(std::abs(got[k] - ref[k]), 1e-9 * std::max(ref_scale, 1.0))
          << "n=" << n << " bin " << k;
  }
}

TEST(FftReal, SpectrumIsHermitian) {
  common::Rng rng(14);
  rvec x(512);
  for (auto& v : x) v = rng.gaussian();
  const cvec spec = fft_real(x);
  for (std::size_t k = 1; k < spec.size() / 2; ++k)
    EXPECT_EQ(spec[spec.size() - k], std::conj(spec[k])) << "bin " << k;
  EXPECT_EQ(spec[0].imag(), 0.0);
  EXPECT_EQ(spec[spec.size() / 2].imag(), 0.0);
}

TEST(FftXcorr, PeakAtTrueLag) {
  common::Rng rng(4);
  cvec ref(32);
  for (auto& v : ref) v = rng.complex_gaussian();
  cvec sig(128, cplx{});
  const std::size_t offset = 41;
  for (std::size_t i = 0; i < ref.size(); ++i) sig[offset + i] = ref[i];
  const cvec corr = fft_xcorr(sig, ref);
  std::size_t best = 0;
  for (std::size_t k = 1; k < corr.size(); ++k)
    if (std::abs(corr[k]) > std::abs(corr[best])) best = k;
  // Lag 0 sits at index ref.size()-1; the match is at offset.
  EXPECT_EQ(best, ref.size() - 1 + offset);
}

}  // namespace
}  // namespace vab::dsp
