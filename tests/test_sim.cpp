// Scenario presets, analytic link budget and the Monte-Carlo engine.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/linkbudget.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

namespace vab::sim {
namespace {

TEST(Scenario, PresetsAreConsistent) {
  const Scenario river = vab_river_scenario();
  EXPECT_EQ(river.env.name, "river");
  EXPECT_LT(river.env.water.salinity_ppt, 5.0);
  EXPECT_EQ(river.node.array.mode, vanatta::ArrayMode::kVanAtta);
  const Scenario ocean = vab_ocean_scenario();
  EXPECT_EQ(ocean.env.name, "ocean");
  EXPECT_GT(ocean.env.water.salinity_ppt, 30.0);
  const Scenario pab = pab_river_scenario();
  EXPECT_EQ(pab.node.array.mode, vanatta::ArrayMode::kSingleElement);
  EXPECT_LT(pab.node.array.element_efficiency, river.node.array.element_efficiency);
}

TEST(LinkBudget, SnrDecreasesWithRange) {
  const LinkBudget lb(vab_river_scenario());
  double prev = 1e9;
  for (double r : {10.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    const double snr = lb.evaluate(common::Meters{r}).snr_chip_db.raw();
    EXPECT_LT(snr, prev) << r;
    prev = snr;
  }
}

TEST(LinkBudget, BerMonotoneInSnr) {
  const LinkBudget lb(vab_river_scenario());
  const auto near = lb.evaluate(common::Meters{50.0});
  const auto far = lb.evaluate(common::Meters{500.0});
  EXPECT_LT(near.ber, far.ber);
  EXPECT_GE(near.ber, 0.0);
  EXPECT_LE(far.ber, 0.5 + 1e-12);
}

TEST(LinkBudget, RoundTripUsesTransmissionLossTwice) {
  const LinkBudget lb(vab_river_scenario());
  const auto r = lb.evaluate(common::Meters{100.0});
  EXPECT_NEAR(r.received_at_node_db.raw(),
              lb.scenario().reader.source_level_db - r.tl_one_way_db.raw(), 1e-9);
  // Return leg: received at node + target strength - TL again.
  EXPECT_LT(r.modulated_return_db.raw(),
            r.received_at_node_db.raw() - r.tl_one_way_db.raw());
}

TEST(LinkBudget, FadingShiftsSnrDirectly) {
  const LinkBudget lb(vab_river_scenario());
  EXPECT_NEAR(lb.evaluate(common::Meters{100.0}, common::Db{6.0}).snr_chip_db.raw(),
              lb.evaluate(common::Meters{100.0}, common::Db{0.0}).snr_chip_db.raw() + 6.0,
              1e-9);
}

TEST(LinkBudget, VabHeadlineRange) {
  // The paper's headline: >300 m round trip at BER 1e-3 (deterministic,
  // no-fading evaluation).
  const LinkBudget lb(vab_river_scenario());
  EXPECT_LT(lb.evaluate(common::Meters{300.0}).ber, 1e-3);
}

TEST(LinkBudget, PabBaselineShortRange) {
  const LinkBudget lb(pab_river_scenario());
  EXPECT_LT(lb.evaluate(common::Meters{10.0}).ber, 1e-3);
  EXPECT_GT(lb.evaluate(common::Meters{100.0}).ber, 1e-2);
}

TEST(LinkBudget, FifteenXClassRangeGain) {
  common::Rng rng(1);
  const LinkBudget vab(vab_river_scenario());
  const LinkBudget pab(pab_river_scenario());
  common::Rng r1 = rng.child(1), r2 = rng.child(2);
  const double vab_range = vab.max_range(1e-3, 100, r1).raw();
  const double pab_range = pab.max_range(1e-3, 100, r2).raw();
  const double ratio = vab_range / pab_range;
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 30.0);
  EXPECT_GT(vab_range, 250.0);
}

TEST(LinkBudget, OrientationBarelyMattersForVanAtta) {
  Scenario s = vab_river_scenario();
  const double on_axis = LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  s.node.orientation_rad = common::deg_to_rad(40.0);
  const double off_axis = LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  // Only element directivity costs anything; the array factor is retro.
  EXPECT_LT(on_axis - off_axis, 4.0);
}

TEST(LinkBudget, OrientationKillsFixedArray) {
  Scenario s = vab_river_scenario();
  s.node.array.mode = vanatta::ArrayMode::kFixedPhase;
  const double on_axis = LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  s.node.orientation_rad = common::deg_to_rad(40.0);
  const double off_axis = LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  EXPECT_GT(on_axis - off_axis, 10.0);
}

TEST(LinkBudget, MoreElementsMoreRange) {
  common::Rng rng(2);
  double prev = 0.0;
  for (std::size_t n : {2u, 4u, 8u}) {
    Scenario s = vab_river_scenario();
    s.node.array.n_elements = n;
    common::Rng local = rng.child(n);
    const double range = LinkBudget(s).max_range(1e-3, 100, local).raw();
    EXPECT_GT(range, prev) << n;
    prev = range;
  }
}

TEST(LinkBudget, MonteCarloBerMatchesAnalyticWithoutFading) {
  Scenario s = vab_river_scenario();
  s.env.fading_sigma_db = 0.0;
  const LinkBudget lb(s);
  common::Rng rng(3);
  // Pick a range where BER is around 1e-2 for countable errors.
  double r_test = 300.0;
  while (lb.evaluate(common::Meters{r_test}).ber < 5e-3) r_test += 20.0;
  const auto stats = lb.monte_carlo(common::Meters{r_test}, 200, 1024, rng);
  const double expected = lb.evaluate(common::Meters{r_test}).ber;
  EXPECT_NEAR(stats.ber(), expected, 0.3 * expected + 1e-4);
}

TEST(LinkBudget, FadingRaisesAverageBerNearThreshold) {
  // Lognormal fading is convex in dB -> raises the mean BER at the edge.
  Scenario s = vab_river_scenario();
  const LinkBudget lb(s);
  double r_edge = 200.0;
  while (lb.evaluate(common::Meters{r_edge}).ber < 1e-5) r_edge += 20.0;
  common::Rng rng(4);
  const auto faded = lb.monte_carlo(common::Meters{r_edge}, 400, 2048, rng);
  EXPECT_GT(faded.ber(), lb.evaluate(common::Meters{r_edge}).ber);
}

TEST(MonteCarlo, SweepShapesAndDeterminism) {
  const Scenario s = vab_river_scenario();
  common::Rng rng(5);
  const rvec ranges = common::linspace(50.0, 350.0, 4);
  const auto sweep1 = ber_vs_range_sweep(s, ranges, 50, 256, rng);
  const auto sweep2 = ber_vs_range_sweep(s, ranges, 50, 256, rng);
  ASSERT_EQ(sweep1.size(), 4u);
  for (std::size_t i = 0; i < sweep1.size(); ++i) {
    EXPECT_EQ(sweep1[i].errors, sweep2[i].errors);  // child-seeded determinism
    EXPECT_EQ(sweep1[i].bits, 50u * 256u);
  }
  // SNR decreases along the sweep.
  EXPECT_GT(sweep1.front().snr_db, sweep1.back().snr_db);
}

TEST(LinkBudget, CarrierSplForHarvesting) {
  const LinkBudget lb(vab_river_scenario());
  // Within tens of meters the carrier is strong enough to be worth
  // harvesting (>140 dB re 1 uPa).
  EXPECT_GT(lb.carrier_spl_at_node(common::Meters{20.0}).raw(), 140.0);
  EXPECT_LT(lb.carrier_spl_at_node(common::Meters{1000.0}).raw(),
            lb.carrier_spl_at_node(common::Meters{20.0}).raw());
}

TEST(LinkBudget, InvalidRangeThrows) {
  const LinkBudget lb(vab_river_scenario());
  EXPECT_THROW(lb.evaluate(common::Meters{0.0}), std::invalid_argument);
  EXPECT_THROW(lb.evaluate(common::Meters{-5.0}), std::invalid_argument);
}

}  // namespace
}  // namespace vab::sim
