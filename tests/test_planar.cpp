// Planar Van Atta array: retrodirectivity in both axes, pairing ablation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "vanatta/planar.hpp"

namespace vab::vanatta {
namespace {

PlanarVanAttaConfig ideal(std::size_t rows, std::size_t cols) {
  PlanarVanAttaConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.element_efficiency = 1.0;
  cfg.line_loss_db = 0.0;
  cfg.switch_insertion_db = 0.0;
  cfg.directivity_q = 0.0;
  return cfg;
}

Direction dir(double az_deg, double el_deg) {
  return {common::deg_to_rad(az_deg), common::deg_to_rad(el_deg)};
}

TEST(Planar, PointReflectionPairing) {
  const PlanarVanAttaArray a(ideal(3, 4));
  // (0,0) <-> (2,3): index 0 <-> 11.
  EXPECT_EQ(a.partner(0), 11u);
  EXPECT_EQ(a.partner(11), 0u);
  // Center-symmetric pair in the middle row.
  EXPECT_EQ(a.partner(5), 6u);
}

TEST(Planar, NSquaredGainAtBroadside) {
  for (auto [r, c] : {std::pair{2u, 2u}, std::pair{4u, 4u}, std::pair{2u, 8u}}) {
    const PlanarVanAttaArray a(ideal(r, c));
    EXPECT_NEAR(a.monostatic_gain_db(dir(0, 0), 18500.0),
                20.0 * std::log10(static_cast<double>(r * c)), 1e-6)
        << r << "x" << c;
  }
}

TEST(Planar, RetroInBothAxes) {
  const PlanarVanAttaArray a(ideal(4, 4));
  const double broadside = a.monostatic_gain_db(dir(0, 0), 18500.0);
  for (double az : {-45.0, 0.0, 30.0}) {
    for (double el : {-40.0, 0.0, 25.0}) {
      EXPECT_NEAR(a.monostatic_gain_db(dir(az, el), 18500.0), broadside, 1e-6)
          << az << "," << el;
    }
  }
}

TEST(Planar, RowPairingLosesElevationRetro) {
  PlanarVanAttaConfig cfg = ideal(4, 4);
  cfg.point_reflection_pairing = false;
  const PlanarVanAttaArray a(cfg);
  const double broadside = a.monostatic_gain_db(dir(0, 0), 18500.0);
  // Azimuth-only retro survives...
  EXPECT_NEAR(a.monostatic_gain_db(dir(35, 0), 18500.0), broadside, 1e-6);
  // ...but elevation collapses (rows are not phase-conjugated).
  EXPECT_LT(a.monostatic_gain_db(dir(0, 35), 18500.0), broadside - 10.0);
}

TEST(Planar, SingleRowMatchesLinearArray) {
  // A 1 x N planar array in azimuth equals the linear array's retro gain.
  const PlanarVanAttaArray planar(ideal(1, 8));
  VanAttaConfig lin;
  lin.n_elements = 8;
  lin.element_efficiency = 1.0;
  lin.line_loss_db = 0.0;
  lin.switch_insertion_db = 0.0;
  lin.directivity_q = 0.0;
  const VanAttaArray linear(lin);
  for (double deg : {-30.0, 0.0, 45.0}) {
    EXPECT_NEAR(planar.monostatic_gain_db(dir(deg, 0), 18500.0),
                linear.monostatic_gain_db(common::deg_to_rad(deg), 18500.0), 1e-6)
        << deg;
  }
}

TEST(Planar, ReciprocityHolds) {
  const PlanarVanAttaArray a(ideal(3, 3));
  const Direction d1 = dir(20, -15), d2 = dir(-35, 10);
  const cplx r12 = a.bistatic_response(d1, d2, 18500.0, 1);
  const cplx r21 = a.bistatic_response(d2, d1, 18500.0, 1);
  EXPECT_NEAR(std::abs(r12 - r21), 0.0, 1e-9);
}

TEST(Planar, PolarityModulationAmplitude) {
  const PlanarVanAttaArray a(ideal(4, 4));
  EXPECT_NEAR(a.modulation_amplitude(dir(25, 15), 18500.0), 16.0, 1e-9);
}

TEST(Planar, EndfireSuppressedByPattern) {
  PlanarVanAttaConfig cfg = ideal(4, 4);
  cfg.directivity_q = 0.5;
  const PlanarVanAttaArray a(cfg);
  const double broadside = a.monostatic_gain_db(dir(0, 0), 18500.0);
  // Near endfire the cos^q element pattern (applied on receive and
  // re-transmit) dominates: tens of dB below broadside.
  EXPECT_LT(a.monostatic_gain_db(dir(89.9, 0), 18500.0), broadside - 40.0);
  // Exactly at endfire the pattern nulls completely.
  EXPECT_LT(a.monostatic_gain_db(dir(90.0, 0), 18500.0), -250.0);
}

TEST(Planar, Validation) {
  PlanarVanAttaConfig bad = ideal(0, 4);
  EXPECT_THROW(PlanarVanAttaArray{bad}, std::invalid_argument);
  const PlanarVanAttaArray a(ideal(2, 2));
  EXPECT_THROW(a.bistatic_response(dir(0, 0), dir(0, 0), -1.0, 1), std::invalid_argument);
  EXPECT_THROW(a.partner(99), std::out_of_range);
}

}  // namespace
}  // namespace vab::vanatta
