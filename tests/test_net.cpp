// Frames, sensor payloads and MAC state machines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/app.hpp"
#include "net/frame.hpp"
#include "net/mac.hpp"

namespace vab::net {
namespace {

TEST(Frame, SerializeParseRoundTrip) {
  Frame f;
  f.addr = 7;
  f.type = FrameType::kSensorReport;
  f.seq = 42;
  f.payload = {1, 2, 3, 4, 5, 6};
  const auto parsed = parse(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->addr, 7);
  EXPECT_EQ(parsed->type, FrameType::kSensorReport);
  EXPECT_EQ(parsed->seq, 42);
  EXPECT_EQ(parsed->payload, f.payload);
}

TEST(Frame, BitsRoundTrip) {
  Frame f;
  f.addr = 3;
  f.type = FrameType::kQuery;
  const auto parsed = parse_bits(serialize_bits(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->addr, 3);
}

TEST(Frame, CorruptionRejected) {
  common::Rng rng(1);
  Frame f;
  f.addr = 9;
  f.type = FrameType::kSensorReport;
  f.payload = {10, 20, 30};
  for (int trial = 0; trial < 30; ++trial) {
    bytes wire = serialize(f);
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long>(wire.size()) - 1));
    wire[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(parse(wire).has_value());
  }
}

TEST(Frame, MalformedLengthRejected) {
  Frame f;
  f.payload = {1, 2, 3};
  bytes wire = serialize(f);
  wire[3] = 200;  // lie about the length; CRC still matches original bytes?
  // CRC covers the length byte, so this must fail.
  EXPECT_FALSE(parse(wire).has_value());
  EXPECT_FALSE(parse(bytes{}).has_value());
}

TEST(Frame, WireSizeAndLimits) {
  Frame f;
  f.payload.assign(255, 0xAA);
  EXPECT_EQ(serialize(f).size(), f.wire_size());
  f.payload.assign(256, 0xAA);
  EXPECT_THROW(serialize(f), std::invalid_argument);
}

TEST(App, ReadingRoundTripWithinResolution) {
  SensorReading r;
  r.temperature_c = 17.384;
  r.pressure_kpa = 204.37;
  r.battery_mv = 2750;
  const auto back = decode_reading(encode_reading(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->temperature_c, r.temperature_c, kTempResolutionC);
  EXPECT_NEAR(back->pressure_kpa, r.pressure_kpa, kPressureResolutionKpa);
  EXPECT_EQ(back->battery_mv, r.battery_mv);
}

TEST(App, ExtremesClampNotWrap) {
  SensorReading r;
  r.temperature_c = 500.0;
  r.pressure_kpa = -10.0;
  const auto back = decode_reading(encode_reading(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_GT(back->temperature_c, 80.0);
  EXPECT_EQ(back->pressure_kpa, 0.0);
  EXPECT_FALSE(decode_reading(bytes(5)).has_value());
}

TEST(Mac, QueryAddressedToUsProducesReport) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  const Frame q = reader.make_query(5);
  const auto resp = node.on_downlink(q, SensorReading{12.0, 101.0, 3000});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->frame.addr, 5);
  EXPECT_EQ(resp->frame.type, FrameType::kSensorReport);
  const auto reading = decode_reading(resp->frame.payload);
  ASSERT_TRUE(reading.has_value());
  EXPECT_NEAR(reading->temperature_c, 12.0, kTempResolutionC);
}

TEST(Mac, QueryForOtherNodeIgnored) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_FALSE(node.on_downlink(reader.make_query(6), SensorReading{}).has_value());
}

TEST(Mac, BroadcastQueryAnswered) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_TRUE(node.on_downlink(reader.make_query(kBroadcastAddr), SensorReading{})
                  .has_value());
}

TEST(Mac, TdmaSlotsSeparateNodes) {
  MacTiming t;
  NodeMac a(0, t), b(1, t), c(2, t);
  ReaderMac reader{t};
  const Frame round = reader.make_round_announcement(3);
  const auto ra = a.on_downlink(round, SensorReading{});
  const auto rb = b.on_downlink(round, SensorReading{});
  const auto rc = c.on_downlink(round, SensorReading{});
  ASSERT_TRUE(ra && rb && rc);
  EXPECT_LT(ra->tx_offset_s, rb->tx_offset_s);
  EXPECT_LT(rb->tx_offset_s, rc->tx_offset_s);
  // Slots must not overlap: spacing >= slot duration.
  EXPECT_GE(rb->tx_offset_s - ra->tx_offset_s, t.slot_duration_s() - 1e-9);
}

TEST(Mac, NodeOutsideRoundStaysSilent) {
  NodeMac late(7, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_FALSE(late.on_downlink(reader.make_round_announcement(3), SensorReading{})
                   .has_value());
}

TEST(Mac, SlotReassignment) {
  MacTiming t;
  NodeMac node(4, t);
  ReaderMac reader{t};
  EXPECT_EQ(node.tdma_slot(), 4);
  node.on_downlink(reader.make_slot_assignment(4, 1), SensorReading{});
  EXPECT_EQ(node.tdma_slot(), 1);
  // Now participates in a 2-slot round.
  const auto resp = node.on_downlink(reader.make_round_announcement(2), SensorReading{});
  ASSERT_TRUE(resp.has_value());
  EXPECT_NEAR(resp->tx_offset_s, t.guard_s + t.slot_duration_s(), 1e-9);
}

TEST(Mac, SequenceNumbersIncrement) {
  NodeMac node(1, MacTiming{});
  ReaderMac reader{MacTiming{}};
  const auto r1 = node.on_downlink(reader.make_query(1), SensorReading{});
  const auto r2 = node.on_downlink(reader.make_query(1), SensorReading{});
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ((r1->frame.seq + 1) & 0xFF, r2->frame.seq);
}

TEST(Mac, ReaderStatsTrackDelivery) {
  ReaderMac reader{MacTiming{}};
  reader.on_uplink(3, true);
  reader.on_uplink(3, true);
  reader.on_uplink(3, false);
  EXPECT_NEAR(reader.stats().at(3).delivery_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Mac, BroadcastIsNotANodeAddress) {
  EXPECT_THROW(NodeMac(kBroadcastAddr, MacTiming{}), std::invalid_argument);
}

}  // namespace
}  // namespace vab::net
