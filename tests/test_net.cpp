// Frames, sensor payloads and MAC state machines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/app.hpp"
#include "net/frame.hpp"
#include "net/mac.hpp"
#include "phy/coding.hpp"

namespace vab::net {
namespace {

TEST(Frame, SerializeParseRoundTrip) {
  Frame f;
  f.addr = 7;
  f.type = FrameType::kSensorReport;
  f.seq = 42;
  f.payload = {1, 2, 3, 4, 5, 6};
  const auto parsed = parse(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->addr, 7);
  EXPECT_EQ(parsed->type, FrameType::kSensorReport);
  EXPECT_EQ(parsed->seq, 42);
  EXPECT_EQ(parsed->payload, f.payload);
}

TEST(Frame, BitsRoundTrip) {
  Frame f;
  f.addr = 3;
  f.type = FrameType::kQuery;
  const auto parsed = parse_bits(serialize_bits(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->addr, 3);
}

TEST(Frame, CorruptionRejected) {
  common::Rng rng(1);
  Frame f;
  f.addr = 9;
  f.type = FrameType::kSensorReport;
  f.payload = {10, 20, 30};
  for (int trial = 0; trial < 30; ++trial) {
    bytes wire = serialize(f);
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long>(wire.size()) - 1));
    wire[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(parse(wire).has_value());
  }
}

TEST(Frame, MalformedLengthRejected) {
  Frame f;
  f.payload = {1, 2, 3};
  bytes wire = serialize(f);
  wire[3] = 200;  // lie about the length; CRC still matches original bytes?
  // CRC covers the length byte, so this must fail.
  EXPECT_FALSE(parse(wire).has_value());
  EXPECT_FALSE(parse(bytes{}).has_value());
}

TEST(Frame, WireSizeAndLimits) {
  Frame f;
  f.payload.assign(255, 0xAA);
  EXPECT_EQ(serialize(f).size(), f.wire_size());
  EXPECT_EQ(serialize(f).size(), kMaxWireSize);
  f.payload.assign(256, 0xAA);
  EXPECT_THROW(serialize(f), std::invalid_argument);
}

TEST(Frame, ParseCheckedClassifiesErrors) {
  Frame f;
  f.addr = 4;
  f.type = FrameType::kSensorReport;
  f.payload = {1, 2, 3};
  const bytes wire = serialize(f);

  EXPECT_EQ(parse_checked(wire).error, ParseError::kOk);
  EXPECT_EQ(parse_checked(bytes{}).error, ParseError::kTooShort);
  EXPECT_EQ(parse_checked(bytes(kMinWireSize - 1, 0)).error, ParseError::kTooShort);
  EXPECT_EQ(parse_checked(bytes(kMaxWireSize + 1, 0)).error, ParseError::kTooLong);

  bytes corrupt = wire;
  corrupt.back() ^= 0x01;
  EXPECT_EQ(parse_checked(corrupt).error, ParseError::kBadCrc);

  // A lying length field with a *recomputed* CRC must still be rejected —
  // this is the case plain CRC checking does not cover.
  bytes lying(wire.begin(), wire.end() - 2);
  lying[3] = 200;
  lying = phy::append_crc(lying);
  EXPECT_EQ(parse_checked(lying).error, ParseError::kLengthMismatch);

  // Unknown type byte, CRC valid.
  bytes bad_type(wire.begin(), wire.end() - 2);
  bad_type[1] = 0x7F;
  bad_type = phy::append_crc(bad_type);
  EXPECT_EQ(parse_checked(bad_type).error, ParseError::kBadType);
}

TEST(Frame, FuzzMutationsNeverYieldInvalidFrames) {
  // Random truncations, extensions and byte mutations of valid frames: the
  // parser must never accept a frame that does not re-serialize to exactly
  // the bytes it was handed (and must never read past the buffer — ASan/
  // valgrind would catch that here).
  common::Rng rng(0xF022);
  for (int trial = 0; trial < 500; ++trial) {
    Frame f;
    f.addr = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    f.type = FrameType::kSensorReport;
    f.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 32));
    f.payload.resize(n);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    bytes wire = serialize(f);

    switch (rng.uniform_int(0, 2)) {
      case 0:  // truncate anywhere, including to zero
        wire.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<long>(wire.size()))));
        break;
      case 1:  // extend with garbage
        for (long k = rng.uniform_int(1, 300); k > 0; --k)
          wire.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        break;
      default:  // mutate 1-4 random bytes
        for (long k = rng.uniform_int(1, 4); k > 0 && !wire.empty(); --k) {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<long>(wire.size()) - 1));
          wire[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        break;
    }

    const ParseResult res = parse_checked(wire);
    if (res.frame.has_value()) {
      EXPECT_EQ(res.error, ParseError::kOk) << parse_error_name(res.error);
      EXPECT_EQ(serialize(*res.frame), wire) << "accepted frame must round-trip";
    } else {
      EXPECT_NE(res.error, ParseError::kOk);
    }
  }
}

TEST(App, ReadingRoundTripWithinResolution) {
  SensorReading r;
  r.temperature_c = 17.384;
  r.pressure_kpa = 204.37;
  r.battery_mv = 2750;
  const auto back = decode_reading(encode_reading(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->temperature_c, r.temperature_c, kTempResolutionC);
  EXPECT_NEAR(back->pressure_kpa, r.pressure_kpa, kPressureResolutionKpa);
  EXPECT_EQ(back->battery_mv, r.battery_mv);
}

TEST(App, ExtremesClampNotWrap) {
  SensorReading r;
  r.temperature_c = 500.0;
  r.pressure_kpa = -10.0;
  const auto back = decode_reading(encode_reading(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_GT(back->temperature_c, 80.0);
  EXPECT_EQ(back->pressure_kpa, 0.0);
  EXPECT_FALSE(decode_reading(bytes(5)).has_value());
}

TEST(Mac, QueryAddressedToUsProducesReport) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  const Frame q = reader.make_query(5);
  const auto resp = node.on_downlink(q, SensorReading{12.0, 101.0, 3000});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->frame.addr, 5);
  EXPECT_EQ(resp->frame.type, FrameType::kSensorReport);
  const auto reading = decode_reading(resp->frame.payload);
  ASSERT_TRUE(reading.has_value());
  EXPECT_NEAR(reading->temperature_c, 12.0, kTempResolutionC);
}

TEST(Mac, QueryForOtherNodeIgnored) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_FALSE(node.on_downlink(reader.make_query(6), SensorReading{}).has_value());
}

TEST(Mac, BroadcastQueryAnswered) {
  NodeMac node(5, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_TRUE(node.on_downlink(reader.make_query(kBroadcastAddr), SensorReading{})
                  .has_value());
}

TEST(Mac, TdmaSlotsSeparateNodes) {
  MacTiming t;
  NodeMac a(0, t), b(1, t), c(2, t);
  ReaderMac reader{t};
  const Frame round = reader.make_round_announcement(3);
  const auto ra = a.on_downlink(round, SensorReading{});
  const auto rb = b.on_downlink(round, SensorReading{});
  const auto rc = c.on_downlink(round, SensorReading{});
  ASSERT_TRUE(ra && rb && rc);
  EXPECT_LT(ra->tx_offset_s, rb->tx_offset_s);
  EXPECT_LT(rb->tx_offset_s, rc->tx_offset_s);
  // Slots must not overlap: spacing >= slot duration.
  EXPECT_GE(rb->tx_offset_s - ra->tx_offset_s, t.slot_duration_s() - 1e-9);
}

TEST(Mac, NodeOutsideRoundStaysSilent) {
  NodeMac late(7, MacTiming{});
  ReaderMac reader{MacTiming{}};
  EXPECT_FALSE(late.on_downlink(reader.make_round_announcement(3), SensorReading{})
                   .has_value());
}

TEST(Mac, SlotReassignment) {
  MacTiming t;
  NodeMac node(4, t);
  ReaderMac reader{t};
  EXPECT_EQ(node.tdma_slot(), 4);
  node.on_downlink(reader.make_slot_assignment(4, 1), SensorReading{});
  EXPECT_EQ(node.tdma_slot(), 1);
  // Now participates in a 2-slot round.
  const auto resp = node.on_downlink(reader.make_round_announcement(2), SensorReading{});
  ASSERT_TRUE(resp.has_value());
  EXPECT_NEAR(resp->tx_offset_s, t.guard_s + t.slot_duration_s(), 1e-9);
}

TEST(Mac, SequenceAdvancesOnlyOnAck) {
  // Stop-and-wait: an un-ACKed report is retransmitted with the same seq
  // (the reader dedupes on it); the ACK advances the window.
  NodeMac node(1, MacTiming{});
  ReaderMac reader{MacTiming{}};
  const auto r1 = node.on_downlink(reader.make_query(1), SensorReading{});
  const auto r2 = node.on_downlink(reader.make_query(1), SensorReading{});
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->frame.seq, r2->frame.seq);
  EXPECT_TRUE(node.awaiting_ack());
  node.on_downlink(reader.make_ack(1, r2->frame.seq), SensorReading{});
  EXPECT_FALSE(node.awaiting_ack());
  const auto r3 = node.on_downlink(reader.make_query(1), SensorReading{});
  ASSERT_TRUE(r3);
  EXPECT_EQ((r2->frame.seq + 1) & 0xFF, r3->frame.seq);
}

TEST(Mac, AckForWrongSeqOrAddressIgnored) {
  NodeMac node(1, MacTiming{});
  ReaderMac reader{MacTiming{}};
  const auto r1 = node.on_downlink(reader.make_query(1), SensorReading{});
  ASSERT_TRUE(r1);
  node.on_downlink(reader.make_ack(2, r1->frame.seq), SensorReading{});  // other node
  EXPECT_TRUE(node.awaiting_ack());
  node.on_downlink(reader.make_ack(1, static_cast<std::uint8_t>(r1->frame.seq + 1)),
                   SensorReading{});  // stale seq
  EXPECT_TRUE(node.awaiting_ack());
}

TEST(Mac, ReaderDedupesRetransmissionsOnSeq) {
  ReaderMac reader{MacTiming{}};
  Frame report;
  report.addr = 9;
  report.type = FrameType::kSensorReport;
  report.seq = 17;
  EXPECT_EQ(reader.on_report(report), ReaderMac::UplinkEvent::kDelivered);
  EXPECT_EQ(reader.on_report(report), ReaderMac::UplinkEvent::kDuplicate);
  EXPECT_EQ(reader.stats().at(9).delivered, 1u);
  EXPECT_EQ(reader.stats().at(9).duplicates, 1u);
  report.seq = 18;
  EXPECT_EQ(reader.on_report(report), ReaderMac::UplinkEvent::kDelivered);
  EXPECT_EQ(reader.stats().at(9).delivered, 2u);
}

TEST(Mac, BackoffIsExponentialWithCeiling) {
  ArqConfig arq;
  arq.backoff_base_slots = 1;
  arq.backoff_ceiling_slots = 8;
  arq.demote_after_misses = 100;
  ReaderMac reader{MacTiming{}, arq};
  EXPECT_EQ(reader.backoff_slots(4), 0u);
  std::vector<std::size_t> seen;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(reader.on_miss(4), ReaderMac::MissAction::kRetry);
    seen.push_back(reader.backoff_slots(4));
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 4, 8, 8, 8}));
}

TEST(Mac, DemotionAfterConsecutiveMisses) {
  ArqConfig arq;
  arq.demote_after_misses = 2;
  ReaderMac reader{MacTiming{}, arq};
  EXPECT_EQ(reader.on_miss(5), ReaderMac::MissAction::kRetry);
  EXPECT_EQ(reader.on_miss(5), ReaderMac::MissAction::kRetry);
  EXPECT_EQ(reader.on_miss(5), ReaderMac::MissAction::kDemote);
  reader.demote(5);
  EXPECT_EQ(reader.stats().at(5).demotions, 1u);
  // Demotion wipes ARQ state: the node restarts clean after re-discovery.
  EXPECT_EQ(reader.backoff_slots(5), 0u);
  EXPECT_EQ(reader.on_miss(5), ReaderMac::MissAction::kRetry);
}

TEST(Mac, ReaderStatsTrackDelivery) {
  ReaderMac reader{MacTiming{}};
  reader.on_uplink(3, true);
  reader.on_uplink(3, true);
  reader.on_uplink(3, false);
  EXPECT_NEAR(reader.stats().at(3).delivery_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Mac, BroadcastIsNotANodeAddress) {
  EXPECT_THROW(NodeMac(kBroadcastAddr, MacTiming{}), std::invalid_argument);
}

}  // namespace
}  // namespace vab::net
