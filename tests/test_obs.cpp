// Observability layer tests: JSON emitter escaping, metrics registry
// (concurrent updates, snapshot determinism across thread counts), scoped
// tracing (nesting, ring wrap, open-span flush), manifest embedding, the
// VAB_LOG parser, and the on/off bit-identity invariant on a real workload.
//
// Suite names deliberately contain "Parallel"/"Determinism" so the TSan CI
// job (ctest -R 'Parallel|Determinism') exercises the concurrent paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

namespace {

using vab::obs::JsonWriter;
using vab::obs::Registry;

// --- JSON emitter -----------------------------------------------------------

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(vab::obs::json_escape("plain"), "plain");
  EXPECT_EQ(vab::obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(vab::obs::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(vab::obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(vab::obs::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(vab::obs::json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(ObsJson, WriterNestsObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "E\"1");
  w.field("n", std::uint64_t{3});
  w.key("xs").begin_array().value(1.5).value(std::uint64_t{2}).end_array();
  w.key("sub").begin_object().field("ok", true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"E\\\"1\",\"n\":3,\"xs\":[1.5,2],\"sub\":{\"ok\":true}}");
}

TEST(ObsJson, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("nan", std::nan(""));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null}");
}

TEST(ObsJson, NumbersRoundTripExactly) {
  // json_number must emit a string that parses back to the identical double
  // for the whole representable range, including the values a fixed "%.12g"
  // precision silently corrupts.
  const double cases[] = {0.0,
                          -0.0,
                          0.1,
                          1.0 / 3.0,
                          std::nextafter(1.0, 2.0),
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(),
                          -std::numeric_limits<double>::max(),
                          1e100,
                          -271.828182845904523536,
                          123456789012345678.0};
  for (const double v : cases) {
    const std::string s = vab::obs::json_number(v);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
        << "value " << v << " serialized as '" << s << "' parsed back as "
        << back;
  }
}

TEST(ObsJson, NumbersUseShortestForm) {
  // Shortest round-trip form, not a padded fixed precision.
  EXPECT_EQ(vab::obs::json_number(0.1), "0.1");
  EXPECT_EQ(vab::obs::json_number(2.5), "2.5");
  EXPECT_EQ(vab::obs::json_number(1e100), "1e+100");
  EXPECT_EQ(vab::obs::json_number(-0.0), "-0");
  // A value "%.12g" would have truncated survives intact.
  const double fine = std::nextafter(1.0, 2.0);
  EXPECT_NE(vab::obs::json_number(fine), "1");
}

// --- metrics registry -------------------------------------------------------

TEST(ObsMetrics, CountersGaugesHistogramsRoundTrip) {
  Registry reg;
  const auto c = reg.counter("alpha.count");
  const auto g = reg.gauge("alpha.gauge");
  const auto h = reg.histogram("alpha.hist", {10, 100});
  c.add(5);
  c.inc();
  g.set(2.5);
  h.record(3);    // bucket 0 (<=10)
  h.record(50);   // bucket 1 (<=100)
  h.record(500);  // overflow bucket
  const std::string snap = reg.snapshot_json(false);
  EXPECT_NE(snap.find("\"alpha.count\":6"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"alpha.gauge\":2.5"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"bounds\":[10,100]"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"counts\":[1,1,1]"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"count\":3"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"sum\":553"), std::string::npos) << snap;
}

TEST(ObsMetrics, SnapshotIsAlphabeticallyOrdered) {
  Registry reg;
  reg.counter("zed").inc();
  reg.counter("apple").inc();
  reg.counter("mid").inc();
  const std::string snap = reg.snapshot_json(false);
  const auto a = snap.find("\"apple\"");
  const auto m = snap.find("\"mid\"");
  const auto z = snap.find("\"zed\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(ObsMetrics, ReRegisteringDifferentKindThrows) {
  Registry reg;
  reg.counter("same.name");
  EXPECT_THROW(reg.gauge("same.name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("same.name", {1}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("unsorted", {5, 1}), std::invalid_argument);
}

TEST(ObsMetrics, GlobalRegistryHasEngineMetricsAfterParallelFor) {
  vab::common::set_thread_count(4);
  std::atomic<int> sink{0};
  vab::common::parallel_for(0, 64, [&](std::size_t) { sink.fetch_add(1); });
  vab::common::set_thread_count(0);
  const std::string snap = Registry::global().snapshot_json(false);
  EXPECT_NE(snap.find("\"parallel.tasks\""), std::string::npos);
  EXPECT_NE(snap.find("\"parallel.worker_busy_ns\""), std::string::npos);
  EXPECT_NE(snap.find("\"parallel.worker_idle_ns\""), std::string::npos);
  EXPECT_NE(snap.find("\"parallel.queue_wait_ns\""), std::string::npos);
}

// --- concurrent updates (TSan target) --------------------------------------

TEST(ObsParallelMetrics, ConcurrentCounterAndHistogramUpdates) {
  Registry reg;
  const auto c = reg.counter("conc.count");
  const auto h = reg.histogram("conc.hist", {8, 64, 512});
  constexpr std::size_t kN = 10000;
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, kN, [&](std::size_t i) {
    c.add(2);
    h.record(i % 1000);
  });
  vab::common::set_thread_count(0);
  const std::string snap = reg.snapshot_json(false);
  EXPECT_NE(snap.find("\"conc.count\":" + std::to_string(2 * kN)), std::string::npos)
      << snap;
  EXPECT_NE(snap.find("\"count\":" + std::to_string(kN)), std::string::npos) << snap;
}

TEST(ObsParallelMetrics, GaugeLastWriteWinsUnderContention) {
  // Gauges are global last-write-wins doubles: with many threads racing, the
  // final value must be exactly one of the written values — never a blend,
  // a torn read, or a stale zero.
  for (const unsigned threads : {1U, 2U, 8U}) {
    Registry reg;
    const auto g = reg.gauge("lww.gauge");
    g.set(-1.0);
    vab::common::set_thread_count(threads);
    vab::common::parallel_for(0, 4096, [&](std::size_t i) {
      g.set(static_cast<double>(i));
    });
    vab::common::set_thread_count(0);
    const std::string snap = reg.snapshot_json(false);
    const auto at = snap.find("\"lww.gauge\":");
    ASSERT_NE(at, std::string::npos) << snap;
    const double v = std::strtod(snap.c_str() + at + 12, nullptr);
    EXPECT_GE(v, 0.0) << snap;   // some iteration's write landed
    EXPECT_LT(v, 4096.0) << snap;
    EXPECT_EQ(v, std::floor(v)) << snap;  // exactly one write, not a blend
  }
}

TEST(ObsDeterminismMetrics, GaugeLastWriteWinsIsDeterministicWhenValuesAgree) {
  // The engine's own gauges rely on this: every thread writes the same
  // value, so the snapshot is identical for any thread count.
  auto run = [](unsigned threads) {
    Registry reg;
    const auto g = reg.gauge("det.lww.gauge");
    vab::common::set_thread_count(threads);
    vab::common::parallel_for(0, 2048, [&](std::size_t) { g.set(42.5); });
    vab::common::set_thread_count(0);
    return reg.snapshot_json(false);
  };
  const std::string s1 = run(1);
  EXPECT_EQ(s1, run(2));
  EXPECT_EQ(s1, run(8));
  EXPECT_NE(s1.find("\"det.lww.gauge\":42.5"), std::string::npos) << s1;
}

TEST(ObsParallelMetrics, SnapshotWhileRecordingIsSafe) {
  Registry reg;
  const auto c = reg.counter("live.count");
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) (void)reg.snapshot_json(false);
  });
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, 20000, [&](std::size_t) { c.inc(); });
  vab::common::set_thread_count(0);
  stop.store(true);
  snapshotter.join();
  EXPECT_NE(reg.snapshot_json(false).find("\"live.count\":20000"), std::string::npos);
}

// --- snapshot determinism across thread counts ------------------------------

TEST(ObsDeterminismMetrics, SnapshotIdenticalAcross1_2_8Threads) {
  auto run = [](unsigned threads) {
    Registry reg;
    const auto c = reg.counter("det.count");
    const auto h = reg.histogram("det.hist", {10, 100, 1000});
    const auto g = reg.gauge("det.gauge");
    g.set(static_cast<double>(1234.5));
    vab::common::set_thread_count(threads);
    vab::common::parallel_for(0, 5000, [&](std::size_t i) {
      c.add(i % 7);
      h.record((i * 37) % 2000);
    });
    vab::common::set_thread_count(0);
    return reg.snapshot_json(false);
  };
  const std::string s1 = run(1);
  const std::string s2 = run(2);
  const std::string s8 = run(8);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);
}

// --- tracing ----------------------------------------------------------------

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vab::obs::clear_trace();
    vab::obs::enable_trace("");  // buffer only, no file
  }
  void TearDown() override {
    vab::obs::disable_trace();
    vab::obs::clear_trace();
  }

  // Extracts the numeric value following `"key":` at the first event whose
  // name field matches; returns -1 when absent.
  static double field_after(const std::string& json, const std::string& name,
                            const std::string& key) {
    const auto at = json.find("\"name\":\"" + name + "\"");
    if (at == std::string::npos) return -1.0;
    const auto k = json.find("\"" + key + "\":", at);
    if (k == std::string::npos) return -1.0;
    return std::stod(json.substr(k + key.size() + 3));
  }
};

TEST_F(ObsTraceTest, SpansNestByContainment) {
  {
    vab::obs::TraceSpan outer("outer-span");
    vab::obs::TraceSpan inner("inner-span");
  }
  const std::string json = vab::obs::trace_json();
  const double outer_ts = field_after(json, "outer-span", "ts");
  const double inner_ts = field_after(json, "inner-span", "ts");
  const double outer_dur = field_after(json, "outer-span", "dur");
  const double inner_dur = field_after(json, "inner-span", "dur");
  ASSERT_GE(outer_ts, 0.0);
  ASSERT_GE(inner_ts, 0.0);
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST_F(ObsTraceTest, OpenSpanIsNotExportedUntilClosed) {
  auto* span = new vab::obs::TraceSpan("open-span");
  EXPECT_EQ(vab::obs::trace_json().find("open-span"), std::string::npos);
  delete span;  // closes the span
  EXPECT_NE(vab::obs::trace_json().find("open-span"), std::string::npos);
}

TEST_F(ObsTraceTest, DisabledTracingRecordsNothing) {
  vab::obs::disable_trace();
  { vab::obs::TraceSpan s("ghost-span"); }
  vab::obs::enable_trace("");
  EXPECT_EQ(vab::obs::trace_json().find("ghost-span"), std::string::npos);
}

TEST_F(ObsTraceTest, RingWrapKeepsNewestAndReportsDrops) {
  constexpr std::size_t kOver = 40000;  // > per-thread ring capacity (32768)
  const std::uint64_t dropped_before =
      Registry::global().counter_value("obs.trace.dropped");
  for (std::size_t i = 0; i < kOver; ++i)
    vab::obs::record_complete_event("wrap-span", "test", i, i + 1);
  EXPECT_LE(vab::obs::trace_event_count(), std::size_t{32768});
  const std::string json = vab::obs::trace_json();
  EXPECT_NE(json.find("\"droppedEvents\":" + std::to_string(kOver - 32768)),
            std::string::npos);
  // Overwrites are observable as they happen (the live counter) and the
  // export is explicitly marked as truncated.
  EXPECT_EQ(Registry::global().counter_value("obs.trace.dropped") - dropped_before,
            std::uint64_t{kOver - 32768});
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
}

TEST_F(ObsTraceTest, UnwrappedTraceIsNotMarkedTruncated) {
  { vab::obs::TraceSpan s("tidy-span"); }
  const std::string json = vab::obs::trace_json();
  EXPECT_NE(json.find("\"truncated\":false"), std::string::npos);
}

TEST_F(ObsTraceTest, ExportCarriesManifestAndThreadNames) {
  vab::obs::set_manifest("test_key", "test \"quoted\" value");
  { vab::obs::TraceSpan s("manifest-span"); }
  const std::string json = vab::obs::trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"version\":"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(json.find("\"test_key\":\"test \\\"quoted\\\" value\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(ObsParallelTrace, WorkersRecordSpansConcurrently) {
  vab::obs::clear_trace();
  vab::obs::enable_trace("");
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, 256, [](std::size_t) {
    vab::obs::TraceSpan s("worker-span");
  });
  vab::common::set_thread_count(0);
  const std::string json = vab::obs::trace_json();
  vab::obs::disable_trace();
  vab::obs::clear_trace();
  EXPECT_NE(json.find("worker-span"), std::string::npos);
  EXPECT_NE(json.find("pool-worker"), std::string::npos);
}

// --- stage macros ----------------------------------------------------------

#if !defined(VAB_OBS_DISABLED)
TEST(ObsStage, StageScopeFeedsCountersAndSpans) {
  // Stage counters land in the global registry under stage.<name>.*.
  {
    VAB_STAGE("test.stage_macro");
  }
  const std::string snap = Registry::global().snapshot_json(false);
  EXPECT_NE(snap.find("\"stage.test.stage_macro.calls\":1"), std::string::npos);
  EXPECT_NE(snap.find("\"stage.test.stage_macro.ns\":"), std::string::npos);
}
#endif

// --- on/off bit-identity on a real workload ---------------------------------

TEST(ObsDeterminismWorkload, TracingDoesNotPerturbSeededResults) {
  const vab::sim::Scenario scenario = vab::sim::vab_river_scenario();
  const vab::sim::LinkBudget budget(scenario);
  auto run = [&] {
    vab::common::Rng rng(42);
    return budget.monte_carlo(vab::common::Meters{250.0}, 200, 256, rng);
  };
  vab::obs::disable_trace();
  const auto off = run();
  vab::obs::clear_trace();
  vab::obs::enable_trace("");
  const auto on = run();
  vab::obs::disable_trace();
  vab::obs::clear_trace();
  EXPECT_EQ(off.errors, on.errors);
  EXPECT_EQ(off.bits, on.bits);
  EXPECT_EQ(off.mean_snr_db, on.mean_snr_db);  // bit-identical doubles
}

// --- manifest / log ---------------------------------------------------------

TEST(ObsManifest, DefaultsAndOverrides) {
  const auto m = vab::obs::manifest();
  EXPECT_EQ(m.at("library"), "vab");
  EXPECT_FALSE(m.at("version").empty());
  EXPECT_FALSE(m.at("build_type").empty());
  vab::obs::set_manifest("custom", "v");
  EXPECT_EQ(vab::obs::manifest().at("custom"), "v");
}

TEST(ObsLog, ParseLogLevel) {
  using vab::common::LogLevel;
  using vab::common::parse_log_level;
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
}

}  // namespace
