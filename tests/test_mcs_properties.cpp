// Property tests for the MCS ladder and the rate-adaptation controller.
//
// Three property families:
//  1. Curves — every rung's BER/delivery is monotone in SNR, the reference
//     rung reproduces the legacy fleet curve bit-for-bit, and the ladder's
//     validation rejects mis-ordered tables.
//  2. Controller — under constant SNR the hysteresis band prevents rung
//     flapping over a 1000-observation run (monotone convergence, then
//     silence), dwell spacing holds, and the outcome-path fallback moves
//     the right way.
//  3. Workload — adaptive MCS beats fixed-rate goodput at high SNR and
//     matches its delivery at low SNR over the telemetry workload, with
//     deterministic results at a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "net/inventory.hpp"
#include "net/mcs/adapt.hpp"
#include "net/mcs/mcs.hpp"
#include "net/mcs/transport.hpp"
#include "sim/fleet/transport.hpp"

namespace vab {
namespace {

using net::mcs::AdaptConfig;
using net::mcs::AnalyticMcsConfig;
using net::mcs::AnalyticMcsTransport;
using net::mcs::McsEntry;
using net::mcs::McsLadder;
using net::mcs::RateController;

const McsLadder& ladder() {
  static const McsLadder* l = new McsLadder(McsLadder::default_ladder());
  return *l;
}

// ---------------------------------------------------------------------------
// 1. Curve properties
// ---------------------------------------------------------------------------

TEST(McsEntryProperties, ChipsPerBitMatchesLineCode) {
  EXPECT_EQ((McsEntry{"a", 500.0, phy::UplinkCode::kFm0, false}).chips_per_bit(), 2u);
  EXPECT_EQ((McsEntry{"b", 500.0, phy::UplinkCode::kMiller2, false}).chips_per_bit(),
            4u);
  EXPECT_EQ((McsEntry{"c", 500.0, phy::UplinkCode::kMiller4, false}).chips_per_bit(),
            8u);
}

TEST(McsEntryProperties, DataRateAppliesFecPenalty) {
  const McsEntry uncoded{"u", 700.0, phy::UplinkCode::kFm0, false};
  const McsEntry coded{"c", 700.0, phy::UplinkCode::kFm0, true};
  EXPECT_DOUBLE_EQ(uncoded.data_rate_bps(), 700.0);
  EXPECT_DOUBLE_EQ(coded.data_rate_bps(), 700.0 * 4.0 / 7.0);
}

TEST(McsEntryProperties, ReferenceRungMatchesLegacyFleetCurveBitForBit) {
  // The paper rung (FM0, 500 bps, uncoded) must evaluate to *exactly* the
  // expression FleetLinkTransport::frame_delivery_prob has always used —
  // the analytic ladder may not move any legacy seeded outcome.
  const McsEntry& ref = ladder().rung(McsLadder::kPaperRung);
  ASSERT_EQ(ref.bitrate_bps, 500.0);
  ASSERT_FALSE(ref.fec);
  for (double snr = -20.0; snr <= 30.0; snr += 0.25) {
    for (const std::size_t bits : {48u, 96u, 176u}) {
      EXPECT_EQ(ref.frame_delivery_prob(common::SnrDb{snr}, bits),
                sim::fleet::FleetLinkTransport::frame_delivery_prob(
                    common::SnrDb{snr}, bits))
          << "snr=" << snr << " bits=" << bits;
    }
  }
}

TEST(McsEntryProperties, BerMonotoneNonincreasingInSnrPerRung) {
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    double prev = 1.0;
    for (double snr = -25.0; snr <= 35.0; snr += 0.5) {
      const double b = ladder().rung(r).ber(common::SnrDb{snr});
      EXPECT_LE(b, prev + 1e-15) << "rung " << r << " snr " << snr;
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 0.5);
      prev = b;
    }
  }
}

TEST(McsEntryProperties, FrameDeliveryMonotoneNondecreasingInSnrPerRung) {
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    double prev = 0.0;
    for (double snr = -25.0; snr <= 35.0; snr += 0.5) {
      const double p = ladder().rung(r).frame_delivery_prob(common::SnrDb{snr}, 96);
      // pow() noise in the saturated region is ~1e-14; anything larger is a
      // real non-monotonicity.
      EXPECT_GE(p, prev - 1e-12) << "rung " << r << " snr " << snr;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
  }
}

TEST(McsLadderProperties, TotallyOrderedByDataRate) {
  for (std::size_t r = 1; r < ladder().size(); ++r)
    EXPECT_GT(ladder().rung(r).data_rate_bps(), ladder().rung(r - 1).data_rate_bps());
}

TEST(McsLadderProperties, ThroughputOrderHoldsAtHighSnr) {
  // At an SNR where every rung is clean, effective throughput (data rate x
  // delivery) must increase with the rung index: "step up" means faster.
  double prev = 0.0;
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    const McsEntry& e = ladder().rung(r);
    const double tput =
        e.data_rate_bps() * e.frame_delivery_prob(common::SnrDb{25.0}, 96);
    EXPECT_GT(tput, prev) << "rung " << r;
    prev = tput;
  }
}

TEST(McsLadderProperties, WaterfallSnrStrictlyIncreasing) {
  double prev = -1e9;
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    const double wf = ladder().snr_for_delivery(r, 0.5, 96).raw();
    EXPECT_GT(wf, prev) << "rung " << r;
    prev = wf;
  }
}

TEST(McsLadderProperties, BottomRungMostRobustAtLowSnr) {
  const double lo = ladder().snr_for_delivery(0, 0.5, 96).raw() + 1.0;
  const double p_bottom = ladder().rung(0).frame_delivery_prob(common::SnrDb{lo}, 96);
  const double p_top =
      ladder().rung(ladder().size() - 1).frame_delivery_prob(common::SnrDb{lo}, 96);
  EXPECT_GT(p_bottom, 0.5);
  EXPECT_LT(p_top, 0.1);
}

TEST(McsLadderProperties, FecHelpsInTheWaterfallRegion) {
  // fm0-500-fec vs fm0-500 at the uncoded rung's waterfall: the code must
  // buy delivery there (that is its entire purpose on the ladder).
  const McsEntry coded{"c", 500.0, phy::UplinkCode::kFm0, true};
  const McsEntry uncoded{"u", 500.0, phy::UplinkCode::kFm0, false};
  const double wf =
      ladder().snr_for_delivery(McsLadder::kPaperRung, 0.5, 96).raw();
  EXPECT_GT(coded.frame_delivery_prob(common::SnrDb{wf}, 96),
            uncoded.frame_delivery_prob(common::SnrDb{wf}, 96));
}

TEST(McsLadderValidation, RejectsEmptyLadder) {
  EXPECT_THROW(McsLadder({}), std::invalid_argument);
}

TEST(McsLadderValidation, RejectsOversizedLadder) {
  std::vector<McsEntry> rungs;
  for (std::size_t i = 0; i < net::mcs::kMaxRungs + 1; ++i)
    rungs.push_back({"r", 100.0 * static_cast<double>(i + 1),
                     phy::UplinkCode::kFm0, false});
  EXPECT_THROW(McsLadder(std::move(rungs)), std::invalid_argument);
}

TEST(McsLadderValidation, RejectsNonIncreasingDataRate) {
  std::vector<McsEntry> rungs;
  rungs.push_back({"fast", 1000.0, phy::UplinkCode::kFm0, false});
  rungs.push_back({"slow", 500.0, phy::UplinkCode::kFm0, false});
  EXPECT_THROW(McsLadder(std::move(rungs)), std::invalid_argument);
}

TEST(McsLadderValidation, RejectsInvertedRobustnessOrder) {
  // Data rate increases 100 -> 110 bps, but the Miller-4 rung's combining
  // gain plus clutter margin makes it *more* robust than the FM0 rung: the
  // waterfall ordering check must reject the table.
  std::vector<McsEntry> rungs;
  rungs.push_back({"fm0-100", 100.0, phy::UplinkCode::kFm0, false});
  rungs.push_back({"m4-110", 110.0, phy::UplinkCode::kMiller4, false});
  EXPECT_THROW(McsLadder(std::move(rungs)), std::invalid_argument);
}

TEST(McsLadderValidation, RungIndexOutOfRangeThrows) {
  EXPECT_THROW(ladder().rung(ladder().size()), std::out_of_range);
}

TEST(McsLadderValidation, SnrForDeliveryRejectsDegenerateTargets) {
  EXPECT_THROW(ladder().snr_for_delivery(0, 0.0, 96), std::invalid_argument);
  EXPECT_THROW(ladder().snr_for_delivery(0, 1.0, 96), std::invalid_argument);
}

TEST(McsLadderProperties, SnrForDeliveryInvertsTheCurve) {
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    for (const double target : {0.5, 0.9}) {
      const double snr = ladder().snr_for_delivery(r, target, 96).raw();
      EXPECT_NEAR(ladder().rung(r).frame_delivery_prob(common::SnrDb{snr}, 96), target,
                  1e-6)
          << "rung " << r << " target " << target;
    }
  }
}

TEST(McsEntryProperties, SlotDurationMatchesMacTimingAtReferenceRung) {
  const net::MacTiming t{};  // uplink 500 bps, 12-byte slot payload
  EXPECT_DOUBLE_EQ(
      ladder().rung(McsLadder::kPaperRung).slot_duration(t.slot_payload_bytes).raw(),
      t.slot_duration_s());
}

TEST(McsEntryProperties, SlotDurationGrowsWithFecAndShrinksWithRate) {
  const McsEntry coded{"c", 500.0, phy::UplinkCode::kFm0, true};
  const McsEntry uncoded{"u", 500.0, phy::UplinkCode::kFm0, false};
  const McsEntry fast{"f", 2000.0, phy::UplinkCode::kFm0, false};
  EXPECT_GT(coded.slot_duration(12).raw(), uncoded.slot_duration(12).raw());
  EXPECT_LT(fast.slot_duration(12).raw(), uncoded.slot_duration(12).raw());
}

TEST(McsEntryProperties, ApplyWritesModemAndFecState) {
  phy::PhyConfig phy_cfg;
  phy::FecConfig fec_cfg;
  const McsEntry& e = ladder().rung(0);  // m4-125-fec
  e.apply(phy_cfg, fec_cfg);
  EXPECT_EQ(phy_cfg.bitrate_bps, 125.0);
  EXPECT_EQ(phy_cfg.uplink_code, phy::UplinkCode::kMiller4);
  EXPECT_TRUE(fec_cfg.enable);
}

// ---------------------------------------------------------------------------
// 2. Controller properties
// ---------------------------------------------------------------------------

TEST(RateControllerProperties, StartRungClampedToLadder) {
  AdaptConfig cfg;
  cfg.start_rung = 99;
  RateController ctl(ladder(), cfg);
  EXPECT_EQ(ctl.rung(), ladder().size() - 1);
}

TEST(RateControllerProperties, ThresholdBandsAreOrdered) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (std::size_t r = 0; r < ladder().size(); ++r) {
    EXPECT_LT(ctl.down_threshold(r).raw(), ctl.up_threshold(r).raw()) << "rung " << r;
    if (r + 1 < ladder().size()) {
      // Stepping up to r+1 must land *inside* r+1's comfort zone: the SNR
      // that justified the step exceeds r+1's step-down threshold by the
      // hysteresis margin, so one step can never immediately revert.
      EXPECT_GE(ctl.up_threshold(r).raw(),
                ctl.down_threshold(r + 1).raw() + cfg.hysteresis_db - 1e-9)
          << "rung " << r;
    }
  }
}

TEST(RateControllerProperties, NoFlappingOver1000ConstantSnrObservations) {
  // The headline property: for ANY constant SNR, the controller walks
  // monotonically to its stable rung and then never moves again.
  for (double snr = -15.0; snr <= 30.0; snr += 0.5) {
    AdaptConfig cfg;
    RateController ctl(ladder(), cfg);
    std::size_t changes_after_settle = 0;
    std::size_t settle_polls = 0;
    std::size_t last_rung = ctl.rung();
    for (int i = 0; i < 1000; ++i) {
      ctl.observe(common::SnrDb{snr}, true);
      if (ctl.rung() != last_rung) {
        last_rung = ctl.rung();
        settle_polls = ctl.polls();
      }
    }
    // Monotone: under constant SNR the controller never reverses direction.
    EXPECT_TRUE(ctl.steps_up() == 0 || ctl.steps_down() == 0) << "snr " << snr;
    // Bounded: it can cross the ladder at most once.
    EXPECT_LE(ctl.steps_up() + ctl.steps_down(), ladder().size() - 1)
        << "snr " << snr;
    // Settled: every change happened in the initial walk, with dwell
    // spacing, so the last move is early in the run.
    EXPECT_LE(settle_polls,
              cfg.min_dwell_polls * ladder().size() + cfg.min_dwell_polls)
        << "snr " << snr;
    (void)changes_after_settle;
  }
}

TEST(RateControllerProperties, ConvergesToTopRungAtHighSnr) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 200; ++i) ctl.observe(common::SnrDb{30.0}, true);
  EXPECT_EQ(ctl.rung(), ladder().size() - 1);
  EXPECT_EQ(ctl.steps_down(), 0u);
}

TEST(RateControllerProperties, ConvergesToBottomRungAtVeryLowSnr) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 200; ++i) ctl.observe(common::SnrDb{-20.0}, false);
  EXPECT_EQ(ctl.rung(), 0u);
  EXPECT_EQ(ctl.steps_up(), 0u);
}

TEST(RateControllerProperties, MinDwellSpacesConsecutiveSteps) {
  AdaptConfig cfg;
  cfg.min_dwell_polls = 7;
  cfg.start_rung = 0;
  RateController ctl(ladder(), cfg);
  std::size_t last_step_poll = 0;
  bool have_step = false;
  for (int i = 0; i < 300; ++i) {
    const int step = ctl.observe(common::SnrDb{30.0}, true);
    if (step != 0) {
      if (have_step) {
        EXPECT_GE(ctl.polls() - last_step_poll, 7u);
      }
      last_step_poll = ctl.polls();
      have_step = true;
    }
  }
  EXPECT_TRUE(have_step);
}

TEST(RateControllerProperties, ResetRestoresStartState) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 100; ++i) ctl.observe(common::SnrDb{30.0}, true);
  ASSERT_NE(ctl.rung(), cfg.start_rung);
  ctl.reset();
  EXPECT_EQ(ctl.rung(), cfg.start_rung);
  EXPECT_EQ(ctl.polls(), 0u);
  EXPECT_FALSE(ctl.has_snr());
}

TEST(RateControllerProperties, OutcomePathStepsDownOnLossStreak) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 50; ++i) ctl.observe(std::nullopt, false);
  EXPECT_LT(ctl.rung(), cfg.start_rung);
  EXPECT_EQ(ctl.steps_up(), 0u);
}

TEST(RateControllerProperties, OutcomePathStepsUpOnCleanStreak) {
  AdaptConfig cfg;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 50; ++i) ctl.observe(std::nullopt, true);
  EXPECT_GT(ctl.rung(), cfg.start_rung);
  EXPECT_EQ(ctl.steps_down(), 0u);
}

TEST(RateControllerProperties, FrozenControllerNeverMoves) {
  AdaptConfig cfg;
  cfg.frozen = true;
  RateController ctl(ladder(), cfg);
  for (int i = 0; i < 100; ++i) ctl.observe(common::SnrDb{30.0}, true);
  for (int i = 0; i < 100; ++i) ctl.observe(common::SnrDb{-20.0}, false);
  EXPECT_EQ(ctl.rung(), cfg.start_rung);
  EXPECT_EQ(ctl.steps_up() + ctl.steps_down(), 0u);
}

// ---------------------------------------------------------------------------
// 3. Transport + telemetry workload properties
// ---------------------------------------------------------------------------

TEST(AnalyticMcsTransportProperties, RecordsLastUplinkSnr) {
  AnalyticMcsConfig tcfg;
  tcfg.snr_ref_db = 12.5;
  AnalyticMcsTransport tp(ladder(), tcfg);
  EXPECT_FALSE(tp.last_uplink_snr_db().has_value());
  common::Rng rng(1);
  bytes wire(12, 0xAA);
  tp.uplink_delivered(3, wire, rng);
  ASSERT_TRUE(tp.last_uplink_snr_db().has_value());
  EXPECT_DOUBLE_EQ(tp.last_uplink_snr_db()->raw(), 12.5);  // no fading configured
}

TEST(AnalyticMcsTransportProperties, PerAddressSnrOverride) {
  AnalyticMcsConfig tcfg;
  tcfg.snr_ref_db = 10.0;
  AnalyticMcsTransport tp(ladder(), tcfg);
  tp.set_snr_db(7, common::SnrDb{-3.0});
  EXPECT_DOUBLE_EQ(tp.snr_db(7).raw(), -3.0);
  EXPECT_DOUBLE_EQ(tp.snr_db(8).raw(), 10.0);
}

TEST(AnalyticMcsTransportProperties, DrawCountIndependentOfRung) {
  // Fault schedules must line up across rungs: after N uplinks the Rng must
  // sit at the same position whatever rung was commanded.
  auto drain = [](std::size_t rung) {
    AnalyticMcsConfig tcfg;
    tcfg.snr_ref_db = 25.0;
    tcfg.default_rung = rung;
    AnalyticMcsTransport tp(ladder(), tcfg);
    common::Rng rng(0xD12A40);
    bytes wire(12, 0x55);
    for (int i = 0; i < 64; ++i) tp.uplink_delivered(1, wire, rng);
    return rng.uniform();  // sentinel: equal iff the same draws happened
  };
  const double sentinel0 = drain(0);
  for (std::size_t r = 1; r < ladder().size(); ++r)
    EXPECT_EQ(drain(r), sentinel0) << "rung " << r;
}

TEST(AnalyticMcsTransportProperties, CommandedRungOverridesDefault) {
  AnalyticMcsConfig tcfg;
  AnalyticMcsTransport tp(ladder(), tcfg);
  EXPECT_EQ(&tp.entry_for(5), &ladder().rung(tcfg.default_rung));
  tp.set_uplink_mcs(5, &ladder().rung(1));
  EXPECT_EQ(&tp.entry_for(5), &ladder().rung(1));
  tp.set_uplink_mcs(5, nullptr);
  EXPECT_EQ(&tp.entry_for(5), &ladder().rung(tcfg.default_rung));
}

std::vector<std::uint8_t> population(std::size_t n) {
  std::vector<std::uint8_t> pop(n);
  for (std::size_t i = 0; i < n; ++i) pop[i] = static_cast<std::uint8_t>(i + 1);
  return pop;
}

/// Telemetry timing for a short-range dense deployment: a faster downlink
/// and a tight guard, so the uplink rate actually dominates the airtime.
net::MacTiming bench_timing() {
  net::MacTiming t;
  t.downlink_bitrate_bps = 500.0;
  t.guard_s = 0.1;
  return t;
}

net::TelemetryResult telemetry_at(double snr_db, bool adaptive,
                                  std::uint64_t seed, std::size_t cycles = 60) {
  net::InventoryConfig cfg;
  cfg.timing = bench_timing();
  if (adaptive) cfg.ladder = &ladder();
  AnalyticMcsConfig tcfg;
  tcfg.snr_ref_db = snr_db;
  AnalyticMcsTransport tp(ladder(), tcfg);
  common::Rng rng(seed);
  return net::run_telemetry(population(8), cycles, cfg, nullptr, rng, &tp);
}

TEST(TelemetryWorkload, AdaptiveBeatsFixedGoodputAtHighSnr) {
  const auto fixed = telemetry_at(25.0, false, 0xBEEF);
  const auto adaptive = telemetry_at(25.0, true, 0xBEEF);
  ASSERT_GT(fixed.goodput_bps(), 0.0);
  EXPECT_GE(adaptive.goodput_bps(), 1.5 * fixed.goodput_bps())
      << "adaptive " << adaptive.goodput_bps() << " fixed " << fixed.goodput_bps();
}

TEST(TelemetryWorkload, AdaptiveMatchesFixedDeliveryAtLowSnr) {
  // Just above the bottom rung's waterfall: fixed-rate FM0-500 is deep in
  // its loss region; the adaptive ladder steps down and holds delivery.
  const double snr = ladder().snr_for_delivery(0, 0.9, 96).raw();
  const auto fixed = telemetry_at(snr, false, 0xF10D);
  const auto adaptive = telemetry_at(snr, true, 0xF10D);
  EXPECT_GE(adaptive.totals.delivery_ratio(), fixed.totals.delivery_ratio());
  EXPECT_GT(static_cast<double>(adaptive.totals.delivered),
            0.5 * static_cast<double>(adaptive.totals.nodes) *
                static_cast<double>(adaptive.cycles) * 0.9);
}

TEST(TelemetryWorkload, AdaptiveRunIsDeterministic) {
  const auto a = telemetry_at(18.0, true, 0x5EED);
  const auto b = telemetry_at(18.0, true, 0x5EED);
  EXPECT_EQ(a.totals.delivered, b.totals.delivered);
  EXPECT_EQ(a.totals.polls, b.totals.polls);
  EXPECT_EQ(a.totals.mcs_steps_up, b.totals.mcs_steps_up);
  EXPECT_EQ(a.totals.mcs_steps_down, b.totals.mcs_steps_down);
  EXPECT_EQ(a.totals.rung_polls, b.totals.rung_polls);
  EXPECT_EQ(a.delivered_per_node, b.delivered_per_node);
  EXPECT_EQ(a.totals.duration_s, b.totals.duration_s);
}

TEST(TelemetryWorkload, RungResidencyAndReconfiguresRecorded) {
  const auto adaptive = telemetry_at(25.0, true, 0x0B5);
  // The controllers walked up from the paper rung: multiple rungs visited,
  // reconfigurations counted, and residency sums to the observed polls.
  EXPECT_GT(adaptive.totals.mcs_steps_up, 0u);
  EXPECT_GT(adaptive.totals.reconfigures, 0u);
  EXPECT_GT(adaptive.totals.rung_polls.size(), 1u);
  std::size_t residency = 0;
  for (const auto& [rung, polls] : adaptive.totals.rung_polls) {
    EXPECT_LT(rung, ladder().size());
    residency += polls;
  }
  EXPECT_GT(residency, 0u);
}

TEST(TelemetryWorkload, FairnessIsPerfectOnAHomogeneousCleanLink) {
  const auto r = telemetry_at(25.0, true, 0x7A17);
  EXPECT_DOUBLE_EQ(r.jain_fairness(), 1.0);
  EXPECT_TRUE(r.totals.complete);
}

TEST(TelemetryWorkload, FairnessDropsWhenOneNodeStarves) {
  net::InventoryConfig cfg;
  cfg.timing = bench_timing();
  cfg.ladder = &ladder();
  AnalyticMcsConfig tcfg;
  tcfg.snr_ref_db = 25.0;
  AnalyticMcsTransport tp(ladder(), tcfg);
  tp.set_snr_db(1, common::SnrDb{-30.0});  // node 1 is effectively dark at every rung
  common::Rng rng(0x57A2);
  const auto r = net::run_telemetry(population(8), 40, cfg, nullptr, rng, &tp);
  EXPECT_LT(r.jain_fairness(), 1.0);
  EXPECT_GT(r.jain_fairness(), 0.7);  // 7 of 8 nodes deliver evenly
  EXPECT_FALSE(r.totals.complete);
  EXPECT_EQ(r.delivered_per_node[0], 0u);
}

TEST(TelemetryWorkload, LegacyPathIgnoresLadderAccounting) {
  // Without a ladder the telemetry loop must report zero MCS activity.
  const auto fixed = telemetry_at(25.0, false, 0x1E6);
  EXPECT_EQ(fixed.totals.mcs_steps_up, 0u);
  EXPECT_EQ(fixed.totals.mcs_steps_down, 0u);
  EXPECT_EQ(fixed.totals.reconfigures, 0u);
  EXPECT_TRUE(fixed.totals.rung_polls.empty());
}

}  // namespace
}  // namespace vab
