// The parallel trial-execution engine itself: thread pool behaviour, range
// edge cases, exception propagation, nesting and thread-count resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace vab::common {
namespace {

// Every test must leave the global thread-count configuration untouched.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("VAB_THREADS");
    set_thread_count(0);
  }
  void TearDown() override {
    unsetenv("VAB_THREADS");
    set_thread_count(0);
  }
};

TEST_F(ParallelTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 0, [&](std::size_t) { ++calls; });
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });  // inverted: no-op
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, EveryIndexVisitedExactlyOnce) {
  set_thread_count(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_F(ParallelTest, NonZeroBeginOffset) {
  set_thread_count(4);
  std::vector<int> visits(100, 0);
  parallel_for(40, 100, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(visits[i], 0) << i;
  for (std::size_t i = 40; i < 100; ++i) EXPECT_EQ(visits[i], 1) << i;
}

TEST_F(ParallelTest, RangeSmallerThanThreadCount) {
  set_thread_count(8);
  std::vector<std::atomic<int>> visits(3);
  parallel_for(0, 3, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  set_thread_count(4);
  EXPECT_THROW(parallel_for(0, 1000,
                            [&](std::size_t i) {
                              if (i == 137) throw std::runtime_error("trial 137 failed");
                            }),
               std::runtime_error);
  // The pool must stay fully usable after a throwing loop.
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST_F(ParallelTest, NestedParallelForDoesNotDeadlockAndIsCorrect) {
  set_thread_count(4);
  constexpr std::size_t kOuter = 8, kInner = 500;
  std::vector<std::size_t> sums(kOuter, 0);
  parallel_for(0, kOuter, [&](std::size_t o) {
    // Inside a worker this runs inline; either way each index once.
    std::vector<int> marks(kInner, 0);
    parallel_for(0, kInner, [&](std::size_t i) { ++marks[i]; });
    std::size_t s = 0;
    for (int m : marks) s += static_cast<std::size_t>(m);
    sums[o] = s;
  });
  for (std::size_t o = 0; o < kOuter; ++o) EXPECT_EQ(sums[o], kInner) << o;
}

TEST_F(ParallelTest, VabThreadsEnvForcesSerial) {
  setenv("VAB_THREADS", "1", 1);
  set_thread_count(0);  // no override: env wins
  EXPECT_EQ(thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(64);
  parallel_for(0, ids.size(),
               [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, VabThreadsEnvSetsPoolWidth) {
  setenv("VAB_THREADS", "3", 1);
  EXPECT_EQ(thread_count(), 3u);
  std::mutex mu;
  std::set<std::thread::id> ids;
  parallel_for(0, 64, [&](std::size_t) {
    std::lock_guard<std::mutex> lk(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), 3u);
  EXPECT_GE(ids.size(), 1u);
}

TEST_F(ParallelTest, SetThreadCountOverridesEnv) {
  setenv("VAB_THREADS", "7", 1);
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2u);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), 7u);
}

TEST_F(ParallelTest, AutoResolutionFallsBackToHardware) {
  EXPECT_EQ(thread_count(), hardware_thread_count());
  EXPECT_GE(hardware_thread_count(), 1u);
}

TEST_F(ParallelTest, ParallelReduceSumsExactly) {
  set_thread_count(8);
  const std::size_t n = 12345;
  const auto total = parallel_reduce<std::size_t>(
      0, n, 0, [](std::size_t i) { return i; },
      [](std::size_t a, std::size_t b) { return a + b; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST_F(ParallelTest, ParallelReduceFloatBitIdenticalAcrossThreadCounts) {
  // The fold shape depends only on the range, so floating-point results
  // must match bitwise between serial and wide runs.
  auto run = [](unsigned threads) {
    set_thread_count(threads);
    return parallel_reduce<double>(
        0, 20000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST_F(ParallelTest, WorkerFlagVisibleInsideLoopOnly) {
  EXPECT_FALSE(in_parallel_worker());
  set_thread_count(4);
  std::atomic<int> worker_sightings{0};
  parallel_for(0, 64, [&](std::size_t) {
    if (in_parallel_worker()) ++worker_sightings;
  });
  EXPECT_FALSE(in_parallel_worker());
  // With >1 threads some iterations usually land on workers, but zero is
  // legal (the caller can drain everything first) — just require sanity.
  EXPECT_GE(worker_sightings.load(), 0);
}

}  // namespace
}  // namespace vab::common
