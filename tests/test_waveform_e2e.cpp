// End-to-end waveform trials: projector -> multipath -> Van Atta node ->
// multipath -> hydrophone -> demodulator, under blast, noise and fading.
// Also calibrates the analytic link budget against the waveform simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/linkbudget.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace vab {
namespace {

TEST(WaveformE2E, VabDecodesAtShortRange) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 30.0;
  s.env.fading_sigma_db = 0.0;
  common::Rng rng(101);
  sim::WaveformSimulator wsim(s, rng);
  const bitvec payload = rng.random_bits(48);
  const auto res = wsim.run_trial(payload);
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_EQ(res.bit_errors, 0u);
  EXPECT_TRUE(res.frame_ok);
}

TEST(WaveformE2E, VabDecodesAtMediumRange) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 100.0;
  s.env.fading_sigma_db = 0.0;
  common::Rng rng(102);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(48));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_EQ(res.bit_errors, 0u);
}

TEST(WaveformE2E, PabDecodesAtVeryShortRangeOnly) {
  sim::Scenario s = sim::pab_river_scenario();
  s.env.fading_sigma_db = 0.0;
  common::Rng rng(103);

  s.range_m = 8.0;
  {
    sim::WaveformSimulator wsim(s, rng);
    const auto res = wsim.run_trial(rng.random_bits(32));
    ASSERT_TRUE(res.demod.sync_found);
    EXPECT_LE(res.bit_errors, 1u);
  }
  // At VAB's working range the single-element baseline is far below the
  // noise floor.
  s.range_m = 150.0;
  {
    common::Rng rng2(104);
    sim::WaveformSimulator wsim(s, rng2);
    const auto res = wsim.run_trial(rng2.random_bits(32));
    EXPECT_FALSE(res.frame_ok);
  }
}

TEST(WaveformE2E, IncidentSplMatchesLinkBudget) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 50.0;
  s.env.fading_sigma_db = 0.0;
  // Compare against a single-path channel so the analytic spreading model
  // and the waveform channel agree on geometry.
  s.env.multipath.max_order = 0;
  s.env.spreading_coeff = 20.0;  // image-method direct path is spherical
  common::Rng rng(105);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(16));
  const sim::LinkBudget budget(s);
  const double predicted = budget.carrier_spl_at_node(common::Meters{s.range_m}).raw();
  EXPECT_NEAR(res.incident_spl_at_node_db, predicted, 3.0);
}

TEST(WaveformE2E, VanAttaToleratesOffAxisOrientation) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 60.0;
  s.env.fading_sigma_db = 0.0;
  s.node.orientation_rad = common::deg_to_rad(30.0);
  common::Rng rng(106);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(32));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_LE(res.bit_errors, 1u);
}

TEST(WaveformE2E, FixedPhaseArrayFailsOffAxisWhereVanAttaSurvives) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 100.0;
  s.env.fading_sigma_db = 0.0;
  s.node.orientation_rad = common::deg_to_rad(35.0);
  s.node.array.mode = vanatta::ArrayMode::kFixedPhase;
  common::Rng rng(107);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(32));
  EXPECT_FALSE(res.frame_ok);
}

TEST(WaveformE2E, LinkBudgetCalibratesAgainstWaveformSnr) {
  sim::Scenario s = sim::vab_river_scenario();
  // Spherical spreading (used for the clean single-path comparison) burns
  // 40 log r round trip, so calibrate at short range where the waveform
  // chain still has solid SNR.
  s.range_m = 25.0;
  s.env.fading_sigma_db = 0.0;
  s.env.multipath.max_order = 0;   // single path for a clean comparison
  s.env.spreading_coeff = 20.0;
  common::Rng rng(108);
  const auto stats = sim::run_waveform_trials(s, 3, 48, rng);
  ASSERT_EQ(stats.frames_synced, 3u);
  const sim::LinkBudget budget(s);
  const double predicted_snr =
      budget.evaluate(common::Meters{s.range_m}).snr_chip_db.raw();
  // The waveform chain has implementation loss (filter rounding, timing)
  // and an estimator floor; require agreement within 6 dB.
  EXPECT_NEAR(stats.mean_snr_db, predicted_snr, 6.0);
}

TEST(WaveformE2E, MultipathDelaySpreadDegradesHighBitrates) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 60.0;
  s.env.fading_sigma_db = 0.0;
  s.env.multipath.bottom_loss_db = 2.0;  // strong bottom -> severe ISI
  s.env.multipath.surface_loss_db = 0.5;
  common::Rng rng(109);

  s.phy.bitrate_bps = 200.0;
  common::Rng rng_slow = rng.child(1);
  const auto slow = sim::run_waveform_trials(s, 2, 32, rng_slow);
  s.phy.bitrate_bps = 2000.0;
  common::Rng rng_fast = rng.child(2);
  const auto fast = sim::run_waveform_trials(s, 2, 32, rng_fast);
  EXPECT_LE(slow.ber(), fast.ber() + 1e-9);
}

TEST(WaveformE2E, DopplerDriftStillDecodes) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 40.0;
  s.env.fading_sigma_db = 0.0;
  common::Rng rng(110);
  // Drifting boat: the round trip compresses the time base.
  // (Applied via the waveform channel's doppler in a custom trial below.)
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(32));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_EQ(res.bit_errors, 0u);
}

TEST(WaveformE2E, CodedTrialRunsCleanAtModerateRange) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 150.0;
  s.env.fading_sigma_db = 0.0;
  s.fec.enable = true;
  common::Rng rng(111);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(48));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_EQ(res.bit_errors, 0u);
}

TEST(WaveformE2E, CodingReducesErrorsAtNoiseEdge) {
  // At a site-noise level that pushes the raw link into the BER waterfall,
  // the Hamming+interleaver codec must deliver fewer data-bit errors than
  // the uncoded link (aggregated over seeds).
  std::size_t errs_coded = 0, errs_uncoded = 0;
  for (unsigned seed = 200; seed < 203; ++seed) {
    for (bool fec : {false, true}) {
      sim::Scenario s = sim::vab_river_scenario();
      s.range_m = 150.0;
      s.env.fading_sigma_db = 0.0;
      s.env.noise.site_floor_db = 72.0;
      s.fec.enable = fec;
      common::Rng rng(seed);
      sim::WaveformSimulator wsim(s, rng);
      const auto res = wsim.run_trial(rng.random_bits(48));
      (fec ? errs_coded : errs_uncoded) += res.bit_errors;
    }
  }
  EXPECT_LT(errs_coded, errs_uncoded);
}

TEST(WaveformE2E, DeterministicTwoRayFadeNotch) {
  // The image-method channel produces a real two-ray fade: around 120-135 m
  // in the 5 m-deep river the direct and bounce paths cancel round trip.
  // This is physics the paper's field campaign handles with positional
  // fading statistics; pin it down as a regression anchor.
  sim::Scenario s = sim::vab_river_scenario();
  s.env.fading_sigma_db = 0.0;
  common::Rng rng_good(111);
  s.range_m = 110.0;
  sim::WaveformSimulator good(s, rng_good);
  EXPECT_TRUE(good.run_trial(rng_good.random_bits(32)).demod.sync_found);
  common::Rng rng_fade(111);
  s.range_m = 125.0;
  sim::WaveformSimulator faded(s, rng_fade);
  EXPECT_FALSE(faded.run_trial(rng_fade.random_bits(32)).frame_ok);
}

TEST(WaveformE2E, MillerUplinkThroughFullChannel) {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 80.0;
  s.env.fading_sigma_db = 0.0;
  s.phy.uplink_code = phy::UplinkCode::kMiller2;
  common::Rng rng(112);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(48));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_EQ(res.bit_errors, 0u);
}

TEST(WaveformE2E, SurfaceWavesToleratedAtModerateSwell) {
  sim::Scenario s = sim::vab_ocean_scenario();
  s.range_m = 140.0;  // clean of the deterministic two-ray fade notches
  s.env.fading_sigma_db = 0.0;
  s.env.surface_wave_amplitude_m = 0.05;
  common::Rng rng(113);
  sim::WaveformSimulator wsim(s, rng);
  const auto res = wsim.run_trial(rng.random_bits(48));
  ASSERT_TRUE(res.demod.sync_found);
  EXPECT_LE(res.bit_errors, 2u);
}

}  // namespace
}  // namespace vab
