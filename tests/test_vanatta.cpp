// Van Atta retrodirectivity: the paper's core physics claims as invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "vanatta/array.hpp"
#include "vanatta/mismatch.hpp"
#include "vanatta/pattern.hpp"

namespace vab::vanatta {
namespace {

VanAttaConfig ideal_config(std::size_t n, ArrayMode mode = ArrayMode::kVanAtta) {
  VanAttaConfig cfg;
  cfg.n_elements = n;
  cfg.mode = mode;
  cfg.element_efficiency = 1.0;
  cfg.line_loss_db = 0.0;
  cfg.switch_insertion_db = 0.0;
  cfg.directivity_q = 0.0;  // isotropic elements for the pure array factor
  cfg.scheme = ModulationScheme::kPolarity;
  return cfg;
}

TEST(VanAtta, MirroredPairing) {
  const VanAttaArray a(ideal_config(6));
  EXPECT_EQ(a.partner(0), 5u);
  EXPECT_EQ(a.partner(2), 3u);
  EXPECT_EQ(a.partner(5), 0u);
  const VanAttaArray f(ideal_config(6, ArrayMode::kFixedPhase));
  EXPECT_EQ(f.partner(2), 2u);
}

TEST(VanAtta, PositionsSymmetricHalfWavelength) {
  const VanAttaArray a(ideal_config(4));
  const auto& p = a.positions();
  const double lambda = 1500.0 / 18500.0;
  EXPECT_NEAR(p[1] - p[0], lambda / 2.0, 1e-9);
  EXPECT_NEAR(p[0] + p[3], 0.0, 1e-12);
}

TEST(VanAtta, MonostaticGainIsNSquaredAtBroadside) {
  for (std::size_t n : {2u, 4u, 8u}) {
    const VanAttaArray a(ideal_config(n));
    const double gain_db = a.monostatic_gain_db(0.0, 18500.0);
    EXPECT_NEAR(gain_db, 20.0 * std::log10(static_cast<double>(n)), 1e-6) << n;
  }
}

TEST(VanAtta, RetrodirectiveAtAnyAngle) {
  // The defining property: full coherent gain toward the source for every
  // incidence angle, without any phase estimation.
  const VanAttaArray a(ideal_config(8));
  const double broadside = a.monostatic_gain_db(0.0, 18500.0);
  for (double deg : {-50.0, -30.0, -10.0, 15.0, 40.0, 55.0}) {
    EXPECT_NEAR(a.monostatic_gain_db(common::deg_to_rad(deg), 18500.0), broadside, 1e-6)
        << deg;
  }
}

TEST(VanAtta, FixedPhaseArrayCollapsesOffBroadside) {
  const VanAttaArray f(ideal_config(8, ArrayMode::kFixedPhase));
  const double broadside = f.monostatic_gain_db(0.0, 18500.0);
  const double off = f.monostatic_gain_db(common::deg_to_rad(30.0), 18500.0);
  EXPECT_NEAR(broadside, 20.0 * std::log10(8.0), 1e-6);
  EXPECT_LT(off, broadside - 10.0);
}

TEST(VanAtta, BistaticPeakAtMirrorForFixedArray) {
  // A fixed-phase reflect-array beams at the specular direction, not back.
  const VanAttaArray f(ideal_config(8, ArrayMode::kFixedPhase));
  const double theta_in = common::deg_to_rad(25.0);
  const rvec thetas = common::linspace(-common::kPi / 2.2, common::kPi / 2.2, 721);
  const auto cut = bistatic_sweep(f, theta_in, thetas, 18500.0);
  double best_theta = 0.0, best = -1e9;
  for (const auto& p : cut)
    if (p.gain_db > best) {
      best = p.gain_db;
      best_theta = p.theta_rad;
    }
  EXPECT_NEAR(best_theta, -theta_in, common::deg_to_rad(2.0));
}

TEST(VanAtta, ReciprocityOfBistaticResponse) {
  const VanAttaArray a(ideal_config(6));
  for (double t1 : {0.2, -0.5}) {
    for (double t2 : {0.1, 0.6}) {
      const cplx r12 = a.bistatic_response(t1, t2, 18500.0, 1);
      const cplx r21 = a.bistatic_response(t2, t1, 18500.0, 1);
      EXPECT_NEAR(std::abs(r12 - r21), 0.0, 1e-9);
    }
  }
}

TEST(VanAtta, LossesReduceGain) {
  VanAttaConfig lossy = ideal_config(4);
  lossy.element_efficiency = 0.75;
  lossy.line_loss_db = 0.5;
  lossy.switch_insertion_db = 0.3;
  const VanAttaArray clean(ideal_config(4));
  const VanAttaArray dirty(lossy);
  const double expected_loss =
      -2.0 * 20.0 * std::log10(0.75) + 0.5 + 0.3;  // eta twice (amplitude)
  EXPECT_NEAR(clean.monostatic_gain_db(0.0, 18500.0) -
                  dirty.monostatic_gain_db(0.0, 18500.0),
              expected_loss, 1e-6);
}

TEST(VanAtta, PolarityDoublesModulationAmplitudeOverOnOff) {
  VanAttaConfig pol = ideal_config(4);
  VanAttaConfig ook = ideal_config(4);
  ook.scheme = ModulationScheme::kOnOff;
  const VanAttaArray a_pol(pol), a_ook(ook);
  EXPECT_NEAR(a_pol.modulation_amplitude(0.0, 18500.0) /
                  a_ook.modulation_amplitude(0.0, 18500.0),
              2.0, 1e-9);
}

TEST(VanAtta, DirectivityNarrowsFieldOfView) {
  VanAttaConfig iso = ideal_config(8);
  VanAttaConfig dir = ideal_config(8);
  dir.directivity_q = 2.0;
  const VanAttaArray a_iso(iso), a_dir(dir);
  EXPECT_GT(retro_fov_deg(a_iso, 18500.0), retro_fov_deg(a_dir, 18500.0));
}

TEST(VanAtta, SingleElementMode) {
  VanAttaConfig cfg = ideal_config(8, ArrayMode::kSingleElement);
  const VanAttaArray a(cfg);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_NEAR(a.monostatic_gain_db(0.0, 18500.0), 0.0, 1e-9);
}

TEST(VanAtta, PhaseErrorsDegradeGain) {
  VanAttaArray a(ideal_config(8));
  const double clean = a.monostatic_gain_db(0.3, 18500.0);
  // Errors that differ *within* pairs break the coherence.
  a.set_phase_errors({0.0, 1.2, 0.0, 1.2, 1.2, 0.0, 0.0, 0.0});
  EXPECT_LT(a.monostatic_gain_db(0.3, 18500.0), clean - 1.0);
}

TEST(VanAtta, PairAntisymmetricErrorsCancelStructurally) {
  // A Van Atta pair applies err_i + err_partner(i); errors that are equal
  // and opposite across a mirrored pair therefore cost nothing — one of the
  // architecture's built-in robustness properties.
  VanAttaArray a(ideal_config(8));
  const double clean = a.monostatic_gain_db(0.3, 18500.0);
  std::vector<double> errs(8);
  for (std::size_t i = 0; i < 8; ++i) errs[i] = (i < 4) ? 1.2 : 0.0;
  // partner(i) = 7 - i: pair sums are all 1.2 -> common phase, no loss.
  a.set_phase_errors(errs);
  EXPECT_NEAR(a.monostatic_gain_db(0.3, 18500.0), clean, 1e-9);
}

TEST(VanAtta, OddElementCountSelfPairsMiddle) {
  const VanAttaArray a(ideal_config(5));
  EXPECT_EQ(a.partner(2), 2u);
  // Still retro: middle element sits at the array center (zero phase).
  const double g0 = a.monostatic_gain_db(0.0, 18500.0);
  const double g30 = a.monostatic_gain_db(common::deg_to_rad(30.0), 18500.0);
  EXPECT_NEAR(g0, g30, 1e-6);
}

TEST(VanAtta, FrequencyOffsetKeepsRetroButChangesPattern) {
  // Retrodirectivity is broadband for equal line lengths: monostatic gain
  // stays N^2 even off the design frequency.
  const VanAttaArray a(ideal_config(4));
  EXPECT_NEAR(a.monostatic_gain_db(0.4, 17000.0), 20.0 * std::log10(4.0), 1e-6);
}

TEST(Mismatch, GainLossGrowsWithPhaseSigma) {
  common::Rng rng(7);
  const VanAttaConfig cfg = ideal_config(8);
  const auto small = mismatch_monte_carlo(cfg, 0.0, 18500.0, 0.1, 0.0, 200, rng);
  const auto large = mismatch_monte_carlo(cfg, 0.0, 18500.0, 0.8, 0.0, 200, rng);
  EXPECT_LT(small.mean_loss_db, large.mean_loss_db);
  EXPECT_LT(small.mean_loss_db, 0.5);
  EXPECT_GT(large.mean_loss_db, 1.0);
  EXPECT_GE(large.p95_loss_db, large.mean_loss_db);
}

TEST(Mismatch, GainErrorsAloneMild) {
  common::Rng rng(8);
  const auto r = mismatch_monte_carlo(ideal_config(8), 0.0, 18500.0, 0.0, 1.0, 200, rng);
  EXPECT_LT(r.mean_loss_db, 1.0);
}

TEST(Pattern, FovWideForVanAttaNarrowForFixed) {
  VanAttaConfig va = ideal_config(8);
  va.directivity_q = 0.5;
  VanAttaConfig fx = va;
  fx.mode = ArrayMode::kFixedPhase;
  EXPECT_GT(retro_fov_deg(VanAttaArray(va), 18500.0), 80.0);
  EXPECT_LT(retro_fov_deg(VanAttaArray(fx), 18500.0), 20.0);
}

TEST(VanAtta, ConfigValidation) {
  VanAttaConfig bad = ideal_config(4);
  bad.element_efficiency = 1.5;
  EXPECT_THROW(VanAttaArray{bad}, std::invalid_argument);
  VanAttaConfig zero = ideal_config(4);
  zero.n_elements = 0;
  EXPECT_THROW(VanAttaArray{zero}, std::invalid_argument);
  const VanAttaArray a(ideal_config(4));
  EXPECT_THROW(a.bistatic_response(0.0, 0.0, -5.0, 1), std::invalid_argument);
  EXPECT_THROW(a.bistatic_response(0.0, 0.0, 18500.0, 7), std::invalid_argument);
}

}  // namespace
}  // namespace vab::vanatta
