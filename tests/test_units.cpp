// Tests for the strong-typedef units layer (common/units.hpp): bit-exact
// round-trips across the dB/linear boundary, constexpr arithmetic, NaN and
// non-finite behavior, the seconds<->samples rounding modes, and the unit
// literals. The compile-fail negatives (misuse the type system must reject)
// live in tests/compile_fail/ and run as configure-time try_compile checks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/units.hpp"

namespace {

using namespace vab::common;                 // NOLINT(build/namespaces)
using namespace vab::common::unit_literals;  // NOLINT(build/namespaces)

// --- dB/linear round trips -------------------------------------------------

// The wrappers must compute *exactly* the expressions the raw code used:
// to_linear is pow(10, x/10), to_db is 10*log10(x). Anything else would have
// moved the golden digests during the migration.
TEST(UnitsRoundTrip, SnrDbToLinearMatchesRawExpression) {
  for (double x : {-37.5, -3.0, 0.0, 0.25, 9.99, 30.0, 87.3}) {
    EXPECT_EQ(SnrDb{x}.to_linear().raw(), std::pow(10.0, x / 10.0));
    EXPECT_EQ(SnrLinear{std::pow(10.0, x / 10.0)}.to_db().raw(),
              10.0 * std::log10(std::pow(10.0, x / 10.0)));
  }
}

TEST(UnitsRoundTrip, DbPowerAndAmplitudeRatiosMatchFreeFunctions) {
  for (double x : {-60.0, -6.0, 0.0, 3.0, 20.0, 120.0}) {
    EXPECT_EQ(Db{x}.to_power_ratio(), power_ratio_from_db(x));
    EXPECT_EQ(Db{x}.to_amplitude_ratio(), amplitude_ratio_from_db(x));
    EXPECT_EQ(Db::from_power_ratio(power_ratio_from_db(x)).raw(),
              db_from_power_ratio(power_ratio_from_db(x)));
  }
}

TEST(UnitsRoundTrip, ToDbOfToLinearIsTightlyBounded) {
  // pow/log10 round-trip is not required to be bit-exact by IEEE, but it
  // must stay within 1 ulp-scale slop for every value the link budget uses.
  for (double x = -80.0; x <= 80.0; x += 0.173) {
    const double back = SnrDb{x}.to_linear().to_db().raw();
    EXPECT_NEAR(back, x, 1e-12 * std::max(1.0, std::fabs(x))) << "x=" << x;
  }
}

// --- constexpr arithmetic ---------------------------------------------------

TEST(UnitsConstexpr, ArithmeticIsUsableInConstantExpressions) {
  static_assert((Db{3.0} + Db{4.0}).raw() == 7.0);
  static_assert((Db{3.0} - Db{4.0}).raw() == -1.0);
  static_assert((-Db{3.0}).raw() == -3.0);
  static_assert((Db{3.0} * 2.0).raw() == 6.0);
  static_assert((2.0 * Db{3.0}).raw() == 6.0);
  static_assert(Db{8.0} / Db{2.0} == 4.0);

  static_assert((SnrDb{10.0} + Db{3.0}).raw() == 13.0);
  static_assert((SnrDb{10.0} - Db{3.0}).raw() == 7.0);
  static_assert((SnrDb{10.0} - SnrDb{4.0}).raw() == 6.0);

  static_assert((Meters{1500.0} + Meters{500.0}).km() == 2.0);
  static_assert(Hz::from_khz(18.5).raw() == 18500.0);
  static_assert(Hz{18500.0}.khz() == 18.5);
  static_assert(DbPerM::per_km(5.0).raw() == 0.005);
  static_assert(DbPerM::per_km(5.0).raw_per_km() == 5.0);

  // Dimensional cross products.
  static_assert((DbPerM{0.01} * Meters{300.0}).raw() == 3.0);
  static_assert(Hz{1000.0} * Seconds{0.25} == 250.0);
  static_assert(SampleRateHz{48000.0} / Hz{12000.0} == 4.0);
  static_assert(Hz{12000.0} / SampleRateHz{48000.0} == 0.25);
  static_assert(duration_of(SampleCount{4800}, SampleRateHz{48000.0}).raw() ==
                0.1);

  static_assert(Db{1.0} < Db{2.0});
  static_assert(SampleCount{3} + SampleCount{4} == SampleCount{7});
  SUCCEED();
}

TEST(UnitsConstexpr, CompoundAssignmentComposes) {
  Db g{3.0};
  g += Db{2.0};
  g -= Db{1.0};
  EXPECT_EQ(g.raw(), 4.0);

  SnrDb s{10.0};
  s += Db{6.0};
  s -= Db{1.0};
  EXPECT_EQ(s.raw(), 15.0);
}

// --- NaN / non-finite guards ------------------------------------------------

TEST(UnitsNaN, IsFiniteFlagsNonFiniteValues) {
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  constexpr double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(Db{0.0}.is_finite());
  EXPECT_FALSE(Db{nan}.is_finite());
  EXPECT_FALSE(Db{inf}.is_finite());
  EXPECT_FALSE(SnrDb{-inf}.is_finite());
  EXPECT_FALSE(Meters{nan}.is_finite());
}

TEST(UnitsNaN, NaNPropagatesInsteadOfComparingEqual) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Db poisoned = Db{nan} + Db{3.0};
  EXPECT_FALSE(poisoned.is_finite());
  EXPECT_FALSE(Db{nan} == Db{nan});  // IEEE semantics preserved
  EXPECT_FALSE(Db{nan} < Db{0.0});
  EXPECT_FALSE(SnrDb{nan}.to_linear().is_finite());
}

TEST(UnitsNaN, EdgeOfLinearDomainBehavesLikeRawMath) {
  // to_db of zero is -inf, of a negative power is NaN — same as the raw
  // expressions, never silently clamped.
  EXPECT_TRUE(std::isinf(SnrLinear{0.0}.to_db().raw()));
  EXPECT_LT(SnrLinear{0.0}.to_db().raw(), 0.0);
  EXPECT_TRUE(std::isnan(SnrLinear{-1.0}.to_db().raw()));
}

// --- seconds <-> samples ----------------------------------------------------

TEST(UnitsSamples, EveryCrossingNamesItsRoundingMode) {
  const SampleRateHz fs{48000.0};
  const Seconds t{1.25e-3};  // 60 samples exactly
  EXPECT_EQ(samples_floor(t, fs).raw(), 60u);
  EXPECT_EQ(samples_ceil(t, fs).raw(), 60u);
  EXPECT_EQ(samples_round(t, fs).raw(), 60u);

  const Seconds frac{1.26e-3};  // 60.48 samples
  EXPECT_EQ(samples_floor(frac, fs).raw(), 60u);
  EXPECT_EQ(samples_ceil(frac, fs).raw(), 61u);
  EXPECT_EQ(samples_round(frac, fs).raw(), 60u);

  EXPECT_EQ(duration_of(SampleCount{60}, fs).raw(), 60.0 / 48000.0);
}

// --- literals ----------------------------------------------------------------

TEST(UnitsLiterals, LiteralsProduceTheDocumentedScales) {
  EXPECT_EQ((6.0_dB).raw(), 6.0);
  EXPECT_EQ((12.0_snr_dB).raw(), 12.0);
  EXPECT_EQ((18.5_khz).raw(), 18500.0);
  EXPECT_EQ((2.0_km).raw(), 2000.0);
  EXPECT_EQ((5.0_ms).raw(), 0.005);
  EXPECT_EQ((1.5_m).raw(), 1.5);
  EXPECT_EQ((0.1_s).raw(), 0.1);
  EXPECT_EQ((3.0_w).raw(), 3.0);
}

}  // namespace
