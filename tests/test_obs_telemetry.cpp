// Tests for the telemetry layer built on top of the metrics registry and
// trace rings: labeled metric families (bounded cardinality), virtual-time
// series export (vab-series-v1), and the span-aggregation profiler
// (vab-profile-v1). Suite names deliberately match the TSan CI regex
// (Parallel / Determinism) for the concurrent paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace {

using vab::obs::CounterFamily;
using vab::obs::HistogramFamily;
using vab::obs::LabelSet;
using vab::obs::Registry;
using vab::obs::SeriesPoint;
using vab::obs::SeriesWriter;

// --- label encoding ---------------------------------------------------------

TEST(ObsLabels, EncodeSortsKeysAndValidates) {
  EXPECT_EQ(vab::obs::encode_labels({{"reader", "3"}}), "{reader=3}");
  EXPECT_EQ(vab::obs::encode_labels({{"z", "1"}, {"a", "2"}}), "{a=2,z=1}");
  EXPECT_EQ(vab::obs::encode_labels({{"mcs", "fsk-2"}, {"node_class", "v1.2"}}),
            "{mcs=fsk-2,node_class=v1.2}");
}

TEST(ObsLabels, EncodeRejectsMalformedSets) {
  EXPECT_THROW(vab::obs::encode_labels({}), std::invalid_argument);
  EXPECT_THROW(vab::obs::encode_labels({{"", "v"}}), std::invalid_argument);
  EXPECT_THROW(vab::obs::encode_labels({{"k", ""}}), std::invalid_argument);
  EXPECT_THROW(vab::obs::encode_labels({{"k", "a b"}}), std::invalid_argument);
  EXPECT_THROW(vab::obs::encode_labels({{"k{", "v"}}), std::invalid_argument);
  EXPECT_THROW(vab::obs::encode_labels({{"k", "1"}, {"k", "2"}}),
               std::invalid_argument);
}

// --- counter/histogram families --------------------------------------------

TEST(ObsLabels, CounterFamilyFansOutPerLabelSet) {
  Registry reg;
  CounterFamily fam(reg, "fam.count");
  fam.with({{"reader", "0"}}).add(3);
  fam.with({{"reader", "1"}}).add(5);
  fam.with({{"reader", "0"}}).add(4);  // same series as the first
  EXPECT_EQ(fam.series_count(), 2u);
  EXPECT_EQ(fam.dropped(), 0u);
  EXPECT_EQ(reg.counter_value("fam.count{reader=0}"), 7u);
  EXPECT_EQ(reg.counter_value("fam.count{reader=1}"), 5u);
  const std::string snap = reg.snapshot_json(false);
  // The plain family name can coexist with its labeled series, and sorts
  // before them ('{' > alphanumerics in ASCII).
  const auto a = snap.find("\"fam.count.labels_dropped\"");
  const auto b = snap.find("\"fam.count{overflow}\"");
  const auto c = snap.find("\"fam.count{reader=0}\"");
  ASSERT_NE(a, std::string::npos) << snap;
  ASSERT_NE(b, std::string::npos) << snap;
  ASSERT_NE(c, std::string::npos) << snap;
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(ObsLabels, CardinalityCapRoutesToOverflow) {
  Registry reg;
  CounterFamily fam(reg, "capped", 2);
  fam.with({{"id", "0"}}).inc();
  fam.with({{"id", "1"}}).inc();
  // Third distinct set: over the cap, lands in the overflow series.
  fam.with({{"id", "2"}}).add(10);
  fam.with({{"id", "3"}}).add(20);
  // Already-admitted sets keep their own series.
  fam.with({{"id", "0"}}).inc();
  EXPECT_EQ(fam.series_count(), 2u);
  EXPECT_EQ(fam.dropped(), 2u);
  EXPECT_EQ(reg.counter_value("capped{id=0}"), 2u);
  EXPECT_EQ(reg.counter_value("capped{id=1}"), 1u);
  EXPECT_EQ(reg.counter_value("capped{overflow}"), 30u);
  EXPECT_EQ(reg.counter_value("capped.labels_dropped"), 2u);
}

TEST(ObsLabels, HistogramFamilySharesBounds) {
  Registry reg;
  HistogramFamily fam(reg, "fam.hist", {10, 100}, 4);
  fam.with({{"mcs", "fsk"}}).record(5);
  fam.with({{"mcs", "fsk"}}).record(50);
  fam.with({{"mcs", "ofdm"}}).record(500);
  const std::string snap = reg.snapshot_json(false);
  EXPECT_NE(snap.find("\"fam.hist{mcs=fsk}\":{\"bounds\":[10,100],"
                      "\"counts\":[1,1,0],\"count\":2,\"sum\":55}"),
            std::string::npos)
      << snap;
  EXPECT_NE(snap.find("\"fam.hist{mcs=ofdm}\":{\"bounds\":[10,100],"
                      "\"counts\":[0,0,1],\"count\":1,\"sum\":500}"),
            std::string::npos)
      << snap;
}

TEST(ObsParallelLabels, ConcurrentResolutionAndRecording) {
  Registry reg;
  CounterFamily fam(reg, "conc.fam", 8);
  constexpr std::size_t kN = 20000;
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, kN, [&](std::size_t i) {
    fam.with({{"shard", std::to_string(i % 4)}}).inc();
  });
  vab::common::set_thread_count(0);
  EXPECT_EQ(fam.series_count(), 4u);
  EXPECT_EQ(fam.dropped(), 0u);
  std::uint64_t total = 0;
  for (int s = 0; s < 4; ++s)
    total += reg.counter_value("conc.fam{shard=" + std::to_string(s) + "}");
  EXPECT_EQ(total, kN);  // nothing lost, nothing double-counted
}

TEST(ObsParallelLabels, ConcurrentOverflowAccountingIsExact) {
  Registry reg;
  CounterFamily fam(reg, "spill.fam", 2);
  // Admit the survivors deterministically before fanning out, as the header
  // prescribes for cap-exceeding workloads.
  fam.with({{"id", "0"}});
  fam.with({{"id", "1"}});
  constexpr std::size_t kN = 10000;
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, kN, [&](std::size_t i) {
    fam.with({{"id", std::to_string(i % 8)}}).inc();
  });
  vab::common::set_thread_count(0);
  EXPECT_EQ(fam.series_count(), 2u);
  const std::uint64_t kept = reg.counter_value("spill.fam{id=0}") +
                             reg.counter_value("spill.fam{id=1}");
  const std::uint64_t spilled = reg.counter_value("spill.fam{overflow}");
  EXPECT_EQ(kept, kN / 4);  // ids 0 and 1 = 2 of 8 residues
  EXPECT_EQ(spilled, kN - kN / 4);
  EXPECT_EQ(fam.dropped(), spilled);
  EXPECT_EQ(reg.counter_value("spill.fam.labels_dropped"), spilled);
}

TEST(ObsDeterminismLabels, SnapshotIdenticalAcross1_2_8Threads) {
  auto run = [](unsigned threads) {
    Registry reg;
    CounterFamily fam(reg, "det.fam", 4);
    // Pre-register the admitted sets serially so the cap decision does not
    // depend on thread scheduling, then hammer from the pool.
    for (int s = 0; s < 4; ++s) fam.with({{"lane", std::to_string(s)}});
    vab::common::set_thread_count(threads);
    vab::common::parallel_for(0, 6000, [&](std::size_t i) {
      fam.with({{"lane", std::to_string(i % 6)}}).add(i % 3);
    });
    vab::common::set_thread_count(0);
    return reg.snapshot_json(false);
  };
  const std::string s1 = run(1);
  EXPECT_EQ(s1, run(2));
  EXPECT_EQ(s1, run(8));
  EXPECT_NE(s1.find("\"det.fam{overflow}\""), std::string::npos) << s1;
}

// --- virtual-time series ----------------------------------------------------

SeriesPoint make_point(std::uint64_t w, double t) {
  SeriesPoint p;
  p.window = w;
  p.t_s = t;
  p.values = {{"delivered", 10 + w}};
  return p;
}

TEST(ObsSeries, EmitsHeaderThenSortedPoints) {
  SeriesWriter sw("fleet.windows");
  SeriesPoint p = make_point(0, 1.5);
  p.labels = {{"reader", "2"}, {"nodes", "100"}};
  p.values = {{"polls", 7}, {"delivered", 5}};
  p.reals = {{"airtime_s", 0.25}};
  sw.emit(p);
  std::istringstream lines(sw.jsonl());
  std::string header, point;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, point));
  EXPECT_NE(header.find("\"schema\":\"vab-series-v1\""), std::string::npos);
  EXPECT_NE(header.find("\"stream\":\"fleet.windows\""), std::string::npos);
  EXPECT_NE(header.find("\"manifest\":{"), std::string::npos);
  // Labels and values come out key-sorted regardless of emit order; ints
  // and reals share one sorted "v" object.
  EXPECT_EQ(point,
            "{\"w\":0,\"t_s\":1.5,\"labels\":{\"nodes\":\"100\",\"reader\":\"2\"},"
            "\"v\":{\"airtime_s\":0.25,\"delivered\":5,\"polls\":7}}");
}

TEST(ObsSeries, RejectsMalformedPoints) {
  SeriesWriter sw("s");
  SeriesPoint empty;
  empty.t_s = 1.0;
  EXPECT_THROW(sw.emit(empty), std::invalid_argument);  // no values

  SeriesPoint nan_t = make_point(0, std::nan(""));
  EXPECT_THROW(sw.emit(nan_t), std::invalid_argument);

  SeriesPoint dup = make_point(0, 1.0);
  dup.values = {{"x", 1}, {"x", 2}};
  EXPECT_THROW(sw.emit(dup), std::invalid_argument);

  SeriesPoint clash = make_point(0, 1.0);
  clash.values = {{"x", 1}};
  clash.reals = {{"x", 2.0}};
  EXPECT_THROW(sw.emit(clash), std::invalid_argument);
}

TEST(ObsSeries, EnforcesMonotonicWindows) {
  SeriesWriter sw("s");
  sw.emit(make_point(3, 1.0));
  sw.emit(make_point(3, 2.0));  // equal is fine (several points per window)
  sw.emit(make_point(5, 3.0));
  EXPECT_THROW(sw.emit(make_point(4, 4.0)), std::logic_error);
  EXPECT_EQ(sw.points(), 3u);
}

TEST(ObsSeries, StreamsEachPointToDisk) {
  const std::string path = ::testing::TempDir() + "vab_series_test.jsonl";
  {
    SeriesWriter sw("disk.stream", path);
    sw.emit(make_point(0, 1.0));
    // Heartbeat contract: the point is on disk as soon as emit returns,
    // not at writer destruction.
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) ++n;
    EXPECT_EQ(n, 2u);  // header + one point
    sw.emit(make_point(1, 2.0));
  }
  std::ifstream in(path);
  std::stringstream whole;
  whole << in.rdbuf();
  EXPECT_NE(whole.str().find("\"w\":1"), std::string::npos);
  std::remove(path.c_str());
}

// --- span-aggregation profiler ----------------------------------------------

vab::obs::CollectedSpan span(const char* name, std::uint64_t t0, std::uint64_t t1,
                             std::uint32_t tid = 0) {
  vab::obs::CollectedSpan s;
  s.name = name;
  s.cat = "test";
  s.t0 = t0;
  s.t1 = t1;
  s.tid = tid;
  return s;
}

TEST(ObsProfile, SelfTimeExcludesNestedSpans) {
  // outer [0,100) contains mid [10,60) contains leaf [20,30).
  const auto p = vab::obs::profile_spans(
      {span("outer", 0, 100), span("mid", 10, 60), span("leaf", 20, 30)});
  ASSERT_EQ(p.stages.size(), 3u);
  // Stages are alphabetical: leaf, mid, outer.
  EXPECT_EQ(p.stages[0].name, "leaf");
  EXPECT_EQ(p.stages[0].total_ns, 10u);
  EXPECT_EQ(p.stages[0].self_ns, 10u);
  EXPECT_EQ(p.stages[1].name, "mid");
  EXPECT_EQ(p.stages[1].total_ns, 50u);
  EXPECT_EQ(p.stages[1].self_ns, 40u);
  EXPECT_EQ(p.stages[2].name, "outer");
  EXPECT_EQ(p.stages[2].total_ns, 100u);
  EXPECT_EQ(p.stages[2].self_ns, 50u);
  for (const auto& s : p.stages) EXPECT_LE(s.self_ns, s.total_ns);
}

TEST(ObsProfile, FoldedStacksAggregateByPath) {
  // Two calls of inner under outer, plus one top-level inner.
  const auto p = vab::obs::profile_spans({span("outer", 0, 100),
                                          span("inner", 10, 20),
                                          span("inner", 30, 40),
                                          span("inner", 200, 250)});
  // Sorted by path: the top-level inner, outer's own self time, and the
  // two nested inner calls merged under "outer;inner".
  ASSERT_EQ(p.folded.size(), 3u);
  EXPECT_EQ(p.folded[0].first, "inner");
  EXPECT_EQ(p.folded[0].second, 50u);
  EXPECT_EQ(p.folded[1].first, "outer");
  EXPECT_EQ(p.folded[1].second, 80u);
  EXPECT_EQ(p.folded[2].first, "outer;inner");
  EXPECT_EQ(p.folded[2].second, 20u);
  const std::string folded = vab::obs::profile_folded(p);
  EXPECT_EQ(folded, "inner 50\nouter 80\nouter;inner 20\n");
}

TEST(ObsProfile, ThreadsDoNotNestAcrossEachOther) {
  // Identical timestamps on two tids: each tid gets its own stack, so
  // neither span is the other's child.
  const auto p = vab::obs::profile_spans(
      {span("a", 0, 100, 1), span("b", 0, 100, 2)});
  ASSERT_EQ(p.stages.size(), 2u);
  EXPECT_EQ(p.stages[0].self_ns, 100u);
  EXPECT_EQ(p.stages[1].self_ns, 100u);
  ASSERT_EQ(p.folded.size(), 2u);
  EXPECT_EQ(p.folded[0].first, "a");
  EXPECT_EQ(p.folded[1].first, "b");
}

TEST(ObsProfile, SiblingsAtSameDepthDoNotNest) {
  const auto p = vab::obs::profile_spans(
      {span("parent", 0, 100), span("first", 10, 40), span("second", 40, 70)});
  ASSERT_EQ(p.stages.size(), 3u);
  ASSERT_EQ(p.folded.size(), 3u);
  EXPECT_EQ(p.folded[1].first, "parent;first");
  EXPECT_EQ(p.folded[2].first, "parent;second");
  // parent self = 100 - 30 - 30 (stages are alphabetical: first < parent
  // < second).
  EXPECT_EQ(p.stages[1].name, "parent");
  EXPECT_EQ(p.stages[1].self_ns, 40u);
}

TEST(ObsProfile, CallCountsAccumulatePerName) {
  std::vector<vab::obs::CollectedSpan> spans;
  for (std::uint64_t i = 0; i < 5; ++i)
    spans.push_back(span("hot", i * 10, i * 10 + 4));
  const auto p = vab::obs::profile_spans(spans);
  ASSERT_EQ(p.stages.size(), 1u);
  EXPECT_EQ(p.stages[0].calls, 5u);
  EXPECT_EQ(p.stages[0].total_ns, 20u);
  EXPECT_EQ(p.stages[0].self_ns, 20u);
}

TEST(ObsProfile, JsonCarriesSchemaManifestAndDropCount) {
  const std::string json = vab::obs::profile_json(
      vab::obs::profile_spans({span("only", 0, 10)}, 7));
  EXPECT_NE(json.find("\"schema\":\"vab-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"manifest\":{"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":7"), std::string::npos);
  EXPECT_NE(json.find("\"only\":{\"calls\":1,\"total_ns\":10,\"self_ns\":10}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"folded\":[[\"only\",10]]"), std::string::npos) << json;
}

TEST(ObsProfile, AggregatesLiveTraceRings) {
  vab::obs::clear_trace();
  vab::obs::enable_trace("");
  {
    vab::obs::TraceSpan outer("profile-outer");
    vab::obs::TraceSpan inner("profile-inner");
  }
  const auto p = vab::obs::profile_from_trace();
  vab::obs::disable_trace();
  vab::obs::clear_trace();
  std::uint64_t outer_total = 0, inner_total = 0, outer_self = 0;
  bool nested_path = false;
  for (const auto& s : p.stages) {
    if (s.name == "profile-outer") {
      outer_total = s.total_ns;
      outer_self = s.self_ns;
    }
    if (s.name == "profile-inner") inner_total = s.total_ns;
  }
  for (const auto& [path, self_ns] : p.folded) {
    (void)self_ns;
    if (path == "profile-outer;profile-inner") nested_path = true;
  }
  EXPECT_GT(outer_total, 0u);
  EXPECT_GT(inner_total, 0u);
  EXPECT_LE(inner_total, outer_total);
  EXPECT_EQ(outer_self, outer_total - inner_total);
  EXPECT_TRUE(nested_path);
}

TEST(ObsParallelProfile, WorkerSpansAggregateWithoutCrosstalk) {
  vab::obs::clear_trace();
  vab::obs::enable_trace("");
  vab::common::set_thread_count(8);
  vab::common::parallel_for(0, 512, [](std::size_t) {
    vab::obs::TraceSpan s("telemetry-worker-span");
  });
  vab::common::set_thread_count(0);
  const auto p = vab::obs::profile_from_trace();
  vab::obs::disable_trace();
  vab::obs::clear_trace();
  std::uint64_t calls = 0;
  for (const auto& s : p.stages)
    if (s.name == "telemetry-worker-span") calls = s.calls;
  EXPECT_EQ(calls, 512u);
  for (const auto& s : p.stages) EXPECT_LE(s.self_ns, s.total_ns);
}

}  // namespace
