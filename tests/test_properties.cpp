// Cross-module property sweeps (parameterized): invariants that must hold
// across the whole configuration space, not just at the preset operating
// points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "channel/absorption.hpp"
#include "channel/multipath.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/fleet/event_queue.hpp"
#include "sim/fleet/fleet.hpp"
#include "phy/ber.hpp"
#include "phy/coding.hpp"
#include "phy/fec.hpp"
#include "phy/fm0.hpp"
#include "phy/miller.hpp"
#include "piezo/matching.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "vanatta/array.hpp"

namespace vab {
namespace {

// ---- Link budget invariants over environment x bitrate -------------------

class BudgetSweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(BudgetSweep, SnrStrictlyDecreasingInRange) {
  const auto [env, bitrate] = GetParam();
  sim::Scenario s = std::string(env) == "ocean" ? sim::vab_ocean_scenario()
                                                : sim::vab_river_scenario();
  s.phy.bitrate_bps = bitrate;
  const sim::LinkBudget lb(s);
  double prev = 1e99;
  for (double r = 10.0; r <= 1000.0; r *= 1.6) {
    const double snr = lb.evaluate(common::Meters{r}).snr_chip_db.raw();
    EXPECT_LT(snr, prev) << env << " " << bitrate << " @" << r;
    prev = snr;
  }
}

TEST_P(BudgetSweep, BerBoundedAndMonotoneInFading) {
  const auto [env, bitrate] = GetParam();
  sim::Scenario s = std::string(env) == "ocean" ? sim::vab_ocean_scenario()
                                                : sim::vab_river_scenario();
  s.phy.bitrate_bps = bitrate;
  const sim::LinkBudget lb(s);
  for (double r : {50.0, 200.0, 600.0}) {
    const double ber_up = lb.evaluate(common::Meters{r}, common::Db{+6.0}).ber;
    const double ber_dn = lb.evaluate(common::Meters{r}, common::Db{-6.0}).ber;
    EXPECT_LE(ber_up, ber_dn);
    EXPECT_GE(ber_up, 0.0);
    EXPECT_LE(ber_dn, 0.5 + 1e-9);
  }
}

TEST_P(BudgetSweep, HalvingBitrateBuysAbout3dB) {
  const auto [env, bitrate] = GetParam();
  sim::Scenario s = std::string(env) == "ocean" ? sim::vab_ocean_scenario()
                                                : sim::vab_river_scenario();
  s.phy.bitrate_bps = bitrate;
  const double snr_full =
      sim::LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  s.phy.bitrate_bps = bitrate / 2.0;
  const double snr_half =
      sim::LinkBudget(s).evaluate(common::Meters{200.0}).snr_chip_db.raw();
  EXPECT_NEAR(snr_half - snr_full, 3.01, 0.05);
}

INSTANTIATE_TEST_SUITE_P(EnvRates, BudgetSweep,
                         ::testing::Combine(::testing::Values("river", "ocean"),
                                            ::testing::Values(100.0, 500.0, 2000.0)));

// ---- Line-code invariants over random payloads ----------------------------

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, AllLineCodesRoundTripRandomPayloads) {
  common::Rng rng(GetParam());
  const std::size_t n = 8 * static_cast<std::size_t>(rng.uniform_int(1, 24));
  const bitvec bits = rng.random_bits(n);
  EXPECT_EQ(phy::fm0_decode(phy::fm0_encode(bits)), bits);
  for (unsigned m : {2u, 4u, 8u})
    EXPECT_EQ(phy::miller_decode(phy::miller_encode(bits, m), m), bits) << m;
}

TEST_P(CodecFuzz, FecNeverMakesCleanDataWorse) {
  common::Rng rng(GetParam() + 1000);
  const std::size_t n = 4 * static_cast<std::size_t>(rng.uniform_int(1, 32));
  const bitvec data = rng.random_bits(n);
  phy::FrameCodec codec;
  std::size_t corrected = 0;
  EXPECT_EQ(codec.decode(codec.encode(data), n, corrected), data);
}

TEST_P(CodecFuzz, CrcCatchesRandomTwoBitCorruption) {
  common::Rng rng(GetParam() + 2000);
  bytes msg(12);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  bytes wire = phy::append_crc(msg);
  // Any two distinct bit flips: CRC-16 detects all double-bit errors within
  // its guarantee length.
  const auto total_bits = wire.size() * 8;
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<long>(total_bits) - 1));
  auto j = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<long>(total_bits) - 1));
  if (j == i) j = (j + 1) % total_bits;
  wire[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
  wire[j / 8] ^= static_cast<std::uint8_t>(1u << (j % 8));
  bytes out;
  EXPECT_FALSE(phy::check_and_strip_crc(wire, out));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<std::uint64_t>(0, 8));

// ---- Array invariants over geometry ---------------------------------------

class ArraySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArraySweep, RetroGainIndependentOfSpacing) {
  // Retrodirectivity holds for any element spacing (grating lobes move, the
  // monostatic return does not).
  const std::size_t n = GetParam();
  for (double spacing_frac : {0.25, 0.5, 0.8}) {
    vanatta::VanAttaConfig cfg;
    cfg.n_elements = n;
    cfg.element_efficiency = 1.0;
    cfg.line_loss_db = 0.0;
    cfg.switch_insertion_db = 0.0;
    cfg.directivity_q = 0.0;
    cfg.spacing_m = spacing_frac * 1500.0 / 18500.0;
    const vanatta::VanAttaArray arr(cfg);
    for (double deg : {-40.0, 0.0, 25.0}) {
      EXPECT_NEAR(arr.monostatic_gain_db(common::deg_to_rad(deg), 18500.0),
                  20.0 * std::log10(static_cast<double>(n)), 1e-6)
          << n << " " << spacing_frac << " " << deg;
    }
  }
}

TEST_P(ArraySweep, ModulationAmplitudeScalesLinearlyWithN) {
  const std::size_t n = GetParam();
  vanatta::VanAttaConfig cfg;
  cfg.n_elements = n;
  cfg.element_efficiency = 1.0;
  cfg.line_loss_db = 0.0;
  cfg.switch_insertion_db = 0.0;
  cfg.directivity_q = 0.0;
  cfg.scheme = vanatta::ModulationScheme::kPolarity;
  const vanatta::VanAttaArray arr(cfg);
  EXPECT_NEAR(arr.modulation_amplitude(0.0, 18500.0), static_cast<double>(n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArraySweep, ::testing::Values(2u, 4u, 6u, 8u, 12u));

// ---- Channel invariants ----------------------------------------------------

TEST(ChannelProperties, AbsorptionLinearInRange) {
  for (double f : {10e3, 18.5e3, 50e3}) {
    const double a1 =
        channel::absorption_loss(common::Hz{f}, common::Meters{100.0}).raw();
    const double a2 =
        channel::absorption_loss(common::Hz{f}, common::Meters{200.0}).raw();
    EXPECT_NEAR(a2, 2.0 * a1, 1e-9) << f;
  }
}

TEST(ChannelProperties, TapEnergyNeverExceedsLosslessBound) {
  // With bounce losses >= 0 and spreading, total tap power is bounded by
  // the sum of per-path spreading alone.
  channel::MultipathConfig cfg;
  cfg.water_depth_m = 8.0;
  cfg.max_order = 5;
  cfg.min_relative_amplitude = 1e-6;
  const auto taps = channel::image_method_taps(common::Meters{120.0}, common::Meters{2.0},
                        common::Meters{6.0}, 1500.0, cfg);
  for (const auto& t : taps) {
    const double r = t.delay_s * 1500.0;
    EXPECT_LE(std::abs(t.gain), 1.0 / std::max(r, 1.0) + 1e-12);
  }
}

TEST(ChannelProperties, MoreBouncesArriveLater) {
  channel::MultipathConfig cfg;
  cfg.water_depth_m = 10.0;
  cfg.max_order = 3;
  const auto taps = channel::image_method_taps(common::Meters{80.0}, common::Meters{3.0},
                        common::Meters{6.0}, 1500.0, cfg);
  // Delay of the earliest k-bounce arrival grows with k.
  double prev_min = -1.0;
  for (int k = 0; k <= 3; ++k) {
    double min_delay = 1e9;
    for (const auto& t : taps)
      if (t.surface_bounces + t.bottom_bounces == k)
        min_delay = std::min(min_delay, t.delay_s);
    if (min_delay == 1e9) continue;
    EXPECT_GT(min_delay, prev_min);
    prev_min = min_delay;
  }
}

// ---- Matching invariants ---------------------------------------------------

TEST(MatchingProperties, MatchedEfficiencyPeaksAtDesignFrequency) {
  for (double q : {10.0, 25.0, 60.0}) {
    const auto bvd = piezo::BvdModel::from_resonance(18500.0, q, 0.3, 10e-9, 0.7);
    const piezo::MatchedTransducer mt(bvd, 50.0, 18500.0);
    const double at_f0 = mt.radiated_fraction(18500.0);
    EXPECT_NEAR(at_f0, 0.7, 0.01) << q;  // perfect match x eta
    for (double off : {0.93, 1.07})
      EXPECT_LT(mt.radiated_fraction(18500.0 * off), at_f0) << q << " " << off;
  }
}

// ---- Fleet event-queue / virtual-clock invariants --------------------------

class EventSoup : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventSoup, TimeMonotoneAndFifoAmongEqualTimestamps) {
  // Seeded random soup of interleaved pushes and pops. Timestamps are drawn
  // from a small discrete set, so ties are the common case, not the corner.
  common::Rng rng(GetParam() * 31 + 5);
  sim::fleet::EventQueue q;
  std::uint64_t pushed = 0, popped = 0;
  double last_time = -1.0;  // below any event time: first pop never ties
  std::uint64_t last_push_seq_at_time = 0;
  for (int step = 0; step < 2000; ++step) {
    if (q.empty() || rng.coin(0.6)) {
      // Future times only: quantized to quarter seconds to force ties.
      const double t =
          q.now_s() + 0.25 * static_cast<double>(rng.uniform_int(0, 12));
      q.push(sim::fleet::Event{t, 0, 0, pushed});  // payload = push index
      ++pushed;
    } else {
      const auto ev = q.pop();
      ASSERT_TRUE(ev.has_value());
      // Virtual time never runs backwards, and the clock tracks the pop.
      ASSERT_GE(ev->time_s, last_time);
      ASSERT_EQ(q.now_s(), ev->time_s);
      // FIFO among equal timestamps: push order (payload) must ascend.
      if (ev->time_s == last_time) {
        ASSERT_GT(ev->payload, last_push_seq_at_time);
      }
      last_time = ev->time_s;
      last_push_seq_at_time = ev->payload;
      ++popped;
    }
  }
  while (auto ev = q.pop()) {
    ASSERT_GE(ev->time_s, last_time);
    if (ev->time_s == last_time) {
      ASSERT_GT(ev->payload, last_push_seq_at_time);
    }
    last_time = ev->time_s;
    last_push_seq_at_time = ev->payload;
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_EQ(q.pushed(), pushed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSoup, ::testing::Range<std::uint64_t>(0, 6));

TEST(FleetDeterminismProperties, ReplicatesBitIdenticalAcrossThreadCounts) {
  // The fleet's parallelism is across independent seeded replicates; the
  // digests (FNV over every integer protocol outcome) must be identical at
  // 1, 2, and 8 threads.
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_river_scenario();
  fc.n_nodes = 500;
  fc.n_readers = 4;
  fc.area_m = 700.0;
  fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  const common::Rng rng(77);

  std::vector<std::vector<std::uint64_t>> digests;
  for (const unsigned n : {1U, 2U, 8U}) {
    common::set_thread_count(n);
    const auto runs = sim::fleet::run_fleet_replicates(fc, 6, rng);
    std::vector<std::uint64_t> d;
    for (const auto& r : runs) d.push_back(r.digest);
    digests.push_back(std::move(d));
  }
  common::set_thread_count(0);
  ASSERT_EQ(digests[0].size(), 6u);
  EXPECT_EQ(digests[1], digests[0]);
  EXPECT_EQ(digests[2], digests[0]);
  // Distinct replicates genuinely differ (the digest is not degenerate).
  EXPECT_NE(digests[0][0], digests[0][1]);
}

TEST(BerProperties, AllCurvesMonotoneDecreasingInSnr) {
  double prev_bpsk = 1.0, prev_ook = 1.0, prev_non = 1.0;
  for (double db = -10.0; db <= 15.0; db += 1.0) {
    const double g = std::pow(10.0, db / 10.0);
    EXPECT_LE(phy::ber_bpsk(g), prev_bpsk);
    EXPECT_LE(phy::ber_ook_coherent(g), prev_ook);
    EXPECT_LE(phy::ber_ook_noncoherent(g), prev_non);
    prev_bpsk = phy::ber_bpsk(g);
    prev_ook = phy::ber_ook_coherent(g);
    prev_non = phy::ber_ook_noncoherent(g);
  }
}

}  // namespace
}  // namespace vab
