// Error paths the sanitizer CI now exercises end to end: Config parsing
// rejections and frame::parse_checked structural bounds. Every rejection
// here must classify cleanly — never read past a buffer, never accept a
// half-parsed value.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "common/config.hpp"
#include "net/frame.hpp"
#include "phy/coding.hpp"

namespace vab {
namespace {

using common::Config;

// ---------------------------------------------------------------- Config --

TEST(ConfigNegative, ArgWithoutEqualsThrows) {
  const char* argv[] = {"prog", "trials"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(ConfigNegative, ArgWithEmptyKeyThrows) {
  const char* argv[] = {"prog", "=5"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(ConfigNegative, LineMissingEqualsThrows) {
  EXPECT_THROW(Config::from_string("trials 200\n"), std::invalid_argument);
}

TEST(ConfigNegative, EmptyKeyInStringThrows) {
  EXPECT_THROW(Config::from_string("= 5\n"), std::invalid_argument);
}

TEST(ConfigNegative, CommentsAndBlankLinesAreSkipped) {
  const Config cfg = Config::from_string("# header\n\n  trials = 7 # inline\n");
  EXPECT_EQ(cfg.get_int("trials", 0), 7);
}

TEST(ConfigNegative, DuplicateKeysLastWins) {
  // Documented override semantics: `prog base.cfg threads=1 threads=8`
  // must resolve to the rightmost value, not raise.
  const char* argv[] = {"prog", "threads=1", "threads=8"};
  const Config cfg = Config::from_args(3, argv);
  EXPECT_EQ(cfg.get_int("threads", 0), 8);
  const Config cfg2 = Config::from_string("seed=1\nseed=42\n");
  EXPECT_EQ(cfg2.get_int("seed", 0), 42);
}

TEST(ConfigNegative, NonNumericDoubleThrows) {
  Config cfg;
  cfg.set("x", "fast");
  EXPECT_THROW(cfg.get_double("x", 0.0), std::invalid_argument);
}

TEST(ConfigNegative, TrailingGarbageDoubleThrows) {
  // stod would happily parse "100m" as 100; a typo'd unit suffix must be
  // an error, not a silently plausible number.
  Config cfg;
  cfg.set("range_m", "100m");
  EXPECT_THROW(cfg.get_double("range_m", 0.0), std::invalid_argument);
}

TEST(ConfigNegative, TrailingGarbageIntThrows) {
  Config cfg;
  cfg.set("trials", "200x");
  EXPECT_THROW(cfg.get_int("trials", 0), std::invalid_argument);
  cfg.set("trials", "1e3");  // scientific notation is not an integer
  EXPECT_THROW(cfg.get_int("trials", 0), std::invalid_argument);
}

TEST(ConfigNegative, WellFormedNumericsStillParse) {
  Config cfg;
  cfg.set("a", "-1.5e-3");
  cfg.set("b", "-42");
  EXPECT_DOUBLE_EQ(cfg.get_double("a", 0.0), -1.5e-3);
  EXPECT_EQ(cfg.get_int("b", 0), -42);
}

TEST(ConfigNegative, IntOverflowThrows) {
  Config cfg;
  cfg.set("big", "999999999999999999999999999");
  EXPECT_THROW(cfg.get_int("big", 0), std::invalid_argument);
}

TEST(ConfigNegative, BadBoolThrows) {
  Config cfg;
  cfg.set("flag", "maybe");
  EXPECT_THROW(cfg.get_bool("flag", false), std::invalid_argument);
}

TEST(ConfigNegative, FallbacksUntouchedByMissingKeys) {
  const Config cfg;
  EXPECT_EQ(cfg.get_string("k", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double("k", 2.5), 2.5);
  EXPECT_EQ(cfg.get_int("k", -3), -3);
  EXPECT_TRUE(cfg.get_bool("k", true));
}

// ---------------------------------------------- frame::parse_checked bounds --

net::Frame sample_frame(std::size_t payload_len) {
  net::Frame f;
  f.addr = 0x21;
  f.type = net::FrameType::kSensorReport;
  f.seq = 9;
  f.payload.assign(payload_len, 0xA5);
  return f;
}

TEST(ParseCheckedBounds, EmptyAndSubMinimalBuffersAreTooShort) {
  for (std::size_t n = 0; n < net::kMinWireSize; ++n) {
    const auto r = net::parse_checked(bytes(n, 0x00));
    EXPECT_EQ(r.error, net::ParseError::kTooShort) << "size " << n;
    EXPECT_FALSE(r.frame.has_value());
  }
}

TEST(ParseCheckedBounds, MinimalValidFrameParses) {
  const auto wire = net::serialize(sample_frame(0));
  ASSERT_EQ(wire.size(), net::kMinWireSize);
  const auto r = net::parse_checked(wire);
  EXPECT_EQ(r.error, net::ParseError::kOk);
  ASSERT_TRUE(r.frame.has_value());
  EXPECT_TRUE(r.frame->payload.empty());
}

TEST(ParseCheckedBounds, MaximalValidFrameParses) {
  const auto wire = net::serialize(sample_frame(net::kMaxPayload));
  ASSERT_EQ(wire.size(), net::kMaxWireSize);
  const auto r = net::parse_checked(wire);
  EXPECT_EQ(r.error, net::ParseError::kOk);
  ASSERT_TRUE(r.frame.has_value());
  EXPECT_EQ(r.frame->payload.size(), net::kMaxPayload);
}

TEST(ParseCheckedBounds, OversizedBufferIsTooLong) {
  const auto r = net::parse_checked(bytes(net::kMaxWireSize + 1, 0x55));
  EXPECT_EQ(r.error, net::ParseError::kTooLong);
}

TEST(ParseCheckedBounds, CorruptCrcClassified) {
  auto wire = net::serialize(sample_frame(4));
  wire.back() ^= 0x01;
  EXPECT_EQ(net::parse_checked(wire).error, net::ParseError::kBadCrc);
}

TEST(ParseCheckedBounds, LyingLengthFieldClassified) {
  // Re-CRC after tampering so the length check, not the CRC, must reject:
  // a len that over- or under-claims can never drive an out-of-bounds read.
  for (const int delta : {-1, +1, +100}) {
    auto wire = net::serialize(sample_frame(8));
    wire.resize(wire.size() - 2);  // strip CRC
    const int lied = static_cast<int>(wire[3]) + delta;
    if (lied < 0 || lied > static_cast<int>(net::kMaxPayload)) continue;
    wire[3] = static_cast<std::uint8_t>(lied);
    const auto r = net::parse_checked(phy::append_crc(wire));
    EXPECT_EQ(r.error, net::ParseError::kLengthMismatch) << "delta " << delta;
    EXPECT_FALSE(r.frame.has_value());
  }
}

TEST(ParseCheckedBounds, UnknownTypeClassified) {
  auto wire = net::serialize(sample_frame(2));
  wire.resize(wire.size() - 2);
  wire[1] = 0x7E;  // not a FrameType
  EXPECT_EQ(net::parse_checked(phy::append_crc(wire)).error,
            net::ParseError::kBadType);
}

TEST(ParseCheckedBounds, SerializeRejectsOversizedPayload) {
  net::Frame f = sample_frame(net::kMaxPayload + 1);
  EXPECT_THROW(net::serialize(f), std::invalid_argument);
}

TEST(ParseCheckedBounds, ParseBitsRejectsRaggedBitCount) {
  const auto bits = net::serialize_bits(sample_frame(1));
  bitvec ragged(bits.begin(), bits.end() - 3);
  EXPECT_FALSE(net::parse_bits(ragged).has_value());
}

TEST(ParseCheckedBounds, EveryErrorHasAName) {
  using net::ParseError;
  for (const auto e : {ParseError::kOk, ParseError::kTooShort,
                       ParseError::kTooLong, ParseError::kBadCrc,
                       ParseError::kLengthMismatch, ParseError::kBadType}) {
    EXPECT_STRNE(net::parse_error_name(e), "unknown");
  }
}

}  // namespace
}  // namespace vab
