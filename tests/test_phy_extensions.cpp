// Miller subcarrier coding, frame FEC, and the node wake-up detector.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/mixer.hpp"
#include "phy/fec.hpp"
#include "phy/fm0.hpp"
#include "phy/miller.hpp"
#include "phy/wakeup.hpp"

namespace vab::phy {
namespace {

class MillerM : public ::testing::TestWithParam<unsigned> {};

TEST_P(MillerM, EncodeDecodeRoundTrip) {
  const unsigned m = GetParam();
  common::Rng rng(m);
  for (int trial = 0; trial < 10; ++trial) {
    const bitvec bits = rng.random_bits(48);
    EXPECT_EQ(miller_decode(miller_encode(bits, m), m), bits) << "M=" << m;
  }
}

TEST_P(MillerM, ChipCount) {
  const unsigned m = GetParam();
  EXPECT_EQ(miller_encode(bitvec(10, 1), m).size(), 10u * 2u * m);
}

TEST_P(MillerM, SoftDecodeSignInvariant) {
  const unsigned m = GetParam();
  common::Rng rng(m + 100);
  const bitvec bits = rng.random_bits(32);
  const bitvec chips = miller_encode(bits, m);
  rvec soft(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) soft[i] = chips[i] ? -0.3 : 0.3;
  EXPECT_EQ(miller_decode_soft(soft, m), bits);
}

INSTANTIATE_TEST_SUITE_P(SubcarrierFactors, MillerM, ::testing::Values(2u, 4u, 8u));

TEST(Miller, RejectsBadM) {
  EXPECT_THROW(miller_encode({1, 0}, 3), std::invalid_argument);
  EXPECT_THROW(miller_decode(bitvec(6, 0), 2), std::invalid_argument);
}

TEST(Miller, SpectrumConcentratedAtSubcarrier) {
  // The point of Miller: data energy sits near M x bitrate, away from the
  // carrier residue at DC. Compare low-frequency energy fraction vs FM0.
  common::Rng rng(7);
  const bitvec bits = rng.random_bits(512);
  const unsigned m = 4;

  auto spectrum_low_fraction = [](const rvec& levels, double chips_per_bit) {
    cvec x(levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i) x[i] = cplx{levels[i], 0.0};
    cvec spec = dsp::fft(x);
    const std::size_t n = spec.size();
    // "Low" = below 1/4 of the bit-rate-normalized band.
    const auto low_edge = static_cast<std::size_t>(
        static_cast<double>(n) / chips_per_bit / 4.0);
    double low = 0.0, total = 0.0;
    for (std::size_t k = 1; k < n / 2; ++k) {
      const double p = std::norm(spec[k]);
      total += p;
      if (k < low_edge) low += p;
    }
    return low / total;
  };

  const bitvec fm0 = fm0_encode(bits);
  rvec fm0_lv(fm0.size());
  for (std::size_t i = 0; i < fm0.size(); ++i) fm0_lv[i] = fm0[i] ? 1.0 : -1.0;
  const bitvec mil = miller_encode(bits, m);
  rvec mil_lv(mil.size());
  for (std::size_t i = 0; i < mil.size(); ++i) mil_lv[i] = mil[i] ? 1.0 : -1.0;

  EXPECT_LT(spectrum_low_fraction(mil_lv, 2.0 * m),
            spectrum_low_fraction(fm0_lv, 2.0));
}

TEST(Fec, RoundTripClean) {
  common::Rng rng(1);
  FrameCodec codec;
  const bitvec data = rng.random_bits(50);  // non-multiple of 4: exercises padding
  const bitvec coded = codec.encode(data);
  EXPECT_EQ(coded.size(), codec.coded_size(data.size()));
  std::size_t corrected = 0;
  EXPECT_EQ(codec.decode(coded, data.size(), corrected), data);
  EXPECT_EQ(corrected, 0u);
}

TEST(Fec, CorrectsScatteredErrors) {
  common::Rng rng(2);
  FrameCodec codec;
  const bitvec data = rng.random_bits(64);
  bitvec coded = codec.encode(data);
  const std::size_t blocks = coded.size() / 7;
  // One error per Hamming block: in the interleaved (column-wise) layout,
  // block r's column-c bit sits at index c*blocks + r.
  for (std::size_t r = 0; r < blocks; r += 2) coded[(r % 7) * blocks + r] ^= 1;
  std::size_t corrected = 0;
  EXPECT_EQ(codec.decode(coded, data.size(), corrected), data);
  EXPECT_GT(corrected, 0u);
}

TEST(Fec, CorrectsBurstViaInterleaving) {
  common::Rng rng(3);
  FrameCodec codec;
  const bitvec data = rng.random_bits(64);
  bitvec coded = codec.encode(data);
  // A contiguous burst as long as the block count: deinterleaving spreads it
  // one bit per Hamming block.
  const std::size_t blocks = coded.size() / 7;
  for (std::size_t i = 10; i < 10 + blocks; ++i) coded[i] ^= 1;
  std::size_t corrected = 0;
  EXPECT_EQ(codec.decode(coded, data.size(), corrected), data);
  EXPECT_EQ(corrected, blocks);
}

TEST(Fec, DisabledPassesThrough) {
  FrameCodec codec(FecConfig{false});
  const bitvec data{1, 0, 1};
  EXPECT_EQ(codec.encode(data), data);
  std::size_t corrected = 9;
  EXPECT_EQ(codec.decode(data, 3, corrected), data);
  EXPECT_EQ(corrected, 0u);
}

TEST(Fec, SizeMismatchThrows) {
  FrameCodec codec;
  std::size_t corrected;
  EXPECT_THROW(codec.decode(bitvec(10, 0), 64, corrected), std::invalid_argument);
}

TEST(Wakeup, FiresOnCarrierOnset) {
  WakeupConfig cfg;
  cfg.on_threshold = 0.01;
  cfg.off_threshold = 0.002;
  WakeupDetector det(cfg);
  common::Rng rng(4);

  // Quiet noise first: no wake.
  bool woke = false;
  for (int i = 0; i < 20000; ++i) woke |= det.push(0.001 * rng.gaussian());
  EXPECT_FALSE(woke);
  EXPECT_FALSE(det.awake());

  // Carrier arrives.
  dsp::Nco nco(cfg.carrier_hz, cfg.fs_hz);
  int wake_sample = -1;
  for (int i = 0; i < 20000; ++i) {
    if (det.push(0.5 * nco.next_cos() + 0.001 * rng.gaussian()) && wake_sample < 0)
      wake_sample = i;
  }
  ASSERT_GE(wake_sample, 0);
  EXPECT_TRUE(det.awake());
  // Wake latency ~= confirm_blocks * block (plus one partial block).
  EXPECT_LE(wake_sample, static_cast<int>((cfg.confirm_blocks + 1) * cfg.block));
}

TEST(Wakeup, IgnoresOffFrequencyTone) {
  WakeupConfig cfg;
  cfg.on_threshold = 0.01;
  cfg.off_threshold = 0.002;
  WakeupDetector det(cfg);
  dsp::Nco nco(12000.0, cfg.fs_hz);  // strong but off-carrier
  bool woke = false;
  for (int i = 0; i < 40000; ++i) woke |= det.push(0.5 * nco.next_cos());
  EXPECT_FALSE(woke);
}

TEST(Wakeup, HysteresisReturnsToSleep) {
  WakeupConfig cfg;
  cfg.on_threshold = 0.01;
  cfg.off_threshold = 0.002;
  WakeupDetector det(cfg);
  dsp::Nco nco(cfg.carrier_hz, cfg.fs_hz);
  for (int i = 0; i < 10000; ++i) det.push(0.5 * nco.next_cos());
  EXPECT_TRUE(det.awake());
  for (int i = 0; i < 10000; ++i) det.push(0.0);
  EXPECT_FALSE(det.awake());
}

TEST(Wakeup, ConfigValidation) {
  WakeupConfig bad;
  bad.on_threshold = 1e-9;
  bad.off_threshold = 1e-6;
  EXPECT_THROW(WakeupDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace vab::phy
