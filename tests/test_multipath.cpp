// Image-method multipath and the time-domain waveform channel.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/multipath.hpp"
#include "channel/waveform_channel.hpp"
#include "common/rng.hpp"
#include "dsp/mixer.hpp"

namespace vab::channel {
namespace {

MultipathConfig shallow() {
  MultipathConfig cfg;
  cfg.water_depth_m = 10.0;
  cfg.surface_loss_db = 1.0;
  cfg.bottom_loss_db = 6.0;
  cfg.max_order = 4;
  return cfg;
}

TEST(ImageMethod, DirectPathFirstAndCorrect) {
  const auto taps = image_method_taps(common::Meters{100.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, shallow());
  ASSERT_FALSE(taps.empty());
  const double direct_r = std::sqrt(100.0 * 100.0 + 16.0);
  EXPECT_NEAR(taps.front().delay_s, direct_r / 1500.0, 1e-9);
  EXPECT_NEAR(taps.front().gain, 1.0 / direct_r, 1e-9);
  EXPECT_EQ(taps.front().surface_bounces, 0);
  EXPECT_EQ(taps.front().bottom_bounces, 0);
}

TEST(ImageMethod, SurfaceBounceHasPhaseFlip) {
  const auto taps = image_method_taps(common::Meters{50.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, shallow());
  bool found = false;
  for (const auto& t : taps) {
    if (t.surface_bounces == 1 && t.bottom_bounces == 0) {
      EXPECT_LT(t.gain, 0.0);  // odd surface count flips the sign
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ImageMethod, TapCountGrowsWithOrder) {
  MultipathConfig lo = shallow();
  lo.max_order = 1;
  MultipathConfig hi = shallow();
  hi.max_order = 5;
  hi.min_relative_amplitude = 1e-6;
  EXPECT_GT(image_method_taps(common::Meters{50.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, hi).size(),
            image_method_taps(common::Meters{50.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, lo).size());
}

TEST(ImageMethod, BounceLossOrdersAmplitudes) {
  MultipathConfig cfg = shallow();
  cfg.bottom_loss_db = 20.0;
  const auto taps = image_method_taps(common::Meters{50.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, cfg);
  double best_bottom = 0.0, best_surface = 0.0;
  for (const auto& t : taps) {
    if (t.bottom_bounces == 1 && t.surface_bounces == 0)
      best_bottom = std::max(best_bottom, std::abs(t.gain));
    if (t.surface_bounces == 1 && t.bottom_bounces == 0)
      best_surface = std::max(best_surface, std::abs(t.gain));
  }
  EXPECT_LT(best_bottom, best_surface);
}

TEST(ImageMethod, SpreadingCoefficientScalesGains) {
  MultipathConfig sph = shallow();
  sph.spreading_coeff = 20.0;
  MultipathConfig cyl = shallow();
  cyl.spreading_coeff = 10.0;
  const auto t_sph = image_method_taps(common::Meters{100.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, sph);
  const auto t_cyl = image_method_taps(common::Meters{100.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, cyl);
  // r^-1 vs r^-0.5 at r~100: ratio ~10.
  EXPECT_NEAR(t_cyl.front().gain / t_sph.front().gain, std::sqrt(100.16), 1.0);
}

TEST(ImageMethod, ValidatesInputs) {
  EXPECT_THROW(image_method_taps(common::Meters{-5.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, shallow()),
               std::invalid_argument);
  EXPECT_THROW(image_method_taps(common::Meters{50.0}, common::Meters{30.0},
                        common::Meters{7.0}, 1500.0, shallow()),
               std::invalid_argument);
}

TEST(DelaySpread, ZeroForSinglePath) {
  EXPECT_DOUBLE_EQ(rms_delay_spread({PathTap{0.1, 1.0, 0, 0}}), 0.0);
}

TEST(DelaySpread, TwoEqualPaths) {
  std::vector<PathTap> taps{{0.0, 1.0, 0, 0}, {1e-3, 1.0, 0, 0}};
  EXPECT_NEAR(rms_delay_spread(taps), 0.5e-3, 1e-9);
  EXPECT_NEAR(coherence_bandwidth_hz(taps), 1.0 / (5.0 * 0.5e-3), 1.0);
}

TEST(DelaySpread, GrowsWithShallowerWater) {
  MultipathConfig deep = shallow();
  deep.water_depth_m = 50.0;
  MultipathConfig shal = shallow();
  shal.water_depth_m = 6.0;
  const auto t_deep = image_method_taps(common::Meters{100.0}, common::Meters{3.0},
                        common::Meters{7.0}, 1500.0, deep);
  const auto t_shal = image_method_taps(common::Meters{100.0}, common::Meters{3.0},
                        common::Meters{3.0}, 1500.0, shal);
  // Shallower water: bounce paths are closer in length to the direct path
  // but more numerous and stronger relative to it at the same order count.
  EXPECT_GT(rms_delay_spread(t_deep), 0.0);
  EXPECT_GT(rms_delay_spread(t_shal), 0.0);
}

TEST(WaveformChannel, SingleTapDelaysAndScales) {
  common::Rng rng(1);
  WaveformChannelConfig cfg;
  cfg.fs_hz = 48000.0;
  cfg.taps = single_tap(0.5, 10.0 / 48000.0);  // integer 10-sample delay
  cfg.add_noise = false;
  WaveformChannel ch(cfg, rng);
  rvec x(100, 0.0);
  x[20] = 2.0;
  const rvec y = ch.propagate_clean(x);
  EXPECT_NEAR(y[30], 1.0, 1e-9);
  EXPECT_NEAR(y[29], 0.0, 1e-9);
}

TEST(WaveformChannel, FractionalDelayInterpolates) {
  common::Rng rng(2);
  WaveformChannelConfig cfg;
  cfg.fs_hz = 48000.0;
  cfg.taps = single_tap(1.0, 10.5 / 48000.0);
  cfg.add_noise = false;
  WaveformChannel ch(cfg, rng);
  rvec x(100, 0.0);
  x[20] = 1.0;
  const rvec y = ch.propagate_clean(x);
  EXPECT_NEAR(y[30], 0.5, 1e-9);
  EXPECT_NEAR(y[31], 0.5, 1e-9);
}

TEST(WaveformChannel, NoiseAdditionRaisesFloor) {
  common::Rng rng(3);
  WaveformChannelConfig cfg;
  cfg.fs_hz = 96000.0;
  cfg.taps = single_tap(1e-9, 0.0);
  cfg.noise.site_floor_db = 70.0;
  WaveformChannel ch(cfg, rng);
  const rvec x(4096, 0.0);
  const rvec y = ch.propagate(x);
  double e = 0.0;
  for (double v : y) e += v * v;
  EXPECT_GT(e, 0.0);
}

TEST(WaveformChannel, DopplerChangesLength) {
  common::Rng rng(4);
  WaveformChannelConfig cfg;
  cfg.fs_hz = 48000.0;
  cfg.taps = single_tap(1.0, 0.0);
  cfg.add_noise = false;
  cfg.doppler_speed_mps = 15.0;  // 1% of sound speed
  WaveformChannel ch(cfg, rng);
  const rvec x(10000, 1.0);
  const rvec y = ch.propagate_clean(x);
  EXPECT_NEAR(static_cast<double>(y.size()), 10000.0 / 1.01, 25.0);
}

TEST(WaveformChannel, MultipathCombImpulseResponse) {
  common::Rng rng(5);
  const auto taps = image_method_taps(common::Meters{60.0}, common::Meters{3.0},
                        common::Meters{5.0}, 1500.0, shallow());
  WaveformChannelConfig cfg;
  cfg.fs_hz = 96000.0;
  cfg.taps = taps;
  cfg.add_noise = false;
  WaveformChannel ch(cfg, rng);
  rvec x(200, 0.0);
  x[0] = 1.0;
  const rvec y = ch.propagate_clean(x);
  // The impulse response contains one spike per tap (within interpolation).
  std::size_t spikes = 0;
  for (double v : y)
    if (std::abs(v) > 1e-4) ++spikes;
  EXPECT_GE(spikes, taps.size());  // fractional delays split across 2 samples
}

}  // namespace
}  // namespace vab::channel
