// Fleet simulation core: event queue ordering, spatial partition
// correctness, fidelity-switching transport behavior, and randomized fleet
// topologies (fuzz) that must never crash, deadlock, or violate the
// conservation counters. The whole file runs under the ASan/UBSan and TSan
// CI jobs (the Fleet test regex is part of the TSan suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/app.hpp"
#include "net/frame.hpp"
#include "sim/fleet/event_queue.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/fleet/medium.hpp"
#include "sim/fleet/transport.hpp"
#include "sim/scenario.hpp"

namespace vab {
namespace {

using sim::fleet::Event;
using sim::fleet::EventQueue;
using sim::fleet::Position;
using sim::fleet::SpatialGrid;

// ---- Event queue / virtual clock ------------------------------------------

TEST(FleetEventQueue, PopsInTimeOrderFifoAmongTies) {
  EventQueue q;
  const double times[] = {5.0, 1.0, 5.0, 3.0, 1.0, 5.0};
  for (std::uint32_t i = 0; i < 6; ++i) q.push(Event{times[i], i, 0, 0});
  std::vector<std::uint32_t> order;
  while (auto ev = q.pop()) order.push_back(ev->entity);
  // Equal timestamps pop in push order: 1.0s -> {1, 4}, 5.0s -> {0, 2, 5}.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 4, 3, 0, 2, 5}));
}

TEST(FleetEventQueue, PopAdvancesClockMonotonically) {
  EventQueue q;
  common::Rng rng(7);
  for (std::uint32_t i = 0; i < 256; ++i)
    q.push(Event{rng.uniform(0.0, 10.0), i, 0, 0});
  double prev = -1.0;
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->time_s, prev);
    EXPECT_EQ(q.now_s(), ev->time_s);
    prev = ev->time_s;
  }
  EXPECT_EQ(q.pushed(), 256u);
}

TEST(FleetEventQueue, RejectsCausalityViolations) {
  EventQueue q;
  q.push(Event{3.0, 0, 0, 0});
  ASSERT_TRUE(q.pop().has_value());  // clock is now 3.0
  EXPECT_THROW(q.push(Event{2.0, 0, 0, 0}), std::logic_error);
  EXPECT_THROW(q.push(Event{std::nan(""), 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(q.push(Event{std::numeric_limits<double>::infinity(), 0, 0, 0}),
               std::invalid_argument);
  q.push(Event{3.0, 1, 0, 0});  // re-scheduling at "now" is legal
  EXPECT_EQ(q.size(), 1u);
}

// ---- Spatial partition -----------------------------------------------------

TEST(FleetMedium, GridMatchesBruteForce) {
  common::Rng rng(11);
  std::vector<Position> pts(500);
  for (auto& p : pts) p = {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
  const SpatialGrid grid(pts, common::Meters{37.0});
  std::vector<std::uint32_t> got;
  for (int probe = 0; probe < 20; ++probe) {
    const Position c{rng.uniform(-20.0, 420.0), rng.uniform(-20.0, 420.0)};
    const double r = rng.uniform(0.0, 150.0);
    grid.query(c, common::Meters{r}, got);
    std::vector<std::uint32_t> want;
    for (std::uint32_t id = 0; id < pts.size(); ++id)
      if (sim::fleet::distance_m(pts[id], c) <= r) want.push_back(id);
    EXPECT_EQ(got, want) << "probe " << probe;  // same ids, ascending
  }
}

TEST(FleetMedium, DegenerateGeometries) {
  // All points coincident: one cell, zero-radius query still finds them.
  std::vector<Position> same(17, Position{3.0, -2.0});
  const SpatialGrid grid(same, common::Meters{50.0});
  std::vector<std::uint32_t> out;
  grid.query({3.0, -2.0}, common::Meters{0.0}, out);
  EXPECT_EQ(out.size(), 17u);
  grid.query({100.0, 100.0}, common::Meters{5.0}, out);
  EXPECT_TRUE(out.empty());

  // Empty grid and non-positive cell size must not divide by zero.
  const SpatialGrid empty({}, common::Meters{-1.0});
  empty.query({0.0, 0.0}, common::Meters{10.0}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(empty.cell_count(), 1u);
}

// ---- Fidelity-switching transport ------------------------------------------

bytes report_wire(std::uint8_t addr, std::uint8_t seq) {
  net::Frame f;
  f.addr = addr;
  f.type = net::FrameType::kSensorReport;
  f.seq = seq;
  f.payload = net::encode_reading({12.5, 101.3, 2900});
  return net::serialize(f);
}

TEST(FleetTransport, DeliveryProbMonotoneInSnrAndBits) {
  using sim::fleet::FleetLinkTransport;
  double prev = 0.0;
  for (double snr = -10.0; snr <= 20.0; snr += 1.0) {
    const double p = FleetLinkTransport::frame_delivery_prob(common::SnrDb{snr}, 96);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(FleetLinkTransport::frame_delivery_prob(common::SnrDb{5.0}, 64),
            FleetLinkTransport::frame_delivery_prob(common::SnrDb{5.0}, 1024));
}

TEST(FleetTransport, WaterfallSitsAtHalfDelivery) {
  const sim::Scenario base = sim::vab_river_scenario();
  const sim::fleet::FleetLinkTransport tp(base, {}, common::Db{3.0}, 96);
  const double w = tp.waterfall_snr_db().raw();
  EXPECT_NEAR(sim::fleet::FleetLinkTransport::frame_delivery_prob(common::SnrDb{w}, 96),
              0.5,
              1e-6);
  EXPECT_GT(
      sim::fleet::FleetLinkTransport::frame_delivery_prob(common::SnrDb{w + 6.0}, 96),
      0.99);
  EXPECT_LT(
      sim::fleet::FleetLinkTransport::frame_delivery_prob(common::SnrDb{w - 6.0}, 96),
      0.01);
}

TEST(FleetTransport, AdaptivePolicyEscalatesMarginalLinksUpToCap) {
  sim::Scenario base = sim::vab_river_scenario();
  base.env.fading_sigma_db = 0.0;
  sim::fleet::FidelityPolicy policy;
  policy.escalate_margin_db = 3.0;
  policy.max_waveform_polls = 2;

  // Find a range whose budget SNR sits inside the escalation margin.
  sim::fleet::FleetLinkTransport probe(base, policy, common::Db{3.0}, 96);
  const sim::LinkBudget lb(base);
  double marginal_range = 0.0;
  for (double r = 50.0; r <= 800.0; r += 5.0) {
    if (std::abs(lb.evaluate(common::Meters{r}).snr_chip_db.raw() -
                 probe.waterfall_snr_db().raw()) <=
        policy.escalate_margin_db) {
      marginal_range = r;
      break;
    }
  }
  ASSERT_GT(marginal_range, 0.0);

  sim::fleet::FleetLinkTransport tp(base, policy, common::Db{3.0}, 96);
  common::Rng rng(3);
  tp.begin_window({{7, marginal_range, common::SnrDb{0.0}}}, rng.child(1));
  common::Rng poll_rng = rng.child(2);
  for (int i = 0; i < 5; ++i) {
    bytes wire = report_wire(0, static_cast<std::uint8_t>(i));
    (void)tp.uplink_delivered(0, wire, poll_rng);
  }
  // First two polls escalate (marginal), then the cap forces budget fidelity.
  EXPECT_EQ(tp.tally().waveform_polls, 2u);
  EXPECT_EQ(tp.tally().budget_polls, 3u);
  EXPECT_EQ(tp.tally().waveform_cap_hits, 3u);
  EXPECT_GE(tp.tally().escalations_marginal, 5u);
  EXPECT_EQ(tp.last_fidelity(), sim::fleet::Fidelity::kBudget);
}

TEST(FleetTransport, BudgetOnlyModeNeverEscalates) {
  sim::Scenario base = sim::vab_river_scenario();
  sim::fleet::FidelityPolicy policy;
  policy.mode = sim::fleet::FidelityMode::kBudgetOnly;
  sim::fleet::FleetLinkTransport tp(base, policy, common::Db{3.0}, 96);
  common::Rng rng(5);
  tp.begin_window({{1, 100.0, common::SnrDb{0.0}}}, rng.child(0));
  tp.set_contention(4);  // contention alone must not force a waveform poll
  common::Rng poll_rng = rng.child(1);
  for (int i = 0; i < 8; ++i) {
    bytes wire = report_wire(0, static_cast<std::uint8_t>(i));
    (void)tp.uplink_delivered(0, wire, poll_rng);
  }
  EXPECT_EQ(tp.tally().waveform_polls, 0u);
  EXPECT_EQ(tp.tally().budget_polls, 8u);
  EXPECT_EQ(tp.tally().contended_polls, 8u);
}

TEST(FleetTransport, PollOutsideWindowThrows) {
  const sim::Scenario base = sim::vab_river_scenario();
  sim::fleet::FleetLinkTransport tp(base, {}, common::Db{3.0}, 96);
  common::Rng rng(9);
  tp.begin_window({{0, 50.0, common::SnrDb{0.0}}}, rng.child(0));
  bytes wire = report_wire(3, 0);
  EXPECT_THROW((void)tp.uplink_delivered(3, wire, rng), std::out_of_range);
}

// ---- Fleet runs: edge topologies and conservation --------------------------

sim::fleet::FleetConfig budget_fleet(std::size_t nodes, std::size_t readers,
                                     double area) {
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_river_scenario();
  fc.n_nodes = nodes;
  fc.n_readers = readers;
  fc.area_m = area;
  fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  return fc;
}

void expect_conservation(const sim::fleet::FleetResult& r) {
  EXPECT_EQ(r.assigned + r.unreachable, r.nodes);
  EXPECT_LE(r.delivered, r.assigned);
  EXPECT_EQ(r.complete, r.delivered == r.assigned);
  EXPECT_GE(r.polls, r.delivered);
  EXPECT_LE(r.acks_sent, r.polls);
  EXPECT_EQ(r.events, r.windows);
  EXPECT_LE(r.tally.budget_polls + r.tally.waveform_polls, r.polls);
  EXPECT_GE(r.makespan_s, 0.0);
  EXPECT_GE(r.airtime_s, 0.0);
}

TEST(FleetRun, SingleNodeFleetCompletes) {
  const common::Rng rng(21);
  const auto r = sim::fleet::run_fleet(budget_fleet(1, 1, 50.0), rng);
  expect_conservation(r);
  EXPECT_EQ(r.assigned, 1u);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.windows, 1u);
  EXPECT_TRUE(r.complete);
}

TEST(FleetRun, ReaderOnlyFleetIsEmptyButValid) {
  const common::Rng rng(22);
  const auto r = sim::fleet::run_fleet(budget_fleet(0, 3, 200.0), rng);
  expect_conservation(r);
  EXPECT_EQ(r.nodes, 0u);
  EXPECT_EQ(r.events, 0u);
  EXPECT_TRUE(r.complete);  // vacuously: nothing assigned, nothing missing
}

TEST(FleetRun, NodeOnlyFleetIsAllUnreachable) {
  const common::Rng rng(23);
  const auto r = sim::fleet::run_fleet(budget_fleet(50, 0, 200.0), rng);
  expect_conservation(r);
  EXPECT_EQ(r.unreachable, 50u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.windows, 0u);
}

TEST(FleetRun, OverlappingNodesSplitIntoAddressWindows) {
  // 300 nodes crammed into a 5 m square around one reader: every link is
  // near-zero range (clamped to 1 m) and the address space must recycle.
  const common::Rng rng(24);
  const auto r = sim::fleet::run_fleet(budget_fleet(300, 1, 5.0), rng);
  expect_conservation(r);
  EXPECT_EQ(r.assigned, 300u);
  EXPECT_EQ(r.windows,
            (300 + sim::fleet::kWindowAddrs - 1) / sim::fleet::kWindowAddrs);
  EXPECT_TRUE(r.complete);
}

TEST(FleetRun, RerunWithSameSeedIsBitIdentical) {
  const sim::fleet::FleetConfig fc = budget_fleet(400, 4, 600.0);
  const common::Rng rng(25);
  const auto a = sim::fleet::run_fleet(fc, rng);
  const auto b = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.polls, b.polls);
  const auto c = sim::fleet::run_fleet(fc, common::Rng(26));
  EXPECT_NE(a.digest, c.digest) << "digest ignores the seed";
}

// Randomized fleet topologies: extreme densities, zero ranges, degenerate
// reader/node counts. Every draw must produce a valid, conserved result.
class FleetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetFuzz, RandomTopologyNeverViolatesConservation) {
  common::Rng gen(GetParam() * 7919 + 1);
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_river_scenario();
  fc.n_nodes = static_cast<std::size_t>(gen.uniform_int(0, 400));
  fc.n_readers = static_cast<std::size_t>(gen.uniform_int(0, 5));
  fc.area_m = gen.uniform(1.0, 1500.0);
  fc.cell_size_m = gen.uniform(-10.0, 120.0);  // <= 0 exercises the fallback
  fc.max_link_range_m = gen.uniform(0.0, 400.0);
  fc.interference_range_m = gen.uniform(0.0, 600.0);
  fc.contention_penalty_db = gen.uniform(0.0, 6.0);
  fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  // Cap the ARQ grind so hopeless (out-of-budget-range) links terminate.
  fc.inventory.max_polls = 2048;

  const common::Rng rng(GetParam());
  const auto r = sim::fleet::run_fleet(fc, rng);
  expect_conservation(r);
  const auto again = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(r.digest, again.digest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetFuzz, ::testing::Range<std::uint64_t>(0, 12));

// ---- Fleet window series: virtual-time telemetry ----------------------------

TEST(FleetSeries, RecordingDoesNotPerturbTheDigest) {
  sim::fleet::FleetConfig fc = budget_fleet(400, 4, 600.0);
  const common::Rng rng(27);
  const auto plain = sim::fleet::run_fleet(fc, rng);
  fc.record_series = true;
  const auto observed = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(plain.digest, observed.digest);
  EXPECT_TRUE(plain.series.empty());
  EXPECT_EQ(observed.series.size(), observed.windows);
}

TEST(FleetSeries, PointsSumToTheRunTotals) {
  sim::fleet::FleetConfig fc = budget_fleet(500, 3, 500.0);
  fc.record_series = true;
  const common::Rng rng(28);
  const auto r = sim::fleet::run_fleet(fc, rng);
  ASSERT_EQ(r.series.size(), r.windows);
  std::size_t delivered = 0, polls = 0, retries = 0, timeouts = 0, links = 0;
  double airtime = 0.0;
  std::uint64_t seq = 0;
  double last_close = 0.0;
  for (const auto& wp : r.series) {
    EXPECT_EQ(wp.seq, seq++);             // dense, in pop order
    EXPECT_GE(wp.t_close_s, last_close - 1e-9);
    last_close = std::max(last_close, wp.t_close_s);
    EXPECT_LT(wp.reader, r.readers);
    EXPECT_LE(wp.delivered, wp.links);
    delivered += wp.delivered;
    polls += wp.polls;
    retries += wp.retries;
    timeouts += wp.timeouts;
    links += wp.links;
    airtime += wp.airtime_s;
  }
  EXPECT_EQ(delivered, r.delivered);
  EXPECT_EQ(polls, r.polls);
  EXPECT_EQ(retries, r.retries);
  EXPECT_EQ(timeouts, r.timeouts);
  EXPECT_EQ(links, r.assigned);  // every assigned node is polled exactly once
  EXPECT_NEAR(airtime, r.airtime_s, 1e-9);
}

TEST(FleetSeries, OnWindowHookSeesEveryWindowLive) {
  sim::fleet::FleetConfig fc = budget_fleet(300, 2, 400.0);
  std::vector<sim::fleet::WindowPoint> seen;
  fc.on_window = [&](const sim::fleet::WindowPoint& wp) { seen.push_back(wp); };
  const common::Rng rng(29);
  const auto r = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(seen.size(), r.windows);
  EXPECT_TRUE(r.series.empty());  // hook alone does not buffer
  std::size_t delivered = 0;
  for (const auto& wp : seen) delivered += wp.delivered;
  EXPECT_EQ(delivered, r.delivered);
}

TEST(FleetSeriesDeterminism, SeriesIdenticalAcrossRerunsAndThreadCounts) {
  sim::fleet::FleetConfig fc = budget_fleet(600, 4, 700.0);
  fc.record_series = true;
  const common::Rng rng(30);

  auto flatten = [](const std::vector<sim::fleet::FleetResult>& runs) {
    std::vector<std::uint64_t> out;
    for (const auto& r : runs) {
      for (const auto& wp : r.series) {
        out.insert(out.end(),
                   {wp.seq, static_cast<std::uint64_t>(wp.reader), wp.window,
                    static_cast<std::uint64_t>(wp.contenders),
                    static_cast<std::uint64_t>(wp.links),
                    static_cast<std::uint64_t>(wp.delivered),
                    static_cast<std::uint64_t>(wp.polls),
                    static_cast<std::uint64_t>(wp.retries),
                    static_cast<std::uint64_t>(wp.timeouts),
                    static_cast<std::uint64_t>(wp.escalations),
                    static_cast<std::uint64_t>(wp.waveform_polls)});
        // Virtual timestamps must be bit-identical too, not just close.
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof wp.t_close_s);
        std::memcpy(&bits, &wp.t_close_s, sizeof bits);
        out.push_back(bits);
      }
    }
    return out;
  };

  std::vector<std::vector<std::uint64_t>> flats;
  for (const unsigned threads : {1U, 2U, 8U}) {
    common::set_thread_count(threads);
    flats.push_back(flatten(sim::fleet::run_fleet_replicates(fc, 4, rng)));
  }
  common::set_thread_count(0);
  ASSERT_FALSE(flats[0].empty());
  EXPECT_EQ(flats[0], flats[1]);
  EXPECT_EQ(flats[0], flats[2]);
}

}  // namespace
}  // namespace vab
