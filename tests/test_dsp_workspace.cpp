// Scratch-arena semantics: zero-filled leases, buffer recycling, flat
// steady-state growth, and the zero-allocation guarantee of the waveform
// trial loop. The multi-thread cases double as the TSan exercise for the
// thread-local plan cache and arena.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/workspace.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace vab::dsp {
namespace {

TEST(Workspace, LeaseIsExactSizeAndZeroed) {
  Workspace& ws = Workspace::local();
  {
    auto r = ws.take_r(17);
    ASSERT_EQ(r->size(), 17u);
    for (double v : *r) EXPECT_EQ(v, 0.0);
    // Dirty the buffer so the recycling test below means something.
    for (auto& v : *r) v = 3.25;
  }
  {
    auto c = ws.take_c(9);
    ASSERT_EQ(c->size(), 9u);
    for (const auto& v : *c) EXPECT_EQ(v, cplx{});
  }
  {
    auto b = ws.take_b(33);
    ASSERT_EQ(b->size(), 33u);
    for (auto v : *b) EXPECT_EQ(v, 0u);
  }
}

TEST(Workspace, RecycledBufferComesBackZeroed) {
  Workspace& ws = Workspace::local();
  {
    auto r = ws.take_r(64);
    for (auto& v : *r) v = -1.0;
  }
  // Same size: must be served from the pool and freshly zeroed.
  auto r2 = ws.take_r(64);
  for (double v : *r2) EXPECT_EQ(v, 0.0);
}

TEST(Workspace, SteadyStateGrowthIsFlat) {
  Workspace& ws = Workspace::local();
  // Warm the pool at this size.
  { auto warm = ws.take_r(4096); }
  const std::uint64_t grown = ws.grow_bytes();
  const std::uint64_t borrows0 = ws.borrows();
  for (int i = 0; i < 100; ++i) {
    auto r = ws.take_r(4096);
    (*r)[0] = static_cast<double>(i);
  }
  EXPECT_EQ(ws.grow_bytes(), grown) << "identical takes must not grow the arena";
  EXPECT_EQ(ws.borrows(), borrows0 + 100);
}

TEST(Workspace, ShrinkingTakeDoesNotGrow) {
  Workspace& ws = Workspace::local();
  { auto big = ws.take_c(2048); }
  const std::uint64_t grown = ws.grow_bytes();
  { auto small = ws.take_c(16); }
  EXPECT_EQ(ws.grow_bytes(), grown);
}

TEST(Workspace, MoveOnlyLeaseTransfersOwnership) {
  Workspace& ws = Workspace::local();
  auto a = ws.take_r(8);
  (*a)[3] = 7.0;
  auto b = std::move(a);
  EXPECT_EQ((*b)[3], 7.0);
  EXPECT_EQ(b->size(), 8u);
}

// The acceptance criterion of the perf PR: after one warm-up trial, the
// Monte-Carlo steady state performs zero arena allocations. grow_bytes() is
// the per-thread byte counter behind the obs metric, so asserting it flat
// here pins the "zero steady-state allocations in the trial loop" guarantee.
TEST(Workspace, WaveformTrialLoopAllocatesNothingSteadyState) {
  sim::Scenario sc;
  sc.range_m = 100.0;
  common::Rng payload_rng(11);
  const bitvec payload = payload_rng.random_bits(64);

  auto run_one = [&](unsigned seed) {
    common::Rng rng(seed);
    sim::WaveformSimulator wsim(sc, rng);
    return wsim.run_trial(payload);
  };

  run_one(100);  // warm-up: grows the arena to the trial's high-water mark
  const std::uint64_t grown = Workspace::local().grow_bytes();
  for (unsigned t = 0; t < 5; ++t) run_one(101 + t);
  EXPECT_EQ(Workspace::local().grow_bytes(), grown)
      << "steady-state waveform trials must not allocate from the arena";
}

// Arenas and FFT plan caches are strictly thread-local; concurrent use from
// many threads must neither race (TSan job runs this) nor cross-pollinate
// buffers between threads.
TEST(Workspace, ThreadLocalArenasAreIsolated) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> borrows(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &borrows] {
      Workspace& ws = Workspace::local();
      const std::uint64_t before = ws.borrows();
      for (int i = 0; i < 50; ++i) {
        auto r = ws.take_r(256 + static_cast<std::size_t>(t));
        auto c = ws.take_c(128);
        (*r)[0] = static_cast<double>(t);
        (*c)[0] = cplx{static_cast<double>(i), 0.0};
      }
      borrows[t] = ws.borrows() - before;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(borrows[t], 100u) << "thread " << t;
}

TEST(Workspace, ConcurrentPlanCacheUseIsRaceFreeAndCorrect) {
  constexpr int kThreads = 8;
  // Each thread hammers the thread-local plan cache at shared sizes and
  // checks a round trip; any hidden shared state would trip TSan here.
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      common::Rng rng(static_cast<std::uint64_t>(200 + t));
      for (int i = 0; i < 20; ++i) {
        const std::size_t n = (i % 2 == 0) ? 256 : 1024;
        auto buf = Workspace::local().take_c(n);
        cvec x(n);
        for (auto& v : x) v = rng.complex_gaussian();
        *buf = x;
        const FftPlan& plan = fft_plan(n);
        plan.forward(buf->data());
        plan.inverse(buf->data());
        for (std::size_t k = 0; k < n; ++k)
          if (std::abs((*buf)[k] - x[k]) > 1e-9) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace vab::dsp
