// Slotted-Aloha discovery: completeness, Q adaptation, loss resilience and
// efficiency properties.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "net/discovery.hpp"

namespace vab::net {
namespace {

std::vector<std::uint8_t> make_population(std::size_t n) {
  std::vector<std::uint8_t> pop(n);
  for (std::size_t i = 0; i < n; ++i) pop[i] = static_cast<std::uint8_t>(i + 1);
  return pop;
}

TEST(Discovery, FindsEveryNode) {
  common::Rng rng(1);
  for (std::size_t n : {1u, 3u, 10u, 40u}) {
    common::Rng local = rng.child(n);
    const auto res = run_discovery(make_population(n), DiscoveryConfig{}, local);
    EXPECT_TRUE(res.complete) << n << " nodes";
    EXPECT_EQ(res.discovered.size(), n) << n << " nodes";
  }
}

TEST(Discovery, SingleNodeIsFast) {
  common::Rng rng(2);
  const auto res = run_discovery(make_population(1), DiscoveryConfig{}, rng);
  ASSERT_TRUE(res.complete);
  EXPECT_LE(res.rounds.size(), 2u);
}

TEST(Discovery, QGrowsUnderCollisions) {
  // 60 nodes into 4 initial slots: the first rounds are all collisions, so
  // Q must climb before anything resolves.
  common::Rng rng(3);
  DiscoveryConfig cfg;
  cfg.initial_q = 2;
  const auto res = run_discovery(make_population(60), cfg, rng);
  ASSERT_TRUE(res.complete);
  std::uint8_t max_q = 0;
  for (const auto& r : res.rounds) max_q = std::max(max_q, r.q);
  EXPECT_GE(max_q, 5);  // needs ~2^6 slots for 60 nodes
}

TEST(Discovery, SlotAccountingConsistent) {
  common::Rng rng(4);
  const auto res = run_discovery(make_population(20), DiscoveryConfig{}, rng);
  std::size_t sum = 0;
  for (const auto& r : res.rounds) {
    EXPECT_EQ(r.empties + r.singletons + r.collisions, r.slots);
    sum += r.slots;
  }
  EXPECT_EQ(sum, res.total_slots);
}

TEST(Discovery, EfficiencyNearAlohaBound) {
  // Averaged over seeds, framed slotted Aloha with adaptive Q should land
  // within a factor ~2 of the 1/e optimum (i.e. <= ~6 slots per node).
  common::Rng rng(5);
  double total_spn = 0.0;
  const int seeds = 10;
  for (int s = 0; s < seeds; ++s) {
    common::Rng local = rng.child(static_cast<std::uint64_t>(s));
    const auto res = run_discovery(make_population(30), DiscoveryConfig{}, local);
    EXPECT_TRUE(res.complete);
    total_spn += res.slots_per_node();
  }
  const double avg = total_spn / seeds;
  EXPECT_LT(avg, 2.0 / kAlohaOptimalEfficiency);
  EXPECT_GT(avg, 1.0);  // can't beat one slot per node
}

TEST(Discovery, SurvivesReplyLoss) {
  common::Rng rng(6);
  DiscoveryConfig cfg;
  cfg.reply_loss_prob = 0.3;
  cfg.max_rounds = 128;
  const auto res = run_discovery(make_population(15), cfg, rng);
  EXPECT_TRUE(res.complete);
  // Loss costs slots: must be worse than the lossless run.
  common::Rng rng2(6);
  const auto clean = run_discovery(make_population(15), DiscoveryConfig{}, rng2);
  EXPECT_GE(res.total_slots, clean.total_slots);
}

TEST(Discovery, RoundLimitReported) {
  common::Rng rng(7);
  DiscoveryConfig cfg;
  cfg.max_rounds = 1;
  cfg.initial_q = 0;  // one slot for 20 nodes: guaranteed collision
  const auto res = run_discovery(make_population(20), cfg, rng);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.rounds.size(), 1u);
}

TEST(Discovery, ValidatesInput) {
  common::Rng rng(8);
  EXPECT_THROW(run_discovery({}, DiscoveryConfig{}, rng), std::invalid_argument);
  EXPECT_THROW(run_discovery({1, 1}, DiscoveryConfig{}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace vab::net
