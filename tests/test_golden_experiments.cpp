// Golden-value regression locks for the EXPERIMENTS.md headline numbers,
// evaluated at the same default seeds and trial counts the benches use.
// Tolerances are deliberately loose (these are Monte-Carlo aggregates) —
// the point is that neither the parallel engine nor any future PR can
// silently drift the reproduced paper claims:
//   E1: BER ~1e-3 at 300 m on the river link (paper: <1e-3 past 300 m),
//   E3: the default 8-element array reaches ~320 m,
//   E5: ~16x range gain over the single-element PAB baseline (paper: 15x).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/linkbudget.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"

namespace vab {
namespace {

TEST(GoldenExperiments, E1BerVsRangeRiverHeadline) {
  // Mirrors bench/fig_ber_vs_range defaults: seed=1, trials=400, 1024 bits.
  common::Rng rng(1);
  const rvec ranges{25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 500};
  const auto vab =
      sim::ber_vs_range_sweep(sim::vab_river_scenario(), ranges, 400, 1024, rng);
  const auto pab =
      sim::ber_vs_range_sweep(sim::pab_river_scenario(), ranges, 400, 1024, rng);
  ASSERT_EQ(vab.size(), ranges.size());

  // Headline: BER at 300 m sits at the 1e-3 waterfall edge (measured
  // 1.0e-3 at the default seed; EXPERIMENTS.md). Loose band, factor ~3.
  const auto& at300 = vab[7];
  ASSERT_EQ(at300.range_m, 300.0);
  EXPECT_GT(at300.ber, 3e-4);
  EXPECT_LT(at300.ber, 3e-3);

  // Shape: clean link through 250 m, broken well before 500 m.
  EXPECT_LT(vab[6].ber, 1e-3);   // 250 m
  EXPECT_GT(vab[10].ber, 5e-3);  // 500 m
  // PAB baseline is already failing at 25 m and unusable past 50 m.
  EXPECT_GT(pab[0].ber, 1e-3);
  EXPECT_GT(pab[1].ber, 1e-2);
}

TEST(GoldenExperiments, E3EightElementRange) {
  // Mirrors bench/fig_array_scaling defaults: seed=3, trials=200, stream
  // child(n). Measured 319 m for the default 8-element node; +/-15%.
  common::Rng rng(3);
  sim::Scenario s = sim::vab_river_scenario();
  s.node.array.n_elements = 8;
  common::Rng local = rng.child(8);
  const double range = sim::LinkBudget(s).max_range(1e-3, 200, local).raw();
  EXPECT_GT(range, 272.0);
  EXPECT_LT(range, 368.0);
}

TEST(GoldenExperiments, E5RangeGainOverPab) {
  // Mirrors bench/table_comparison defaults: seed=5, trials=300, streams
  // child(0) for VAB and child(1) for PAB. Measured 315 m vs 19 m = 16.5x.
  common::Rng rng(5);
  common::Rng vab_rng = rng.child(0), pab_rng = rng.child(1);
  const double vab_range =
      sim::LinkBudget(sim::vab_river_scenario()).max_range(1e-3, 300, vab_rng).raw();
  const double pab_range =
      sim::LinkBudget(sim::pab_river_scenario()).max_range(1e-3, 300, pab_rng).raw();
  ASSERT_GT(pab_range, 0.0);

  EXPECT_GT(vab_range, 280.0);  // paper: >300 m class; measured 315 m
  EXPECT_LT(vab_range, 360.0);
  EXPECT_GT(pab_range, 10.0);  // paper: tens of meters; measured 19 m
  EXPECT_LT(pab_range, 35.0);

  const double gain = vab_range / pab_range;
  EXPECT_GT(gain, 12.0);  // paper claim: 15x; measured 16.5x
  EXPECT_LT(gain, 22.0);
}

// ---- Fleet scenario pins (EXPERIMENTS.md F1/F2) ----------------------------
//
// Absolute protocol counts depend on libm rounding in the link budget, so
// the pins follow the repo's golden convention: exact bit-identity is
// asserted *within* the platform (two runs, equal digests), and the
// aggregate counters are held in loose bands around the measured values.

TEST(GoldenExperiments, F1HundredNodeRiverFleet) {
  // Mirrors EXPERIMENTS.md F1: 100 nodes, one reader, 300 m river square,
  // adaptive fidelity with an 8-poll waveform budget, seed 42.
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_river_scenario();
  fc.n_nodes = 100;
  fc.n_readers = 1;
  fc.area_m = 300.0;
  fc.fidelity.max_waveform_polls = 8;
  const common::Rng rng(42);
  const auto r = sim::fleet::run_fleet(fc, rng);
  const auto again = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(r.digest, again.digest);

  EXPECT_EQ(r.assigned + r.unreachable, 100u);
  EXPECT_GE(r.assigned, 90u);  // measured: 100 reachable at the default seed
  EXPECT_GE(r.delivered, r.assigned - 5);  // measured: complete inventory
  EXPECT_EQ(r.windows, 1u);
  EXPECT_GT(r.makespan_s, 100.0);  // measured ~236 s of protocol airtime
  EXPECT_LT(r.makespan_s, 500.0);
}

TEST(GoldenExperiments, F2FiveThousandNodeOceanGrid) {
  // Mirrors EXPERIMENTS.md F2: 5k nodes, 9 readers, 1.5 km ocean square,
  // budget fidelity (the large-fleet operating point), seed 43.
  sim::fleet::FleetConfig fc;
  fc.scenario = sim::vab_ocean_scenario();
  fc.n_nodes = 5000;
  fc.n_readers = 9;
  fc.area_m = 1500.0;
  fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  const common::Rng rng(43);
  const auto r = sim::fleet::run_fleet(fc, rng);
  const auto again = sim::fleet::run_fleet(fc, rng);
  EXPECT_EQ(r.digest, again.digest);

  EXPECT_EQ(r.assigned + r.unreachable, 5000u);
  EXPECT_GT(r.assigned, 3000u);
  EXPECT_GE(r.delivered * 100, r.assigned * 95);  // >= 95% delivery
  EXPECT_GE(r.windows, r.readers);  // every reader runs >= 1 window
  EXPECT_EQ(r.events, r.windows);
  EXPECT_GT(r.contended_windows, 0u);  // 9 readers in 1.5 km must contend
}

TEST(GoldenExperiments, Ext6SlottedVsPenaltyDensePoint) {
  // Mirrors bench/fig_rate_adapt's densest sweep point: 192 nodes, 4
  // mutually interfering readers on a 900 m square (typical link 300..550 m,
  // inside the waterfall band), 64-poll window budget, seed 11. Same golden
  // convention as F1/F2: in-platform bit-identity plus loose bands around
  // the measured values.
  const auto make = [](sim::fleet::MacMode mode) {
    sim::fleet::FleetConfig fc;
    fc.scenario = sim::vab_river_scenario();
    fc.scenario.env.fading_sigma_db = 0.0;
    fc.n_readers = 4;
    fc.n_nodes = 192;
    fc.area_m = 900.0;
    fc.max_link_range_m = 550.0;
    fc.interference_range_m = 5000.0;
    fc.contention_penalty_db = 4.0;
    fc.inventory.max_polls = 64;
    fc.mac_mode = mode;
    fc.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
    return fc;
  };
  const common::Rng rng(11);
  const auto penalty =
      sim::fleet::run_fleet(make(sim::fleet::MacMode::kSinrPenalty), rng);
  const auto slotted = sim::fleet::run_fleet(make(sim::fleet::MacMode::kSlotted), rng);
  const auto again = sim::fleet::run_fleet(make(sim::fleet::MacMode::kSlotted), rng);
  EXPECT_EQ(slotted.digest, again.digest);

  // The EXT-6 headline: per-slot contention resolution beats the stacked
  // SINR penalty once every window is contended (measured 192 vs ~141).
  ASSERT_EQ(penalty.assigned, slotted.assigned);
  EXPECT_GT(penalty.contended_windows, 0u);
  EXPECT_GT(slotted.delivered, penalty.delivered);
  EXPECT_GE(slotted.delivered * 100, slotted.assigned * 95);
  EXPECT_LE(penalty.delivered * 100, penalty.assigned * 90);
  // Slot accounting is live, conserved, and absent from the legacy model.
  EXPECT_GT(slotted.slot_total, slotted.slot_success);
  EXPECT_EQ(slotted.slot_idle + slotted.slot_success + slotted.slot_collision +
                slotted.slot_capture,
            slotted.slot_total);
  EXPECT_EQ(penalty.slot_total, 0u);
}

}  // namespace
}  // namespace vab
