// Protocol conformance suite for the slotted anti-collision MAC and the MCS
// command flow.
//
// Everything here is scripted: the Q-adapter is stepped outcome by outcome
// against hand-computed Qfp values, capture arbitration is pinned case by
// case, slotted inventory rounds are replayed from their recorded traces,
// and the reader<->node MCS handshake is driven frame by frame. The fleet
// seam closes the file: the SINR contention penalty and the slotted MAC are
// mutually exclusive (regression for the double-charge bug), the legacy
// digest ignores the new code paths, and slotted fleet runs stay
// bit-identical across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/anticollision/capture.hpp"
#include "net/anticollision/slotted.hpp"
#include "net/frame.hpp"
#include "net/inventory.hpp"
#include "net/mac.hpp"
#include "net/mcs/mcs.hpp"
#include "sim/fleet/fleet.hpp"
#include "sim/fleet/transport.hpp"
#include "sim/scenario.hpp"

namespace vab {
namespace {

using net::anticollision::CaptureConfig;
using net::anticollision::Contender;
using net::anticollision::QAdapter;
using net::anticollision::QConfig;
using net::anticollision::resolve_capture;
using net::anticollision::run_slotted_inventory;
using net::anticollision::SlotKind;
using net::anticollision::SlottedResult;
using net::mcs::McsLadder;

const McsLadder& ladder() {
  static const McsLadder* l = new McsLadder(McsLadder::default_ladder());
  return *l;
}

// ---------------------------------------------------------------------------
// 1. QAdapter: scripted floating-Q traces
// ---------------------------------------------------------------------------

TEST(QAdapterConformance, StartsAtClampedQInit) {
  QConfig cfg;
  cfg.q_init = 4.0;
  EXPECT_EQ(QAdapter(cfg).q(), 4u);
  EXPECT_EQ(QAdapter(cfg).frame_slots(), 16u);
  cfg.q_init = 99.0;
  EXPECT_EQ(QAdapter(cfg).q(), static_cast<std::uint8_t>(cfg.q_max));
  cfg.q_init = -3.0;
  EXPECT_EQ(QAdapter(cfg).q(), 0u);
}

TEST(QAdapterConformance, ScriptedOutcomeTraceMatchesHandComputedQfp) {
  QConfig cfg;
  cfg.q_init = 4.0;
  cfg.c_up = 0.35;
  cfg.c_down = 0.25;
  QAdapter q(cfg);
  // Replay a hand-written reader trace and check Qfp after every slot with
  // the exact same floating-point operations.
  const struct {
    SlotKind kind;
    double expect_qfp;
  } script[] = {
      {SlotKind::kCollision, 4.0 + 0.35},
      {SlotKind::kCollision, 4.0 + 0.35 + 0.35},
      {SlotKind::kSuccess, 4.0 + 0.35 + 0.35},
      {SlotKind::kIdle, 4.0 + 0.35 + 0.35 - 0.25},
      {SlotKind::kCapture, 4.0 + 0.35 + 0.35 - 0.25},
      {SlotKind::kIdle, 4.0 + 0.35 + 0.35 - 0.25 - 0.25},
  };
  for (const auto& step : script) {
    q.on_slot(step.kind);
    EXPECT_DOUBLE_EQ(q.qfp(), step.expect_qfp);
  }
}

TEST(QAdapterConformance, QfpClampsAtConfiguredBounds) {
  QConfig cfg;
  cfg.q_init = 0.5;
  cfg.q_min = 0.0;
  cfg.q_max = 2.0;
  QAdapter q(cfg);
  for (int i = 0; i < 50; ++i) q.on_slot(SlotKind::kIdle);
  EXPECT_DOUBLE_EQ(q.qfp(), 0.0);
  EXPECT_EQ(q.frame_slots(), 1u);
  for (int i = 0; i < 50; ++i) q.on_slot(SlotKind::kCollision);
  EXPECT_DOUBLE_EQ(q.qfp(), 2.0);
  EXPECT_EQ(q.frame_slots(), 4u);
}

TEST(QAdapterConformance, IntegerQRoundsToNearest) {
  QConfig cfg;
  cfg.q_init = 4.0;
  cfg.c_up = 0.3;
  QAdapter q(cfg);
  q.on_slot(SlotKind::kCollision);  // 4.3 -> q=4
  EXPECT_EQ(q.q(), 4u);
  q.on_slot(SlotKind::kCollision);  // 4.6 -> q=5
  EXPECT_EQ(q.q(), 5u);
  EXPECT_EQ(q.frame_slots(), 32u);
}

// ---------------------------------------------------------------------------
// 2. Capture arbitration, case by case
// ---------------------------------------------------------------------------

TEST(CaptureConformance, EmptySlotHasNoWinner) {
  EXPECT_FALSE(resolve_capture({}, {}).has_value());
}

TEST(CaptureConformance, SoleOccupantWinsUnlessSilent) {
  const auto win = resolve_capture({2.5}, {});
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(*win, 0u);
  EXPECT_FALSE(resolve_capture({0.0}, {}).has_value());
}

TEST(CaptureConformance, DominantReplyCapturesAboveMargin) {
  CaptureConfig cfg;
  cfg.margin_db = 6.0;
  // SINR = 10 / 1.0 = 10 dB > 6 dB: index 1 captures.
  const auto win = resolve_capture({1.0, 10.0}, cfg);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(*win, 1u);
}

TEST(CaptureConformance, BelowMarginCollides) {
  CaptureConfig cfg;
  cfg.margin_db = 6.0;
  // SINR = 3/1 ~= 4.8 dB < 6 dB: jammed.
  EXPECT_FALSE(resolve_capture({1.0, 3.0}, cfg).has_value());
}

TEST(CaptureConformance, EqualPowersAlwaysJam) {
  CaptureConfig cfg;
  cfg.margin_db = 0.0;  // even a zero margin cannot rescue a tie
  EXPECT_FALSE(resolve_capture({5.0, 5.0}, cfg).has_value());
  EXPECT_FALSE(resolve_capture({5.0, 5.0, 0.1}, cfg).has_value());
}

TEST(CaptureConformance, NoiseErodesTheMargin) {
  CaptureConfig cfg;
  cfg.margin_db = 6.0;
  cfg.noise_power_rel = 0.0;
  ASSERT_TRUE(resolve_capture({1.0, 10.0}, cfg).has_value());
  cfg.noise_power_rel = 2.0;  // SINR = 10/(1+2) ~= 5.2 dB < 6 dB
  EXPECT_FALSE(resolve_capture({1.0, 10.0}, cfg).has_value());
}

TEST(CaptureConformance, ThreeWayNearFarCapture) {
  CaptureConfig cfg;
  cfg.margin_db = 6.0;
  // 40 vs (4 + 3): SINR ~= 7.6 dB — the near node rides over two far ones.
  const auto win = resolve_capture({4.0, 40.0, 3.0}, cfg);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(*win, 1u);
}

// ---------------------------------------------------------------------------
// 3. Slotted inventory rounds
// ---------------------------------------------------------------------------

std::vector<Contender> uniform_population(std::size_t n, double power = 1.0,
                                          double delivery = 1.0) {
  std::vector<Contender> c(n);
  for (std::size_t i = 0; i < n; ++i)
    c[i] = Contender{static_cast<std::uint16_t>(i), power, delivery};
  return c;
}

TEST(SlottedConformance, EmptyPopulationResolvesImmediately) {
  common::Rng rng(1);
  const SlottedResult r = run_slotted_inventory({}, {}, rng);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.slots, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_TRUE(r.conserves());
}

TEST(SlottedConformance, ConservationInvariantHoldsEverywhere) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 0xABCDull}) {
    for (const std::size_t n : {1u, 5u, 32u, 100u}) {
      common::Rng rng(seed);
      QConfig cfg;
      const SlottedResult r = run_slotted_inventory(uniform_population(n), cfg, rng);
      EXPECT_TRUE(r.conserves()) << "seed " << seed << " n " << n;
      EXPECT_EQ(r.resolved.size(), r.success_slots + r.capture_slots)
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(SlottedConformance, CleanChannelResolvesEveryContenderExactlyOnce) {
  common::Rng rng(7);
  const std::size_t n = 48;
  const SlottedResult r = run_slotted_inventory(uniform_population(n), {}, rng);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.resolved.size(), n);
  const std::set<std::uint16_t> unique(r.resolved.begin(), r.resolved.end());
  EXPECT_EQ(unique.size(), n);  // no double-resolution
  EXPECT_EQ(r.decode_failures, 0u);
  EXPECT_EQ(r.capture_slots, 0u);  // equal powers cannot capture
}

TEST(SlottedConformance, DeterministicAtFixedSeedIncludingTrace) {
  QConfig cfg;
  cfg.record_trace = true;
  auto run = [&cfg] {
    common::Rng rng(0x51077ED);
    return run_slotted_inventory(uniform_population(20), cfg, rng);
  };
  const SlottedResult a = run();
  const SlottedResult b = run();
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.final_qfp, b.final_qfp);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].round, b.trace[i].round);
    EXPECT_EQ(a.trace[i].slot, b.trace[i].slot);
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind);
    EXPECT_EQ(a.trace[i].occupants, b.trace[i].occupants);
    EXPECT_EQ(a.trace[i].winner, b.trace[i].winner);
  }
}

TEST(SlottedConformance, TraceCoversEverySlotAndMatchesTheCounters) {
  QConfig cfg;
  cfg.record_trace = true;
  common::Rng rng(0x7ACE);
  const SlottedResult r = run_slotted_inventory(uniform_population(24), cfg, rng);
  ASSERT_EQ(r.trace.size(), r.slots);
  std::size_t idle = 0, success = 0, collision = 0, capture = 0;
  for (const auto& rec : r.trace) {
    switch (rec.kind) {
      case SlotKind::kIdle:
        ++idle;
        EXPECT_EQ(rec.occupants, 0u);
        break;
      case SlotKind::kSuccess:
        ++success;
        EXPECT_EQ(rec.occupants, 1u);
        break;
      case SlotKind::kCollision:
        ++collision;
        EXPECT_GE(rec.occupants, 1u);  // lone occupant can still fail decode
        break;
      case SlotKind::kCapture:
        ++capture;
        EXPECT_GE(rec.occupants, 2u);
        break;
    }
  }
  EXPECT_EQ(idle, r.idle_slots);
  EXPECT_EQ(success, r.success_slots);
  EXPECT_EQ(collision, r.collision_slots);
  EXPECT_EQ(capture, r.capture_slots);
}

TEST(SlottedConformance, TraceIsOffByDefault) {
  common::Rng rng(3);
  const SlottedResult r = run_slotted_inventory(uniform_population(8), {}, rng);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_GT(r.slots, 0u);
}

TEST(SlottedConformance, EfficiencyLandsNearOneOverE) {
  // Framed slotted Aloha with converged Q runs at ~36.8% slot efficiency;
  // floating-Q tracking keeps a large population inside a generous band.
  common::Rng rng(0xEFF1);
  const std::size_t n = 200;
  QConfig cfg;
  cfg.q_init = 8.0;  // 256 slots: near-optimal for 200 contenders
  cfg.max_rounds = 256;
  const SlottedResult r = run_slotted_inventory(uniform_population(n), cfg, rng);
  ASSERT_TRUE(r.complete);
  const double eff =
      static_cast<double>(r.resolved.size()) / static_cast<double>(r.slots);
  EXPECT_GT(eff, 0.20);
  EXPECT_LT(eff, 0.55);
}

TEST(SlottedConformance, QGrowsTowardThePopulation) {
  // Starting far too small (Q=0: one slot per frame), collisions must push
  // the frame size up toward the contender count before anyone resolves.
  // Qfp decays again as the tail drains (idle slots dominate at the end),
  // so the growth is pinned on the recorded frame sizes, not the final Qfp.
  QConfig cfg;
  cfg.q_init = 0.0;
  cfg.max_rounds = 512;
  cfg.record_trace = true;
  common::Rng rng(0x6E0);
  const SlottedResult r = run_slotted_inventory(uniform_population(64), cfg, rng);
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.collision_slots, 0u);
  std::size_t max_frame = 0;
  for (const auto& rec : r.trace) max_frame = std::max(max_frame, rec.slot + 1);
  EXPECT_GE(max_frame, 16u);  // grew from 1 slot under collision pressure
}

TEST(SlottedConformance, PowerSpreadEnablesCapture) {
  // Exponentially spread powers: near-far differences > 6 dB are common, so
  // some collided slots must resolve by capture.
  std::vector<Contender> pop;
  for (std::size_t i = 0; i < 40; ++i)
    pop.push_back({static_cast<std::uint16_t>(i),
                   std::pow(10.0, static_cast<double>(i % 8) * 0.4), 1.0});
  QConfig cfg;
  cfg.q_init = 2.0;  // undersized frames force collisions
  cfg.max_rounds = 256;
  common::Rng rng(0xCAB);
  const SlottedResult r = run_slotted_inventory(pop, cfg, rng);
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.capture_slots, 0u);
  EXPECT_TRUE(r.conserves());
}

TEST(SlottedConformance, DecodeFailureCountsAsCollisionAndNothingResolves) {
  QConfig cfg;
  cfg.max_rounds = 8;
  common::Rng rng(9);
  const SlottedResult r =
      run_slotted_inventory(uniform_population(10, 1.0, 0.0), cfg, rng);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.resolved.empty());
  EXPECT_GT(r.decode_failures, 0u);
  EXPECT_EQ(r.success_slots, 0u);
  EXPECT_EQ(r.capture_slots, 0u);
  EXPECT_TRUE(r.conserves());
}

TEST(SlottedConformance, MaxRoundsBoundsTheRun) {
  QConfig cfg;
  cfg.max_rounds = 1;
  cfg.q_init = 0.0;  // one 1-slot frame for 50 contenders
  common::Rng rng(4);
  const SlottedResult r = run_slotted_inventory(uniform_population(50), cfg, rng);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.slots, 1u);
}

// ---------------------------------------------------------------------------
// 4. Reader <-> node MCS command flow, frame by frame
// ---------------------------------------------------------------------------

TEST(McsCommandConformance, QueryCarriesTheCommandedRungByte) {
  net::ReaderMac reader{net::MacTiming{}};
  const net::Frame plain = reader.make_query(5);
  EXPECT_TRUE(plain.payload.empty());  // fixed-rate wire format untouched

  net::mcs::AdaptConfig adapt;
  adapt.start_rung = 2;
  reader.enable_mcs(ladder(), adapt);
  const net::Frame q = reader.make_query(5);
  ASSERT_EQ(q.payload.size(), 1u);
  EXPECT_EQ(q.payload[0], 2u);
}

TEST(McsCommandConformance, NodeReconfiguresOnlyOnRungChange) {
  net::NodeMac node(5, net::MacTiming{});
  node.enable_mcs(ladder());
  EXPECT_EQ(node.current_rung(), McsLadder::kPaperRung);
  EXPECT_EQ(node.reconfigures(), 0u);  // opting in is not a reconfiguration

  net::ReaderMac reader{net::MacTiming{}};
  net::mcs::AdaptConfig adapt;
  adapt.start_rung = 1;
  reader.enable_mcs(ladder(), adapt);
  const net::SensorReading reading{11.0, 101.3, 2900};

  auto resp = node.on_downlink(reader.make_query(5), reading);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(node.current_rung(), 1u);
  EXPECT_EQ(node.reconfigures(), 1u);
  EXPECT_EQ(node.phy_config().uplink_code, ladder().rung(1).code);
  EXPECT_EQ(node.phy_config().bitrate_bps, ladder().rung(1).bitrate_bps);

  // Same commanded rung again: no spurious reconfiguration.
  (void)node.on_downlink(reader.make_query(5), reading);
  EXPECT_EQ(node.reconfigures(), 1u);
}

TEST(McsCommandConformance, NodeWithoutOptInIgnoresTheRungByte) {
  net::NodeMac node(5, net::MacTiming{});
  net::ReaderMac reader{net::MacTiming{}};
  net::mcs::AdaptConfig adapt;
  adapt.start_rung = 1;
  reader.enable_mcs(ladder(), adapt);
  const auto resp = node.on_downlink(reader.make_query(5), {11.0, 101.3, 2900});
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(node.mcs_enabled());
  EXPECT_EQ(node.current_rung(), 0u);
  EXPECT_EQ(node.reconfigures(), 0u);
}

TEST(McsCommandConformance, LostAckRetransmitsSameSeqAtTheCommandedRung) {
  net::NodeMac node(9, net::MacTiming{});
  node.enable_mcs(ladder());
  net::ReaderMac reader{net::MacTiming{}};
  reader.enable_mcs(ladder());
  const net::SensorReading reading{11.0, 101.3, 2900};

  const auto first = node.on_downlink(reader.make_query(9), reading);
  ASSERT_TRUE(first.has_value());
  const std::uint8_t seq = first->frame.seq;
  EXPECT_TRUE(node.awaiting_ack());

  // ACK lost; the next MCS-carrying query elicits the same seq again.
  const auto retry = node.on_downlink(reader.make_query(9), reading);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->frame.seq, seq);
  EXPECT_EQ(reader.on_report(first->frame), net::ReaderMac::UplinkEvent::kDelivered);
  EXPECT_EQ(reader.on_report(retry->frame), net::ReaderMac::UplinkEvent::kDuplicate);
}

TEST(McsCommandConformance, ObserveLinkWalksTheRungAndRecordsResidency) {
  net::ReaderMac reader{net::MacTiming{}};
  reader.enable_mcs(ladder());
  for (int i = 0; i < 60; ++i)
    reader.observe_link(9, common::SnrDb{30.0}, true);
  EXPECT_EQ(reader.rung_of(9), ladder().size() - 1);
  EXPECT_GT(reader.mcs_steps_up(), 0u);
  EXPECT_EQ(reader.mcs_steps_down(), 0u);
  std::size_t residency = 0;
  for (const auto& [rung, polls] : reader.rung_polls()) residency += polls;
  EXPECT_EQ(residency, 60u);
}

TEST(McsCommandConformance, DemoteResetsTheRateController) {
  net::ReaderMac reader{net::MacTiming{}};
  reader.enable_mcs(ladder());
  for (int i = 0; i < 60; ++i)
    reader.observe_link(9, common::SnrDb{30.0}, true);
  ASSERT_EQ(reader.rung_of(9), ladder().size() - 1);
  reader.demote(9);
  // Re-discovery starts the controller over at the configured start rung.
  EXPECT_EQ(reader.rung_of(9), static_cast<std::size_t>(McsLadder::kPaperRung));
  const net::mcs::RateController* ctl = reader.controller(9);
  ASSERT_NE(ctl, nullptr);
  EXPECT_EQ(ctl->polls(), 0u);
}

// ---------------------------------------------------------------------------
// 5. The fleet seam: penalty/slotted exclusivity and digest stability
// ---------------------------------------------------------------------------

bytes report_wire(std::uint8_t addr, std::uint8_t seq) {
  net::Frame f;
  f.addr = addr;
  f.type = net::FrameType::kSensorReport;
  f.seq = seq;
  f.payload = net::encode_reading({12.5, 101.3, 2900});
  return net::serialize(f);
}

TEST(FleetSeamConformance, SlottedModeWithholdsTheSinrPenalty) {
  // Regression for the double-charge seam: with the slotted MAC resolving
  // contention per slot, a contended window's uplink draws must be
  // *bit-identical* to an uncontended window's — the flat penalty may not
  // also be applied.
  sim::Scenario base = sim::vab_river_scenario();
  base.env.fading_sigma_db = 0.0;
  sim::fleet::FidelityPolicy policy;
  policy.mode = sim::fleet::FidelityMode::kBudgetOnly;

  auto run = [&](bool slotted, std::size_t contenders) {
    sim::fleet::FleetLinkTransport tp(base, policy, common::Db{3.0}, 96);
    tp.set_slotted_mode(slotted);
    common::Rng rng(0xC0117);
    tp.begin_window({{7, 420.0, common::SnrDb{0.0}}}, rng.child(1));  // marginal range
    tp.set_contention(contenders);
    common::Rng poll_rng = rng.child(2);
    std::size_t delivered = 0;
    for (int i = 0; i < 200; ++i) {
      bytes wire = report_wire(0, static_cast<std::uint8_t>(i));
      if (tp.uplink_delivered(0, wire, poll_rng)) ++delivered;
    }
    return std::pair<std::size_t, std::size_t>{delivered,
                                               tp.tally().contended_polls};
  };

  const auto [clean, clean_contended] = run(false, 0);
  const auto [penalized, pen_contended] = run(false, 4);
  const auto [slotted, slot_contended] = run(true, 4);

  EXPECT_EQ(clean_contended, 0u);
  EXPECT_EQ(pen_contended, 200u);
  EXPECT_EQ(slot_contended, 200u);  // contention still tallied in slotted mode
  EXPECT_EQ(slotted, clean);        // ...but the penalty is withheld
  EXPECT_LT(penalized, clean);      // and it genuinely bites in penalty mode
}

sim::fleet::FleetConfig dense_config(sim::fleet::MacMode mode) {
  sim::fleet::FleetConfig cfg;
  cfg.scenario = sim::vab_river_scenario();
  cfg.scenario.env.fading_sigma_db = 0.0;
  cfg.n_readers = 4;
  cfg.n_nodes = 72;
  cfg.area_m = 900.0;  // typical link 300..550 m: inside the waterfall band
  cfg.max_link_range_m = 550.0;
  cfg.interference_range_m = 5000.0;  // every reader contends with every other
  cfg.contention_penalty_db = 4.0;
  cfg.inventory.max_polls = 64;  // finite poll budget per address window
  cfg.mac_mode = mode;
  cfg.fidelity.mode = sim::fleet::FidelityMode::kBudgetOnly;
  return cfg;
}

TEST(FleetSeamConformance, SlottedMacBeatsSinrPenaltyDeliveryWhenDense) {
  const auto penalty =
      run_fleet(dense_config(sim::fleet::MacMode::kSinrPenalty), common::Rng(11));
  const auto slotted =
      run_fleet(dense_config(sim::fleet::MacMode::kSlotted), common::Rng(11));
  ASSERT_EQ(penalty.assigned, slotted.assigned);
  ASSERT_GT(penalty.contended_windows, 0u);
  // The flat penalty stacks 4 dB per contending reader and pushes marginal
  // links under their waterfall; per-slot resolution does not.
  EXPECT_GT(slotted.delivered, penalty.delivered);
  // Slotted accounting is live and conserved.
  EXPECT_GT(slotted.slot_total, 0u);
  EXPECT_EQ(slotted.slot_idle + slotted.slot_success + slotted.slot_collision +
                slotted.slot_capture,
            slotted.slot_total);
  // ...and completely absent from the historical model.
  EXPECT_EQ(penalty.slot_total, 0u);
  EXPECT_EQ(penalty.slotted_unresolved, 0u);
}

TEST(FleetSeamConformance, SlottedChargesAcquisitionAirtime) {
  const auto slotted =
      run_fleet(dense_config(sim::fleet::MacMode::kSlotted), common::Rng(11));
  const auto penalty =
      run_fleet(dense_config(sim::fleet::MacMode::kSinrPenalty), common::Rng(11));
  // Slot acquisition is not free: the slotted run pays airtime for every
  // announced slot on top of the ARQ exchanges.
  EXPECT_GT(slotted.airtime_s, 0.0);
  EXPECT_GT(slotted.slot_total, 0u);
  (void)penalty;
}

class FleetThreadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("VAB_THREADS");
    common::set_thread_count(0);
  }
  void TearDown() override { common::set_thread_count(0); }
};

TEST_F(FleetThreadTest, SlottedReplicateDigestsBitIdenticalAcrossThreadCounts) {
  auto digests = [](unsigned threads) {
    common::set_thread_count(threads);
    sim::fleet::FleetConfig cfg = dense_config(sim::fleet::MacMode::kSlotted);
    cfg.n_nodes = 48;
    const auto runs = run_fleet_replicates(cfg, 6, common::Rng(0xD16E57));
    common::set_thread_count(0);
    std::vector<std::uint64_t> out;
    for (const auto& r : runs) out.push_back(r.digest);
    return out;
  };
  const auto serial = digests(1);
  EXPECT_EQ(digests(2), serial);
  EXPECT_EQ(digests(8), serial);
}

TEST_F(FleetThreadTest, McsLadderFleetDigestsBitIdenticalAcrossThreadCounts) {
  auto digests = [](unsigned threads) {
    common::set_thread_count(threads);
    sim::fleet::FleetConfig cfg = dense_config(sim::fleet::MacMode::kSlotted);
    cfg.n_nodes = 48;
    cfg.inventory.ladder = &ladder();
    const auto runs = run_fleet_replicates(cfg, 6, common::Rng(0xAD0BE));
    common::set_thread_count(0);
    std::vector<std::uint64_t> out;
    for (const auto& r : runs) out.push_back(r.digest);
    return out;
  };
  const auto serial = digests(1);
  EXPECT_EQ(digests(2), serial);
  EXPECT_EQ(digests(8), serial);
}

TEST(FleetSeamConformance, LegacyModeReportsZeroMcsAndSlotActivity) {
  sim::fleet::FleetConfig cfg = dense_config(sim::fleet::MacMode::kSinrPenalty);
  cfg.n_nodes = 24;
  const auto r = run_fleet(cfg, common::Rng(21));
  EXPECT_EQ(r.slot_total, 0u);
  EXPECT_EQ(r.mcs_steps_up, 0u);
  EXPECT_EQ(r.mcs_steps_down, 0u);
  EXPECT_EQ(r.reconfigures, 0u);
}

TEST(FleetSeamConformance, AdaptiveFleetRunReportsMcsActivity) {
  sim::fleet::FleetConfig cfg = dense_config(sim::fleet::MacMode::kSinrPenalty);
  cfg.n_nodes = 24;
  cfg.area_m = 400.0;  // short, clean links: MCS activity, full delivery
  cfg.interference_range_m = 0.0;  // isolate the MCS effect from contention
  cfg.inventory.ladder = &ladder();
  // Start below the nodes' power-on rung so the first query of every link
  // provably commands a reconfiguration even when windows are one poll long.
  cfg.inventory.adapt.start_rung = 1;
  const auto r = run_fleet(cfg, common::Rng(21));
  EXPECT_GT(r.reconfigures + r.mcs_steps_up + r.mcs_steps_down, 0u);
  EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace vab
