// Distributed-campaign correctness: shard/merge bit-identity against the
// in-process runners at several thread counts and shard topologies,
// checkpoint round-trip and resume-after-interrupt semantics, and rejection
// of stale/corrupt/mismatched checkpoint files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/campaign.hpp"
#include "sim/scenario.hpp"

namespace vab {
namespace {

namespace fs = std::filesystem;

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vab-campaign-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    common::set_thread_count(0);
    fs::remove_all(dir_);
  }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

sim::Scenario fast_scenario() {
  sim::Scenario s = sim::vab_river_scenario();
  s.range_m = 60.0;
  return s;
}

sim::CampaignConfig campaign(const std::string& dir, const std::string& key,
                             std::size_t index, std::size_t count) {
  sim::CampaignConfig cfg;
  cfg.dir = dir;
  cfg.key = key;
  cfg.shard.index = index;
  cfg.shard.count = count;
  return cfg;
}

bool same_stats(const sim::WaveformStats& a, const sim::WaveformStats& b) {
  return a.trials == b.trials && a.frames_synced == b.frames_synced &&
         a.frames_ok == b.frames_ok && a.total_bits == b.total_bits &&
         a.bit_errors == b.bit_errors && a.mean_snr_db == b.mean_snr_db &&
         a.mean_corr_peak == b.mean_corr_peak &&
         a.mean_sic_suppression_db == b.mean_sic_suppression_db;
}

TEST(ShardSpec, ParsesAndValidates) {
  const auto s = sim::ShardSpec::parse("2/8");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.str(), "2/8");
  EXPECT_THROW(sim::ShardSpec::parse("8/8"), std::invalid_argument);
  EXPECT_THROW(sim::ShardSpec::parse("0/0"), std::invalid_argument);
  EXPECT_THROW(sim::ShardSpec::parse("nope"), std::invalid_argument);
  EXPECT_THROW(sim::ShardSpec::parse("1/2x"), std::invalid_argument);
}

TEST(ShardSpec, RangesPartitionTheTrialSpaceExactly) {
  for (const std::size_t n : {0u, 1u, 7u, 16u, 100u, 101u}) {
    for (const std::size_t count : {1u, 2u, 3u, 8u, 17u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const auto [b, e] = common::split_range(n, i, count);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST_F(CampaignTest, WaveformMergeMatchesDirectRunAcrossThreadsAndShards) {
  const sim::Scenario scenario = fast_scenario();
  const std::size_t trials = 12;
  const std::size_t bits = 32;
  common::Rng rng(42);
  common::set_thread_count(1);
  const sim::WaveformStats direct =
      sim::run_waveform_trials(scenario, trials, bits, rng);

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::size_t count : {1u, 3u, 5u}) {
      common::set_thread_count(threads);
      std::vector<sim::WaveformShardResult> shards;
      for (std::size_t i = 0; i < count; ++i)
        shards.push_back(sim::run_waveform_shard(scenario, trials, bits, rng,
                                                 campaign("", "k", i, count)));
      const auto merged = sim::merge_waveform_campaign(shards, trials, bits);
      EXPECT_TRUE(same_stats(direct, merged))
          << "threads=" << threads << " shards=" << count;
    }
  }
}

TEST_F(CampaignTest, InterruptedCampaignResumesBitIdentical) {
  // "Interrupt": only shard 0 of 3 completes and checkpoints. The resumed
  // sweep must load shard 0 from disk (not recompute) and produce stats
  // bit-identical to an uninterrupted single-shard run.
  const sim::Scenario scenario = fast_scenario();
  const std::size_t trials = 9;
  const std::size_t bits = 32;
  common::Rng rng(7);
  common::set_thread_count(2);

  const auto first =
      sim::run_waveform_shard(scenario, trials, bits, rng, campaign(dir(), "key", 0, 3));
  EXPECT_FALSE(first.from_checkpoint);
  const std::string ckpt = sim::checkpoint_path(campaign(dir(), "key", 0, 3), "waveform");
  ASSERT_TRUE(fs::exists(ckpt));
  // Freeze the file's bytes: if the resume recomputed instead of loading,
  // from_checkpoint would be false below.

  std::vector<sim::WaveformShardResult> shards;
  for (std::size_t i = 0; i < 3; ++i)
    shards.push_back(sim::run_waveform_shard(scenario, trials, bits, rng,
                                             campaign(dir(), "key", i, 3)));
  EXPECT_TRUE(shards[0].from_checkpoint);
  EXPECT_FALSE(shards[1].from_checkpoint);

  common::set_thread_count(1);
  common::Rng fresh(7);
  const auto direct = sim::run_waveform_trials(scenario, trials, bits, fresh);
  EXPECT_TRUE(same_stats(direct, sim::merge_waveform_campaign(shards, trials, bits)));
}

TEST_F(CampaignTest, CheckpointRejectedOnCorruptionTruncationOrWrongKey) {
  const sim::Scenario scenario = fast_scenario();
  const std::size_t trials = 6;
  const std::size_t bits = 32;
  common::Rng rng(11);
  const auto cfg = campaign(dir(), "key-a", 0, 2);
  sim::run_waveform_shard(scenario, trials, bits, rng, cfg);
  const std::string path = sim::checkpoint_path(cfg, "waveform");
  ASSERT_TRUE(fs::exists(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();

  // A different campaign key maps to a different file entirely.
  const auto other = campaign(dir(), "key-b", 0, 2);
  EXPECT_NE(sim::checkpoint_path(other, "waveform"), path);
  EXPECT_FALSE(
      sim::run_waveform_shard(scenario, trials, bits, rng, other).from_checkpoint);

  // Flip one record byte: digest mismatch, recompute.
  std::string corrupt = content;
  const auto pos = corrupt.find("\nr ");
  ASSERT_NE(pos, std::string::npos);
  corrupt[pos + 3] = corrupt[pos + 3] == 'z' ? 'y' : 'z';
  std::ofstream(path, std::ios::trunc) << corrupt;
  EXPECT_FALSE(
      sim::run_waveform_shard(scenario, trials, bits, rng, cfg).from_checkpoint);

  // Truncate after the header: missing records, recompute.
  std::ofstream(path, std::ios::trunc) << content.substr(0, content.find('\n') + 1);
  EXPECT_FALSE(
      sim::run_waveform_shard(scenario, trials, bits, rng, cfg).from_checkpoint);

  // Intact file is accepted again.
  std::ofstream(path, std::ios::trunc) << content;
  EXPECT_TRUE(
      sim::run_waveform_shard(scenario, trials, bits, rng, cfg).from_checkpoint);
}

TEST_F(CampaignTest, MergeRejectsMissingAndOverlappingShards) {
  const sim::Scenario scenario = fast_scenario();
  const std::size_t trials = 8;
  const std::size_t bits = 32;
  common::Rng rng(3);
  auto s0 = sim::run_waveform_shard(scenario, trials, bits, rng, campaign("", "k", 0, 2));
  auto s1 = sim::run_waveform_shard(scenario, trials, bits, rng, campaign("", "k", 1, 2));
  EXPECT_THROW(sim::merge_waveform_campaign({s0}, trials, bits), std::runtime_error);
  EXPECT_THROW(sim::merge_waveform_campaign({s0, s0, s1}, trials, bits),
               std::runtime_error);
  EXPECT_NO_THROW(sim::merge_waveform_campaign({s1, s0}, trials, bits));
}

TEST_F(CampaignTest, LinkBudgetShardsMergeBitIdentical) {
  const sim::LinkBudget budget(sim::vab_river_scenario());
  const std::size_t trials = 400;
  const std::size_t bits = 512;
  common::Rng rng(5);
  common::set_thread_count(1);
  common::Rng direct_rng(5);
  const auto direct = budget.monte_carlo(common::Meters{250.0}, trials, bits, direct_rng);

  for (const unsigned threads : {1u, 2u, 8u}) {
    common::set_thread_count(threads);
    std::vector<sim::BerShardResult> shards;
    for (std::size_t i = 0; i < 4; ++i)
      shards.push_back(sim::run_linkbudget_shard(budget, common::Meters{250.0}, trials,
                                                 bits, rng,
                                                 campaign(dir(), "lb", i, 4)));
    const auto merged = sim::merge_linkbudget_campaign(shards, trials, bits);
    EXPECT_EQ(direct.bits, merged.bits) << "threads=" << threads;
    EXPECT_EQ(direct.errors, merged.errors) << "threads=" << threads;
    EXPECT_EQ(direct.mean_snr_db, merged.mean_snr_db) << "threads=" << threads;
  }
  // Second pass resumed every shard from its checkpoint.
  const auto resumed = sim::run_linkbudget_shard(budget, common::Meters{250.0}, trials,
                                                 bits, rng,
                                                 campaign(dir(), "lb", 0, 4));
  EXPECT_TRUE(resumed.from_checkpoint);
}

TEST_F(CampaignTest, MismatchShardsMergeBitIdentical) {
  vanatta::VanAttaConfig ac;
  ac.n_elements = 8;
  const std::size_t trials = 120;
  common::Rng rng(9);
  common::set_thread_count(1);
  common::Rng direct_rng(9);
  const auto direct =
      vanatta::mismatch_monte_carlo(ac, 0.1, 18500.0, 0.2, 1.0, trials, direct_rng);

  for (const unsigned threads : {2u, 8u}) {
    common::set_thread_count(threads);
    std::vector<sim::MismatchShardResult> shards;
    for (std::size_t i = 0; i < 3; ++i)
      shards.push_back(sim::run_mismatch_shard(ac, 0.1, common::Hz{18500.0}, 0.2,
                                               common::Db{1.0}, trials,
                                               rng, campaign("", "mm", i, 3)));
    const auto merged = sim::merge_mismatch_campaign(shards, trials);
    EXPECT_EQ(direct.mean_loss_db, merged.mean_loss_db);
    EXPECT_EQ(direct.p95_loss_db, merged.p95_loss_db);
    EXPECT_EQ(direct.worst_loss_db, merged.worst_loss_db);
  }
}

TEST_F(CampaignTest, BatchShardsMergeBitIdenticalPerJob) {
  std::vector<sim::WaveformJob> jobs;
  common::Rng rng(21);
  for (const double range : {60.0, 90.0}) {
    sim::WaveformJob j;
    j.scenario = fast_scenario();
    j.scenario.range_m = range;
    j.trials = 5;
    j.payload_bits = 32;
    j.rng = rng.child(static_cast<std::uint64_t>(range));
    jobs.push_back(std::move(j));
  }
  common::set_thread_count(1);
  const auto direct = sim::run_waveform_batch(jobs);

  for (const unsigned threads : {2u, 8u}) {
    common::set_thread_count(threads);
    std::vector<sim::WaveformShardResult> shards;
    for (std::size_t i = 0; i < 4; ++i)
      shards.push_back(sim::run_waveform_batch_shard(jobs, campaign(dir(), "b", i, 4)));
    const auto merged = sim::merge_waveform_batch_campaign(shards, jobs);
    ASSERT_EQ(direct.size(), merged.size());
    for (std::size_t j = 0; j < direct.size(); ++j)
      EXPECT_TRUE(same_stats(direct[j], merged[j]))
          << "job=" << j << " threads=" << threads;
  }
}

}  // namespace
}  // namespace vab
