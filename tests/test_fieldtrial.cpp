// Complete waveform-level inventory exchanges: downlink PIE through the
// water, node wake-up + MAC, FM0 backscatter back, reader decode.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/fieldtrial.hpp"

namespace vab::core {
namespace {

piezo::BvdModel transducer() {
  return piezo::BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
}

struct Rig {
  sim::Scenario scenario;
  VabReader reader;
  VabNode node;

  static Rig make(double range_m, std::uint8_t addr = 4) {
    sim::Scenario s = sim::vab_river_scenario();
    s.range_m = range_m;
    s.env.fading_sigma_db = 0.0;
    ReaderConfig rc;
    rc.phy = s.phy;
    NodeConfig nc;
    nc.address = addr;
    nc.phy = s.phy;
    nc.array = s.node.array;
    return Rig{s, VabReader(rc), VabNode(nc, transducer())};
  }
};

TEST(FieldTrial, FullExchangeAtMediumRange) {
  Rig rig = Rig::make(60.0);
  rig.node.set_sensor_reading({16.5, 150.0, 2800});
  common::Rng rng(5);
  FieldTrial trial(rig.scenario, rng);
  const auto res = trial.run(rig.reader, rig.node);
  EXPECT_TRUE(res.node_woke);
  ASSERT_TRUE(res.downlink_decoded);
  ASSERT_TRUE(res.uplink_synced);
  ASSERT_TRUE(res.frame_ok);
  ASSERT_TRUE(res.reading.has_value());
  EXPECT_NEAR(res.reading->temperature_c, 16.5, net::kTempResolutionC);
  EXPECT_GT(res.downlink_spl_at_node_db, 140.0);
}

TEST(FieldTrial, WorksAtLongRange) {
  Rig rig = Rig::make(200.0);
  rig.node.set_sensor_reading({8.75, 310.0, 2500});
  common::Rng rng(6);
  FieldTrial trial(rig.scenario, rng);
  const auto res = trial.run(rig.reader, rig.node);
  ASSERT_TRUE(res.downlink_decoded);
  EXPECT_TRUE(res.frame_ok);
}

TEST(FieldTrial, OffAxisNodeStillAnswers) {
  Rig rig = Rig::make(80.0);
  rig.scenario.node.orientation_rad = common::deg_to_rad(30.0);
  common::Rng rng(7);
  FieldTrial trial(rig.scenario, rng);
  const auto res = trial.run(rig.reader, rig.node);
  EXPECT_TRUE(res.downlink_decoded);
  EXPECT_TRUE(res.frame_ok);
}

TEST(FieldTrial, ReaderStatsUpdated) {
  Rig rig = Rig::make(50.0);
  common::Rng rng(8);
  FieldTrial trial(rig.scenario, rng);
  const auto res = trial.run(rig.reader, rig.node);
  ASSERT_TRUE(res.frame_ok);
  EXPECT_EQ(rig.reader.mac().stats().at(rig.node.address()).delivered, 1u);
}

TEST(FieldTrial, DownlinkFailsWhenNoiseSwampsEnvelope) {
  // If the ambient noise buries the carrier at the node, the envelope
  // detector cannot parse the query and the node stays silent
  // (fail-silent, not fail-garbage).
  Rig rig = Rig::make(500.0);
  rig.scenario.env.noise.site_floor_db = 120.0;  // pathological site
  rig.scenario.env.multipath.max_order = 0;
  common::Rng rng(9);
  FieldTrial trial(rig.scenario, rng);
  const auto res = trial.run(rig.reader, rig.node);
  EXPECT_FALSE(res.downlink_decoded);
  EXPECT_FALSE(res.frame_ok);
}

}  // namespace
}  // namespace vab::core
