// MUST NOT COMPILE: leaving the unit system must spell .raw() — no implicit
// narrowing back to double, or interior math could cross domains unnoticed.
#include "common/units.hpp"

int main() {
  vab::common::Meters range{1500.0};
  double r = range;  // implicit Meters -> double
  return static_cast<int>(r);
}
