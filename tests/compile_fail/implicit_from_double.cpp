// MUST NOT COMPILE: a raw double cannot implicitly become a unit quantity.
// If this file ever compiles, the explicit-constructor guarantee is gone and
// every call site can silently pass the wrong domain again.
#include "common/units.hpp"

double link_margin(vab::common::Db gain) { return gain.raw(); }

int main() {
  return static_cast<int>(link_margin(6.0));  // implicit double -> Db
}
