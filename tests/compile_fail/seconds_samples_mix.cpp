// MUST NOT COMPILE: Seconds and SampleCount only interconvert through the
// named rounding-mode functions (samples_floor/ceil/round, duration_of);
// there is no arithmetic that treats a duration as a sample index.
#include "common/units.hpp"

int main() {
  vab::common::Seconds dwell{0.25};
  vab::common::SampleCount n{12000};
  auto sum = dwell + n;  // duration + sample index
  return static_cast<int>(sum.raw());
}
