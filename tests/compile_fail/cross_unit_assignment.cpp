// MUST NOT COMPILE: distinct units never interconvert, even when both wrap a
// double on the dB scale (a level is not an SNR operating point).
#include "common/units.hpp"

int main() {
  vab::common::Db gain{6.0};
  vab::common::SnrDb snr = gain;  // cross-unit assignment
  return static_cast<int>(snr.raw());
}
