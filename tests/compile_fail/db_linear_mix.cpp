// MUST NOT COMPILE: no operator crosses the dB/linear boundary implicitly.
// Adding a dB gain to a linear SNR is the exact bug class the layer exists
// to kill; the only legal spelling converts first: snr.to_db() + gain.
#include "common/units.hpp"

int main() {
  vab::common::SnrLinear snr{100.0};
  vab::common::Db gain{3.0};
  auto mixed = snr + gain;  // dB applied on the linear scale
  return static_cast<int>(mixed.raw());
}
