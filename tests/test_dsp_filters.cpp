// FIR/IIR design and filtering, windows, resampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/resample.hpp"
#include "dsp/window.hpp"

namespace vab::dsp {
namespace {

TEST(Window, BasicProperties) {
  for (auto type : {WindowType::kHann, WindowType::kHamming, WindowType::kBlackman,
                    WindowType::kKaiser}) {
    const rvec w = make_window(type, 65);
    ASSERT_EQ(w.size(), 65u);
    // Symmetric and peaked at the center.
    for (std::size_t i = 0; i < w.size(); ++i)
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    EXPECT_NEAR(w[32], type == WindowType::kHamming ? 1.0 : 1.0, 1e-9);
  }
}

TEST(Window, BesselI0KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658, 1e-6);
  EXPECT_NEAR(bessel_i0(5.0), 27.239872, 1e-4);
}

TEST(Fir, LowpassPassesAndStops) {
  const double fs = 96000.0;
  const rvec h = design_lowpass(2000.0, fs, 127);
  EXPECT_NEAR(fir_response_at(h, 100.0, fs), 1.0, 0.01);
  EXPECT_NEAR(fir_response_at(h, 1000.0, fs), 1.0, 0.05);
  EXPECT_LT(fir_response_at(h, 8000.0, fs), 0.01);
}

TEST(Fir, KaiserDeepStopband) {
  const double fs = 96000.0;
  const rvec h = design_lowpass(2500.0, fs, 255, WindowType::kKaiser, 12.0);
  // The -2fc image at 37 kHz must be crushed (see the modem design note).
  EXPECT_LT(fir_response_at(h, 37000.0, fs), 3e-5);
}

TEST(Fir, HighpassComplement) {
  const double fs = 48000.0;
  const rvec h = design_highpass(1000.0, fs, 101);
  EXPECT_LT(fir_response_at(h, 50.0, fs), 0.02);
  EXPECT_NEAR(fir_response_at(h, 10000.0, fs), 1.0, 0.02);
}

TEST(Fir, BandpassSelects) {
  const double fs = 96000.0;
  const rvec h = design_bandpass(16000.0, 21000.0, fs, 255);
  EXPECT_NEAR(fir_response_at(h, 18500.0, fs), 1.0, 0.05);
  EXPECT_LT(fir_response_at(h, 5000.0, fs), 0.01);
  EXPECT_LT(fir_response_at(h, 40000.0, fs), 0.01);
}

TEST(Fir, BandstopRejectsCenter) {
  const double fs = 96000.0;
  const rvec h = design_bandstop(18000.0, 19000.0, fs, 255);
  EXPECT_LT(fir_response_at(h, 18500.0, fs), 0.05);
  EXPECT_NEAR(fir_response_at(h, 5000.0, fs), 1.0, 0.03);
}

TEST(Fir, StreamingMatchesBatchAndResets) {
  common::Rng rng(1);
  const rvec h = design_lowpass(4000.0, 48000.0, 31);
  FirFilter f1(h), f2(h);
  rvec x(200);
  for (auto& v : x) v = rng.gaussian();
  const rvec batch = f1.process(x);
  // Chunked processing must match.
  rvec chunked;
  for (std::size_t i = 0; i < x.size(); i += 17) {
    const rvec part(x.begin() + static_cast<std::ptrdiff_t>(i),
                    x.begin() + static_cast<std::ptrdiff_t>(std::min(i + 17, x.size())));
    const rvec y = f2.process(part);
    chunked.insert(chunked.end(), y.begin(), y.end());
  }
  ASSERT_EQ(batch.size(), chunked.size());
  for (std::size_t i = 0; i < batch.size(); ++i) EXPECT_NEAR(batch[i], chunked[i], 1e-12);
  f2.reset();
  EXPECT_NEAR(f2.process(1.0), h[0], 1e-12);
}

TEST(Fir, InvalidDesignThrows) {
  EXPECT_THROW(design_lowpass(0.0, 48000.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(30000.0, 48000.0, 31), std::invalid_argument);
  EXPECT_THROW(design_bandpass(5000.0, 1000.0, 48000.0, 31), std::invalid_argument);
  EXPECT_THROW(FirFilter(rvec{}), std::invalid_argument);
}

TEST(Biquad, LowpassResponse) {
  const double fs = 48000.0;
  Biquad lp = Biquad::lowpass(1000.0, fs);
  EXPECT_NEAR(lp.response_at(10.0, fs), 1.0, 0.01);
  EXPECT_NEAR(lp.response_at(1000.0, fs), 0.7071, 0.02);
  EXPECT_LT(lp.response_at(20000.0, fs), 0.01);
}

TEST(Biquad, NotchKillsCenterOnly) {
  const double fs = 96000.0;
  Biquad n = Biquad::notch(18500.0, fs, 30.0);
  EXPECT_LT(n.response_at(18500.0, fs), 1e-6);
  EXPECT_NEAR(n.response_at(17000.0, fs), 1.0, 0.05);
  EXPECT_NEAR(n.response_at(20000.0, fs), 1.0, 0.05);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  const double fs = 96000.0;
  Biquad bp = Biquad::bandpass(18500.0, fs, 10.0);
  EXPECT_NEAR(bp.response_at(18500.0, fs), 1.0, 0.02);
  EXPECT_LT(bp.response_at(10000.0, fs), 0.25);
}

TEST(Biquad, CascadeAndReset) {
  const double fs = 48000.0;
  BiquadCascade cas;
  cas.push(Biquad::lowpass(2000.0, fs));
  cas.push(Biquad::lowpass(2000.0, fs));
  EXPECT_EQ(cas.size(), 2u);
  // Two cascaded LPFs attenuate twice as much in dB.
  const double single = Biquad::lowpass(2000.0, fs).response_at(8000.0, fs);
  rvec impulse(512, 0.0);
  impulse[0] = 1.0;
  const rvec h = cas.process(impulse);
  // Frequency response of cascade at 8 kHz from the impulse response.
  cplx acc{};
  for (std::size_t n = 0; n < h.size(); ++n)
    acc += h[n] *
           std::exp(cplx{0.0, -common::kTwoPi * 8000.0 * static_cast<double>(n) / fs});
  EXPECT_NEAR(std::abs(acc), single * single, 0.01);
}

TEST(DcBlocker, RemovesDcKeepsSignal) {
  DcBlocker dc(0.995);
  double out = 0.0;
  for (int i = 0; i < 5000; ++i) out = dc.process(1.0);
  EXPECT_NEAR(out, 0.0, 1e-3);
}

TEST(OnePole, StepResponseTimeConstant) {
  const double fs = 1000.0;
  OnePole lp(10.0, fs);
  // After one time constant (fs / (2 pi fc) samples) the step reaches ~63%.
  const int tau = static_cast<int>(fs / (common::kTwoPi * 10.0));
  double y = 0.0;
  for (int i = 0; i < tau; ++i) y = lp.process(1.0);
  EXPECT_NEAR(y, 0.63, 0.05);
}

TEST(Resample, DecimateKeepsLowFrequency) {
  const double fs = 96000.0;
  const rvec x = make_tone(500.0, fs, 9600);
  const rvec y = decimate(x, 8);
  ASSERT_NEAR(static_cast<double>(y.size()), 1200.0, 2.0);
  // Tone RMS preserved (0.707 for unit sine), ignoring filter edges.
  double e = 0.0;
  for (std::size_t i = 200; i < y.size(); ++i) e += y[i] * y[i];
  EXPECT_NEAR(std::sqrt(e / static_cast<double>(y.size() - 200)), 0.707, 0.03);
}

TEST(Resample, LinearRatioAndValues) {
  rvec x{0.0, 1.0, 2.0, 3.0, 4.0};
  const rvec y = resample_linear(x, 1.0, 2.0);
  ASSERT_GE(y.size(), 8u);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[4], 2.0, 1e-12);
}

TEST(Resample, SampleAtClampsEnds) {
  rvec x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sample_at(x, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(sample_at(x, 10.0), 3.0);
  EXPECT_NEAR(sample_at(x, 0.5), 1.5, 1e-12);
}

TEST(Nco, PhaseContinuityAcrossChunks) {
  Nco a(18500.0, 96000.0);
  rvec whole(100);
  for (auto& v : whole) v = a.next_cos();
  Nco b(18500.0, 96000.0);
  for (int i = 0; i < 50; ++i) b.next_cos();
  for (int i = 50; i < 100; ++i)
    EXPECT_NEAR(b.next_cos(), whole[static_cast<std::size_t>(i)], 1e-12);
}

TEST(Mixer, UpDownRoundTripRecoversBaseband) {
  const double fs = 96000.0;
  common::Rng rng(2);
  // Slow complex baseband.
  cvec bbin(4000);
  for (std::size_t i = 0; i < bbin.size(); ++i)
    bbin[i] = cplx{std::cos(0.002 * static_cast<double>(i)), 0.3};
  const rvec pass = upconvert(bbin, 18500.0, fs);
  cvec bbout = downconvert(pass, 18500.0, fs);
  FirFilter lp(design_lowpass(3000.0, fs, 127));
  bbout = lp.process(bbout);
  // Downconversion halves the amplitude (image removed by LPF).
  for (std::size_t i = 500; i < 3500; i += 100)
    EXPECT_NEAR(std::abs(2.0 * bbout[i] - bbin[i - 63]), 0.0, 0.05);
}

}  // namespace
}  // namespace vab::dsp
