// CRC, Hamming FEC, interleaving, bit packing, BER formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/ber.hpp"
#include "phy/coding.hpp"

namespace vab::phy {
namespace {

TEST(Bits, PackUnpackRoundTrip) {
  const bytes data{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF};
  EXPECT_EQ(bytes_from_bits(bits_from_bytes(data)), data);
  EXPECT_THROW(bytes_from_bits(bitvec(7, 1)), std::invalid_argument);
}

TEST(Bits, MsbFirstOrder) {
  const bitvec bits = bits_from_bytes({0x80});
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0);
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const bytes msg{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(msg), 0x29B1);
}

TEST(Crc16, DetectsCorruption) {
  common::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    bytes msg(16);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    bytes wire = append_crc(msg);
    bytes out;
    ASSERT_TRUE(check_and_strip_crc(wire, out));
    EXPECT_EQ(out, msg);
    // Flip one random bit anywhere in the frame.
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long>(wire.size()) - 1));
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(check_and_strip_crc(wire, out)) << "trial " << trial;
  }
}

TEST(Crc16, ShortInputRejected) {
  bytes out;
  EXPECT_FALSE(check_and_strip_crc({0x01}, out));
}

TEST(Hamming, RoundTripClean) {
  common::Rng rng(2);
  const bitvec data = rng.random_bits(64);
  std::size_t corrected = 0;
  EXPECT_EQ(hamming74_decode(hamming74_encode(data), corrected), data);
  EXPECT_EQ(corrected, 0u);
}

TEST(Hamming, CorrectsAnySingleBitErrorPerBlock) {
  common::Rng rng(3);
  const bitvec data = rng.random_bits(4);
  const bitvec code = hamming74_encode(data);
  for (std::size_t flip = 0; flip < 7; ++flip) {
    bitvec corrupted = code;
    corrupted[flip] ^= 1;
    std::size_t corrected = 0;
    EXPECT_EQ(hamming74_decode(corrupted, corrected), data) << "flip " << flip;
    EXPECT_EQ(corrected, 1u);
  }
}

TEST(Hamming, DoubleErrorNotCorrectable) {
  const bitvec data{1, 0, 1, 1};
  bitvec code = hamming74_encode(data);
  code[0] ^= 1;
  code[3] ^= 1;
  std::size_t corrected = 0;
  EXPECT_NE(hamming74_decode(code, corrected), data);
}

TEST(Hamming, RateIs47) {
  EXPECT_EQ(hamming74_encode(bitvec(40, 0)).size(), 70u);
  EXPECT_THROW(hamming74_encode(bitvec(3, 0)), std::invalid_argument);
}

TEST(Interleave, RoundTrip) {
  common::Rng rng(4);
  const bitvec data = rng.random_bits(48);
  EXPECT_EQ(deinterleave(interleave(data, 6, 8), 6, 8), data);
  EXPECT_THROW(interleave(data, 5, 8), std::invalid_argument);
}

TEST(Interleave, SpreadsBurst) {
  // A burst of 4 consecutive errors lands in 4 different rows after
  // deinterleaving, so Hamming(7,4) can fix all of them.
  bitvec data(7 * 4, 0);
  bitvec inter = interleave(data, 4, 7);
  for (std::size_t i = 8; i < 12; ++i) inter[i] ^= 1;  // burst
  const bitvec deinter = deinterleave(inter, 4, 7);
  // Count errors per 7-bit block.
  for (std::size_t block = 0; block < 4; ++block) {
    std::size_t errs = 0;
    for (std::size_t i = 0; i < 7; ++i) errs += deinter[block * 7 + i];
    EXPECT_LE(errs, 1u) << "block " << block;
  }
}

TEST(Ber, QFunctionReference) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(q_function(3.09), 1e-3, 1e-4);
}

TEST(Ber, ModulationOrdering) {
  // At the same Eb/N0, antipodal < coherent OOK < noncoherent OOK.
  for (double ebn0_db : {4.0, 8.0, 12.0}) {
    const double g = std::pow(10.0, ebn0_db / 10.0);
    EXPECT_LT(ber_bpsk(g), ber_ook_coherent(g));
    EXPECT_LT(ber_ook_coherent(g), ber_ook_noncoherent(g) + 1e-12);
  }
}

TEST(Ber, Fm0RequiresAbout5dBForMinus3) {
  // Q(sqrt(2 g)) = 1e-3 at g ~ 4.77 (6.8 dB).
  const double g = std::pow(10.0, 6.8 / 10.0);
  EXPECT_NEAR(ber_fm0(g), 1e-3, 3e-4);
}

TEST(Ber, PacketErrorRate) {
  EXPECT_NEAR(packet_error_rate(0.0, 100), 0.0, 1e-12);
  EXPECT_NEAR(packet_error_rate(1e-3, 100), 1.0 - std::pow(0.999, 100), 1e-12);
  EXPECT_NEAR(packet_error_rate(1.0, 10), 1.0, 1e-12);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance({1, 0, 1}, {1, 1, 1}), 1u);
  EXPECT_THROW(hamming_distance({1}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace vab::phy
