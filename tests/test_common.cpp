// Units, RNG, statistics, tables and config parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/config.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace vab::common {
namespace {

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(power_ratio_from_db(db_from_power_ratio(123.4)), 123.4, 1e-9);
  EXPECT_NEAR(amplitude_ratio_from_db(db_from_amplitude_ratio(0.07)), 0.07, 1e-12);
  EXPECT_DOUBLE_EQ(db_from_power_ratio(100.0), 20.0);
  EXPECT_DOUBLE_EQ(db_from_amplitude_ratio(10.0), 20.0);
}

TEST(Units, SplReference) {
  // 1 uPa rms is 0 dB re 1 uPa by definition.
  EXPECT_NEAR(spl_from_pressure(1e-6), 0.0, 1e-9);
  EXPECT_NEAR(pressure_from_spl(120.0), 1.0, 1e-9);  // 120 dB re 1 uPa = 1 Pa
}

TEST(Units, WavelengthAt18p5kHz) {
  EXPECT_NEAR(wavelength(18500.0, 1500.0), 0.0811, 1e-4);
  EXPECT_NEAR(wavenumber(18500.0, 1500.0) * wavelength(18500.0, 1500.0), kTwoPi, 1e-9);
}

TEST(Units, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(-3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ChildStreamsDiffer) {
  Rng parent(7);
  Rng c0 = parent.child(0);
  Rng c1 = parent.child(1);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (c0.uniform() == c1.uniform()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildSeedsCollisionFree) {
  // The derivation contract (rng.hpp): child seeds are double-mixed, so a
  // large family of children, grandchildren and sibling-parent children
  // must all have pairwise-distinct seeds.
  std::set<std::uint64_t> seeds;
  std::size_t produced = 0;
  for (std::uint64_t p = 0; p < 8; ++p) {
    Rng parent(p);
    for (std::uint64_t i = 0; i < 64; ++i) {
      const Rng c = parent.child(i);
      seeds.insert(c.seed());
      ++produced;
      for (std::uint64_t j = 0; j < 8; ++j) {
        seeds.insert(c.child(j).seed());
        ++produced;
      }
    }
  }
  EXPECT_EQ(seeds.size(), produced);
}

TEST(Rng, GrandchildStreamsDecorrelated) {
  // child(i).child(j) grid: take the first uniform draw from each
  // grandchild stream and chi-squared-test the pooled sample against
  // U(0,1). Structural correlation between derived streams (the old
  // lattice hazard) concentrates mass in a few bins and blows the
  // statistic up by orders of magnitude.
  constexpr int kI = 48, kJ = 48, kBins = 32;
  constexpr double kN = kI * kJ;
  Rng master(0x600dULL);
  int counts[kBins] = {};
  for (int i = 0; i < kI; ++i) {
    const Rng c = master.child(static_cast<std::uint64_t>(i));
    for (int j = 0; j < kJ; ++j) {
      Rng g = c.child(static_cast<std::uint64_t>(j));
      const double u = g.uniform();
      ASSERT_GE(u, 0.0);
      ASSERT_LT(u, 1.0);
      ++counts[static_cast<int>(u * kBins)];
    }
  }
  const double expected = kN / kBins;
  double chi2 = 0.0;
  for (int b = 0; b < kBins; ++b) {
    const double d = counts[b] - expected;
    chi2 += d * d / expected;
  }
  // 31 degrees of freedom: mean 31, stddev ~7.9. 99.9th percentile ~= 61;
  // allow a generous margin so the test only fires on structural defects.
  EXPECT_LT(chi2, 70.0);
}

TEST(Rng, ChildIsPureAndDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.child(0);
  (void)a.child(1);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  // Same stream index always derives the same child.
  Rng c1 = a.child(5), c2 = a.child(5);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(4);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(rng.complex_gaussian(2.0));
  EXPECT_NEAR(acc / n, 2.0, 0.1);
}

TEST(Stats, PercentileAndMedian) {
  rvec v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(5);
  rvec v;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    v.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(v), 1e-12);
  EXPECT_NEAR(s.variance(), variance(v), 1e-9);
}

TEST(Stats, WilsonWidthShrinksWithTrials) {
  EXPECT_GT(wilson_half_width(5, 100), wilson_half_width(50, 1000));
  EXPECT_LT(wilson_half_width(0, 1000000), 1e-4);
}

TEST(Stats, SpacingHelpers) {
  const rvec lin = linspace(0.0, 10.0, 11);
  EXPECT_EQ(lin.size(), 11u);
  EXPECT_DOUBLE_EQ(lin[3], 3.0);
  const rvec lg = logspace(1.0, 1000.0, 4);
  EXPECT_NEAR(lg[1], 10.0, 1e-9);
  EXPECT_NEAR(lg[2], 100.0, 1e-9);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"range_m", "ber"});
  t.add_row({"100", Table::sci(1.5e-3)});
  t.add_row({"300", Table::sci(9.9e-4)});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("range_m,ber"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Config, ParsesArgsAndTypes) {
  const char* argv[] = {"prog", "range_m=150", "verbose=true", "name=test"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_DOUBLE_EQ(cfg.get_double("range_m", 0.0), 150.0);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_EQ(cfg.get_string("name", ""), "test");
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
}

TEST(Config, RejectsMalformed) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
  Config c = Config::from_string("a=notanumber\n# comment\nb = 2\n");
  EXPECT_EQ(c.get_int("b", 0), 2);
  EXPECT_THROW(c.get_double("a", 0.0), std::invalid_argument);
}

TEST(Config, FromStringComments) {
  const Config c = Config::from_string("x=3.5 # trailing\n\n  y=hello\n");
  EXPECT_DOUBLE_EQ(c.get_double("x", 0.0), 3.5);
  EXPECT_EQ(c.get_string("y", ""), "hello");
}

TEST(Linalg, SolvesKnownSystem) {
  CMatrix a(2, 2);
  a.at(0, 0) = {2, 0};
  a.at(0, 1) = {1, 0};
  a.at(1, 0) = {1, 0};
  a.at(1, 1) = {3, 0};
  const cvec x = solve_linear(a, {{5, 0}, {10, 0}});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 3.0, 1e-12);
}

TEST(Linalg, ComplexLeastSquaresRecoversCoefficients) {
  // y = (1+2i) x0 + (3-1i) x1, overdetermined.
  Rng rng(9);
  CMatrix a(20, 2);
  cvec b(20);
  const cplx c0{1, 2}, c1{3, -1};
  for (std::size_t r = 0; r < 20; ++r) {
    a.at(r, 0) = rng.complex_gaussian();
    a.at(r, 1) = rng.complex_gaussian();
    b[r] = c0 * a.at(r, 0) + c1 * a.at(r, 1);
  }
  const cvec x = solve_least_squares(a, b);
  EXPECT_NEAR(std::abs(x[0] - c0), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(x[1] - c1), 0.0, 1e-9);
}

TEST(Linalg, SingularThrows) {
  CMatrix a(2, 2);
  a.at(0, 0) = {1, 0};
  a.at(0, 1) = {2, 0};
  a.at(1, 0) = {2, 0};
  a.at(1, 1) = {4, 0};
  EXPECT_THROW(solve_linear(a, {{1, 0}, {2, 0}}), std::runtime_error);
}

}  // namespace
}  // namespace vab::common
