// Modem chain: modulator waveform structure, demodulation through ideal and
// impaired channels, SIC behaviour, sync robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/mixer.hpp"
#include "phy/coding.hpp"
#include "phy/fm0.hpp"
#include "phy/modem.hpp"

namespace vab {
namespace {

phy::PhyConfig test_config(double bitrate = 500.0) {
  phy::PhyConfig cfg;
  cfg.fs_hz = 96000.0;
  cfg.carrier_hz = 18500.0;
  cfg.bitrate_bps = bitrate;
  return cfg;
}

// Synthesizes the passband signal a reader would capture: carrier times a
// reflection coefficient that follows the switch waveform, plus a strong
// unmodulated carrier (the blast), plus white noise.
rvec synthesize_capture(const phy::PhyConfig& cfg, const bitvec& payload,
                        double mod_amp, double blast_amp, double noise_rms,
                        common::Rng& rng, bool polarity = false,
                        double extra_delay_samples = 0.0) {
  phy::BackscatterModulator mod(cfg);
  const bitvec states = mod.switch_waveform(payload);
  const bitvec mask = mod.active_mask(payload.size());
  const auto delay = static_cast<std::size_t>(extra_delay_samples);
  const std::size_t n = states.size() + delay + 512;
  rvec x = dsp::make_tone(cfg.carrier_hz, cfg.fs_hz, n);
  for (std::size_t i = 0; i < n; ++i) {
    double coef = blast_amp;
    if (i >= delay && i - delay < states.size() && mask[i - delay]) {
      const double level = polarity ? (states[i - delay] ? 1.0 : -1.0)
                                    : (states[i - delay] ? 1.0 : 0.0);
      coef += mod_amp * level;
    }
    x[i] *= coef;
    x[i] += noise_rms * rng.gaussian();
  }
  return x;
}

TEST(Modulator, WaveformLengthMatchesChipCount) {
  const auto cfg = test_config();
  phy::BackscatterModulator mod(cfg);
  const bitvec payload(40, 1);
  const bitvec wave = mod.switch_waveform(payload);
  EXPECT_EQ(wave.size(), mod.waveform_length(payload.size()));
  const double spc = cfg.fs_hz / cfg.chip_rate_hz();
  const std::size_t chips = 2 * phy::BackscatterModulator::kIdleChips +
                            phy::BackscatterModulator::kSettleChips +
                            phy::fm0_preamble_chips().size() + 2 * payload.size();
  EXPECT_NEAR(static_cast<double>(wave.size()), static_cast<double>(chips) * spc,
              spc + 1);
}

TEST(Modulator, IdlePaddingIsAbsorptive) {
  const auto cfg = test_config();
  phy::BackscatterModulator mod(cfg);
  const bitvec wave = mod.switch_waveform(bitvec(8, 1));
  const bitvec mask = mod.active_mask(8);
  ASSERT_EQ(wave.size(), mask.size());
  // First and last idle chips: state 0, mask 0.
  EXPECT_EQ(wave.front(), 0);
  EXPECT_EQ(mask.front(), 0);
  EXPECT_EQ(mask.back(), 0);
}

TEST(Modulator, ActiveMaskCoversPreambleAndData) {
  const auto cfg = test_config();
  phy::BackscatterModulator mod(cfg);
  const std::size_t n_bits = 16;
  const bitvec mask = mod.active_mask(n_bits);
  std::size_t active = 0;
  for (auto m : mask) active += m;
  const double spc = cfg.fs_hz / cfg.chip_rate_hz();
  const double expect_chips =
      static_cast<double>(phy::BackscatterModulator::kSettleChips +
                          phy::fm0_preamble_chips().size() + 2 * n_bits);
  EXPECT_NEAR(static_cast<double>(active), expect_chips * spc, 2 * spc);
}

TEST(Demodulator, DecodesCleanOnOffCapture) {
  const auto cfg = test_config();
  common::Rng rng(1);
  const bitvec payload = rng.random_bits(64);
  const rvec x = synthesize_capture(cfg, payload, 0.1, 1.0, 0.0, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  EXPECT_EQ(res.bits, payload);
  EXPECT_GT(res.corr_peak, 0.7);
}

TEST(Demodulator, DecodesCleanPolarityCapture) {
  const auto cfg = test_config();
  common::Rng rng(2);
  const bitvec payload = rng.random_bits(64);
  const rvec x = synthesize_capture(cfg, payload, 0.1, 1.0, 0.0, rng, true);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  EXPECT_EQ(res.bits, payload);
}

TEST(Demodulator, DecodesWithStrongCarrierBlast) {
  const auto cfg = test_config();
  common::Rng rng(3);
  const bitvec payload = rng.random_bits(48);
  // Blast 40 dB above the modulated component.
  const rvec x = synthesize_capture(cfg, payload, 0.01, 1.0, 0.0, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  EXPECT_EQ(res.bits, payload);
  EXPECT_GT(res.sic_suppression_db, 20.0);
}

TEST(Demodulator, DecodesWithUnknownDelay) {
  const auto cfg = test_config();
  common::Rng rng(4);
  const bitvec payload = rng.random_bits(32);
  const rvec x = synthesize_capture(cfg, payload, 0.1, 1.0, 0.0, rng, false, 7777.0);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  EXPECT_EQ(res.bits, payload);
}

TEST(Demodulator, DecodesInModerateNoise) {
  const auto cfg = test_config();
  common::Rng rng(5);
  const bitvec payload = rng.random_bits(64);
  // Modulated component amplitude 0.05 on carrier 1.0; noise rms 0.02.
  const rvec x = synthesize_capture(cfg, payload, 0.05, 1.0, 0.02, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  const std::size_t errors = phy::hamming_distance(res.bits, payload);
  EXPECT_LE(errors, 2u);
}

TEST(Demodulator, NoSyncOnNoiseOnly) {
  const auto cfg = test_config();
  common::Rng rng(6);
  rvec x = dsp::make_tone(cfg.carrier_hz, cfg.fs_hz, 48000);
  for (auto& v : x) v += 0.05 * rng.gaussian();
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, 32);
  EXPECT_FALSE(res.sync_found);
}

TEST(Demodulator, SnrEstimateTracksNoiseLevel) {
  const auto cfg = test_config();
  common::Rng rng(7);
  const bitvec payload = rng.random_bits(64);
  const rvec clean = synthesize_capture(cfg, payload, 0.1, 1.0, 0.001, rng);
  const rvec noisy = synthesize_capture(cfg, payload, 0.1, 1.0, 0.05, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto r_clean = demod.demodulate(clean, payload.size());
  const auto r_noisy = demod.demodulate(noisy, payload.size());
  ASSERT_TRUE(r_clean.sync_found);
  ASSERT_TRUE(r_noisy.sync_found);
  EXPECT_GT(r_clean.snr_db, r_noisy.snr_db + 6.0);
}

class BitrateSweep : public ::testing::TestWithParam<double> {};

TEST_P(BitrateSweep, RoundTripAtAnyBitrate) {
  const auto cfg = test_config(GetParam());
  common::Rng rng(42);
  const bitvec payload = rng.random_bits(32);
  const rvec x = synthesize_capture(cfg, payload, 0.1, 1.0, 0.0, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found) << "bitrate " << GetParam();
  EXPECT_EQ(res.bits, payload) << "bitrate " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rates, BitrateSweep,
                         ::testing::Values(100.0, 200.0, 500.0, 1000.0, 2000.0));

class UplinkCodeSweep : public ::testing::TestWithParam<phy::UplinkCode> {};

TEST_P(UplinkCodeSweep, RoundTripThroughFullChain) {
  auto cfg = test_config(500.0);
  cfg.uplink_code = GetParam();
  common::Rng rng(77);
  const bitvec payload = rng.random_bits(48);
  const rvec x = synthesize_capture(cfg, payload, 0.05, 1.0, 0.005, rng);
  phy::ReaderDemodulator demod(cfg);
  const auto res = demod.demodulate(x, payload.size());
  ASSERT_TRUE(res.sync_found);
  EXPECT_EQ(res.bits, payload);
}

TEST_P(UplinkCodeSweep, ChipsPerBitDrivesWaveformLength) {
  auto cfg = test_config(500.0);
  cfg.uplink_code = GetParam();
  phy::BackscatterModulator mod(cfg);
  const std::size_t len = mod.waveform_length(32);
  EXPECT_EQ(mod.switch_waveform(bitvec(32, 1)).size(), len);
}

INSTANTIATE_TEST_SUITE_P(Codes, UplinkCodeSweep,
                         ::testing::Values(phy::UplinkCode::kFm0,
                                           phy::UplinkCode::kMiller2,
                                           phy::UplinkCode::kMiller4));

}  // namespace
}  // namespace vab
