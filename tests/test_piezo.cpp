// BVD transducer model, two-port networks, L-match synthesis, load
// modulation and the energy harvester.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "piezo/bvd.hpp"
#include "piezo/harvester.hpp"
#include "piezo/matching.hpp"
#include "piezo/modulator.hpp"
#include "piezo/network.hpp"

namespace vab::piezo {
namespace {

BvdModel test_transducer() {
  return BvdModel::from_resonance(18500.0, 25.0, 0.3, 10e-9, 0.6);
}

TEST(TwoPort, SeriesShuntInputImpedance) {
  const cplx z{50.0, 10.0};
  const cplx expected = z + cplx{100.0, 0.0};
  EXPECT_NEAR(std::abs(series_element(z).input_impedance(cplx{100.0, 0.0}) - expected),
              0.0, 1e-12);
  // Shunt admittance across a load: parallel combination.
  const cplx y{0.01, 0.0};
  const cplx zin = shunt_element(y).input_impedance(cplx{100.0, 0.0});
  EXPECT_NEAR(std::abs(zin - cplx{50.0, 0.0}), 0.0, 1e-9);
}

TEST(TwoPort, CascadeAssociativity) {
  const TwoPort a = series_element(cplx{10.0, 5.0});
  const TwoPort b = shunt_element(cplx{0.002, -0.001});
  const TwoPort c = series_element(cplx{0.0, -20.0});
  const cplx z1 = a.then(b).then(c).input_impedance(cplx{75.0, 0.0});
  const cplx z2 = a.then(b.then(c)).input_impedance(cplx{75.0, 0.0});
  EXPECT_NEAR(std::abs(z1 - z2), 0.0, 1e-9);
}

TEST(TwoPort, LosslessLineQuarterWaveInverts) {
  // A quarter-wave line transforms Z_L to Z0^2 / Z_L.
  const TwoPort line = transmission_line(common::kPi / 2.0, 50.0, 0.0);
  const cplx zin = line.input_impedance(cplx{100.0, 0.0});
  EXPECT_NEAR(zin.real(), 25.0, 1e-6);
  EXPECT_NEAR(zin.imag(), 0.0, 1e-6);
}

TEST(TwoPort, LossyLineAttenuates) {
  const TwoPort line = transmission_line(common::kPi, 50.0, 3.0);
  const cplx gain = line.voltage_gain(cplx{50.0, 0.0});
  EXPECT_NEAR(common::db_from_amplitude_ratio(std::abs(gain)), -3.0, 0.3);
}

TEST(TwoPort, PowerTransferPeaksAtConjugateMatch) {
  const cplx zs{50.0, 30.0};
  EXPECT_NEAR(power_transfer_efficiency(std::conj(zs), zs), 1.0, 1e-12);
  EXPECT_LT(power_transfer_efficiency(cplx{5.0, 0.0}, zs), 0.5);
  EXPECT_NEAR(std::abs(reflection_coefficient(std::conj(zs), zs)), 0.0, 1e-12);
}

TEST(Bvd, ResonancesMatchConstruction) {
  const BvdModel m = test_transducer();
  EXPECT_NEAR(m.series_resonance_hz(), 18500.0, 1.0);
  EXPECT_NEAR(m.k_eff(), 0.3, 1e-6);
  EXPECT_NEAR(m.q_m(), 25.0, 0.01);
  EXPECT_GT(m.parallel_resonance_hz(), m.series_resonance_hz());
}

TEST(Bvd, ImpedanceResistiveMinimumAtSeriesResonance) {
  const BvdModel m = test_transducer();
  const double fs = m.series_resonance_hz();
  // |Z| has a minimum near fs and a maximum near fp.
  const double at_fs = std::abs(m.impedance(fs));
  EXPECT_LT(at_fs, std::abs(m.impedance(fs * 0.9)));
  EXPECT_LT(at_fs, std::abs(m.impedance(fs * 1.1)));
  const double fp = m.parallel_resonance_hz();
  EXPECT_GT(std::abs(m.impedance(fp)), 5.0 * at_fs);
}

TEST(Bvd, CapacitiveFarFromResonance) {
  const BvdModel m = test_transducer();
  // Far below resonance the static capacitance dominates: phase ~ -90 deg.
  const cplx z = m.impedance(1000.0);
  EXPECT_LT(z.imag(), 0.0);
  EXPECT_LT(std::abs(z.real()) / std::abs(z.imag()), 0.05);
}

TEST(Bvd, RejectsBadParameters) {
  EXPECT_THROW(BvdModel::from_resonance(-1.0, 25.0, 0.3, 1e-9), std::invalid_argument);
  EXPECT_THROW(BvdModel::from_resonance(18500.0, 25.0, 1.5, 1e-9), std::invalid_argument);
  BvdParams p;
  p.lm_henries = 0.0;
  EXPECT_THROW(BvdModel{p}, std::invalid_argument);
}

TEST(Matching, LMatchHitsTargetAtDesignFrequency) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  const cplx z_load = m.impedance(f0);
  const auto sec = design_l_match(z_load, 50.0, f0);
  ASSERT_TRUE(sec.has_value());
  const cplx zin = sec->network_at(f0).input_impedance(z_load);
  EXPECT_NEAR(zin.real(), 50.0, 0.5);
  EXPECT_NEAR(zin.imag(), 0.0, 0.5);
}

TEST(Matching, WorksBothDirections) {
  // R_L < R_S and R_L > R_S branches.
  for (const cplx z_load : {cplx{10.0, -40.0}, cplx{300.0, 80.0}}) {
    const auto sec = design_l_match(z_load, 50.0, 20000.0);
    ASSERT_TRUE(sec.has_value());
    const cplx zin = sec->network_at(20000.0).input_impedance(z_load);
    EXPECT_NEAR(zin.real(), 50.0, 0.1) << z_load;
    EXPECT_NEAR(zin.imag(), 0.0, 0.1) << z_load;
  }
}

TEST(Matching, MatchedBeatsUnmatchedAtDesign) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  const MatchedTransducer mt(m, 50.0, f0);
  EXPECT_GT(mt.radiated_fraction(f0), mt.radiated_fraction_unmatched(f0));
  EXPECT_NEAR(mt.radiated_fraction(f0), m.eta_acoustic(), 0.01);
}

TEST(Matching, EfficiencyRollsOffAwayFromDesign) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  const MatchedTransducer mt(m, 50.0, f0);
  EXPECT_GT(mt.radiated_fraction(f0), mt.radiated_fraction(f0 * 1.10));
  EXPECT_GT(mt.radiated_fraction(f0), mt.radiated_fraction(f0 * 0.90));
}

TEST(Modulator, OpenShortNearlyAntipodal) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  const LoadModulator mod(m.impedance(f0));
  const cplx g_open = mod.gamma(LoadState::kOpen, f0);
  const cplx g_short = mod.gamma(LoadState::kShort, f0);
  EXPECT_GT(std::abs(g_open - g_short), 1.0);  // > half of the full 2.0 swing
  EXPECT_GT(mod.modulation_depth(LoadState::kOpen, LoadState::kShort, f0), 0.5);
}

TEST(Modulator, MatchedStateAbsorbs) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  const LoadModulator mod(m.impedance(f0));
  EXPECT_LT(std::abs(mod.gamma(LoadState::kMatched, f0)), 0.05);
}

TEST(Modulator, InsertionLossReducesDepth) {
  const BvdModel m = test_transducer();
  const double f0 = m.series_resonance_hz();
  SwitchModel lossy;
  lossy.insertion_loss_db = 3.0;
  const LoadModulator clean(m.impedance(f0));
  const LoadModulator bad(m.impedance(f0), lossy);
  EXPECT_GT(clean.modulation_depth(LoadState::kOpen, LoadState::kShort, f0),
            bad.modulation_depth(LoadState::kOpen, LoadState::kShort, f0));
}

TEST(Harvester, RectifierKneeBehaviour) {
  RectifierModel r;
  EXPECT_DOUBLE_EQ(rectifier_efficiency(r, 0.1), 0.0);  // below diode drop
  EXPECT_GT(rectifier_efficiency(r, 5.0), 0.9 * r.peak_efficiency);
  EXPECT_LT(rectifier_efficiency(r, 0.4), rectifier_efficiency(r, 2.0));
}

TEST(Harvester, PowerScalesWithIntensity) {
  const BvdModel m = test_transducer();
  EnergyHarvester h({}, m);
  const double p1 = h.available_electrical_power_w(1.0, 18500.0);
  const double p2 = h.available_electrical_power_w(2.0, 18500.0);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);  // intensity ~ pressure^2
}

TEST(Harvester, EnergyNeutralAtHighIncidentPressure) {
  const BvdModel m = test_transducer();
  EnergyHarvester h({}, m);
  PowerBudget b;
  // 165 dB re 1 uPa incident (strong carrier near the reader).
  const double p_strong = common::pressure_from_spl(165.0);
  EXPECT_TRUE(is_energy_neutral(h, b, p_strong, 18500.0, 0.90, 0.05, 0.04, 0.01));
  // 110 dB is far too weak to power even the sleep current.
  const double p_weak = common::pressure_from_spl(110.0);
  EXPECT_FALSE(is_energy_neutral(h, b, p_weak, 18500.0, 0.90, 0.05, 0.04, 0.01));
}

TEST(Harvester, PowerBudgetAccounting) {
  PowerBudget b;
  const double avg = b.average_power_w(0.9, 0.05, 0.04, 0.01);
  EXPECT_GT(avg, b.sleep_w);
  EXPECT_LT(avg, b.mcu_active_w);
  EXPECT_THROW(b.average_power_w(0.9, 0.2, 0.2, 0.2), std::invalid_argument);
  EXPECT_NEAR(energy_per_bit_j(b, 500.0), b.backscatter_w / 500.0, 1e-15);
}

}  // namespace
}  // namespace vab::piezo
