// Absorption, spreading, sound speed and ambient-noise models against
// published reference values; noise synthesis against its own spectral model.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/absorption.hpp"
#include "channel/noise.hpp"
#include "channel/soundspeed.hpp"
#include "channel/spreading.hpp"
#include "common/rng.hpp"
#include "dsp/spectrum.hpp"

namespace vab::channel {
namespace {

TEST(Absorption, ThorpReferencePoints) {
  // Classic Thorp values: ~1 dB/km at 10 kHz, rising steeply after.
  EXPECT_NEAR(thorp_absorption(common::Hz::from_khz(1.0)).raw_per_km(), 0.07, 0.03);
  EXPECT_NEAR(thorp_absorption(common::Hz::from_khz(10.0)).raw_per_km(), 1.0, 0.3);
  EXPECT_NEAR(thorp_absorption(common::Hz::from_khz(18.5)).raw_per_km(), 3.6, 0.5);
  EXPECT_NEAR(thorp_absorption(common::Hz::from_khz(100.0)).raw_per_km(), 36.0, 8.0);
}

TEST(Absorption, MonotonicInFrequency) {
  common::DbPerM prev{0.0};
  for (double f = 1.0; f <= 200.0; f *= 1.5) {
    const common::DbPerM a = thorp_absorption(common::Hz::from_khz(f));
    EXPECT_GT(a.raw(), prev.raw());
    prev = a;
  }
}

TEST(Absorption, FrancoisGarrisonSeawaterNearThorpAtMidFreq) {
  WaterProperties sea;
  sea.temperature_c = 4.0;
  sea.salinity_ppt = 35.0;
  sea.depth_m = 100.0;
  sea.ph = 8.0;
  const double fg =
      francois_garrison_absorption(common::Hz::from_khz(18.5), sea).raw_per_km();
  const double th = thorp_absorption(common::Hz::from_khz(18.5)).raw_per_km();
  EXPECT_NEAR(fg, th, th);  // same order of magnitude
}

TEST(Absorption, FreshwaterMuchLowerThanSeawater) {
  WaterProperties fresh;
  fresh.salinity_ppt = 0.3;
  fresh.temperature_c = 15.0;
  fresh.ph = 7.0;
  WaterProperties sea = fresh;
  sea.salinity_ppt = 35.0;
  sea.ph = 8.0;
  // MgSO4/boric relaxation dominates at 18.5 kHz and needs salt.
  EXPECT_LT(francois_garrison_absorption(common::Hz::from_khz(18.5), fresh).raw(),
            0.5 * francois_garrison_absorption(common::Hz::from_khz(18.5), sea).raw());
}

TEST(Spreading, ModelOrdering) {
  const common::Meters r{500.0};
  EXPECT_LT(spreading_loss(SpreadingModel::kCylindrical, r),
            spreading_loss(SpreadingModel::kPractical, r));
  EXPECT_LT(spreading_loss(SpreadingModel::kPractical, r),
            spreading_loss(SpreadingModel::kSpherical, r));
  EXPECT_NEAR(spreading_loss(SpreadingModel::kSpherical, common::Meters{1000.0}).raw(),
              60.0, 1e-9);
}

TEST(Spreading, ClampedBelowOneMeter) {
  EXPECT_DOUBLE_EQ(spreading_loss(SpreadingModel::kSpherical, common::Meters{0.1}).raw(),
                   0.0);
}

TEST(Spreading, TransmissionLossCombines) {
  const common::Db tl = transmission_loss(common::Hz{18500.0}, common::Meters{1000.0},
                                          SpreadingModel::kSpherical);
  EXPECT_NEAR(tl.raw(), 60.0 + thorp_absorption(common::Hz::from_khz(18.5)).raw_per_km(),
              0.1);
}

TEST(SoundSpeed, MackenzieReference) {
  // Canonical check: T=10 C, S=35 ppt, D=100 m -> ~1490 m/s.
  EXPECT_NEAR(mackenzie_sound_speed(10.0, 35.0, 100.0), 1490.3, 1.5);
}

TEST(SoundSpeed, FreshwaterReference) {
  EXPECT_NEAR(freshwater_sound_speed(20.0), 1482.3, 1.0);
  EXPECT_NEAR(freshwater_sound_speed(0.0), 1402.4, 1.0);
}

TEST(SoundSpeed, ProfileInterpolation) {
  SoundSpeedProfile prof({0.0, 10.0, 50.0}, {1500.0, 1490.0, 1485.0});
  EXPECT_DOUBLE_EQ(prof.at(0.0), 1500.0);
  EXPECT_DOUBLE_EQ(prof.at(5.0), 1495.0);
  EXPECT_DOUBLE_EQ(prof.at(100.0), 1485.0);
  EXPECT_THROW(SoundSpeedProfile({0.0, 0.0}, {1500.0, 1500.0}), std::invalid_argument);
}

TEST(Noise, WindDominatesAtCarrier) {
  NoiseConditions calm{0.2, 1.0, -1000.0};
  NoiseConditions windy{0.2, 15.0, -1000.0};
  EXPECT_GT(ambient_nsd(common::Hz{18500.0}, windy),
            ambient_nsd(common::Hz{18500.0}, calm) + common::Db{5.0});
}

TEST(Noise, ShippingMattersAtLowFrequencyOnly) {
  NoiseConditions quiet{0.1, 5.0, -1000.0};
  NoiseConditions busy{1.0, 5.0, -1000.0};
  const common::Db delta_low =
      ambient_nsd(common::Hz{100.0}, busy) - ambient_nsd(common::Hz{100.0}, quiet);
  const common::Db delta_carrier =
      ambient_nsd(common::Hz{18500.0}, busy) - ambient_nsd(common::Hz{18500.0}, quiet);
  EXPECT_GT(delta_low.raw(), 5.0);
  EXPECT_LT(delta_carrier.raw(), 1.0);
}

TEST(Noise, SiteFloorAddsInPower) {
  NoiseConditions base{0.5, 5.0, -1000.0};
  NoiseConditions floored = base;
  floored.site_floor_db = ambient_nsd(common::Hz{18500.0}, base).raw();  // equal power
  EXPECT_NEAR(ambient_nsd(common::Hz{18500.0}, floored).raw(),
              ambient_nsd(common::Hz{18500.0}, base).raw() + 3.0, 0.1);
}

TEST(Noise, LevelScalesWithBandwidth) {
  NoiseConditions c{};
  const common::Db delta = noise_level(common::Hz{18500.0}, common::Hz{1000.0}, c) -
                           noise_level(common::Hz{18500.0}, common::Hz{100.0}, c);
  EXPECT_NEAR(delta.raw(), 10.0, 1e-9);
}

TEST(Noise, SynthesisMatchesModelSpectrum) {
  common::Rng rng(11);
  NoiseConditions cond{0.5, 6.0, 50.0};
  const double fs = 96000.0;
  const rvec x = synthesize_ambient_noise(1 << 17, common::SampleRateHz{fs}, cond, rng);
  const dsp::Psd psd = dsp::welch_psd(x, fs, 4096);
  // Compare synthesized PSD (Pa^2/Hz -> dB re uPa^2/Hz) to the model at a
  // few frequencies across the band.
  for (double f : {2000.0, 10000.0, 18500.0, 30000.0}) {
    const auto k = static_cast<std::size_t>(f / fs * 4096.0);
    const double measured_db_re_upa = psd.power_db[k] + 120.0;  // Pa^2 -> uPa^2
    EXPECT_NEAR(measured_db_re_upa, ambient_nsd(common::Hz{f}, cond).raw(), 2.5)
        << "f=" << f;
  }
}

TEST(Noise, SynthesisDeterministicPerSeed) {
  NoiseConditions cond{};
  common::Rng a(5), b(5);
  const rvec x = synthesize_ambient_noise(1024, common::SampleRateHz{48000.0}, cond, a);
  const rvec y = synthesize_ambient_noise(1024, common::SampleRateHz{48000.0}, cond, b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

}  // namespace
}  // namespace vab::channel
