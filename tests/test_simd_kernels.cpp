// Bit-identity matrix for the hand-vectorized batch kernels: every kernel,
// dispatched at whatever ISA this binary compiled in, must produce outputs
// byte-identical to the forced width-1 scalar reference — across odd
// lengths, remainder tails, unaligned heads and the public entry points
// that route through the kernels (FIR decimation, correlation, FFT,
// mixers). The comparisons are memcmp, not EXPECT_DOUBLE_EQ: the contract
// is identical bits, not tolerable error.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/simd/simd.hpp"

namespace vab {
namespace {

using dsp::simd::Isa;

// Lengths chosen to hit empty input, sub-width, exactly one vector, one
// vector plus remainder, the 2x-unrolled main loop and long tails.
const std::vector<std::size_t> kLengths = {0,  1,  2,  3,   7,   8,   15,  16,
                                           17, 31, 32, 33,  63,  64,  65,  100,
                                           127, 128, 129, 255, 256, 1000};

cvec random_cvec(common::Rng& rng, std::size_t n) {
  cvec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

rvec random_rvec(common::Rng& rng, std::size_t n) {
  rvec v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

bool bytes_equal(const cvec& a, const cvec& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0);
}

bool bytes_equal(const rvec& a, const rvec& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Runs `fn` once under forced-scalar dispatch and once under the
/// automatically resolved ISA, returning (scalar, dispatched) results.
template <typename Fn>
auto scalar_vs_dispatched(Fn&& fn) {
  EXPECT_TRUE(dsp::simd::force_isa(Isa::kScalar));
  auto scalar = fn();
  dsp::simd::reset_isa();
  auto dispatched = fn();
  return std::make_pair(std::move(scalar), std::move(dispatched));
}

class SimdKernels : public ::testing::Test {
 protected:
  void TearDown() override { dsp::simd::reset_isa(); }
};

TEST_F(SimdKernels, DispatchReportsACoherentIsa) {
  const Isa active = dsp::simd::active_isa();
  EXPECT_STRNE(dsp::simd::isa_name(active), "unknown");
  // The active ISA can never exceed what was compiled in.
  if (dsp::simd::compiled_isa() == Isa::kScalar) {
    EXPECT_EQ(active, Isa::kScalar);
  }
  // Forcing scalar always succeeds and sticks until reset.
  EXPECT_TRUE(dsp::simd::force_isa(Isa::kScalar));
  EXPECT_EQ(dsp::simd::active_isa(), Isa::kScalar);
  dsp::simd::reset_isa();
  EXPECT_EQ(dsp::simd::active_isa(), active);
}

TEST_F(SimdKernels, ForcingUncompiledIsaFails) {
  if (dsp::simd::compiled_isa() != Isa::kAvx2) {
    EXPECT_FALSE(dsp::simd::force_isa(Isa::kAvx2));
  }
  if (dsp::simd::compiled_isa() != Isa::kNeon) {
    EXPECT_FALSE(dsp::simd::force_isa(Isa::kNeon));
  }
}

TEST_F(SimdKernels, FirDecimateMatchesScalarAcrossLengthsTapsAndFactors) {
  common::Rng rng(101);
  for (const std::size_t n : kLengths) {
    const cvec x = random_cvec(rng, n);
    for (const std::size_t n_taps : {std::size_t{1}, std::size_t{5}, std::size_t{255}}) {
      const rvec taps = random_rvec(rng, n_taps);
      for (const std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{24}}) {
        for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
          auto [scalar, simd] = scalar_vs_dispatched([&] {
            cvec out;
            dsp::fir_filter_decimate(taps, x, m, offset, out);
            return out;
          });
          EXPECT_TRUE(bytes_equal(scalar, simd))
              << "n=" << n << " taps=" << n_taps << " m=" << m
              << " offset=" << offset;
        }
      }
    }
  }
}

TEST_F(SimdKernels, SlidingCorrelateMatchesScalarNaiveAndFftPaths) {
  common::Rng rng(202);
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;
    const cvec sig = random_cvec(rng, n);
    for (const std::size_t ref_len :
         {std::size_t{1}, std::size_t{3}, std::size_t{16}, std::size_t{33}}) {
      if (ref_len > n) continue;
      const cvec ref = random_cvec(rng, ref_len);
      auto [scalar_naive, simd_naive] = scalar_vs_dispatched(
          [&] { return dsp::sliding_correlate_naive(sig, ref); });
      EXPECT_TRUE(bytes_equal(scalar_naive, simd_naive))
          << "naive n=" << n << " ref=" << ref_len;
      auto [scalar_auto, simd_auto] =
          scalar_vs_dispatched([&] { return dsp::sliding_correlate(sig, ref); });
      EXPECT_TRUE(bytes_equal(scalar_auto, simd_auto))
          << "auto n=" << n << " ref=" << ref_len;
    }
  }
}

TEST_F(SimdKernels, UnalignedHeadsProduceIdenticalBits) {
  // Walk the signal pointer across every 16-byte phase so AVX2's unaligned
  // loads cover all head alignments.
  common::Rng rng(303);
  const cvec sig = random_cvec(rng, 70);
  const cvec ref = random_cvec(rng, 9);
  for (std::size_t head = 0; head < 4; ++head) {
    const cvec view(sig.begin() + static_cast<std::ptrdiff_t>(head), sig.end());
    auto [scalar, simd] =
        scalar_vs_dispatched([&] { return dsp::sliding_correlate_naive(view, ref); });
    EXPECT_TRUE(bytes_equal(scalar, simd)) << "head=" << head;
  }
}

TEST_F(SimdKernels, FftForwardInverseAndConvolveMatchScalar) {
  common::Rng rng(404);
  for (std::size_t n = 2; n <= 4096; n <<= 1) {
    const cvec x = random_cvec(rng, n);
    auto [scalar_f, simd_f] = scalar_vs_dispatched([&] { return dsp::fft(x); });
    EXPECT_TRUE(bytes_equal(scalar_f, simd_f)) << "fft n=" << n;
    auto [scalar_i, simd_i] = scalar_vs_dispatched([&] { return dsp::ifft(x); });
    EXPECT_TRUE(bytes_equal(scalar_i, simd_i)) << "ifft n=" << n;
  }
  const rvec a = random_rvec(rng, 100);
  const rvec b = random_rvec(rng, 37);
  auto [scalar_c, simd_c] =
      scalar_vs_dispatched([&] { return dsp::fft_convolve(a, b); });
  EXPECT_TRUE(bytes_equal(scalar_c, simd_c));
  const cvec ca = random_cvec(rng, 64);
  const cvec cb = random_cvec(rng, 21);
  auto [scalar_x, simd_x] =
      scalar_vs_dispatched([&] { return dsp::fft_xcorr(ca, cb); });
  EXPECT_TRUE(bytes_equal(scalar_x, simd_x));
}

TEST_F(SimdKernels, MixersMatchFreshNcoReference) {
  // The mixers layer a tone-table cache over the kernels; compare every
  // length against a literal fresh-Nco serial loop, which is what the
  // historical code computed.
  for (const std::size_t n : kLengths) {
    common::Rng rng(505);
    const rvec pass = random_rvec(rng, n);
    const cvec base = random_cvec(rng, n);
    const double f = 18500.0;
    const double fs = 120000.0;
    const double ph = 0.7;

    rvec tone_ref(n);
    {
      dsp::Nco nco(f, fs, ph);
      for (auto& v : tone_ref) v = 0.5 * nco.next_cos();
    }
    cvec down_ref(n);
    {
      dsp::Nco nco(-f, fs, -ph);
      for (std::size_t i = 0; i < n; ++i) down_ref[i] = pass[i] * nco.next();
    }
    rvec up_ref(n);
    {
      dsp::Nco nco(f, fs, ph);
      for (std::size_t i = 0; i < n; ++i) up_ref[i] = (base[i] * nco.next()).real();
    }

    auto [scalar_t, simd_t] =
        scalar_vs_dispatched([&] { return dsp::make_tone(f, fs, n, 0.5, ph); });
    EXPECT_TRUE(bytes_equal(tone_ref, scalar_t)) << "tone n=" << n;
    EXPECT_TRUE(bytes_equal(tone_ref, simd_t)) << "tone n=" << n;

    auto [scalar_d, simd_d] =
        scalar_vs_dispatched([&] { return dsp::downconvert(pass, f, fs, ph); });
    EXPECT_TRUE(bytes_equal(down_ref, scalar_d)) << "down n=" << n;
    EXPECT_TRUE(bytes_equal(down_ref, simd_d)) << "down n=" << n;

    auto [scalar_u, simd_u] =
        scalar_vs_dispatched([&] { return dsp::upconvert(base, f, fs, ph); });
    EXPECT_TRUE(bytes_equal(up_ref, scalar_u)) << "up n=" << n;
    EXPECT_TRUE(bytes_equal(up_ref, simd_u)) << "up n=" << n;
  }
}

TEST_F(SimdKernels, ToneCacheExtensionIsBitIdenticalToFreshOscillator) {
  // A short request populates the cache; a longer one for the same carrier
  // extends the stored table via the saved oscillator state. The extension
  // must continue the exact phase recurrence a fresh Nco would run.
  const double f = 12345.0;
  const double fs = 96000.0;
  const rvec short_tone = dsp::make_tone(f, fs, 64, 1.0, 0.25);
  const rvec long_tone = dsp::make_tone(f, fs, 256, 1.0, 0.25);
  rvec ref(256);
  dsp::Nco nco(f, fs, 0.25);
  for (auto& v : ref) v = nco.next_cos();
  EXPECT_TRUE(bytes_equal(ref, long_tone));
  for (std::size_t i = 0; i < short_tone.size(); ++i)
    EXPECT_EQ(short_tone[i], long_tone[i]);
}

TEST_F(SimdKernels, EnergyAndRmsShareTheSerialReduction) {
  common::Rng rng(606);
  for (const std::size_t n : kLengths) {
    const cvec c = random_cvec(rng, n);
    const rvec r = random_rvec(rng, n);
    double ce = 0.0;
    for (const auto& v : c) ce += std::norm(v);
    double re = 0.0;
    for (const double v : r) re += v * v;
    // Reductions are never widened, so these hold at any dispatched ISA.
    EXPECT_EQ(ce, dsp::energy(c)) << "n=" << n;
    EXPECT_EQ(re, dsp::energy(r)) << "n=" << n;
    EXPECT_EQ(ce, dsp::simd::sum_norms(c.data(), c.size()));
    EXPECT_EQ(re, dsp::simd::sum_squares(r.data(), r.size()));
  }
}

TEST_F(SimdKernels, NormalizedCorrelateAndFindPeakMatchScalar) {
  common::Rng rng(707);
  const cvec sig = random_cvec(rng, 300);
  const cvec ref = random_cvec(rng, 25);
  auto [scalar_n, simd_n] =
      scalar_vs_dispatched([&] { return dsp::normalized_correlate(sig, ref); });
  EXPECT_TRUE(bytes_equal(scalar_n, simd_n));
  auto [scalar_p, simd_p] =
      scalar_vs_dispatched([&] { return dsp::find_peak(sig, ref, 0.0); });
  ASSERT_EQ(scalar_p.has_value(), simd_p.has_value());
  if (scalar_p) {
    EXPECT_EQ(scalar_p->index, simd_p->index);
    EXPECT_EQ(scalar_p->value, simd_p->value);
    EXPECT_EQ(scalar_p->raw, simd_p->raw);
  }
}

}  // namespace
}  // namespace vab
