#include "vanatta/mismatch.hpp"

#include <cmath>

#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace vab::vanatta {

double mismatch_trial(const VanAttaConfig& cfg, double theta_rad, double f_hz,
                      double sigma_phase_rad, double sigma_gain_db,
                      double clean_gain_db, const common::Rng& rng,
                      std::size_t t) {
  common::Rng draw_rng = rng.child(t);
  VanAttaArray noisy(cfg);
  std::vector<double> ph(cfg.n_elements), g(cfg.n_elements);
  for (std::size_t i = 0; i < cfg.n_elements; ++i) {
    ph[i] = draw_rng.gaussian(0.0, sigma_phase_rad);
    g[i] = std::pow(10.0, draw_rng.gaussian(0.0, sigma_gain_db) / 20.0);
  }
  noisy.set_phase_errors(std::move(ph));
  noisy.set_gain_errors(std::move(g));
  return clean_gain_db - noisy.monostatic_gain_db(theta_rad, f_hz);
}

MismatchResult fold_mismatch_losses(const rvec& losses) {
  MismatchResult r;
  r.mean_loss_db = common::mean(losses);
  r.p95_loss_db = common::percentile(losses, 95.0);
  r.worst_loss_db = common::max_value(losses);
  return r;
}

MismatchResult mismatch_monte_carlo(const VanAttaConfig& cfg, double theta_rad,
                                    double f_hz, double sigma_phase_rad,
                                    double sigma_gain_db, std::size_t trials,
                                    common::Rng& rng) {
  const VanAttaArray clean(cfg);
  const double clean_gain = clean.monostatic_gain_db(theta_rad, f_hz);

  // Draw t uses rng.child(t): thread-count-invariant and order-independent.
  rvec losses(trials);
  common::parallel_for(0, trials, [&](std::size_t t) {
    losses[t] = mismatch_trial(cfg, theta_rad, f_hz, sigma_phase_rad,
                               sigma_gain_db, clean_gain, rng, t);
  });
  return fold_mismatch_losses(losses);
}

}  // namespace vab::vanatta
