#include "vanatta/pattern.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace vab::vanatta {

std::vector<PatternPoint> monostatic_sweep(const VanAttaArray& array, const rvec& thetas,
                                           double f_hz) {
  std::vector<PatternPoint> out;
  out.reserve(thetas.size());
  for (double th : thetas) out.push_back({th, array.monostatic_gain_db(th, f_hz)});
  return out;
}

std::vector<PatternPoint> bistatic_sweep(const VanAttaArray& array, double theta_in,
                                         const rvec& thetas, double f_hz) {
  std::vector<PatternPoint> out;
  out.reserve(thetas.size());
  for (double th : thetas) {
    const double p = std::norm(array.bistatic_response(theta_in, th, f_hz, 1));
    out.push_back({th, 10.0 * std::log10(std::max(p, 1e-30))});
  }
  return out;
}

double retro_fov_deg(const VanAttaArray& array, double f_hz, double drop_db,
                     double max_angle_deg, std::size_t steps) {
  const rvec thetas = common::linspace(common::deg_to_rad(-max_angle_deg),
                                       common::deg_to_rad(max_angle_deg), steps);
  const auto sweep = monostatic_sweep(array, thetas, f_hz);
  double peak = -1e9;
  for (const auto& p : sweep) peak = std::max(peak, p.gain_db);
  // Widest contiguous span around the peak above (peak - drop).
  double best_span = 0.0;
  double span_start = 0.0;
  bool in_span = false;
  for (const auto& p : sweep) {
    if (p.gain_db >= peak - drop_db) {
      if (!in_span) {
        in_span = true;
        span_start = p.theta_rad;
      }
      best_span = std::max(best_span, p.theta_rad - span_start);
    } else {
      in_span = false;
    }
  }
  return common::rad_to_deg(best_span);
}

}  // namespace vab::vanatta
