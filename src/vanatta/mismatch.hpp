// Fabrication-tolerance Monte-Carlo (experiment E11): how much retro gain
// survives per-element phase and gain errors — the analysis that justifies
// the paper's equal-length-line requirement.
#pragma once

#include "common/rng.hpp"
#include "vanatta/array.hpp"

namespace vab::vanatta {

struct MismatchResult {
  double mean_loss_db = 0.0;   ///< mean retro-gain loss vs the clean array
  double p95_loss_db = 0.0;    ///< 95th-percentile loss
  double worst_loss_db = 0.0;
};

/// One mismatch draw: global trial `t` (from `rng.child(t)`; the parent
/// stream is never advanced) against a clean-array gain the caller computed
/// once with `VanAttaArray(cfg).monostatic_gain_db(theta, f)`. Returns the
/// retro-gain loss in dB.
double mismatch_trial(const VanAttaConfig& cfg, double theta_rad, double f_hz,
                      double sigma_phase_rad, double sigma_gain_db,
                      double clean_gain_db, const common::Rng& rng, std::size_t t);

/// Order-sensitive statistics over per-trial losses indexed by global trial
/// — the one aggregation behind `mismatch_monte_carlo` and the campaign
/// merge.
MismatchResult fold_mismatch_losses(const rvec& losses);

/// Runs `trials` random draws of per-element Gaussian phase error
/// (`sigma_phase_rad`) and log-normal gain error (`sigma_gain_db`), measuring
/// the monostatic gain at `theta` relative to the error-free array.
MismatchResult mismatch_monte_carlo(const VanAttaConfig& cfg, double theta_rad,
                                    double f_hz, double sigma_phase_rad,
                                    double sigma_gain_db, std::size_t trials,
                                    common::Rng& rng);

}  // namespace vab::vanatta
