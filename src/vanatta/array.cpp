#include "vanatta/array.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::vanatta {

VanAttaArray::VanAttaArray(VanAttaConfig cfg) : cfg_(cfg) {
  if (cfg_.n_elements == 0) throw std::invalid_argument("array needs >= 1 element");
  if (cfg_.f_design_hz <= 0.0)
    throw std::invalid_argument("design frequency must be > 0");
  if (cfg_.element_efficiency <= 0.0 || cfg_.element_efficiency > 1.0)
    throw std::invalid_argument("element efficiency must be in (0, 1]");
  if (cfg_.mode == ArrayMode::kSingleElement) cfg_.n_elements = 1;
  if (cfg_.spacing_m <= 0.0)
    cfg_.spacing_m = cfg_.sound_speed_mps / cfg_.f_design_hz / 2.0;  // lambda/2

  const std::size_t n = cfg_.n_elements;
  pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    pos_[i] =
        (static_cast<double>(i) - static_cast<double>(n - 1) / 2.0) * cfg_.spacing_m;
  phase_err_.assign(n, 0.0);
  gain_err_.assign(n, 1.0);
}

std::size_t VanAttaArray::partner(std::size_t i) const {
  if (i >= cfg_.n_elements) throw std::out_of_range("element index");
  switch (cfg_.mode) {
    case ArrayMode::kVanAtta: return cfg_.n_elements - 1 - i;
    case ArrayMode::kFixedPhase:
    case ArrayMode::kSingleElement: return i;
  }
  return i;
}

void VanAttaArray::set_phase_errors(std::vector<double> errors) {
  if (errors.size() != cfg_.n_elements)
    throw std::invalid_argument("need one phase error per element");
  phase_err_ = std::move(errors);
}

void VanAttaArray::set_gain_errors(std::vector<double> gains) {
  if (gains.size() != cfg_.n_elements)
    throw std::invalid_argument("need one gain per element");
  for (double g : gains)
    if (g < 0.0) throw std::invalid_argument("gains must be >= 0");
  gain_err_ = std::move(gains);
}

double VanAttaArray::element_pattern(double theta) const {
  const double c = std::cos(theta);
  if (c <= 0.0) return 0.0;  // no backlobe
  return std::pow(c, cfg_.directivity_q);
}

double VanAttaArray::through_gain() const {
  // acoustic->electrical, line, switch, electrical->acoustic.
  const double line = std::pow(10.0, -cfg_.line_loss_db / 20.0);
  const double sw = std::pow(10.0, -cfg_.switch_insertion_db / 20.0);
  return cfg_.element_efficiency * cfg_.element_efficiency * line * sw;
}

cplx VanAttaArray::state_factor(int state) const {
  if (state != 0 && state != 1) throw std::invalid_argument("state must be 0 or 1");
  switch (cfg_.scheme) {
    case ModulationScheme::kOnOff: return state == 1 ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
    case ModulationScheme::kPolarity:
      return state == 1 ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  }
  return {};
}

cplx VanAttaArray::bistatic_response(double theta_in, double theta_out, double f_hz,
                                     int state) const {
  if (f_hz <= 0.0) throw std::invalid_argument("frequency must be > 0");
  const double k = common::kTwoPi * f_hz / cfg_.sound_speed_mps;
  const double si = std::sin(theta_in);
  const double so = std::sin(theta_out);
  const double pat = element_pattern(theta_in) * element_pattern(theta_out);
  const cplx mod = state_factor(state);
  const cplx line_rot = std::exp(cplx{0.0, -cfg_.line_phase_rad});

  cplx acc{};
  for (std::size_t i = 0; i < cfg_.n_elements; ++i) {
    const std::size_t p = partner(i);
    const double phase =
        -k * (pos_[i] * si + pos_[p] * so) + phase_err_[i] + phase_err_[p];
    acc += gain_err_[i] * gain_err_[p] * std::exp(cplx{0.0, phase});
  }
  return acc * pat * through_gain() * mod * line_rot;
}

double VanAttaArray::monostatic_gain_db(double theta, double f_hz) const {
  // Reflective state: for on/off keying state 1; for polarity either state
  // has the same magnitude.
  const cplx r = bistatic_response(theta, theta, f_hz, 1);
  const double p = std::norm(r);
  return 10.0 * std::log10(std::max(p, 1e-30));
}

double VanAttaArray::modulation_amplitude(double theta, double f_hz) const {
  const cplx r1 = bistatic_response(theta, theta, f_hz, 1);
  const cplx r0 = bistatic_response(theta, theta, f_hz, 0);
  return std::abs(r1 - r0) / 2.0;
}

}  // namespace vab::vanatta
