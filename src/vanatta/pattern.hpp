// Scattering-pattern sweeps and summary metrics over a VanAttaArray.
#pragma once

#include "common/types.hpp"
#include "vanatta/array.hpp"

namespace vab::vanatta {

struct PatternPoint {
  double theta_rad = 0.0;
  double gain_db = 0.0;
};

/// Monostatic gain sweep: gain toward the interrogator as the interrogator
/// moves across `thetas` (the orientation experiment E2).
std::vector<PatternPoint> monostatic_sweep(const VanAttaArray& array, const rvec& thetas,
                                           double f_hz);

/// Bistatic cut: fixed incidence `theta_in`, observation swept over
/// `thetas` — shows where a non-retro array sends the energy instead.
std::vector<PatternPoint> bistatic_sweep(const VanAttaArray& array, double theta_in,
                                         const rvec& thetas, double f_hz);

/// Angular span (degrees) over which the monostatic gain stays within
/// `drop_db` of its peak — the "field of view" the paper reports.
double retro_fov_deg(const VanAttaArray& array, double f_hz, double drop_db = 3.0,
                     double max_angle_deg = 75.0, std::size_t steps = 301);

}  // namespace vab::vanatta
