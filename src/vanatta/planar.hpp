// Planar (2-D) Van Atta array.
//
// The paper's nodes are linear arrays, retrodirective only in the plane
// containing the array axis; a deployed node also pitches and rolls. The
// classic remedy is a planar Van Atta: elements paired by point reflection
// through the array center retroreflect in both azimuth and elevation.
// This module extends the linear model to an R x C grid and exposes the
// same bistatic/monostatic interface over (azimuth, elevation).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "vanatta/array.hpp"

namespace vab::vanatta {

struct PlanarVanAttaConfig {
  std::size_t rows = 4;
  std::size_t cols = 4;
  double f_design_hz = 18500.0;
  double spacing_m = 0.0;  ///< 0 = lambda/2 at f_design, both axes
  double sound_speed_mps = 1500.0;
  ModulationScheme scheme = ModulationScheme::kPolarity;
  double element_efficiency = 0.75;
  double line_loss_db = 0.5;
  double switch_insertion_db = 0.3;
  double directivity_q = 0.5;
  /// False degrades the grid to per-row linear pairing (the ablation that
  /// shows why point-reflection pairing is required for elevation retro).
  bool point_reflection_pairing = true;
};

/// Propagation direction in the array frame.
struct Direction {
  double azimuth_rad = 0.0;    ///< rotation about the vertical array axis
  double elevation_rad = 0.0;  ///< rotation out of the array plane
};

class PlanarVanAttaArray {
 public:
  explicit PlanarVanAttaArray(PlanarVanAttaConfig cfg);

  /// Complex bistatic backscatter amplitude, normalized so one ideal
  /// lossless element returns 1 (same convention as the linear array).
  cplx bistatic_response(const Direction& in, const Direction& out, double f_hz,
                         int state) const;

  /// Monostatic (retro) power gain in dB relative to a single ideal element.
  double monostatic_gain_db(const Direction& d, double f_hz) const;

  /// |resp(1) - resp(0)| / 2 toward the monostatic direction.
  double modulation_amplitude(const Direction& d, double f_hz) const;

  std::size_t size() const { return cfg_.rows * cfg_.cols; }
  std::size_t partner(std::size_t i) const;
  const PlanarVanAttaConfig& config() const { return cfg_; }

 private:
  double element_pattern(const Direction& d) const;
  double through_gain() const;
  cplx state_factor(int state) const;

  PlanarVanAttaConfig cfg_;
  std::vector<double> x_;  ///< element positions, meters, centered
  std::vector<double> y_;
};

}  // namespace vab::vanatta
