// Van Atta retrodirective acoustic array.
//
// The paper's key architectural idea: transducer elements are wired in
// mirrored pairs (element i to element N-1-i) through equal-length lines, so
// the phase profile received across the aperture is re-transmitted reversed
// — the array retroreflects toward the interrogator from any direction, with
// no phase estimation and no power. Modulation toggles the pair connection
// (on/off keying) or its polarity (BPSK-like), putting data on the
// retroreflected wave.
//
// This module computes complex bistatic responses including element
// efficiency, line/switch loss, element directivity and per-element phase
// errors. Baseline modes (single element, fixed-phase array) implement the
// paper's comparison points.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace vab::vanatta {

/// How the array reflects.
enum class ArrayMode {
  kVanAtta,      ///< mirrored-pair routing (the paper's design)
  kFixedPhase,   ///< each element reflects from itself (non-retro baseline)
  kSingleElement ///< one element only (prior-art PAB baseline)
};

/// How data modulates the reflection.
enum class ModulationScheme {
  kOnOff,     ///< switch the pair line open/closed
  kPolarity   ///< flip the pair connection polarity (full-depth BPSK)
};

struct VanAttaConfig {
  std::size_t n_elements = 4;       ///< must be even for kVanAtta
  double f_design_hz = 18500.0;
  double spacing_m = 0.0;           ///< 0 = lambda/2 at f_design
  double sound_speed_mps = 1500.0;
  ArrayMode mode = ArrayMode::kVanAtta;
  ModulationScheme scheme = ModulationScheme::kOnOff;

  /// One-way amplitude efficiency of a transducer element converting
  /// acoustic->electrical (and electrical->acoustic); the through-path sees
  /// it twice.
  double element_efficiency = 0.75;
  double line_loss_db = 0.5;        ///< per pair connection
  double switch_insertion_db = 0.3; ///< modulator switch through-loss
  /// Element directivity exponent: pattern amplitude cos^q(theta).
  double directivity_q = 0.5;
  /// Extra electrical line length expressed as phase at f_design (all pairs
  /// share it in a clean build; per-element errors are injected separately).
  double line_phase_rad = 0.0;
};

class VanAttaArray {
 public:
  explicit VanAttaArray(VanAttaConfig cfg);

  /// Complex far-field backscatter amplitude for a unit-amplitude plane wave
  /// incident from `theta_in`, observed at `theta_out` (radians from
  /// broadside), at frequency `f_hz`, in modulation state `state` (0 or 1).
  /// Normalized so a single ideal lossless element in state 1 returns 1.
  cplx bistatic_response(double theta_in, double theta_out, double f_hz, int state) const;

  /// Monostatic (retro) power gain in dB relative to a single ideal element:
  /// 10 log10 |response(theta, theta)|^2 in the reflective state.
  double monostatic_gain_db(double theta, double f_hz) const;

  /// Differential modulation amplitude |resp(state1) - resp(state0)| / 2 at
  /// the monostatic angle — the factor that enters the backscatter link
  /// budget.
  double modulation_amplitude(double theta, double f_hz) const;

  /// Injects per-element phase errors (radians, one per element) modeling
  /// line-length / transducer mismatch.
  void set_phase_errors(std::vector<double> errors);
  /// Injects per-element amplitude gains (linear, one per element).
  void set_gain_errors(std::vector<double> gains);

  const VanAttaConfig& config() const { return cfg_; }
  std::size_t size() const { return cfg_.n_elements; }
  /// Element x-positions (meters, symmetric about 0).
  const std::vector<double>& positions() const { return pos_; }
  /// Partner index of element i under the current mode.
  std::size_t partner(std::size_t i) const;

 private:
  double element_pattern(double theta) const;
  /// Through-path amplitude (line + switch + two transduction passes).
  double through_gain() const;
  /// Multiplicative modulation factor applied to the pair transfer.
  cplx state_factor(int state) const;

  VanAttaConfig cfg_;
  std::vector<double> pos_;
  std::vector<double> phase_err_;
  std::vector<double> gain_err_;
};

}  // namespace vab::vanatta
