#include "vanatta/planar.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::vanatta {

PlanarVanAttaArray::PlanarVanAttaArray(PlanarVanAttaConfig cfg) : cfg_(cfg) {
  if (cfg_.rows == 0 || cfg_.cols == 0)
    throw std::invalid_argument("planar array needs rows, cols >= 1");
  if (cfg_.f_design_hz <= 0.0)
    throw std::invalid_argument("design frequency must be > 0");
  if (cfg_.element_efficiency <= 0.0 || cfg_.element_efficiency > 1.0)
    throw std::invalid_argument("element efficiency must be in (0, 1]");
  if (cfg_.spacing_m <= 0.0)
    cfg_.spacing_m = cfg_.sound_speed_mps / cfg_.f_design_hz / 2.0;

  const std::size_t n = size();
  x_.resize(n);
  y_.resize(n);
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    for (std::size_t c = 0; c < cfg_.cols; ++c) {
      const std::size_t i = r * cfg_.cols + c;
      x_[i] = (static_cast<double>(c) - static_cast<double>(cfg_.cols - 1) / 2.0) *
              cfg_.spacing_m;
      y_[i] = (static_cast<double>(r) - static_cast<double>(cfg_.rows - 1) / 2.0) *
              cfg_.spacing_m;
    }
  }
}

std::size_t PlanarVanAttaArray::partner(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("element index");
  const std::size_t r = i / cfg_.cols;
  const std::size_t c = i % cfg_.cols;
  if (cfg_.point_reflection_pairing) {
    // Point reflection through the array center: retro in both axes.
    return (cfg_.rows - 1 - r) * cfg_.cols + (cfg_.cols - 1 - c);
  }
  // Per-row mirror: retro in azimuth only (the linear-array behaviour).
  return r * cfg_.cols + (cfg_.cols - 1 - c);
}

double PlanarVanAttaArray::element_pattern(const Direction& d) const {
  // Direction cosine toward broadside.
  const double u = std::sin(d.azimuth_rad) * std::cos(d.elevation_rad);
  const double v = std::sin(d.elevation_rad);
  const double w2 = 1.0 - u * u - v * v;
  if (w2 <= 0.0) return 0.0;
  return std::pow(std::sqrt(w2), cfg_.directivity_q);
}

double PlanarVanAttaArray::through_gain() const {
  const double line = std::pow(10.0, -cfg_.line_loss_db / 20.0);
  const double sw = std::pow(10.0, -cfg_.switch_insertion_db / 20.0);
  return cfg_.element_efficiency * cfg_.element_efficiency * line * sw;
}

cplx PlanarVanAttaArray::state_factor(int state) const {
  if (state != 0 && state != 1) throw std::invalid_argument("state must be 0 or 1");
  switch (cfg_.scheme) {
    case ModulationScheme::kOnOff: return state == 1 ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
    case ModulationScheme::kPolarity:
      return state == 1 ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  }
  return {};
}

cplx PlanarVanAttaArray::bistatic_response(const Direction& in, const Direction& out,
                                           double f_hz, int state) const {
  if (f_hz <= 0.0) throw std::invalid_argument("frequency must be > 0");
  const double k = common::kTwoPi * f_hz / cfg_.sound_speed_mps;
  const double ui = std::sin(in.azimuth_rad) * std::cos(in.elevation_rad);
  const double vi = std::sin(in.elevation_rad);
  const double uo = std::sin(out.azimuth_rad) * std::cos(out.elevation_rad);
  const double vo = std::sin(out.elevation_rad);
  const double pat = element_pattern(in) * element_pattern(out);
  const cplx mod = state_factor(state);

  cplx acc{};
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t p = partner(i);
    const double phase = -k * (x_[i] * ui + y_[i] * vi + x_[p] * uo + y_[p] * vo);
    acc += std::exp(cplx{0.0, phase});
  }
  return acc * pat * through_gain() * mod;
}

double PlanarVanAttaArray::monostatic_gain_db(const Direction& d, double f_hz) const {
  const double p = std::norm(bistatic_response(d, d, f_hz, 1));
  return 10.0 * std::log10(std::max(p, 1e-30));
}

double PlanarVanAttaArray::modulation_amplitude(const Direction& d, double f_hz) const {
  const cplx r1 = bistatic_response(d, d, f_hz, 1);
  const cplx r0 = bistatic_response(d, d, f_hz, 0);
  return std::abs(r1 - r0) / 2.0;
}

}  // namespace vab::vanatta
