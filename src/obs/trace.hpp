// Scoped tracing: RAII spans recorded into per-thread ring buffers and
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// Cost model: when tracing is disabled (the default) a TraceSpan constructor
// reads one relaxed atomic and returns; nothing else happens. When enabled,
// each span costs two steady_clock reads and four relaxed-atomic stores into
// a preallocated ring slot — no locks, no allocation. Rings overwrite their
// oldest events when full; overwrites tick the `obs.trace.dropped` counter
// as they happen and the export reports droppedEvents plus a truncation
// marker, so a wrapped trace is never silently partial.
//
// Span names/categories must be string literals (or otherwise outlive the
// process): rings store the pointers, not copies.
//
// The trace clock (`now_ns`) is monotonic nanoseconds since process start;
// common::Log stamps its lines with the same clock and thread ids, so log
// lines correlate with spans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vab::obs {

/// Monotonic nanoseconds since process start (steady_clock based).
std::uint64_t now_ns();

/// Stable per-thread id: 0 for the thread that initialized the library
/// (main, in practice), then 1, 2, ... in first-use order.
std::uint32_t current_tid();

/// Names the calling thread in trace exports (string literal required).
void set_thread_name(const char* name);

/// True when spans are being recorded.
bool trace_enabled();

/// Starts recording; `path` (may be empty) is where the atexit flush writes
/// the trace. Tests pass "" and call write_trace / trace_json directly.
void enable_trace(std::string path);
void disable_trace();
std::string trace_path();

/// Records one complete ("ph":"X") event. Exposed for instrumentation
/// helpers that already hold their own timestamps; most callers use
/// TraceSpan / VAB_SPAN instead. No-op when tracing is disabled.
void record_complete_event(const char* name, const char* cat, std::uint64_t t0_ns,
                           std::uint64_t t1_ns);

/// RAII span: records [construction, destruction) as a complete event on the
/// calling thread. Spans nest naturally; viewers infer the hierarchy from
/// containment on each thread track.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "vab")
      : name_(name), cat_(cat) {
    armed_ = trace_enabled();
    if (armed_) t0_ = now_ns();
  }
  ~TraceSpan() {
    if (armed_) record_complete_event(name_, cat_, t0_, now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t t0_ = 0;
  bool armed_ = false;
};

/// One buffered span, flattened out of the per-thread rings. Name/category
/// are the original string-literal pointers.
struct CollectedSpan {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::uint32_t tid = 0;
};

/// Snapshot of every buffered span across all thread rings, sorted by begin
/// timestamp (stable). `dropped` (may be null) receives the number of spans
/// lost to ring overwrites. Feeds the trace exporter and the profiler.
std::vector<CollectedSpan> collect_trace_spans(std::uint64_t* dropped);

/// The full trace as Chrome trace-event JSON:
///   {"traceEvents":[...], "displayTimeUnit":"ms",
///    "otherData":{"manifest":{...},"droppedEvents":N,"truncated":bool}}
/// Events are sorted by begin timestamp; thread-name metadata events are
/// emitted for every thread that recorded at least one span. `truncated` is
/// true when ring overwrites dropped events (also counted by the
/// `obs.trace.dropped` metric as it happens).
std::string trace_json();

/// Writes trace_json() to `path`; false when the file cannot be opened.
bool write_trace(const std::string& path);

/// Number of span events currently buffered across all threads (tests).
std::size_t trace_event_count();

/// Drops all buffered events (tests). Not safe while spans are being
/// recorded concurrently.
void clear_trace();

}  // namespace vab::obs
