// Metrics registry: named counters, gauges and fixed-bucket histograms with
// per-thread shards.
//
// Concurrency model:
//  - Every recording thread owns a private shard of relaxed-atomic cells;
//    updates are a TLS lookup plus one fetch_add, with no shared mutable
//    state on the hot path (TSan-clean by construction).
//  - A snapshot locks only the registry's structural state, sums the cells
//    across shards, and serializes everything in alphabetical name order.
//
// Determinism model:
//  - Counter and histogram state is held in 64-bit integers, so cross-shard
//    summation is exact and commutative: a snapshot of a deterministic
//    workload is byte-identical for any thread count or scheduling order
//    (exercised by the ObsDeterminism test suite).
//  - Gauges are global last-write-wins doubles, intended for values set from
//    one place (effective thread count, sweep parameters), not for
//    concurrent racing writers.
//
// Handles (Counter/Gauge/Histogram) are cheap POD-ish values; instrumented
// code caches them in function-local statics so the by-name lookup happens
// once per process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vab::obs {

class Registry;

class Counter {
 public:
  void add(std::uint64_t v) const;
  void inc() const { add(1); }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_;
  std::uint32_t slot_;
};

class Gauge {
 public:
  void set(double v) const;

 private:
  friend class Registry;
  explicit Gauge(void* cell) : cell_(cell) {}
  void* cell_;  // std::atomic<double>* with a stable address inside the registry
};

class Histogram {
 public:
  /// Records one observation (bucketed by upper-bound binary search; values
  /// above the last bound land in the overflow bucket).
  void record(std::uint64_t v) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, const void* def) : reg_(reg), def_(def) {}
  Registry* reg_;
  const void* def_;  // MetricDef* with a stable address inside the registry
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry all library instrumentation records
  /// into. Never destroyed (flushed from atexit handlers).
  static Registry& global();

  /// Returns the handle for `name`, creating the metric on first use.
  /// Re-registering an existing name with a different kind throws.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` are ascending bucket upper bounds; the histogram stores
  /// bounds.size() + 1 integer bucket counts (last = overflow) plus an exact
  /// integer sum of recorded values. Re-registering an existing histogram
  /// returns the original (its bounds win).
  Histogram histogram(const std::string& name, std::vector<std::uint64_t> bounds);

  /// Deterministic JSON snapshot:
  ///   {"schema":"vab-metrics-v1","manifest":{...},
  ///    "counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"bounds":[...],"counts":[...],
  ///                          "count":N,"sum":S}}}
  /// All sections are alphabetically ordered. `with_manifest` = false drops
  /// the manifest object (used by the determinism tests, where the manifest
  /// legitimately differs between runs).
  std::string snapshot_json(bool with_manifest = true) const;

  /// Number of registered metrics (tests).
  std::size_t size() const;

  /// Current cross-shard sum of counter `name`; 0 when the name is not a
  /// registered counter. Snapshot-consistency caveats of snapshot_json apply.
  std::uint64_t counter_value(const std::string& name) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Impl;
  Impl* impl_;
};

/// Convenience accessors on the global registry.
inline Counter counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge gauge(const std::string& name) { return Registry::global().gauge(name); }
inline Histogram histogram(const std::string& name, std::vector<std::uint64_t> bounds) {
  return Registry::global().histogram(name, std::move(bounds));
}

/// Writes the global registry snapshot (with manifest) to `path`.
/// Returns false when the file cannot be opened.
bool write_metrics(const std::string& path);

}  // namespace vab::obs
