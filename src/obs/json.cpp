#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace vab::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars with no precision argument emits the shortest decimal
  // string that parses back to exactly `v` — lossless, unlike a fixed "%g"
  // precision, and always JSON-valid (no hex floats, no locale commas).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

}  // namespace vab::obs
