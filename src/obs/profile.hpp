// Span-aggregation profiler: folds the per-thread trace ring buffers into
// per-stage self/total time, call counts and folded-stack output, exported
// as `vab-profile-v1` JSON. This is the attribution story behind a
// check_bench regression — "the run got 20% slower" becomes "demod.sync
// self-time doubled".
//
// Aggregation model (per thread, spans sorted by begin time):
//  - spans nest by containment, exactly as trace viewers render them;
//  - a span's *total* time is its full duration, its *self* time is the
//    duration minus time spent in directly nested spans (clamped at zero
//    for malformed overlaps), so per stage self_ns <= total_ns always;
//  - every span also credits its self time to the semicolon-joined stack
//    path ("fleet.run;linkbudget.eval"), the folded-stack format consumed
//    by flamegraph.pl and speedscope (`vab_report.py --folded` renders it).
//
// Times are wall-clock, so a profile is *not* byte-deterministic between
// runs — call counts are, and `vab_report.py --diff` compares exactly those.
// Ring overwrites make attribution partial; the export carries the dropped
// count so a truncated profile is never mistaken for a complete one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace vab::obs {

/// Aggregate for one span name.
struct StageProfile {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  ///< sum of span durations
  std::uint64_t self_ns = 0;   ///< total minus directly nested span time
};

struct ProfileSummary {
  std::vector<StageProfile> stages;  ///< alphabetical by name
  /// Folded stacks: ("a;b;c", self_ns aggregated over all occurrences),
  /// sorted by stack path.
  std::vector<std::pair<std::string, std::uint64_t>> folded;
  std::uint64_t dropped = 0;  ///< spans lost to ring overwrites
};

/// Aggregates an explicit span list (unit tests, external traces). Spans
/// may arrive unsorted; nesting is inferred per tid by containment.
ProfileSummary profile_spans(std::vector<CollectedSpan> spans,
                             std::uint64_t dropped = 0);

/// Aggregates whatever the trace rings currently hold.
ProfileSummary profile_from_trace();

/// `vab-profile-v1` JSON:
///   {"schema":"vab-profile-v1","manifest":{...},"dropped":N,
///    "stages":{"name":{"calls":C,"total_ns":T,"self_ns":S},...},
///    "folded":[["a;b",S],...]}
/// Stage names alphabetical, folded entries sorted by stack path.
std::string profile_json(const ProfileSummary& p);

/// flamegraph.pl input: one "stack;path self_ns" line per folded entry.
std::string profile_folded(const ProfileSummary& p);

/// Writes profile_json(profile_from_trace()) to `path`; false when the file
/// cannot be opened.
bool write_profile(const std::string& path);

}  // namespace vab::obs
