#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace vab::obs {

namespace {

// One recording thread's private cell block. Cells are relaxed atomics so a
// concurrent snapshot reads torn-free values without stopping the writers;
// only the owner thread ever writes. The deque gives stable cell addresses
// across growth; growth itself is serialized with snapshots by `mu`.
struct Shard {
  std::mutex mu;  // guards growth and size reads from the snapshot thread
  std::deque<std::atomic<std::uint64_t>> cells;

  std::atomic<std::uint64_t>& cell(std::uint32_t slot) {
    if (slot >= cells.size()) {
      std::lock_guard<std::mutex> lk(mu);
      while (cells.size() <= slot) cells.emplace_back(0);
    }
    return cells[slot];
  }
};

enum class Kind { kCounter, kGauge, kHistogram };

struct MetricDef {
  std::string name;
  Kind kind;
  std::uint32_t index = 0;     // position in defs-by-index vector
  std::uint32_t slot = 0;      // first shard cell (counter/histogram)
  std::uint32_t n_cells = 0;   // shard cells reserved
  std::vector<std::uint64_t> bounds;  // histogram bucket upper bounds
  std::atomic<double> gauge{0.0};     // gauges are global, not sharded
};

std::atomic<std::uint64_t> g_next_registry_id{1};

// Per-thread shard cache. The single-entry fast path covers the common case
// of one (global) registry; the vector handles tests that create their own.
// Entries hold shared_ptr so a shard outlives both its thread and its
// registry, whichever goes first.
struct TlsShards {
  std::uint64_t last_id = 0;
  Shard* last = nullptr;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<Shard>>> all;
};
thread_local TlsShards t_shards;

}  // namespace

struct Registry::Impl {
  const std::uint64_t id = g_next_registry_id.fetch_add(1);
  mutable std::mutex mu;
  std::map<std::string, std::uint32_t> by_name;   // name -> index
  std::vector<std::unique_ptr<MetricDef>> defs;   // stable addresses
  std::vector<std::shared_ptr<Shard>> shards;
  std::uint32_t next_slot = 0;

  MetricDef& intern(const std::string& name, Kind kind, std::uint32_t n_cells,
                    std::vector<std::uint64_t> bounds) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      MetricDef& d = *defs[it->second];
      if (d.kind != kind)
        throw std::invalid_argument("metric '" + name +
                                    "' re-registered as a different kind");
      return d;
    }
    auto def = std::make_unique<MetricDef>();
    def->name = name;
    def->kind = kind;
    def->index = static_cast<std::uint32_t>(defs.size());
    def->slot = next_slot;
    def->n_cells = n_cells;
    def->bounds = std::move(bounds);
    next_slot += n_cells;
    by_name.emplace(name, def->index);
    defs.push_back(std::move(def));
    return *defs.back();
  }

  Shard& local_shard() {
    if (t_shards.last_id == id) return *t_shards.last;
    for (auto& [sid, sp] : t_shards.all)
      if (sid == id) {
        t_shards.last_id = id;
        t_shards.last = sp.get();
        return *sp;
      }
    auto sp = std::make_shared<Shard>();
    {
      std::lock_guard<std::mutex> lk(mu);
      shards.push_back(sp);
    }
    t_shards.all.emplace_back(id, sp);
    t_shards.last_id = id;
    t_shards.last = sp.get();
    return *sp;
  }

  std::uint64_t sum_cell(std::uint32_t slot) const {
    // Caller holds mu (shard list stable); each shard's size is read under
    // its own mutex so growth on the owner thread cannot race.
    std::uint64_t acc = 0;
    for (const auto& sp : shards) {
      std::lock_guard<std::mutex> lk(sp->mu);
      if (slot < sp->cells.size()) acc += sp->cells[slot].load(std::memory_order_relaxed);
    }
    return acc;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked on purpose: atexit flush handlers read it after static
  // destructors of other translation units have started running.
  static Registry* r = new Registry;
  return *r;
}

Counter Registry::counter(const std::string& name) {
  return Counter(this, impl_->intern(name, Kind::kCounter, 1, {}).slot);
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(&impl_->intern(name, Kind::kGauge, 0, {}).gauge);
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<std::uint64_t> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end()))
    throw std::invalid_argument("histogram bounds must be ascending");
  // buckets (bounds + overflow) followed by the value-sum cell.
  const auto n_cells = static_cast<std::uint32_t>(bounds.size() + 2);
  return Histogram(this, &impl_->intern(name, Kind::kHistogram, n_cells,
                                        std::move(bounds)));
}

void Counter::add(std::uint64_t v) const {
  reg_->impl_->local_shard().cell(slot_).fetch_add(v, std::memory_order_relaxed);
}

void Gauge::set(double v) const {
  static_cast<std::atomic<double>*>(cell_)->store(v, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t v) const {
  const auto* def = static_cast<const MetricDef*>(def_);
  const auto bucket = static_cast<std::uint32_t>(
      std::upper_bound(def->bounds.begin(), def->bounds.end(), v) - def->bounds.begin());
  Shard& shard = reg_->impl_->local_shard();
  // Make sure the whole block exists so the sum cell is addressable.
  shard.cell(def->slot + def->n_cells - 1);
  shard.cells[def->slot + bucket].fetch_add(1, std::memory_order_relaxed);
  shard.cells[def->slot + def->n_cells - 1].fetch_add(v, std::memory_order_relaxed);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->defs.size();
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) return 0;
  const MetricDef& d = *impl_->defs[it->second];
  if (d.kind != Kind::kCounter) return 0;
  return impl_->sum_cell(d.slot);
}

std::string Registry::snapshot_json(bool with_manifest) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  JsonWriter w;
  w.begin_object();
  w.field("schema", "vab-metrics-v1");
  if (with_manifest) {
    w.key("manifest");
    w.raw(manifest_json());
  }

  // by_name is a std::map, so each section comes out alphabetically.
  w.key("counters").begin_object();
  for (const auto& [name, idx] : impl_->by_name) {
    const MetricDef& d = *impl_->defs[idx];
    if (d.kind == Kind::kCounter) w.field(name, impl_->sum_cell(d.slot));
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, idx] : impl_->by_name) {
    const MetricDef& d = *impl_->defs[idx];
    if (d.kind == Kind::kGauge)
      w.field(name, d.gauge.load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, idx] : impl_->by_name) {
    const MetricDef& d = *impl_->defs[idx];
    if (d.kind != Kind::kHistogram) continue;
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : d.bounds) w.value(b);
    w.end_array();
    std::uint64_t total = 0;
    w.key("counts").begin_array();
    for (std::uint32_t i = 0; i + 1 < d.n_cells; ++i) {
      const std::uint64_t c = impl_->sum_cell(d.slot + i);
      total += c;
      w.value(c);
    }
    w.end_array();
    w.field("count", total);
    w.field("sum", impl_->sum_cell(d.slot + d.n_cells - 1));
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

bool write_metrics(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << Registry::global().snapshot_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace vab::obs
