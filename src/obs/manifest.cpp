#include "obs/manifest.hpp"

#include <mutex>

#include "obs/json.hpp"

#ifndef VAB_VERSION
#define VAB_VERSION "0.0.0-dev"
#endif
#ifndef VAB_BUILD_TYPE
#define VAB_BUILD_TYPE "unknown"
#endif

namespace vab::obs {

namespace {

struct ManifestState {
  std::mutex mu;
  std::map<std::string, std::string> entries;
  ManifestState() {
    entries["library"] = "vab";
    entries["version"] = VAB_VERSION;
    entries["build_type"] = VAB_BUILD_TYPE;
  }
};

// Leaked on purpose: the manifest is read by atexit flush handlers, which
// would race a static destructor.
ManifestState& state() {
  static ManifestState* s = new ManifestState;
  return *s;
}

}  // namespace

const char* library_version() { return VAB_VERSION; }
const char* build_type() { return VAB_BUILD_TYPE; }

void set_manifest(const std::string& key, const std::string& value) {
  ManifestState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.entries[key] = value;
}

std::map<std::string, std::string> manifest() {
  ManifestState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.entries;
}

std::string manifest_json() {
  const auto entries = manifest();
  JsonWriter w;
  w.begin_object();
  for (const auto& [k, v] : entries) w.field(k, v);
  w.end_object();
  return w.take();
}

}  // namespace vab::obs
