#include "obs/obs.hpp"

#include <cstdlib>
#include <mutex>

namespace vab::obs {

namespace {

struct OutputState {
  std::mutex mu;
  std::string metrics_path;
  std::string profile_path;
};

OutputState& outputs() {
  static OutputState* s = new OutputState;  // leaked: read from atexit
  return *s;
}

void register_flush_once() {
  static const bool registered = [] {
    std::atexit([] { flush_outputs(); });
    return true;
  }();
  (void)registered;
}

}  // namespace

void enable_metrics(std::string path) {
  OutputState& s = outputs();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.metrics_path = std::move(path);
  }
  register_flush_once();
}

std::string metrics_path() {
  OutputState& s = outputs();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.metrics_path;
}

void enable_profile(std::string path) {
  OutputState& s = outputs();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.profile_path = std::move(path);
  }
  // The profiler folds trace spans, so recording must be on; keep whatever
  // trace output path is already configured (often none).
  if (!trace_enabled()) enable_trace("");
  register_flush_once();
}

std::string profile_path() {
  OutputState& s = outputs();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.profile_path;
}

void init_from_env() {
  if (const char* p = std::getenv("VAB_TRACE"); p && *p) {
    enable_trace(p);
    register_flush_once();
  }
  if (const char* p = std::getenv("VAB_METRICS"); p && *p) enable_metrics(p);
  if (const char* p = std::getenv("VAB_PROFILE"); p && *p) enable_profile(p);
}

void flush_outputs() {
  if (const std::string p = trace_path(); trace_enabled() && !p.empty()) write_trace(p);
  if (const std::string p = metrics_path(); !p.empty()) write_metrics(p);
  if (const std::string p = profile_path(); !p.empty()) write_profile(p);
}

}  // namespace vab::obs
