#include "obs/labels.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace vab::obs {

namespace {

bool legal_label_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

void validate_token(const std::string& s, const char* what) {
  if (s.empty())
    throw std::invalid_argument(std::string("label ") + what + " is empty");
  for (const char c : s) {
    if (!legal_label_char(c))
      throw std::invalid_argument(std::string("label ") + what + " '" + s +
                                  "' has characters outside [A-Za-z0-9_.-]");
  }
}

// Shared family bookkeeping: the canonical-suffix -> handle cache, the cap,
// and the drop counter. Templated on the handle type (Counter/Histogram);
// the make callback interns a new series in the registry.
template <typename Handle>
struct FamilyState {
  std::mutex mu;
  std::map<std::string, Handle> series;  // canonical suffix -> handle
  std::size_t max_series;
  Handle overflow;
  Counter dropped_ctr;
  std::uint64_t dropped = 0;

  FamilyState(std::size_t cap, Handle overflow_handle, Counter drop_counter)
      : max_series(cap),
        overflow(overflow_handle),
        dropped_ctr(drop_counter) {}

  template <typename Make>
  Handle with(const LabelSet& labels, const Make& make) {
    const std::string suffix = encode_labels(labels);
    std::lock_guard<std::mutex> lk(mu);
    auto it = series.find(suffix);
    if (it != series.end()) return it->second;
    if (series.size() >= max_series) {
      ++dropped;
      dropped_ctr.inc();
      return overflow;
    }
    Handle h = make(suffix);
    series.emplace(suffix, h);
    return h;
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lk(mu);
    return series.size();
  }

  std::uint64_t dropped_count() {
    std::lock_guard<std::mutex> lk(mu);
    return dropped;
  }
};

}  // namespace

std::string encode_labels(const LabelSet& labels) {
  if (labels.empty()) throw std::invalid_argument("label set is empty");
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.first < b.first; });
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    validate_token(sorted[i].first, "key");
    validate_token(sorted[i].second, "value");
    if (i > 0) {
      if (sorted[i].first == sorted[i - 1].first)
        throw std::invalid_argument("duplicate label key '" + sorted[i].first + "'");
      out += ',';
    }
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

// --- CounterFamily ----------------------------------------------------------

struct CounterFamily::Impl : FamilyState<Counter> {
  Registry* reg;
  std::string name;

  Impl(Registry& r, std::string n, std::size_t cap)
      : FamilyState<Counter>(cap, r.counter(n + "{overflow}"),
                             r.counter(n + ".labels_dropped")),
        reg(&r),
        name(std::move(n)) {}
};

CounterFamily::CounterFamily(Registry& reg, std::string name,
                             std::size_t max_series)
    : impl_(std::make_shared<Impl>(reg, std::move(name), max_series)) {}

Counter CounterFamily::with(const LabelSet& labels) const {
  return impl_->with(labels, [this](const std::string& suffix) {
    return impl_->reg->counter(impl_->name + suffix);
  });
}

Counter CounterFamily::overflow() const { return impl_->overflow; }
std::size_t CounterFamily::series_count() const { return impl_->count(); }
std::uint64_t CounterFamily::dropped() const { return impl_->dropped_count(); }

// --- HistogramFamily --------------------------------------------------------

struct HistogramFamily::Impl : FamilyState<Histogram> {
  Registry* reg;
  std::string name;
  std::vector<std::uint64_t> bounds;

  Impl(Registry& r, std::string n, std::vector<std::uint64_t> b, std::size_t cap)
      : FamilyState<Histogram>(cap, r.histogram(n + "{overflow}", b),
                               r.counter(n + ".labels_dropped")),
        reg(&r),
        name(std::move(n)),
        bounds(std::move(b)) {}
};

HistogramFamily::HistogramFamily(Registry& reg, std::string name,
                                 std::vector<std::uint64_t> bounds,
                                 std::size_t max_series)
    : impl_(std::make_shared<Impl>(reg, std::move(name), std::move(bounds),
                                   max_series)) {}

Histogram HistogramFamily::with(const LabelSet& labels) const {
  return impl_->with(labels, [this](const std::string& suffix) {
    return impl_->reg->histogram(impl_->name + suffix, impl_->bounds);
  });
}

Histogram HistogramFamily::overflow() const { return impl_->overflow; }
std::size_t HistogramFamily::series_count() const { return impl_->count(); }
std::uint64_t HistogramFamily::dropped() const { return impl_->dropped_count(); }

}  // namespace vab::obs
