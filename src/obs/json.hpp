// Minimal streaming JSON writer shared by the metrics snapshot, the Chrome
// trace exporter and the bench BENCH line. Handles string escaping (the old
// hand-rolled bench writer interpolated bench_id/section unescaped) and
// comma/nesting bookkeeping; emission order is exactly call order, so sorted
// inputs produce byte-deterministic output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vab::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included):
/// `"`, `\`, and control characters become their escape sequences; other
/// bytes (including UTF-8 multibyte sequences) pass through untouched.
std::string json_escape(std::string_view s);

/// Formats a double the way JSON expects: the shortest decimal string that
/// round-trips to exactly the same double (std::to_chars shortest form), so
/// no value is silently altered by serialization. NaN and infinities (not
/// representable in JSON) degrade to `null`.
std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member (callers alternate key/value).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Emits a raw pre-serialized JSON fragment as the next value.
  JsonWriter& raw(std::string_view fragment);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true until the first member is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace vab::obs
