// Bounded-cardinality labeled metrics: counter/histogram *families* that
// fan one logical name out into per-label-set series, e.g.
//   fleet.delivered{node_class=sensor,reader=3}
//
// Each distinct label set becomes an ordinary registry metric whose name is
// the family name plus the canonical `{k=v,...}` suffix (keys sorted), so
// labeled series inherit everything the registry already guarantees:
// per-thread shards, relaxed-atomic hot path, and alphabetical snapshots.
//
// Cardinality model: a family admits at most `max_series` distinct label
// sets (first registration wins, no eviction — handles stay valid forever).
// Past the cap, `with()` returns the family's shared overflow series
// ("name{overflow}") and bumps the "name.labels_dropped" counter, so a
// runaway label (per-node ids at 100k nodes) costs two counters, not
// unbounded memory — and the loss is visible in the snapshot, never silent.
//
// Determinism: when every label set fits under the cap, snapshots are
// byte-identical for any thread count (the admitted set does not depend on
// order). Past the cap, *which* sets win their own series depends on
// registration order — register series deterministically (e.g. from the
// serial setup path) before fanning out recording threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace vab::obs {

/// One label: key/value strings over [A-Za-z0-9_.-] (both non-empty).
using Label = std::pair<std::string, std::string>;
using LabelSet = std::vector<Label>;

/// Default per-family cap on distinct label sets.
inline constexpr std::size_t kDefaultMaxSeries = 64;

/// Canonical `{k=v,k2=v2}` suffix: keys sorted, charset-validated. Throws
/// std::invalid_argument on an empty set, an empty/illegal key or value, or
/// a duplicate key.
std::string encode_labels(const LabelSet& labels);

/// Counter family. Copyable handle (shared state); safe to call `with()`
/// from any thread. Callers should cache the returned Counter — resolution
/// is a mutex + map lookup, recording is the usual lock-free shard add.
class CounterFamily {
 public:
  CounterFamily(Registry& reg, std::string name,
                std::size_t max_series = kDefaultMaxSeries);

  /// The series for `labels`, creating it if the family has capacity;
  /// otherwise the overflow series (and the drop counter ticks).
  Counter with(const LabelSet& labels) const;

  /// The shared "name{overflow}" series.
  Counter overflow() const;

  /// Distinct label sets admitted (excludes the overflow series).
  std::size_t series_count() const;

  /// `with()` resolutions routed to the overflow series so far.
  std::uint64_t dropped() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Histogram family: every series shares the family's bucket bounds.
class HistogramFamily {
 public:
  HistogramFamily(Registry& reg, std::string name,
                  std::vector<std::uint64_t> bounds,
                  std::size_t max_series = kDefaultMaxSeries);

  Histogram with(const LabelSet& labels) const;
  Histogram overflow() const;
  std::size_t series_count() const;
  std::uint64_t dropped() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace vab::obs
