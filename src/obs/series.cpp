#include "obs/series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace vab::obs {

namespace {

// Sorts a key/value vector by key, throwing on duplicates so a malformed
// point fails loudly instead of emitting ambiguous JSON.
template <typename V>
std::vector<std::pair<std::string, V>> sorted_unique(
    std::vector<std::pair<std::string, V>> kv, const char* what) {
  std::sort(kv.begin(), kv.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < kv.size(); ++i) {
    if (kv[i].first == kv[i - 1].first)
      throw std::invalid_argument(std::string("duplicate series ") + what +
                                  " key '" + kv[i].first + "'");
  }
  return kv;
}

}  // namespace

SeriesWriter::SeriesWriter(std::string stream, const std::string& path)
    : stream_(std::move(stream)) {
  if (!path.empty()) {
    file_ = std::make_unique<std::ofstream>(path);
    if (!*file_)
      throw std::runtime_error("series: cannot open '" + path + "' for writing");
  }
}

void SeriesWriter::write_line(const std::string& line) {
  buffer_ += line;
  buffer_ += '\n';
  if (file_) {
    *file_ << line << '\n';
    file_->flush();  // heartbeat semantics: every point lands immediately
  }
}

void SeriesWriter::write_header() {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "vab-series-v1");
  w.field("stream", stream_);
  w.key("manifest").raw(manifest_json());
  w.end_object();
  write_line(w.take());
  header_written_ = true;
}

void SeriesWriter::emit(const SeriesPoint& p) {
  if (!std::isfinite(p.t_s))
    throw std::invalid_argument("series point has a non-finite t_s");
  if (p.values.empty() && p.reals.empty())
    throw std::invalid_argument("series point has no values");
  if (points_ > 0 && p.window < last_window_)
    throw std::logic_error("series window regressed: virtual-time series "
                           "must be emitted in window order");

  // Reals and ints share the "v" object, so cross-check for collisions too.
  const auto values = sorted_unique(p.values, "value");
  const auto reals = sorted_unique(p.reals, "value");
  for (const auto& [k, v] : reals) {
    (void)v;
    const auto hit = std::find_if(values.begin(), values.end(),
                                  [&](const auto& e) { return e.first == k; });
    if (hit != values.end())
      throw std::invalid_argument("duplicate series value key '" + k + "'");
  }

  if (!header_written_) write_header();

  JsonWriter w;
  w.begin_object();
  w.field("w", p.window);
  w.field("t_s", p.t_s);
  if (!p.labels.empty()) {
    w.key("labels").begin_object();
    for (const auto& [k, v] : sorted_unique(p.labels, "label")) w.field(k, v);
    w.end_object();
  }
  w.key("v").begin_object();
  // Merge the two sorted runs so "v" comes out fully key-sorted.
  std::size_t i = 0, j = 0;
  while (i < values.size() || j < reals.size()) {
    if (j >= reals.size() ||
        (i < values.size() && values[i].first < reals[j].first)) {
      w.field(values[i].first, values[i].second);
      ++i;
    } else {
      w.field(reals[j].first, reals[j].second);
      ++j;
    }
  }
  w.end_object();
  w.end_object();
  write_line(w.take());

  last_window_ = p.window;
  ++points_;
}

}  // namespace vab::obs
