// Umbrella header for the observability layer: metrics registry, scoped
// tracing, run manifest, and the VAB_SPAN / VAB_STAGE instrumentation macros
// used throughout the library.
//
// Runtime gating (read once at startup, before main):
//   VAB_TRACE=<path>    record spans, write Chrome trace JSON to <path> at exit
//   VAB_METRICS=<path>  write the metrics snapshot JSON to <path> at exit
//   VAB_PROFILE=<path>  record spans, write the vab-profile-v1 span
//                       aggregation to <path> at exit
// Benches additionally accept `trace=<path>` / `metrics=<path>` /
// `profile=<path>` config keys (bench::init_threads wires them to
// enable_trace / enable_metrics / enable_profile).
//
// Compile-time gating: configure with -DVAB_DISABLE_OBS=ON (defines
// VAB_OBS_DISABLED) and the macros below expand to nothing, removing even
// the disabled-path atomic load from instrumented code.
//
// Invariant: instrumentation never touches an Rng or any computed value —
// seeded outputs are bit-identical whether observability is on or off.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/labels.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"

namespace vab::obs {

/// Reads VAB_TRACE / VAB_METRICS and arms the atexit flush. Runs
/// automatically before main (static initializer in the obs library);
/// callable again to pick up config-driven settings.
void init_from_env();

/// Arms the atexit metrics dump to `path`.
void enable_metrics(std::string path);
std::string metrics_path();

/// Arms the atexit profile dump to `path`. Profiling aggregates trace spans,
/// so this also turns span recording on (without changing the trace output
/// path if one is already configured).
void enable_profile(std::string path);
std::string profile_path();

/// Writes whatever outputs are configured (trace and/or metrics files).
/// Called automatically at process exit; callable early for long-running
/// processes that want periodic dumps.
void flush_outputs();

/// A named pipeline stage: resolved once (function-local static in the
/// VAB_STAGE macro) into a pair of counters — "stage.<name>.ns" and
/// "stage.<name>.calls" — plus the literal name used for trace spans.
class StageDef {
 public:
  explicit StageDef(const char* name)
      : name_(name),
        ns_(Registry::global().counter(std::string("stage.") + name + ".ns")),
        calls_(Registry::global().counter(std::string("stage.") + name + ".calls")) {}

  const char* name() const { return name_; }
  const Counter& ns() const { return ns_; }
  const Counter& calls() const { return calls_; }

 private:
  const char* name_;
  Counter ns_;
  Counter calls_;
};

/// RAII scope that feeds one StageDef: accumulates elapsed nanoseconds and
/// call counts into the metrics registry (always, the cost is two clock
/// reads and two relaxed adds) and records a trace span when tracing is on.
class StageScope {
 public:
  explicit StageScope(const StageDef& def) : def_(def), t0_(now_ns()) {}
  ~StageScope() {
    const std::uint64_t t1 = now_ns();
    def_.ns().add(t1 - t0_);
    def_.calls().inc();
    if (trace_enabled()) record_complete_event(def_.name(), "stage", t0_, t1);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const StageDef& def_;
  std::uint64_t t0_;
};

}  // namespace vab::obs

#define VAB_OBS_CONCAT2(a, b) a##b
#define VAB_OBS_CONCAT(a, b) VAB_OBS_CONCAT2(a, b)

#if defined(VAB_OBS_DISABLED)
#define VAB_SPAN(name) \
  do {                 \
  } while (0)
#define VAB_STAGE(name) \
  do {                  \
  } while (0)
#else
/// Trace-only span (no metrics): VAB_SPAN("sim.sweep_point");
#define VAB_SPAN(name) \
  ::vab::obs::TraceSpan VAB_OBS_CONCAT(vab_span_, __LINE__)(name)
/// Timed pipeline stage: trace span + stage.<name>.{ns,calls} counters.
#define VAB_STAGE(name)                                                       \
  static const ::vab::obs::StageDef VAB_OBS_CONCAT(vab_stage_def_, __LINE__){ \
      name};                                                                  \
  ::vab::obs::StageScope VAB_OBS_CONCAT(vab_stage_, __LINE__)(                \
      VAB_OBS_CONCAT(vab_stage_def_, __LINE__))
#endif
