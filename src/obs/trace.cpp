#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace vab::obs {

namespace {

constexpr std::size_t kRingCapacity = 1u << 15;  // events per thread (~1 MiB)

// One buffered span. Fields are relaxed atomics so the exporter can read
// rings while other threads keep recording (publication order: fields first,
// then the ring's count with release) without tripping TSan.
struct Event {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<std::uint64_t> t0{0};
  std::atomic<std::uint64_t> t1{0};
};

struct Ring {
  std::uint32_t tid = 0;
  std::atomic<const char*> thread_name{nullptr};
  std::atomic<std::uint64_t> count{0};  // total recorded (wraps overwrite)
  std::vector<Event> events{kRingCapacity};
};

struct TraceState {
  const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> next_tid{0};
  std::mutex mu;  // guards rings list and path
  std::vector<std::shared_ptr<Ring>> rings;
  std::string path;
};

// Leaked on purpose: written to by atexit handlers and read by threads whose
// lifetime we do not control.
TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

struct TlsThread {
  std::uint32_t tid;
  std::shared_ptr<Ring> ring;  // created lazily on first span
  const char* pending_name = nullptr;

  TlsThread() : tid(state().next_tid.fetch_add(1)) {}
};

TlsThread& local_thread() {
  thread_local TlsThread t;
  return t;
}

Ring& local_ring() {
  TlsThread& t = local_thread();
  if (!t.ring) {
    t.ring = std::make_shared<Ring>();
    t.ring->tid = t.tid;
    if (t.pending_name)
      t.ring->thread_name.store(t.pending_name, std::memory_order_relaxed);
    TraceState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.rings.push_back(t.ring);
  }
  return *t.ring;
}

}  // namespace

// Declared in obs.hpp (defined in obs.cpp); forward-declared here to avoid
// an include cycle with the umbrella header.
void init_from_env();

namespace {
// Static initializer: pins tid 0 to the loading (main) thread, reads the
// VAB_TRACE / VAB_METRICS env vars and arms the exit flush before main runs.
// Lives in this TU (not obs.cpp) because every instrumented call site
// references now_ns/trace_enabled, so this archive member — and with it the
// initializer — is pulled into every binary that uses the library.
const bool g_env_initialized = [] {
  (void)local_thread();
  init_from_env();
  return true;
}();
}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - state().epoch)
                                        .count());
}

std::uint32_t current_tid() { return local_thread().tid; }

void set_thread_name(const char* name) {
  TlsThread& t = local_thread();
  t.pending_name = name;
  if (t.ring) t.ring->thread_name.store(name, std::memory_order_relaxed);
}

bool trace_enabled() { return state().enabled.load(std::memory_order_relaxed); }

void enable_trace(std::string path) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.path = std::move(path);
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_trace() { state().enabled.store(false, std::memory_order_relaxed); }

std::string trace_path() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.path;
}

void record_complete_event(const char* name, const char* cat, std::uint64_t t0_ns,
                           std::uint64_t t1_ns) {
  if (!trace_enabled()) return;
  Ring& ring = local_ring();
  const std::uint64_t n = ring.count.load(std::memory_order_relaxed);
  if (n >= kRingCapacity) {
    // Overwriting the oldest event: make the loss observable as it happens,
    // not just in the export. Resolved once (magic static), relaxed add.
    static const Counter dropped_ctr = Registry::global().counter("obs.trace.dropped");
    dropped_ctr.inc();
  }
  Event& e = ring.events[n % kRingCapacity];
  e.name.store(name, std::memory_order_relaxed);
  e.cat.store(cat, std::memory_order_relaxed);
  e.t0.store(t0_ns, std::memory_order_relaxed);
  e.t1.store(t1_ns, std::memory_order_relaxed);
  ring.count.store(n + 1, std::memory_order_release);
}

std::vector<CollectedSpan> collect_trace_spans(std::uint64_t* dropped) {
  TraceState& s = state();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    rings = s.rings;
  }

  std::vector<CollectedSpan> flat;
  std::uint64_t lost = 0;
  for (const auto& ring : rings) {
    const std::uint64_t total = ring->count.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(total, kRingCapacity);
    lost += total - kept;
    for (std::uint64_t i = total - kept; i < total; ++i) {
      const Event& e = ring->events[i % kRingCapacity];
      CollectedSpan f;
      f.name = e.name.load(std::memory_order_relaxed);
      f.cat = e.cat.load(std::memory_order_relaxed);
      f.t0 = e.t0.load(std::memory_order_relaxed);
      f.t1 = e.t1.load(std::memory_order_relaxed);
      f.tid = ring->tid;
      if (f.name) flat.push_back(f);
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const CollectedSpan& a, const CollectedSpan& b) {
                     return a.t0 < b.t0;
                   });
  if (dropped) *dropped = lost;
  return flat;
}

std::string trace_json() {
  TraceState& s = state();
  std::vector<std::pair<std::uint32_t, const char*>> names;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& ring : s.rings) {
      const char* tname = ring->thread_name.load(std::memory_order_relaxed);
      names.emplace_back(ring->tid,
                         tname ? tname : (ring->tid == 0 ? "main" : nullptr));
    }
  }
  std::uint64_t dropped = 0;
  const std::vector<CollectedSpan> flat = collect_trace_spans(&dropped);

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [tid, tname] : names) {
    if (!tname) continue;
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", tid);
    w.key("args").begin_object().field("name", tname).end_object();
    w.end_object();
  }
  for (const CollectedSpan& f : flat) {
    w.begin_object();
    w.field("name", f.name);
    w.field("cat", f.cat ? f.cat : "vab");
    w.field("ph", "X");
    // Chrome trace timestamps/durations are microseconds.
    w.field("ts", static_cast<double>(f.t0) / 1000.0);
    w.field("dur", static_cast<double>(f.t1 - f.t0) / 1000.0);
    w.field("pid", 1);
    w.field("tid", f.tid);
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.key("manifest").raw(manifest_json());
  w.field("droppedEvents", dropped);
  w.field("truncated", dropped > 0);
  w.end_object();
  w.end_object();
  return w.take();
}

bool write_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << trace_json() << "\n";
  return static_cast<bool>(f);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& ring : s.rings)
    n += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->count.load(std::memory_order_acquire), kRingCapacity));
  return n;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (const auto& ring : s.rings) ring->count.store(0, std::memory_order_relaxed);
}

}  // namespace vab::obs
