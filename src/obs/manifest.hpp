// Run manifest: a process-global key/value description of the run (library
// version, build type, seed, thread count, config snapshot) embedded in every
// metrics snapshot, trace file and BENCH line so any artifact can be traced
// back to the exact run that produced it.
#pragma once

#include <map>
#include <string>

namespace vab::obs {

/// Library version string baked in at compile time (VAB_VERSION).
const char* library_version();

/// CMake build type baked in at compile time (VAB_BUILD_TYPE).
const char* build_type();

/// Sets (or overwrites) one manifest entry. Thread-safe.
void set_manifest(const std::string& key, const std::string& value);

/// Copy of the full manifest, including the built-in defaults
/// (library/version/build_type). Keys come back alphabetically ordered.
std::map<std::string, std::string> manifest();

/// The manifest as a JSON object fragment, e.g.
/// {"build_type":"RelWithDebInfo","library":"vab",...} — keys alphabetical,
/// values escaped. Suitable for JsonWriter::raw().
std::string manifest_json();

}  // namespace vab::obs
