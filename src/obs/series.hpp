// Virtual-time metric series: windowed snapshots keyed on a simulation's
// virtual clock (window sequence number + virtual seconds — never wall
// clock), exported as a `vab-series-v1` JSONL stream.
//
// Stream layout (one JSON object per line):
//   {"schema":"vab-series-v1","stream":"fleet.windows","manifest":{...}}
//   {"w":0,"t_s":236.2,"labels":{"reader":"0"},"v":{"delivered":57,...}}
//   {"w":1,"t_s":241.0,...}
//
// `w` is the producer's window sequence number and must never decrease;
// `t_s` is virtual time and must be finite. Integer values serialize as
// integers; real values use the shortest exact round-trip form (json.hpp),
// so a stream produced by a deterministic workload is byte-identical across
// thread counts and re-runs — `tools/vab_report.py --diff` relies on this.
//
// When constructed with a path, every point is written and flushed as it is
// emitted, so the stream doubles as live progress/heartbeat for long runs
// (tail -f the file, or point the future sim-service streamer at it). The
// full stream is also buffered in memory for summaries and tests.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vab::obs {

/// One windowed snapshot. `labels` attribute the point (reader id, node
/// class, ...); `values`/`reals` are the metrics. Keys are serialized in
/// sorted order regardless of insertion order; duplicate keys throw.
struct SeriesPoint {
  std::uint64_t window = 0;  ///< window sequence number (monotonic)
  double t_s = 0.0;          ///< virtual time, seconds (finite)
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, std::uint64_t>> values;
  std::vector<std::pair<std::string, double>> reals;
};

class SeriesWriter {
 public:
  /// `stream` names the series (e.g. "fleet.windows"); a non-empty `path`
  /// arms line-by-line file streaming (throws std::runtime_error when the
  /// file cannot be opened).
  explicit SeriesWriter(std::string stream, const std::string& path = "");

  SeriesWriter(const SeriesWriter&) = delete;
  SeriesWriter& operator=(const SeriesWriter&) = delete;

  /// Serializes and emits one point. Throws std::logic_error when `window`
  /// regresses and std::invalid_argument on a non-finite `t_s`, an empty
  /// value set, or duplicate keys. The header line (schema + manifest) is
  /// emitted lazily before the first point.
  void emit(const SeriesPoint& p);

  /// Points emitted so far.
  std::uint64_t points() const { return points_; }

  /// The full buffered stream (header + every point), JSONL.
  const std::string& jsonl() const { return buffer_; }

 private:
  void write_line(const std::string& line);
  void write_header();

  std::string stream_;
  std::string buffer_;
  std::unique_ptr<std::ofstream> file_;
  bool header_written_ = false;
  std::uint64_t points_ = 0;
  std::uint64_t last_window_ = 0;
};

}  // namespace vab::obs
