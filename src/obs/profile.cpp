#include "obs/profile.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace vab::obs {

namespace {

// One open frame while walking a thread's spans in begin-time order.
struct Frame {
  const char* name;
  std::uint64_t t1;
  std::uint64_t dur;
  std::uint64_t child_ns = 0;
  std::string path;  // semicolon-joined stack down to this frame
};

struct Aggregator {
  std::map<std::string, StageProfile> stages;
  std::map<std::string, std::uint64_t> folded;

  void close(const Frame& f) {
    const std::uint64_t self = f.dur > f.child_ns ? f.dur - f.child_ns : 0;
    StageProfile& s = stages[f.name];
    if (s.name.empty()) s.name = f.name;
    ++s.calls;
    s.total_ns += f.dur;
    s.self_ns += self;
    folded[f.path] += self;
  }
};

}  // namespace

ProfileSummary profile_spans(std::vector<CollectedSpan> spans,
                             std::uint64_t dropped) {
  // Group by thread, then order by (t0 asc, t1 desc, name) so a parent
  // precedes the children it encloses even at equal begin timestamps, and
  // ties break deterministically for synthetic (test) inputs.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const CollectedSpan& a, const CollectedSpan& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     if (a.t1 != b.t1) return a.t1 > b.t1;
                     return std::strcmp(a.name, b.name) < 0;
                   });

  Aggregator agg;
  std::vector<Frame> stack;
  std::uint32_t cur_tid = 0;
  bool first = true;
  auto flush_stack = [&] {
    while (!stack.empty()) {
      agg.close(stack.back());
      stack.pop_back();
    }
  };
  for (const CollectedSpan& e : spans) {
    if (!e.name) continue;
    if (first || e.tid != cur_tid) {
      flush_stack();
      cur_tid = e.tid;
      first = false;
    }
    // A frame that ended at or before this span's begin is a finished
    // sibling/ancestor; anything still open contains (or overlaps) us.
    while (!stack.empty() && stack.back().t1 <= e.t0) {
      agg.close(stack.back());
      stack.pop_back();
    }
    Frame f;
    f.name = e.name;
    f.t1 = e.t1;
    f.dur = e.t1 > e.t0 ? e.t1 - e.t0 : 0;
    f.path = stack.empty() ? std::string(e.name)
                           : stack.back().path + ";" + e.name;
    if (!stack.empty()) stack.back().child_ns += f.dur;
    stack.push_back(std::move(f));
  }
  flush_stack();

  ProfileSummary out;
  out.dropped = dropped;
  out.stages.reserve(agg.stages.size());
  for (auto& [name, stage] : agg.stages) out.stages.push_back(std::move(stage));
  out.folded.assign(agg.folded.begin(), agg.folded.end());
  return out;
}

ProfileSummary profile_from_trace() {
  std::uint64_t dropped = 0;
  std::vector<CollectedSpan> spans = collect_trace_spans(&dropped);
  return profile_spans(std::move(spans), dropped);
}

std::string profile_json(const ProfileSummary& p) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "vab-profile-v1");
  w.key("manifest").raw(manifest_json());
  w.field("dropped", p.dropped);
  w.key("stages").begin_object();
  for (const StageProfile& s : p.stages) {
    w.key(s.name).begin_object();
    w.field("calls", s.calls);
    w.field("total_ns", s.total_ns);
    w.field("self_ns", s.self_ns);
    w.end_object();
  }
  w.end_object();
  w.key("folded").begin_array();
  for (const auto& [path, self_ns] : p.folded) {
    w.begin_array();
    w.value(path);
    w.value(self_ns);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string profile_folded(const ProfileSummary& p) {
  std::string out;
  for (const auto& [path, self_ns] : p.folded) {
    out += path;
    out += ' ';
    out += std::to_string(self_ns);
    out += '\n';
  }
  return out;
}

bool write_profile(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << profile_json(profile_from_trace()) << "\n";
  return static_cast<bool>(f);
}

}  // namespace vab::obs
