// Minimal leveled logger. Global atomic level; emission is serialized by a
// mutex so concurrent messages from parallel trial workers never interleave
// mid-line. Writes to stderr so bench tables on stdout stay machine-parsable.
//
// The level defaults to warn and can be set at startup with
// VAB_LOG=debug|info|warn|error|off. Each line is prefixed with the
// monotonic timestamp (seconds since process start, obs::now_ns clock) and
// the obs thread id, so log lines correlate with trace spans:
//   [vab:INFO +0.014233 t01] message
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace vab::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a VAB_LOG-style level name ("debug", "info", "warn"/"warning",
/// "error", "off"/"none", case-insensitive); nullopt when unrecognized.
std::optional<LogLevel> parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) { log(LogLevel::kDebug, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { log(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_warn(Args&&... args) { log(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_error(Args&&... args) { log(LogLevel::kError, std::forward<Args>(args)...); }

}  // namespace vab::common
