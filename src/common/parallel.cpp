#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/obs.hpp"

namespace vab::common {

namespace {

constexpr unsigned kMaxThreads = 256;

thread_local bool t_in_worker = false;

std::atomic<unsigned> g_override{0};

// Engine observability: per-worker busy/idle time, task counts and the
// submit→dequeue queue-wait histogram. Handles resolve once; recording is a
// couple of relaxed atomic adds per *task* (one task = one helper's share of
// a whole parallel_for), so the engine's hot path is untouched.
struct EngineMetrics {
  obs::Counter tasks = obs::counter("parallel.tasks");
  obs::Counter loops = obs::counter("parallel.loops");
  obs::Counter inline_loops = obs::counter("parallel.inline_loops");
  obs::Counter busy_ns = obs::counter("parallel.worker_busy_ns");
  obs::Counter idle_ns = obs::counter("parallel.worker_idle_ns");
  obs::Gauge threads_gauge = obs::gauge("parallel.threads");
  // Per-worker attribution ({worker=N} series). Worker indices are bounded
  // by kMaxThreads, so the cap is never hit and no series is ever dropped.
  obs::CounterFamily busy_by_worker{obs::Registry::global(),
                                    "parallel.worker_busy_ns", kMaxThreads};
  obs::CounterFamily idle_by_worker{obs::Registry::global(),
                                    "parallel.worker_idle_ns", kMaxThreads};
  obs::CounterFamily tasks_by_worker{obs::Registry::global(),
                                     "parallel.worker_tasks", kMaxThreads};
  // 1µs .. 1s upper bounds, then overflow.
  obs::Histogram queue_wait_ns = obs::histogram(
      "parallel.queue_wait_ns",
      {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000, 1'000'000'000});

  static EngineMetrics& get() {
    static EngineMetrics* m = new EngineMetrics;  // leaked: read at exit
    return *m;
  }
};

// Work-sharing pool: workers pull whole "helper" tasks from a FIFO queue.
// Workers never block inside a task (nested loops run inline), so every
// submitted task terminates and the queue always drains.
class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  /// Grows the worker set so at least `n` workers exist (capped).
  void ensure_workers(unsigned n) {
    n = std::min(n, kMaxThreads);
    std::lock_guard<std::mutex> lk(mu_);
    while (workers_.size() < n) {
      const unsigned widx = static_cast<unsigned>(workers_.size());
      workers_.emplace_back([this, widx] {
        t_in_worker = true;
        obs::set_thread_name("pool-worker");
        EngineMetrics& m = EngineMetrics::get();
        // Resolve this worker's labeled series once; recording stays the
        // usual lock-free shard add.
        const obs::LabelSet wl{{"worker", std::to_string(widx)}};
        const obs::Counter w_busy = m.busy_by_worker.with(wl);
        const obs::Counter w_idle = m.idle_by_worker.with(wl);
        const obs::Counter w_tasks = m.tasks_by_worker.with(wl);
        for (;;) {
          Task task;
          const std::uint64_t t_wait = obs::now_ns();
          {
            std::unique_lock<std::mutex> lk2(mu_);
            cv_.wait(lk2, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
          }
          const std::uint64_t t_run = obs::now_ns();
          m.idle_ns.add(t_run - t_wait);
          w_idle.add(t_run - t_wait);
          m.queue_wait_ns.record(t_run - task.enqueue_ns);
          m.tasks.inc();
          w_tasks.inc();
          task.fn();
          const std::uint64_t t_done = obs::now_ns();
          m.busy_ns.add(t_done - t_run);
          w_busy.add(t_done - t_run);
        }
      });
    }
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(Task{std::move(task), obs::now_ns()});
    }
    cv_.notify_one();
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

 private:
  Pool() = default;

  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  // submit time, for the queue-wait histogram
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

// Shared state of one parallel_for invocation. Heap-held via shared_ptr so
// helper tasks that outlive the caller's drain loop stay valid until the
// last one signals completion (the caller blocks on `pending == 0`).
struct Job {
  std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t chunk = 1;

  std::mutex mu;
  std::condition_variable done;
  unsigned pending = 0;  // helpers still running (guarded by mu)

  std::mutex err_mu;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!error) error = std::current_exception();
        }
        next.store(end);  // abandon remaining chunks best-effort
        return;
      }
    }
  }
};

}  // namespace

unsigned hardware_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned thread_count() {
  const unsigned o = g_override.load();
  if (o > 0) return std::min(o, kMaxThreads);
  if (const char* env = std::getenv("VAB_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0)
      return std::min(static_cast<unsigned>(v), kMaxThreads);
  }
  return hardware_thread_count();
}

void set_thread_count(unsigned n) {
  g_override.store(std::min(n, kMaxThreads));
  obs::set_manifest("threads", std::to_string(thread_count()));
}

bool in_parallel_worker() { return t_in_worker; }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  unsigned threads = thread_count();
  if (threads > n) threads = static_cast<unsigned>(n);

  // Serial fast path: one thread requested, or we're already inside a pool
  // worker (nested parallelism runs inline so the pool can never deadlock).
  if (threads <= 1 || t_in_worker) {
    if (!t_in_worker) EngineMetrics::get().inline_loops.inc();
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  EngineMetrics& metrics = EngineMetrics::get();
  metrics.loops.inc();
  metrics.threads_gauge.set(static_cast<double>(threads));
  VAB_SPAN("parallel_for");

  auto job = std::make_shared<Job>();
  // Shift the range to [0, n) so `next` starts at 0 regardless of `begin`.
  job->body = [&body, begin](std::size_t i) { body(begin + i); };
  job->end = n;
  job->chunk = std::max<std::size_t>(1, n / (8 * threads));

  const unsigned helpers = threads - 1;
  job->pending = helpers;
  Pool& pool = Pool::instance();
  pool.ensure_workers(helpers);
  for (unsigned h = 0; h < helpers; ++h) {
    pool.submit([job] {
      {
        VAB_SPAN("parallel.task");
        job->drain();
      }
      // Decrement and notify under the mutex so the Job cannot be released
      // between the caller's predicate check and our notify.
      std::lock_guard<std::mutex> lk(job->mu);
      --job->pending;
      job->done.notify_all();
    });
  }

  job->drain();  // the caller participates too
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done.wait(lk, [&] { return job->pending == 0; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace vab::common
