#include "common/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::common {

cvec solve_linear(CMatrix a, cvec b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear needs square system");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = std::abs(a.at(r, col));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-14) throw std::runtime_error("singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const cplx f = a.at(r, col) / a.at(col, col);
      if (f == cplx{}) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  cvec x(n);
  for (std::size_t i = n; i-- > 0;) {
    cplx acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

cvec solve_least_squares(const CMatrix& a, const cvec& b, double lambda) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("rhs size mismatch");

  CMatrix ata(n, n);
  cvec atb(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cplx acc{};
      for (std::size_t r = 0; r < m; ++r) acc += std::conj(a.at(r, i)) * a.at(r, j);
      ata.at(i, j) = acc;
    }
    cplx acc{};
    for (std::size_t r = 0; r < m; ++r) acc += std::conj(a.at(r, i)) * b[r];
    atb[i] = acc;
  }
  if (lambda > 0.0)
    for (std::size_t i = 0; i < n; ++i) ata.at(i, i) += lambda;
  return solve_linear(std::move(ata), std::move(atb));
}

}  // namespace vab::common
