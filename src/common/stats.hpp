// Small statistics helpers used by the Monte-Carlo engine and benches.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::common {

double mean(const rvec& v);
double variance(const rvec& v);   // population variance
double stddev(const rvec& v);
double median(rvec v);            // by value: sorts a copy
double percentile(rvec v, double p);  // p in [0,100]
double min_value(const rvec& v);
double max_value(const rvec& v);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Binomial (Wilson) confidence half-width for an observed error rate; used
/// to report BER uncertainty from a finite number of bits.
double wilson_half_width(std::size_t errors, std::size_t trials, double z = 1.96);

/// Evenly spaced points from lo to hi inclusive.
rvec linspace(double lo, double hi, std::size_t n);

/// Logarithmically spaced points from lo to hi inclusive (lo, hi > 0).
rvec logspace(double lo, double hi, std::size_t n);

}  // namespace vab::common
