// Parallel trial-execution engine: a small persistent thread pool behind
// deterministic `parallel_for` / `parallel_reduce` helpers.
//
// Determinism contract:
//  - `parallel_for(begin, end, body)` invokes `body(i)` exactly once for
//    every i in [begin, end). Bodies that write only to per-index slots
//    therefore produce results independent of the thread count and of the
//    scheduling order.
//  - `parallel_reduce` partitions the range into fixed-size chunks whose
//    boundaries depend only on the range (never on the thread count),
//    reduces each chunk serially in index order, and folds the chunk
//    partials in chunk order. Floating-point accumulation is thus
//    bit-identical for any thread count, including 1.
//
// Thread count resolution (highest priority first):
//  1. `set_thread_count(n)` with n > 0 (benches expose this as `threads=N`),
//  2. the `VAB_THREADS` environment variable,
//  3. `std::thread::hardware_concurrency()`.
// `set_thread_count(0)` returns to automatic resolution. A count of 1 runs
// every loop inline on the calling thread (no pool involvement at all).
//
// Workers are started lazily and shared process-wide. A `parallel_for`
// issued from inside a worker thread (nested parallelism) runs serially
// inline, so nesting can never deadlock the pool.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace vab::common {

/// max(1, std::thread::hardware_concurrency()).
unsigned hardware_thread_count();

/// Effective thread count after override/env/hardware resolution.
unsigned thread_count();

/// Overrides the thread count; 0 restores automatic (VAB_THREADS/hardware).
void set_thread_count(unsigned n);

/// True when called from inside a pool worker thread.
bool in_parallel_worker();

/// Runs body(i) for every i in [begin, end), fanned out over the pool.
/// The first exception thrown by any body is rethrown on the caller after
/// the whole loop has quiesced; remaining work is abandoned best-effort.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Contiguous near-equal partition of [0, n) into `count` pieces: piece
/// `index` gets {begin, end} with the first n % count pieces one element
/// longer. Depends only on (n, index, count), so a sharded campaign covers
/// exactly the same global indices however the pieces are distributed.
inline std::pair<std::size_t, std::size_t> split_range(std::size_t n,
                                                       std::size_t index,
                                                       std::size_t count) {
  const std::size_t base = n / count;
  const std::size_t rem = n % count;
  const std::size_t begin = index * base + std::min(index, rem);
  return {begin, begin + base + (index < rem ? 1 : 0)};
}

/// Chunk size used by parallel_reduce: depends only on the range length so
/// chunk boundaries (and therefore fold order) are thread-count-invariant.
inline std::size_t reduce_grain(std::size_t n) {
  return std::clamp<std::size_t>(n / 1024, 1, 4096);
}

/// Deterministic map/reduce: `map(i) -> T`, `combine(T, T) -> T`.
/// `combine` is applied serially in index order within fixed chunks and
/// then across chunk partials in chunk order, so the result is
/// bit-identical for any thread count (combine need not be commutative,
/// only associative over the fixed fold shape).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, Map&& map,
                  Combine&& combine) {
  if (end <= begin) return init;
  const std::size_t n = end - begin;
  const std::size_t grain = reduce_grain(n);
  const std::size_t n_chunks = (n + grain - 1) / grain;
  std::vector<T> partials(n_chunks, init);
  parallel_for(0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    T acc = partials[c];
    for (std::size_t i = lo; i < hi; ++i) acc = combine(std::move(acc), map(i));
    partials[c] = std::move(acc);
  });
  T out = std::move(partials[0]);
  for (std::size_t c = 1; c < n_chunks; ++c)
    out = combine(std::move(out), std::move(partials[c]));
  return out;
}

}  // namespace vab::common
