#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vab::common {

double mean(const rvec& v) {
  if (v.empty()) throw std::invalid_argument("mean of empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const rvec& v) {
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const rvec& v) { return std::sqrt(variance(v)); }

double median(rvec v) { return percentile(std::move(v), 50.0); }

double percentile(rvec v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile of empty vector");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double min_value(const rvec& v) {
  if (v.empty()) throw std::invalid_argument("min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const rvec& v) {
  if (v.empty()) throw std::invalid_argument("max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double wilson_half_width(std::size_t errors, std::size_t trials, double z) {
  if (trials == 0) return 1.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(errors) / n;
  const double z2 = z * z;
  return z / (1.0 + z2 / n) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
}

rvec linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  rvec out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  return out;
}

rvec logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace needs positive bounds");
  rvec exps = linspace(std::log10(lo), std::log10(hi), n);
  for (auto& e : exps) e = std::pow(10.0, e);
  return exps;
}

}  // namespace vab::common
