// Small dense complex linear algebra: just enough to solve the least-squares
// problems of the PHY equalizer (channel fit, zero-forcing tap design).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace vab::common {

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  cplx& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_, cols_;
  cvec data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square and nonsingular (throws std::runtime_error otherwise).
cvec solve_linear(CMatrix a, cvec b);

/// Least squares: minimizes ||A x - b||_2 via the normal equations
/// (A^H A + lambda I) x = A^H b. `lambda` regularizes near-singular fits.
cvec solve_least_squares(const CMatrix& a, const cvec& b, double lambda = 0.0);

}  // namespace vab::common
