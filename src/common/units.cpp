#include "common/units.hpp"

namespace vab::common {

double wrap_angle(double rad) {
  double w = std::fmod(rad + kPi, kTwoPi);
  if (w <= 0.0) w += kTwoPi;
  return w - kPi;
}

}  // namespace vab::common
