// Tiny key=value configuration store with typed getters.
//
// Examples accept `key=value` command-line overrides (e.g. `range_m=150
// bitrate=500`) so scenarios can be explored without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vab::common {

class Config {
 public:
  Config() = default;

  /// Parses `key=value` tokens; tokens without '=' raise.
  static Config from_args(int argc, const char* const* argv);

  /// Parses an ini-like string: one `key=value` per line, '#' comments.
  static Config from_string(const std::string& text);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace vab::common
