#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace vab::common {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("expected key=value, got '" + tok + "'");
    cfg.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("config line missing '=': " + line);
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  if (key.empty()) throw std::invalid_argument("empty config key");
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.contains(key); }

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // Strict parse: the whole value must be consumed. std::stod alone accepts
  // "1.5abc" as 1.5, which silently turns a typo'd override (range_m=100m)
  // into a plausible number instead of an error.
  try {
    std::size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not a number: " + it->second);
  }
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const long v = std::stol(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not an integer: " + it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  // Plain ::tolower(char) is UB for negative chars (cert-str34-c); widen
  // through unsigned char first.
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "' is not a boolean: " + it->second);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace vab::common
