#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vab::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("row arity does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << to_csv();
  if (!f) throw std::runtime_error("failed writing " + path);
}

}  // namespace vab::common
