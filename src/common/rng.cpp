#include "common/rng.hpp"

#include <cmath>

namespace vab::common {

cplx Rng::complex_gaussian(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return {s * gaussian(), s * gaussian()};
}

rvec Rng::gaussian_vector(std::size_t n, double stddev) {
  rvec out(n);
  for (auto& x : out) x = stddev * gaussian();
  return out;
}

bitvec Rng::random_bits(std::size_t n) {
  bitvec out(n);
  for (auto& b : out) b = coin() ? 1 : 0;
  return out;
}

}  // namespace vab::common
