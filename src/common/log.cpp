#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vab::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // One mutex-guarded write per message: parallel_for workers log whole
  // lines, never interleaved fragments.
  static std::mutex emit_mu;
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[vab:";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lk(emit_mu);
  std::cerr << line;
}
}  // namespace detail

}  // namespace vab::common
