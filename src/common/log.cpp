#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "obs/trace.hpp"

namespace vab::common {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("VAB_LOG")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // Timestamp on the trace clock and the trace thread id, so a log line can
  // be placed directly against spans in the exported Chrome trace.
  const double t_s = static_cast<double>(obs::now_ns()) * 1e-9;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[vab:%s +%.6f t%02u] ", level_name(level),
                t_s, obs::current_tid());

  // One mutex-guarded write per message: parallel_for workers log whole
  // lines, never interleaved fragments.
  static std::mutex emit_mu;
  std::string line;
  line.reserve(msg.size() + 40);
  line += prefix;
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lk(emit_mu);
  std::cerr << line;
}
}  // namespace detail

}  // namespace vab::common
