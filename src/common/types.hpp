// Shared vector/scalar typedefs for signal processing code.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace vab {

using cplx = std::complex<double>;
using cvec = std::vector<cplx>;
using rvec = std::vector<double>;
using bytes = std::vector<std::uint8_t>;
using bitvec = std::vector<std::uint8_t>;  // one bit per element, value 0/1

inline constexpr cplx kJ{0.0, 1.0};

}  // namespace vab
