// Unit conversions and physical constants used across the VAB library.
//
// Underwater acoustics works in decibels referenced to 1 micropascal
// (dB re 1 uPa for pressure level, dB re 1 uPa^2/Hz for spectral density).
// All linear quantities in this library are SI: pascals, meters, seconds,
// hertz, watts.
#pragma once

#include <cmath>
#include <complex>

namespace vab::common {

/// Reference pressure for underwater sound levels, 1 micropascal in Pa.
inline constexpr double kRefPressurePa = 1e-6;

/// Nominal speed of sound in water (m/s); profiles refine this.
inline constexpr double kNominalSoundSpeed = 1500.0;

/// Characteristic acoustic impedance of seawater (rho * c), Pa*s/m.
inline constexpr double kWaterAcousticImpedance = 1.5e6;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Power ratio to decibels. `ratio` must be > 0.
inline double db_from_power_ratio(double ratio) { return 10.0 * std::log10(ratio); }

/// Amplitude (field quantity) ratio to decibels.
inline double db_from_amplitude_ratio(double ratio) { return 20.0 * std::log10(ratio); }

/// Decibels to linear power ratio.
inline double power_ratio_from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Decibels to linear amplitude ratio.
inline double amplitude_ratio_from_db(double db) { return std::pow(10.0, db / 20.0); }

/// RMS pressure (Pa) -> sound pressure level in dB re 1 uPa.
inline double spl_from_pressure(double rms_pa) {
  return db_from_amplitude_ratio(rms_pa / kRefPressurePa);
}

/// Sound pressure level in dB re 1 uPa -> RMS pressure (Pa).
inline double pressure_from_spl(double spl_db) {
  return kRefPressurePa * amplitude_ratio_from_db(spl_db);
}

/// Acoustic wavelength (m) at frequency `f_hz` for sound speed `c`.
inline double wavelength(double f_hz, double c = kNominalSoundSpeed) { return c / f_hz; }

/// Acoustic wavenumber (rad/m).
inline double wavenumber(double f_hz, double c = kNominalSoundSpeed) {
  return kTwoPi * f_hz / c;
}

inline double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wraps an angle to (-pi, pi].
double wrap_angle(double rad);

}  // namespace vab::common
