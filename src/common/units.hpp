// Unit conversions, physical constants and the strong-typedef units layer
// used across the VAB library.
//
// Underwater acoustics works in decibels referenced to 1 micropascal
// (dB re 1 uPa for pressure level, dB re 1 uPa^2/Hz for spectral density).
// All linear quantities in this library are SI: pascals, meters, seconds,
// hertz, watts.
//
// The strong types (Db, SnrDb/SnrLinear, Hz, SampleRateHz, Seconds, Meters,
// DbPerM, PowerW, SampleCount) exist to make the two bug classes that have
// actually bitten figure code unrepresentable: dB-vs-linear mixups and
// seconds-vs-samples mixups. Each wraps exactly one double (or size_t for
// SampleCount) with an *explicit* constructor, a `raw()` escape hatch, and
// only the arithmetic that is dimensionally meaningful, all constexpr, so
// the wrappers are zero-overhead — layout identity is static_assert'ed at
// the bottom of this header. Scale changes are never implicit: crossing the
// dB/linear boundary spells `to_linear()` / `to_db()`, and crossing the
// seconds/samples boundary spells `samples_floor/ceil/round()` or
// `duration_of()`. `raw()` is the one sanctioned exit; see DESIGN.md
// ("Units & domains") for when using it is acceptable.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <type_traits>

namespace vab::common {

/// Reference pressure for underwater sound levels, 1 micropascal in Pa.
inline constexpr double kRefPressurePa = 1e-6;

/// Nominal speed of sound in water (m/s); profiles refine this.
inline constexpr double kNominalSoundSpeed = 1500.0;

/// Characteristic acoustic impedance of seawater (rho * c), Pa*s/m.
inline constexpr double kWaterAcousticImpedance = 1.5e6;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Power ratio to decibels. `ratio` must be > 0.
inline double db_from_power_ratio(double ratio) { return 10.0 * std::log10(ratio); }

/// Amplitude (field quantity) ratio to decibels.
inline double db_from_amplitude_ratio(double ratio) { return 20.0 * std::log10(ratio); }

/// Decibels to linear power ratio.
inline double power_ratio_from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Decibels to linear amplitude ratio.
inline double amplitude_ratio_from_db(double db) { return std::pow(10.0, db / 20.0); }

/// RMS pressure (Pa) -> sound pressure level in dB re 1 uPa.
inline double spl_from_pressure(double rms_pa) {
  return db_from_amplitude_ratio(rms_pa / kRefPressurePa);
}

/// Sound pressure level in dB re 1 uPa -> RMS pressure (Pa).
inline double pressure_from_spl(double spl_db) {
  return kRefPressurePa * amplitude_ratio_from_db(spl_db);
}

/// Acoustic wavelength (m) at frequency `f_hz` for sound speed `c`.
inline double wavelength(double f_hz, double c = kNominalSoundSpeed) { return c / f_hz; }

/// Acoustic wavenumber (rad/m).
inline double wavenumber(double f_hz, double c = kNominalSoundSpeed) {
  return kTwoPi * f_hz / c;
}

inline double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wraps an angle to (-pi, pi].
double wrap_angle(double rad);

// ---------------------------------------------------------------------------
// Strong-typedef units layer.
// ---------------------------------------------------------------------------

namespace units_detail {

/// CRTP base: one double, explicit construction, `raw()` escape hatch and
/// total ordering. Derived types opt into arithmetic via the mixins below so
/// only dimensionally meaningful operations exist.
template <class Derived>
struct StrongDouble {
  double v = 0.0;

  constexpr StrongDouble() = default;
  constexpr explicit StrongDouble(double value) : v(value) {}

  /// The sanctioned exit back to raw double (interior math, printing).
  [[nodiscard]] constexpr double raw() const { return v; }
  [[nodiscard]] bool is_finite() const { return std::isfinite(v); }

  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.v != b.v; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.v < b.v; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.v <= b.v; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.v > b.v; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.v >= b.v; }
};

/// D + D, D - D, unary minus: quantities that form a vector space.
template <class Derived>
struct Additive {
  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.v + b.v};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.v - b.v};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }
  friend constexpr Derived& operator+=(Derived& a, Derived b) {
    a.v += b.v;
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) {
    a.v -= b.v;
    return a;
  }
};

/// D * scalar, D / scalar, D / D -> dimensionless ratio.
template <class Derived>
struct Scalable {
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{s * a.v}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
};

}  // namespace units_detail

struct SnrDb;
struct SnrLinear;

/// A decibel quantity on the power scale: levels (SPL, NSD + bandwidth),
/// gains and losses (TL, TS, fading, margins). Adding two Db composes gains;
/// there is deliberately no implicit path to a linear ratio.
struct Db : units_detail::StrongDouble<Db>,
            units_detail::Additive<Db>,
            units_detail::Scalable<Db> {
  using StrongDouble::StrongDouble;

  /// 10^(v/10): this dB value as a linear *power* ratio.
  [[nodiscard]] double to_power_ratio() const { return std::pow(10.0, v / 10.0); }
  /// 10^(v/20): this dB value as a linear *amplitude* ratio.
  [[nodiscard]] double to_amplitude_ratio() const { return std::pow(10.0, v / 20.0); }
  [[nodiscard]] static Db from_power_ratio(double ratio) {
    return Db{10.0 * std::log10(ratio)};
  }
  [[nodiscard]] static Db from_amplitude_ratio(double ratio) {
    return Db{20.0 * std::log10(ratio)};
  }
};

/// Signal-to-noise ratio in dB. Distinct from Db the way a point is distinct
/// from an offset: SnrDb +/- Db (applying a gain or margin) stays SnrDb,
/// SnrDb - SnrDb (comparing operating points) is a Db margin, and SnrDb +
/// SnrDb does not exist. Crossing to the linear scale spells to_linear().
struct SnrDb : units_detail::StrongDouble<SnrDb> {
  using StrongDouble::StrongDouble;

  [[nodiscard]] SnrLinear to_linear() const;

  friend constexpr SnrDb operator+(SnrDb s, Db g) { return SnrDb{s.v + g.raw()}; }
  friend constexpr SnrDb operator-(SnrDb s, Db g) { return SnrDb{s.v - g.raw()}; }
  friend constexpr Db operator-(SnrDb a, SnrDb b) { return Db{a.v - b.v}; }
  friend constexpr SnrDb& operator+=(SnrDb& s, Db g) {
    s.v += g.raw();
    return s;
  }
  friend constexpr SnrDb& operator-=(SnrDb& s, Db g) {
    s.v -= g.raw();
    return s;
  }
};

/// Linear-scale (power-ratio) SNR — what BER curves consume. Only explicit
/// conversion reaches the dB scale.
struct SnrLinear : units_detail::StrongDouble<SnrLinear>,
                   units_detail::Scalable<SnrLinear> {
  using StrongDouble::StrongDouble;

  [[nodiscard]] SnrDb to_db() const { return SnrDb{10.0 * std::log10(v)}; }
};

inline SnrLinear SnrDb::to_linear() const { return SnrLinear{std::pow(10.0, v / 10.0)}; }

/// A frequency in hertz (carrier, bandwidth, chip rate).
struct Hz : units_detail::StrongDouble<Hz>,
            units_detail::Additive<Hz>,
            units_detail::Scalable<Hz> {
  using StrongDouble::StrongDouble;

  [[nodiscard]] constexpr double khz() const { return v / 1000.0; }
  [[nodiscard]] static constexpr Hz from_khz(double f_khz) { return Hz{f_khz * 1000.0}; }
};

/// A sampling rate. Deliberately not interchangeable with Hz: a carrier and
/// a converter clock answer different questions, and the seconds<->samples
/// conversions below only accept this type.
struct SampleRateHz : units_detail::StrongDouble<SampleRateHz>,
                      units_detail::Scalable<SampleRateHz> {
  using StrongDouble::StrongDouble;
};

struct Seconds : units_detail::StrongDouble<Seconds>,
                 units_detail::Additive<Seconds>,
                 units_detail::Scalable<Seconds> {
  using StrongDouble::StrongDouble;
};

struct Meters : units_detail::StrongDouble<Meters>,
                units_detail::Additive<Meters>,
                units_detail::Scalable<Meters> {
  using StrongDouble::StrongDouble;

  [[nodiscard]] constexpr double km() const { return v / 1000.0; }
};

/// Absorption coefficient. Stored per meter; the classic tables quote dB/km,
/// so a named per-km constructor avoids the silent 1000x.
struct DbPerM : units_detail::StrongDouble<DbPerM>, units_detail::Scalable<DbPerM> {
  using StrongDouble::StrongDouble;

  [[nodiscard]] static constexpr DbPerM per_km(double db_per_km) {
    return DbPerM{db_per_km / 1000.0};
  }
  [[nodiscard]] constexpr double raw_per_km() const { return v * 1000.0; }
};

struct PowerW : units_detail::StrongDouble<PowerW>,
                units_detail::Additive<PowerW>,
                units_detail::Scalable<PowerW> {
  using StrongDouble::StrongDouble;
};

/// An integral number of samples. Arithmetic stays in sample space; crossing
/// to or from Seconds goes through the explicit conversions below, which
/// force a rounding-mode decision at every boundary.
struct SampleCount {
  std::size_t v = 0;

  constexpr SampleCount() = default;
  constexpr explicit SampleCount(std::size_t value) : v(value) {}

  [[nodiscard]] constexpr std::size_t raw() const { return v; }

  friend constexpr bool operator==(SampleCount a, SampleCount b) { return a.v == b.v; }
  friend constexpr bool operator!=(SampleCount a, SampleCount b) { return a.v != b.v; }
  friend constexpr bool operator<(SampleCount a, SampleCount b) { return a.v < b.v; }
  friend constexpr bool operator<=(SampleCount a, SampleCount b) { return a.v <= b.v; }
  friend constexpr bool operator>(SampleCount a, SampleCount b) { return a.v > b.v; }
  friend constexpr bool operator>=(SampleCount a, SampleCount b) { return a.v >= b.v; }
  friend constexpr SampleCount operator+(SampleCount a, SampleCount b) {
    return SampleCount{a.v + b.v};
  }
  friend constexpr SampleCount operator-(SampleCount a, SampleCount b) {
    return SampleCount{a.v - b.v};
  }
};

// Dimensional cross products.

/// absorption coefficient x distance = loss.
constexpr Db operator*(DbPerM a, Meters r) { return Db{a.raw() * r.raw()}; }
constexpr Db operator*(Meters r, DbPerM a) { return Db{r.raw() * a.raw()}; }

/// frequency x duration = cycles (dimensionless).
constexpr double operator*(Hz f, Seconds t) { return f.raw() * t.raw(); }
constexpr double operator*(Seconds t, Hz f) { return t.raw() * f.raw(); }

/// sample rate x duration = fractional sample index span.
constexpr double operator*(SampleRateHz fs, Seconds t) { return fs.raw() * t.raw(); }
constexpr double operator*(Seconds t, SampleRateHz fs) { return t.raw() * fs.raw(); }

/// samples per cycle of `f` when sampled at `fs`.
constexpr double operator/(SampleRateHz fs, Hz f) { return fs.raw() / f.raw(); }
/// normalized frequency (cycles per sample).
constexpr double operator/(Hz f, SampleRateHz fs) { return f.raw() / fs.raw(); }

// Seconds <-> samples: every crossing names its rounding mode.

inline SampleCount samples_floor(Seconds t, SampleRateHz fs) {
  return SampleCount{static_cast<std::size_t>(t.raw() * fs.raw())};
}
inline SampleCount samples_ceil(Seconds t, SampleRateHz fs) {
  return SampleCount{static_cast<std::size_t>(std::ceil(t.raw() * fs.raw()))};
}
inline SampleCount samples_round(Seconds t, SampleRateHz fs) {
  return SampleCount{static_cast<std::size_t>(std::llround(t.raw() * fs.raw()))};
}
constexpr Seconds duration_of(SampleCount n, SampleRateHz fs) {
  return Seconds{static_cast<double>(n.raw()) / fs.raw()};
}

// Zero-overhead proof: each wrapper is layout-identical to the double (or
// size_t) it replaces and trivially passes in registers, so migrating an API
// boundary cannot change codegen, ABI or struct layout.
namespace units_detail {
template <class T, class Raw>
inline constexpr bool layout_identical =
    sizeof(T) == sizeof(Raw) && alignof(T) == alignof(Raw) &&
    std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T> &&
    std::is_standard_layout_v<T> && std::is_nothrow_default_constructible_v<T>;
}  // namespace units_detail
static_assert(units_detail::layout_identical<Db, double>);
static_assert(units_detail::layout_identical<SnrDb, double>);
static_assert(units_detail::layout_identical<SnrLinear, double>);
static_assert(units_detail::layout_identical<Hz, double>);
static_assert(units_detail::layout_identical<SampleRateHz, double>);
static_assert(units_detail::layout_identical<Seconds, double>);
static_assert(units_detail::layout_identical<Meters, double>);
static_assert(units_detail::layout_identical<DbPerM, double>);
static_assert(units_detail::layout_identical<PowerW, double>);
static_assert(units_detail::layout_identical<SampleCount, std::size_t>);
// No accidental cross-unit or from-double implicit conversions.
static_assert(!std::is_convertible_v<double, Db>);
static_assert(!std::is_convertible_v<Db, double>);
static_assert(!std::is_convertible_v<Db, SnrDb>);
static_assert(!std::is_convertible_v<SnrDb, SnrLinear>);
static_assert(!std::is_convertible_v<Hz, SampleRateHz>);
static_assert(!std::is_convertible_v<Seconds, Meters>);

/// Unit literals for tests and tables: `6.0_dB`, `18500.0_hz`, `1.5_m` ...
namespace unit_literals {
constexpr Db operator""_dB(long double x) { return Db{static_cast<double>(x)}; }
constexpr SnrDb operator""_snr_dB(long double x) { return SnrDb{static_cast<double>(x)}; }
constexpr Hz operator""_hz(long double x) { return Hz{static_cast<double>(x)}; }
constexpr Hz operator""_khz(long double x) { return Hz{static_cast<double>(x) * 1000.0}; }
constexpr Seconds operator""_s(long double x) { return Seconds{static_cast<double>(x)}; }
constexpr Seconds operator""_ms(long double x) {
  return Seconds{static_cast<double>(x) / 1000.0};
}
constexpr Meters operator""_m(long double x) { return Meters{static_cast<double>(x)}; }
constexpr Meters operator""_km(long double x) {
  return Meters{static_cast<double>(x) * 1000.0};
}
constexpr PowerW operator""_w(long double x) { return PowerW{static_cast<double>(x)}; }
}  // namespace unit_literals

}  // namespace vab::common
