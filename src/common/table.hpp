// Console table and CSV emission for the benchmark harness.
//
// Every bench prints the rows/series of the paper artifact it regenerates as
// an aligned console table, and optionally mirrors it to a CSV file so the
// data can be re-plotted.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace vab::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Scientific notation, for BER-style quantities.
  static std::string sci(double v, int precision = 2);

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (no embedded quotes expected in our data).
  std::string to_csv() const;

  /// Writes the CSV form to `path`; throws on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vab::common
