// Deterministic random number generation for reproducible Monte-Carlo runs.
//
// Every stochastic component in the library takes an explicit Rng& so that a
// trial is fully determined by its seed. Benches derive per-trial seeds from
// a master seed with `child()` to keep trials independent yet reproducible.
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace vab::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// SplitMix64 finalizer: a bijective avalanche mix on 64 bits.
  static std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Derives an independent child generator; `stream` distinguishes children.
  ///
  /// Derivation contract:
  ///   child_seed = mix64(seed + mix64(stream + GAMMA)),  GAMMA = 2^64/phi.
  ///
  /// The stream index is avalanche-mixed *before* being combined with the
  /// parent seed. The earlier derivation added `GAMMA * (stream + 1)` raw,
  /// which left child seeds of one parent on an arithmetic lattice: two
  /// parents whose seeds differ by a multiple of GAMMA (which nested
  /// child() chains can produce) would generate colliding child streams at
  /// a fixed stream offset. With the inner mix, a collision between
  /// children of distinct parents requires mix64(i + GAMMA) - mix64(j +
  /// GAMMA) to equal the parent-seed difference — a birthday-bound (~2^-64
  /// per pair) event rather than a structural one. Consequences:
  ///  - children of one parent are pairwise distinct (mix64 is bijective),
  ///  - grandchild streams child(i).child(j) are decorrelated from each
  ///    other and from direct children (tested by chi-squared uniformity
  ///    in test_common.cpp),
  ///  - the derivation is pure: child() never advances the parent engine,
  ///    so trial fan-out order cannot affect any stream's draws.
  Rng child(std::uint64_t stream) const {
    return Rng(mix64(seed_ + mix64(stream + 0x9e3779b97f4a7c15ULL)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double gaussian() { return normal_(engine_); }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  cplx complex_gaussian(double variance = 1.0);

  /// Bernoulli with probability p of true.
  bool coin(double p = 0.5) { return uniform() < p; }

  /// Vector of standard normal samples.
  rvec gaussian_vector(std::size_t n, double stddev = 1.0);

  /// Vector of random bits.
  bitvec random_bits(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace vab::common
