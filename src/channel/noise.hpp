// Ambient ocean noise: Wenz-model spectral density and time-domain
// synthesis of noise with that spectrum.
//
// Four classical components (Wenz 1962, as parameterized in Stojanovic
// 2007): turbulence (< 10 Hz), distant shipping (10-100 Hz), wind-driven
// surface agitation (100 Hz - 100 kHz, dominant at our 18.5 kHz carrier),
// and thermal noise (> 100 kHz). Levels in dB re 1 uPa^2/Hz.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace vab::channel {

struct NoiseConditions {
  double shipping = 0.5;        ///< shipping activity factor in [0, 1]
  double wind_speed_mps = 5.0;  ///< wind speed at the surface, m/s
  /// Extra site noise floor on top of Wenz (e.g. river/harbor machinery),
  /// dB re 1 uPa^2/Hz; combined by power addition.
  double site_floor_db = -1000.0;
};

/// Wenz noise spectral density components at `f` (dB re 1 uPa^2/Hz).
common::Db turbulence_nsd(common::Hz f);
common::Db shipping_nsd(common::Hz f, double shipping_factor);
common::Db wind_nsd(common::Hz f, double wind_speed_mps);
common::Db thermal_nsd(common::Hz f);

/// Total Wenz noise spectral density (power sum of components + site floor).
common::Db ambient_nsd(common::Hz f, const NoiseConditions& cond);

/// Noise level in dB re 1 uPa over bandwidth `bw` centered at `f` (NSD
/// assumed flat over the band — true for our narrow signals).
common::Db noise_level(common::Hz f, common::Hz bw, const NoiseConditions& cond);

/// Synthesizes `n` samples of real ambient noise (pressure in Pa) at sample
/// rate `fs` whose PSD follows the Wenz model: white Gaussian noise shaped
/// in the frequency domain.
rvec synthesize_ambient_noise(std::size_t n, common::SampleRateHz fs,
                              const NoiseConditions& cond, common::Rng& rng);

/// Out-parameter form: same samples for the same Rng state, but the spectrum
/// scratch comes from the thread-local dsp::Workspace and the inverse FFT
/// runs in place, so steady-state synthesis does not allocate.
void synthesize_ambient_noise(std::size_t n, common::SampleRateHz fs,
                              const NoiseConditions& cond, common::Rng& rng, rvec& out);

}  // namespace vab::channel
