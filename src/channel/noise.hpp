// Ambient ocean noise: Wenz-model spectral density and time-domain
// synthesis of noise with that spectrum.
//
// Four classical components (Wenz 1962, as parameterized in Stojanovic
// 2007): turbulence (< 10 Hz), distant shipping (10-100 Hz), wind-driven
// surface agitation (100 Hz - 100 kHz, dominant at our 18.5 kHz carrier),
// and thermal noise (> 100 kHz). Levels in dB re 1 uPa^2/Hz.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vab::channel {

struct NoiseConditions {
  double shipping = 0.5;        ///< shipping activity factor in [0, 1]
  double wind_speed_mps = 5.0;  ///< wind speed at the surface, m/s
  /// Extra site noise floor on top of Wenz (e.g. river/harbor machinery),
  /// dB re 1 uPa^2/Hz; combined by power addition.
  double site_floor_db = -1000.0;
};

/// Wenz noise spectral density components at `f_hz` (dB re 1 uPa^2/Hz).
double turbulence_nsd_db(double f_hz);
double shipping_nsd_db(double f_hz, double shipping_factor);
double wind_nsd_db(double f_hz, double wind_speed_mps);
double thermal_nsd_db(double f_hz);

/// Total Wenz noise spectral density (power sum of components + site floor).
double ambient_nsd_db(double f_hz, const NoiseConditions& cond);

/// Noise level in dB re 1 uPa over bandwidth `bw_hz` centered at `f_hz`
/// (NSD assumed flat over the band — true for our narrow signals).
double noise_level_db(double f_hz, double bw_hz, const NoiseConditions& cond);

/// Synthesizes `n` samples of real ambient noise (pressure in Pa) at sample
/// rate `fs_hz` whose PSD follows the Wenz model: white Gaussian noise
/// shaped in the frequency domain.
rvec synthesize_ambient_noise(std::size_t n, double fs_hz, const NoiseConditions& cond,
                              common::Rng& rng);

/// Out-parameter form: same samples for the same Rng state, but the spectrum
/// scratch comes from the thread-local dsp::Workspace and the inverse FFT
/// runs in place, so steady-state synthesis does not allocate.
void synthesize_ambient_noise(std::size_t n, double fs_hz, const NoiseConditions& cond,
                              common::Rng& rng, rvec& out);

}  // namespace vab::channel
