#include "channel/raytrace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::channel {

namespace {

struct RayState {
  double x = 0.0;
  double z = 0.0;
  double theta = 0.0;  // from horizontal, positive down
  double time_s = 0.0;
  double path_m = 0.0;
  int surf = 0;
  int bot = 0;
  bool dead = false;
};

}  // namespace

std::vector<RayArrival> trace_eigenrays(common::Meters range,
                                        common::Meters src_depth,
                                        common::Meters rx_depth,
                                        const SoundSpeedProfile& profile,
                                        const RayTraceConfig& cfg) {
  const double range_m = range.raw();
  const double src_depth_m = src_depth.raw();
  const double rx_depth_m = rx_depth.raw();
  if (range_m <= 0.0) throw std::invalid_argument("range must be > 0");
  const double H = cfg.water_depth_m;
  if (H <= 0.0 || src_depth_m < 0.0 || src_depth_m > H || rx_depth_m < 0.0 ||
      rx_depth_m > H)
    throw std::invalid_argument("geometry outside the water column");
  if (cfg.n_rays < 2) throw std::invalid_argument("need at least two rays");

  // Keep the best (closest-depth) capture per bounce combination.
  struct Best {
    RayArrival arrival;
    double miss = 1e9;
  };
  std::map<std::pair<int, int>, Best> best;

  const double max_launch = common::deg_to_rad(cfg.max_launch_deg);
  for (std::size_t r = 0; r < cfg.n_rays; ++r) {
    const double launch =
        -max_launch + 2.0 * max_launch * static_cast<double>(r) /
                          static_cast<double>(cfg.n_rays - 1);
    RayState s;
    s.z = src_depth_m;
    s.theta = launch;

    while (!s.dead && s.x < range_m) {
      const double c_here = profile.at(s.z);
      const double ds = cfg.step_m;
      // Ray curvature in a stratified medium: d(theta)/ds =
      // -(1/c) dc/dz cos(theta). Direct integration handles horizontal rays
      // and turning points uniformly (the Snell invariant degenerates at
      // theta = 0).
      const double dz_probe = 0.01;
      const double dcdz = (profile.at(s.z + dz_probe) - profile.at(s.z - dz_probe)) /
                          (2.0 * dz_probe);
      s.theta += ds * (-dcdz / c_here) * std::cos(s.theta);

      s.x += ds * std::cos(s.theta);
      s.z += ds * std::sin(s.theta);
      s.time_s += ds / c_here;
      s.path_m += ds;

      // Boundary reflections.
      if (s.z < 0.0) {
        s.z = -s.z;
        s.theta = -s.theta;
        ++s.surf;
      } else if (s.z > H) {
        s.z = 2.0 * H - s.z;
        s.theta = -s.theta;
        ++s.bot;
      }
      if (s.surf + s.bot > cfg.max_bounces) s.dead = true;
      if (s.path_m > 20.0 * range_m) s.dead = true;  // runaway guard
    }

    if (s.dead) continue;
    const double miss = std::abs(s.z - rx_depth_m);
    if (miss > cfg.capture_tolerance_m) continue;

    RayArrival a;
    a.delay_s = s.time_s;
    a.launch_angle_rad = launch;
    a.arrival_angle_rad = s.theta;
    a.surface_bounces = s.surf;
    a.bottom_bounces = s.bot;
    a.path_length_m = s.path_m;
    double amp = 1.0 / std::max(s.path_m, 1.0);
    amp *= std::pow(10.0, -(static_cast<double>(s.surf) * cfg.surface_loss_db +
                            static_cast<double>(s.bot) * cfg.bottom_loss_db) /
                              20.0);
    if (cfg.absorption_freq_hz > 0.0)
      amp *= std::pow(10.0,
                      -absorption_loss(common::Hz{cfg.absorption_freq_hz},
                                       common::Meters{s.path_m}, cfg.water)
                              .raw() /
                          20.0);
    a.gain = (s.surf % 2 == 0 ? 1.0 : -1.0) * amp;

    auto& slot = best[{s.surf, s.bot}];
    if (miss < slot.miss) slot = Best{a, miss};
  }

  std::vector<RayArrival> out;
  out.reserve(best.size());
  for (const auto& [key, b] : best) out.push_back(b.arrival);
  std::sort(out.begin(), out.end(),
            [](const RayArrival& a, const RayArrival& b2) {
              return a.delay_s < b2.delay_s;
            });
  return out;
}

std::vector<PathTap> taps_from_arrivals(const std::vector<RayArrival>& arrivals) {
  std::vector<PathTap> taps;
  taps.reserve(arrivals.size());
  for (const auto& a : arrivals)
    taps.push_back(PathTap{a.delay_s, a.gain, a.surface_bounces, a.bottom_bounces});
  return taps;
}

}  // namespace vab::channel
