// Sound speed in water.
//
// Mackenzie (1981) nine-term equation, valid for T in [-2, 30] C, S in
// [25, 40] ppt, depth to 8000 m. For rivers (S ~ 0) we fall back to the
// freshwater Marczak polynomial.
#pragma once

#include "channel/absorption.hpp"
#include "common/types.hpp"

namespace vab::channel {

/// Mackenzie sound speed (m/s).
double mackenzie_sound_speed(double temperature_c, double salinity_ppt, double depth_m);

/// Freshwater sound speed (Marczak 1997 polynomial), m/s.
double freshwater_sound_speed(double temperature_c);

/// Sound speed for given water properties, choosing the appropriate model.
double sound_speed(const WaterProperties& w);

/// Depth-dependent sound-speed profile, piecewise linear between samples.
class SoundSpeedProfile {
 public:
  /// Constant profile.
  explicit SoundSpeedProfile(double c = 1500.0);
  /// Piecewise-linear profile from (depth, speed) pairs, depths ascending.
  SoundSpeedProfile(rvec depths_m, rvec speeds_mps);

  double at(double depth_m) const;
  double surface_speed() const { return at(0.0); }

 private:
  rvec depths_;
  rvec speeds_;
};

}  // namespace vab::channel
