// Time-domain propagation: applies a tap set (delays + gains) to a passband
// waveform, optionally with Doppler (platform drift) and slow fading, and
// adds Wenz ambient noise. This is the substrate the end-to-end waveform
// simulator runs on.
#pragma once

#include <vector>

#include "channel/multipath.hpp"
#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace vab::channel {

struct WaveformChannelConfig {
  double fs_hz = 192000.0;
  std::vector<PathTap> taps;          ///< from image_method_taps or custom
  NoiseConditions noise{};
  bool add_noise = true;
  /// Relative radial speed (m/s) between endpoints; positive = closing.
  double doppler_speed_mps = 0.0;
  double sound_speed_mps = 1500.0;
  /// Std-dev of slow per-tap log-amplitude fading in dB (0 = static channel).
  double fading_sigma_db = 0.0;
  /// Sea-surface wave motion: surface-bounce path lengths breathe by
  /// ~2*amplitude per bounce at the swell period, phase-modulating those
  /// taps (the time-varying channel that stresses the equalizer).
  double surface_wave_amplitude_m = 0.0;
  double surface_wave_period_s = 5.0;
  /// Optional impairment hook: SNR dips (shadowing events) carved into the
  /// propagated waveform. Null (the default) leaves the output bit-identical
  /// to the pre-fault pipeline; the injector draws from its own stream, so
  /// arming it never perturbs the channel Rng either.
  fault::FaultInjector* fault = nullptr;
};

class WaveformChannel {
 public:
  WaveformChannel(WaveformChannelConfig cfg, common::Rng& rng);

  /// Propagates a pressure waveform (Pa, at 1 m from the source) through the
  /// channel; the output is the pressure at the receiver, same sample rate,
  /// extended by the maximum path delay.
  rvec propagate(const rvec& tx) const;

  /// Out-parameter form used on the trial hot path; noise scratch comes from
  /// the thread-local dsp::Workspace.
  void propagate(const rvec& tx, rvec& out) const;

  /// Propagates without noise (used by calibration tests).
  rvec propagate_clean(const rvec& tx) const;

  /// Out-parameter form of `propagate_clean`.
  void propagate_clean(const rvec& tx, rvec& out) const;

  const std::vector<PathTap>& taps() const { return cfg_.taps; }
  double max_delay_s() const;

 private:
  void apply_taps(const rvec& tx, rvec& out) const;

  WaveformChannelConfig cfg_;
  common::Rng* rng_;
  std::vector<double> fade_;  ///< per-tap linear fading factors for this run
};

/// Convenience: builds a single-tap line-of-sight channel with given one-way
/// amplitude gain and delay.
std::vector<PathTap> single_tap(double gain, double delay_s);

}  // namespace vab::channel
