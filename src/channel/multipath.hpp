// Image-method multipath for an isovelocity shallow-water waveguide.
//
// Surface (pressure-release, reflection coefficient -1 with roughness loss)
// and bottom (lossy) boundaries generate image sources; each arrival is a
// tap with its own delay, amplitude (spherical spreading + per-bounce loss +
// absorption) and sign. This captures the delay spread that limits symbol
// rates in shallow water — the dominant channel impairment for VAB.
#pragma once

#include <vector>

#include "channel/absorption.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace vab::channel {

struct MultipathConfig {
  double water_depth_m = 10.0;
  /// Loss per surface bounce in dB (roughness/scattering; grows with wind).
  double surface_loss_db = 1.0;
  /// Loss per bottom bounce in dB (sediment-dependent, ~3-15 dB).
  double bottom_loss_db = 6.0;
  /// Maximum total number of boundary interactions to enumerate.
  int max_order = 6;
  /// Taps weaker than this (relative to the direct path, linear amplitude)
  /// are culled.
  double min_relative_amplitude = 1e-3;
  /// Include frequency-dependent absorption per path at this frequency
  /// (0 disables).
  double absorption_freq_hz = 0.0;
  /// Spreading coefficient k applied per path: amplitude = 10^(-k log10(r)/20)
  /// = r^(-k/20). 20 is free-space spherical; shallow waveguides trap energy
  /// and behave closer to 10-15. Keeping this consistent with the analytic
  /// link budget lets the waveform simulator reach paper-scale ranges.
  double spreading_coeff = 20.0;
  WaterProperties water{};
};

struct PathTap {
  double delay_s = 0.0;
  /// Linear amplitude relative to a unit-amplitude source observed at 1 m;
  /// negative values encode the pi phase flip from odd surface-bounce counts.
  double gain = 0.0;
  int surface_bounces = 0;
  int bottom_bounces = 0;
};

/// Enumerates image-method arrivals between a source at (0, src_depth) and a
/// receiver at (range, rx_depth). Taps are sorted by delay; the first is the
/// direct path.
std::vector<PathTap> image_method_taps(common::Meters range,
                                       common::Meters src_depth,
                                       common::Meters rx_depth,
                                       double sound_speed_mps,
                                       const MultipathConfig& cfg);

/// RMS delay spread of a tap set (second moment of the power-delay profile).
double rms_delay_spread(const std::vector<PathTap>& taps);

/// Coherence bandwidth estimate, 1 / (5 * rms delay spread).
double coherence_bandwidth_hz(const std::vector<PathTap>& taps);

}  // namespace vab::channel
