#include "channel/waveform_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/resample.hpp"
#include "dsp/workspace.hpp"
#include "obs/obs.hpp"

namespace vab::channel {

WaveformChannel::WaveformChannel(WaveformChannelConfig cfg, common::Rng& rng)
    : cfg_(std::move(cfg)), rng_(&rng) {
  if (cfg_.fs_hz <= 0.0) throw std::invalid_argument("sample rate must be > 0");
  if (cfg_.taps.empty()) throw std::invalid_argument("channel needs at least one tap");
  fade_.resize(cfg_.taps.size(), 1.0);
  if (cfg_.fading_sigma_db > 0.0) {
    for (auto& f : fade_)
      f = std::pow(10.0, rng_->gaussian(0.0, cfg_.fading_sigma_db) / 20.0);
  }
}

double WaveformChannel::max_delay_s() const {
  double d = 0.0;
  for (const auto& t : cfg_.taps) d = std::max(d, t.delay_s);
  return d;
}

void WaveformChannel::apply_taps(const rvec& tx, rvec& out) const {
  VAB_STAGE("channel.apply_taps");
  const double fs = cfg_.fs_hz;
  const double wave_amp = cfg_.surface_wave_amplitude_m;
  // Extra headroom covers the static delays plus the surface-wave breathing.
  const double max_breathe =
      wave_amp > 0.0 ? 2.0 * wave_amp * 6.0 / cfg_.sound_speed_mps : 0.0;
  const auto extra =
      static_cast<std::size_t>(std::ceil((max_delay_s() + max_breathe) * fs)) + 2;
  out.assign(tx.size() + extra, 0.0);
  for (std::size_t p = 0; p < cfg_.taps.size(); ++p) {
    const auto& tap = cfg_.taps[p];
    const double g = tap.gain * fade_[p];
    const double d0 = tap.delay_s * fs;  // fractional sample delay
    if (wave_amp > 0.0 && tap.surface_bounces > 0) {
      // Each surface bounce adds ~2*displacement of path length; taps with
      // more bounces move proportionally more. Random initial phase per tap.
      const double omega = common::kTwoPi / (cfg_.surface_wave_period_s * fs);
      const double depth_mod = 2.0 * wave_amp * static_cast<double>(tap.surface_bounces) /
                               cfg_.sound_speed_mps * fs;
      const double phi0 = 2.0 * common::kPi * static_cast<double>(p) / 7.0;
      for (std::size_t n = 0; n < tx.size(); ++n) {
        const double d = d0 + depth_mod * std::sin(omega * static_cast<double>(n) + phi0);
        const auto d_int = static_cast<std::size_t>(d);
        const double frac = d - static_cast<double>(d_int);
        out[n + d_int] += g * (1.0 - frac) * tx[n];
        out[n + d_int + 1] += g * frac * tx[n];
      }
    } else {
      const auto d_int = static_cast<std::size_t>(d0);
      const double frac = d0 - static_cast<double>(d_int);
      for (std::size_t n = 0; n < tx.size(); ++n) {
        // Linear-interpolated fractional delay.
        out[n + d_int] += g * (1.0 - frac) * tx[n];
        out[n + d_int + 1] += g * frac * tx[n];
      }
    }
  }
}

rvec WaveformChannel::propagate_clean(const rvec& tx) const {
  rvec y;
  propagate_clean(tx, y);
  return y;
}

void WaveformChannel::propagate_clean(const rvec& tx, rvec& out) const {
  apply_taps(tx, out);
  if (cfg_.doppler_speed_mps != 0.0) {
    // Uniform motion compresses/dilates the time axis by (1 +/- v/c).
    const double factor = 1.0 + cfg_.doppler_speed_mps / cfg_.sound_speed_mps;
    out = dsp::resample_linear(out, cfg_.fs_hz * factor, cfg_.fs_hz);
  }
}

rvec WaveformChannel::propagate(const rvec& tx) const {
  rvec y;
  propagate(tx, y);
  return y;
}

void WaveformChannel::propagate(const rvec& tx, rvec& out) const {
  propagate_clean(tx, out);
  // Injected impairment before the additive noise floor: a shadowing dip
  // attenuates the signal, not the ambient field.
  if (cfg_.fault && cfg_.fault->enabled()) cfg_.fault->apply_snr_dip(out);
  if (cfg_.add_noise) {
    auto noise_l = dsp::Workspace::local().take_r(0);
    rvec& noise = *noise_l;
    synthesize_ambient_noise(out.size(), common::SampleRateHz{cfg_.fs_hz}, cfg_.noise,
                             *rng_, noise);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += noise[i];
  }
}

std::vector<PathTap> single_tap(double gain, double delay_s) {
  return {PathTap{delay_s, gain, 0, 0}};
}

}  // namespace vab::channel
