#include "channel/multipath.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vab::channel {

namespace {

// Counts surface (even-k) and bottom (odd-k) plane crossings of the unfolded
// straight path between vertical coordinates a and b (planes at z = k*H).
void count_bounces(double a, double b, double H, int& surface, int& bottom) {
  surface = 0;
  bottom = 0;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  // Strictly interior crossings.
  const auto k_lo = static_cast<long>(std::floor(lo / H)) + 1;
  const auto k_hi = static_cast<long>(std::ceil(hi / H)) - 1;
  for (long k = k_lo; k <= k_hi; ++k) {
    if (k % 2 == 0)
      ++surface;
    else
      ++bottom;
  }
}

}  // namespace

std::vector<PathTap> image_method_taps(common::Meters range,
                                       common::Meters src_depth,
                                       common::Meters rx_depth,
                                       double sound_speed_mps,
                                       const MultipathConfig& cfg) {
  const double range_m = range.raw();
  const double src_depth_m = src_depth.raw();
  const double rx_depth_m = rx_depth.raw();
  if (range_m <= 0.0) throw std::invalid_argument("range must be > 0");
  const double H = cfg.water_depth_m;
  if (H <= 0.0) throw std::invalid_argument("water depth must be > 0");
  if (src_depth_m < 0.0 || src_depth_m > H || rx_depth_m < 0.0 || rx_depth_m > H)
    throw std::invalid_argument("endpoints must be inside the water column");
  if (sound_speed_mps <= 0.0) throw std::invalid_argument("sound speed must be > 0");

  const double direct_r =
      std::sqrt(range_m * range_m +
                (rx_depth_m - src_depth_m) * (rx_depth_m - src_depth_m));
  const double spread_exp = cfg.spreading_coeff / 20.0;
  const double direct_amp = std::pow(std::max(direct_r, 1.0), -spread_exp);

  std::vector<PathTap> taps;
  for (long m = -(cfg.max_order + 1); m <= cfg.max_order + 1; ++m) {
    for (int family = 0; family < 2; ++family) {
      const double zeta = family == 0 ? 2.0 * static_cast<double>(m) * H + rx_depth_m
                                      : 2.0 * static_cast<double>(m) * H - rx_depth_m;
      int s = 0, b = 0;
      count_bounces(src_depth_m, zeta, H, s, b);
      if (s + b > cfg.max_order) continue;
      if (m == 0 && family == 0) { s = 0; b = 0; }  // direct path, no crossings

      const double dz = zeta - src_depth_m;
      const double r = std::sqrt(range_m * range_m + dz * dz);
      const double bounce_loss_db =
          static_cast<double>(s) * cfg.surface_loss_db +
          static_cast<double>(b) * cfg.bottom_loss_db;
      double amp = std::pow(10.0, -bounce_loss_db / 20.0) *
                   std::pow(std::max(r, 1.0), -spread_exp);
      if (cfg.absorption_freq_hz > 0.0)
        amp *= std::pow(
            10.0, -absorption_loss(common::Hz{cfg.absorption_freq_hz},
                                   common::Meters{r}, cfg.water)
                       .raw() /
                      20.0);
      if (amp < cfg.min_relative_amplitude * direct_amp) continue;

      const double sign = (s % 2 == 0) ? 1.0 : -1.0;
      taps.push_back(PathTap{r / sound_speed_mps, sign * amp, s, b});
    }
  }

  std::sort(taps.begin(), taps.end(),
            [](const PathTap& a, const PathTap& c) { return a.delay_s < c.delay_s; });
  // Deduplicate numerically coincident arrivals (family overlap at m=0 when
  // src and rx depths coincide with a boundary).
  std::vector<PathTap> unique;
  for (const auto& t : taps) {
    if (!unique.empty() && std::abs(t.delay_s - unique.back().delay_s) < 1e-12 &&
        t.surface_bounces == unique.back().surface_bounces &&
        t.bottom_bounces == unique.back().bottom_bounces)
      continue;
    unique.push_back(t);
  }
  return unique;
}

double rms_delay_spread(const std::vector<PathTap>& taps) {
  if (taps.empty()) return 0.0;
  double p_total = 0.0, t_mean = 0.0;
  for (const auto& t : taps) {
    const double p = t.gain * t.gain;
    p_total += p;
    t_mean += p * t.delay_s;
  }
  if (p_total <= 0.0) return 0.0;
  t_mean /= p_total;
  double var = 0.0;
  for (const auto& t : taps) {
    const double p = t.gain * t.gain;
    var += p * (t.delay_s - t_mean) * (t.delay_s - t_mean);
  }
  return std::sqrt(var / p_total);
}

double coherence_bandwidth_hz(const std::vector<PathTap>& taps) {
  const double spread = rms_delay_spread(taps);
  return spread > 0.0 ? 1.0 / (5.0 * spread) : 1e12;
}

}  // namespace vab::channel
