// Geometric spreading and combined one-way transmission loss.
#pragma once

#include "channel/absorption.hpp"

namespace vab::channel {

enum class SpreadingModel {
  kSpherical,    ///< 20 log r — deep water
  kCylindrical,  ///< 10 log r — ideal waveguide far field
  kPractical     ///< 15 log r — shallow-water rule of thumb
};

/// Spreading loss in dB at `range_m` (>= 1 m; clamped below that since TL is
/// referenced to 1 m).
double spreading_loss_db(SpreadingModel model, double range_m);

/// One-way transmission loss (dB) = spreading + absorption (Thorp).
double transmission_loss_db(double f_hz, double range_m,
                            SpreadingModel model = SpreadingModel::kPractical);

/// One-way transmission loss with explicit water properties (F&G absorption).
double transmission_loss_db(double f_hz, double range_m, SpreadingModel model,
                            const WaterProperties& w);

}  // namespace vab::channel
