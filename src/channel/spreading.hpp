// Geometric spreading and combined one-way transmission loss.
#pragma once

#include "channel/absorption.hpp"
#include "common/units.hpp"

namespace vab::channel {

enum class SpreadingModel {
  kSpherical,    ///< 20 log r — deep water
  kCylindrical,  ///< 10 log r — ideal waveguide far field
  kPractical     ///< 15 log r — shallow-water rule of thumb
};

/// Spreading loss at `range` (>= 1 m; clamped below that since TL is
/// referenced to 1 m).
common::Db spreading_loss(SpreadingModel model, common::Meters range);

/// One-way transmission loss = spreading + absorption (Thorp).
common::Db transmission_loss(common::Hz f, common::Meters range,
                             SpreadingModel model = SpreadingModel::kPractical);

/// One-way transmission loss with explicit water properties (F&G absorption).
common::Db transmission_loss(common::Hz f, common::Meters range, SpreadingModel model,
                             const WaterProperties& w);

}  // namespace vab::channel
