#include "channel/absorption.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::channel {

namespace {
// Interior math stays on raw doubles in the models' native dB/km-of-kHz
// scale; the typed API wraps at the boundary. The loss expressions below
// reproduce the historical `per_km * range_m / 1000` association exactly so
// every seeded output is bit-identical.
double thorp_db_per_km(double f_khz) {
  if (f_khz <= 0.0) throw std::invalid_argument("frequency must be > 0");
  const double f2 = f_khz * f_khz;
  return 0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003;
}

double francois_garrison_db_per_km(double f_khz, const WaterProperties& w) {
  if (f_khz <= 0.0) throw std::invalid_argument("frequency must be > 0");
  const double T = w.temperature_c;
  const double S = w.salinity_ppt;
  const double D_m = w.depth_m;
  const double f = f_khz;
  const double c = 1412.0 + 3.21 * T + 1.19 * S + 0.0167 * D_m;
  const double theta = 273.0 + T;

  // Boric acid contribution.
  const double A1 = 8.86 / c * std::pow(10.0, 0.78 * w.ph - 5.0);
  const double P1 = 1.0;
  const double f1 = 2.8 * std::sqrt(std::max(S, 1e-6) / 35.0) *
                    std::pow(10.0, 4.0 - 1245.0 / theta);

  // Magnesium sulfate contribution.
  const double A2 = 21.44 * S / c * (1.0 + 0.025 * T);
  const double P2 = 1.0 - 1.37e-4 * D_m + 6.2e-9 * D_m * D_m;
  const double f2 = 8.17 * std::pow(10.0, 8.0 - 1990.0 / theta) /
                    (1.0 + 0.0018 * (S - 35.0));

  // Pure-water viscosity contribution.
  double A3;
  if (T <= 20.0) {
    A3 = 4.937e-4 - 2.59e-5 * T + 9.11e-7 * T * T - 1.50e-8 * T * T * T;
  } else {
    A3 = 3.964e-4 - 1.146e-5 * T + 1.45e-7 * T * T - 6.5e-10 * T * T * T;
  }
  const double P3 = 1.0 - 3.83e-5 * D_m + 4.9e-10 * D_m * D_m;

  const double ff = f * f;
  return A1 * P1 * f1 * ff / (f1 * f1 + ff) + A2 * P2 * f2 * ff / (f2 * f2 + ff) +
         A3 * P3 * ff;
}
}  // namespace

common::DbPerM thorp_absorption(common::Hz f) {
  return common::DbPerM::per_km(thorp_db_per_km(f.raw() / 1000.0));
}

common::DbPerM francois_garrison_absorption(common::Hz f, const WaterProperties& w) {
  return common::DbPerM::per_km(francois_garrison_db_per_km(f.raw() / 1000.0, w));
}

common::Db absorption_loss(common::Hz f, common::Meters range) {
  return common::Db{thorp_db_per_km(f.raw() / 1000.0) * range.raw() / 1000.0};
}

common::Db absorption_loss(common::Hz f, common::Meters range, const WaterProperties& w) {
  return common::Db{francois_garrison_db_per_km(f.raw() / 1000.0, w) * range.raw() /
                    1000.0};
}

}  // namespace vab::channel
