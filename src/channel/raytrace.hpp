// 2-D acoustic ray tracing through a depth-dependent sound-speed profile.
//
// Complements the isovelocity image method: with a real SSP, rays refract
// (Snell), form shadow zones and surface ducts, and the eigenrays found here
// replace the straight-line image paths for deeper / longer deployments.
// Piecewise-linear-in-depth profile, constant-gradient arc stepping, lossy
// boundary reflections, amplitude from spreading + bounce losses +
// absorption.
#pragma once

#include <vector>

#include "channel/absorption.hpp"
#include "channel/multipath.hpp"
#include "channel/soundspeed.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace vab::channel {

struct RayTraceConfig {
  double water_depth_m = 20.0;
  double surface_loss_db = 2.0;
  double bottom_loss_db = 10.0;
  int max_bounces = 4;
  /// Launch fan (degrees from horizontal, positive = down) and count.
  double max_launch_deg = 30.0;
  std::size_t n_rays = 201;
  /// Integration step along range (m).
  double step_m = 1.0;
  /// A ray is an eigenray if it passes within this depth tolerance of the
  /// receiver at the target range.
  double capture_tolerance_m = 0.5;
  double absorption_freq_hz = 0.0;
  WaterProperties water{};
};

struct RayArrival {
  double delay_s = 0.0;
  double launch_angle_rad = 0.0;
  double arrival_angle_rad = 0.0;
  double gain = 0.0;  ///< signed linear amplitude (surface flips sign)
  int surface_bounces = 0;
  int bottom_bounces = 0;
  double path_length_m = 0.0;
};

/// Traces a fan of rays from (0, src_depth) toward positive range and
/// collects those passing near (range, rx_depth).
std::vector<RayArrival> trace_eigenrays(common::Meters range,
                                        common::Meters src_depth,
                                        common::Meters rx_depth,
                                        const SoundSpeedProfile& profile,
                                        const RayTraceConfig& cfg);

/// Converts arrivals into channel taps usable by WaveformChannel.
std::vector<PathTap> taps_from_arrivals(const std::vector<RayArrival>& arrivals);

}  // namespace vab::channel
