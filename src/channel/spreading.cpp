#include "channel/spreading.hpp"

#include <algorithm>
#include <cmath>

namespace vab::channel {

common::Db spreading_loss(SpreadingModel model, common::Meters range) {
  const double r = std::max(range.raw(), 1.0);
  switch (model) {
    case SpreadingModel::kSpherical: return common::Db{20.0 * std::log10(r)};
    case SpreadingModel::kCylindrical: return common::Db{10.0 * std::log10(r)};
    case SpreadingModel::kPractical: return common::Db{15.0 * std::log10(r)};
  }
  return common::Db{20.0 * std::log10(r)};
}

common::Db transmission_loss(common::Hz f, common::Meters range, SpreadingModel model) {
  return spreading_loss(model, range) + absorption_loss(f, range);
}

common::Db transmission_loss(common::Hz f, common::Meters range, SpreadingModel model,
                             const WaterProperties& w) {
  return spreading_loss(model, range) + absorption_loss(f, range, w);
}

}  // namespace vab::channel
