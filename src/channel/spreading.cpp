#include "channel/spreading.hpp"

#include <algorithm>
#include <cmath>

namespace vab::channel {

double spreading_loss_db(SpreadingModel model, double range_m) {
  const double r = std::max(range_m, 1.0);
  switch (model) {
    case SpreadingModel::kSpherical: return 20.0 * std::log10(r);
    case SpreadingModel::kCylindrical: return 10.0 * std::log10(r);
    case SpreadingModel::kPractical: return 15.0 * std::log10(r);
  }
  return 20.0 * std::log10(r);
}

double transmission_loss_db(double f_hz, double range_m, SpreadingModel model) {
  return spreading_loss_db(model, range_m) + absorption_loss_db(f_hz, range_m);
}

double transmission_loss_db(double f_hz, double range_m, SpreadingModel model,
                            const WaterProperties& w) {
  return spreading_loss_db(model, range_m) + absorption_loss_db(f_hz, range_m, w);
}

}  // namespace vab::channel
