// Seawater / freshwater acoustic absorption models.
//
// Thorp (1967) is the classic deep-water fit used in link budgets around
// 10-100 kHz; Francois & Garrison (1982) is the full model with boric acid,
// magnesium sulfate and viscous terms, parameterized by temperature,
// salinity, depth and pH. River profiles use low salinity, which suppresses
// the chemical relaxation terms.
#pragma once

namespace vab::channel {

/// Thorp absorption coefficient in dB/km; `f_khz` in kHz.
double thorp_absorption_db_per_km(double f_khz);

struct WaterProperties {
  double temperature_c = 10.0;  ///< Celsius
  double salinity_ppt = 35.0;   ///< parts per thousand (rivers ~0.5)
  double depth_m = 10.0;        ///< mean path depth
  double ph = 8.0;
};

/// Francois-Garrison absorption in dB/km at `f_khz` kHz.
double francois_garrison_db_per_km(double f_khz, const WaterProperties& w);

/// Absorption loss in dB over `range_m` meters at `f_hz` Hz using Thorp.
double absorption_loss_db(double f_hz, double range_m);

/// Absorption loss in dB using Francois-Garrison.
double absorption_loss_db(double f_hz, double range_m, const WaterProperties& w);

}  // namespace vab::channel
