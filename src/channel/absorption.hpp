// Seawater / freshwater acoustic absorption models.
//
// Thorp (1967) is the classic deep-water fit used in link budgets around
// 10-100 kHz; Francois & Garrison (1982) is the full model with boric acid,
// magnesium sulfate and viscous terms, parameterized by temperature,
// salinity, depth and pH. River profiles use low salinity, which suppresses
// the chemical relaxation terms.
#pragma once

#include "common/units.hpp"

namespace vab::channel {

struct WaterProperties {
  double temperature_c = 10.0;  ///< Celsius
  double salinity_ppt = 35.0;   ///< parts per thousand (rivers ~0.5)
  double depth_m = 10.0;        ///< mean path depth
  double ph = 8.0;
};

/// Thorp absorption coefficient at frequency `f`.
common::DbPerM thorp_absorption(common::Hz f);

/// Francois-Garrison absorption coefficient at `f`.
common::DbPerM francois_garrison_absorption(common::Hz f, const WaterProperties& w);

/// Absorption loss over `range` at `f` using Thorp.
common::Db absorption_loss(common::Hz f, common::Meters range);

/// Absorption loss using Francois-Garrison.
common::Db absorption_loss(common::Hz f, common::Meters range, const WaterProperties& w);

}  // namespace vab::channel
