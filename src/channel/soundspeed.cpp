#include "channel/soundspeed.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::channel {

double mackenzie_sound_speed(double T, double S, double D) {
  return 1448.96 + 4.591 * T - 5.304e-2 * T * T + 2.374e-4 * T * T * T +
         1.340 * (S - 35.0) + 1.630e-2 * D + 1.675e-7 * D * D -
         1.025e-2 * T * (S - 35.0) - 7.139e-13 * T * D * D * D;
}

double freshwater_sound_speed(double T) {
  // Marczak (1997), 0-95 C, atmospheric pressure.
  return 1.402385e3 + 5.038813 * T - 5.799136e-2 * T * T + 3.287156e-4 * T * T * T -
         1.398845e-6 * T * T * T * T + 2.787860e-9 * T * T * T * T * T;
}

double sound_speed(const WaterProperties& w) {
  if (w.salinity_ppt < 5.0) return freshwater_sound_speed(w.temperature_c);
  return mackenzie_sound_speed(w.temperature_c, w.salinity_ppt, w.depth_m);
}

SoundSpeedProfile::SoundSpeedProfile(double c) : depths_{0.0}, speeds_{c} {
  if (c <= 0.0) throw std::invalid_argument("sound speed must be > 0");
}

SoundSpeedProfile::SoundSpeedProfile(rvec depths_m, rvec speeds_mps)
    : depths_(std::move(depths_m)), speeds_(std::move(speeds_mps)) {
  if (depths_.empty() || depths_.size() != speeds_.size())
    throw std::invalid_argument("profile needs matching non-empty depth/speed arrays");
  for (std::size_t i = 1; i < depths_.size(); ++i)
    if (depths_[i] <= depths_[i - 1])
      throw std::invalid_argument("profile depths must be strictly ascending");
}

double SoundSpeedProfile::at(double depth_m) const {
  if (depth_m <= depths_.front()) return speeds_.front();
  if (depth_m >= depths_.back()) return speeds_.back();
  std::size_t i = 1;
  while (depths_[i] < depth_m) ++i;
  const double frac = (depth_m - depths_[i - 1]) / (depths_[i] - depths_[i - 1]);
  return speeds_[i - 1] + frac * (speeds_[i] - speeds_[i - 1]);
}

}  // namespace vab::channel
