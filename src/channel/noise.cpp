#include "channel/noise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <vector>

#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/workspace.hpp"
#include "obs/metrics.hpp"

namespace vab::channel {

namespace {
// Power-sum of dB quantities.
double db_sum(double a_db, double b_db) {
  return 10.0 * std::log10(std::pow(10.0, a_db / 10.0) + std::pow(10.0, b_db / 10.0));
}

// Interior Wenz math on raw doubles, bit-identical to the pre-units tree;
// the typed API wraps at the boundary.
double turbulence_nsd_db(double f_hz) {
  const double f_khz = std::max(f_hz, 1e-3) / 1000.0;
  return 17.0 - 30.0 * std::log10(f_khz);
}

double shipping_nsd_db(double f_hz, double s) {
  const double f_khz = std::max(f_hz, 1e-3) / 1000.0;
  return 40.0 + 20.0 * (s - 0.5) + 26.0 * std::log10(f_khz) -
         60.0 * std::log10(f_khz + 0.03);
}

double wind_nsd_db(double f_hz, double w) {
  const double f_khz = std::max(f_hz, 1e-3) / 1000.0;
  return 50.0 + 7.5 * std::sqrt(std::max(w, 0.0)) + 20.0 * std::log10(f_khz) -
         40.0 * std::log10(f_khz + 0.4);
}

double thermal_nsd_db(double f_hz) {
  const double f_khz = std::max(f_hz, 1e-3) / 1000.0;
  return -15.0 + 20.0 * std::log10(f_khz);
}

double ambient_nsd_db(double f_hz, const NoiseConditions& cond) {
  double total = turbulence_nsd_db(f_hz);
  total = db_sum(total, shipping_nsd_db(f_hz, cond.shipping));
  total = db_sum(total, wind_nsd_db(f_hz, cond.wind_speed_mps));
  total = db_sum(total, thermal_nsd_db(f_hz));
  total = db_sum(total, cond.site_floor_db);
  return total;
}

// Per-bin spectral amplitudes for synthesize_ambient_noise. The Wenz NSD
// evaluation costs ~10 transcendentals per bin and depends only on
// (nfft, fs, conditions) — not on the Rng — so a thread-local cache turns
// steady-state synthesis (same scenario, trial after trial) into pure
// Gaussian draws plus one planned inverse FFT. Entries hold exactly the
// sigmas the uncached loop computed, keeping output bit-identical.
struct SigmaTable {
  std::size_t nfft = 0;
  double fs_hz = 0.0;
  NoiseConditions cond{};
  rvec sigma;  // index k in [1, nfft/2), entry 0 unused

  bool matches(std::size_t n, double fs, const NoiseConditions& c) const {
    return nfft == n && fs_hz == fs && cond.shipping == c.shipping &&
           cond.wind_speed_mps == c.wind_speed_mps &&
           cond.site_floor_db == c.site_floor_db;
  }
};

const rvec& sigma_table(std::size_t nfft, double fs_hz, const NoiseConditions& cond) {
  static const obs::Counter hits = obs::counter("channel.noise.sigma_hits");
  static const obs::Counter misses = obs::counter("channel.noise.sigma_misses");
  thread_local std::vector<SigmaTable> cache;
  for (auto& t : cache) {
    if (t.matches(nfft, fs_hz, cond)) {
      hits.inc();
      return t.sigma;
    }
  }
  misses.inc();
  if (cache.size() >= 8) cache.clear();  // bound memory; rebuilds amortize
  SigmaTable t;
  t.nfft = nfft;
  t.fs_hz = fs_hz;
  t.cond = cond;
  t.sigma.assign(nfft / 2, 0.0);
  const double df = fs_hz / static_cast<double>(nfft);
  for (std::size_t k = 1; k < nfft / 2; ++k) {
    const double f = static_cast<double>(k) * df;
    // NSD in dB re 1 uPa^2/Hz -> Pa^2/Hz.
    const double psd_pa2 = std::pow(10.0, ambient_nsd_db(f, cond) / 10.0) *
                           common::kRefPressurePa * common::kRefPressurePa;
    t.sigma[k] = std::sqrt(psd_pa2 * df / 2.0);
  }
  cache.push_back(std::move(t));
  return cache.back().sigma;
}
}  // namespace

common::Db turbulence_nsd(common::Hz f) { return common::Db{turbulence_nsd_db(f.raw())}; }

common::Db shipping_nsd(common::Hz f, double shipping_factor) {
  return common::Db{shipping_nsd_db(f.raw(), shipping_factor)};
}

common::Db wind_nsd(common::Hz f, double wind_speed_mps) {
  return common::Db{wind_nsd_db(f.raw(), wind_speed_mps)};
}

common::Db thermal_nsd(common::Hz f) { return common::Db{thermal_nsd_db(f.raw())}; }

common::Db ambient_nsd(common::Hz f, const NoiseConditions& cond) {
  return common::Db{ambient_nsd_db(f.raw(), cond)};
}

common::Db noise_level(common::Hz f, common::Hz bw, const NoiseConditions& cond) {
  if (bw.raw() <= 0.0) throw std::invalid_argument("bandwidth must be > 0");
  return common::Db{ambient_nsd_db(f.raw(), cond) + 10.0 * std::log10(bw.raw())};
}

rvec synthesize_ambient_noise(std::size_t n, common::SampleRateHz fs,
                              const NoiseConditions& cond, common::Rng& rng) {
  rvec out;
  synthesize_ambient_noise(n, fs, cond, rng, out);
  return out;
}

void synthesize_ambient_noise(std::size_t n, common::SampleRateHz fs,
                              const NoiseConditions& cond, common::Rng& rng, rvec& out) {
  const double fs_hz = fs.raw();
  if (n == 0) {
    out.clear();
    return;
  }
  if (fs_hz <= 0.0) throw std::invalid_argument("sample rate must be > 0");

  const std::size_t nfft = dsp::next_pow2(std::max<std::size_t>(n, 2));
  auto spec_l = dsp::Workspace::local().take_c(nfft);
  cvec& spec = *spec_l;

  // Hermitian spectrum with per-bin amplitude from the Wenz NSD (cached).
  // PSD [Pa^2/Hz] -> per-bin variance = PSD * df; split across +/- bins.
  const rvec& sigma = sigma_table(nfft, fs_hz, cond);
  for (std::size_t k = 1; k < nfft / 2; ++k) {
    const cplx g = rng.complex_gaussian(1.0);
    spec[k] = sigma[k] * g;
    spec[nfft - k] = std::conj(spec[k]);
  }
  // DC and Nyquist real-valued; negligible energy, keep zero.

  // The inverse FFT of this Hermitian spectrum, scaled by nfft/ sqrt?? —
  // with ifft normalization 1/N, variance per sample is sum_k |S_k|^2 / N^2;
  // compensate to land at sum_k PSD*df = total band power.
  dsp::fft_plan(nfft).inverse(spec.data());
  out.resize(n);
  const double scale = static_cast<double>(nfft);
  for (std::size_t i = 0; i < n; ++i) out[i] = spec[i].real() * scale;
}

}  // namespace vab::channel
