// VabNode — the paper's battery-free sensor node, end to end:
// PIE downlink decode (envelope detector) -> MAC -> sensor payload ->
// FM0 backscatter uplink via the Van Atta array, with an energy ledger
// tracking harvest vs spend.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "net/mac.hpp"
#include "phy/modem.hpp"
#include "phy/pie.hpp"
#include "piezo/harvester.hpp"
#include "vanatta/array.hpp"

namespace vab::core {

struct NodeConfig {
  std::uint8_t address = 1;
  vanatta::VanAttaConfig array{};
  phy::PhyConfig phy{};
  phy::PieConfig pie{};
  net::MacTiming mac{};
  piezo::HarvesterConfig harvester{};
  piezo::PowerBudget power{};
};

/// Result of handling one downlink: the uplink switch waveform to apply and
/// when to start it (seconds after the end of the downlink).
struct ScheduledUplink {
  bitvec switch_states;      ///< per-sample modulator state at phy.fs_hz
  double tx_offset_s = 0.0;
  net::Frame frame;          ///< what was sent (for bookkeeping/tests)
};

class VabNode {
 public:
  VabNode(NodeConfig cfg, const piezo::BvdModel& transducer);

  /// Feeds the downlink envelope (output of the node's passive envelope
  /// detector, arbitrary scale) and produces a scheduled uplink if the
  /// command addressed this node.
  std::optional<ScheduledUplink> handle_downlink(const rvec& envelope, double fs_hz);

  void set_sensor_reading(const net::SensorReading& r) { reading_ = r; }
  const net::SensorReading& sensor_reading() const { return reading_; }

  /// Energy ledger: harvested while absorbing carrier at `pressure_pa` for
  /// `duration_s`; spent per state via the power budget.
  void account_harvest(double pressure_pa, double duration_s);
  void account_listen(double duration_s);
  void account_backscatter(double duration_s);
  double energy_balance_j() const { return harvested_j_ - spent_j_; }
  double harvested_j() const { return harvested_j_; }
  double spent_j() const { return spent_j_; }

  std::uint8_t address() const { return cfg_.address; }
  const NodeConfig& config() const { return cfg_; }
  const vanatta::VanAttaArray& array() const { return array_; }

 private:
  NodeConfig cfg_;
  vanatta::VanAttaArray array_;
  phy::BackscatterModulator modulator_;
  net::NodeMac mac_;
  piezo::EnergyHarvester harvester_;
  net::SensorReading reading_{};
  double harvested_j_ = 0.0;
  double spent_j_ = 0.0;
};

}  // namespace vab::core
