#include "core/system.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "fault/fault.hpp"

#include "phy/ber.hpp"
#include "phy/pie.hpp"

namespace vab::core {

NetworkSimulator::NetworkSimulator(sim::Scenario scenario, std::vector<NetworkNode> nodes,
                                   net::MacTiming timing)
    : scenario_(std::move(scenario)), nodes_(std::move(nodes)), timing_(timing) {
  if (nodes_.empty()) throw std::invalid_argument("network needs at least one node");
}

NetworkResult NetworkSimulator::run(std::size_t rounds, std::size_t payload_bytes,
                                    common::Rng& rng) const {
  NetworkResult res;
  res.rounds = rounds;
  res.per_node_delivery.assign(nodes_.size(), 0.0);

  const std::size_t frame_bits = (4 + payload_bytes + 2) * 8;
  net::MacTiming timing = timing_;
  timing.slot_payload_bytes = payload_bytes;
  timing.uplink_bitrate_bps = scenario_.phy.bitrate_bps;

  // Hostile-channel hook: burst loss / dropout from the scenario's fault
  // plan, drawn from the injector's own stream (empty plan = no injector,
  // bit-identical to the clean simulation).
  std::optional<fault::FaultInjector> injector;
  if (!scenario_.fault.empty()) injector.emplace(scenario_.fault);

  // Round = downlink announcement + guard + one slot per node.
  const double downlink_s = phy::pie_duration_s(frame_bits, phy::PieConfig{});
  res.round_duration_s = downlink_s + timing.guard_s +
                         static_cast<double>(nodes_.size()) * timing.slot_duration_s();

  std::vector<std::size_t> delivered(nodes_.size(), 0);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      sim::Scenario s = scenario_;
      s.range_m = nodes_[i].range_m;
      s.node.orientation_rad = nodes_[i].orientation_rad;
      const sim::LinkBudget budget(s);
      const double fade = rng.gaussian(0.0, s.env.fading_sigma_db);
      const double ber = budget
                             .evaluate(common::Meters{nodes_[i].range_m},
                                       common::Db{fade})
                             .ber;
      const double per = phy::packet_error_rate(ber, frame_bits);
      ++res.packets_attempted;
      const bool impaired =
          injector && (injector->reply_lost() || injector->dropped_out());
      if (!rng.coin(per) && !impaired) {
        ++res.packets_delivered;
        ++delivered[i];
      }
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    res.per_node_delivery[i] =
        rounds ? static_cast<double>(delivered[i]) / static_cast<double>(rounds) : 0.0;

  const double payload_bits = static_cast<double>(payload_bytes) * 8.0;
  res.goodput_bps = res.round_duration_s > 0.0
                        ? static_cast<double>(res.packets_delivered) * payload_bits /
                              (static_cast<double>(rounds) * res.round_duration_s)
                        : 0.0;
  return res;
}

}  // namespace vab::core
