#include "core/energy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vab::core {

StorageCapacitor::StorageCapacitor(CapacitorConfig cfg) : cfg_(cfg) {
  if (cfg_.capacitance_f <= 0.0) throw std::invalid_argument("capacitance must be > 0");
  if (cfg_.brownout_voltage_v >= cfg_.max_voltage_v)
    throw std::invalid_argument("brownout must be below max voltage");
  if (cfg_.initial_voltage_v < 0.0 || cfg_.initial_voltage_v > cfg_.max_voltage_v)
    throw std::invalid_argument("initial voltage out of range");
  energy_j_ = energy_for_voltage(cfg_.initial_voltage_v);
  browned_out_ = cfg_.initial_voltage_v < cfg_.brownout_voltage_v;
}

void StorageCapacitor::charge(common::PowerW power, common::Seconds dt) {
  const double power_w = power.raw();
  const double dt_s = dt.raw();
  if (power_w < 0.0 || dt_s < 0.0) throw std::invalid_argument("negative charge");
  energy_j_ =
      std::min(energy_j_ + power_w * dt_s, energy_for_voltage(cfg_.max_voltage_v));
  if (voltage() >= cfg_.brownout_voltage_v) browned_out_ = false;
}

bool StorageCapacitor::draw(common::PowerW power, common::Seconds dt) {
  const double power_w = power.raw();
  const double dt_s = dt.raw();
  if (power_w < 0.0 || dt_s < 0.0) throw std::invalid_argument("negative draw");
  const double need = power_w * dt_s;
  const double floor_e = energy_for_voltage(cfg_.brownout_voltage_v);
  if (energy_j_ - need < floor_e) {
    energy_j_ = floor_e;
    browned_out_ = true;
    return false;
  }
  energy_j_ -= need;
  return true;
}

double StorageCapacitor::voltage() const {
  return std::sqrt(2.0 * energy_j_ / cfg_.capacitance_f);
}

double StorageCapacitor::usable_energy_j() const {
  const double floor_e = energy_for_voltage(cfg_.brownout_voltage_v);
  return std::max(energy_j_ - floor_e, 0.0);
}

common::Seconds endurance(const CapacitorConfig& cfg, common::PowerW load,
                          common::PowerW harvest) {
  const double load_w = load.raw();
  const double harvest_w = harvest.raw();
  if (load_w <= harvest_w)
    return common::Seconds{std::numeric_limits<double>::infinity()};
  StorageCapacitor cap(cfg);
  const double usable = 0.5 * cfg.capacitance_f *
                        (cfg.max_voltage_v * cfg.max_voltage_v -
                         cfg.brownout_voltage_v * cfg.brownout_voltage_v);
  return common::Seconds{usable / (load_w - harvest_w)};
}

}  // namespace vab::core
