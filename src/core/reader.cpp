#include "core/reader.hpp"

#include <cmath>

#include "common/units.hpp"
#include "dsp/mixer.hpp"
#include "obs/obs.hpp"

namespace vab::core {

VabReader::VabReader(ReaderConfig cfg)
    : cfg_(cfg), demod_(cfg.phy), mac_(cfg.mac) {}

rvec VabReader::make_downlink_waveform(const net::Frame& f) const {
  const bitvec bits = net::serialize_bits(f);
  const rvec env = phy::pie_encode_envelope(bits, cfg_.pie, cfg_.phy.fs_hz);
  rvec carrier = dsp::make_tone(cfg_.phy.carrier_hz, cfg_.phy.fs_hz, env.size());
  for (std::size_t i = 0; i < env.size(); ++i) carrier[i] *= env[i];
  return carrier;
}

rvec VabReader::make_carrier(std::size_t n) const {
  return dsp::make_tone(cfg_.phy.carrier_hz, cfg_.phy.fs_hz, n);
}

double VabReader::drive_amplitude_pa() const {
  return common::pressure_from_spl(cfg_.source_level_db) * std::sqrt(2.0);
}

std::size_t VabReader::uplink_bits(std::size_t payload_bytes) {
  return (4 + payload_bytes + 2) * 8;  // header + payload + CRC
}

UplinkDecode VabReader::decode_uplink(const rvec& passband,
                                      std::size_t payload_bytes) const {
  VAB_STAGE("core.reader.decode_uplink");
  UplinkDecode out;
  out.demod = demod_.demodulate(passband, uplink_bits(payload_bytes));
  if (out.demod.sync_found) out.frame = net::parse_bits(out.demod.bits);
  return out;
}

}  // namespace vab::core
