// VabReader — the boat-side unit: projector downlink (PIE-modulated
// carrier), continuous carrier for backscatter, and the hydrophone uplink
// decode chain (SIC + FM0 demodulation + frame parsing).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/mac.hpp"
#include "phy/modem.hpp"
#include "phy/pie.hpp"

namespace vab::core {

struct ReaderConfig {
  phy::PhyConfig phy{};
  phy::PieConfig pie{};
  net::MacTiming mac{};
  double source_level_db = 184.0;  ///< projector output, dB re 1 uPa @ 1 m
};

struct UplinkDecode {
  phy::DemodResult demod;
  std::optional<net::Frame> frame;  ///< set when CRC-valid
};

class VabReader {
 public:
  explicit VabReader(ReaderConfig cfg);

  /// Downlink waveform: carrier with the frame's PIE envelope, at unit
  /// amplitude (scale by the projector drive to get pressure).
  rvec make_downlink_waveform(const net::Frame& f) const;

  /// Continuous carrier of `n` samples for the backscatter phase.
  rvec make_carrier(std::size_t n) const;

  /// Peak pressure amplitude (Pa at 1 m) corresponding to the source level.
  double drive_amplitude_pa() const;

  /// Expected uplink payload bits for a frame with `payload_bytes` payload.
  static std::size_t uplink_bits(std::size_t payload_bytes);

  /// Decodes an uplink capture into a frame.
  UplinkDecode decode_uplink(const rvec& passband, std::size_t payload_bytes) const;

  net::ReaderMac& mac() { return mac_; }
  const ReaderConfig& config() const { return cfg_; }

 private:
  ReaderConfig cfg_;
  phy::ReaderDemodulator demod_;
  net::ReaderMac mac_;
};

}  // namespace vab::core
