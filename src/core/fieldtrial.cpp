#include "core/fieldtrial.hpp"

#include <algorithm>
#include <cmath>

#include "channel/waveform_channel.hpp"
#include "common/units.hpp"
#include "dsp/correlate.hpp"
#include "dsp/iir.hpp"
#include "dsp/mixer.hpp"
#include "phy/wakeup.hpp"

namespace vab::core {

FieldTrial::FieldTrial(sim::Scenario scenario, common::Rng& rng)
    : scenario_(std::move(scenario)), rng_(&rng) {}

FieldTrialResult FieldTrial::run(VabReader& reader, VabNode& node) {
  FieldTrialResult res;
  const auto& phy = scenario_.phy;
  const double fs = phy.fs_hz;
  const double c = scenario_.env.sound_speed();
  const double drive = reader.drive_amplitude_pa();

  channel::WaveformChannelConfig fwd_cfg;
  fwd_cfg.fs_hz = fs;
  fwd_cfg.taps = sim::forward_taps(scenario_);
  fwd_cfg.add_noise = false;
  fwd_cfg.sound_speed_mps = c;
  channel::WaveformChannel fwd(fwd_cfg, *rng_);

  // ---- Downlink ----------------------------------------------------------
  const net::Frame query = reader.mac().make_query(node.address());
  rvec downlink = reader.make_downlink_waveform(query);
  for (auto& v : downlink) v *= drive;
  rvec at_node = fwd.propagate_clean(downlink);
  {
    const rvec noise =
        channel::synthesize_ambient_noise(at_node.size(), common::SampleRateHz{fs},
                                          scenario_.env.noise, *rng_);
    for (std::size_t i = 0; i < at_node.size(); ++i) at_node[i] += noise[i];
  }
  res.downlink_spl_at_node_db = common::spl_from_pressure(dsp::rms(at_node));

  // Node front end: wake-up watch + passive envelope detector.
  phy::WakeupConfig wcfg;
  wcfg.carrier_hz = phy.carrier_hz;
  wcfg.fs_hz = fs;
  // Thresholds referenced to the expected carrier power at this range.
  const double carrier_amp_est = dsp::rms(at_node);
  wcfg.on_threshold = 0.05 * carrier_amp_est * carrier_amp_est;
  wcfg.off_threshold = 0.01 * carrier_amp_est * carrier_amp_est;
  phy::WakeupDetector wake(wcfg);
  dsp::OnePole env_lp(200.0, fs);
  rvec envelope(at_node.size());
  for (std::size_t i = 0; i < at_node.size(); ++i) {
    if (wake.push(at_node[i])) res.node_woke = true;
    envelope[i] = env_lp.process(std::abs(at_node[i]));
  }

  const auto uplink = node.handle_downlink(envelope, fs);
  if (!uplink) return res;
  res.downlink_decoded = true;

  // ---- Uplink -------------------------------------------------------------
  const bitvec& states = uplink->switch_states;
  phy::BackscatterModulator mod(phy);
  const bitvec mask =
      mod.active_mask(net::serialize_bits(uplink->frame).size());

  channel::WaveformChannelConfig ret_cfg = fwd_cfg;
  ret_cfg.taps = sim::return_taps(scenario_);
  channel::WaveformChannel ret(ret_cfg, *rng_);
  channel::WaveformChannelConfig blast_cfg = fwd_cfg;
  blast_cfg.taps = sim::blast_taps(scenario_);
  channel::WaveformChannel blast(blast_cfg, *rng_);

  double max_fwd = 0.0, max_ret = 0.0;
  for (const auto& t : fwd_cfg.taps) max_fwd = std::max(max_fwd, t.delay_s);
  for (const auto& t : ret_cfg.taps) max_ret = std::max(max_ret, t.delay_s);
  const std::size_t n_tx =
      states.size() +
      static_cast<std::size_t>(std::ceil((2.0 * max_fwd + max_ret) * fs)) + 64;

  const rvec tx = dsp::make_tone(phy.carrier_hz, fs, n_tx, drive);
  const rvec incident = fwd.propagate_clean(tx);

  // Node reflection amplitudes from its array at this orientation.
  const double theta = scenario_.node.orientation_rad;
  const cplx r1 = node.array().bistatic_response(theta, theta, phy.carrier_hz, 1);
  const cplx r0 = node.array().bistatic_response(theta, theta, phy.carrier_hz, 0);
  const double ts0 = std::pow(10.0, sim::kElementTargetStrengthDb / 20.0);
  const double mod_amp = ts0 * std::abs(r1 - r0) / 2.0;
  const double static_amp = scenario_.node.static_reflection_rel * mod_amp;
  const bool polarity =
      node.config().array.scheme == vanatta::ModulationScheme::kPolarity;

  double fwd_direct = max_fwd;
  for (const auto& t : fwd_cfg.taps) fwd_direct = std::min(fwd_direct, t.delay_s);
  const auto node_start = static_cast<std::size_t>(std::ceil(fwd_direct * fs));
  rvec reflected(incident.size());
  for (std::size_t n = 0; n < incident.size(); ++n) {
    double coef = static_amp;
    if (n >= node_start) {
      const std::size_t k = n - node_start;
      if (k < states.size() && k < mask.size() && mask[k]) {
        const double level = polarity ? (states[k] ? 1.0 : -1.0)
                                      : (states[k] ? 2.0 : 0.0);
        coef += mod_amp * level;
      }
    }
    reflected[n] = incident[n] * coef;
  }

  rvec rx = ret.propagate_clean(reflected);
  const rvec blast_rx = blast.propagate_clean(tx);
  if (blast_rx.size() > rx.size()) rx.resize(blast_rx.size(), 0.0);
  for (std::size_t n = 0; n < blast_rx.size(); ++n) rx[n] += blast_rx[n];

  const double sep = std::max(scenario_.reader.tx_rx_separation_m, 0.1);
  const auto head = static_cast<std::size_t>(std::ceil(sep / c * fs)) + 256;
  const std::size_t tail = std::min(rx.size(), n_tx);
  if (head < tail)
    rx = rvec(rx.begin() + static_cast<std::ptrdiff_t>(head),
              rx.begin() + static_cast<std::ptrdiff_t>(tail));
  {
    const rvec noise =
        channel::synthesize_ambient_noise(rx.size(), common::SampleRateHz{fs},
                                          scenario_.env.noise, *rng_);
    for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += noise[i];
  }

  const auto decode = reader.decode_uplink(rx, uplink->frame.payload.size());
  res.uplink_synced = decode.demod.sync_found;
  res.uplink_snr_db = decode.demod.snr_db;
  if (decode.frame) {
    res.frame_ok = true;
    reader.mac().on_uplink(decode.frame->addr, true);
    res.reading = net::decode_reading(decode.frame->payload);
  } else if (decode.demod.sync_found) {
    reader.mac().on_uplink(node.address(), false);
  }
  return res;
}

}  // namespace vab::core
