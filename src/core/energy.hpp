// Storage-capacitor dynamics for battery-free operation.
//
// The node banks harvested energy in a supercapacitor (E = C V^2 / 2) and
// browns out when the regulator input drops below its minimum. This turns
// the static power budget (E9) into a time-domain simulation: how long can a
// node run between reader passes, and does a given duty cycle converge?
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "common/units.hpp"
#include "piezo/harvester.hpp"

namespace vab::core {

struct CapacitorConfig {
  double capacitance_f = 0.1;     ///< supercap
  double max_voltage_v = 2.7;
  double brownout_voltage_v = 1.8;  ///< regulator drop-out
  double initial_voltage_v = 2.5;
};

class StorageCapacitor {
 public:
  explicit StorageCapacitor(CapacitorConfig cfg);

  /// Adds harvested energy over `dt` (clamped at max voltage).
  void charge(common::PowerW power, common::Seconds dt);

  /// Draws load energy over `dt`. Returns false (and freezes at the brownout
  /// voltage) if the capacitor cannot supply it.
  bool draw(common::PowerW power, common::Seconds dt);

  double voltage() const;
  double energy_j() const { return energy_j_; }
  bool browned_out() const { return browned_out_; }
  /// Usable energy above the brownout threshold.
  double usable_energy_j() const;

  const CapacitorConfig& config() const { return cfg_; }

 private:
  double energy_for_voltage(double v) const {
    return 0.5 * cfg_.capacitance_f * v * v;
  }

  CapacitorConfig cfg_;
  double energy_j_ = 0.0;
  bool browned_out_ = false;
};

/// Endurance: how long a fully-charged capacitor sustains `load` with a
/// given harvest input (infinite if harvest >= load).
common::Seconds endurance(const CapacitorConfig& cfg, common::PowerW load,
                          common::PowerW harvest);

}  // namespace vab::core
