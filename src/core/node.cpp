#include "core/node.hpp"

#include "net/frame.hpp"

namespace vab::core {

VabNode::VabNode(NodeConfig cfg, const piezo::BvdModel& transducer)
    : cfg_(cfg),
      array_(cfg.array),
      modulator_(cfg.phy),
      mac_(cfg.address, cfg.mac),
      harvester_(cfg.harvester, transducer) {}

std::optional<ScheduledUplink> VabNode::handle_downlink(const rvec& envelope,
                                                        double fs_hz) {
  const auto bits = phy::pie_decode_envelope(envelope, cfg_.pie, fs_hz);
  if (!bits) return std::nullopt;
  const auto frame = net::parse_bits(*bits);
  if (!frame) return std::nullopt;

  const auto response = mac_.on_downlink(*frame, reading_);
  if (!response) return std::nullopt;

  ScheduledUplink up;
  up.frame = response->frame;
  up.tx_offset_s = response->tx_offset_s;
  up.switch_states = modulator_.switch_waveform(net::serialize_bits(response->frame));
  return up;
}

void VabNode::account_harvest(double pressure_pa, double duration_s) {
  harvested_j_ +=
      harvester_.harvested_power_w(pressure_pa, cfg_.phy.carrier_hz) * duration_s;
  spent_j_ += cfg_.power.sleep_w * duration_s;
}

void VabNode::account_listen(double duration_s) {
  spent_j_ += cfg_.power.rx_listen_w * duration_s;
}

void VabNode::account_backscatter(double duration_s) {
  spent_j_ += cfg_.power.backscatter_w * duration_s;
}

}  // namespace vab::core
