// FieldTrial — one complete inventory exchange at waveform level:
//
//   reader PIE downlink (carrier AM) ── forward multipath ──▶ node
//   node: wake-up (Goertzel) ▸ envelope detector ▸ PIE decode ▸ MAC
//   node FM0 backscatter reply ── return multipath ──▶ reader
//   reader: SIC ▸ sync ▸ equalize ▸ decode ▸ frame CRC
//
// This is the closest the simulator gets to the paper's boat-and-node field
// procedure, exercising both link directions through the same water.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "core/node.hpp"
#include "core/reader.hpp"
#include "sim/scenario.hpp"

namespace vab::core {

struct FieldTrialResult {
  bool node_woke = false;          ///< wake-up detector fired on the carrier
  bool downlink_decoded = false;   ///< node parsed the query
  bool uplink_synced = false;
  bool frame_ok = false;           ///< CRC-valid sensor report at the reader
  std::optional<net::SensorReading> reading;
  double downlink_spl_at_node_db = 0.0;
  double uplink_snr_db = 0.0;
};

class FieldTrial {
 public:
  /// `scenario` supplies the water, geometry and PHY; reader and node are
  /// the system under test.
  FieldTrial(sim::Scenario scenario, common::Rng& rng);

  /// Runs one query -> report exchange.
  FieldTrialResult run(VabReader& reader, VabNode& node);

 private:
  sim::Scenario scenario_;
  common::Rng* rng_;
};

}  // namespace vab::core
