// NetworkSimulator — protocol-level multi-node simulation (experiment E12).
//
// Per-packet success is drawn from the analytic link budget (PER from the
// fading-averaged BER at each node's range/orientation); the MAC schedule
// (TDMA rounds) sets airtime and hence network throughput. This is the
// fast path for network-scale questions; single-link fidelity comes from
// sim::WaveformSimulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/mac.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"

namespace vab::core {

struct NetworkNode {
  std::uint8_t address = 1;
  double range_m = 100.0;
  double orientation_rad = 0.0;
  std::uint8_t slot = 0;
};

struct NetworkResult {
  std::size_t rounds = 0;
  std::size_t packets_attempted = 0;
  std::size_t packets_delivered = 0;
  double round_duration_s = 0.0;
  double goodput_bps = 0.0;  ///< delivered payload bits per second
  std::vector<double> per_node_delivery;  ///< indexed like the node list
  double delivery_rate() const {
    return packets_attempted ? static_cast<double>(packets_delivered) /
                                   static_cast<double>(packets_attempted)
                             : 0.0;
  }
};

class NetworkSimulator {
 public:
  /// `scenario` supplies environment/PHY/reader; per-node geometry comes
  /// from the node list.
  NetworkSimulator(sim::Scenario scenario, std::vector<NetworkNode> nodes,
                   net::MacTiming timing = {});

  /// Runs `rounds` TDMA inventory rounds with `payload_bytes` per report.
  NetworkResult run(std::size_t rounds, std::size_t payload_bytes,
                    common::Rng& rng) const;

  const std::vector<NetworkNode>& nodes() const { return nodes_; }

 private:
  sim::Scenario scenario_;
  std::vector<NetworkNode> nodes_;
  net::MacTiming timing_;
};

}  // namespace vab::core
