#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace vab::fault {

namespace {
// Fault accounting across all injectors: how much damage the plans did.
struct FaultMetrics {
  obs::Counter frames_dropped = obs::counter("fault.frames_dropped");
  obs::Counter frames_truncated = obs::counter("fault.frames_truncated");
  obs::Counter bits_flipped = obs::counter("fault.bits_flipped");
  obs::Counter replies_lost = obs::counter("fault.replies_lost");
  obs::Counter wake_misses = obs::counter("fault.wake_misses");
  obs::Counter dropouts = obs::counter("fault.dropouts");
  obs::Counter snr_dips = obs::counter("fault.snr_dips");

  static FaultMetrics& get() {
    static FaultMetrics* m = new FaultMetrics;  // leaked: read at exit
    return *m;
  }
};
}  // namespace

double GilbertElliottConfig::mean_loss() const {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return loss_good;
  const double pi_bad = p_good_to_bad / denom;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

bool FaultPlan::empty() const {
  return !burst.enabled() && frame_drop_prob == 0.0 && frame_truncate_prob == 0.0 &&
         bit_flip_prob == 0.0 && wake_miss_prob == 0.0 && dropout_prob == 0.0 &&
         clock_skew_rel == 0.0 && snr_dip_prob == 0.0;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), rng_(common::Rng::mix64(plan.seed ^ 0xFA017C0DEULL)) {}

bool FaultInjector::reply_lost() {
  if (!plan_.burst.enabled()) return false;
  // Step the chain, then sample loss in the (possibly new) state.
  if (ge_bad_) {
    if (rng_.coin(plan_.burst.p_bad_to_good)) ge_bad_ = false;
  } else {
    if (rng_.coin(plan_.burst.p_good_to_bad)) ge_bad_ = true;
  }
  const bool lost = rng_.coin(ge_bad_ ? plan_.burst.loss_bad : plan_.burst.loss_good);
  if (lost) FaultMetrics::get().replies_lost.inc();
  return lost;
}

FrameFate FaultInjector::corrupt_frame(bytes& wire) {
  if (plan_.frame_drop_prob > 0.0 && rng_.coin(plan_.frame_drop_prob)) {
    FaultMetrics::get().frames_dropped.inc();
    return FrameFate::kDropped;
  }
  if (plan_.frame_truncate_prob > 0.0 && rng_.coin(plan_.frame_truncate_prob) &&
      wire.size() > 1) {
    const auto keep = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
    wire.resize(keep);
    FaultMetrics::get().frames_truncated.inc();
    return FrameFate::kTruncated;
  }
  if (plan_.bit_flip_prob > 0.0 && rng_.coin(plan_.bit_flip_prob) && !wire.empty()) {
    // Distinct bit positions: a repeated XOR would cancel and silently yield
    // an intact frame labelled corrupted.
    const std::size_t total_bits = wire.size() * 8;
    const std::size_t flips =
        std::min(std::max<std::size_t>(plan_.bit_flip_count, 1), total_bits);
    std::vector<std::size_t> chosen;
    chosen.reserve(flips);
    while (chosen.size() < flips) {
      const auto bit = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(total_bits) - 1));
      if (std::find(chosen.begin(), chosen.end(), bit) != chosen.end()) continue;
      chosen.push_back(bit);
      wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    FaultMetrics::get().bits_flipped.add(flips);
    return FrameFate::kCorrupted;
  }
  return FrameFate::kIntact;
}

bool FaultInjector::wake_missed() {
  if (plan_.wake_miss_prob <= 0.0) return false;
  const bool missed = rng_.coin(plan_.wake_miss_prob);
  if (missed) FaultMetrics::get().wake_misses.inc();
  return missed;
}

bool FaultInjector::dropped_out() {
  if (plan_.dropout_prob <= 0.0) return false;
  const bool out = rng_.coin(plan_.dropout_prob);
  if (out) FaultMetrics::get().dropouts.inc();
  return out;
}

double FaultInjector::clock_skew_s(double slot_s) {
  if (plan_.clock_skew_rel <= 0.0) return 0.0;
  return rng_.uniform(-plan_.clock_skew_rel, plan_.clock_skew_rel) * slot_s;
}

bool FaultInjector::apply_snr_dip(rvec& samples) {
  if (plan_.snr_dip_prob <= 0.0 || samples.empty()) return false;
  if (!rng_.coin(plan_.snr_dip_prob)) return false;
  VAB_SPAN("fault.snr_dip");
  const double frac = std::clamp(plan_.snr_dip_duration_frac, 0.0, 1.0);
  const auto len = std::max<std::size_t>(
      1, static_cast<std::size_t>(frac * static_cast<double>(samples.size())));
  const auto start = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(samples.size() - len)));
  const double gain = std::pow(10.0, -plan_.snr_dip_db / 20.0);
  for (std::size_t i = start; i < start + len; ++i) samples[i] *= gain;
  FaultMetrics::get().snr_dips.inc();
  return true;
}

}  // namespace vab::fault
