// Seeded, deterministic fault injection for the net layer and the waveform
// pipeline.
//
// A FaultPlan describes the impairments a run should suffer: whole-frame
// drops, tail truncation, bit flips, reply-loss bursts driven by a
// Gilbert–Elliott two-state channel, node dropout (a duty-cycled node that
// sleeps through a downlink), clock skew on slot timing, and SNR dips
// carved into propagated waveforms. A FaultInjector executes the plan with
// its *own* RNG stream derived from `plan.seed`, so arming faults never
// consumes a draw from the caller's generator — and an empty plan never
// draws at all. Consumers hold a nullable `FaultInjector*`; with nullptr
// (or an empty plan) every hook is a no-op and seeded outputs are
// bit-identical to a build that predates this subsystem.
//
// Determinism contract: one injector per simulated run, stepped only from
// that run's call sequence. Parallel sweeps give each cell its own injector
// (mirroring the per-trial Rng::child discipline), so results are
// thread-count-invariant.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vab::fault {

/// Two-state burst-loss channel (Gilbert–Elliott): a Markov chain between a
/// "good" and a "bad" state with per-state loss probabilities. The classic
/// model for the fading-induced loss bursts underwater links suffer.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  ///< transition probability per reply, good -> bad
  double p_bad_to_good = 0.3;  ///< transition probability per reply, bad -> good
  double loss_good = 0.0;      ///< reply-loss probability while good
  double loss_bad = 1.0;       ///< reply-loss probability while bad

  bool enabled() const { return p_good_to_bad > 0.0 || loss_good > 0.0; }
  /// Stationary (long-run) loss rate of the chain.
  double mean_loss() const;
};

/// Scheduled impairments for one run. Default-constructed = no faults.
struct FaultPlan {
  std::uint64_t seed = 0xFA171ULL;  ///< injector stream seed (decoupled from run seed)

  GilbertElliottConfig burst{};     ///< uplink reply-loss bursts

  // Frame-level corruption, applied to serialized wire bytes.
  double frame_drop_prob = 0.0;      ///< whole frame eaten by the channel
  double frame_truncate_prob = 0.0;  ///< tail cut mid-frame (fade-out)
  double bit_flip_prob = 0.0;        ///< per-frame probability of a bit-flip burst
  std::size_t bit_flip_count = 2;    ///< flips per corrupted frame

  // Node-side failure modes.
  double wake_miss_prob = 0.0;   ///< duty-cycled node sleeps through a downlink
  double dropout_prob = 0.0;     ///< node offline for a whole inventory round
  double clock_skew_rel = 0.0;   ///< uniform ±rel fraction of a slot of timing skew

  // Waveform-level impairment: occasional SNR dips (shadowing events).
  double snr_dip_prob = 0.0;          ///< per-propagate probability of a dip window
  double snr_dip_db = 0.0;            ///< dip depth in dB
  double snr_dip_duration_frac = 0.25;  ///< dip length as a fraction of the waveform

  /// True when no impairment is configured; hooks on an empty plan return
  /// immediately without drawing randomness.
  bool empty() const;
};

/// What the channel did to a frame handed to `corrupt_frame`.
enum class FrameFate : std::uint8_t { kIntact, kDropped, kTruncated, kCorrupted };

/// Executes a FaultPlan. Stateful (Gilbert–Elliott state, RNG stream) and
/// deliberately *not* thread-safe: one injector per simulated run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return !plan_.empty(); }

  /// Steps the Gilbert–Elliott chain once; true = this reply is lost.
  bool reply_lost();

  /// Applies drop/truncate/bit-flip impairments to serialized frame bytes
  /// in place. kDropped leaves `wire` untouched (the caller discards it).
  FrameFate corrupt_frame(bytes& wire);

  /// True = the node slept through this downlink (wake-up receiver missed
  /// the carrier; arXiv:2405.18000's duty-cycling failure mode).
  bool wake_missed();

  /// True = the node is offline for this whole round (fouling, stranding).
  bool dropped_out();

  /// Additive timing skew for one uplink slot of nominal duration `slot_s`,
  /// drawn uniform in ±clock_skew_rel * slot_s. A reply skewed out of its
  /// slot window is counted as a miss by the reader MAC.
  double clock_skew_s(double slot_s);

  /// Attenuates a contiguous window of `samples` by `snr_dip_db` with
  /// probability `snr_dip_prob` (shadowing: a vessel crossing the path).
  /// Returns true when a dip was applied.
  bool apply_snr_dip(rvec& samples);

  /// True while the Gilbert–Elliott chain sits in the bad state (tests).
  bool in_burst() const { return ge_bad_; }

 private:
  FaultPlan plan_;
  common::Rng rng_;
  bool ge_bad_ = false;
};

}  // namespace vab::fault
