// FM0 (bi-phase space) line coding for the backscatter uplink.
//
// FM0 inverts the level at every bit boundary and additionally at mid-bit
// for a data 0. The resulting chip stream is DC-free, which (a) keeps the
// modulation sidebands away from the carrier where the self-interference
// residue sits and (b) makes decoding phase-ambiguity tolerant: bit decisions
// compare the two half-bit chips, not their absolute sign.
#pragma once

#include "common/types.hpp"

namespace vab::phy {

/// Encodes bits into FM0 chips (two chips per bit, values 0/1). The encoder
/// starts from level 1 (or `initial_level`).
bitvec fm0_encode(const bitvec& bits, std::uint8_t initial_level = 1);

/// Hard-decision decode from chips. `chips.size()` must be even.
bitvec fm0_decode(const bitvec& chips);

/// Soft decode from per-chip amplitudes (sign carries the level): for each
/// bit, |c1 + c2| vs |c1 - c2| decides 1 vs 0. Phase-ambiguity tolerant.
bitvec fm0_decode_soft(const rvec& chip_soft);

/// Preamble chip pattern: a Barker-13 derived sequence containing an FM0
/// coding violation so it cannot appear in data. Values 0/1.
bitvec fm0_preamble_chips();

/// Preamble as +/-1 soft levels (for matched filtering).
rvec fm0_preamble_levels();

}  // namespace vab::phy
