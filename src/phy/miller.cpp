#include "phy/miller.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::phy {

namespace {
void validate_m(unsigned m) {
  if (m != 2 && m != 4 && m != 8)
    throw std::invalid_argument("Miller M must be 2, 4 or 8");
}
}  // namespace

bitvec miller_encode(const bitvec& bits, unsigned m) {
  validate_m(m);
  const std::size_t cpb = miller_chips_per_bit(m);
  bitvec chips;
  chips.reserve(bits.size() * cpb);

  std::uint8_t level = 1;  // baseband phase state
  for (std::size_t b = 0; b < bits.size(); ++b) {
    // Boundary rule: invert between two successive data-0s.
    if (b > 0 && !(bits[b - 1] & 1u) && !(bits[b] & 1u)) level ^= 1u;
    for (std::size_t k = 0; k < cpb; ++k) {
      // Data-1 inverts the baseband mid-bit.
      const std::uint8_t baseband =
          ((bits[b] & 1u) && k >= cpb / 2) ? static_cast<std::uint8_t>(level ^ 1u)
                                           : level;
      const std::uint8_t subcarrier = static_cast<std::uint8_t>(k & 1u);
      chips.push_back(baseband ^ subcarrier);
    }
    if (bits[b] & 1u) level ^= 1u;  // data-1 leaves the phase inverted
  }
  return chips;
}

bitvec miller_decode(const bitvec& chips, unsigned m) {
  validate_m(m);
  const std::size_t cpb = miller_chips_per_bit(m);
  if (chips.size() % cpb != 0)
    throw std::invalid_argument("chip count not a multiple of 2*M");
  rvec soft(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) soft[i] = chips[i] ? 1.0 : -1.0;
  return miller_decode_soft(soft, m);
}

bitvec miller_decode_soft(const rvec& chip_soft, unsigned m) {
  validate_m(m);
  const std::size_t cpb = miller_chips_per_bit(m);
  if (chip_soft.size() % cpb != 0)
    throw std::invalid_argument("chip count not a multiple of 2*M");

  bitvec bits;
  bits.reserve(chip_soft.size() / cpb);
  for (std::size_t b = 0; b * cpb < chip_soft.size(); ++b) {
    double first = 0.0, second = 0.0;
    for (std::size_t k = 0; k < cpb; ++k) {
      // Demultiply the subcarrier, then integrate each half-bit.
      const double sub = (k & 1u) ? -1.0 : 1.0;
      const double v = chip_soft[b * cpb + k] * sub;
      if (k < cpb / 2)
        first += v;
      else
        second += v;
    }
    // Mid-bit baseband inversion marks a data-1 (the inverse of FM0's rule).
    bits.push_back(std::abs(first - second) > std::abs(first + second) ? 1 : 0);
  }
  return bits;
}

}  // namespace vab::phy
