// Preamble-trained chip-rate equalizer.
//
// Shallow-water backscatter rides a two-bounce waveguide: surface and bottom
// arrivals land fractions of a chip after the direct path and fade
// coherently. The demodulator estimates a short chip-spaced channel from the
// known pilot+preamble chips (least squares, with a constant column that
// absorbs residual carrier baseline) and applies a zero-forcing linear
// equalizer designed from that estimate.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::phy {

struct ChannelEstimate {
  cvec taps;            ///< h[-precursors .. n-1-precursors], chip spaced
  int precursors = 0;   ///< taps before the main arrival
  cplx baseline{};      ///< fitted constant offset (SIC residue)
  double fit_error = 0.0;  ///< normalized residual of the LS fit
};

/// Fits `observed[c] = baseline + sum_k h_k * known[c - k]` over the region
/// where all indices are valid. `known` are the +/-1 training levels.
ChannelEstimate estimate_channel_ls(const cvec& observed, const rvec& known,
                                    std::size_t n_taps, int precursors);

/// Designs a `w_taps`-long least-squares inverse of `h` (delta at the
/// returned `delay`). Regularized so a near-allpass channel yields a
/// near-identity equalizer.
cvec design_zf_equalizer(const ChannelEstimate& est, std::size_t w_taps,
                         std::size_t& delay_out);

/// Applies FIR `w` to `x` and compensates the design delay, so y[c] aligns
/// with x[c].
cvec equalize(const cvec& x, const cvec& w, std::size_t delay);

}  // namespace vab::phy
