// The VAB uplink modem: node-side backscatter modulator (switch-state
// waveform) and reader-side demodulator chain.
//
// Reader receive chain:
//   passband -> complex downconversion at the carrier -> anti-alias FIR ->
//   decimation -> self-interference cancellation -> preamble correlation
//   (timing + phase) -> per-chip matched filter -> coherent derotation ->
//   FM0 soft decode -> bits.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"
#include "common/units.hpp"
#include "phy/sic.hpp"

namespace vab::phy {

/// Uplink chip coding. FM0 is the paper's operating point; Miller-M trades
/// M x bandwidth for data energy pushed further from the carrier residue.
enum class UplinkCode { kFm0, kMiller2, kMiller4 };

struct PhyConfig {
  double fs_hz = 192000.0;       ///< passband simulation rate
  double carrier_hz = 18500.0;   ///< piezo resonance
  double bitrate_bps = 500.0;    ///< chip rate is chips_per_bit() x this
  UplinkCode uplink_code = UplinkCode::kFm0;
  /// Target baseband samples per chip after decimation (actual value may be
  /// fractional; the demodulator interpolates).
  std::size_t target_samples_per_chip = 8;
  double sync_threshold = 0.45;  ///< normalized correlation acceptance
  std::size_t lowpass_taps = 255;
  SicConfig sic{};
  /// Preamble-trained chip-rate equalizer (set false for the ablation).
  bool enable_equalizer = true;
  std::size_t channel_taps = 3;    ///< chip-spaced channel estimate length
  std::size_t equalizer_taps = 7;  ///< zero-forcing equalizer length

  std::size_t chips_per_bit() const {
    switch (uplink_code) {
      case UplinkCode::kMiller2: return 4;
      case UplinkCode::kMiller4: return 8;
      case UplinkCode::kFm0: break;
    }
    return 2;
  }
  double chip_rate_hz() const {
    return static_cast<double>(chips_per_bit()) * bitrate_bps;
  }
  /// Integer decimation factor from fs to the baseband processing rate.
  std::size_t decimation() const;
  double fs_baseband_hz() const { return fs_hz / static_cast<double>(decimation()); }
  double samples_per_chip_bb() const { return fs_baseband_hz() / chip_rate_hz(); }

  /// Typed views of the unit-bearing fields, for callers migrating onto the
  /// strong-unit API (the raw fields above stay authoritative for configs).
  common::SampleRateHz fs() const { return common::SampleRateHz{fs_hz}; }
  common::Hz carrier() const { return common::Hz{carrier_hz}; }
  common::Hz chip_rate() const { return common::Hz{chip_rate_hz()}; }
  common::SampleRateHz fs_baseband() const {
    return common::SampleRateHz{fs_baseband_hz()};
  }
  common::Seconds chip_duration() const {
    return common::Seconds{1.0 / chip_rate_hz()};
  }
};

/// Node-side modulator: produces the per-sample switch state (0/1 at fs)
/// for a frame = [idle pad][preamble chips][FM0-coded payload][idle pad].
class BackscatterModulator {
 public:
  explicit BackscatterModulator(PhyConfig cfg);

  /// Switch state for each passband sample.
  bitvec switch_waveform(const bitvec& payload_bits) const;

  /// Out-parameter form; allocation-free when `wave` has capacity.
  void switch_waveform(const bitvec& payload_bits, bitvec& wave) const;

  /// 1 where the frame (preamble + payload chips) is active, 0 during the
  /// idle padding. Polarity-modulated nodes only toggle inside the active
  /// region; outside it they sit absorptive (harvesting).
  bitvec active_mask(std::size_t n_payload_bits) const;

  /// Out-parameter form of `active_mask`.
  void active_mask(std::size_t n_payload_bits, bitvec& mask) const;

  /// Number of passband samples `switch_waveform` returns for a payload.
  std::size_t waveform_length(std::size_t n_payload_bits) const;

  /// Idle padding before/after the frame, in chips.
  static constexpr std::size_t kIdleChips = 32;
  /// Alternating pilot chips between idle and preamble. Modulation onset
  /// steps the mean reflection (on-off keying is not DC-free); the pilot
  /// lets the reader's AC-coupled front end settle onto the in-frame
  /// baseline before the sync pattern arrives.
  static constexpr std::size_t kSettleChips = 32;

  const PhyConfig& config() const { return cfg_; }

 private:
  PhyConfig cfg_;
};

struct DemodResult {
  bool sync_found = false;
  bitvec bits;                 ///< decoded payload bits (empty if no sync)
  double corr_peak = 0.0;      ///< normalized preamble correlation
  double carrier_phase_rad = 0.0;
  double snr_db = 0.0;         ///< post-processing chip SNR estimate
  double sic_suppression_db = 0.0;
  std::size_t sync_index_bb = 0;
  double channel_fit_error = 0.0;  ///< LS residual of the channel estimate
};

class ReaderDemodulator {
 public:
  explicit ReaderDemodulator(PhyConfig cfg);

  /// Demodulates `expected_bits` payload bits from a passband capture.
  DemodResult demodulate(const rvec& passband, std::size_t expected_bits) const;

  /// Exposes the baseband (post-SIC) signal for diagnostics/benches.
  cvec to_baseband(const rvec& passband, double* suppression_db = nullptr) const;

  /// Out-parameter form used on the trial hot path; the anti-alias filter
  /// runs in decimated form (only kept samples are computed), so cost scales
  /// with the baseband rate, not the passband rate.
  void to_baseband(const rvec& passband, cvec& out,
                   double* suppression_db = nullptr) const;

  const PhyConfig& config() const { return cfg_; }

 private:
  PhyConfig cfg_;
  // Designed/derived once at construction so per-frame demodulation does not
  // redo filter design or reference synthesis.
  rvec lowpass_taps_;  ///< anti-alias FIR prototype
  rvec pre_levels_;    ///< settle pilot + preamble chip levels
  cvec sync_ref_;      ///< zero-meaned baseband-rate sync reference
};

/// Continuous reader carrier (projector drive), unit amplitude.
rvec reader_carrier(const PhyConfig& cfg, std::size_t n_samples);

}  // namespace vab::phy
