#include "phy/coding.hpp"

#include <stdexcept>

namespace vab::phy {

bitvec bits_from_bytes(const bytes& data) {
  bitvec out;
  out.reserve(data.size() * 8);
  for (auto b : data)
    for (int i = 7; i >= 0; --i) out.push_back((b >> i) & 1u);
  return out;
}

bytes bytes_from_bits(const bitvec& bits) {
  if (bits.size() % 8 != 0) throw std::invalid_argument("bit count not a multiple of 8");
  bytes out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    out[i / 8] = static_cast<std::uint8_t>((out[i / 8] << 1) | (bits[i] & 1u));
  return out;
}

std::uint16_t crc16(const bytes& data) {
  std::uint16_t crc = 0xFFFF;
  for (auto b : data) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<unsigned>(b) << 8));
    for (int i = 0; i < 8; ++i)
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

bytes append_crc(const bytes& data) {
  bytes out = data;
  const std::uint16_t c = crc16(data);
  out.push_back(static_cast<std::uint8_t>(c >> 8));
  out.push_back(static_cast<std::uint8_t>(c & 0xFF));
  return out;
}

bool check_and_strip_crc(const bytes& data, bytes& out) {
  if (data.size() < 2) return false;
  bytes payload(data.begin(), data.end() - 2);
  const std::uint16_t expect =
      static_cast<std::uint16_t>((data[data.size() - 2] << 8) | data[data.size() - 1]);
  if (crc16(payload) != expect) return false;
  out = std::move(payload);
  return true;
}

namespace {
// Hamming(7,4) with parity bits p1,p2,p3 at positions 1,2,4 (1-indexed):
// codeword [p1 p2 d1 p3 d2 d3 d4].
void encode_nibble(const std::uint8_t d[4], bitvec& out) {
  const std::uint8_t p1 = d[0] ^ d[1] ^ d[3];
  const std::uint8_t p2 = d[0] ^ d[2] ^ d[3];
  const std::uint8_t p3 = d[1] ^ d[2] ^ d[3];
  out.push_back(p1);
  out.push_back(p2);
  out.push_back(d[0]);
  out.push_back(p3);
  out.push_back(d[1]);
  out.push_back(d[2]);
  out.push_back(d[3]);
}
}  // namespace

bitvec hamming74_encode(const bitvec& bits) {
  if (bits.size() % 4 != 0) throw std::invalid_argument("bit count not a multiple of 4");
  bitvec out;
  out.reserve(bits.size() / 4 * 7);
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    const std::uint8_t d[4] = {bits[i], bits[i + 1], bits[i + 2], bits[i + 3]};
    encode_nibble(d, out);
  }
  return out;
}

bitvec hamming74_decode(const bitvec& bits, std::size_t& corrected) {
  if (bits.size() % 7 != 0) throw std::invalid_argument("bit count not a multiple of 7");
  corrected = 0;
  bitvec out;
  out.reserve(bits.size() / 7 * 4);
  for (std::size_t i = 0; i < bits.size(); i += 7) {
    std::uint8_t c[7];
    for (int j = 0; j < 7; ++j) c[j] = bits[i + static_cast<std::size_t>(j)];
    const std::uint8_t s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    const std::uint8_t s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    const std::uint8_t s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
    const int syndrome = s1 | (s2 << 1) | (s3 << 2);
    if (syndrome != 0) {
      c[syndrome - 1] ^= 1;
      ++corrected;
    }
    out.push_back(c[2]);
    out.push_back(c[4]);
    out.push_back(c[5]);
    out.push_back(c[6]);
  }
  return out;
}

bitvec interleave(const bitvec& bits, std::size_t rows, std::size_t cols) {
  if (bits.size() != rows * cols)
    throw std::invalid_argument("interleaver size mismatch");
  bitvec out(bits.size());
  std::size_t idx = 0;
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) out[idx++] = bits[r * cols + c];
  return out;
}

bitvec deinterleave(const bitvec& bits, std::size_t rows, std::size_t cols) {
  if (bits.size() != rows * cols)
    throw std::invalid_argument("interleaver size mismatch");
  bitvec out(bits.size());
  std::size_t idx = 0;
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) out[r * cols + c] = bits[idx++];
  return out;
}

std::size_t hamming_distance(const bitvec& a, const bitvec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("length mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

}  // namespace vab::phy
