#include "phy/modem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/resample.hpp"
#include "dsp/workspace.hpp"
#include "obs/obs.hpp"
#include "phy/equalizer.hpp"
#include "phy/fm0.hpp"
#include "phy/miller.hpp"

namespace vab::phy {

std::size_t PhyConfig::decimation() const {
  const double target_rate =
      static_cast<double>(target_samples_per_chip) * chip_rate_hz();
  const auto m = static_cast<std::size_t>(std::floor(fs_hz / target_rate));
  return std::max<std::size_t>(m, 1);
}

BackscatterModulator::BackscatterModulator(PhyConfig cfg) : cfg_(cfg) {
  if (cfg_.fs_hz <= 0.0 || cfg_.bitrate_bps <= 0.0)
    throw std::invalid_argument("bad PHY config");
  if (cfg_.chip_rate_hz() >= cfg_.fs_hz / 4.0)
    throw std::invalid_argument("chip rate too high for the sample rate");
}

namespace {
bitvec encode_uplink(const bitvec& bits, UplinkCode code) {
  switch (code) {
    case UplinkCode::kMiller2: return miller_encode(bits, 2);
    case UplinkCode::kMiller4: return miller_encode(bits, 4);
    case UplinkCode::kFm0: break;
  }
  return fm0_encode(bits);
}

bitvec decode_uplink_soft(const rvec& soft, UplinkCode code) {
  switch (code) {
    case UplinkCode::kMiller2: return miller_decode_soft(soft, 2);
    case UplinkCode::kMiller4: return miller_decode_soft(soft, 4);
    case UplinkCode::kFm0: break;
  }
  return fm0_decode_soft(soft);
}
}  // namespace

std::size_t BackscatterModulator::waveform_length(std::size_t n_payload_bits) const {
  const std::size_t chips = 2 * kIdleChips + kSettleChips +
                            fm0_preamble_chips().size() +
                            cfg_.chips_per_bit() * n_payload_bits;
  const double spc = cfg_.fs_hz / cfg_.chip_rate_hz();
  return static_cast<std::size_t>(std::ceil(static_cast<double>(chips) * spc));
}

bitvec BackscatterModulator::switch_waveform(const bitvec& payload_bits) const {
  bitvec wave;
  switch_waveform(payload_bits, wave);
  return wave;
}

void BackscatterModulator::switch_waveform(const bitvec& payload_bits,
                                           bitvec& wave) const {
  auto chips_l = dsp::Workspace::local().take_b(0);
  bitvec& chips = *chips_l;
  chips.insert(chips.end(), kIdleChips, 0);  // absorptive idle (harvesting)
  for (std::size_t i = 0; i < kSettleChips; ++i)
    chips.push_back(static_cast<std::uint8_t>(i & 1u));  // alternating pilot
  const bitvec& pre = fm0_preamble_chips();
  chips.insert(chips.end(), pre.begin(), pre.end());
  const bitvec data_chips = encode_uplink(payload_bits, cfg_.uplink_code);
  chips.insert(chips.end(), data_chips.begin(), data_chips.end());
  chips.insert(chips.end(), kIdleChips, 0);

  const double spc = cfg_.fs_hz / cfg_.chip_rate_hz();
  const auto n =
      static_cast<std::size_t>(std::ceil(static_cast<double>(chips.size()) * spc));
  wave.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(static_cast<double>(i) / spc);
    wave[i] = chips[std::min(c, chips.size() - 1)];
  }
}

bitvec BackscatterModulator::active_mask(std::size_t n_payload_bits) const {
  bitvec mask;
  active_mask(n_payload_bits, mask);
  return mask;
}

void BackscatterModulator::active_mask(std::size_t n_payload_bits, bitvec& mask) const {
  const std::size_t pre = fm0_preamble_chips().size();
  const std::size_t active_chips =
      kSettleChips + pre + cfg_.chips_per_bit() * n_payload_bits;
  const std::size_t chips = 2 * kIdleChips + active_chips;
  const double spc = cfg_.fs_hz / cfg_.chip_rate_hz();
  const auto n = static_cast<std::size_t>(std::ceil(static_cast<double>(chips) * spc));
  mask.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(static_cast<double>(i) / spc);
    mask[i] = (c >= kIdleChips && c < kIdleChips + active_chips) ? 1 : 0;
  }
}

ReaderDemodulator::ReaderDemodulator(PhyConfig cfg) : cfg_(cfg) {
  if (cfg_.fs_hz <= 0.0 || cfg_.bitrate_bps <= 0.0)
    throw std::invalid_argument("bad PHY config");
  // The anti-alias filter needs a very deep stopband: the -2fc mixing image
  // of the carrier blast can sit ~90 dB above the backscatter sidebands and
  // would alias into baseband at the decimation step. Kaiser beta 12 buys
  // ~118 dB of stopband attenuation.
  const double cutoff = 2.5 * cfg_.chip_rate_hz();
  lowpass_taps_ = dsp::design_lowpass(cutoff, cfg_.fs_hz, cfg_.lowpass_taps,
                                      dsp::WindowType::kKaiser, 12.0);

  // Baseband sync reference at the (possibly fractional) samples-per-chip
  // rate. The reference spans the settle pilot plus the Barker preamble: the
  // alternating pilot pins chip timing (a one-chip slip flips every pilot
  // chip) while Barker's autocorrelation pins which chip is which.
  const double spc = cfg_.samples_per_chip_bb();
  pre_levels_.reserve(BackscatterModulator::kSettleChips + fm0_preamble_chips().size());
  for (std::size_t i = 0; i < BackscatterModulator::kSettleChips; ++i)
    pre_levels_.push_back((i & 1u) ? 1.0 : -1.0);
  for (double v : fm0_preamble_levels()) pre_levels_.push_back(v);
  const auto ref_len =
      static_cast<std::size_t>(std::floor(static_cast<double>(pre_levels_.size()) * spc));
  // Zero-mean the reference: the AC-coupled front end removes DC, and a
  // DC-free reference cannot correlate with residual carrier transients.
  double pre_mean = 0.0;
  for (double v : pre_levels_) pre_mean += v;
  pre_mean /= static_cast<double>(pre_levels_.size());
  sync_ref_.resize(ref_len);
  for (std::size_t i = 0; i < ref_len; ++i) {
    const auto c = static_cast<std::size_t>(static_cast<double>(i) / spc);
    sync_ref_[i] = cplx{pre_levels_[std::min(c, pre_levels_.size() - 1)] - pre_mean, 0.0};
  }
}

cvec ReaderDemodulator::to_baseband(const rvec& passband, double* suppression_db) const {
  cvec out;
  to_baseband(passband, out, suppression_db);
  return out;
}

void ReaderDemodulator::to_baseband(const rvec& passband, cvec& out,
                                    double* suppression_db) const {
  VAB_STAGE("demod.baseband");
  // Downconvert, then anti-alias + decimate in one decimated FIR pass: only
  // the kept baseband samples are computed, so the 255-tap filter costs
  // 1/decimation() of full-rate filtering while producing bit-identical
  // outputs.
  auto bb_l = dsp::Workspace::local().take_c(0);
  cvec& bb = *bb_l;
  dsp::downconvert(passband, cfg_.carrier_hz, cfg_.fs_hz, 0.0, bb);
  const std::size_t m = cfg_.decimation();
  // Skip the filter warm-up: while the delay line fills, the output ramps
  // from zero to the blast level, and that ramp would ring the carrier
  // notch for thousands of samples.
  const std::size_t warmup = cfg_.lowpass_taps + 8 * m;
  dsp::fir_filter_decimate(lowpass_taps_, bb, m, warmup, out);

  // Self-interference cancellation.
  VAB_STAGE("demod.sic");
  SelfInterferenceCanceller sic(cfg_.sic, cfg_.chip_rate_hz(), cfg_.fs_baseband_hz());
  sic.process_inplace(out);
  if (suppression_db) *suppression_db = sic.last_suppression_db();
}

DemodResult ReaderDemodulator::demodulate(const rvec& passband,
                                          std::size_t expected_bits) const {
  DemodResult res;
  auto bb_l = dsp::Workspace::local().take_c(0);
  cvec& bb = *bb_l;
  to_baseband(passband, bb, &res.sic_suppression_db);

  // Sync against the cached zero-meaned reference (built at construction).
  const double spc = cfg_.samples_per_chip_bb();
  const rvec& pre_levels = pre_levels_;
  const cvec& ref = sync_ref_;

  const auto peak = [&] {
    VAB_STAGE("demod.sync");
    return dsp::find_peak(bb, ref, cfg_.sync_threshold);
  }();
  if (!peak) return res;
  res.sync_found = true;
  res.corr_peak = peak->value;
  res.carrier_phase_rad = std::arg(peak->raw);
  res.sync_index_bb = peak->index;

  // Matched filter per chip over the whole frame (training + data).
  const std::size_t n_known = pre_levels.size();
  const std::size_t n_data = cfg_.chips_per_bit() * expected_bits;
  const std::size_t n_total = n_known + n_data;
  auto chips_l = dsp::Workspace::local().take_c(n_total);
  cvec& chips = *chips_l;
  {
    VAB_STAGE("demod.chips");
    for (std::size_t c = 0; c < n_total; ++c) {
      // Integrate the central 60% of the chip: the anti-alias filter smears
      // the chip edges, and including them both biases the soft value and
      // inflates the noise estimate.
      const double t0 =
          static_cast<double>(peak->index) + (static_cast<double>(c) + 0.2) * spc;
      const double t1 = t0 + 0.6 * spc;
      cplx acc{};
      int cnt = 0;
      // NOLINTNEXTLINE(cert-flp30-c): t0 is fractional (sub-sample sync) and
      // every pinned output depends on this exact accumulate-by-1.0 rounding;
      // an integer counter with t0 + k rounds differently at the last bit.
      for (double t = t0; t < t1 - 0.5; t += 1.0) {
        if (t >= 0.0 && t < static_cast<double>(bb.size() - 1)) {
          acc += dsp::sample_at(bb, t);
          ++cnt;
        }
      }
      if (cnt > 0) acc /= static_cast<double>(cnt);
      chips[c] = acc;
    }
  }

  // Equalize using the known training chips (pilot + preamble): shallow-water
  // multipath lands fractions of a chip late and fades coherently; the
  // LS-fitted chip-spaced channel + zero-forcing inverse restores the
  // constellation. Falls back to plain derotation when disabled or when the
  // fit fails.
  cplx derot = std::exp(cplx{0.0, -res.carrier_phase_rad});
  if (cfg_.enable_equalizer && n_known >= 2 * cfg_.channel_taps + 4) {
    VAB_STAGE("demod.equalize");
    try {
      const cvec known_chips(chips.begin(),
                             chips.begin() + static_cast<std::ptrdiff_t>(n_known));
      const auto est =
          estimate_channel_ls(known_chips, pre_levels, cfg_.channel_taps, 1);
      res.channel_fit_error = est.fit_error;
      std::size_t delay = 0;
      const cvec w = design_zf_equalizer(est, cfg_.equalizer_taps, delay);
      cvec shifted = chips;
      for (auto& v : shifted) v -= est.baseline;
      chips = equalize(shifted, w, delay);
      // Residual complex gain after equalization, from the training region.
      cplx g{};
      for (std::size_t c = 0; c < n_known; ++c) g += chips[c] * pre_levels[c];
      derot = std::abs(g) > 0.0 ? std::conj(g) / std::abs(g) : cplx{1.0, 0.0};
    } catch (const std::exception&) {
      // Singular fit (e.g. no signal): keep the unequalized chips.
    }
  }

  const std::size_t n_chips = n_data;
  auto soft_l = dsp::Workspace::local().take_r(n_chips);
  auto mags_l = dsp::Workspace::local().take_r(n_chips);
  rvec& soft = *soft_l;
  rvec& mags = *mags_l;
  for (std::size_t c = 0; c < n_chips; ++c) {
    soft[c] = (chips[n_known + c] * derot).real();
    mags[c] = std::abs(soft[c]);
  }

  // Remove residual baseline drift (SIC convergence transient) in two
  // passes. Pass 1: a centered moving average estimates the baseline — FM0
  // data is balanced, so the local chip mean is mostly baseline, but random
  // data imbalance leaks modulation into it. Pass 2 (decision-directed):
  // strip the modulation using the pass-1 chip signs, then re-estimate the
  // baseline from the residual alone, which is modulation-free at high SNR.
  if (n_chips > 0) {
    auto moving_mean = [n_chips](const rvec& v, std::size_t half) {
      rvec m(n_chips);
      for (std::size_t c = 0; c < n_chips; ++c) {
        const std::size_t lo = c >= half ? c - half : 0;
        const std::size_t hi = std::min(c + half, n_chips - 1);
        double acc = 0.0;
        for (std::size_t k = lo; k <= hi; ++k) acc += v[k];
        m[c] = acc / static_cast<double>(hi - lo + 1);
      }
      return m;
    };

    const rvec base1 = moving_mean(soft, 4);
    rvec pass1(n_chips);
    double amp = 0.0;
    for (std::size_t c = 0; c < n_chips; ++c) {
      pass1[c] = soft[c] - base1[c];
      amp += std::abs(pass1[c]);
    }
    amp /= static_cast<double>(n_chips);

    rvec residual(n_chips);
    for (std::size_t c = 0; c < n_chips; ++c)
      residual[c] = soft[c] - (pass1[c] >= 0.0 ? amp : -amp);
    const rvec base2 = moving_mean(residual, 4);
    for (std::size_t c = 0; c < n_chips; ++c) {
      soft[c] -= base2[c];
      mags[c] = std::abs(soft[c]);
    }
  }

  {
    VAB_STAGE("demod.decode");
    res.bits = decode_uplink_soft(soft, cfg_.uplink_code);
  }

  // Chip-SNR estimate: signal power from the mean magnitude, noise from the
  // spread around +/- that level.
  if (!mags.empty()) {
    const double a = common::mean(mags);
    double nvar = 0.0;
    for (std::size_t c = 0; c < soft.size(); ++c) {
      const double err = mags[c] - a;
      nvar += err * err;
    }
    nvar /= static_cast<double>(soft.size());
    res.snr_db = 10.0 * std::log10(std::max(a * a, 1e-30) / std::max(nvar, 1e-30));
  }
  return res;
}

rvec reader_carrier(const PhyConfig& cfg, std::size_t n_samples) {
  return dsp::make_tone(cfg.carrier_hz, cfg.fs_hz, n_samples);
}

}  // namespace vab::phy
