#include "phy/pie.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vab::phy {

namespace {
void append_level(rvec& env, double level, double duration_s, double fs_hz) {
  const auto n = static_cast<std::size_t>(std::round(duration_s * fs_hz));
  env.insert(env.end(), n, level);
}
}  // namespace

rvec pie_encode_envelope(const bitvec& bits, const PieConfig& cfg, double fs_hz) {
  if (fs_hz <= 0.0 || cfg.tari_s <= 0.0) throw std::invalid_argument("bad PIE config");
  rvec env;
  const double pw = cfg.pw_ratio * cfg.tari_s;
  // Leading carrier so the node's envelope detector settles, then delimiter.
  append_level(env, 1.0, 2.0 * cfg.tari_s, fs_hz);
  append_level(env, 0.0, cfg.delimiter_taris * cfg.tari_s, fs_hz);
  for (auto b : bits) {
    const double high = (b & 1u) ? cfg.one_ratio * cfg.tari_s : cfg.tari_s;
    append_level(env, 1.0, high, fs_hz);
    append_level(env, 0.0, pw, fs_hz);
  }
  // Trailing carrier marks end of frame.
  append_level(env, 1.0, 2.0 * cfg.tari_s, fs_hz);
  return env;
}

double pie_duration_s(std::size_t n_bits, const PieConfig& cfg) {
  const double pw = cfg.pw_ratio * cfg.tari_s;
  // Worst case: all ones.
  return (2.0 + cfg.delimiter_taris + 2.0) * cfg.tari_s +
         static_cast<double>(n_bits) * (cfg.one_ratio * cfg.tari_s + pw);
}

std::optional<bitvec> pie_decode_envelope(const rvec& envelope, const PieConfig& cfg,
                                          double fs_hz) {
  if (envelope.empty()) return std::nullopt;
  const double high = *std::max_element(envelope.begin(), envelope.end());
  if (high <= 0.0) return std::nullopt;
  const double thr = 0.5 * high;

  // Run-length extraction.
  struct Run {
    bool on;
    std::size_t len;
  };
  std::vector<Run> runs;
  bool cur = envelope[0] > thr;
  std::size_t len = 1;
  for (std::size_t i = 1; i < envelope.size(); ++i) {
    const bool on = envelope[i] > thr;
    if (on == cur) {
      ++len;
    } else {
      runs.push_back({cur, len});
      cur = on;
      len = 1;
    }
  }
  runs.push_back({cur, len});

  const double tari_samples = cfg.tari_s * fs_hz;

  // Debounce: multipath interference makes the envelope chatter across the
  // threshold at symbol edges, inserting sub-tari glitch runs. Merge any run
  // shorter than a tenth of a tari into its neighbours until stable.
  const auto min_run = static_cast<std::size_t>(0.1 * tari_samples);
  bool merged = true;
  while (merged && runs.size() >= 3) {
    merged = false;
    for (std::size_t i = 1; i + 1 < runs.size(); ++i) {
      if (runs[i].len >= min_run) continue;
      runs[i - 1].len += runs[i].len + runs[i + 1].len;
      runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(i),
                 runs.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      merged = true;
      break;
    }
  }
  const double delim_samples = cfg.delimiter_taris * tari_samples;

  // Find the delimiter: an off-run close to the expected length that is
  // preceded by carrier (an on-run of at least one tari). The precondition
  // rejects the propagation-delay silence at the start of a capture, which
  // can coincidentally match the delimiter length.
  std::size_t start = runs.size();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const bool preceded_by_carrier =
        runs[i - 1].on && static_cast<double>(runs[i - 1].len) > 0.5 * tari_samples;
    if (!runs[i].on && preceded_by_carrier &&
        std::abs(static_cast<double>(runs[i].len) - delim_samples) <
            0.25 * delim_samples) {
      start = i + 1;
      break;
    }
  }
  if (start >= runs.size()) return std::nullopt;

  // Each data symbol is a high run followed by a ~pw low pulse; the trailing
  // end-of-frame carrier is a high run followed by nothing (or by a low far
  // longer than pw) and terminates the frame.
  bitvec bits;
  const double threshold_samples = 1.5 * tari_samples;
  const double pw_samples = cfg.pw_ratio * tari_samples;
  for (std::size_t i = start; i < runs.size(); ++i) {
    if (!runs[i].on) continue;
    const bool followed_by_pw =
        (i + 1 < runs.size()) && !runs[i + 1].on &&
        static_cast<double>(runs[i + 1].len) > 0.5 * pw_samples &&
        static_cast<double>(runs[i + 1].len) < 2.0 * pw_samples;
    if (!followed_by_pw) break;  // trailing carrier (or truncated frame)
    bits.push_back(static_cast<double>(runs[i].len) > threshold_samples ? 1 : 0);
  }
  return bits;
}

}  // namespace vab::phy
