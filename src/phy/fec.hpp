// Frame-level FEC: Hamming(7,4) + block interleaving packaged as a codec.
//
// Near the range limit, chip errors arrive both isolated (noise) and in
// bursts (fades); the interleaver spreads a burst across code blocks so the
// single-error-correcting Hamming code can absorb it. Rate 4/7.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace vab::phy {

struct FecConfig {
  bool enable = true;
};

class FrameCodec {
 public:
  explicit FrameCodec(FecConfig cfg = {}) : cfg_(cfg) {}

  /// Encoded size in bits for `data_bits` of payload (identity if disabled).
  std::size_t coded_size(std::size_t data_bits) const;

  /// Encodes: pad to a nibble boundary, Hamming-encode, interleave.
  bitvec encode(const bitvec& data) const;

  /// Decodes `coded` back to `data_bits` payload bits. `corrected_blocks`
  /// reports how many Hamming blocks needed a correction.
  bitvec decode(const bitvec& coded, std::size_t data_bits,
                std::size_t& corrected_blocks) const;

  bool enabled() const { return cfg_.enable; }

 private:
  static std::size_t padded_bits(std::size_t data_bits) {
    return (data_bits + 3) / 4 * 4;
  }

  FecConfig cfg_;
};

}  // namespace vab::phy
