#include "phy/equalizer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/linalg.hpp"

namespace vab::phy {

ChannelEstimate estimate_channel_ls(const cvec& observed, const rvec& known,
                                    std::size_t n_taps, int precursors) {
  if (observed.size() != known.size())
    throw std::invalid_argument("training length mismatch");
  if (n_taps == 0) throw std::invalid_argument("need at least one channel tap");
  const int n = static_cast<int>(n_taps);
  const int len = static_cast<int>(known.size());
  // Valid rows: c - (k - precursors) in [0, len) for all k in [0, n).
  const int c_lo = n - 1 - precursors;
  const int c_hi = len - 1 + (0 - precursors);  // need c + precursors <= len-1
  const int c_end = std::min(len - 1, c_hi);
  if (c_lo > c_end) throw std::invalid_argument("training too short for tap count");

  const std::size_t rows = static_cast<std::size_t>(c_end - c_lo + 1);
  common::CMatrix a(rows, n_taps + 1);  // +1: constant baseline column
  cvec b(rows);
  for (int c = c_lo; c <= c_end; ++c) {
    const auto r = static_cast<std::size_t>(c - c_lo);
    for (int k = 0; k < n; ++k)
      a.at(r, static_cast<std::size_t>(k)) =
          cplx{known[static_cast<std::size_t>(c - k + precursors)], 0.0};
    a.at(r, n_taps) = cplx{1.0, 0.0};
    b[r] = observed[static_cast<std::size_t>(c)];
  }

  const cvec x = common::solve_least_squares(a, b, 1e-9);
  ChannelEstimate est;
  est.taps.assign(x.begin(), x.begin() + n);
  est.precursors = precursors;
  est.baseline = x[n_taps];

  double err = 0.0, sig = 0.0;
  for (int c = c_lo; c <= c_end; ++c) {
    cplx model = est.baseline;
    for (int k = 0; k < n; ++k)
      model += est.taps[static_cast<std::size_t>(k)] *
               known[static_cast<std::size_t>(c - k + precursors)];
    err += std::norm(observed[static_cast<std::size_t>(c)] - model);
    sig += std::norm(observed[static_cast<std::size_t>(c)]);
  }
  est.fit_error = sig > 0.0 ? err / sig : 1.0;
  return est;
}

cvec design_zf_equalizer(const ChannelEstimate& est, std::size_t w_taps,
                         std::size_t& delay_out) {
  const std::size_t L = est.taps.size();
  if (w_taps == 0) throw std::invalid_argument("equalizer needs taps");
  // Convolution matrix C (rows: output index, cols: equalizer tap):
  // (h * w)[i] = sum_j h[i-j] w[j], i in [0, L + W - 2].
  const std::size_t out_len = L + w_taps - 1;
  common::CMatrix c(out_len, w_taps);
  for (std::size_t i = 0; i < out_len; ++i)
    for (std::size_t j = 0; j < w_taps; ++j) {
      if (i >= j && i - j < L) c.at(i, j) = est.taps[i - j];
    }
  // Target: delta at the main-tap position plus the equalizer center.
  std::size_t main_tap = 0;
  double best = 0.0;
  for (std::size_t k = 0; k < L; ++k) {
    const double m = std::abs(est.taps[k]);
    if (m > best) {
      best = m;
      main_tap = k;
    }
  }
  const std::size_t delay = main_tap + w_taps / 2;
  cvec target(out_len);
  target[delay] = cplx{1.0, 0.0};

  const cvec w = common::solve_least_squares(c, target, 1e-6);
  // Align equalizer output with the training indices: the cascade h*w has
  // its delta at `delay` in tap coordinates; shifting by the precursor count
  // maps back to the symbol clock.
  const long d = static_cast<long>(delay) - static_cast<long>(est.precursors);
  delay_out = d > 0 ? static_cast<std::size_t>(d) : 0;
  return w;
}

cvec equalize(const cvec& x, const cvec& w, std::size_t delay) {
  cvec y(x.size(), cplx{});
  for (std::size_t i = 0; i < x.size(); ++i) {
    cplx acc{};
    for (std::size_t j = 0; j < w.size(); ++j) {
      const std::size_t idx = i + delay;
      if (idx >= j && idx - j < x.size()) acc += w[j] * x[idx - j];
    }
    y[i] = acc;
  }
  return y;
}

}  // namespace vab::phy
