// Node-side carrier wake-up detector.
//
// A sleeping node cannot run the reader's DSP chain; it watches for the
// reader's carrier with a Goertzel bin (two multiplies per sample) and a
// hysteresis comparator, then powers the envelope detector for the PIE
// downlink. This is the microwatt front door of the node's state machine.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/goertzel.hpp"

namespace vab::phy {

struct WakeupConfig {
  double carrier_hz = 18500.0;
  double fs_hz = 96000.0;
  /// Detection block length in samples (latency vs sensitivity trade).
  std::size_t block = 960;  ///< 10 ms at 96 kHz
  /// Carrier power (block-normalized) that asserts the wake signal.
  double on_threshold = 1e-6;
  /// Power below which the node returns to sleep (hysteresis).
  double off_threshold = 2.5e-7;
  /// Consecutive blocks above/below threshold required to switch.
  std::size_t confirm_blocks = 2;
};

class WakeupDetector {
 public:
  explicit WakeupDetector(WakeupConfig cfg);

  /// Feeds one sample; returns true exactly when a wake event fires (rising
  /// edge after confirmation).
  bool push(double sample);

  bool awake() const { return awake_; }
  double last_block_power() const { return last_power_; }
  std::size_t blocks_processed() const { return blocks_; }

  void reset();

 private:
  WakeupConfig cfg_;
  dsp::GoertzelDetector goertzel_;
  bool awake_ = false;
  std::size_t streak_ = 0;
  std::size_t blocks_ = 0;
  double last_power_ = 0.0;
};

}  // namespace vab::phy
