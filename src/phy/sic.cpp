#include "phy/sic.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::phy {

SelfInterferenceCanceller::SelfInterferenceCanceller(const SicConfig& cfg,
                                                     double chip_rate_hz, double fs_bb_hz)
    : cfg_(cfg) {
  if (chip_rate_hz <= 0.0 || fs_bb_hz <= 0.0)
    throw std::invalid_argument("rates must be > 0");
  const double corner_hz = cfg.notch_corner_frac * chip_rate_hz;
  alpha_ = 1.0 - std::exp(-common::kTwoPi * corner_hz / fs_bb_hz);
}

cvec SelfInterferenceCanceller::process(const cvec& x, const cvec& reference) {
  cvec y = x;
  process_inplace(y, reference);
  return y;
}

void SelfInterferenceCanceller::process_inplace(cvec& x, const cvec& reference) {
  if (!reference.empty() && reference.size() != x.size())
    throw std::invalid_argument("reference length mismatch");

  // DC power before (carrier sits at 0 Hz in baseband).
  cplx mean_before{};
  for (const auto& v : x) mean_before += v;
  if (!x.empty()) mean_before /= static_cast<double>(x.size());

  cvec& y = x;
  if (cfg_.enable_dc_notch) {
    // Stage 1 (static): subtract the full-capture complex mean. For an
    // unmodulated carrier blast this is exact — the blast can sit 80-90 dB
    // above the backscatter and any tracker transient of that size would
    // bury the frame. The balanced FM0 frame contributes ~nothing to the
    // mean.
    for (auto& v : y) v -= mean_before;
    // Stage 2 (dynamic): slow one-pole tracker absorbs residual drift
    // (projector ramp, platform motion). It starts from zero error, so its
    // own transient is negligible.
    cplx track{};
    for (auto& v : y) {
      track += alpha_ * (v - track);
      v -= track;
    }
  }
  if (cfg_.enable_lms) {
    dsp::LmsCanceller lms(cfg_.lms_taps, cfg_.lms_mu);
    for (std::size_t i = 0; i < y.size(); ++i) {
      const cplx ref = reference.empty() ? cplx{1.0, 0.0} : reference[i];
      y[i] = lms.process(y[i], ref);
    }
  }

  cplx mean_after{};
  for (const auto& v : y) mean_after += v;
  if (!y.empty()) mean_after /= static_cast<double>(y.size());

  const double before = std::norm(mean_before);
  const double after = std::norm(mean_after);
  last_suppression_db_ =
      10.0 * std::log10(std::max(before, 1e-30) / std::max(after, 1e-30));
}

}  // namespace vab::phy
