#include "phy/ber.hpp"

#include <cmath>

namespace vab::phy {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ber_bpsk(double ebn0) { return q_function(std::sqrt(std::max(2.0 * ebn0, 0.0))); }

double ber_ook_coherent(double ebn0) {
  return q_function(std::sqrt(std::max(ebn0, 0.0)));
}

double ber_ook_noncoherent(double ebn0) {
  return 0.5 * std::exp(-std::max(ebn0, 0.0) / 2.0);
}

double ber_fm0(double snr_chip) {
  // An FM0 bit decision coherently combines its two chips, doubling the
  // effective SNR of the antipodal comparison.
  return ber_bpsk(std::max(snr_chip, 0.0));
}

double packet_error_rate(double ber, std::size_t n_bits) {
  return 1.0 - std::pow(1.0 - ber, static_cast<double>(n_bits));
}

}  // namespace vab::phy
