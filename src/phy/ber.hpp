// Analytic bit-error-rate expressions used by the link-budget Monte-Carlo
// (calibrated against the waveform simulator in tests).
#pragma once

#include <cstddef>

namespace vab::phy {

/// Gaussian tail probability Q(x).
double q_function(double x);

/// Coherent antipodal (BPSK-like) BER at a given Eb/N0 (linear).
double ber_bpsk(double ebn0_linear);

/// Coherent on-off keying BER at a given Eb/N0 (linear): half the distance
/// of antipodal signaling, i.e. Q(sqrt(Eb/N0)).
double ber_ook_coherent(double ebn0_linear);

/// Noncoherent OOK (envelope detection) BER.
double ber_ook_noncoherent(double ebn0_linear);

/// FM0 bit error rate from the underlying chip-pair decision at chip SNR
/// `snr_chip_linear` (each bit combines two coherent chips).
double ber_fm0(double snr_chip_linear);

/// Packet error rate for `n_bits` i.i.d. bit errors at rate `ber`.
double packet_error_rate(double ber, std::size_t n_bits);

}  // namespace vab::phy
