// Miller-modulated subcarrier (MMS) line coding, the EPC-Gen2-style
// alternative to FM0.
//
// Miller-M multiplies a Miller baseband sequence by a square subcarrier of M
// cycles per bit. The data spectrum concentrates around M x bitrate — even
// further from the carrier than FM0 — buying extra margin against the
// self-interference residue at the cost of M x bandwidth. The paper's
// systems run FM0 at the "same throughput" comparison point; Miller is the
// natural extension for residue-limited links.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::phy {

/// Encodes bits into Miller-M chips (2*M chips = half-subcarrier-cycles per
/// bit, values 0/1). M must be 2, 4 or 8.
bitvec miller_encode(const bitvec& bits, unsigned m);

/// Hard-decision decode; `chips.size()` must be a multiple of 2*M.
bitvec miller_decode(const bitvec& chips, unsigned m);

/// Soft decode from per-chip amplitudes (signs carry the levels). Coherent
/// within each bit, tolerant of a global sign flip.
bitvec miller_decode_soft(const rvec& chip_soft, unsigned m);

/// Chips per encoded bit for Miller-M.
inline std::size_t miller_chips_per_bit(unsigned m) { return 2u * m; }

}  // namespace vab::phy
