// Self-interference cancellation (SIC).
//
// At the reader, the direct projector-to-hydrophone blast is tens of dB
// above the backscatter. In complex baseband the unmodulated carrier is a
// (slowly drifting) DC term; the backscatter data lives in the FM0
// sidebands. Stage 1 high-passes the DC; stage 2 runs an NLMS canceller
// against the known transmit reference to track residual amplitude/phase
// drift (platform motion, projector ramp).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "dsp/lms.hpp"

namespace vab::phy {

struct SicConfig {
  bool enable_dc_notch = true;
  /// One-pole high-pass corner as a fraction of the chip rate. Must sit far
  /// below the chip rate or the tracker eats the FM0 modulation itself; FM0
  /// guarantees runs of at most two chips, so 1% of the chip rate keeps the
  /// in-run droop negligible while still tracking carrier drift.
  double notch_corner_frac = 0.01;
  /// Optional second stage. With a plain constant-carrier reference the LMS
  /// degenerates into a second DC tracker that fights the notch and bites
  /// into the modulation, so it is off by default; enable it when the
  /// transmit reference has structure (PIE downlink leakage, projector
  /// ramps) for the canceller to learn.
  bool enable_lms = false;
  std::size_t lms_taps = 4;
  /// NLMS step. Small on purpose: with a constant-carrier reference the
  /// canceller's tracking time constant is ~1/mu samples, which must span
  /// many chips so the zero-mean data looks like noise to the adaptation.
  double lms_mu = 0.005;
};

class SelfInterferenceCanceller {
 public:
  /// `chip_rate_hz` and `fs_bb_hz` size the notch corner.
  SelfInterferenceCanceller(const SicConfig& cfg, double chip_rate_hz, double fs_bb_hz);

  /// Cancels the carrier from baseband `x`. `reference` is the transmit
  /// carrier in baseband (constant 1 for a pure tone); if empty, a unit
  /// reference is assumed.
  cvec process(const cvec& x, const cvec& reference = {});

  /// Allocation-free variant: cancels the carrier in place.
  void process_inplace(cvec& x, const cvec& reference = {});

  /// Carrier suppression achieved on the last call, in dB (power at DC
  /// before vs after).
  double last_suppression_db() const { return last_suppression_db_; }

 private:
  SicConfig cfg_;
  double alpha_;  // one-pole tracker coefficient
  double last_suppression_db_ = 0.0;
};

}  // namespace vab::phy
