#include "phy/fm0.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::phy {

bitvec fm0_encode(const bitvec& bits, std::uint8_t initial_level) {
  bitvec chips;
  chips.reserve(bits.size() * 2);
  std::uint8_t level = initial_level & 1u;
  for (auto b : bits) {
    // Invert at the bit boundary.
    level ^= 1u;
    chips.push_back(level);
    // Data 0: invert again mid-bit; data 1: hold.
    if (!(b & 1u)) level ^= 1u;
    chips.push_back(level);
  }
  return chips;
}

bitvec fm0_decode(const bitvec& chips) {
  if (chips.size() % 2 != 0) throw std::invalid_argument("chip count must be even");
  bitvec bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2)
    bits.push_back(chips[i] == chips[i + 1] ? 1 : 0);
  return bits;
}

bitvec fm0_decode_soft(const rvec& chip_soft) {
  if (chip_soft.size() % 2 != 0) throw std::invalid_argument("chip count must be even");
  bitvec bits;
  bits.reserve(chip_soft.size() / 2);
  for (std::size_t i = 0; i < chip_soft.size(); i += 2) {
    const double same = std::abs(chip_soft[i] + chip_soft[i + 1]);
    const double diff = std::abs(chip_soft[i] - chip_soft[i + 1]);
    bits.push_back(same > diff ? 1 : 0);
  }
  return bits;
}

bitvec fm0_preamble_chips() {
  // Barker-13 (+1 +1 +1 +1 +1 -1 -1 +1 +1 -1 +1 -1 +1) mapped to chip levels.
  // Its +/-1 autocorrelation sidelobes are <= 1/13 of the peak; runs are kept
  // short enough to survive the receiver's AC-coupled (carrier-notched)
  // front end.
  static const bitvec kPreamble = {1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1};
  return kPreamble;
}

rvec fm0_preamble_levels() {
  const bitvec chips = fm0_preamble_chips();
  rvec out(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) out[i] = chips[i] ? 1.0 : -1.0;
  return out;
}

}  // namespace vab::phy
