// Pulse-interval encoding (PIE) for the reader-to-node downlink.
//
// The reader amplitude-modulates its carrier: every symbol is a high
// interval followed by a fixed low pulse; a data-1 high interval is twice as
// long as a data-0's. A node decodes with a passive envelope detector and a
// threshold — no mixer, no clock recovery, microwatt-scale listening power.
#pragma once

#include <optional>

#include "common/types.hpp"

namespace vab::phy {

struct PieConfig {
  double tari_s = 12.5e-3;      ///< data-0 high duration (reference interval)
  double pw_ratio = 0.5;        ///< low-pulse width as a fraction of tari
  double one_ratio = 2.0;       ///< data-1 high duration in taris
  /// Frame delimiter: a low pulse this many taris long precedes the data.
  double delimiter_taris = 4.0;
};

/// Expands bits into an on/off envelope (1 = carrier on) sampled at `fs_hz`,
/// starting with the frame delimiter.
rvec pie_encode_envelope(const bitvec& bits, const PieConfig& cfg, double fs_hz);

/// Decodes an envelope (arbitrary positive amplitude, 0 when off) back into
/// bits. Threshold is adaptive (half the observed high level). Returns
/// nullopt if no delimiter is found.
std::optional<bitvec> pie_decode_envelope(const rvec& envelope, const PieConfig& cfg,
                                          double fs_hz);

/// Duration in seconds of the encoded envelope for `n_bits`.
double pie_duration_s(std::size_t n_bits, const PieConfig& cfg);

}  // namespace vab::phy
