#include "phy/wakeup.hpp"

#include <stdexcept>

namespace vab::phy {

WakeupDetector::WakeupDetector(WakeupConfig cfg)
    : cfg_(cfg), goertzel_(cfg.carrier_hz, cfg.fs_hz, cfg.block) {
  if (cfg.on_threshold <= cfg.off_threshold)
    throw std::invalid_argument("hysteresis requires on_threshold > off_threshold");
  if (cfg.confirm_blocks == 0)
    throw std::invalid_argument("confirm_blocks must be >= 1");
}

bool WakeupDetector::push(double sample) {
  double power = 0.0;
  if (!goertzel_.push(sample, power)) return false;
  ++blocks_;
  last_power_ = power;

  if (!awake_) {
    streak_ = power >= cfg_.on_threshold ? streak_ + 1 : 0;
    if (streak_ >= cfg_.confirm_blocks) {
      awake_ = true;
      streak_ = 0;
      return true;  // wake event
    }
  } else {
    streak_ = power <= cfg_.off_threshold ? streak_ + 1 : 0;
    if (streak_ >= cfg_.confirm_blocks) {
      awake_ = false;
      streak_ = 0;
    }
  }
  return false;
}

void WakeupDetector::reset() {
  awake_ = false;
  streak_ = 0;
  blocks_ = 0;
  last_power_ = 0.0;
}

}  // namespace vab::phy
