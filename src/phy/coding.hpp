// Bit/byte utilities, CRC-16, Hamming(7,4) FEC and block interleaving.
//
// VAB frames carry a CRC-16 for error detection; the optional Hamming(7,4)
// code with interleaving recovers isolated chip errors near the range limit
// (the "same throughput" comparisons run uncoded, matching the paper).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace vab::phy {

/// Unpacks bytes MSB-first into bits (0/1 per element).
bitvec bits_from_bytes(const bytes& data);

/// Packs bits MSB-first into bytes; `bits.size()` must be a multiple of 8.
bytes bytes_from_bits(const bitvec& bits);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over bytes.
std::uint16_t crc16(const bytes& data);

/// Appends the CRC (big-endian) to a copy of `data`.
bytes append_crc(const bytes& data);

/// Verifies and strips a trailing CRC; returns false on mismatch or short
/// input (out left untouched).
bool check_and_strip_crc(const bytes& data, bytes& out);

/// Hamming(7,4): encodes each 4-bit nibble into 7 bits (SEC).
bitvec hamming74_encode(const bitvec& bits);

/// Decodes, correcting single-bit errors per 7-bit block. `bits.size()` must
/// be a multiple of 7. Returns the corrected data bits; `corrected` reports
/// how many blocks had a correction applied.
bitvec hamming74_decode(const bitvec& bits, std::size_t& corrected);

/// Block interleaver: writes row-wise into a `rows x cols` matrix and reads
/// column-wise. `bits.size()` must equal rows*cols.
bitvec interleave(const bitvec& bits, std::size_t rows, std::size_t cols);
bitvec deinterleave(const bitvec& bits, std::size_t rows, std::size_t cols);

/// Hamming distance between equal-length bit vectors.
std::size_t hamming_distance(const bitvec& a, const bitvec& b);

}  // namespace vab::phy
