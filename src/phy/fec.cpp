#include "phy/fec.hpp"

#include <stdexcept>

#include "phy/coding.hpp"

namespace vab::phy {

std::size_t FrameCodec::coded_size(std::size_t data_bits) const {
  if (!cfg_.enable) return data_bits;
  return padded_bits(data_bits) / 4 * 7;
}

bitvec FrameCodec::encode(const bitvec& data) const {
  if (!cfg_.enable) return data;
  bitvec padded = data;
  padded.resize(padded_bits(data.size()), 0);
  const bitvec coded = hamming74_encode(padded);
  const std::size_t blocks = coded.size() / 7;
  // Row-wise blocks, column-wise transmission: a burst of up to `blocks`
  // consecutive chip errors lands one per block.
  return interleave(coded, blocks, 7);
}

bitvec FrameCodec::decode(const bitvec& coded, std::size_t data_bits,
                          std::size_t& corrected_blocks) const {
  corrected_blocks = 0;
  if (!cfg_.enable) {
    if (coded.size() != data_bits) throw std::invalid_argument("coded size mismatch");
    return coded;
  }
  if (coded.size() != coded_size(data_bits))
    throw std::invalid_argument("coded size mismatch");
  const std::size_t blocks = coded.size() / 7;
  const bitvec deinter = deinterleave(coded, blocks, 7);
  bitvec decoded = hamming74_decode(deinter, corrected_blocks);
  decoded.resize(data_bits);
  return decoded;
}

}  // namespace vab::phy
