#include "piezo/matching.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::piezo {

namespace {

cplx element_impedance_at(double x_at_design, double f_design, double f) {
  // Reactance sign at design frequency selects the element type; ideal L/C
  // reactances then scale with frequency.
  if (x_at_design >= 0.0) {
    const double l = x_at_design / (common::kTwoPi * f_design);
    return impedance_inductor(l, common::kTwoPi * f);
  }
  const double c = 1.0 / (common::kTwoPi * f_design * -x_at_design);
  return impedance_capacitor(c, common::kTwoPi * f);
}

cplx shunt_admittance_at(double b_at_design, double f_design, double f) {
  if (b_at_design >= 0.0) {
    const double c = b_at_design / (common::kTwoPi * f_design);
    return cplx{0.0, common::kTwoPi * f * c};
  }
  const double l = 1.0 / (common::kTwoPi * f_design * -b_at_design);
  return cplx{0.0, -1.0 / (common::kTwoPi * f * l)};
}

}  // namespace

double LSection::series_inductance() const {
  return x_series_ohms > 0.0 ? x_series_ohms / (common::kTwoPi * f_design_hz) : 0.0;
}
double LSection::series_capacitance() const {
  return x_series_ohms < 0.0 ? 1.0 / (common::kTwoPi * f_design_hz * -x_series_ohms)
                             : 0.0;
}
double LSection::shunt_inductance() const {
  return b_shunt_siemens < 0.0 ? 1.0 / (common::kTwoPi * f_design_hz * -b_shunt_siemens)
                               : 0.0;
}
double LSection::shunt_capacitance() const {
  return b_shunt_siemens > 0.0 ? b_shunt_siemens / (common::kTwoPi * f_design_hz) : 0.0;
}

TwoPort LSection::network_at(double f_hz) const {
  const TwoPort ser =
      series_element(element_impedance_at(x_series_ohms, f_design_hz, f_hz));
  const TwoPort shn =
      shunt_element(shunt_admittance_at(b_shunt_siemens, f_design_hz, f_hz));
  // Port 1 faces the source, port 2 faces the load (transducer).
  return shunt_first ? ser.then(shn) : shn.then(ser);
}

std::optional<LSection> design_l_match(cplx z_load, double r_source, double f_hz) {
  const double rl = z_load.real();
  const double xl = z_load.imag();
  if (rl <= 0.0 || r_source <= 0.0 || f_hz <= 0.0) return std::nullopt;

  LSection s;
  s.f_design_hz = f_hz;

  if (rl <= r_source) {
    // Series element adjacent to the load, shunt at the source side.
    const double x_tot = std::sqrt(rl * (r_source - rl));
    const double x = x_tot - xl;  // choose the +sqrt branch
    const double denom = rl * rl + x_tot * x_tot;
    s.x_series_ohms = x;
    s.b_shunt_siemens = x_tot / denom;
    s.shunt_first = false;
  } else {
    // Shunt element adjacent to the load, series at the source side.
    const double mag2 = std::norm(z_load);
    const double gl = rl / mag2;
    const double bl = -xl / mag2;
    const double b_tot = std::sqrt(std::max(gl / r_source - gl * gl, 0.0));
    const double denom = gl * gl + b_tot * b_tot;
    s.x_series_ohms = b_tot / denom;
    s.b_shunt_siemens = b_tot - bl;
    s.shunt_first = true;
  }
  return s;
}

MatchedTransducer::MatchedTransducer(BvdModel bvd, double r_source, double f_design_hz)
    : bvd_(std::move(bvd)), r_source_(r_source) {
  const auto section = design_l_match(bvd_.impedance(f_design_hz), r_source, f_design_hz);
  if (!section)
    throw std::invalid_argument("cannot match transducer with non-positive resistance");
  section_ = *section;
}

cplx MatchedTransducer::input_impedance(double f_hz) const {
  return section_.network_at(f_hz).input_impedance(bvd_.impedance(f_hz));
}

double MatchedTransducer::radiated_fraction(double f_hz) const {
  // The L-section is lossless, so power accepted at its input all reaches
  // the transducer; the acoustic share is eta.
  return power_transfer_efficiency(input_impedance(f_hz), cplx{r_source_, 0.0}) *
         bvd_.eta_acoustic();
}

double MatchedTransducer::radiated_fraction_unmatched(double f_hz) const {
  return power_transfer_efficiency(bvd_.impedance(f_hz), cplx{r_source_, 0.0}) *
         bvd_.eta_acoustic();
}

}  // namespace vab::piezo
