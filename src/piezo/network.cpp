#include "piezo/network.hpp"

#include <cmath>
#include <stdexcept>

namespace vab::piezo {

TwoPort TwoPort::then(const TwoPort& n) const {
  return TwoPort{a * n.a + b * n.c, a * n.b + b * n.d,
                 c * n.a + d * n.c, c * n.b + d * n.d};
}

cplx TwoPort::input_impedance(cplx z_load) const {
  return (a * z_load + b) / (c * z_load + d);
}

cplx TwoPort::voltage_gain(cplx z_load) const {
  // V1 = A V2 + B I2, I2 = V2 / z_load  =>  V2/V1 = 1 / (A + B/z_load).
  return 1.0 / (a + b / z_load);
}

TwoPort identity_twoport() { return {}; }

TwoPort series_element(cplx z) { return TwoPort{{1.0, 0.0}, z, {}, {1.0, 0.0}}; }

TwoPort shunt_element(cplx y) { return TwoPort{{1.0, 0.0}, {}, y, {1.0, 0.0}}; }

TwoPort transmission_line(double theta_rad, double z0, double loss_db) {
  if (z0 <= 0.0) throw std::invalid_argument("line impedance must be > 0");
  // Propagation constant gamma*l = alpha*l + j*beta*l; alpha from total loss.
  const double alpha_l = loss_db * std::log(10.0) / 20.0;  // nepers
  const cplx gl{alpha_l, theta_rad};
  const cplx ch = std::cosh(gl);
  const cplx sh = std::sinh(gl);
  return TwoPort{ch, z0 * sh, sh / z0, ch};
}

cplx impedance_inductor(double l, double w) { return cplx{0.0, w * l}; }

cplx impedance_capacitor(double c, double w) {
  if (c <= 0.0 || w <= 0.0)
    throw std::invalid_argument("capacitance/frequency must be > 0");
  return cplx{0.0, -1.0 / (w * c)};
}

cplx reflection_coefficient(cplx z_load, cplx z_source) {
  return (z_load - std::conj(z_source)) / (z_load + z_source);
}

double power_transfer_efficiency(cplx z_load, cplx z_source) {
  const double rl = z_load.real();
  const double rs = z_source.real();
  if (rs <= 0.0) throw std::invalid_argument("source resistance must be > 0");
  if (rl <= 0.0) return 0.0;
  // P_load / P_available = 4 Rs Rl / |Zs + Zl|^2.
  const cplx zt = z_load + z_source;
  return 4.0 * rs * rl / std::norm(zt);
}

}  // namespace vab::piezo
