// L-section matching-network synthesis.
//
// The paper's co-design matches the piezo's complex impedance at the
// operating frequency to the interconnect so that power received by one Van
// Atta element is delivered — not reflected — to its partner. We synthesize
// the classic two-element (L-section) match analytically and expose the
// resulting power-transfer-efficiency-vs-frequency curve (experiment E7).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "piezo/bvd.hpp"
#include "piezo/network.hpp"

namespace vab::piezo {

struct LSection {
  /// Series element impedance is +j*x_series at the design frequency
  /// (x_series > 0 means inductive); shunt susceptance likewise.
  double x_series_ohms = 0.0;
  double b_shunt_siemens = 0.0;
  bool shunt_first = false;  ///< topology: shunt on the load side if true
  double f_design_hz = 0.0;

  /// Element values realized as L/C at the design frequency.
  double series_inductance() const;
  double series_capacitance() const;
  double shunt_inductance() const;
  double shunt_capacitance() const;

  /// Two-port of the section at `f_hz` (elements are ideal L/C realized at
  /// f_design, so the reactances scale with frequency).
  TwoPort network_at(double f_hz) const;
};

/// Designs an L-section that matches complex load `z_load` to a real source
/// resistance `r_source` at `f_hz`. Returns nullopt only for degenerate
/// loads (non-positive real part).
std::optional<LSection> design_l_match(cplx z_load, double r_source, double f_hz);

/// Efficiency (fraction of available power delivered into the transducer's
/// radiation resistance) vs frequency, with and without the match.
struct MatchedTransducer {
  MatchedTransducer(BvdModel bvd, double r_source, double f_design_hz);

  /// Input impedance of match + transducer at `f_hz`.
  cplx input_impedance(double f_hz) const;

  /// Fraction of available source power radiated acoustically at `f_hz`.
  double radiated_fraction(double f_hz) const;

  /// Same quantity without the matching network, for the ablation.
  double radiated_fraction_unmatched(double f_hz) const;

  const LSection& section() const { return section_; }
  const BvdModel& transducer() const { return bvd_; }

 private:
  BvdModel bvd_;
  double r_source_;
  LSection section_;
};

}  // namespace vab::piezo
