#include "piezo/bvd.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "piezo/network.hpp"

namespace vab::piezo {

BvdModel::BvdModel(BvdParams p) : p_(p) {
  if (p_.c0_farads <= 0.0 || p_.rm_ohms <= 0.0 || p_.lm_henries <= 0.0 ||
      p_.cm_farads <= 0.0)
    throw std::invalid_argument("BVD parameters must be positive");
  if (p_.eta_acoustic <= 0.0 || p_.eta_acoustic > 1.0)
    throw std::invalid_argument("acoustic efficiency must be in (0, 1]");
}

BvdModel BvdModel::from_resonance(double fs_hz, double q_m, double k_eff,
                                  double c0_farads, double eta_acoustic) {
  if (fs_hz <= 0.0 || q_m <= 0.0 || c0_farads <= 0.0)
    throw std::invalid_argument("resonance parameters must be positive");
  if (k_eff <= 0.0 || k_eff >= 1.0)
    throw std::invalid_argument("k_eff must be in (0, 1)");
  const double ws = common::kTwoPi * fs_hz;
  BvdParams p;
  p.c0_farads = c0_farads;
  // k_eff^2 = (fp^2 - fs^2) / fp^2 with fp = fs sqrt(1 + Cm/C0)
  //   =>  Cm / C0 = k^2 / (1 - k^2).
  p.cm_farads = c0_farads * k_eff * k_eff / (1.0 - k_eff * k_eff);
  p.lm_henries = 1.0 / (ws * ws * p.cm_farads);
  p.rm_ohms = ws * p.lm_henries / q_m;
  p.eta_acoustic = eta_acoustic;
  return BvdModel(p);
}

cplx BvdModel::motional_impedance(double f_hz) const {
  if (f_hz <= 0.0) throw std::invalid_argument("frequency must be > 0");
  const double w = common::kTwoPi * f_hz;
  return cplx{p_.rm_ohms, 0.0} + impedance_inductor(p_.lm_henries, w) +
         impedance_capacitor(p_.cm_farads, w);
}

cplx BvdModel::impedance(double f_hz) const {
  const double w = common::kTwoPi * f_hz;
  const cplx zm = motional_impedance(f_hz);
  const cplx z0 = impedance_capacitor(p_.c0_farads, w);
  return z0 * zm / (z0 + zm);
}

double BvdModel::series_resonance_hz() const {
  return 1.0 / (common::kTwoPi * std::sqrt(p_.lm_henries * p_.cm_farads));
}

double BvdModel::parallel_resonance_hz() const {
  const double c_series = p_.c0_farads * p_.cm_farads / (p_.c0_farads + p_.cm_farads);
  return 1.0 / (common::kTwoPi * std::sqrt(p_.lm_henries * c_series));
}

double BvdModel::k_eff() const {
  const double fs = series_resonance_hz();
  const double fp = parallel_resonance_hz();
  return std::sqrt((fp * fp - fs * fs) / (fp * fp));
}

double BvdModel::q_m() const {
  return common::kTwoPi * series_resonance_hz() * p_.lm_henries / p_.rm_ohms;
}

double BvdModel::electroacoustic_efficiency(double f_hz, cplx z_source) const {
  const cplx z_in = impedance(f_hz);
  const double matched = power_transfer_efficiency(z_in, z_source);
  // Of the power entering the transducer, the share burned in the motional
  // branch (vs circulating in C0, which is lossless) is Re(Zm-branch power).
  // Current divider between C0 and the motional branch:
  const double w = common::kTwoPi * f_hz;
  const cplx zm = motional_impedance(f_hz);
  const cplx z0 = impedance_capacitor(p_.c0_farads, w);
  const cplx i_ratio = z0 / (z0 + zm);  // fraction of input current into branch
  // Power into motional branch relative to total dissipated power: C0 is
  // purely reactive so all real power lands in Rm; the ratio is 1. The
  // matched-power fraction already accounts for the reactive circulation.
  (void)i_ratio;
  return matched * p_.eta_acoustic;
}

}  // namespace vab::piezo
