#include "piezo/harvester.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::piezo {

double rectifier_efficiency(const RectifierModel& r, double input_rms_v) {
  if (input_rms_v <= r.diode_drop_v) return 0.0;
  // Soft knee: efficiency climbs from 0 past the diode drop toward peak.
  const double x = (input_rms_v - r.diode_drop_v) / r.knee_voltage_v;
  return r.peak_efficiency * x / (1.0 + x);
}

EnergyHarvester::EnergyHarvester(HarvesterConfig cfg, const BvdModel& transducer)
    : cfg_(cfg), transducer_(transducer) {
  if (cfg_.aperture_m2 <= 0.0) throw std::invalid_argument("aperture must be > 0");
}

double EnergyHarvester::available_electrical_power_w(double pressure_pa,
                                                     double f_hz) const {
  if (pressure_pa < 0.0) throw std::invalid_argument("pressure must be >= 0");
  // Plane-wave intensity I = p_rms^2 / (rho c).
  const double intensity = pressure_pa * pressure_pa / common::kWaterAcousticImpedance;
  // Acoustic->electrical conversion mirrors the electrical->acoustic path:
  // the motional efficiency applies in reverse.
  return intensity * cfg_.aperture_m2 * transducer_.eta_acoustic();
  (void)f_hz;
}

double EnergyHarvester::harvested_power_w(double pressure_pa, double f_hz) const {
  const double p_el = available_electrical_power_w(pressure_pa, f_hz);
  // Rectifier input RMS voltage after the boost network; the diode drop
  // makes harvesting nonlinear in the incident level.
  const double v_rms = std::sqrt(p_el * cfg_.rectifier_input_resistance_ohms);
  return p_el * rectifier_efficiency(cfg_.rectifier, v_rms);
}

double PowerBudget::average_power_w(double frac_sleep, double frac_listen,
                                    double frac_backscatter, double frac_active) const {
  const double total = frac_sleep + frac_listen + frac_backscatter + frac_active;
  if (total <= 0.0 || total > 1.0 + 1e-9)
    throw std::invalid_argument("duty-cycle fractions must sum to at most 1");
  return sleep_w * frac_sleep + rx_listen_w * frac_listen +
         backscatter_w * frac_backscatter + mcu_active_w * frac_active;
}

double energy_per_bit_j(const PowerBudget& b, double bitrate_bps) {
  if (bitrate_bps <= 0.0) throw std::invalid_argument("bitrate must be > 0");
  return b.backscatter_w / bitrate_bps;
}

bool is_energy_neutral(const EnergyHarvester& h, const PowerBudget& b, double pressure_pa,
                       double f_hz, double frac_sleep, double frac_listen,
                       double frac_backscatter, double frac_active) {
  // Harvesting only happens in the absorptive (non-backscatter) states.
  const double harvest_duty = frac_sleep + frac_listen;
  const double in_w = h.harvested_power_w(pressure_pa, f_hz) * harvest_duty;
  const double out_w =
      b.average_power_w(frac_sleep, frac_listen, frac_backscatter, frac_active);
  return in_w >= out_w;
}

}  // namespace vab::piezo
