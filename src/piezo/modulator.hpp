// Backscatter load modulation.
//
// A backscatter node encodes bits by switching the electrical load seen by
// its transducer(s) between two states, changing the re-radiated (antenna
// -mode) wave. The complex reflection coefficient of each state, referenced
// to the transducer impedance, sets the modulation depth — the |gamma_1 -
// gamma_2| / 2 factor that multiplies the backscatter link budget.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "piezo/bvd.hpp"
#include "piezo/network.hpp"

namespace vab::piezo {

enum class LoadState {
  kOpen,      ///< switch open: no current, gamma = +1 region
  kShort,     ///< switch closed to ground: gamma = -1 region
  kMatched,   ///< absorptive load (energy harvesting state)
  kCustom     ///< arbitrary impedance
};

struct SwitchModel {
  double on_resistance_ohms = 2.0;   ///< analog-switch Ron
  double off_capacitance_farads = 5e-12;
  double insertion_loss_db = 0.3;    ///< through-path loss when routing
};

class LoadModulator {
 public:
  /// `z_reference` is the impedance the reflection coefficient is referenced
  /// to — the transducer's electrical impedance at the carrier.
  LoadModulator(cplx z_reference, SwitchModel sw = {});

  /// Reflection coefficient of a load state at frequency `f_hz` (the switch
  /// parasitics make it slightly frequency dependent).
  cplx gamma(LoadState state, double f_hz, cplx z_custom = {}) const;

  /// Differential backscatter amplitude between two states:
  /// |gamma_a - gamma_b| / 2, the standard modulation-depth factor.
  double modulation_depth(LoadState a, LoadState b, double f_hz) const;

  /// The average of the two states' gamma leaks into the carrier (static
  /// reflection); its magnitude is what SIC must remove.
  double static_reflection(LoadState a, LoadState b, double f_hz) const;

  const SwitchModel& switch_model() const { return sw_; }
  cplx reference_impedance() const { return z_ref_; }

 private:
  cplx z_ref_;
  SwitchModel sw_;
};

/// Convenience: modulation depth for an ideal open/short switch (= 1).
double ideal_ook_modulation_depth();

}  // namespace vab::piezo
