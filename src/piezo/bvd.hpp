// Butterworth–Van-Dyke equivalent circuit of a piezoelectric transducer.
//
// Static capacitance C0 in parallel with a motional branch Rm-Lm-Cm. The
// motional resistance splits into a radiation part (useful acoustic output)
// and a mechanical-loss part; their ratio is the electro-acoustic
// efficiency at resonance. This is the model the paper co-designs its
// matching network and Van Atta interconnect around.
#pragma once

#include "common/types.hpp"

namespace vab::piezo {

struct BvdParams {
  double c0_farads = 10e-9;   ///< static (clamped) capacitance
  double rm_ohms = 500.0;     ///< total motional resistance
  double lm_henries = 0.0;    ///< motional inductance
  double cm_farads = 0.0;     ///< motional capacitance
  double eta_acoustic = 0.6;  ///< R_rad / Rm: fraction of motional power radiated
};

class BvdModel {
 public:
  explicit BvdModel(BvdParams p);

  /// Builds a BVD model from measurable quantities: series resonance
  /// `fs_hz`, mechanical quality factor `q_m`, effective coupling
  /// coefficient `k_eff` (0..1), static capacitance and acoustic efficiency.
  static BvdModel from_resonance(double fs_hz, double q_m, double k_eff,
                                 double c0_farads, double eta_acoustic = 0.6);

  /// Electrical input impedance at frequency `f_hz`.
  cplx impedance(double f_hz) const;

  /// Impedance of the motional branch alone.
  cplx motional_impedance(double f_hz) const;

  /// Series (motional) resonance frequency, where the motional branch is
  /// purely resistive.
  double series_resonance_hz() const;

  /// Parallel (anti-) resonance frequency.
  double parallel_resonance_hz() const;

  /// Effective electromechanical coupling from the two resonances.
  double k_eff() const;

  /// Mechanical quality factor.
  double q_m() const;

  /// Fraction of power dissipated in the motional branch that is radiated
  /// acoustically (vs lost to internal damping).
  double eta_acoustic() const { return p_.eta_acoustic; }

  /// Fraction of the available electrical power from a source with impedance
  /// `z_source` that ends up as radiated acoustic power at `f_hz`.
  /// (Power delivered to the transducer x fraction into the motional branch
  /// x eta_acoustic.)
  double electroacoustic_efficiency(double f_hz, cplx z_source) const;

  const BvdParams& params() const { return p_; }

 private:
  BvdParams p_;
};

}  // namespace vab::piezo
