#include "piezo/modulator.hpp"

#include <cmath>

#include "common/units.hpp"

namespace vab::piezo {

LoadModulator::LoadModulator(cplx z_reference, SwitchModel sw)
    : z_ref_(z_reference), sw_(sw) {
  if (z_reference.real() <= 0.0)
    throw std::invalid_argument("reference impedance needs positive real part");
}

cplx LoadModulator::gamma(LoadState state, double f_hz, cplx z_custom) const {
  const double w = common::kTwoPi * f_hz;
  cplx z_load;
  switch (state) {
    case LoadState::kOpen:
      // Open switch still has its off-capacitance across the port.
      z_load = impedance_capacitor(sw_.off_capacitance_farads, w);
      break;
    case LoadState::kShort:
      z_load = cplx{sw_.on_resistance_ohms, 0.0};
      break;
    case LoadState::kMatched:
      z_load = std::conj(z_ref_);
      break;
    case LoadState::kCustom:
      z_load = z_custom;
      break;
  }
  cplx g = reflection_coefficient(z_load, z_ref_);
  // Switch through-path insertion loss attenuates the reflected wave twice
  // (in and out), i.e. the full loss applies to the power reflection.
  g *= std::pow(10.0, -sw_.insertion_loss_db / 20.0);
  return g;
}

double LoadModulator::modulation_depth(LoadState a, LoadState b, double f_hz) const {
  return std::abs(gamma(a, f_hz) - gamma(b, f_hz)) / 2.0;
}

double LoadModulator::static_reflection(LoadState a, LoadState b, double f_hz) const {
  return std::abs(gamma(a, f_hz) + gamma(b, f_hz)) / 2.0;
}

double ideal_ook_modulation_depth() { return 1.0; }

}  // namespace vab::piezo
