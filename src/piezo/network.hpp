// Complex linear two-port networks (ABCD-matrix form) for the
// electro-mechanical co-design: matching sections, transmission lines and
// switches compose by cascading ABCD matrices.
#pragma once

#include "common/types.hpp"

namespace vab::piezo {

/// ABCD (chain) matrix of a two-port: [V1; I1] = [A B; C D] [V2; I2].
struct TwoPort {
  cplx a{1.0, 0.0}, b{}, c{}, d{1.0, 0.0};

  /// Cascade: this followed by `next`.
  TwoPort then(const TwoPort& next) const;

  /// Input impedance looking into port 1 with `z_load` on port 2.
  cplx input_impedance(cplx z_load) const;

  /// Voltage transfer V2/V1 with `z_load` on port 2.
  cplx voltage_gain(cplx z_load) const;
};

/// Identity two-port.
TwoPort identity_twoport();

/// Series impedance element.
TwoPort series_element(cplx z);

/// Shunt (parallel-to-ground) admittance element.
TwoPort shunt_element(cplx y);

/// Lossy transmission line of electrical length `theta_rad` with
/// characteristic impedance `z0` and total attenuation `loss_db`.
TwoPort transmission_line(double theta_rad, double z0, double loss_db = 0.0);

/// Impedance of ideal elements at angular frequency w.
cplx impedance_inductor(double l_henries, double w);
cplx impedance_capacitor(double c_farads, double w);

/// Power reflection coefficient |Gamma|^2 of load `z_load` against source
/// impedance `z_source` (conjugate-match reference):
/// Gamma = (z_load - conj(z_source)) / (z_load + z_source).
cplx reflection_coefficient(cplx z_load, cplx z_source);

/// Fraction of the source's available power delivered to `z_load` when
/// driven from `z_source` (1 at conjugate match).
double power_transfer_efficiency(cplx z_load, cplx z_source);

}  // namespace vab::piezo
