// Energy harvesting and node power budget.
//
// In the "matched" load state the transducer delivers the incident acoustic
// power to a rectifier that charges the node's storage capacitor. The power
// budget ties harvested power against the node's ultra-low-power draw
// (timer, FM0 logic, switch drivers) — the battery-free operating point the
// paper's architecture targets (experiment E9).
#pragma once

#include "common/types.hpp"
#include "piezo/bvd.hpp"

namespace vab::piezo {

struct RectifierModel {
  double diode_drop_v = 0.2;       ///< Schottky forward drop
  double peak_efficiency = 0.75;   ///< at high input amplitude
  /// Input amplitude (V) at which efficiency reaches half its peak; below
  /// this the diode drop dominates.
  double knee_voltage_v = 0.5;
};

/// Conversion efficiency of the rectifier at the given input RMS voltage.
double rectifier_efficiency(const RectifierModel& r, double input_rms_v);

struct HarvesterConfig {
  RectifierModel rectifier{};
  double aperture_m2 = 5e-3;        ///< effective acoustic capture area
  /// Impedance presented to the rectifier after the voltage-boost matching
  /// network (piezo harvesters step the low at-resonance impedance up so the
  /// open-circuit voltage clears the diode drop).
  double rectifier_input_resistance_ohms = 2e4;
  double storage_capacitance_f = 1e-3;
  double storage_voltage_v = 2.5;   ///< regulated operating voltage
};

class EnergyHarvester {
 public:
  EnergyHarvester(HarvesterConfig cfg, const BvdModel& transducer);

  /// Electrical power available from an incident plane wave with RMS
  /// pressure `pressure_pa` at frequency `f_hz` (intensity x aperture x
  /// transducer efficiency).
  double available_electrical_power_w(double pressure_pa, double f_hz) const;

  /// DC power after rectification.
  double harvested_power_w(double pressure_pa, double f_hz) const;

  const HarvesterConfig& config() const { return cfg_; }

 private:
  HarvesterConfig cfg_;
  BvdModel transducer_;
};

/// Static power draw of the node's electronics in each state.
struct PowerBudget {
  double sleep_w = 0.2e-6;      ///< RTC + leakage
  double rx_listen_w = 15e-6;   ///< envelope detector + comparator for downlink
  double backscatter_w = 50e-6; ///< FM0 logic + switch drivers while uplinking
  double mcu_active_w = 300e-6; ///< sensor sampling bursts

  /// Average power for a duty-cycled node.
  double average_power_w(double frac_sleep, double frac_listen, double frac_backscatter,
                         double frac_active) const;
};

/// Energy per uplink bit at `bitrate_bps` in the backscatter state.
double energy_per_bit_j(const PowerBudget& b, double bitrate_bps);

/// True if the harvested power at the given incident pressure sustains the
/// duty cycle indefinitely (net-positive energy).
bool is_energy_neutral(const EnergyHarvester& h, const PowerBudget& b, double pressure_pa,
                       double f_hz, double frac_sleep, double frac_listen,
                       double frac_backscatter, double frac_active);

}  // namespace vab::piezo
