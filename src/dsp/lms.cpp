#include "dsp/lms.hpp"

#include <stdexcept>

namespace vab::dsp {

LmsCanceller::LmsCanceller(std::size_t taps, double mu) : mu_(mu) {
  if (taps == 0) throw std::invalid_argument("LMS needs at least one tap");
  if (mu <= 0.0 || mu >= 2.0) throw std::invalid_argument("NLMS mu must be in (0,2)");
  weights_.assign(taps, cplx{});
  delay_.assign(taps, cplx{});
}

cplx LmsCanceller::process(cplx input, cplx reference) {
  delay_[pos_] = reference;

  cplx estimate{};
  double ref_power = 1e-12;
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    estimate += weights_[k] * delay_[idx];
    ref_power += std::norm(delay_[idx]);
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }

  const cplx error = input - estimate;
  if (adapting_) {
    const double step = mu_ / ref_power;
    idx = pos_;
    for (std::size_t k = 0; k < weights_.size(); ++k) {
      weights_[k] += step * error * std::conj(delay_[idx]);
      idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
    }
  }
  pos_ = (pos_ + 1) % delay_.size();
  return error;
}

cvec LmsCanceller::process(const cvec& input, const cvec& reference) {
  if (input.size() != reference.size())
    throw std::invalid_argument("LMS input/reference length mismatch");
  cvec out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = process(input[i], reference[i]);
  return out;
}

void LmsCanceller::reset() {
  std::fill(weights_.begin(), weights_.end(), cplx{});
  std::fill(delay_.begin(), delay_.end(), cplx{});
  pos_ = 0;
}

}  // namespace vab::dsp
