// Numerically controlled oscillator and complex down/up-conversion.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp {

/// Phase-accumulating oscillator; phase-continuous across chunks.
class Nco {
 public:
  Nco(double freq_hz, double fs_hz, double phase_rad = 0.0);

  /// Next complex exponential sample e^{j(2*pi*f*n/fs + phase0)}.
  cplx next();
  /// Next real cosine sample.
  double next_cos();

  /// Instantaneous phase in radians.
  double phase() const { return phase_; }
  void set_frequency(double freq_hz);

 private:
  double fs_hz_;
  double step_;
  double phase_;
};

/// Generates a real tone of length n.
rvec make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude = 1.0,
               double phase_rad = 0.0);

/// Out-parameter form of `make_tone`; allocation-free when `out` has capacity.
void make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude,
               double phase_rad, rvec& out);

/// Complex baseband conversion: y[n] = x[n] * e^{-j 2 pi f n / fs}.
/// (Follow with a low-pass to complete the downconversion.)
cvec downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad = 0.0);

/// Out-parameter form of `downconvert`.
void downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad,
                 cvec& out);

/// Upconversion of complex baseband to a real passband signal:
/// y[n] = Re{ x[n] * e^{+j 2 pi f n / fs} }.
rvec upconvert(const cvec& x, double freq_hz, double fs_hz, double phase_rad = 0.0);

}  // namespace vab::dsp
