#include "dsp/workspace.hpp"

#include "obs/metrics.hpp"

namespace vab::dsp {

namespace {

const obs::Counter& grow_counter() {
  static const obs::Counter c = obs::counter("dsp.workspace.grow_bytes");
  return c;
}

const obs::Counter& borrow_counter() {
  static const obs::Counter c = obs::counter("dsp.workspace.borrows");
  return c;
}

const obs::Gauge& bytes_gauge() {
  static const obs::Gauge g = obs::gauge("dsp.workspace.bytes");
  return g;
}

}  // namespace

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

void Workspace::note_growth(std::size_t old_cap_bytes, std::size_t new_cap_bytes) {
  if (new_cap_bytes <= old_cap_bytes) return;
  const std::size_t delta = new_cap_bytes - old_cap_bytes;
  bytes_reserved_ += delta;
  grow_bytes_ += delta;
  grow_counter().add(static_cast<std::uint64_t>(delta));
  bytes_gauge().set(static_cast<double>(bytes_reserved_));
}

template <class V>
Workspace::Lease<V> Workspace::take(std::vector<V>& pool, std::size_t n) {
  ++borrows_;
  borrow_counter().inc();
  V v;
  if (!pool.empty()) {
    v = std::move(pool.back());
    pool.pop_back();
  }
  const std::size_t old_cap = v.capacity();
  v.assign(n, typename V::value_type{});
  note_growth(old_cap * sizeof(typename V::value_type),
              v.capacity() * sizeof(typename V::value_type));
  return Lease<V>(this, std::move(v));
}

Workspace::Lease<rvec> Workspace::take_r(std::size_t n) { return take(pool_r_, n); }
Workspace::Lease<cvec> Workspace::take_c(std::size_t n) { return take(pool_c_, n); }
Workspace::Lease<bitvec> Workspace::take_b(std::size_t n) { return take(pool_b_, n); }

void Workspace::give(rvec&& v) { pool_r_.push_back(std::move(v)); }
void Workspace::give(cvec&& v) { pool_c_.push_back(std::move(v)); }
void Workspace::give(bitvec&& v) { pool_b_.push_back(std::move(v)); }

}  // namespace vab::dsp
