// Windowed-sinc FIR design and streaming FIR filtering.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace vab::dsp {

/// Designs a linear-phase low-pass FIR with cutoff `cutoff_hz` at sample
/// rate `fs_hz` using the window method. `taps` is forced odd.
rvec design_lowpass(double cutoff_hz, double fs_hz, std::size_t taps,
                    WindowType window = WindowType::kHamming,
                    double kaiser_beta = 8.6);

/// High-pass via spectral inversion of the low-pass prototype.
rvec design_highpass(double cutoff_hz, double fs_hz, std::size_t taps,
                     WindowType window = WindowType::kHamming);

/// Band-pass between `lo_hz` and `hi_hz`.
rvec design_bandpass(double lo_hz, double hi_hz, double fs_hz, std::size_t taps,
                     WindowType window = WindowType::kHamming);

/// Band-stop (notch) between `lo_hz` and `hi_hz`.
rvec design_bandstop(double lo_hz, double hi_hz, double fs_hz, std::size_t taps,
                     WindowType window = WindowType::kHamming);

/// Streaming FIR filter over real or complex samples. Keeps state across
/// calls so long signals can be processed in chunks.
class FirFilter {
 public:
  explicit FirFilter(rvec taps);

  double process(double x);
  cplx process(cplx x);

  rvec process(const rvec& x);
  cvec process(const cvec& x);

  /// Block filtering into a caller-provided buffer (resized to x.size());
  /// allocation-free when `y` already has capacity.
  void process(const rvec& x, rvec& y);
  void process(const cvec& x, cvec& y);

  /// Group delay of a linear-phase filter in samples.
  double group_delay() const { return (static_cast<double>(taps_.size()) - 1.0) / 2.0; }

  void reset();
  const rvec& taps() const { return taps_; }

 private:
  rvec taps_;
  cvec state_;       // circular delay line (complex covers both cases)
  std::size_t pos_ = 0;
};

/// Frequency response magnitude of an FIR at `f_hz` (fs `fs_hz`).
double fir_response_at(const rvec& taps, double f_hz, double fs_hz);

/// Filter-then-decimate computing only the kept outputs: out[j] equals the
/// streaming FirFilter output at sample `offset + j*m` (zero initial state),
/// for every such index < x.size(). Each output is evaluated with the exact
/// tap order of FirFilter::process, so the result is bit-identical to
/// filtering the whole block and discarding all but every m-th sample —
/// at 1/m of the cost.
void fir_filter_decimate(const rvec& taps, const cvec& x, std::size_t m,
                         std::size_t offset, cvec& out);

}  // namespace vab::dsp
