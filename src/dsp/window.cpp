#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::dsp {

double bessel_i0(double x) {
  // Power-series; converges quickly for the argument range we use.
  double sum = 1.0, term = 1.0;
  const double x2 = x * x / 4.0;
  for (int k = 1; k < 64; ++k) {
    term *= x2 / (static_cast<double>(k) * static_cast<double>(k));
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

double kaiser_beta_for_attenuation(double atten_db) {
  if (atten_db > 50.0) return 0.1102 * (atten_db - 8.7);
  if (atten_db >= 21.0)
    return 0.5842 * std::pow(atten_db - 21.0, 0.4) + 0.07886 * (atten_db - 21.0);
  return 0.0;
}

std::size_t kaiser_order(double atten_db, double transition_norm) {
  if (transition_norm <= 0.0) throw std::invalid_argument("transition width must be > 0");
  const double n = (atten_db - 7.95) / (14.36 * transition_norm);
  return static_cast<std::size_t>(std::ceil(std::max(n, 8.0)));
}

rvec make_window(WindowType type, std::size_t n, double kaiser_beta) {
  if (n == 0) return {};
  if (n == 1) return {1.0};
  rvec w(n);
  const double denom = static_cast<double>(n - 1);
  using common::kTwoPi;
  switch (type) {
    case WindowType::kRect:
      for (auto& x : w) x = 1.0;
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = kTwoPi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
    case WindowType::kKaiser: {
      const double i0b = bessel_i0(kaiser_beta);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = 2.0 * static_cast<double>(i) / denom - 1.0;
        w[i] = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / i0b;
      }
      break;
    }
  }
  return w;
}

}  // namespace vab::dsp
