// AVX2 instantiation of the kernel templates. This is the only translation
// unit built with -mavx2 (never -mfma), plus -ffp-contract=off. When the
// build does not target x86-64 AVX2 the same symbols are emitted as scalar
// forwards so dispatch.cpp links either way (they are then unreachable:
// compiled_isa() never reports kAvx2).
#include "dsp/simd/arch_avx2.hpp"
#include "dsp/simd/kernels.hpp"

namespace vab::dsp::simd::detail {

#if defined(__AVX2__)
VAB_SIMD_DEFINE_KERNELS(avx2, Avx2Arch)
#else
VAB_SIMD_DEFINE_KERNELS(avx2, ScalarArch)
#endif

}  // namespace vab::dsp::simd::detail
