// Runtime ISA dispatch for the batch kernels. Resolution order:
//
//   1. force_isa() (tests / A-B benches), else
//   2. the VAB_SIMD environment variable ("scalar", "avx2", "neon"), clamped
//      to what this binary + CPU can actually run, else
//   3. the widest compiled ISA the CPU supports.
//
// The resolved name is written to the obs run manifest ("simd_isa") the
// first time it is resolved, so every metrics snapshot and BENCH line
// records which path produced its numbers.
#include "dsp/simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "dsp/simd/kernels_decl.hpp"
#include "obs/manifest.hpp"

namespace vab::dsp::simd {

namespace {

// -1 = automatic, otherwise static_cast<int>(Isa).
std::atomic<int> g_forced{-1};

bool runtime_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(VAB_SIMD_COMPILED_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(VAB_SIMD_COMPILED_NEON)
      return true;  // NEON is baseline on aarch64.
#else
      return false;
#endif
  }
  return false;
}

Isa resolve_auto() {
  if (const char* env = std::getenv("VAB_SIMD")) {
    const std::string want(env);
    if (want == "scalar") return Isa::kScalar;
    if (want == "avx2" && runtime_supported(Isa::kAvx2)) return Isa::kAvx2;
    if (want == "neon" && runtime_supported(Isa::kNeon)) return Isa::kNeon;
    // Unknown or unavailable value: fall through to the automatic pick.
  }
  if (runtime_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (runtime_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa record_isa(Isa isa) {
  obs::set_manifest("simd_isa", isa_name(isa));
  return isa;
}

Isa auto_isa() {
  static const Isa resolved = record_isa(resolve_auto());
  return resolved;
}

}  // namespace

Isa compiled_isa() {
#if defined(VAB_SIMD_COMPILED_AVX2)
  return Isa::kAvx2;
#elif defined(VAB_SIMD_COMPILED_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  return auto_isa();
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool force_isa(Isa isa) {
  if (!runtime_supported(isa)) return false;
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
  record_isa(isa);
  return true;
}

void reset_isa() {
  g_forced.store(-1, std::memory_order_relaxed);
  record_isa(auto_isa());
}

#define VAB_SIMD_DISPATCH(call_scalar, call_avx2, call_neon)                   \
  switch (active_isa()) {                                                      \
    case Isa::kAvx2:                                                           \
      call_avx2;                                                               \
      return;                                                                  \
    case Isa::kNeon:                                                           \
      call_neon;                                                               \
      return;                                                                  \
    case Isa::kScalar:                                                         \
      break;                                                                   \
  }                                                                            \
  call_scalar

void fir_decimate(const double* taps, std::size_t n_taps, const cplx* x,
                  std::size_t i_first, std::size_t m, cplx* out,
                  std::size_t n_out) {
  VAB_SIMD_DISPATCH(
      detail::fir_decimate_scalar(taps, n_taps, x, i_first, m, out, n_out),
      detail::fir_decimate_avx2(taps, n_taps, x, i_first, m, out, n_out),
      detail::fir_decimate_neon(taps, n_taps, x, i_first, m, out, n_out));
}

void ccorr_dot(const cplx* sig, const cplx* ref, std::size_t ref_len, cplx* out,
               std::size_t n_out) {
  VAB_SIMD_DISPATCH(detail::ccorr_dot_scalar(sig, ref, ref_len, out, n_out),
                    detail::ccorr_dot_avx2(sig, ref, ref_len, out, n_out),
                    detail::ccorr_dot_neon(sig, ref, ref_len, out, n_out));
}

void cmul_inplace(cplx* a, const cplx* b, std::size_t n) {
  VAB_SIMD_DISPATCH(detail::cmul_inplace_scalar(a, b, n),
                    detail::cmul_inplace_avx2(a, b, n),
                    detail::cmul_inplace_neon(a, b, n));
}

void cscale_inplace(cplx* x, double s, std::size_t n) {
  VAB_SIMD_DISPATCH(detail::cscale_inplace_scalar(x, s, n),
                    detail::cscale_inplace_avx2(x, s, n),
                    detail::cscale_inplace_neon(x, s, n));
}

void fft_stages(cplx* x, std::size_t n, const cplx* twiddle) {
  VAB_SIMD_DISPATCH(detail::fft_stages_scalar(x, n, twiddle),
                    detail::fft_stages_avx2(x, n, twiddle),
                    detail::fft_stages_neon(x, n, twiddle));
}

void mix_real_tone(const double* x, const cplx* tone, cplx* out,
                   std::size_t n) {
  VAB_SIMD_DISPATCH(detail::mix_real_tone_scalar(x, tone, out, n),
                    detail::mix_real_tone_avx2(x, tone, out, n),
                    detail::mix_real_tone_neon(x, tone, out, n));
}

void mix_to_real(const cplx* x, const cplx* tone, double* out, std::size_t n) {
  VAB_SIMD_DISPATCH(detail::mix_to_real_scalar(x, tone, out, n),
                    detail::mix_to_real_avx2(x, tone, out, n),
                    detail::mix_to_real_neon(x, tone, out, n));
}

void tone_real(const cplx* tone, double amplitude, double* out,
               std::size_t n) {
  VAB_SIMD_DISPATCH(detail::tone_real_scalar(tone, amplitude, out, n),
                    detail::tone_real_avx2(tone, amplitude, out, n),
                    detail::tone_real_neon(tone, amplitude, out, n));
}

#undef VAB_SIMD_DISPATCH

namespace {

/// The one serial accumulation loop behind both public reductions: never
/// widened so the fold order matches the historical scalar code on every ISA.
template <class T, class Norm>
double serial_sum(const T* x, std::size_t n, Norm norm) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += norm(x[i]);
  return acc;
}

}  // namespace

double sum_squares(const double* x, std::size_t n) {
  return serial_sum(x, n, [](double v) { return v * v; });
}

double sum_norms(const cplx* x, std::size_t n) {
  return serial_sum(x, n, [](const cplx& v) {
    return v.real() * v.real() + v.imag() * v.imag();
  });
}

}  // namespace vab::dsp::simd
