// Declarations of the per-ISA kernel entry points defined by
// VAB_SIMD_DEFINE_KERNELS in the simd_{scalar,avx2,neon}.cpp translation
// units. All three symbol sets always exist (an ISA that was not compiled
// forwards to the scalar kernels), so dispatch.cpp links unconditionally.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp::simd::detail {

#define VAB_SIMD_KERNELS(suffix)                                               \
  void fir_decimate_##suffix(const double* taps, std::size_t n_taps,           \
                             const cplx* x, std::size_t i_first,               \
                             std::size_t m, cplx* out, std::size_t n_out);     \
  void ccorr_dot_##suffix(const cplx* sig, const cplx* ref,                    \
                          std::size_t ref_len, cplx* out, std::size_t n_out);  \
  void cmul_inplace_##suffix(cplx* a, const cplx* b, std::size_t n);           \
  void cscale_inplace_##suffix(cplx* x, double s, std::size_t n);              \
  void fft_stages_##suffix(cplx* x, std::size_t n, const cplx* twiddle);       \
  void mix_real_tone_##suffix(const double* x, const cplx* tone, cplx* out,    \
                              std::size_t n);                                  \
  void mix_to_real_##suffix(const cplx* x, const cplx* tone, double* out,      \
                            std::size_t n);                                    \
  void tone_real_##suffix(const cplx* tone, double amplitude, double* out,     \
                          std::size_t n);

VAB_SIMD_KERNELS(scalar)
VAB_SIMD_KERNELS(avx2)
VAB_SIMD_KERNELS(neon)

#undef VAB_SIMD_KERNELS

}  // namespace vab::dsp::simd::detail
