// Width-generic kernel templates over an Arch (arch_scalar / arch_avx2 /
// arch_neon). Each kernel vectorizes across independent outputs — every lane
// runs the full scalar operation sequence for its own output — and hands any
// remainder tail to the ScalarArch instantiation of the same helper, so
// "scalar reference" and "SIMD remainder" are one code path.
//
// Included only by the simd_{scalar,avx2,neon}.cpp translation units, each
// compiled with exactly its ISA's flags (and -ffp-contract=off everywhere:
// a contracted FMA would change result bits and break the identity
// contract).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/simd/arch_scalar.hpp"

namespace vab::dsp::simd::detail {

/// One decimated-FIR output lane: sum_k taps[k] * base[l*m - k] per lane l,
/// taps ascending — the streaming path's accumulation order.
template <class A>
inline typename A::V fir_lane(const double* taps, std::size_t n_taps,
                              const cplx* base, std::size_t m) {
  typename A::V acc = A::zero();
  for (std::size_t k = 0; k < n_taps; ++k)
    acc = A::add(acc, A::mul_real(A::load_stride(base - k, m),
                                  A::broadcast_real(taps[k])));
  return acc;
}

template <class A>
void fir_decimate_k(const double* taps, std::size_t n_taps, const cplx* x,
                    std::size_t i_first, std::size_t m, cplx* out,
                    std::size_t n_out) {
  std::size_t j = 0;
  // Four independent accumulator vectors per pass: the tap broadcast is
  // shared and four add chains hide the FP-add latency that a single
  // accumulator would serialize on. Per-output op order is unchanged.
  for (; j + 4 * A::kLanes <= n_out; j += 4 * A::kLanes) {
    const cplx* base = x + i_first + j * m;
    typename A::V acc0 = A::zero();
    typename A::V acc1 = A::zero();
    typename A::V acc2 = A::zero();
    typename A::V acc3 = A::zero();
    for (std::size_t k = 0; k < n_taps; ++k) {
      const typename A::R t = A::broadcast_real(taps[k]);
      const cplx* row = base - k;
      acc0 = A::add(acc0, A::mul_real(A::load_stride(row, m), t));
      acc1 = A::add(acc1, A::mul_real(A::load_stride(row + A::kLanes * m, m), t));
      acc2 = A::add(acc2, A::mul_real(A::load_stride(row + 2 * A::kLanes * m, m), t));
      acc3 = A::add(acc3, A::mul_real(A::load_stride(row + 3 * A::kLanes * m, m), t));
    }
    A::store(out + j, acc0);
    A::store(out + j + A::kLanes, acc1);
    A::store(out + j + 2 * A::kLanes, acc2);
    A::store(out + j + 3 * A::kLanes, acc3);
  }
  for (; j + A::kLanes <= n_out; j += A::kLanes)
    A::store(out + j, fir_lane<A>(taps, n_taps, x + i_first + j * m, m));
  for (; j < n_out; ++j)
    ScalarArch::store(out + j,
                      fir_lane<ScalarArch>(taps, n_taps, x + i_first + j * m, m));
}

/// One correlation-lag lane: sum_n sig[n] * conj(ref[n]) per lane. The
/// conjugate is pre-split into broadcast (re, -im) halves — cmul_bcast folds
/// the same four products in the same order as cmul(load, broadcast-of-conj),
/// it just hoists the shuffles off the element.
template <class A>
inline typename A::V ccorr_lane(const cplx* sig, const cplx* ref,
                                std::size_t ref_len) {
  typename A::V acc = A::zero();
  for (std::size_t n = 0; n < ref_len; ++n)
    acc = A::add(acc, A::cmul_bcast(A::load(sig + n),
                                    A::broadcast_real(ref[n].real()),
                                    A::broadcast_imag(-ref[n].imag())));
  return acc;
}

template <class A>
void ccorr_dot_k(const cplx* sig, const cplx* ref, std::size_t ref_len,
                 cplx* out, std::size_t n_out) {
  std::size_t k = 0;
  // Unroll by four vectors: the split conj broadcast is shared across
  // 4*kLanes lags and four add chains hide the FP-add latency; each lag
  // still owns its accumulator, summed in n order.
  for (; k + 4 * A::kLanes <= n_out; k += 4 * A::kLanes) {
    typename A::V acc0 = A::zero();
    typename A::V acc1 = A::zero();
    typename A::V acc2 = A::zero();
    typename A::V acc3 = A::zero();
    for (std::size_t n = 0; n < ref_len; ++n) {
      const typename A::R cr = A::broadcast_real(ref[n].real());
      const typename A::I ci = A::broadcast_imag(-ref[n].imag());
      acc0 = A::add(acc0, A::cmul_bcast(A::load(sig + k + n), cr, ci));
      acc1 = A::add(acc1, A::cmul_bcast(A::load(sig + k + A::kLanes + n), cr, ci));
      acc2 = A::add(acc2, A::cmul_bcast(A::load(sig + k + 2 * A::kLanes + n), cr, ci));
      acc3 = A::add(acc3, A::cmul_bcast(A::load(sig + k + 3 * A::kLanes + n), cr, ci));
    }
    A::store(out + k, acc0);
    A::store(out + k + A::kLanes, acc1);
    A::store(out + k + 2 * A::kLanes, acc2);
    A::store(out + k + 3 * A::kLanes, acc3);
  }
  for (; k + A::kLanes <= n_out; k += A::kLanes)
    A::store(out + k, ccorr_lane<A>(sig + k, ref, ref_len));
  for (; k < n_out; ++k)
    ScalarArch::store(out + k, ccorr_lane<ScalarArch>(sig + k, ref, ref_len));
}

template <class A>
void cmul_inplace_k(cplx* a, const cplx* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + A::kLanes <= n; i += A::kLanes)
    A::store(a + i, A::cmul(A::load(a + i), A::load(b + i)));
  for (; i < n; ++i)
    ScalarArch::store(a + i, ScalarArch::cmul(ScalarArch::load(a + i),
                                              ScalarArch::load(b + i)));
}

template <class A>
void cscale_inplace_k(cplx* x, double s, std::size_t n) {
  std::size_t i = 0;
  for (; i + A::kLanes <= n; i += A::kLanes)
    A::store(x + i, A::mul_real(A::load(x + i), A::broadcast_real(s)));
  for (; i < n; ++i)
    ScalarArch::store(x + i, ScalarArch::mul_real(ScalarArch::load(x + i),
                                                  ScalarArch::broadcast_real(s)));
}

/// One radix-2 butterfly over kLanes adjacent (lo, hi) pairs.
template <class A>
inline void fft_butterfly(cplx* lo, cplx* hi, const cplx* tw) {
  const typename A::V u = A::load(lo);
  const typename A::V v = A::cmul(A::load(hi), A::load(tw));
  A::store(lo, A::add(u, v));
  A::store(hi, A::sub(u, v));
}

template <class A>
void fft_stages_k(cplx* x, std::size_t n, const cplx* twiddle) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const cplx* tw = twiddle + (len / 2 - 1);
    const std::size_t half = len / 2;
    if (half >= A::kLanes) {
      // half is a power of two >= kLanes, so rows split evenly: no tail.
      for (std::size_t i = 0; i < n; i += len)
        for (std::size_t k = 0; k < half; k += A::kLanes)
          fft_butterfly<A>(x + i + k, x + i + k + half, tw + k);
    } else {
      // Narrow early stages (len=2 under AVX2): width-1, same butterfly.
      for (std::size_t i = 0; i < n; i += len)
        for (std::size_t k = 0; k < half; ++k)
          fft_butterfly<ScalarArch>(x + i + k, x + i + k + half, tw + k);
    }
  }
}

template <class A>
void mix_real_tone_k(const double* x, const cplx* tone, cplx* out,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + A::kLanes <= n; i += A::kLanes)
    A::store(out + i, A::mul_elems(A::load(tone + i), A::load_dup_real(x + i)));
  for (; i < n; ++i)
    ScalarArch::store(out + i,
                      ScalarArch::mul_elems(ScalarArch::load(tone + i),
                                            ScalarArch::load_dup_real(x + i)));
}

template <class A>
void mix_to_real_k(const cplx* x, const cplx* tone, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + A::kLanes <= n; i += A::kLanes)
    A::store_real(out + i, A::cmul(A::load(x + i), A::load(tone + i)));
  for (; i < n; ++i)
    ScalarArch::store_real(out + i, ScalarArch::cmul(ScalarArch::load(x + i),
                                                     ScalarArch::load(tone + i)));
}

template <class A>
void tone_real_k(const cplx* tone, double amplitude, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + A::kLanes <= n; i += A::kLanes)
    A::store_real(out + i, A::mul_real(A::load(tone + i),
                                       A::broadcast_real(amplitude)));
  for (; i < n; ++i)
    ScalarArch::store_real(out + i,
                           ScalarArch::mul_real(ScalarArch::load(tone + i),
                                                ScalarArch::broadcast_real(amplitude)));
}

// Instantiates the per-ISA entry points declared in kernels_decl.hpp for
// `arch` under name suffix `suffix`; used once per simd_*.cpp TU.
#define VAB_SIMD_DEFINE_KERNELS(suffix, arch)                                  \
  void fir_decimate_##suffix(const double* taps, std::size_t n_taps,           \
                             const cplx* x, std::size_t i_first,               \
                             std::size_t m, cplx* out, std::size_t n_out) {    \
    fir_decimate_k<arch>(taps, n_taps, x, i_first, m, out, n_out);             \
  }                                                                            \
  void ccorr_dot_##suffix(const cplx* sig, const cplx* ref,                    \
                          std::size_t ref_len, cplx* out, std::size_t n_out) { \
    ccorr_dot_k<arch>(sig, ref, ref_len, out, n_out);                          \
  }                                                                            \
  void cmul_inplace_##suffix(cplx* a, const cplx* b, std::size_t n) {          \
    cmul_inplace_k<arch>(a, b, n);                                             \
  }                                                                            \
  void cscale_inplace_##suffix(cplx* x, double s, std::size_t n) {             \
    cscale_inplace_k<arch>(x, s, n);                                           \
  }                                                                            \
  void fft_stages_##suffix(cplx* x, std::size_t n, const cplx* twiddle) {      \
    fft_stages_k<arch>(x, n, twiddle);                                         \
  }                                                                            \
  void mix_real_tone_##suffix(const double* x, const cplx* tone, cplx* out,    \
                              std::size_t n) {                                 \
    mix_real_tone_k<arch>(x, tone, out, n);                                    \
  }                                                                            \
  void mix_to_real_##suffix(const cplx* x, const cplx* tone, double* out,      \
                            std::size_t n) {                                   \
    mix_to_real_k<arch>(x, tone, out, n);                                      \
  }                                                                            \
  void tone_real_##suffix(const cplx* tone, double amplitude, double* out,     \
                          std::size_t n) {                                     \
    tone_real_k<arch>(tone, amplitude, out, n);                                \
  }

}  // namespace vab::dsp::simd::detail
