// NEON instantiation of the kernel templates (aarch64 only; NEON is baseline
// there, so no extra -m flags beyond -ffp-contract=off). On other targets the
// symbols are scalar forwards, unreachable via dispatch.
#include "dsp/simd/arch_neon.hpp"
#include "dsp/simd/kernels.hpp"

namespace vab::dsp::simd::detail {

#if defined(__aarch64__)
VAB_SIMD_DEFINE_KERNELS(neon, NeonArch)
#else
VAB_SIMD_DEFINE_KERNELS(neon, ScalarArch)
#endif

}  // namespace vab::dsp::simd::detail
