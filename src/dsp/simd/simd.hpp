// Hand-vectorized batch kernels for the DSP hot loops, dispatched at runtime
// over the ISAs compiled into the binary (AVX2 / NEON / scalar).
//
// Bit-identity contract: every kernel vectorizes across *independent outputs*
// (decimated FIR outputs, correlation lags, FFT butterflies within a stage,
// mixer samples), never across a reduction axis, so each SIMD lane executes
// exactly the scalar sequence of IEEE-754 operations for its output.
// Remainder tails reuse the same kernel templates instantiated at width 1
// (arch_scalar.hpp). Seeded results are therefore bit-identical on every ISA
// and with dispatch forced to scalar — unlike the VAB_NATIVE escape hatch,
// this path is on by default and gated in CI (see tests/test_simd_kernels.cpp
// and the simd-identity CI job).
//
// Reductions that fold many inputs into one accumulator (`sum_squares`,
// `sum_norms`) keep the historical serial order and are deliberately *not*
// widened: reassociating the accumulator would change the result bits. They
// live here so energy()/rms() share one reduction implementation.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp::simd {

enum class Isa { kScalar, kAvx2, kNeon };

/// Widest instruction set compiled into this binary (VAB_SIMD at configure
/// time; AVX2 on x86-64 and NEON on aarch64 under the default "auto").
Isa compiled_isa();

/// Instruction set the kernels currently dispatch to: `compiled_isa()`
/// downgraded by a runtime CPU check and the VAB_SIMD environment variable
/// ("scalar" forces the width-1 reference path), or whatever `force_isa`
/// selected. The resolved name is recorded in the obs run manifest under
/// "simd_isa".
Isa active_isa();

const char* isa_name(Isa isa);

/// Forces dispatch to `isa` (tests and A/B benches). Returns false — and
/// changes nothing — when the requested ISA is not available in this
/// binary or on this CPU.
bool force_isa(Isa isa);

/// Returns to automatic resolution (CPU check + VAB_SIMD env var).
void reset_isa();

/// out[j] = sum_{k < n_taps} taps[k] * x[i_first + j*m - k], j in [0, n_out).
/// Full-window outputs only: the caller guarantees i_first + 1 >= n_taps
/// (ramp-up outputs that read the implicit zero history stay on the caller's
/// guarded loop).
void fir_decimate(const double* taps, std::size_t n_taps, const cplx* x,
                  std::size_t i_first, std::size_t m, cplx* out,
                  std::size_t n_out);

/// out[k] = sum_{n < ref_len} sig[k+n] * conj(ref[n]), k in [0, n_out).
void ccorr_dot(const cplx* sig, const cplx* ref, std::size_t ref_len, cplx* out,
               std::size_t n_out);

/// a[i] *= b[i] (spectral products in the overlap-save/FFT paths).
void cmul_inplace(cplx* a, const cplx* b, std::size_t n);

/// x[i] *= s (inverse-FFT 1/n normalization).
void cscale_inplace(cplx* x, double s, std::size_t n);

/// All Danielson-Lanczos stages of a radix-2 DIT FFT over `n` (a power of
/// two) already bit-reversed samples; `twiddle` is the FftPlan per-stage
/// table with stage `len` starting at offset len/2 - 1.
void fft_stages(cplx* x, std::size_t n, const cplx* twiddle);

/// out[i] = x[i] * tone[i] (real passband sample times complex tone).
void mix_real_tone(const double* x, const cplx* tone, cplx* out, std::size_t n);

/// out[i] = Re(x[i] * tone[i]) (upconversion to a real passband).
void mix_to_real(const cplx* x, const cplx* tone, double* out, std::size_t n);

/// out[i] = amplitude * tone[i].real().
void tone_real(const cplx* tone, double amplitude, double* out, std::size_t n);

/// Serial-order reductions — the one accumulation implementation behind the
/// energy()/rms() wrappers in dsp/correlate.hpp. Identical on every ISA by
/// construction (never widened; see the header comment).
double sum_squares(const double* x, std::size_t n);
double sum_norms(const cplx* x, std::size_t n);

}  // namespace vab::dsp::simd
