// NEON (aarch64) architecture: one complex<double> per 128-bit vector.
// The win over scalar code is narrower than AVX2's two lanes — both halves
// of every complex op issue as one vector instruction — but the contract is
// the same: identical products and identical per-lane add/sub order as
// ScalarArch.
//
// cmul computes t1 = [a.re*b.re, a.im*b.re], t2 = [a.im*b.im, a.re*b.im],
// then takes lane 0 from t1 - t2 and lane 1 from t1 + t2:
//   (a.re*b.re - a.im*b.im, a.im*b.re + a.re*b.im)
// — the scalar expression tree exactly (the imaginary lane differs from the
// builtin only by one commutative IEEE addition). No fused multiply-add
// intrinsics are used anywhere, and the TU builds with -ffp-contract=off.
//
// Empty unless targeting aarch64, mirroring arch_avx2.hpp: the header
// self-containment lint compiles headers on the build host.
#pragma once

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp::simd {

struct NeonArch {
  static constexpr std::size_t kLanes = 1;
  using V = float64x2_t;  // [re, im]
  using R = float64x2_t;  // broadcast real factor
  using I = float64x2_t;  // broadcast imaginary factor as [-im, im]

  static V zero() { return vdupq_n_f64(0.0); }
  static V load(const cplx* p) {
    return vld1q_f64(reinterpret_cast<const double*>(p));
  }
  static V load_stride(const cplx* p, std::size_t /*m*/) { return load(p); }
  static void store(cplx* p, V v) { vst1q_f64(reinterpret_cast<double*>(p), v); }
  static R broadcast_real(double s) { return vdupq_n_f64(s); }
  static I broadcast_imag(double d) {
    // [-d, d]: the sign rides in the broadcast so cmul_bcast can use one
    // plain add for both lanes. (-d)*x is exactly -(d*x) under IEEE-754, so
    // lane 0 computes re*c + (-(im*d)) == re*c - im*d bit-for-bit.
    return vsetq_lane_f64(-d, vdupq_n_f64(d), 0);
  }
  static V load_dup_real(const double* p) { return vdupq_n_f64(*p); }
  static void store_real(double* p, V v) { *p = vgetq_lane_f64(v, 0); }
  static V add(V a, V b) { return vaddq_f64(a, b); }
  static V sub(V a, V b) { return vsubq_f64(a, b); }
  static V mul_real(V a, R s) { return vmulq_f64(s, a); }
  static V mul_elems(V a, V b) { return vmulq_f64(a, b); }
  static V cmul(V a, V b) {
    const V t1 = vmulq_laneq_f64(a, b, 0);                   // [ac, bc]
    const V t2 = vmulq_laneq_f64(vextq_f64(a, a, 1), b, 1);  // [bd, ad]
    return vcopyq_laneq_f64(vsubq_f64(t1, t2), 1, vaddq_f64(t1, t2), 1);
  }
  /// cmul(a, b) with b pre-split into broadcast (re, [-im, im]) halves: the
  /// same four products; lane 0 folds with add-of-negated-product, which is
  /// bit-identical to the scalar subtraction (see broadcast_imag).
  static V cmul_bcast(V a, R re, I im) {
    const V t1 = vmulq_f64(a, re);                  // [ac, bc]
    const V t2 = vmulq_f64(vextq_f64(a, a, 1), im); // [-bd, ad]
    return vaddq_f64(t1, t2);                       // [ac-bd, bc+ad]
  }
};

}  // namespace vab::dsp::simd

#endif  // defined(__aarch64__)
