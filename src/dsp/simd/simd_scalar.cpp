// Width-1 reference instantiation of the kernel templates. Compiled with the
// project's default (portable) flags plus -ffp-contract=off; this is the
// bit-exactness baseline every wider ISA must reproduce.
#include "dsp/simd/kernels.hpp"

namespace vab::dsp::simd::detail {

VAB_SIMD_DEFINE_KERNELS(scalar, ScalarArch)

}  // namespace vab::dsp::simd::detail
