// Width-1 "vector" architecture: the reference every wider ISA must match
// bit-for-bit. The kernel templates in kernels.hpp run these ops for their
// main loop when instantiated at kLanes == 1 *and* for every remainder tail
// of a wider instantiation, so the scalar path is the same code, not a
// parallel implementation that could drift.
//
// The op set mirrors what libstdc++'s std::complex arithmetic emits for
// finite values: componentwise add/sub, (a*c - b*d, b*c + a*d) products.
// The imaginary part of cmul writes b*c + a*d where the builtin computes
// a*d + b*c — the same two exact products folded by one commutative IEEE
// addition, so the bits agree.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp::simd {

struct ScalarArch {
  static constexpr std::size_t kLanes = 1;
  using V = cplx;    // one complex lane
  using R = double;  // broadcast real factor
  using I = double;  // broadcast imaginary factor (for split-broadcast cmul)

  static V zero() { return cplx{}; }
  static V load(const cplx* p) { return *p; }
  static V load_stride(const cplx* p, std::size_t /*m*/) { return *p; }
  static void store(cplx* p, V v) { *p = v; }
  static R broadcast_real(double s) { return s; }
  static I broadcast_imag(double d) { return d; }
  static V load_dup_real(const double* p) { return cplx{*p, *p}; }
  static void store_real(double* p, V v) { *p = v.real(); }
  static V add(V a, V b) { return cplx{a.real() + b.real(), a.imag() + b.imag()}; }
  static V sub(V a, V b) { return cplx{a.real() - b.real(), a.imag() - b.imag()}; }
  static V mul_real(V a, R s) { return cplx{s * a.real(), s * a.imag()}; }
  static V mul_elems(V a, V b) {
    return cplx{a.real() * b.real(), a.imag() * b.imag()};
  }
  static V cmul(V a, V b) {
    return cplx{a.real() * b.real() - a.imag() * b.imag(),
                a.imag() * b.real() + a.real() * b.imag()};
  }
  /// cmul(a, b) with b pre-split into broadcast (re, im) halves: the same
  /// four products in the same order, so the bits match cmul exactly.
  static V cmul_bcast(V a, R re, I im) {
    return cplx{a.real() * re - a.imag() * im, a.imag() * re + a.real() * im};
  }
};

}  // namespace vab::dsp::simd
