// AVX2 architecture: two complex<double> lanes per 256-bit vector, laid out
// interleaved as [re0, im0, re1, im1].
//
// Everything here is a lane-parallel transcription of ScalarArch — same
// products, same add/sub order per lane. cmul uses the classic
// movedup/permute/addsub sequence, which produces
//   (a.re*b.re - a.im*b.im, a.im*b.re + a.re*b.im)
// per lane: the real part is the exact scalar expression; the imaginary part
// folds the same two exact products with one commutative IEEE addition, so
// the bits agree with std::complex multiplication for finite values.
//
// This header is intentionally empty unless __AVX2__ is defined: only
// simd_avx2.cpp is compiled with -mavx2 (and -ffp-contract=off so mul+add
// can never fuse into an FMA, which would change result bits), and the
// header self-containment lint compiles headers without it.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp::simd {

struct Avx2Arch {
  static constexpr std::size_t kLanes = 2;
  using V = __m256d;  // [re0, im0, re1, im1]
  using R = __m256d;  // broadcast real factor
  using I = __m256d;  // broadcast imaginary factor (for split-broadcast cmul)

  static V zero() { return _mm256_setzero_pd(); }
  static V load(const cplx* p) {
    return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
  }
  static V load_stride(const cplx* p, std::size_t m) {
    return _mm256_set_m128d(_mm_loadu_pd(reinterpret_cast<const double*>(p + m)),
                            _mm_loadu_pd(reinterpret_cast<const double*>(p)));
  }
  static void store(cplx* p, V v) {
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
  }
  static R broadcast_real(double s) { return _mm256_set1_pd(s); }
  static I broadcast_imag(double d) { return _mm256_set1_pd(d); }
  static V load_dup_real(const double* p) {
    // [x0, x1] -> [x0, x0, x1, x1]; the permute only reads the low 128 bits,
    // so the undefined upper half of the cast never leaks through.
    return _mm256_permute4x64_pd(_mm256_castpd128_pd256(_mm_loadu_pd(p)), 0x50);
  }
  static void store_real(double* p, V v) {
    // [re0, im0, re1, im1] -> [re0, re1] in the low 128 bits.
    _mm_storeu_pd(p, _mm256_castpd256_pd128(_mm256_permute4x64_pd(v, 0x08)));
  }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul_real(V a, R s) { return _mm256_mul_pd(s, a); }
  static V mul_elems(V a, V b) { return _mm256_mul_pd(a, b); }
  static V cmul(V a, V b) {
    const V t1 = _mm256_mul_pd(a, _mm256_movedup_pd(b));        // [ac, bc]
    const V t2 = _mm256_mul_pd(_mm256_permute_pd(a, 0x5),       // [b, a]
                               _mm256_permute_pd(b, 0xF));      // * [d, d]
    return _mm256_addsub_pd(t1, t2);                            // [ac-bd, bc+ad]
  }
  /// cmul(a, b) with b pre-split into broadcast (re, im) halves. Hot loops
  /// that reuse one b across many a's hoist the two broadcasts out, cutting
  /// cmul's three shuffles down to one permute per element.
  static V cmul_bcast(V a, R re, I im) {
    const V t1 = _mm256_mul_pd(a, re);                          // [ac, bc]
    const V t2 = _mm256_mul_pd(_mm256_permute_pd(a, 0x5), im);  // [bd, ad]
    return _mm256_addsub_pd(t1, t2);                            // [ac-bd, bc+ad]
  }
};

}  // namespace vab::dsp::simd

#endif  // defined(__AVX2__)
