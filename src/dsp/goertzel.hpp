// Goertzel single-bin DFT: cheap tone power estimation, used by the node's
// downlink detector (a node cannot afford an FFT) and by benches to measure
// carrier suppression.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp {

/// Complex DFT coefficient of `x` at frequency `f_hz` (sample rate `fs_hz`),
/// normalized by the window length.
cplx goertzel(const rvec& x, double f_hz, double fs_hz);
cplx goertzel(const cvec& x, double f_hz, double fs_hz);

/// Power (|X|^2) of the Goertzel bin.
double goertzel_power(const rvec& x, double f_hz, double fs_hz);

/// Streaming Goertzel over fixed-size blocks.
class GoertzelDetector {
 public:
  GoertzelDetector(double f_hz, double fs_hz, std::size_t block);

  /// Feeds one sample; returns the block power when a block completes.
  bool push(double x, double& power_out);
  std::size_t block_size() const { return block_; }

 private:
  double coeff_;
  double omega_;
  std::size_t block_;
  std::size_t count_ = 0;
  double s1_ = 0.0, s2_ = 0.0;
};

}  // namespace vab::dsp
