#include "dsp/mixer.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/simd/simd.hpp"
#include "obs/metrics.hpp"

namespace vab::dsp {

Nco::Nco(double freq_hz, double fs_hz, double phase_rad)
    : fs_hz_(fs_hz), step_(common::kTwoPi * freq_hz / fs_hz), phase_(phase_rad) {
  if (fs_hz <= 0.0) throw std::invalid_argument("NCO sample rate must be > 0");
}

cplx Nco::next() {
  const cplx out{std::cos(phase_), std::sin(phase_)};
  phase_ = common::wrap_angle(phase_ + step_);
  return out;
}

double Nco::next_cos() { return next().real(); }

void Nco::set_frequency(double freq_hz) { step_ = common::kTwoPi * freq_hz / fs_hz_; }

namespace {

// Per-thread cache of complex oscillator tables. The serial sin/cos phase
// recurrence is the one part of the mixers the batch kernels cannot
// vectorize (each sample's phase depends on the previous wrap_angle), and
// the simulator mixes against the same handful of carriers millions of
// samples at a time — so memoize the oscillator output and reduce every
// mixer to an elementwise product.
//
// Bit-identity: a cached table holds exactly the values a fresh Nco would
// emit (the stored Nco continues the same phase recurrence when a longer
// request extends an entry), and results never depend on hit vs miss.
// Entries are keyed on the exact bit patterns of (freq, fs, phase) — no
// epsilon matching — and evicted round-robin, deterministically per thread.
constexpr std::size_t kToneCacheEntries = 4;
constexpr std::size_t kToneCacheMaxSamples = std::size_t{1} << 19;

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

struct ToneEntry {
  bool used = false;
  std::uint64_t freq_bits = 0;
  std::uint64_t fs_bits = 0;
  std::uint64_t phase_bits = 0;
  std::optional<Nco> nco;  // positioned at samples.size(), ready to extend
  cvec samples;
};

/// First n samples of e^{j(2 pi freq t / fs + phase)}, or nullptr when n
/// exceeds the cache cap (callers then fall back to a fresh Nco loop).
const cvec* tone_table(double freq_hz, double fs_hz, double phase_rad,
                       std::size_t n) {
  if (n > kToneCacheMaxSamples) return nullptr;
  static thread_local std::array<ToneEntry, kToneCacheEntries> entries;
  static thread_local std::size_t next_victim = 0;
  static const obs::Counter hits = obs::counter("dsp.mixer.tone_hits");
  static const obs::Counter misses = obs::counter("dsp.mixer.tone_misses");

  for (auto& e : entries) {
    if (e.used && e.freq_bits == dbits(freq_hz) && e.fs_bits == dbits(fs_hz) &&
        e.phase_bits == dbits(phase_rad)) {
      while (e.samples.size() < n) e.samples.push_back(e.nco->next());
      hits.add(1);
      return &e.samples;
    }
  }

  // Construct the oscillator before touching the slot: the Nco constructor
  // validates fs_hz and must not leave a poisoned cache entry behind.
  Nco fresh(freq_hz, fs_hz, phase_rad);
  ToneEntry& e = entries[next_victim];
  next_victim = (next_victim + 1) % kToneCacheEntries;
  e.used = true;
  e.freq_bits = dbits(freq_hz);
  e.fs_bits = dbits(fs_hz);
  e.phase_bits = dbits(phase_rad);
  e.samples.clear();
  e.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) e.samples.push_back(fresh.next());
  e.nco = fresh;
  misses.add(1);
  return &e.samples;
}

}  // namespace

rvec make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude,
               double phase_rad) {
  rvec out;
  make_tone(freq_hz, fs_hz, n, amplitude, phase_rad, out);
  return out;
}

void make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude,
               double phase_rad, rvec& out) {
  if (const cvec* tone = tone_table(freq_hz, fs_hz, phase_rad, n)) {
    out.resize(n);
    simd::tone_real(tone->data(), amplitude, out.data(), n);
    return;
  }
  Nco nco(freq_hz, fs_hz, phase_rad);
  out.resize(n);
  for (auto& x : out) x = amplitude * nco.next_cos();
}

cvec downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad) {
  cvec out;
  downconvert(x, freq_hz, fs_hz, phase_rad, out);
  return out;
}

void downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad,
                 cvec& out) {
  if (const cvec* tone = tone_table(-freq_hz, fs_hz, -phase_rad, x.size())) {
    out.resize(x.size());
    simd::mix_real_tone(x.data(), tone->data(), out.data(), x.size());
    return;
  }
  Nco nco(-freq_hz, fs_hz, -phase_rad);
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next();
}

rvec upconvert(const cvec& x, double freq_hz, double fs_hz, double phase_rad) {
  if (const cvec* tone = tone_table(freq_hz, fs_hz, phase_rad, x.size())) {
    rvec out(x.size());
    simd::mix_to_real(x.data(), tone->data(), out.data(), x.size());
    return out;
  }
  Nco nco(freq_hz, fs_hz, phase_rad);
  rvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] * nco.next()).real();
  return out;
}

}  // namespace vab::dsp
