#include "dsp/mixer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::dsp {

Nco::Nco(double freq_hz, double fs_hz, double phase_rad)
    : fs_hz_(fs_hz), step_(common::kTwoPi * freq_hz / fs_hz), phase_(phase_rad) {
  if (fs_hz <= 0.0) throw std::invalid_argument("NCO sample rate must be > 0");
}

cplx Nco::next() {
  const cplx out{std::cos(phase_), std::sin(phase_)};
  phase_ = common::wrap_angle(phase_ + step_);
  return out;
}

double Nco::next_cos() { return next().real(); }

void Nco::set_frequency(double freq_hz) { step_ = common::kTwoPi * freq_hz / fs_hz_; }

rvec make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude,
               double phase_rad) {
  rvec out;
  make_tone(freq_hz, fs_hz, n, amplitude, phase_rad, out);
  return out;
}

void make_tone(double freq_hz, double fs_hz, std::size_t n, double amplitude,
               double phase_rad, rvec& out) {
  Nco nco(freq_hz, fs_hz, phase_rad);
  out.resize(n);
  for (auto& x : out) x = amplitude * nco.next_cos();
}

cvec downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad) {
  cvec out;
  downconvert(x, freq_hz, fs_hz, phase_rad, out);
  return out;
}

void downconvert(const rvec& x, double freq_hz, double fs_hz, double phase_rad,
                 cvec& out) {
  Nco nco(-freq_hz, fs_hz, -phase_rad);
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next();
}

rvec upconvert(const cvec& x, double freq_hz, double fs_hz, double phase_rad) {
  Nco nco(freq_hz, fs_hz, phase_rad);
  rvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] * nco.next()).real();
  return out;
}

}  // namespace vab::dsp
