#include "dsp/fir.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/simd/simd.hpp"

namespace vab::dsp {

namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(common::kPi * x) / (common::kPi * x);
}

std::size_t force_odd(std::size_t taps) { return taps | 1u; }

void validate(double f_hz, double fs_hz) {
  if (fs_hz <= 0.0) throw std::invalid_argument("sample rate must be > 0");
  if (f_hz <= 0.0 || f_hz >= fs_hz / 2.0)
    throw std::invalid_argument("cutoff must be in (0, fs/2)");
}

}  // namespace

rvec design_lowpass(double cutoff_hz, double fs_hz, std::size_t taps, WindowType window,
                    double kaiser_beta) {
  validate(cutoff_hz, fs_hz);
  const std::size_t n = force_odd(taps);
  const double fc = cutoff_hz / fs_hz;  // normalized cutoff (cycles/sample)
  const rvec w = make_window(window, n, kaiser_beta);
  rvec h(n);
  const double mid = static_cast<double>(n - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
    sum += h[i];
  }
  for (auto& c : h) c /= sum;  // unity DC gain
  return h;
}

rvec design_highpass(double cutoff_hz, double fs_hz, std::size_t taps,
                     WindowType window) {
  rvec h = design_lowpass(cutoff_hz, fs_hz, taps, window);
  // Spectral inversion: delta at center minus low-pass.
  for (auto& c : h) c = -c;
  h[h.size() / 2] += 1.0;
  return h;
}

rvec design_bandpass(double lo_hz, double hi_hz, double fs_hz, std::size_t taps,
                     WindowType window) {
  if (lo_hz >= hi_hz) throw std::invalid_argument("bandpass needs lo < hi");
  rvec lp_hi = design_lowpass(hi_hz, fs_hz, taps, window);
  rvec lp_lo = design_lowpass(lo_hz, fs_hz, taps, window);
  rvec h(lp_hi.size());
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = lp_hi[i] - lp_lo[i];
  return h;
}

rvec design_bandstop(double lo_hz, double hi_hz, double fs_hz, std::size_t taps,
                     WindowType window) {
  rvec bp = design_bandpass(lo_hz, hi_hz, fs_hz, taps, window);
  for (auto& c : bp) c = -c;
  bp[bp.size() / 2] += 1.0;
  return bp;
}

FirFilter::FirFilter(rvec taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FIR needs at least one tap");
  state_.assign(taps_.size(), cplx{});
}

double FirFilter::process(double x) { return process(cplx{x, 0.0}).real(); }

cplx FirFilter::process(cplx x) {
  state_[pos_] = x;
  cplx acc{};
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * state_[idx];
    idx = (idx == 0) ? state_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % state_.size();
  return acc;
}

rvec FirFilter::process(const rvec& x) {
  rvec y;
  process(x, y);
  return y;
}

cvec FirFilter::process(const cvec& x) {
  cvec y;
  process(x, y);
  return y;
}

void FirFilter::process(const rvec& x, rvec& y) {
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
}

void FirFilter::process(const cvec& x, cvec& y) {
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
}

void FirFilter::reset() {
  state_.assign(taps_.size(), cplx{});
  pos_ = 0;
}

void fir_filter_decimate(const rvec& taps, const cvec& x, std::size_t m,
                         std::size_t offset, cvec& out) {
  if (taps.empty()) throw std::invalid_argument("FIR needs at least one tap");
  if (m == 0) throw std::invalid_argument("decimation factor must be >= 1");
  if (offset >= x.size()) {
    out.clear();
    return;
  }
  const std::size_t n_out = (x.size() - offset - 1) / m + 1;
  out.resize(n_out);
  // Ramp-up outputs whose window clips against the implicit zero history
  // before x[0] stay on the guarded loop; same accumulation order as the
  // streaming path (taps ascending, signal walking backwards).
  std::size_t j = 0;
  for (; j < n_out && offset + j * m + 1 < taps.size(); ++j) {
    const std::size_t i = offset + j * m;
    const std::size_t k_end = std::min(taps.size(), i + 1);
    cplx acc{};
    for (std::size_t k = 0; k < k_end; ++k) acc += taps[k] * x[i - k];
    out[j] = acc;
  }
  // Full-window outputs go through the batch kernel (bit-identical to the
  // loop above by the simd layer's contract).
  simd::fir_decimate(taps.data(), taps.size(), x.data(), offset + j * m, m,
                     out.data() + j, n_out - j);
}

double fir_response_at(const rvec& taps, double f_hz, double fs_hz) {
  const double w = common::kTwoPi * f_hz / fs_hz;
  cplx acc{};
  for (std::size_t n = 0; n < taps.size(); ++n)
    acc += taps[n] * std::exp(cplx{0.0, -w * static_cast<double>(n)});
  return std::abs(acc);
}

}  // namespace vab::dsp
