// Complex normalized-LMS adaptive filter.
//
// The reader's self-interference canceller adapts a copy of the transmitted
// carrier against the received signal; the residual is the backscatter
// signal plus noise. NLMS normalizes the step by the reference power so one
// mu works across signal levels.
#pragma once

#include <cstddef>
#include <deque>

#include "common/types.hpp"

namespace vab::dsp {

class LmsCanceller {
 public:
  /// `taps`: filter length; `mu`: NLMS step in (0, 2).
  LmsCanceller(std::size_t taps, double mu);

  /// One step: predicts the interference from `reference`, subtracts it from
  /// `input`, adapts, and returns the residual (error signal).
  cplx process(cplx input, cplx reference);

  /// Block form for convenience.
  cvec process(const cvec& input, const cvec& reference);

  /// Freezes adaptation (e.g. during the data payload).
  void set_adapting(bool on) { adapting_ = on; }
  bool adapting() const { return adapting_; }

  const cvec& weights() const { return weights_; }
  void reset();

 private:
  cvec weights_;
  cvec delay_;       // reference delay line, newest first
  std::size_t pos_ = 0;
  double mu_;
  bool adapting_ = true;
};

}  // namespace vab::dsp
