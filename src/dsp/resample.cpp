#include "dsp/resample.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.hpp"

namespace vab::dsp {

namespace {
template <typename Vec>
Vec decimate_impl(const Vec& x, std::size_t m, std::size_t taps) {
  if (m == 0) throw std::invalid_argument("decimation factor must be >= 1");
  if (m == 1) return x;
  // Anti-alias at 80% of the new Nyquist (normalized design: fs = 1).
  FirFilter lp(design_lowpass(0.4 / static_cast<double>(m), 1.0, taps));
  Vec filtered = lp.process(x);
  Vec out;
  out.reserve(filtered.size() / m + 1);
  for (std::size_t i = 0; i < filtered.size(); i += m) out.push_back(filtered[i]);
  return out;
}

template <typename Vec>
Vec resample_impl(const Vec& x, double fs_in, double fs_out) {
  if (fs_in <= 0.0 || fs_out <= 0.0) throw std::invalid_argument("rates must be > 0");
  if (x.empty()) return {};
  const double ratio = fs_in / fs_out;
  const auto n_out = static_cast<std::size_t>(
      std::floor(static_cast<double>(x.size() - 1) / ratio)) + 1;
  Vec out(n_out);
  for (std::size_t i = 0; i < n_out; ++i)
    out[i] = sample_at(x, static_cast<double>(i) * ratio);
  return out;
}
}  // namespace

rvec decimate(const rvec& x, std::size_t m, std::size_t taps) {
  return decimate_impl(x, m, taps);
}
cvec decimate(const cvec& x, std::size_t m, std::size_t taps) {
  return decimate_impl(x, m, taps);
}

rvec resample_linear(const rvec& x, double fs_in, double fs_out) {
  return resample_impl(x, fs_in, fs_out);
}
cvec resample_linear(const cvec& x, double fs_in, double fs_out) {
  return resample_impl(x, fs_in, fs_out);
}

double sample_at(const rvec& x, double t) {
  if (x.empty()) throw std::invalid_argument("sample_at on empty signal");
  if (t <= 0.0) return x.front();
  const auto last = static_cast<double>(x.size() - 1);
  if (t >= last) return x.back();
  const auto i = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i);
  return x[i] + frac * (x[i + 1] - x[i]);
}

cplx sample_at(const cvec& x, double t) {
  if (x.empty()) throw std::invalid_argument("sample_at on empty signal");
  if (t <= 0.0) return x.front();
  const auto last = static_cast<double>(x.size() - 1);
  if (t >= last) return x.back();
  const auto i = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i);
  return x[i] + frac * (x[i + 1] - x[i]);
}

}  // namespace vab::dsp
