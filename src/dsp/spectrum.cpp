#include "dsp/spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace vab::dsp {

Psd welch_psd(const rvec& x, double fs_hz, std::size_t segment, WindowType window) {
  if (!is_pow2(segment)) throw std::invalid_argument("segment must be a power of two");
  if (x.size() < segment) throw std::invalid_argument("signal shorter than one segment");

  const rvec w = make_window(window, segment);
  double win_power = 0.0;
  for (double v : w) win_power += v * v;

  const std::size_t hop = segment / 2;
  const std::size_t n_seg = (x.size() - segment) / hop + 1;
  const std::size_t n_bins = segment / 2 + 1;

  rvec acc(n_bins, 0.0);
  cvec buf(segment);
  for (std::size_t s = 0; s < n_seg; ++s) {
    const std::size_t off = s * hop;
    for (std::size_t i = 0; i < segment; ++i)
      buf[i] = cplx{x[off + i] * w[i], 0.0};
    fft_inplace(buf);
    for (std::size_t k = 0; k < n_bins; ++k) {
      double p = std::norm(buf[k]);
      // One-sided: double everything except DC and Nyquist.
      if (k != 0 && k != segment / 2) p *= 2.0;
      acc[k] += p;
    }
  }

  const double scale = 1.0 / (fs_hz * win_power * static_cast<double>(n_seg));
  Psd psd;
  psd.freq_hz.resize(n_bins);
  psd.power_db.resize(n_bins);
  for (std::size_t k = 0; k < n_bins; ++k) {
    psd.freq_hz[k] = static_cast<double>(k) * fs_hz / static_cast<double>(segment);
    psd.power_db[k] = 10.0 * std::log10(std::max(acc[k] * scale, 1e-300));
  }
  return psd;
}

double band_power(const rvec& x, double fs_hz, double f_lo, double f_hi,
                  std::size_t segment) {
  const Psd psd = welch_psd(x, fs_hz, segment);
  const double df = psd.freq_hz[1] - psd.freq_hz[0];
  double p = 0.0;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    if (psd.freq_hz[k] >= f_lo && psd.freq_hz[k] <= f_hi)
      p += std::pow(10.0, psd.power_db[k] / 10.0) * df;
  }
  return p;
}

}  // namespace vab::dsp
