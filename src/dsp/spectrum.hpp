// Welch power-spectral-density estimation, used to validate synthesized
// ambient noise against the Wenz model and to measure SIC suppression.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace vab::dsp {

struct Psd {
  rvec freq_hz;     ///< bin centers, 0..fs/2 for real input
  rvec power_db;    ///< 10*log10 of PSD (per Hz)
};

/// Welch PSD of a real signal: `segment` samples per segment (power of two),
/// 50% overlap, Hann window. PSD is one-sided, in dB re (input unit)^2/Hz.
Psd welch_psd(const rvec& x, double fs_hz, std::size_t segment = 1024,
              WindowType window = WindowType::kHann);

/// Total band power (linear) of a real signal between f_lo and f_hi,
/// integrated from the Welch PSD.
double band_power(const rvec& x, double fs_hz, double f_lo, double f_hi,
                  std::size_t segment = 1024);

}  // namespace vab::dsp
