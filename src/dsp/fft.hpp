// Radix-2 FFT and FFT-based convolution.
//
// Self-contained (no external FFT dependency): iterative in-place
// decimation-in-time with precomputed bit-reversal, O(n log n) for
// power-of-two sizes. Non-power-of-two inputs are handled by the
// convolution helpers via zero-padding.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// In-place forward FFT; `x.size()` must be a power of two.
void fft_inplace(cvec& x);

/// In-place inverse FFT (includes 1/N normalization).
void ifft_inplace(cvec& x);

/// Out-of-place forward FFT, zero-padding to the next power of two.
cvec fft(const cvec& x);

/// Out-of-place inverse FFT; `x.size()` must be a power of two.
cvec ifft(const cvec& x);

/// FFT of a real signal (returns full complex spectrum, padded to pow2).
cvec fft_real(const rvec& x);

/// Linear convolution of two real signals via FFT; result length a+b-1.
rvec fft_convolve(const rvec& a, const rvec& b);

/// Linear cross-correlation r[k] = sum_n a[n+k] b*[n] for k in
/// [-(b.size()-1), a.size()-1], returned with lag 0 at index b.size()-1.
cvec fft_xcorr(const cvec& a, const cvec& b);

}  // namespace vab::dsp
