// Planned radix-2 FFT and FFT-based convolution/correlation.
//
// Self-contained (no external FFT dependency): iterative in-place
// decimation-in-time, O(n log n) for power-of-two sizes. All transforms run
// through an FftPlan — per-size precomputed twiddle-factor tables and
// bit-reversal permutation — held in a thread-local plan cache, so repeated
// transforms of the same size (the Monte-Carlo steady state) do no trig, no
// table rebuilding and no allocation. Planned transforms are bit-identical
// to the historical direct implementation: the tables are filled with the
// exact same recurrence the unplanned code evaluated inline.
//
// Non-power-of-two inputs are handled by the convolution helpers via
// zero-padding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vab::dsp {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Precomputed transform of one power-of-two size: bit-reversal permutation
/// plus per-stage twiddle tables for both directions. Plans are immutable
/// after construction and safe to share across threads read-only, but the
/// cache below keeps them thread-local so lookups need no lock.
class FftPlan {
 public:
  /// `n` must be a power of two (throws std::invalid_argument otherwise).
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform of `x[0..size())`.
  void forward(cplx* x) const;
  /// In-place inverse transform (includes 1/N normalization).
  void inverse(cplx* x) const;

 private:
  void transform(cplx* x, const cplx* twiddle, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  ///< bit-reversed index of each i
  // Per-stage twiddle factors, stages len=2,4,...,n concatenated; the table
  // for stage `len` starts at offset len/2 - 1 and holds len/2 entries.
  cvec tw_fwd_;
  cvec tw_inv_;
};

/// The calling thread's plan for size `n` (a power of two), building it on
/// first use. Cache hits/misses are counted in the obs metrics
/// `dsp.fft.plan_hits` / `dsp.fft.plan_misses`.
const FftPlan& fft_plan(std::size_t n);

/// In-place forward FFT; `x.size()` must be a power of two.
void fft_inplace(cvec& x);

/// In-place inverse FFT (includes 1/N normalization).
void ifft_inplace(cvec& x);

/// Out-of-place forward FFT, zero-padding to the next power of two.
cvec fft(const cvec& x);

/// Out-of-place inverse FFT; `x.size()` must be a power of two.
cvec ifft(const cvec& x);

/// FFT of a real signal (returns full complex spectrum, padded to pow2).
/// Computed with the half-size real-packing trick: an N-point real FFT costs
/// one N/2-point complex FFT plus an O(N) unpack.
cvec fft_real(const rvec& x);

/// Half-size real FFT into a caller-provided buffer: `out` is resized to
/// next_pow2(x.size()) and holds the full Hermitian spectrum.
void fft_real(const rvec& x, cvec& out);

/// Linear convolution of two real signals via FFT; result length a+b-1.
rvec fft_convolve(const rvec& a, const rvec& b);

/// Linear cross-correlation r[k] = sum_n a[n+k] b*[n] for k in
/// [-(b.size()-1), a.size()-1], returned with lag 0 at index b.size()-1.
cvec fft_xcorr(const cvec& a, const cvec& b);

}  // namespace vab::dsp
