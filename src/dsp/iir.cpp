#include "dsp/iir.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::dsp {

namespace {
struct RbjParams {
  double w0, cw, sw, alpha;
};

RbjParams rbj(double f0_hz, double fs_hz, double q) {
  if (fs_hz <= 0.0 || f0_hz <= 0.0 || f0_hz >= fs_hz / 2.0)
    throw std::invalid_argument("biquad center frequency must be in (0, fs/2)");
  if (q <= 0.0) throw std::invalid_argument("biquad Q must be > 0");
  const double w0 = common::kTwoPi * f0_hz / fs_hz;
  return {w0, std::cos(w0), std::sin(w0), std::sin(w0) / (2.0 * q)};
}
}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::lowpass(double f0_hz, double fs_hz, double q) {
  const auto p = rbj(f0_hz, fs_hz, q);
  const double a0 = 1.0 + p.alpha;
  return {(1.0 - p.cw) / 2.0 / a0, (1.0 - p.cw) / a0, (1.0 - p.cw) / 2.0 / a0,
          -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

Biquad Biquad::highpass(double f0_hz, double fs_hz, double q) {
  const auto p = rbj(f0_hz, fs_hz, q);
  const double a0 = 1.0 + p.alpha;
  return {(1.0 + p.cw) / 2.0 / a0, -(1.0 + p.cw) / a0, (1.0 + p.cw) / 2.0 / a0,
          -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

Biquad Biquad::bandpass(double f0_hz, double fs_hz, double q) {
  const auto p = rbj(f0_hz, fs_hz, q);
  const double a0 = 1.0 + p.alpha;
  // Constant-peak-gain band-pass.
  return {p.alpha / a0, 0.0, -p.alpha / a0, -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

Biquad Biquad::notch(double f0_hz, double fs_hz, double q) {
  const auto p = rbj(f0_hz, fs_hz, q);
  const double a0 = 1.0 + p.alpha;
  return {1.0 / a0, -2.0 * p.cw / a0, 1.0 / a0, -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

double Biquad::process(double x) { return process(cplx{x, 0.0}).real(); }

cplx Biquad::process(cplx x) {
  const cplx y = b0_ * x + z1_;
  z1_ = b1_ * x - a1_ * y + z2_;
  z2_ = b2_ * x - a2_ * y;
  return y;
}

void Biquad::reset() {
  z1_ = cplx{};
  z2_ = cplx{};
}

double Biquad::response_at(double f_hz, double fs_hz) const {
  const double w = common::kTwoPi * f_hz / fs_hz;
  const cplx z1 = std::exp(cplx{0.0, -w});
  const cplx z2 = z1 * z1;
  return std::abs((b0_ + b1_ * z1 + b2_ * z2) / (1.0 + a1_ * z1 + a2_ * z2));
}

double BiquadCascade::process(double x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

cplx BiquadCascade::process(cplx x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

rvec BiquadCascade::process(const rvec& x) {
  rvec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

cvec BiquadCascade::process(const cvec& x) {
  cvec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

double DcBlocker::process(double x) {
  const double y = x - x1_ + r_ * y1_;
  x1_ = x;
  y1_ = y;
  return y;
}

OnePole::OnePole(double cutoff_hz, double fs_hz) {
  if (cutoff_hz <= 0.0 || fs_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0)
    throw std::invalid_argument("one-pole cutoff must be in (0, fs/2)");
  alpha_ = 1.0 - std::exp(-common::kTwoPi * cutoff_hz / fs_hz);
}

double OnePole::process(double x) {
  y_ += alpha_ * (x - y_);
  return y_;
}

}  // namespace vab::dsp
