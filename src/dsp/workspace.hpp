// Thread-local scratch-buffer arena for the DSP hot path.
//
// Every waveform trial used to heap-allocate its full chain of scratch
// vectors (transmit tone, channel outputs, baseband, correlation buffers,
// noise spectra, ...). The Workspace keeps freelists of rvec/cvec/bitvec
// buffers per thread: a `take_*` call pops a recycled vector, sizes it with
// assign() (which only touches the allocator while the high-water mark is
// still growing) and hands it out as an RAII lease that returns the buffer
// on destruction. In the Monte-Carlo steady state — same scenario, same
// trial shape — every lease is served from capacity already reserved, so
// the trial loop performs zero arena allocations (`grow_bytes()` stays
// flat; the obs counter `dsp.workspace.grow_bytes` tracks it globally).
//
// Concurrency model: the arena is strictly thread-local (Workspace::local).
// Leases must not be handed to another thread. Determinism model: leased
// buffers are always assign()-initialized, so recycled capacity can never
// leak values from a previous trial into a new one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace vab::dsp {

class Workspace {
 public:
  /// RAII ownership of one pooled buffer; returns it to the workspace on
  /// destruction. Move-only. Dereference for the underlying vector.
  template <class V>
  class Lease {
   public:
    Lease(Workspace* ws, V&& v) : ws_(ws), v_(std::move(v)) {}
    Lease(Lease&& o) noexcept : ws_(o.ws_), v_(std::move(o.v_)) { o.ws_ = nullptr; }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        ws_ = o.ws_;
        v_ = std::move(o.v_);
        o.ws_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    V& operator*() { return v_; }
    V* operator->() { return &v_; }
    const V& operator*() const { return v_; }
    const V* operator->() const { return &v_; }

   private:
    void release() {
      if (ws_) ws_->give(std::move(v_));
      ws_ = nullptr;
    }
    Workspace* ws_;
    V v_;
  };

  /// The calling thread's arena.
  static Workspace& local();

  /// Borrows a buffer of exactly `n` elements, zero-initialized.
  Lease<rvec> take_r(std::size_t n);
  Lease<cvec> take_c(std::size_t n);
  Lease<bitvec> take_b(std::size_t n);

  /// Bytes of element capacity currently owned by this thread's arena
  /// (pooled + leased), i.e. the high-water mark of scratch demand.
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  /// Cumulative bytes of capacity growth. Flat across identical workloads
  /// means the steady state allocates nothing from the arena.
  std::uint64_t grow_bytes() const { return grow_bytes_; }
  /// Number of take_* calls served.
  std::uint64_t borrows() const { return borrows_; }

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

 private:
  template <class V>
  friend class Lease;

  template <class V>
  Lease<V> take(std::vector<V>& pool, std::size_t n);
  void give(rvec&& v);
  void give(cvec&& v);
  void give(bitvec&& v);
  void note_growth(std::size_t old_cap_bytes, std::size_t new_cap_bytes);

  std::vector<rvec> pool_r_;
  std::vector<cvec> pool_c_;
  std::vector<bitvec> pool_b_;
  std::size_t bytes_reserved_ = 0;
  std::uint64_t grow_bytes_ = 0;
  std::uint64_t borrows_ = 0;
};

}  // namespace vab::dsp
