#include "dsp/correlate.hpp"

#include <cmath>

namespace vab::dsp {

cvec sliding_correlate(const cvec& sig, const cvec& ref) {
  if (sig.size() < ref.size() || ref.empty()) return {};
  const std::size_t n_out = sig.size() - ref.size() + 1;
  cvec out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    cplx acc{};
    for (std::size_t n = 0; n < ref.size(); ++n) acc += sig[k + n] * std::conj(ref[n]);
    out[k] = acc;
  }
  return out;
}

rvec normalized_correlate(const cvec& sig, const cvec& ref) {
  if (sig.size() < ref.size() || ref.empty()) return {};
  const std::size_t n_out = sig.size() - ref.size() + 1;
  const double ref_norm = std::sqrt(energy(ref));
  if (ref_norm == 0.0) return rvec(n_out, 0.0);

  // Running window energy for O(N) normalization.
  rvec out(n_out);
  double win_energy = 0.0;
  for (std::size_t n = 0; n < ref.size(); ++n) win_energy += std::norm(sig[n]);
  for (std::size_t k = 0; k < n_out; ++k) {
    cplx acc{};
    for (std::size_t n = 0; n < ref.size(); ++n) acc += sig[k + n] * std::conj(ref[n]);
    const double denom = std::sqrt(std::max(win_energy, 1e-30)) * ref_norm;
    out[k] = std::abs(acc) / denom;
    if (k + 1 < n_out) {
      win_energy += std::norm(sig[k + ref.size()]) - std::norm(sig[k]);
      win_energy = std::max(win_energy, 0.0);
    }
  }
  return out;
}

std::optional<CorrelationPeak> find_peak(const cvec& sig, const cvec& ref,
                                         double threshold) {
  const rvec corr = normalized_correlate(sig, ref);
  if (corr.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t k = 1; k < corr.size(); ++k)
    if (corr[k] > corr[best]) best = k;
  if (corr[best] < threshold) return std::nullopt;

  cplx raw{};
  for (std::size_t n = 0; n < ref.size(); ++n) raw += sig[best + n] * std::conj(ref[n]);
  return CorrelationPeak{best, corr[best], raw};
}

double energy(const cvec& x) {
  double e = 0.0;
  for (const auto& v : x) e += std::norm(v);
  return e;
}

double energy(const rvec& x) {
  double e = 0.0;
  for (double v : x) e += v * v;
  return e;
}

double rms(const rvec& x) {
  return x.empty() ? 0.0 : std::sqrt(energy(x) / static_cast<double>(x.size()));
}

double rms(const cvec& x) {
  return x.empty() ? 0.0 : std::sqrt(energy(x) / static_cast<double>(x.size()));
}

}  // namespace vab::dsp
