#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/workspace.hpp"
#include "obs/metrics.hpp"

namespace vab::dsp {

namespace {

// Below this work product the direct loop beats the transform bookkeeping.
constexpr std::size_t kNaiveWorkCutoff = 1 << 14;
constexpr std::size_t kNaiveRefCutoff = 8;

bool use_naive(std::size_t n_out, std::size_t ref_len) {
  return ref_len <= kNaiveRefCutoff || n_out * ref_len <= kNaiveWorkCutoff;
}

void sliding_correlate_naive_into(const cvec& sig, const cvec& ref, cvec& out) {
  const std::size_t n_out = sig.size() - ref.size() + 1;
  out.resize(n_out);
  simd::ccorr_dot(sig.data(), ref.data(), ref.size(), out.data(), n_out);
}

// Overlap-save cross-correlation. With h[m] = conj(ref[M-1-m]) the full
// convolution c = sig * h satisfies out[k] = c[k + M - 1], so each circular
// nfft-block over sig[k0 .. k0+nfft) yields the L = nfft - M + 1 valid
// outputs out[k0 .. k0+L) at circular indices M-1 .. nfft-1.
void sliding_correlate_fft_into(const cvec& sig, const cvec& ref, cvec& out) {
  static const obs::Counter blocks_ctr = obs::counter("dsp.correlate.fft_blocks");
  const std::size_t m = ref.size();
  const std::size_t n_out = sig.size() - m + 1;
  out.resize(n_out);

  std::size_t nfft = next_pow2(4 * m);
  nfft = std::min(nfft, next_pow2(sig.size()));
  nfft = std::max(nfft, next_pow2(m));
  const std::size_t block_len = nfft - m + 1;

  auto href_l = Workspace::local().take_c(nfft);
  auto blk_l = Workspace::local().take_c(nfft);
  cvec& href = *href_l;
  cvec& blk = *blk_l;

  const FftPlan& plan = fft_plan(nfft);
  for (std::size_t i = 0; i < m; ++i) href[i] = std::conj(ref[m - 1 - i]);
  plan.forward(href.data());

  std::uint64_t blocks = 0;
  for (std::size_t k0 = 0; k0 < n_out; k0 += block_len, ++blocks) {
    const std::size_t avail = std::min(nfft, sig.size() - k0);
    std::copy(sig.begin() + static_cast<std::ptrdiff_t>(k0),
              sig.begin() + static_cast<std::ptrdiff_t>(k0 + avail), blk.begin());
    std::fill(blk.begin() + static_cast<std::ptrdiff_t>(avail), blk.end(), cplx{});
    plan.forward(blk.data());
    simd::cmul_inplace(blk.data(), href.data(), nfft);
    plan.inverse(blk.data());
    const std::size_t n_take = std::min(block_len, n_out - k0);
    for (std::size_t j = 0; j < n_take; ++j) out[k0 + j] = blk[m - 1 + j];
  }
  blocks_ctr.add(blocks);
}

}  // namespace

void sliding_correlate(const cvec& sig, const cvec& ref, cvec& out) {
  if (sig.size() < ref.size() || ref.empty()) {
    out.clear();
    return;
  }
  const std::size_t n_out = sig.size() - ref.size() + 1;
  if (use_naive(n_out, ref.size())) {
    sliding_correlate_naive_into(sig, ref, out);
  } else {
    sliding_correlate_fft_into(sig, ref, out);
  }
}

cvec sliding_correlate(const cvec& sig, const cvec& ref) {
  cvec out;
  sliding_correlate(sig, ref, out);
  return out;
}

cvec sliding_correlate_naive(const cvec& sig, const cvec& ref) {
  if (sig.size() < ref.size() || ref.empty()) return {};
  cvec out;
  sliding_correlate_naive_into(sig, ref, out);
  return out;
}

void normalized_correlate(const cvec& sig, const cvec& ref, rvec& out) {
  if (sig.size() < ref.size() || ref.empty()) {
    out.clear();
    return;
  }
  const std::size_t n_out = sig.size() - ref.size() + 1;
  const double ref_norm = std::sqrt(energy(ref));
  if (ref_norm == 0.0) {
    out.assign(n_out, 0.0);
    return;
  }

  auto dot_l = Workspace::local().take_c(0);
  cvec& dot = *dot_l;
  sliding_correlate(sig, ref, dot);

  // Running window energy for O(N) normalization.
  out.resize(n_out);
  double win_energy = simd::sum_norms(sig.data(), ref.size());
  for (std::size_t k = 0; k < n_out; ++k) {
    const double denom = std::sqrt(std::max(win_energy, 1e-30)) * ref_norm;
    out[k] = std::abs(dot[k]) / denom;
    if (k + 1 < n_out) {
      win_energy += std::norm(sig[k + ref.size()]) - std::norm(sig[k]);
      win_energy = std::max(win_energy, 0.0);
    }
  }
}

rvec normalized_correlate(const cvec& sig, const cvec& ref) {
  rvec out;
  normalized_correlate(sig, ref, out);
  return out;
}

std::optional<CorrelationPeak> find_peak(const cvec& sig, const cvec& ref,
                                         double threshold) {
  auto corr_l = Workspace::local().take_r(0);
  rvec& corr = *corr_l;
  normalized_correlate(sig, ref, corr);
  if (corr.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t k = 1; k < corr.size(); ++k)
    if (corr[k] > corr[best]) best = k;
  if (corr[best] < threshold) return std::nullopt;

  cplx raw{};
  simd::ccorr_dot(sig.data() + best, ref.data(), ref.size(), &raw, 1);
  return CorrelationPeak{best, corr[best], raw};
}

// All four energy/rms wrappers fold through the one serial-order reduction
// implementation in the simd layer (deliberately not widened; see
// dsp/simd/simd.hpp).
double energy(const cvec& x) { return simd::sum_norms(x.data(), x.size()); }

double energy(const rvec& x) { return simd::sum_squares(x.data(), x.size()); }

double rms(const rvec& x) {
  return x.empty() ? 0.0 : std::sqrt(energy(x) / static_cast<double>(x.size()));
}

double rms(const cvec& x) {
  return x.empty() ? 0.0 : std::sqrt(energy(x) / static_cast<double>(x.size()));
}

}  // namespace vab::dsp
