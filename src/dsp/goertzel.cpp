#include "dsp/goertzel.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::dsp {

namespace {
template <typename Vec>
cplx goertzel_impl(const Vec& x, double f_hz, double fs_hz) {
  if (x.empty()) return {};
  if (fs_hz <= 0.0) throw std::invalid_argument("sample rate must be > 0");
  const double w = common::kTwoPi * f_hz / fs_hz;
  const cplx e = std::exp(cplx{0.0, -w});
  // Direct DFT accumulation at one bin keeps the complex case simple; the
  // streaming detector below uses the classic two-multiplier recurrence.
  cplx acc{};
  cplx ph{1.0, 0.0};
  for (const auto& v : x) {
    acc += cplx(v) * ph;
    ph *= e;
  }
  return acc / static_cast<double>(x.size());
}
}  // namespace

cplx goertzel(const rvec& x, double f_hz, double fs_hz) {
  return goertzel_impl(x, f_hz, fs_hz);
}
cplx goertzel(const cvec& x, double f_hz, double fs_hz) {
  return goertzel_impl(x, f_hz, fs_hz);
}

double goertzel_power(const rvec& x, double f_hz, double fs_hz) {
  return std::norm(goertzel(x, f_hz, fs_hz));
}

GoertzelDetector::GoertzelDetector(double f_hz, double fs_hz, std::size_t block)
    : omega_(common::kTwoPi * f_hz / fs_hz), block_(block) {
  if (block == 0) throw std::invalid_argument("block size must be >= 1");
  coeff_ = 2.0 * std::cos(omega_);
}

bool GoertzelDetector::push(double x, double& power_out) {
  const double s0 = x + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  if (++count_ < block_) return false;
  power_out = (s1_ * s1_ + s2_ * s2_ - coeff_ * s1_ * s2_) /
              (static_cast<double>(block_) * static_cast<double>(block_));
  count_ = 0;
  s1_ = s2_ = 0.0;
  return true;
}

}  // namespace vab::dsp
