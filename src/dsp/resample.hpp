// Rate conversion: integer decimation with anti-alias filtering and
// arbitrary-ratio linear-interpolation resampling (adequate for the
// heavily-oversampled signals in this simulator).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp {

/// Decimates by integer factor `m` after an anti-alias low-pass.
rvec decimate(const rvec& x, std::size_t m, std::size_t taps = 63);
cvec decimate(const cvec& x, std::size_t m, std::size_t taps = 63);

/// Linear-interpolation resample from fs_in to fs_out.
rvec resample_linear(const rvec& x, double fs_in, double fs_out);
cvec resample_linear(const cvec& x, double fs_in, double fs_out);

/// Fractional-delay interpolation: sample x at continuous index `t`
/// (linear between neighbors; clamped at the ends).
double sample_at(const rvec& x, double t);
cplx sample_at(const cvec& x, double t);

}  // namespace vab::dsp
