#include "dsp/agc.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::dsp {

namespace {
double alpha_from_samples(double n) { return 1.0 - std::exp(-1.0 / std::max(n, 1.0)); }
}  // namespace

Agc::Agc(double target_rms, double attack_samples, double release_samples,
         double max_gain)
    : target_(target_rms),
      attack_alpha_(alpha_from_samples(attack_samples)),
      release_alpha_(alpha_from_samples(release_samples)),
      max_gain_(max_gain) {
  if (target_rms <= 0.0) throw std::invalid_argument("AGC target must be > 0");
}

void Agc::update_envelope(double magnitude) {
  const double alpha = magnitude > envelope_ ? attack_alpha_ : release_alpha_;
  envelope_ += alpha * (magnitude - envelope_);
  gain_ = envelope_ > 1e-30 ? std::min(target_ / envelope_, max_gain_) : max_gain_;
}

double Agc::process(double x) {
  update_envelope(std::abs(x));
  return gain_ * x;
}

cplx Agc::process(cplx x) {
  update_envelope(std::abs(x));
  return gain_ * x;
}

rvec Agc::process(const rvec& x) {
  VAB_STAGE("dsp.agc");
  rvec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

cvec Agc::process(const cvec& x) {
  VAB_STAGE("dsp.agc");
  cvec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

void Agc::reset() {
  envelope_ = 0.0;
  gain_ = 1.0;
}

}  // namespace vab::dsp
