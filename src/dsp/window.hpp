// Window functions for FIR design and spectral estimation.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace vab::dsp {

enum class WindowType { kRect, kHann, kHamming, kBlackman, kKaiser };

/// Generates a length-n window. `kaiser_beta` is used only for Kaiser.
rvec make_window(WindowType type, std::size_t n, double kaiser_beta = 8.6);

/// Zeroth-order modified Bessel function of the first kind (for Kaiser).
double bessel_i0(double x);

/// Kaiser beta for a target stop-band attenuation in dB (Kaiser's formula).
double kaiser_beta_for_attenuation(double atten_db);

/// Estimated Kaiser FIR order for given attenuation and normalized
/// transition width (fraction of the sample rate).
std::size_t kaiser_order(double atten_db, double transition_norm);

}  // namespace vab::dsp
