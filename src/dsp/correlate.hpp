// Correlation-based detection: sliding correlation, normalized matched
// filtering and peak search, used for preamble detection and symbol sync.
//
// The sliding dot product dominates demodulator sync cost, so it runs as an
// FFT overlap-save cross-correlation (O(N log M) per output block) whenever
// the reference is long enough to amortize the transforms; tiny problems
// fall back to the direct O(N·M) loop. The normalization stays a separate
// O(N) running-energy pass either way. `sliding_correlate_naive` keeps the
// direct loop exported as the reference implementation for equivalence tests
// and benchmarks.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace vab::dsp {

/// Sliding dot product of `sig` against `ref` (valid region only):
/// out[k] = sum_n sig[k+n] * conj(ref[n]), k in [0, sig.size()-ref.size()].
cvec sliding_correlate(const cvec& sig, const cvec& ref);

/// Same contract, writing into `out` (resized to the valid length) without
/// allocating when `out` already has capacity.
void sliding_correlate(const cvec& sig, const cvec& ref, cvec& out);

/// Direct O(N·M) time-domain reference implementation of the same contract.
cvec sliding_correlate_naive(const cvec& sig, const cvec& ref);

/// Normalized sliding correlation in [0, 1]: |dot| / (|sig_window| * |ref|).
rvec normalized_correlate(const cvec& sig, const cvec& ref);

/// Out-parameter form of `normalized_correlate`.
void normalized_correlate(const cvec& sig, const cvec& ref, rvec& out);

struct CorrelationPeak {
  std::size_t index = 0;   ///< start offset of the best alignment
  double value = 0.0;      ///< normalized correlation at the peak
  cplx raw{};              ///< complex correlation (carries phase)
};

/// Finds the best normalized-correlation alignment of `ref` within `sig`.
/// Returns nullopt if `sig` is shorter than `ref` or the peak is below
/// `threshold`. The raw complex correlation at the peak is recomputed with
/// the direct dot product, so its phase is exact regardless of which
/// correlation backend scanned the signal.
std::optional<CorrelationPeak> find_peak(const cvec& sig, const cvec& ref,
                                         double threshold = 0.0);

/// Energy of a signal (sum of |x|^2).
double energy(const cvec& x);
double energy(const rvec& x);

/// RMS value.
double rms(const rvec& x);
double rms(const cvec& x);

}  // namespace vab::dsp
