// Correlation-based detection: sliding correlation, normalized matched
// filtering and peak search, used for preamble detection and symbol sync.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace vab::dsp {

/// Sliding dot product of `sig` against `ref` (valid region only):
/// out[k] = sum_n sig[k+n] * conj(ref[n]), k in [0, sig.size()-ref.size()].
cvec sliding_correlate(const cvec& sig, const cvec& ref);

/// Normalized sliding correlation in [0, 1]: |dot| / (|sig_window| * |ref|).
rvec normalized_correlate(const cvec& sig, const cvec& ref);

struct CorrelationPeak {
  std::size_t index = 0;   ///< start offset of the best alignment
  double value = 0.0;      ///< normalized correlation at the peak
  cplx raw{};              ///< complex correlation (carries phase)
};

/// Finds the best normalized-correlation alignment of `ref` within `sig`.
/// Returns nullopt if `sig` is shorter than `ref` or the peak is below
/// `threshold`.
std::optional<CorrelationPeak> find_peak(const cvec& sig, const cvec& ref,
                                         double threshold = 0.0);

/// Energy of a signal (sum of |x|^2).
double energy(const cvec& x);
double energy(const rvec& x);

/// RMS value.
double rms(const rvec& x);
double rms(const cvec& x);

}  // namespace vab::dsp
