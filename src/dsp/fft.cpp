#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vab::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

namespace {

void transform(cvec& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 1.0 : -1.0) * common::kTwoPi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : x) c *= inv_n;
  }
}

}  // namespace

void fft_inplace(cvec& x) { transform(x, false); }
void ifft_inplace(cvec& x) { transform(x, true); }

cvec fft(const cvec& x) {
  cvec y = x;
  y.resize(next_pow2(std::max<std::size_t>(1, x.size())), cplx{0.0, 0.0});
  fft_inplace(y);
  return y;
}

cvec ifft(const cvec& x) {
  cvec y = x;
  ifft_inplace(y);
  return y;
}

cvec fft_real(const rvec& x) {
  cvec y(next_pow2(std::max<std::size_t>(1, x.size())), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = cplx{x[i], 0.0};
  fft_inplace(y);
  return y;
}

rvec fft_convolve(const rvec& a, const rvec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  cvec fa(n, cplx{}), fb(n, cplx{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = cplx{a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = cplx{b[i], 0.0};
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  rvec out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

cvec fft_xcorr(const cvec& a, const cvec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  cvec fa(n, cplx{}), fb(n, cplx{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  // Correlation = convolution with conjugated, time-reversed b.
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = std::conj(b[b.size() - 1 - i]);
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  return cvec(fa.begin(), fa.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace vab::dsp
