#include "dsp/fft.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/units.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/workspace.hpp"
#include "obs/metrics.hpp"

namespace vab::dsp {

std::size_t next_pow2(std::size_t n) {
  // Without the cap the loop would overflow p to 0 and spin forever for
  // n > 2^63; no realistic signal gets there, so treat it as a hard error.
  if (n > (std::size_t{1} << 62))
    throw std::length_error("next_pow2: size exceeds 2^62");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("fft size must be a power of two");
  // The bit-reversal table holds 32-bit indices (half the plan's footprint
  // for every realistic size); reject sizes whose indices would truncate.
  if (n > (std::size_t{1} << 32))
    throw std::length_error("fft size exceeds 2^32 (32-bit bit-reversal table)");
  // Bit-reversal permutation, same incremental construction the unplanned
  // transform ran per call.
  bitrev_.assign(n, 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
  // Twiddle tables. Each stage's entries are generated with the exact
  // repeated-multiplication recurrence (w *= wlen) the unplanned butterflies
  // used, so planned transforms are bit-identical to the historical output.
  // Forward and inverse tables are kept separately for the same reason:
  // deriving one from the other by conjugation is not guaranteed bitwise
  // equal to recomputing the recurrence.
  tw_fwd_.reserve(n > 1 ? n - 1 : 0);
  tw_inv_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (int inv = 0; inv < 2; ++inv) {
      const double ang =
          (inv ? 1.0 : -1.0) * common::kTwoPi / static_cast<double>(len);
      const cplx wlen(std::cos(ang), std::sin(ang));
      cplx w(1.0, 0.0);
      cvec& table = inv ? tw_inv_ : tw_fwd_;
      for (std::size_t k = 0; k < len / 2; ++k) {
        table.push_back(w);
        w *= wlen;
      }
    }
  }
}

void FftPlan::transform(cplx* x, const cplx* twiddle, bool inverse) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  // Danielson–Lanczos butterflies; stage `len` reads its precomputed table.
  simd::fft_stages(x, n, twiddle);
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    simd::cscale_inplace(x, inv_n, n);
  }
}

void FftPlan::forward(cplx* x) const { transform(x, tw_fwd_.data(), false); }
void FftPlan::inverse(cplx* x) const { transform(x, tw_inv_.data(), true); }

const FftPlan& fft_plan(std::size_t n) {
  static const obs::Counter hits = obs::counter("dsp.fft.plan_hits");
  static const obs::Counter misses = obs::counter("dsp.fft.plan_misses");
  thread_local std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    misses.inc();
    it = cache.emplace(n, std::make_unique<FftPlan>(n)).first;
  } else {
    hits.inc();
  }
  return *it->second;
}

void fft_inplace(cvec& x) { fft_plan(x.size()).forward(x.data()); }
void ifft_inplace(cvec& x) { fft_plan(x.size()).inverse(x.data()); }

cvec fft(const cvec& x) {
  cvec y = x;
  y.resize(next_pow2(std::max<std::size_t>(1, x.size())), cplx{0.0, 0.0});
  fft_inplace(y);
  return y;
}

cvec ifft(const cvec& x) {
  cvec y = x;
  ifft_inplace(y);
  return y;
}

void fft_real(const rvec& x, cvec& out) {
  const std::size_t n = next_pow2(std::max<std::size_t>(1, x.size()));
  if (n == 1) {
    out.assign(1, cplx{x.empty() ? 0.0 : x[0], 0.0});
    return;
  }
  if (n == 2) {
    const double a = x.empty() ? 0.0 : x[0];
    const double b = x.size() > 1 ? x[1] : 0.0;
    out.assign(2, cplx{});
    out[0] = cplx{a + b, 0.0};
    out[1] = cplx{a - b, 0.0};
    return;
  }
  // Pack even/odd samples into a half-size complex signal z[m] =
  // x[2m] + j x[2m+1], transform, then split the spectrum:
  //   X[k] = E[k] + e^{-j 2 pi k / n} O[k],  k = 0..h-1,
  // with E/O recovered from Z and its reflected conjugate. The upper half
  // follows from Hermitian symmetry of a real signal's spectrum.
  const std::size_t h = n / 2;
  auto z = Workspace::local().take_c(h);
  cvec& zb = *z;
  for (std::size_t m = 0; m < h; ++m) {
    const double re = 2 * m < x.size() ? x[2 * m] : 0.0;
    const double im = 2 * m + 1 < x.size() ? x[2 * m + 1] : 0.0;
    zb[m] = cplx{re, im};
  }
  fft_plan(h).forward(zb.data());

  out.assign(n, cplx{});
  const double step = -common::kTwoPi / static_cast<double>(n);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t kr = (h - k) & (h - 1);  // reflected index mod h
    const cplx zr = std::conj(zb[kr]);
    const cplx even = 0.5 * (zb[k] + zr);
    const cplx odd = cplx{0.0, -0.5} * (zb[k] - zr);
    const double ang = step * static_cast<double>(k);
    out[k] = even + cplx{std::cos(ang), std::sin(ang)} * odd;
  }
  // Nyquist bin: the split formula at k=h with twiddle -1.
  out[h] = cplx{zb[0].real() - zb[0].imag(), 0.0};
  for (std::size_t k = 1; k < h; ++k) out[n - k] = std::conj(out[k]);
}

cvec fft_real(const rvec& x) {
  cvec out;
  fft_real(x, out);
  return out;
}

rvec fft_convolve(const rvec& a, const rvec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  auto fa_l = Workspace::local().take_c(n);
  auto fb_l = Workspace::local().take_c(n);
  cvec& fa = *fa_l;
  cvec& fb = *fb_l;
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = cplx{a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = cplx{b[i], 0.0};
  const FftPlan& plan = fft_plan(n);
  plan.forward(fa.data());
  plan.forward(fb.data());
  simd::cmul_inplace(fa.data(), fb.data(), n);
  plan.inverse(fa.data());
  rvec out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

cvec fft_xcorr(const cvec& a, const cvec& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  auto fa_l = Workspace::local().take_c(n);
  auto fb_l = Workspace::local().take_c(n);
  cvec& fa = *fa_l;
  cvec& fb = *fb_l;
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  // Correlation = convolution with conjugated, time-reversed b.
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = std::conj(b[b.size() - 1 - i]);
  const FftPlan& plan = fft_plan(n);
  plan.forward(fa.data());
  plan.forward(fb.data());
  simd::cmul_inplace(fa.data(), fb.data(), n);
  plan.inverse(fa.data());
  return cvec(fa.begin(), fa.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace vab::dsp
