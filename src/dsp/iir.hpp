// Biquad (second-order IIR) sections from the RBJ Audio-EQ cookbook and a
// cascade container. Used for cheap band-pass/notch stages in the reader
// front end and for the node's passive-envelope-detector model.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace vab::dsp {

/// One direct-form-II-transposed biquad.
class Biquad {
 public:
  /// Raw coefficients (a0 normalized to 1).
  Biquad(double b0, double b1, double b2, double a1, double a2);

  static Biquad lowpass(double f0_hz, double fs_hz, double q = 0.7071);
  static Biquad highpass(double f0_hz, double fs_hz, double q = 0.7071);
  static Biquad bandpass(double f0_hz, double fs_hz, double q);
  static Biquad notch(double f0_hz, double fs_hz, double q);

  double process(double x);
  cplx process(cplx x);
  void reset();

  /// Magnitude response at `f_hz`.
  double response_at(double f_hz, double fs_hz) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  cplx z1_{}, z2_{};
};

/// A cascade of biquads applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections) : sections_(std::move(sections)) {}

  void push(Biquad b) { sections_.push_back(b); }

  double process(double x);
  cplx process(cplx x);
  rvec process(const rvec& x);
  cvec process(const cvec& x);
  void reset();

  std::size_t size() const { return sections_.size(); }

 private:
  std::vector<Biquad> sections_;
};

/// Single-pole DC blocker, y[n] = x[n] - x[n-1] + r*y[n-1].
class DcBlocker {
 public:
  explicit DcBlocker(double r = 0.995) : r_(r) {}
  double process(double x);
  void reset() { x1_ = 0.0; y1_ = 0.0; }

 private:
  double r_;
  double x1_ = 0.0, y1_ = 0.0;
};

/// One-pole smoother (exponential moving average), used as envelope LPF.
class OnePole {
 public:
  /// Cutoff in Hz at the given sample rate.
  OnePole(double cutoff_hz, double fs_hz);
  double process(double x);
  void reset() { y_ = 0.0; }

 private:
  double alpha_;
  double y_ = 0.0;
};

}  // namespace vab::dsp
