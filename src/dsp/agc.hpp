// Automatic gain control with attack/release time constants; keeps the
// demodulator's soft decisions in a fixed numeric range regardless of link
// distance.
#pragma once

#include "common/types.hpp"

namespace vab::dsp {

class Agc {
 public:
  /// `target_rms`: desired output RMS; attack/release in samples (time
  /// constants of the envelope tracker).
  Agc(double target_rms, double attack_samples, double release_samples,
      double max_gain = 1e6);

  double process(double x);
  cplx process(cplx x);
  rvec process(const rvec& x);
  cvec process(const cvec& x);

  double gain() const { return gain_; }
  void reset();

 private:
  void update_envelope(double magnitude);

  double target_;
  double attack_alpha_;
  double release_alpha_;
  double max_gain_;
  double envelope_ = 0.0;
  double gain_ = 1.0;
};

}  // namespace vab::dsp
