// Distributed, resumable Monte-Carlo campaigns.
//
// A campaign splits a trial space [0, n_trials) into `count` contiguous
// shards (common::split_range) that can run in separate processes. Shard i
// computes the trials of its range with the same per-trial entry points the
// in-process runners use — trial t always draws from `rng.child(t)` with the
// *global* index t, and the parent stream is never advanced — so the shard
// topology cannot affect any trial's stream. Each shard persists its raw
// per-trial outcomes (never folded aggregates: floating-point folds must not
// be re-associated) to a checkpoint file; `run_*_shard` returns the
// checkpointed outcomes instead of recomputing when a valid file exists, so
// an interrupted sweep resumes from its completed shards. `merge_*_campaign`
// places every outcome by global trial index and re-runs the same serial
// trial-order fold the single-process runner uses — the merged result is
// bit-identical to an uninterrupted run at any thread count.
//
// Checkpoint files are plain text: a header binding (kind, campaign key,
// shard, trial range), an informational copy of the writer's run manifest,
// one record per trial with doubles in %a hex-float form (exact round-trip),
// and a trailing FNV-1a digest over the record lines. Files are written to a
// temp name and renamed, and any validation failure (wrong key, truncation,
// corruption) silently falls back to recomputation.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/linkbudget.hpp"
#include "sim/montecarlo.hpp"
#include "sim/scenario.hpp"
#include "vanatta/mismatch.hpp"

namespace vab::sim {

/// Which contiguous piece of the trial space this process owns.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Parses "i/n" (e.g. "2/8", the bench `shard=` config key). Requires
  /// n >= 1 and i < n; throws std::invalid_argument otherwise.
  static ShardSpec parse(const std::string& text);

  /// Global [begin, end) of this shard over `n_trials` trials.
  std::pair<std::size_t, std::size_t> range(std::size_t n_trials) const {
    return common::split_range(n_trials, index, count);
  }

  std::string str() const {
    return std::to_string(index) + "/" + std::to_string(count);
  }
};

/// Records the shard topology in the obs run manifest ("shard",
/// "shard_index", "shard_count") so metrics snapshots and BENCH lines
/// identify which shard produced them.
void record_shard_manifest(const ShardSpec& shard);

struct CampaignConfig {
  /// Checkpoint directory; empty disables checkpointing (compute-only).
  std::string dir;
  /// Campaign identity: every parameter that determines trial outcomes
  /// (scenario/config, seed, trial count, payload size) folded into one
  /// string by the caller. A checkpoint written under a different key is
  /// rejected at read time.
  std::string key;
  ShardSpec shard;
};

/// Path of the checkpoint file `run_*_shard` reads/writes for `kind`
/// ("waveform", "batch", "linkbudget", "mismatch") under `cfg`.
std::string checkpoint_path(const CampaignConfig& cfg, const std::string& kind);

template <typename Outcome>
struct ShardResult {
  ShardSpec shard;
  std::size_t begin = 0;  ///< global index of outcomes[0]
  std::size_t end = 0;    ///< one past the last global index
  std::vector<Outcome> outcomes;
  bool from_checkpoint = false;  ///< true when loaded instead of computed
};

using WaveformShardResult = ShardResult<WaveformTrialOutcome>;
using BerShardResult = ShardResult<LinkBudget::BerTrialOutcome>;
using MismatchShardResult = ShardResult<double>;

/// Computes (or resumes from checkpoint) this shard of an n_trials waveform
/// campaign; trials fan out over the parallel engine within the shard.
WaveformShardResult run_waveform_shard(const Scenario& scenario,
                                       std::size_t n_trials,
                                       std::size_t payload_bits,
                                       const common::Rng& rng,
                                       const CampaignConfig& cfg);

/// Serial trial-order fold over all shards of the campaign. Throws
/// std::runtime_error unless the shards cover [0, n_trials) exactly once.
WaveformStats merge_waveform_campaign(
    const std::vector<WaveformShardResult>& shards, std::size_t n_trials,
    std::size_t payload_bits);

/// Shard of a run_waveform_batch fan-out: the flattened (job, trial) index
/// space is sharded globally, so shards stay balanced even when individual
/// jobs have few trials.
WaveformShardResult run_waveform_batch_shard(const std::vector<WaveformJob>& jobs,
                                             const CampaignConfig& cfg);

/// Per-job stats, bit-identical to run_waveform_batch(jobs).
std::vector<WaveformStats> merge_waveform_batch_campaign(
    const std::vector<WaveformShardResult>& shards,
    const std::vector<WaveformJob>& jobs);

/// Shard of LinkBudget::monte_carlo at one range.
BerShardResult run_linkbudget_shard(const LinkBudget& budget, common::Meters range,
                                    std::size_t trials, std::size_t bits_per_trial,
                                    const common::Rng& rng,
                                    const CampaignConfig& cfg);

LinkBudget::BerStats merge_linkbudget_campaign(
    const std::vector<BerShardResult>& shards, std::size_t trials,
    std::size_t bits_per_trial);

/// Shard of vanatta::mismatch_monte_carlo.
MismatchShardResult run_mismatch_shard(const vanatta::VanAttaConfig& array_cfg,
                                       double theta_rad, common::Hz f,
                                       double sigma_phase_rad,
                                       common::Db sigma_gain,
                                       std::size_t trials, const common::Rng& rng,
                                       const CampaignConfig& cfg);

vanatta::MismatchResult merge_mismatch_campaign(
    const std::vector<MismatchShardResult>& shards, std::size_t trials);

}  // namespace vab::sim
