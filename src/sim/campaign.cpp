#include "sim/campaign.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/manifest.hpp"
#include "obs/obs.hpp"

namespace vab::sim {

namespace {

constexpr std::string_view kCkptMagic = "vab-campaign-ckpt-v1";

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

struct CkptHeader {
  std::string kind;
  std::string key_hex;  // fnv1a64 of CampaignConfig::key
  ShardSpec shard;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::string line() const {
    std::ostringstream os;
    os << kCkptMagic << " kind=" << kind << " key=" << key_hex
       << " shard=" << shard.str() << " begin=" << begin << " end=" << end;
    return os.str();
  }
};

/// Digest over the record section exactly as it appears in the file.
std::uint64_t records_digest(const std::vector<std::string>& records) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::string& r : records) {
    const std::string line = "r " + r + "\n";
    for (const char c : line) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// Atomic publish: a reader never observes a partially written file — it
/// either sees the old state (or nothing) or the complete renamed file.
void write_checkpoint(const std::string& path, const CkptHeader& header,
                      const std::vector<std::string>& records) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return;  // checkpointing is best-effort; the campaign still runs
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << header.line() << "\n";
    out << "manifest " << obs::manifest_json() << "\n";
    for (const std::string& r : records) out << "r " << r << "\n";
    out << "digest " << hex64(records_digest(records)) << "\n";
    if (!out) return;
  }
  std::filesystem::rename(tmp, path, ec);
}

/// Returns the record payloads when `path` holds a complete checkpoint for
/// exactly `want` (same kind, campaign key, shard and trial range, intact
/// digest, full record count); nullopt on any mismatch so the caller
/// recomputes.
std::optional<std::vector<std::string>> read_checkpoint(const std::string& path,
                                                        const CkptHeader& want) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != want.line()) return std::nullopt;
  std::vector<std::string> records;
  records.reserve(want.end - want.begin);
  bool digest_ok = false;
  while (std::getline(in, line)) {
    if (line.rfind("manifest ", 0) == 0) continue;  // informational only
    if (line.rfind("r ", 0) == 0) {
      if (digest_ok) return std::nullopt;  // records after the digest line
      records.push_back(line.substr(2));
      continue;
    }
    if (line.rfind("digest ", 0) == 0) {
      if (line.substr(7) != hex64(records_digest(records))) return std::nullopt;
      digest_ok = true;
      continue;
    }
    return std::nullopt;  // unknown line
  }
  if (!digest_ok || records.size() != want.end - want.begin) return std::nullopt;
  return records;
}

// Per-outcome text codecs. Doubles use %a / %la: hex floats round-trip every
// finite value (and inf/nan spellings) exactly, so a resumed merge is
// bit-identical to the uninterrupted run.

std::string encode_outcome(const WaveformTrialOutcome& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%zu %d %d %a %a %a", s.bit_errors,
                s.sync_found ? 1 : 0, s.frame_ok ? 1 : 0, s.snr_db, s.corr_peak,
                s.sic_suppression_db);
  return buf;
}

bool decode_outcome(const std::string& text, WaveformTrialOutcome& s) {
  int sync = 0;
  int ok = 0;
  if (std::sscanf(text.c_str(), "%zu %d %d %la %la %la", &s.bit_errors, &sync,
                  &ok, &s.snr_db, &s.corr_peak, &s.sic_suppression_db) != 6)
    return false;
  s.sync_found = sync != 0;
  s.frame_ok = ok != 0;
  return true;
}

std::string encode_outcome(const LinkBudget::BerTrialOutcome& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%zu %a", s.errors, s.snr_db);
  return buf;
}

bool decode_outcome(const std::string& text, LinkBudget::BerTrialOutcome& s) {
  return std::sscanf(text.c_str(), "%zu %la", &s.errors, &s.snr_db) == 2;
}

std::string encode_outcome(double loss) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", loss);
  return buf;
}

bool decode_outcome(const std::string& text, double& loss) {
  return std::sscanf(text.c_str(), "%la", &loss) == 1;
}

/// Shared shard driver: resume this shard from its checkpoint when a valid
/// one exists, otherwise run `compute(global_trial) -> Outcome` across the
/// shard's range via the parallel engine and checkpoint the raw outcomes.
template <typename Outcome, typename Compute>
ShardResult<Outcome> run_shard(const std::string& kind, std::size_t n_trials,
                               const CampaignConfig& cfg, Compute&& compute) {
  static const obs::Counter resumed = obs::counter("campaign.shards_resumed");
  static const obs::Counter computed = obs::counter("campaign.shards_computed");
  ShardResult<Outcome> result;
  result.shard = cfg.shard;
  const auto [begin, end] = cfg.shard.range(n_trials);
  result.begin = begin;
  result.end = end;

  CkptHeader header{kind, hex64(fnv1a64(cfg.key)), cfg.shard, begin, end};
  const std::string path =
      cfg.dir.empty() ? std::string{} : checkpoint_path(cfg, kind);
  if (!path.empty()) {
    if (auto records = read_checkpoint(path, header)) {
      std::vector<Outcome> outcomes(records->size());
      bool all_ok = true;
      for (std::size_t i = 0; i < records->size() && all_ok; ++i)
        all_ok = decode_outcome((*records)[i], outcomes[i]);
      if (all_ok) {
        result.outcomes = std::move(outcomes);
        result.from_checkpoint = true;
        resumed.inc();
        return result;
      }
    }
  }

  result.outcomes.resize(end - begin);
  common::parallel_for(begin, end, [&](std::size_t t) {
    result.outcomes[t - begin] = compute(t);
  });
  computed.inc();

  if (!path.empty()) {
    std::vector<std::string> records;
    records.reserve(result.outcomes.size());
    for (const Outcome& s : result.outcomes) records.push_back(encode_outcome(s));
    write_checkpoint(path, header, records);
  }
  return result;
}

/// Places every shard's outcomes by global trial index, requiring exact
/// single coverage of [0, n_trials).
template <typename Outcome>
std::vector<Outcome> assemble(const std::vector<ShardResult<Outcome>>& shards,
                              std::size_t n_trials) {
  std::vector<Outcome> slots(n_trials);
  std::vector<char> seen(n_trials, 0);
  for (const auto& sh : shards) {
    if (sh.end < sh.begin || sh.end > n_trials ||
        sh.outcomes.size() != sh.end - sh.begin)
      throw std::runtime_error("campaign merge: malformed shard " +
                               sh.shard.str());
    for (std::size_t t = sh.begin; t < sh.end; ++t) {
      if (seen[t])
        throw std::runtime_error("campaign merge: trial " + std::to_string(t) +
                                 " covered twice");
      seen[t] = 1;
      slots[t] = sh.outcomes[t - sh.begin];
    }
  }
  for (std::size_t t = 0; t < n_trials; ++t)
    if (!seen[t])
      throw std::runtime_error("campaign merge: missing trial " +
                               std::to_string(t) +
                               " (shard not run or checkpoint lost)");
  return slots;
}

}  // namespace

ShardSpec ShardSpec::parse(const std::string& text) {
  ShardSpec spec;
  char extra = 0;
  unsigned long long idx = 0;
  unsigned long long cnt = 0;
  if (std::sscanf(text.c_str(), "%llu/%llu%c", &idx, &cnt, &extra) != 2)
    throw std::invalid_argument("shard spec must be \"i/n\", got \"" + text +
                                "\"");
  if (cnt == 0 || idx >= cnt)
    throw std::invalid_argument("shard spec needs i < n, n >= 1, got \"" +
                                text + "\"");
  spec.index = static_cast<std::size_t>(idx);
  spec.count = static_cast<std::size_t>(cnt);
  return spec;
}

void record_shard_manifest(const ShardSpec& shard) {
  obs::set_manifest("shard", shard.str());
  obs::set_manifest("shard_index", std::to_string(shard.index));
  obs::set_manifest("shard_count", std::to_string(shard.count));
}

std::string checkpoint_path(const CampaignConfig& cfg, const std::string& kind) {
  return cfg.dir + "/" + kind + "-" + hex64(fnv1a64(cfg.key)) + "-" +
         std::to_string(cfg.shard.index) + "of" +
         std::to_string(cfg.shard.count) + ".ckpt";
}

WaveformShardResult run_waveform_shard(const Scenario& scenario,
                                       std::size_t n_trials,
                                       std::size_t payload_bits,
                                       const common::Rng& rng,
                                       const CampaignConfig& cfg) {
  VAB_STAGE("campaign.waveform_shard");
  return run_shard<WaveformTrialOutcome>(
      "waveform", n_trials, cfg,
      [&](std::size_t t) { return run_waveform_trial(scenario, payload_bits, rng, t); });
}

WaveformStats merge_waveform_campaign(
    const std::vector<WaveformShardResult>& shards, std::size_t n_trials,
    std::size_t payload_bits) {
  const auto slots = assemble(shards, n_trials);
  return fold_waveform_trials(slots.data(), n_trials, payload_bits);
}

WaveformShardResult run_waveform_batch_shard(const std::vector<WaveformJob>& jobs,
                                             const CampaignConfig& cfg) {
  VAB_STAGE("campaign.batch_shard");
  std::vector<std::size_t> offsets(jobs.size() + 1, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j)
    offsets[j + 1] = offsets[j] + jobs[j].trials;
  const std::size_t total = offsets.back();
  return run_shard<WaveformTrialOutcome>("batch", total, cfg, [&](std::size_t flat) {
    const std::size_t j = static_cast<std::size_t>(
                              std::upper_bound(offsets.begin(), offsets.end(), flat) -
                              offsets.begin()) -
                          1;
    return run_waveform_trial(jobs[j].scenario, jobs[j].payload_bits, jobs[j].rng,
                              flat - offsets[j]);
  });
}

std::vector<WaveformStats> merge_waveform_batch_campaign(
    const std::vector<WaveformShardResult>& shards,
    const std::vector<WaveformJob>& jobs) {
  std::size_t total = 0;
  for (const WaveformJob& job : jobs) total += job.trials;
  const auto slots = assemble(shards, total);
  std::vector<WaveformStats> out;
  out.reserve(jobs.size());
  std::size_t offset = 0;
  for (const WaveformJob& job : jobs) {
    out.push_back(fold_waveform_trials(slots.data() + offset, job.trials,
                                       job.payload_bits));
    offset += job.trials;
  }
  return out;
}

BerShardResult run_linkbudget_shard(const LinkBudget& budget, common::Meters range,
                                    std::size_t trials, std::size_t bits_per_trial,
                                    const common::Rng& rng,
                                    const CampaignConfig& cfg) {
  VAB_STAGE("campaign.linkbudget_shard");
  return run_shard<LinkBudget::BerTrialOutcome>(
      "linkbudget", trials, cfg, [&](std::size_t t) {
        return budget.monte_carlo_trial(range, bits_per_trial, rng, t);
      });
}

LinkBudget::BerStats merge_linkbudget_campaign(
    const std::vector<BerShardResult>& shards, std::size_t trials,
    std::size_t bits_per_trial) {
  const auto slots = assemble(shards, trials);
  return LinkBudget::fold_ber_trials(slots.data(), trials, bits_per_trial);
}

MismatchShardResult run_mismatch_shard(const vanatta::VanAttaConfig& array_cfg,
                                       double theta_rad, common::Hz f,
                                       double sigma_phase_rad,
                                       common::Db sigma_gain,
                                       std::size_t trials, const common::Rng& rng,
                                       const CampaignConfig& cfg) {
  VAB_STAGE("campaign.mismatch_shard");
  const double f_hz = f.raw();
  const double sigma_gain_db = sigma_gain.raw();
  const vanatta::VanAttaArray clean(array_cfg);
  const double clean_gain = clean.monostatic_gain_db(theta_rad, f_hz);
  return run_shard<double>("mismatch", trials, cfg, [&](std::size_t t) {
    return vanatta::mismatch_trial(array_cfg, theta_rad, f_hz, sigma_phase_rad,
                                   sigma_gain_db, clean_gain, rng, t);
  });
}

vanatta::MismatchResult merge_mismatch_campaign(
    const std::vector<MismatchShardResult>& shards, std::size_t trials) {
  const auto slots = assemble(shards, trials);
  rvec losses(slots.begin(), slots.end());
  return vanatta::fold_mismatch_losses(losses);
}

}  // namespace vab::sim
