// Deployment scenarios: environment profiles (river / ocean) + reader and
// node geometry. These are the knobs the paper's field experiments varied.
#pragma once

#include <string>

#include "channel/multipath.hpp"
#include "channel/noise.hpp"
#include "channel/soundspeed.hpp"
#include "channel/spreading.hpp"
#include "fault/fault.hpp"
#include "phy/fec.hpp"
#include "phy/modem.hpp"
#include "vanatta/array.hpp"

namespace vab::sim {

struct Environment {
  std::string name = "river";
  channel::WaterProperties water{};
  channel::NoiseConditions noise{};
  channel::MultipathConfig multipath{};
  /// Spreading coefficient k in TL = k log10(r): 10 = cylindrical,
  /// 15 = practical, 20 = spherical. Shallow waveguides sit between
  /// cylindrical and practical beyond a few water depths.
  double spreading_coeff = 15.0;
  /// Slow fading (lognormal shadowing) std-dev on the round-trip link, dB.
  double fading_sigma_db = 3.0;
  /// Sea-surface wave motion (swell): modulates surface-bounce path delays
  /// within a frame in the waveform simulator.
  double surface_wave_amplitude_m = 0.0;
  double surface_wave_period_s = 5.0;

  double sound_speed() const { return channel::sound_speed(water); }
};

/// Charles-River-style profile: fresh, shallow (~5 m), harbor noise floor.
Environment river_environment();
/// Coastal ocean profile: salt, ~20 m deep, calm-sea Wenz noise.
Environment ocean_environment();

struct ReaderDeployment {
  double source_level_db = 184.0;    ///< dB re 1 uPa @ 1 m
  double depth_m = 2.0;
  /// Projector-to-hydrophone baseline; sets the direct-blast level.
  double tx_rx_separation_m = 1.0;
};

struct NodeDeployment {
  vanatta::VanAttaConfig array{};
  double depth_m = 5.0;
  /// Bearing of the reader relative to the array broadside (radians); the
  /// orientation axis of experiment E2.
  double orientation_rad = 0.0;
  /// Residual static (unmodulated) reflection amplitude relative to the
  /// modulated amplitude — carrier leak that SIC must absorb.
  double static_reflection_rel = 0.5;
};

struct Scenario {
  Environment env = river_environment();
  ReaderDeployment reader{};
  NodeDeployment node{};
  double range_m = 100.0;
  phy::PhyConfig phy{};
  /// Frame FEC (Hamming(7,4) + interleaver); off at the paper's operating
  /// point, on for the coded-link extension.
  phy::FecConfig fec{false};
  /// Scheduled impairments (burst loss, SNR dips, node dropout). Empty by
  /// default: every pre-fault scenario is bit-identical with the hook
  /// compiled in.
  fault::FaultPlan fault{};
};

/// Calibration constant: backscatter target strength of a single *ideal*
/// (lossless, unit-modulation) transducer element, dB re 1 m. All array
/// responses are expressed relative to this reference. The value matches
/// the small cylindrical transducers the paper's nodes use.
inline constexpr double kElementTargetStrengthDb = -40.0;

/// Channel tap sets for a scenario's geometry (spreading law applied).
std::vector<channel::PathTap> forward_taps(const Scenario& s);
std::vector<channel::PathTap> return_taps(const Scenario& s);
std::vector<channel::PathTap> blast_taps(const Scenario& s);

/// The paper's VAB node on a river deployment (the headline configuration).
Scenario vab_river_scenario();
/// Same node in the ocean profile (experiment E4).
Scenario vab_ocean_scenario();
/// River deployment under a hostile channel: Gilbert–Elliott burst loss at
/// ~20% mean, duty-cycle wake misses, occasional shadowing dips — the
/// impairment-sweep workload (experiment EXT-5).
Scenario hostile_river_scenario();
/// Prior-art single-element backscatter baseline (PAB): one unmatched
/// element, on-off keying — the 15x comparison point (experiment E5).
Scenario pab_river_scenario();

}  // namespace vab::sim
