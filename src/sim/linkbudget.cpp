#include "sim/linkbudget.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "channel/spreading.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "phy/ber.hpp"

namespace vab::sim {

LinkBudget::LinkBudget(Scenario scenario)
    : scenario_(std::move(scenario)), array_(scenario_.node.array) {}

double LinkBudget::node_modulation_amplitude() const {
  return array_.modulation_amplitude(scenario_.node.orientation_rad,
                                     scenario_.phy.carrier_hz);
}

common::Db LinkBudget::carrier_spl_at_node(common::Meters range) const {
  const double range_m = range.raw();
  const double tl =
      scenario_.env.spreading_coeff * std::log10(std::max(range_m, 1.0)) +
      channel::absorption_loss(common::Hz{scenario_.phy.carrier_hz}, range,
                               scenario_.env.water)
          .raw();
  return common::Db{scenario_.reader.source_level_db - tl};
}

LinkBudgetResult LinkBudget::evaluate(common::Meters range, common::Db fading) const {
  const double range_m = range.raw();
  if (range_m <= 0.0) throw std::invalid_argument("range must be > 0");
  LinkBudgetResult r;
  r.tl_one_way_db = common::Db{
      scenario_.env.spreading_coeff * std::log10(std::max(range_m, 1.0)) +
      channel::absorption_loss(common::Hz{scenario_.phy.carrier_hz}, range,
                               scenario_.env.water)
          .raw()};
  r.received_at_node_db = common::Db{scenario_.reader.source_level_db} - r.tl_one_way_db;

  const double mod_amp = node_modulation_amplitude();
  const common::Db ts_mod{kElementTargetStrengthDb +
                          20.0 * std::log10(std::max(mod_amp, 1e-12))};
  r.modulated_return_db = r.received_at_node_db + ts_mod - r.tl_one_way_db + fading;

  const double chip_rate = scenario_.phy.chip_rate_hz();
  r.noise_in_band_db = channel::noise_level(common::Hz{scenario_.phy.carrier_hz},
                                            common::Hz{chip_rate}, scenario_.env.noise);
  r.snr_chip_db = common::SnrDb{r.modulated_return_db.raw() - r.noise_in_band_db.raw()};
  r.ber = phy::ber_fm0(r.snr_chip_db.to_linear().raw());
  return r;
}

LinkBudget::BerTrialOutcome LinkBudget::monte_carlo_trial(common::Meters range,
                                                          std::size_t bits_per_trial,
                                                          const common::Rng& rng,
                                                          std::size_t t) const {
  common::Rng trial_rng = rng.child(t);
  const common::Db fade{trial_rng.gaussian(0.0, scenario_.env.fading_sigma_db)};
  const LinkBudgetResult r = evaluate(range, fade);
  std::binomial_distribution<std::size_t> binom(bits_per_trial,
                                                std::min(std::max(r.ber, 0.0), 1.0));
  return {binom(trial_rng.engine()), r.snr_chip_db.raw()};
}

LinkBudget::BerStats LinkBudget::fold_ber_trials(const BerTrialOutcome* slots,
                                                 std::size_t trials,
                                                 std::size_t bits_per_trial) {
  VAB_STAGE("linkbudget.accumulate");
  BerStats stats;
  double snr_acc = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    stats.errors += slots[t].errors;
    snr_acc += slots[t].snr_db;
  }
  stats.bits = trials * bits_per_trial;
  stats.mean_snr_db = trials ? snr_acc / static_cast<double>(trials) : 0.0;
  return stats;
}

LinkBudget::BerStats LinkBudget::monte_carlo(common::Meters range, std::size_t trials,
                                             std::size_t bits_per_trial,
                                             common::Rng& rng) const {
  // Trial t draws fade and bit errors from its own rng.child(t) stream;
  // slots are folded serially in trial order, so the result is bit-identical
  // for any thread count. `rng` itself is never advanced.
  VAB_STAGE("linkbudget.monte_carlo");
  static const obs::Counter trial_counter = obs::counter("linkbudget.trials");
  trial_counter.add(trials);
  std::vector<BerTrialOutcome> slots(trials);
  common::parallel_for(0, trials, [&](std::size_t t) {
    slots[t] = monte_carlo_trial(range, bits_per_trial, rng, t);
  });
  return fold_ber_trials(slots.data(), trials, bits_per_trial);
}

common::Meters LinkBudget::max_range(double target_ber, std::size_t trials,
                                     common::Rng& rng, common::Meters max_range) const {
  double lo = 1.0, hi = max_range.raw();
  // If even the minimum range fails, report zero; if the max passes, report it.
  auto ber_at = [&](double r) {
    common::Rng local = rng.child(static_cast<std::uint64_t>(r * 1000.0));
    return monte_carlo(common::Meters{r}, trials, 512, local).ber();
  };
  if (ber_at(lo) > target_ber) return common::Meters{0.0};
  if (ber_at(hi) <= target_ber) return common::Meters{hi};
  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ber_at(mid) <= target_ber)
      lo = mid;
    else
      hi = mid;
  }
  return common::Meters{lo};
}

}  // namespace vab::sim
