#include "sim/waveform_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/correlate.hpp"
#include "dsp/workspace.hpp"
#include "obs/obs.hpp"
#include "dsp/mixer.hpp"
#include "phy/coding.hpp"
#include "phy/fec.hpp"

namespace vab::sim {

WaveformSimulator::WaveformSimulator(Scenario scenario, common::Rng& rng)
    : scenario_(std::move(scenario)),
      rng_(&rng),
      array_(scenario_.node.array),
      modulator_(scenario_.phy),
      demodulator_(scenario_.phy) {
  if (!scenario_.fault.empty()) fault_.emplace(scenario_.fault);
  const double fc = scenario_.phy.carrier_hz;
  const double theta = scenario_.node.orientation_rad;
  const cplx r1 = array_.bistatic_response(theta, theta, fc, 1);
  const cplx r0 = array_.bistatic_response(theta, theta, fc, 0);
  const double ts0_lin = std::pow(10.0, kElementTargetStrengthDb / 20.0);
  mod_amp_lin_ = ts0_lin * std::abs(r1 - r0) / 2.0;
  static_amp_lin_ = scenario_.node.static_reflection_rel * mod_amp_lin_;
}

void WaveformSimulator::node_reflection_sequence(const bitvec& payload,
                                                 std::size_t n_samples,
                                                 std::size_t start_offset,
                                                 rvec& coef) const {
  auto states_l = dsp::Workspace::local().take_b(0);
  auto mask_l = dsp::Workspace::local().take_b(0);
  bitvec& states = *states_l;
  bitvec& mask = *mask_l;
  modulator_.switch_waveform(payload, states);
  modulator_.active_mask(payload.size(), mask);
  const bool polarity =
      scenario_.node.array.scheme == vanatta::ModulationScheme::kPolarity;

  // Per-state signed levels such that the differential amplitude is
  // mod_amp_lin_: polarity toggles +/-1, on-off toggles 0/2 around mean 1.
  coef.assign(n_samples, static_amp_lin_);
  for (std::size_t n = start_offset; n < n_samples; ++n) {
    const std::size_t k = n - start_offset;
    if (k >= states.size() || !mask[k]) continue;  // idle: absorptive
    double level;
    if (polarity) {
      level = states[k] ? 1.0 : -1.0;
    } else {
      level = states[k] ? 2.0 : 0.0;
    }
    coef[n] += mod_amp_lin_ * level;
  }
}

WaveformTrialResult WaveformSimulator::run_trial(const bitvec& payload) {
  VAB_STAGE("wave.trial");
  const auto& phy = scenario_.phy;
  const double fs = phy.fs_hz;
  const double c = scenario_.env.sound_speed();
  const bitvec air_bits = [&] {
    VAB_STAGE("wave.fec_encode");
    return phy::FrameCodec(scenario_.fec).encode(payload);
  }();

  // Channel tap sets. Tap gains follow the scenario's spreading law so the
  // waveform simulator and the analytic link budget agree on energetics.
  const auto fwd_taps = forward_taps(scenario_);
  const auto ret_taps = return_taps(scenario_);
  const double sep = std::max(scenario_.reader.tx_rx_separation_m, 0.1);
  const auto blast_tap_set = sim::blast_taps(scenario_);

  // Transmit long enough to cover the node frame plus round-trip delays.
  const std::size_t frame_len = modulator_.waveform_length(air_bits.size());
  double max_delay = sep / c;
  for (const auto& t : fwd_taps) max_delay = std::max(max_delay, t.delay_s);
  double ret_delay = 0.0;
  for (const auto& t : ret_taps) ret_delay = std::max(ret_delay, t.delay_s);
  const auto n_tx =
      frame_len +
      static_cast<std::size_t>(std::ceil((2.0 * max_delay + ret_delay) * fs)) + 64;

  const double spl = scenario_.reader.source_level_db;
  const double amp = common::pressure_from_spl(spl) * std::sqrt(2.0);  // peak from rms
  auto tx_l = dsp::Workspace::local().take_r(0);
  rvec& tx = *tx_l;
  dsp::make_tone(phy.carrier_hz, fs, n_tx, amp, 0.0, tx);

  // Forward propagation (clean: the node is an analog reflector).
  channel::WaveformChannelConfig fwd_cfg;
  fwd_cfg.fs_hz = fs;
  fwd_cfg.taps = fwd_taps;
  fwd_cfg.add_noise = false;
  fwd_cfg.sound_speed_mps = c;
  fwd_cfg.fading_sigma_db = scenario_.env.fading_sigma_db / 2.0;  // per leg
  fwd_cfg.surface_wave_amplitude_m = scenario_.env.surface_wave_amplitude_m;
  fwd_cfg.surface_wave_period_s = scenario_.env.surface_wave_period_s;
  channel::WaveformChannel fwd(fwd_cfg, *rng_);
  auto incident_l = dsp::Workspace::local().take_r(0);
  rvec& incident = *incident_l;
  {
    VAB_STAGE("wave.channel.forward");
    fwd.propagate_clean(tx, incident);
  }

  // Node reflection: the node starts its frame once the carrier reaches it
  // (carrier-detect trigger), i.e. after the direct forward delay.
  double fwd_direct_delay = fwd_taps.front().delay_s;
  for (const auto& t : fwd_taps) fwd_direct_delay = std::min(fwd_direct_delay, t.delay_s);
  const auto node_start = static_cast<std::size_t>(std::ceil(fwd_direct_delay * fs));
  auto reflected_l = dsp::Workspace::local().take_r(incident.size());
  rvec& reflected = *reflected_l;
  {
    VAB_STAGE("wave.reflect");
    auto coef_l = dsp::Workspace::local().take_r(0);
    rvec& coef = *coef_l;
    node_reflection_sequence(air_bits, incident.size(), node_start, coef);
    for (std::size_t n = 0; n < incident.size(); ++n)
      reflected[n] = incident[n] * coef[n];
  }

  // Return propagation. The fault hook (SNR dips) bites on this leg only:
  // shadowing the weak backscatter, not the projector blast.
  channel::WaveformChannelConfig ret_cfg = fwd_cfg;
  ret_cfg.taps = ret_taps;
  ret_cfg.fault = fault_ ? &*fault_ : nullptr;
  channel::WaveformChannel ret(ret_cfg, *rng_);
  auto rx_l = dsp::Workspace::local().take_r(0);
  rvec& rx = *rx_l;
  {
    VAB_STAGE("wave.channel.return");
    ret.propagate(reflected, rx);  // add_noise is off: clean + injected dips
  }

  // Direct projector blast.
  channel::WaveformChannelConfig blast_cfg = fwd_cfg;
  blast_cfg.taps = blast_tap_set;
  blast_cfg.fading_sigma_db = 0.0;
  channel::WaveformChannel blast(blast_cfg, *rng_);
  auto blast_l = dsp::Workspace::local().take_r(0);
  rvec& blast_rx = *blast_l;
  {
    VAB_STAGE("wave.channel.blast");
    blast.propagate_clean(tx, blast_rx);
  }
  if (blast_rx.size() > rx.size()) rx.resize(blast_rx.size(), 0.0);
  for (std::size_t n = 0; n < blast_rx.size(); ++n) rx[n] += blast_rx[n];

  // The reader captures only while the projector output is steady: starting
  // the capture on the blast turn-on (or ending it on turn-off) would slam a
  // ~90 dB step into the AC-coupled receive chain and ring over the frame.
  const auto head = static_cast<std::size_t>(std::ceil(sep / c * fs)) + 256;
  const std::size_t tail_end = std::min(rx.size(), n_tx);
  if (head < tail_end) {
    // In-place trim to [head, tail_end): no reallocation, same values as the
    // historical copy-construction.
    rx.erase(rx.begin(), rx.begin() + static_cast<std::ptrdiff_t>(head));
    rx.resize(tail_end - head);
  }

  // Ambient noise at the hydrophone.
  {
    VAB_STAGE("wave.noise");
    auto noise_l = dsp::Workspace::local().take_r(0);
    rvec& noise = *noise_l;
    channel::synthesize_ambient_noise(rx.size(), common::SampleRateHz{fs},
                                      scenario_.env.noise, *rng_, noise);
    for (std::size_t n = 0; n < rx.size(); ++n) rx[n] += noise[n];
  }

  // Demodulate (and FEC-decode when the scenario runs coded).
  WaveformTrialResult res;
  res.tx_bits = payload;
  const phy::FrameCodec codec(scenario_.fec);
  {
    VAB_STAGE("wave.demod");
    res.demod = demodulator_.demodulate(rx, codec.coded_size(payload.size()));
  }
  if (res.demod.sync_found &&
      res.demod.bits.size() == codec.coded_size(payload.size())) {
    VAB_STAGE("wave.fec_decode");
    std::size_t corrected = 0;
    const bitvec decoded = codec.decode(res.demod.bits, payload.size(), corrected);
    res.fec_corrections = corrected;
    res.bit_errors = phy::hamming_distance(decoded, payload);
  } else {
    res.bit_errors = payload.size();
  }
  res.frame_ok = res.demod.sync_found && res.bit_errors == 0;
  res.incident_spl_at_node_db = common::spl_from_pressure(dsp::rms(incident));
  return res;
}

}  // namespace vab::sim
