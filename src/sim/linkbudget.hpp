// Analytic backscatter link budget + fading Monte-Carlo.
//
// The round-trip sonar equation for a modulated reflector:
//   SNR_chip = SL - 2*TL(r) + TS_mod - (NSD + 10 log10(Rc))
// where TS_mod = kElementTargetStrengthDb + 20 log10(modulation amplitude of
// the array at the node's orientation). Long-range sweeps (E1, E3-E6) use
// this model with lognormal fading; tests calibrate it against the full
// waveform simulator at short range.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/scenario.hpp"

namespace vab::sim {

struct LinkBudgetResult {
  common::Db tl_one_way_db{0.0};
  common::Db received_at_node_db{0.0};   ///< carrier SPL at the node
  common::Db modulated_return_db{0.0};   ///< modulated-sideband SPL back at reader
  common::Db noise_in_band_db{0.0};      ///< noise level in the chip bandwidth
  common::SnrDb snr_chip_db{0.0};
  double ber = 0.0;
};

class LinkBudget {
 public:
  explicit LinkBudget(Scenario scenario);

  /// Deterministic evaluation at `range` with an optional fading draw
  /// (applied to the round-trip signal).
  LinkBudgetResult evaluate(common::Meters range,
                            common::Db fading = common::Db{0.0}) const;

  /// Carrier SPL at the node (for the energy-harvesting budget).
  common::Db carrier_spl_at_node(common::Meters range) const;

  /// Modulation amplitude of the node's array toward the reader (linear,
  /// relative to an ideal element).
  double node_modulation_amplitude() const;

  struct BerStats {
    std::size_t bits = 0;
    std::size_t errors = 0;
    double mean_snr_db = 0.0;
    double ber() const {
      return bits ? static_cast<double>(errors) / static_cast<double>(bits) : 0.0;
    }
  };

  /// Raw outcome of one fading packet draw; folded serially in global trial
  /// order by `fold_ber_trials` so the aggregate is invariant to thread
  /// count and campaign shard topology.
  struct BerTrialOutcome {
    std::size_t errors = 0;
    double snr_db = 0.0;
  };

  /// Runs global trial `t` (drawing from `rng.child(t)`; the parent stream
  /// is never advanced).
  BerTrialOutcome monte_carlo_trial(common::Meters range, std::size_t bits_per_trial,
                                    const common::Rng& rng, std::size_t t) const;

  /// Serial trial-order fold — the one aggregation behind `monte_carlo`
  /// and the campaign merge.
  static BerStats fold_ber_trials(const BerTrialOutcome* slots, std::size_t trials,
                                  std::size_t bits_per_trial);

  /// Monte-Carlo over fading: `trials` packets of `bits_per_trial` bits,
  /// drawing lognormal shadowing per packet and binomial bit errors.
  /// Trials fan out over the parallel engine; packet t draws from
  /// `rng.child(t)` (the parent stream is never advanced) and the reduction
  /// is thread-count-invariant.
  BerStats monte_carlo(common::Meters range, std::size_t trials,
                       std::size_t bits_per_trial, common::Rng& rng) const;

  /// Largest range where the fading-averaged BER stays below `target_ber`,
  /// found by bisection over [1 m, max_range].
  common::Meters max_range(double target_ber, std::size_t trials, common::Rng& rng,
                           common::Meters max_range = common::Meters{2000.0}) const;

  const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
  vanatta::VanAttaArray array_;
};

}  // namespace vab::sim
