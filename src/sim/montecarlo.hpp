// Trial orchestration: range sweeps on the analytic link budget and batch
// waveform trials, with seeded reproducibility.
//
// All trial loops fan out over the common::parallel_for engine. Every trial
// draws from its own `rng.child(trial_index)` stream and deposits its raw
// outcome into a per-trial slot; aggregation then folds the slots serially
// in trial order. Results are therefore bit-identical for any thread count
// (including 1) — see tests/test_parallel_determinism.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace vab::sim {

struct SweepPoint {
  double range_m = 0.0;
  double ber = 0.0;
  double snr_db = 0.0;
  std::size_t bits = 0;
  std::size_t errors = 0;
};

/// BER vs range using the link budget with fading Monte-Carlo. Point i
/// derives its trial streams from `rng.child(i)`.
std::vector<SweepPoint> ber_vs_range_sweep(const Scenario& scenario, const rvec& ranges,
                                           std::size_t trials, std::size_t bits_per_trial,
                                           common::Rng& rng);

struct WaveformStats {
  std::size_t trials = 0;
  std::size_t frames_synced = 0;
  std::size_t frames_ok = 0;
  std::size_t total_bits = 0;
  std::size_t bit_errors = 0;
  double mean_snr_db = 0.0;
  double mean_corr_peak = 0.0;
  double mean_sic_suppression_db = 0.0;
  double ber() const {
    return total_bits ? static_cast<double>(bit_errors) / static_cast<double>(total_bits)
                      : 0.0;
  }
};

/// Raw outcome of one waveform trial. Slots are written in parallel (or on
/// different campaign shards) and folded serially in global trial order by
/// `fold_waveform_trials`, so the aggregate is invariant to both thread
/// count and shard topology.
struct WaveformTrialOutcome {
  std::size_t bit_errors = 0;
  bool sync_found = false;
  bool frame_ok = false;
  double snr_db = 0.0;
  double corr_peak = 0.0;
  double sic_suppression_db = 0.0;
};

/// Runs global trial `t` (drawing from `rng.child(t)`; the parent stream is
/// never advanced, so any process holding the master seed computes the same
/// outcome for the same t).
WaveformTrialOutcome run_waveform_trial(const Scenario& scenario,
                                        std::size_t payload_bits,
                                        const common::Rng& rng, std::size_t t);

/// Serial trial-order fold of raw outcomes — the one aggregation
/// implementation behind both the in-process runners and the campaign merge.
WaveformStats fold_waveform_trials(const WaveformTrialOutcome* slots,
                                   std::size_t n_trials, std::size_t payload_bits);

/// Runs `n_trials` full waveform trials with random payloads of
/// `payload_bits` bits each; trial t draws from `rng.child(t)`.
WaveformStats run_waveform_trials(const Scenario& scenario, std::size_t n_trials,
                                  std::size_t payload_bits, common::Rng& rng);

/// One batch of waveform trials: a scenario, a trial count and the master
/// stream the per-trial children are derived from.
struct WaveformJob {
  Scenario scenario;
  std::size_t trials = 0;
  std::size_t payload_bits = 0;
  common::Rng rng;  ///< trial t of this job uses rng.child(t)
};

/// Runs several waveform batches as one flat parallel fan-out over every
/// (job, trial) pair — full-chain trials are seconds-scale, so cross-batch
/// fan-out is what keeps all cores busy when each batch has few trials.
/// Result j is bit-identical to run_waveform_trials(jobs[j]...).
std::vector<WaveformStats> run_waveform_batch(const std::vector<WaveformJob>& jobs);

}  // namespace vab::sim
