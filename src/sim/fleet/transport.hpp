// Fleet-side link transports: both PHY fidelities behind the
// net::LinkTransport seam, plus the policy that switches between them.
//
// - Budget fidelity (the fleet default): per poll, draw lognormal shadowing,
//   evaluate the calibrated link budget at the link's range, map chip SNR ->
//   FM0 BER -> frame-loss probability for the actual wire length, and flip
//   one coin. Cost: nanoseconds per poll, so 100k-node fleets are feasible.
// - Waveform fidelity: the report's wire bits ride the full pipeline
//   (projector carrier, multipath, array reflection, blast, Wenz noise,
//   SIC, demod); decode errors corrupt the wire in place and the reader's
//   CRC classifies the damage. Cost: tens of ms per poll, so the policy
//   escalates only marginal or contended links and a shared cap bounds the
//   per-run spend.
//
// Escalation is observable: per-transport tallies feed the fleet result and
// the obs fleet.* counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <optional>

#include "net/mcs/mcs.hpp"
#include "net/transport.hpp"
#include "sim/linkbudget.hpp"
#include "sim/scenario.hpp"
#include "sim/waveform_sim.hpp"

namespace vab::sim::fleet {

/// Which PHY model carried a poll.
enum class Fidelity : std::uint8_t { kBudget, kWaveform };

enum class FidelityMode : std::uint8_t {
  kAdaptive,      ///< budget by default, waveform for marginal/contended links
  kBudgetOnly,    ///< never escalate (fastest; large-fleet default)
  kWaveformOnly,  ///< every poll through the waveform pipeline (validation)
};

struct FidelityPolicy {
  FidelityMode mode = FidelityMode::kAdaptive;
  /// A link is "marginal" when its effective SNR sits within this margin of
  /// the waterfall SNR (the SNR where frame delivery crosses 50%).
  double escalate_margin_db = 2.0;
  /// Escalate links polled while another in-range reader is mid-exchange.
  bool escalate_on_contention = true;
  /// Shared per-run budget of waveform polls; past it, escalation falls
  /// back to budget fidelity (counted, never silent).
  std::size_t max_waveform_polls = 128;
};

/// Per-run escalation accounting, merged into FleetResult.
struct PollTally {
  std::size_t budget_polls = 0;
  std::size_t waveform_polls = 0;
  std::size_t escalations_marginal = 0;
  std::size_t escalations_contention = 0;
  std::size_t waveform_cap_hits = 0;
  std::size_t contended_polls = 0;
};

/// LinkTransport over one reader's active address window. Local MAC address
/// = index into the window's link table; each link carries its own range,
/// cached budget SNR, and (lazily, on escalation) a waveform simulator fed
/// by a per-link child stream.
class FleetLinkTransport final : public net::LinkTransport {
 public:
  struct LinkInfo {
    std::uint32_t node_id = 0;  ///< global id (seeds the wave stream)
    double range_m = 1.0;
    /// Filled by begin_window: budget SNR at range.
    common::SnrDb snr_db{0.0};
  };

  /// `report_bits` is the representative report wire length used to place
  /// the waterfall SNR (delivery = 50%) for the escalation margin.
  FleetLinkTransport(const Scenario& base, const FidelityPolicy& policy,
                     common::Db contention_penalty, std::size_t report_bits);

  /// Installs the links of the next address window (index = local addr) and
  /// the stream that seeds per-link waveform draws.
  void begin_window(std::vector<LinkInfo> links, common::Rng wave_stream);

  /// Number of other readers mid-exchange in interference range of the node
  /// being polled next; reset before every poll by the fleet engine.
  void set_contention(std::size_t contenders) { contention_ = contenders; }

  /// Declares that a real slotted MAC arbitrates this window's contention.
  /// The flat per-contender SINR penalty and the slotted MAC model the same
  /// physics (concurrent in-range exchanges), so they are mutually
  /// exclusive: in slotted mode the penalty is NOT applied — collisions are
  /// resolved per slot upstream — while contended polls are still tallied
  /// and still eligible for waveform escalation.
  void set_slotted_mode(bool on) { slotted_mode_ = on; }
  bool slotted_mode() const { return slotted_mode_; }

  bool downlink_delivered(std::uint8_t addr, common::Rng& rng) override;
  bool uplink_delivered(std::uint8_t addr, bytes& wire, common::Rng& rng) override;
  bool ack_delivered(std::uint8_t addr, common::Rng& rng) override;

  /// MCS seam: a commanded rung reroutes the budget path through that
  /// rung's analytic delivery curve (the waveform pipeline models only the
  /// scenario's fixed PHY, so MCS-commanded polls pin budget fidelity).
  void set_uplink_mcs(std::uint8_t addr, const net::mcs::McsEntry* entry) override;
  std::optional<common::SnrDb> last_uplink_snr_db() const override {
    return last_snr_db_;
  }

  const PollTally& tally() const { return tally_; }
  Fidelity last_fidelity() const { return last_fidelity_; }
  common::SnrDb waterfall_snr_db() const { return common::SnrDb{waterfall_snr_db_}; }
  /// Active window's links with their budget SNRs (filled by begin_window).
  const std::vector<LinkInfo>& links() const { return links_; }

  /// Budget chip SNR -> frame delivery probability for `bits` wire bits.
  static double frame_delivery_prob(common::SnrDb snr, std::size_t bits);

 private:
  struct WaveLink {
    common::Rng rng;
    WaveformSimulator sim;
    WaveLink(Scenario s, common::Rng stream) : rng(stream), sim(std::move(s), rng) {}
  };

  // Private helper in the raw interior domain (the penalty arithmetic
  // happens before any wrapping back into SnrDb).
  // vab-tidy: allow(unit-suffix-double-param) private raw-domain helper
  Fidelity choose_fidelity(double snr_eff_db);
  WaveLink& wave_link(std::uint8_t addr);

  Scenario base_;
  FidelityPolicy policy_;
  double contention_penalty_db_;
  double waterfall_snr_db_ = 0.0;
  LinkBudget budget_;
  std::vector<LinkInfo> links_;
  std::vector<std::unique_ptr<WaveLink>> wave_;  ///< lazy, per window addr
  std::vector<const net::mcs::McsEntry*> mcs_;   ///< commanded rung, per addr
  common::Rng wave_stream_{0};
  std::size_t contention_ = 0;
  bool slotted_mode_ = false;
  PollTally tally_;
  Fidelity last_fidelity_ = Fidelity::kBudget;
  std::optional<common::SnrDb> last_snr_db_;
};

}  // namespace vab::sim::fleet
