#include "sim/fleet/transport.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "phy/ber.hpp"
#include "phy/fec.hpp"

namespace vab::sim::fleet {
namespace {

// Wire bytes <-> air bits, MSB first (matches net::serialize_bits).
void bytes_to_bits(const bytes& in, bitvec& out) {
  out.clear();
  out.reserve(in.size() * 8);
  for (const std::uint8_t byte : in)
    for (int b = 7; b >= 0; --b)
      out.push_back(static_cast<std::uint8_t>((byte >> b) & 1U));
}

void bits_to_bytes(const bitvec& in, bytes& out) {
  out.assign(in.size() / 8, 0);
  for (std::size_t i = 0; i < out.size() * 8; ++i)
    out[i / 8] = static_cast<std::uint8_t>(
        (out[i / 8] << 1U) | (in[i] & 1U));
}

}  // namespace

FleetLinkTransport::FleetLinkTransport(const Scenario& base,
                                       const FidelityPolicy& policy,
                                       common::Db contention_penalty,
                                       std::size_t report_bits)
    : base_(base),
      policy_(policy),
      contention_penalty_db_(contention_penalty.raw()),
      budget_(base) {
  // Waterfall SNR: where frame delivery crosses 50% for the representative
  // wire length. frame_delivery_prob is monotone in SNR, so bisect.
  double lo = -30.0, hi = 30.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (frame_delivery_prob(common::SnrDb{mid}, report_bits) < 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  waterfall_snr_db_ = 0.5 * (lo + hi);
}

double FleetLinkTransport::frame_delivery_prob(common::SnrDb snr, std::size_t bits) {
  const double ber = phy::ber_fm0(std::pow(10.0, snr.raw() / 10.0));
  return std::pow(1.0 - ber, static_cast<double>(bits));
}

void FleetLinkTransport::begin_window(std::vector<LinkInfo> links,
                                      common::Rng wave_stream) {
  links_ = std::move(links);
  for (LinkInfo& l : links_)
    l.snr_db = budget_.evaluate(common::Meters{l.range_m}).snr_chip_db;
  wave_ = std::vector<std::unique_ptr<WaveLink>>(links_.size());
  mcs_.assign(links_.size(), nullptr);
  wave_stream_ = wave_stream;
  contention_ = 0;
}

void FleetLinkTransport::set_uplink_mcs(std::uint8_t addr,
                                        const net::mcs::McsEntry* entry) {
  if (addr < mcs_.size()) mcs_[addr] = entry;
}

FleetLinkTransport::WaveLink& FleetLinkTransport::wave_link(std::uint8_t addr) {
  std::unique_ptr<WaveLink>& slot = wave_[addr];
  if (!slot) {
    Scenario s = base_;
    s.range_m = links_[addr].range_m;
    // One draw stream per (run, node): escalation order cannot perturb other
    // links, and the parent window stream is never advanced.
    slot = std::make_unique<WaveLink>(std::move(s),
                                      wave_stream_.child(links_[addr].node_id));
  }
  return *slot;
}

Fidelity FleetLinkTransport::choose_fidelity(double snr_eff_db) {
  bool want_waveform = false;
  switch (policy_.mode) {
    case FidelityMode::kBudgetOnly:
      break;
    case FidelityMode::kWaveformOnly:
      want_waveform = true;
      break;
    case FidelityMode::kAdaptive: {
      const bool marginal =
          std::abs(snr_eff_db - waterfall_snr_db_) <= policy_.escalate_margin_db;
      const bool contended = policy_.escalate_on_contention && contention_ > 0;
      if (marginal || contended) {
        want_waveform = true;
        if (marginal) ++tally_.escalations_marginal;
        if (contended) ++tally_.escalations_contention;
      }
      break;
    }
  }
  if (want_waveform && tally_.waveform_polls >= policy_.max_waveform_polls) {
    ++tally_.waveform_cap_hits;
    want_waveform = false;
  }
  return want_waveform ? Fidelity::kWaveform : Fidelity::kBudget;
}

bool FleetLinkTransport::downlink_delivered(std::uint8_t addr, common::Rng& rng) {
  // The query/ACK legs ride the projector carrier, ~90 dB louder than the
  // backscatter return; fleet-scale loss is concentrated on the uplink.
  (void)addr;
  (void)rng;
  return true;
}

bool FleetLinkTransport::ack_delivered(std::uint8_t addr, common::Rng& rng) {
  (void)addr;
  (void)rng;
  return true;
}

bool FleetLinkTransport::uplink_delivered(std::uint8_t addr, bytes& wire,
                                          common::Rng& rng) {
  if (addr >= links_.size())
    throw std::out_of_range("poll outside the active address window");
  const LinkInfo& link = links_[addr];
  if (contention_ > 0) ++tally_.contended_polls;

  // The SINR penalty for concurrent in-range exchanges applies to both
  // fidelities' escalation decision; the budget path also folds it into the
  // delivery draw (the waveform path models interference via its own noise).
  // In slotted-MAC mode the penalty is withheld: contention has already been
  // resolved per slot, and double-charging it here was the seam this flag
  // closes.
  const double penalty_db =
      slotted_mode_ ? 0.0
                    : static_cast<double>(contention_) * contention_penalty_db_;
  const double snr_eff = link.snr_db.raw() - penalty_db;
  const net::mcs::McsEntry* entry = mcs_[addr];
  // The waveform pipeline runs the scenario's fixed PHY config, so a
  // commanded rung (whose curve the MAC is adapting against) pins budget
  // fidelity instead of silently decoding at the wrong rate.
  last_fidelity_ = entry != nullptr ? Fidelity::kBudget : choose_fidelity(snr_eff);

  if (last_fidelity_ == Fidelity::kBudget) {
    ++tally_.budget_polls;
    static const obs::Counter polls = obs::counter("fleet.polls_budget");
    polls.add(1);
    const double fade = rng.gaussian(0.0, base_.env.fading_sigma_db);
    last_snr_db_ = common::SnrDb{snr_eff + fade};
    const double p =
        entry != nullptr
            ? entry->frame_delivery_prob(common::SnrDb{snr_eff + fade},
                                         wire.size() * 8)
            : frame_delivery_prob(common::SnrDb{snr_eff + fade}, wire.size() * 8);
    return rng.coin(p);
  }

  ++tally_.waveform_polls;
  static const obs::Counter polls = obs::counter("fleet.polls_waveform");
  polls.add(1);
  last_snr_db_ = common::SnrDb{snr_eff};  // budget estimate; waveform draw implicit
  WaveLink& wl = wave_link(addr);
  bitvec tx_bits;
  bytes_to_bits(wire, tx_bits);
  const WaveformTrialResult trial = wl.sim.run_trial(tx_bits);
  if (trial.frame_ok) return true;
  if (!trial.demod.sync_found) return false;  // no reply detected at all
  // Sync but bit errors: hand the damaged bits back on the wire and let the
  // reader's CRC classify them, exactly as the single-link pipeline does.
  const phy::FrameCodec codec(base_.fec);
  if (trial.demod.bits.size() != codec.coded_size(tx_bits.size())) return false;
  std::size_t corrected = 0;
  const bitvec decoded = codec.decode(trial.demod.bits, tx_bits.size(), corrected);
  bits_to_bytes(decoded, wire);
  return true;
}

}  // namespace vab::sim::fleet
