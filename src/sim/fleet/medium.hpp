// Spatially partitioned acoustic medium: a uniform grid over node positions
// answering "which nodes sit within range r of point p" without an O(N)
// scan per query.
//
// Layout is CSR-style (cell offsets into one flat id array) so a 100k-node
// fleet costs two contiguous allocations, and ids inside a cell stay in
// ascending order (bucketing is a stable counting sort). Query results are
// returned sorted ascending, so everything downstream iterates nodes in a
// deterministic order regardless of grid geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace vab::sim::fleet {

/// Planar deployment coordinate (meters). Depth differences are folded into
/// the per-link scenario, not the partitioning.
struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

double distance_m(const Position& a, const Position& b);

class SpatialGrid {
 public:
  /// Builds the partition over `points` with square cells of `cell_size`
  /// (values <= 0 fall back to 1 m). Degenerate inputs (no points, all
  /// points coincident) produce a 1x1 grid.
  SpatialGrid(std::vector<Position> points, common::Meters cell_size);

  /// Ids of all points within `radius` of `p` (inclusive), ascending.
  void query(const Position& p, common::Meters radius,
             std::vector<std::uint32_t>& out) const;

  std::size_t size() const { return points_.size(); }
  const Position& position(std::uint32_t id) const { return points_[id]; }
  std::size_t cell_count() const { return nx_ * ny_; }

 private:
  std::size_t cell_of(const Position& p) const;

  std::vector<Position> points_;
  double cell_size_m_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::size_t> offsets_;    ///< cell -> start index in ids_
  std::vector<std::uint32_t> ids_;      ///< point ids bucketed by cell
};

}  // namespace vab::sim::fleet
