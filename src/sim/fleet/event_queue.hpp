// Deterministic discrete-event core: a virtual clock plus an event queue
// with stable tie-breaking.
//
// Determinism contract:
//  - pop order is a pure function of the push sequence: events order by
//    (time, push sequence number), so two events stamped the same virtual
//    time pop in FIFO order — never in heap, pointer, or allocation order.
//  - the virtual clock only moves forward: popping advances `now()` to the
//    event's time, and pushing an event earlier than `now()` (or with a
//    non-finite time) throws instead of silently reordering causality.
//
// The queue is single-threaded by design. Fleet-scale parallelism lives
// *outside* the event loop (independent seeded runs fanned over
// common::parallel_for), which is how thread-count invariance stays trivial.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace vab::sim::fleet {

/// One scheduled occurrence. `entity` names the owner (e.g. a reader id),
/// `kind`/`payload` are caller-defined; the queue never interprets them.
struct Event {
  double time_s = 0.0;
  std::uint32_t entity = 0;
  std::uint32_t kind = 0;
  std::uint64_t payload = 0;
};

/// Forward-only simulated time. Advancing backwards throws: an event
/// executing "before now" means the schedule lost causality, and the
/// simulator must fail loudly rather than produce ordering-dependent output.
class VirtualClock {
 public:
  double now_s() const { return now_s_; }

  /// Moves the clock to `t` (>= now, finite; throws otherwise).
  void advance_to(double t);

 private:
  double now_s_ = 0.0;
};

/// Min-heap on (time_s, push sequence): earliest first, FIFO among equal
/// timestamps. Pops advance the embedded virtual clock.
class EventQueue {
 public:
  /// Schedules `ev`; throws std::invalid_argument on a non-finite time and
  /// std::logic_error on a time earlier than the clock.
  void push(const Event& ev);

  /// Earliest event (FIFO among ties), advancing the clock to its time;
  /// std::nullopt when empty.
  std::optional<Event> pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Total events ever pushed (also the next tie-break sequence number).
  std::uint64_t pushed() const { return next_seq_; }
  double now_s() const { return clock_.now_s(); }

 private:
  struct Entry {
    Event ev;
    std::uint64_t seq = 0;
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  static bool before(const Entry& a, const Entry& b) {
    if (a.ev.time_s != b.ev.time_s) return a.ev.time_s < b.ev.time_s;
    return a.seq < b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  VirtualClock clock_;
};

}  // namespace vab::sim::fleet
