#include "sim/fleet/event_queue.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace vab::sim::fleet {

void VirtualClock::advance_to(double t) {
  if (!std::isfinite(t)) throw std::invalid_argument("non-finite virtual time");
  if (t < now_s_) throw std::logic_error("virtual clock cannot run backwards");
  now_s_ = t;
}

void EventQueue::push(const Event& ev) {
  if (!std::isfinite(ev.time_s))
    throw std::invalid_argument("non-finite event time");
  if (ev.time_s < clock_.now_s())
    throw std::logic_error("event scheduled before the virtual clock");
  heap_.push_back(Entry{ev, next_seq_++});
  sift_up(heap_.size() - 1);
}

std::optional<Event> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  clock_.advance_to(top.ev.time_s);
  return top.ev;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t best = i;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace vab::sim::fleet
