#include "sim/fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/parallel.hpp"
#include "net/frame.hpp"
#include "obs/obs.hpp"
#include "sim/fleet/event_queue.hpp"

namespace vab::sim::fleet {
namespace {

// Stream tags for the per-run child hierarchy. All draws in a run descend
// from rng.child(tag)... chains; the run's root Rng is never advanced.
constexpr std::uint64_t kStreamLayout = 0xF1EE7;
constexpr std::uint64_t kStreamReaders = 0xD05E5;
// Per-(reader, window) sub-streams.
constexpr std::uint64_t kStreamPolls = 0;
constexpr std::uint64_t kStreamWaveform = 1;
constexpr std::uint64_t kStreamSlotted = 2;

constexpr std::uint32_t kEventStartWindow = 0;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Representative report wire length in bits: header + packed reading + CRC.
std::size_t report_wire_bits() {
  net::Frame f;
  f.payload.resize(net::kReadingBytes);
  return f.wire_size() * 8;
}

}  // namespace

FleetLayout make_layout(const FleetConfig& cfg, const common::Rng& rng) {
  FleetLayout out;
  // Readers on a coarse deterministic grid spanning the deployment square.
  const auto g = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(cfg.n_readers, 1)))));
  const double pitch = cfg.area_m / static_cast<double>(g + 1);
  out.readers.reserve(cfg.n_readers);
  for (std::size_t r = 0; r < cfg.n_readers; ++r) {
    out.readers.push_back(Position{static_cast<double>(r % g + 1) * pitch,
                                   static_cast<double>(r / g + 1) * pitch});
  }
  // Nodes land uniformly; one sequential stream, consumed in id order.
  common::Rng node_rng = rng.child(kStreamLayout);
  out.nodes.reserve(cfg.n_nodes);
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    const double x = node_rng.uniform(0.0, cfg.area_m);
    const double y = node_rng.uniform(0.0, cfg.area_m);
    out.nodes.push_back(Position{x, y});
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& cfg, const common::Rng& rng) {
  VAB_STAGE("fleet.run");
  FleetResult res;
  res.readers = cfg.n_readers;
  res.nodes = cfg.n_nodes;

  const FleetLayout layout = make_layout(cfg, rng);
  const SpatialGrid grid(layout.nodes, common::Meters{cfg.cell_size_m});

  // Nearest-reader assignment via range-culled grid queries. Equal ranges
  // resolve to the lowest reader id (strict improvement required), so the
  // attachment map is a pure function of the layout.
  std::vector<double> best_range(cfg.n_nodes, std::numeric_limits<double>::infinity());
  std::vector<std::uint32_t> best_reader(cfg.n_nodes, 0xFFFFFFFFU);
  std::vector<std::uint32_t> in_range;
  for (std::size_t r = 0; r < cfg.n_readers; ++r) {
    grid.query(layout.readers[r], common::Meters{cfg.max_link_range_m}, in_range);
    for (const std::uint32_t id : in_range) {
      const double d = distance_m(layout.readers[r], layout.nodes[id]);
      if (d < best_range[id]) {
        best_range[id] = d;
        best_reader[id] = static_cast<std::uint32_t>(r);
      }
    }
  }
  std::vector<std::vector<std::uint32_t>> attached(cfg.n_readers);
  for (std::size_t id = 0; id < cfg.n_nodes; ++id) {
    if (best_reader[id] == 0xFFFFFFFFU) {
      ++res.unreachable;
    } else {
      ++res.assigned;
      attached[best_reader[id]].push_back(static_cast<std::uint32_t>(id));
    }
  }

  // One transport (and one waveform-poll budget) per reader. The waterfall
  // SNR depends only on the base scenario, so all readers share its value.
  const std::size_t wire_bits = report_wire_bits();
  std::vector<std::unique_ptr<FleetLinkTransport>> transports;
  transports.reserve(cfg.n_readers);
  for (std::size_t r = 0; r < cfg.n_readers; ++r) {
    transports.push_back(std::make_unique<FleetLinkTransport>(
        cfg.scenario, cfg.fidelity, common::Db{cfg.contention_penalty_db},
        wire_bits));
    if (cfg.mac_mode == MacMode::kSlotted) transports.back()->set_slotted_mode(true);
  }
  if (!transports.empty())
    res.waterfall_snr_db = transports[0]->waterfall_snr_db().raw();

  // Readers with work all start at t = 0: the queue's FIFO tie-break makes
  // the first round pop in reader-id order by construction.
  EventQueue queue;
  std::vector<double> busy_until(cfg.n_readers, 0.0);
  for (std::size_t r = 0; r < cfg.n_readers; ++r) {
    if (!attached[r].empty())
      queue.push(Event{0.0, static_cast<std::uint32_t>(r), kEventStartWindow, 0});
  }

  static const obs::Counter windows_ctr = obs::counter("fleet.windows");
  static const obs::Counter delivered_ctr = obs::counter("fleet.delivered");
  // Per-reader attribution. Reader ids are bounded by the deployment (a few
  // dozen at most in the shipped scenarios), far under the cap, so every
  // reader gets its own series and the snapshot stays deterministic.
  static const obs::CounterFamily windows_by_reader(
      obs::Registry::global(), "fleet.windows", 256);
  static const obs::CounterFamily delivered_by_reader(
      obs::Registry::global(), "fleet.delivered", 256);
  static const obs::CounterFamily polls_by_reader(
      obs::Registry::global(), "fleet.polls", 256);

  const bool record = cfg.record_series || static_cast<bool>(cfg.on_window);

  while (const auto ev = queue.pop()) {
    ++res.events;
    const std::size_t r = ev->entity;
    const std::size_t w = static_cast<std::size_t>(ev->payload);
    const double t = queue.now_s();
    const std::vector<std::uint32_t>& ids = attached[r];

    // Contention snapshot at window start: other readers mid-window within
    // interference range. Held constant over the window (the model's
    // granularity is the window, not the poll).
    std::size_t contenders = 0;
    for (std::size_t r2 = 0; r2 < cfg.n_readers; ++r2) {
      if (r2 == r || !(busy_until[r2] > t)) continue;
      if (distance_m(layout.readers[r], layout.readers[r2]) <=
          cfg.interference_range_m)
        ++contenders;
    }

    const std::size_t lo = w * kWindowAddrs;
    const std::size_t hi = std::min(lo + kWindowAddrs, ids.size());
    std::vector<FleetLinkTransport::LinkInfo> links;
    links.reserve(hi - lo);
    std::vector<std::uint8_t> population;
    population.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      FleetLinkTransport::LinkInfo link;
      link.node_id = ids[k];
      link.range_m = std::max(best_range[ids[k]], 1.0);
      links.push_back(link);
      population.push_back(static_cast<std::uint8_t>(k - lo));
    }

    const std::size_t n_links = links.size();
    const PollTally tally_before = transports[r]->tally();
    const common::Rng window_rng = rng.child(kStreamReaders + r).child(w);
    transports[r]->begin_window(std::move(links), window_rng.child(kStreamWaveform));
    transports[r]->set_contention(contenders);

    double acquisition_s = 0.0;
    if (cfg.mac_mode == MacMode::kSlotted) {
      // Slotted acquisition: this window's nodes contend for slots before
      // any ARQ poll; only resolved nodes enter the inventory. Replaces the
      // flat SINR penalty (withheld via set_slotted_mode) at slot
      // granularity.
      const std::vector<FleetLinkTransport::LinkInfo>& wl = transports[r]->links();
      std::vector<net::anticollision::Contender> contenders_in;
      contenders_in.reserve(wl.size());
      for (std::size_t k = 0; k < wl.size(); ++k) {
        net::anticollision::Contender c;
        c.id = static_cast<std::uint16_t>(k);
        c.rx_power_rel = wl[k].snr_db.to_linear().raw();
        c.delivery_prob =
            FleetLinkTransport::frame_delivery_prob(wl[k].snr_db, wire_bits);
        contenders_in.push_back(c);
      }
      common::Rng slot_rng = window_rng.child(kStreamSlotted);
      const net::anticollision::SlottedResult sres =
          net::anticollision::run_slotted_inventory(contenders_in, cfg.slotted,
                                                    slot_rng);
      res.slot_total += sres.slots;
      res.slot_idle += sres.idle_slots;
      res.slot_success += sres.success_slots;
      res.slot_collision += sres.collision_slots;
      res.slot_capture += sres.capture_slots;
      res.slotted_unresolved += contenders_in.size() - sres.resolved.size();
      // Acquisition slots are short RN16-style exchanges; charge each one
      // a reply-slot of airtime on the window clock.
      acquisition_s = static_cast<double>(sres.slots) *
                      cfg.inventory.timing.slot_duration_s();
      population.clear();
      for (const std::uint16_t id : sres.resolved)
        population.push_back(static_cast<std::uint8_t>(id));
    }

    net::InventoryResult wres;
    if (!population.empty()) {
      common::Rng poll_rng = window_rng.child(kStreamPolls);
      wres = net::run_inventory(population, cfg.inventory, nullptr, poll_rng,
                                transports[r].get());
    }
    wres.duration_s += acquisition_s;

    ++res.windows;
    windows_ctr.add(1);
    if (contenders > 0) ++res.contended_windows;
    res.delivered += wres.delivered;
    delivered_ctr.add(static_cast<std::uint64_t>(wres.delivered));
    res.polls += wres.polls;
    res.retries += wres.retries;
    res.timeouts += wres.timeouts;
    res.duplicates += wres.duplicates;
    res.acks_sent += wres.acks_sent;
    res.acks_lost += wres.acks_lost;
    res.demotions += wres.demotions;
    res.mcs_steps_up += wres.mcs_steps_up;
    res.mcs_steps_down += wres.mcs_steps_down;
    res.reconfigures += wres.reconfigures;
    res.airtime_s += wres.duration_s;

    const obs::LabelSet reader_label{{"reader", std::to_string(r)}};
    windows_by_reader.with(reader_label).inc();
    delivered_by_reader.with(reader_label).add(
        static_cast<std::uint64_t>(wres.delivered));
    polls_by_reader.with(reader_label).add(static_cast<std::uint64_t>(wres.polls));

    busy_until[r] = t + wres.duration_s + cfg.inventory.timing.guard_s;
    res.makespan_s = std::max(res.makespan_s, busy_until[r]);

    if (record) {
      const PollTally& ta = transports[r]->tally();
      WindowPoint wp;
      wp.seq = static_cast<std::uint64_t>(res.windows - 1);
      wp.t_close_s = busy_until[r];
      wp.reader = static_cast<std::uint32_t>(r);
      wp.window = static_cast<std::uint64_t>(w);
      wp.contenders = contenders;
      wp.links = n_links;
      wp.delivered = wres.delivered;
      wp.polls = wres.polls;
      wp.retries = wres.retries;
      wp.timeouts = wres.timeouts;
      wp.escalations =
          (ta.escalations_marginal - tally_before.escalations_marginal) +
          (ta.escalations_contention - tally_before.escalations_contention);
      wp.waveform_polls = ta.waveform_polls - tally_before.waveform_polls;
      wp.airtime_s = wres.duration_s;
      if (cfg.record_series) res.series.push_back(wp);
      if (cfg.on_window) cfg.on_window(wp);
    }
    if (hi < ids.size()) {
      queue.push(Event{busy_until[r], static_cast<std::uint32_t>(r),
                       kEventStartWindow, static_cast<std::uint64_t>(w + 1)});
    }
  }

  for (const auto& tp : transports) {
    const PollTally& t = tp->tally();
    res.tally.budget_polls += t.budget_polls;
    res.tally.waveform_polls += t.waveform_polls;
    res.tally.escalations_marginal += t.escalations_marginal;
    res.tally.escalations_contention += t.escalations_contention;
    res.tally.waveform_cap_hits += t.waveform_cap_hits;
    res.tally.contended_polls += t.contended_polls;
  }
  res.complete = res.delivered == res.assigned;

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::size_t v :
       {res.readers, res.nodes, res.assigned, res.unreachable, res.delivered,
        res.polls, res.retries, res.timeouts, res.duplicates, res.acks_sent,
        res.acks_lost, res.demotions, res.windows, res.events,
        res.contended_windows, res.tally.budget_polls, res.tally.waveform_polls,
        res.tally.escalations_marginal, res.tally.escalations_contention,
        res.tally.waveform_cap_hits, res.tally.contended_polls}) {
    h = fnv1a(h, static_cast<std::uint64_t>(v));
  }
  // Feature-gated counters fold in only when their feature is on, so every
  // historical digest (penalty MAC, no ladder) is byte-identical.
  if (cfg.mac_mode == MacMode::kSlotted) {
    for (const std::size_t v :
         {res.slot_total, res.slot_idle, res.slot_success, res.slot_collision,
          res.slot_capture, res.slotted_unresolved}) {
      h = fnv1a(h, static_cast<std::uint64_t>(v));
    }
  }
  if (cfg.inventory.ladder != nullptr) {
    for (const std::size_t v :
         {res.mcs_steps_up, res.mcs_steps_down, res.reconfigures}) {
      h = fnv1a(h, static_cast<std::uint64_t>(v));
    }
  }
  res.digest = fnv1a(h, res.complete ? 1 : 0);
  return res;
}

std::vector<FleetResult> run_fleet_replicates(const FleetConfig& cfg,
                                              std::size_t n_runs,
                                              const common::Rng& rng) {
  std::vector<FleetResult> out(n_runs);
  common::parallel_for(std::size_t{0}, n_runs, [&](std::size_t k) {
    const common::Rng run_rng = rng.child(k);
    out[k] = run_fleet(cfg, run_rng);
  });
  return out;
}

}  // namespace vab::sim::fleet
