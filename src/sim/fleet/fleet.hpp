// Fleet-scale inventory simulator: many readers, 1e3..1e5 backscatter nodes,
// one spatially partitioned acoustic medium.
//
// Architecture (one seeded run):
//  - layout: node/reader positions drawn from a dedicated child stream, then
//    frozen into a SpatialGrid (range queries, ascending-id results).
//  - assignment: every node attaches to its nearest reader within
//    max_link_range_m; the rest are counted unreachable, never polled.
//  - addressing: MAC addresses are 8-bit, so each reader inventories its
//    nodes in address-reuse *windows* of up to kWindowAddrs links
//    (RFID-session style). Window w of reader r draws exclusively from
//    rng.child(r).child(w) streams.
//  - scheduling: a deterministic event queue interleaves the readers'
//    windows on the virtual clock. A reader polled while another reader is
//    mid-window within interference_range_m sees contention: an SINR
//    penalty per contender in the budget model, and (policy permitting)
//    escalation of those polls to waveform fidelity.
//  - PHY: every poll crosses a FleetLinkTransport (budget fidelity by
//    default, waveform for marginal/contended links) driving the *real*
//    ReaderMac/NodeMac ARQ via net::poll_exchange.
//
// Determinism contract: a run is a pure function of FleetConfig (including
// seed). The event loop is serial; parallelism lives one level up —
// run_fleet_replicates fans independent seeded runs over the parallel
// engine, and per-run child streams make the results invariant to thread
// count. `FleetResult::digest` folds every integer protocol outcome into an
// FNV-1a hash, so bit-identity across thread counts (or machines with the
// same libm) is one comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/anticollision/slotted.hpp"
#include "net/inventory.hpp"
#include "sim/fleet/medium.hpp"
#include "sim/fleet/transport.hpp"
#include "sim/scenario.hpp"

namespace vab::sim::fleet {

/// How a window's contention is modelled.
enum class MacMode : std::uint8_t {
  /// Historical model: a flat SINR penalty per concurrent in-range reader,
  /// applied to every poll of the window by FleetLinkTransport.
  kSinrPenalty,
  /// Slotted Q-style acquisition (net::anticollision) runs first: nodes
  /// contend for slots, collisions resolve via Q-adaptation and capture,
  /// and only *resolved* nodes are ARQ-polled — with the transport's SINR
  /// penalty withheld (the two contention models are mutually exclusive).
  kSlotted,
};

/// Usable MAC addresses per address-reuse window (8-bit space minus the
/// broadcast address, minus headroom for discovery/control addresses).
inline constexpr std::size_t kWindowAddrs = 192;

/// One closed address window, observed on the virtual clock. The window
/// sequence number and close time are pure functions of the config+seed, so
/// a recorded series is as deterministic as the digest itself.
struct WindowPoint {
  std::uint64_t seq = 0;     ///< run-global window sequence (pop order)
  double t_close_s = 0.0;    ///< virtual time when the window's reader idles
  std::uint32_t reader = 0;
  std::uint64_t window = 0;  ///< per-reader address-window index
  std::size_t contenders = 0;
  std::size_t links = 0;     ///< links polled in this window
  std::size_t delivered = 0;
  std::size_t polls = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t escalations = 0;  ///< marginal + contention escalations
  std::size_t waveform_polls = 0;
  double airtime_s = 0.0;
};

struct FleetConfig {
  /// Per-link base scenario; each link re-ranges it to its own geometry.
  Scenario scenario{};
  std::size_t n_readers = 1;
  std::size_t n_nodes = 100;
  /// Deployment square side (m). Readers sit on a coarse internal grid,
  /// nodes land uniformly at random.
  double area_m = 400.0;
  /// Spatial-partition cell size (m); <= 0 falls back to 1 m.
  double cell_size_m = 50.0;
  /// Nodes farther than this from every reader are unreachable.
  double max_link_range_m = 250.0;
  /// Reader-to-reader distance within which concurrent windows contend.
  double interference_range_m = 500.0;
  /// SINR penalty per concurrent in-range exchange (dB, budget model).
  /// Applied only in MacMode::kSinrPenalty.
  double contention_penalty_db = 3.0;
  /// Contention model; kSinrPenalty reproduces every historical digest.
  MacMode mac_mode = MacMode::kSinrPenalty;
  /// Slotted-acquisition parameters (MacMode::kSlotted only).
  net::anticollision::QConfig slotted{};
  FidelityPolicy fidelity{};
  /// MAC timing / ARQ / poll budget applied per address window.
  net::InventoryConfig inventory{};
  /// Collect a WindowPoint per closed window into FleetResult::series.
  /// Purely observational: the digest and every protocol outcome are
  /// bit-identical with this on or off.
  bool record_series = false;
  /// Live per-window hook, invoked synchronously inside the (serial) event
  /// loop as each window closes. Same observational guarantee. Callers
  /// fanning replicates over threads must make the callback thread-safe.
  std::function<void(const WindowPoint&)> on_window;
};

/// Aggregate outcome of one fleet run. All counters are integers so the
/// digest (and every cross-thread identity check) is FP-free.
struct FleetResult {
  std::size_t readers = 0;
  std::size_t nodes = 0;
  std::size_t assigned = 0;     ///< nodes attached to some reader
  std::size_t unreachable = 0;  ///< nodes out of range of every reader
  std::size_t delivered = 0;    ///< assigned nodes with an accepted report
  std::size_t polls = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t duplicates = 0;
  std::size_t acks_sent = 0;
  std::size_t acks_lost = 0;
  std::size_t demotions = 0;
  std::size_t windows = 0;  ///< address windows inventoried
  std::size_t events = 0;   ///< events popped from the queue
  std::size_t contended_windows = 0;
  /// Slotted-MAC accounting (all zero in MacMode::kSinrPenalty; folded into
  /// the digest only in kSlotted so historical digests are untouched).
  std::size_t slot_total = 0;
  std::size_t slot_idle = 0;
  std::size_t slot_success = 0;
  std::size_t slot_collision = 0;
  std::size_t slot_capture = 0;
  std::size_t slotted_unresolved = 0;  ///< contenders unresolved at window end
  /// MCS accounting (all zero without a ladder; digest-folded only then).
  std::size_t mcs_steps_up = 0;
  std::size_t mcs_steps_down = 0;
  std::size_t reconfigures = 0;
  PollTally tally;              ///< fidelity/escalation accounting
  double makespan_s = 0.0;      ///< virtual time when the last reader went idle
  double airtime_s = 0.0;       ///< summed exchange airtime across readers
  double waterfall_snr_db = 0.0;
  std::uint64_t digest = 0;  ///< FNV-1a over the integer outcomes above
  bool complete = false;     ///< every assigned node delivered
  /// Per-window time series (populated when FleetConfig::record_series is
  /// set); ordered by event-loop pop, i.e. by (virtual time, push seq).
  /// Deliberately excluded from the digest: the digest certifies protocol
  /// outcomes, and must not change when observation is toggled.
  std::vector<WindowPoint> series;
};

/// Deterministic deployment geometry for one run (exposed for tests).
struct FleetLayout {
  std::vector<Position> readers;
  std::vector<Position> nodes;
};

/// Positions drawn from `rng.child(...)` streams; the parent never advances.
FleetLayout make_layout(const FleetConfig& cfg, const common::Rng& rng);

/// One seeded fleet run; pure function of (cfg, rng state). Serial.
FleetResult run_fleet(const FleetConfig& cfg, const common::Rng& rng);

/// `n_runs` independent replicates (run k seeds from rng.child(k)), fanned
/// over the parallel engine; the result order and every result are
/// invariant to the thread count.
std::vector<FleetResult> run_fleet_replicates(const FleetConfig& cfg,
                                              std::size_t n_runs,
                                              const common::Rng& rng);

}  // namespace vab::sim::fleet
