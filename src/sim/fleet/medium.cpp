#include "sim/fleet/medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vab::sim::fleet {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

SpatialGrid::SpatialGrid(std::vector<Position> points, common::Meters cell_size)
    : points_(std::move(points)),
      cell_size_m_(cell_size.raw() > 0.0 ? cell_size.raw() : 1.0) {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  if (!points_.empty()) {
    min_x = max_x = points_.front().x_m;
    min_y = max_y = points_.front().y_m;
    for (const Position& p : points_) {
      min_x = std::min(min_x, p.x_m);
      max_x = std::max(max_x, p.x_m);
      min_y = std::min(min_y, p.y_m);
      max_y = std::max(max_y, p.y_m);
    }
  }
  min_x_ = min_x;
  min_y_ = min_y;
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor((max_x - min_x) / cell_size_m_)) + 1);
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor((max_y - min_y) / cell_size_m_)) + 1);

  // Stable counting sort into CSR: two passes, ids within a cell ascend.
  std::vector<std::size_t> counts(nx_ * ny_ + 1, 0);
  for (const Position& p : points_) ++counts[cell_of(p) + 1];
  for (std::size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  offsets_ = counts;
  ids_.resize(points_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t id = 0; id < points_.size(); ++id)
    ids_[cursor[cell_of(points_[id])]++] = id;
}

std::size_t SpatialGrid::cell_of(const Position& p) const {
  const auto clamp_idx = [](double v, std::size_t n) {
    if (!(v > 0.0)) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t cx = clamp_idx((p.x_m - min_x_) / cell_size_m_, nx_);
  const std::size_t cy = clamp_idx((p.y_m - min_y_) / cell_size_m_, ny_);
  return cy * nx_ + cx;
}

void SpatialGrid::query(const Position& p, common::Meters radius,
                        std::vector<std::uint32_t>& out) const {
  const double radius_m = radius.raw();
  out.clear();
  if (points_.empty() || !(radius_m >= 0.0)) return;
  const auto cell_range = [&](double v, double mn, std::size_t n) {
    const double lo = (v - radius_m - mn) / cell_size_m_;
    const double hi = (v + radius_m - mn) / cell_size_m_;
    const std::size_t lo_i =
        lo > 0.0 ? std::min(static_cast<std::size_t>(lo), n - 1) : 0;
    const std::size_t hi_i =
        hi > 0.0 ? std::min(static_cast<std::size_t>(hi), n - 1) : 0;
    return std::pair<std::size_t, std::size_t>{lo_i, hi_i};
  };
  const auto [cx0, cx1] = cell_range(p.x_m, min_x_, nx_);
  const auto [cy0, cy1] = cell_range(p.y_m, min_y_, ny_);
  for (std::size_t cy = cy0; cy <= cy1; ++cy) {
    for (std::size_t cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = cy * nx_ + cx;
      for (std::size_t k = offsets_[c]; k < offsets_[c + 1]; ++k) {
        const std::uint32_t id = ids_[k];
        if (distance_m(points_[id], p) <= radius_m) out.push_back(id);
      }
    }
  }
  // Cells were visited row-major, so results need one sort to be globally
  // ascending (and therefore deterministic for every consumer).
  std::sort(out.begin(), out.end());
}

}  // namespace vab::sim::fleet
