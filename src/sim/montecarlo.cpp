#include "sim/montecarlo.hpp"

namespace vab::sim {

std::vector<SweepPoint> ber_vs_range_sweep(const Scenario& scenario, const rvec& ranges,
                                           std::size_t trials, std::size_t bits_per_trial,
                                           common::Rng& rng) {
  const LinkBudget budget(scenario);
  std::vector<SweepPoint> out;
  out.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    common::Rng trial_rng = rng.child(i);
    const auto stats = budget.monte_carlo(ranges[i], trials, bits_per_trial, trial_rng);
    SweepPoint p;
    p.range_m = ranges[i];
    p.ber = stats.ber();
    p.snr_db = stats.mean_snr_db;
    p.bits = stats.bits;
    p.errors = stats.errors;
    out.push_back(p);
  }
  return out;
}

WaveformStats run_waveform_trials(const Scenario& scenario, std::size_t n_trials,
                                  std::size_t payload_bits, common::Rng& rng) {
  WaveformStats stats;
  stats.trials = n_trials;
  for (std::size_t t = 0; t < n_trials; ++t) {
    common::Rng trial_rng = rng.child(t);
    WaveformSimulator sim(scenario, trial_rng);
    const bitvec payload = trial_rng.random_bits(payload_bits);
    const auto res = sim.run_trial(payload);
    stats.total_bits += payload_bits;
    stats.bit_errors += res.bit_errors;
    if (res.demod.sync_found) {
      ++stats.frames_synced;
      stats.mean_snr_db += res.demod.snr_db;
      stats.mean_corr_peak += res.demod.corr_peak;
      stats.mean_sic_suppression_db += res.demod.sic_suppression_db;
    }
    if (res.frame_ok) ++stats.frames_ok;
  }
  if (stats.frames_synced > 0) {
    const auto n = static_cast<double>(stats.frames_synced);
    stats.mean_snr_db /= n;
    stats.mean_corr_peak /= n;
    stats.mean_sic_suppression_db /= n;
  }
  return stats;
}

}  // namespace vab::sim
