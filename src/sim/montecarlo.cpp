#include "sim/montecarlo.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace vab::sim {

WaveformStats fold_waveform_trials(const WaveformTrialOutcome* slots,
                                   std::size_t n_trials, std::size_t payload_bits) {
  VAB_STAGE("sim.accumulate");
  WaveformStats stats;
  stats.trials = n_trials;
  for (std::size_t t = 0; t < n_trials; ++t) {
    const WaveformTrialOutcome& s = slots[t];
    stats.total_bits += payload_bits;
    stats.bit_errors += s.bit_errors;
    if (s.sync_found) {
      ++stats.frames_synced;
      stats.mean_snr_db += s.snr_db;
      stats.mean_corr_peak += s.corr_peak;
      stats.mean_sic_suppression_db += s.sic_suppression_db;
    }
    if (s.frame_ok) ++stats.frames_ok;
  }
  if (stats.frames_synced > 0) {
    const auto n = static_cast<double>(stats.frames_synced);
    stats.mean_snr_db /= n;
    stats.mean_corr_peak /= n;
    stats.mean_sic_suppression_db /= n;
  }
  return stats;
}

WaveformTrialOutcome run_waveform_trial(const Scenario& scenario,
                                        std::size_t payload_bits,
                                        const common::Rng& rng, std::size_t t) {
  static const obs::Counter trials = obs::counter("sim.trials");
  trials.inc();
  common::Rng trial_rng = rng.child(t);
  WaveformSimulator sim(scenario, trial_rng);
  const bitvec payload = trial_rng.random_bits(payload_bits);
  const auto res = sim.run_trial(payload);
  WaveformTrialOutcome s;
  s.bit_errors = res.bit_errors;
  s.sync_found = res.demod.sync_found;
  s.frame_ok = res.frame_ok;
  s.snr_db = res.demod.snr_db;
  s.corr_peak = res.demod.corr_peak;
  s.sic_suppression_db = res.demod.sic_suppression_db;
  return s;
}

std::vector<SweepPoint> ber_vs_range_sweep(const Scenario& scenario, const rvec& ranges,
                                           std::size_t trials, std::size_t bits_per_trial,
                                           common::Rng& rng) {
  const LinkBudget budget(scenario);
  std::vector<SweepPoint> out;
  out.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    VAB_SPAN("sim.sweep_point");
    common::Rng point_rng = rng.child(i);
    // monte_carlo fans its trials out over the pool internally.
    const auto stats =
        budget.monte_carlo(common::Meters{ranges[i]}, trials, bits_per_trial, point_rng);
    SweepPoint p;
    p.range_m = ranges[i];
    p.ber = stats.ber();
    p.snr_db = stats.mean_snr_db;
    p.bits = stats.bits;
    p.errors = stats.errors;
    out.push_back(p);
  }
  return out;
}

WaveformStats run_waveform_trials(const Scenario& scenario, std::size_t n_trials,
                                  std::size_t payload_bits, common::Rng& rng) {
  VAB_STAGE("sim.waveform_trials");
  std::vector<WaveformTrialOutcome> slots(n_trials);
  common::parallel_for(0, n_trials, [&](std::size_t t) {
    slots[t] = run_waveform_trial(scenario, payload_bits, rng, t);
  });
  return fold_waveform_trials(slots.data(), n_trials, payload_bits);
}

std::vector<WaveformStats> run_waveform_batch(const std::vector<WaveformJob>& jobs) {
  VAB_STAGE("sim.waveform_batch");
  // Flatten every (job, trial) pair into one index space.
  std::vector<std::size_t> offsets(jobs.size() + 1, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j)
    offsets[j + 1] = offsets[j] + jobs[j].trials;
  const std::size_t total = offsets.back();

  std::vector<WaveformTrialOutcome> slots(total);
  common::parallel_for(0, total, [&](std::size_t flat) {
    const std::size_t j =
        static_cast<std::size_t>(std::upper_bound(offsets.begin(), offsets.end(), flat) -
                                 offsets.begin()) -
        1;
    const std::size_t t = flat - offsets[j];
    slots[flat] = run_waveform_trial(jobs[j].scenario, jobs[j].payload_bits,
                                     jobs[j].rng, t);
  });

  std::vector<WaveformStats> out;
  out.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j)
    out.push_back(fold_waveform_trials(slots.data() + offsets[j], jobs[j].trials,
                                       jobs[j].payload_bits));
  return out;
}

}  // namespace vab::sim
