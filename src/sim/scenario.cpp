#include "sim/scenario.hpp"

#include <algorithm>

namespace vab::sim {

Environment river_environment() {
  Environment e;
  e.name = "river";
  e.water.temperature_c = 15.0;
  e.water.salinity_ppt = 0.5;
  e.water.depth_m = 5.0;
  e.water.ph = 7.5;
  e.noise.shipping = 0.6;
  e.noise.wind_speed_mps = 4.0;
  e.noise.site_floor_db = 56.0;  // urban river: boat traffic, machinery
  e.multipath.water_depth_m = 5.0;
  e.multipath.surface_loss_db = 3.0;  // wind-roughened surface at 18.5 kHz
  e.multipath.bottom_loss_db = 12.0;  // soft mud bottom
  e.multipath.max_order = 4;
  e.multipath.absorption_freq_hz = 18500.0;
  e.multipath.water = e.water;
  // Shallow waveguide: between cylindrical and practical spreading.
  e.spreading_coeff = 12.0;
  e.fading_sigma_db = 3.0;
  return e;
}

Environment ocean_environment() {
  Environment e;
  e.name = "ocean";
  e.water.temperature_c = 12.0;
  e.water.salinity_ppt = 35.0;
  e.water.depth_m = 20.0;
  e.water.ph = 8.0;
  e.noise.shipping = 0.4;
  e.noise.wind_speed_mps = 3.0;   // calm sea state for the deployment window
  e.noise.site_floor_db = 42.0;
  e.multipath.water_depth_m = 20.0;
  e.multipath.surface_loss_db = 2.0;  // mild swell
  e.multipath.bottom_loss_db = 10.0;  // sand
  e.multipath.max_order = 4;
  e.multipath.absorption_freq_hz = 18500.0;
  e.multipath.water = e.water;
  e.spreading_coeff = 14.0;  // coastal duct, not fully spherical
  e.fading_sigma_db = 4.0;
  return e;
}

std::vector<channel::PathTap> forward_taps(const Scenario& s) {
  channel::MultipathConfig mp = s.env.multipath;
  mp.spreading_coeff = s.env.spreading_coeff;
  return channel::image_method_taps(common::Meters{s.range_m},
                                    common::Meters{s.reader.depth_m},
                                    common::Meters{s.node.depth_m},
                                    s.env.sound_speed(), mp);
}

std::vector<channel::PathTap> return_taps(const Scenario& s) {
  channel::MultipathConfig mp = s.env.multipath;
  mp.spreading_coeff = s.env.spreading_coeff;
  return channel::image_method_taps(common::Meters{s.range_m},
                                    common::Meters{s.node.depth_m},
                                    common::Meters{s.reader.depth_m},
                                    s.env.sound_speed(), mp);
}

std::vector<channel::PathTap> blast_taps(const Scenario& s) {
  const double sep = std::max(s.reader.tx_rx_separation_m, 0.1);
  return {channel::PathTap{sep / s.env.sound_speed(), 1.0 / sep, 0, 0}};
}

namespace {
Scenario base_scenario(Environment env) {
  Scenario s;
  s.env = std::move(env);
  s.phy.fs_hz = 96000.0;
  s.phy.carrier_hz = 18500.0;
  s.phy.bitrate_bps = 500.0;
  s.reader.depth_m = 2.0;
  s.node.depth_m = s.env.multipath.water_depth_m / 2.0;
  return s;
}
}  // namespace

Scenario vab_river_scenario() {
  Scenario s = base_scenario(river_environment());
  s.node.array.n_elements = 8;
  s.node.array.mode = vanatta::ArrayMode::kVanAtta;
  s.node.array.scheme = vanatta::ModulationScheme::kPolarity;
  s.node.array.element_efficiency = 0.75;  // matched (the E7 co-design)
  s.node.array.f_design_hz = s.phy.carrier_hz;
  return s;
}

Scenario hostile_river_scenario() {
  Scenario s = vab_river_scenario();
  // ~20% mean burst loss: good->bad 0.05, bad->good 0.30 gives pi_bad ~0.14
  // with loss 1.0 in bursts plus a 5% good-state floor.
  s.fault.burst.p_good_to_bad = 0.05;
  s.fault.burst.p_bad_to_good = 0.30;
  s.fault.burst.loss_good = 0.05;
  s.fault.burst.loss_bad = 1.0;
  s.fault.wake_miss_prob = 0.05;
  s.fault.snr_dip_prob = 0.1;
  s.fault.snr_dip_db = 6.0;
  return s;
}

Scenario vab_ocean_scenario() {
  Scenario s = vab_river_scenario();
  s.env = ocean_environment();
  s.node.depth_m = s.env.multipath.water_depth_m / 2.0;
  return s;
}

Scenario pab_river_scenario() {
  Scenario s = base_scenario(river_environment());
  s.node.array.n_elements = 1;
  s.node.array.mode = vanatta::ArrayMode::kSingleElement;
  s.node.array.scheme = vanatta::ModulationScheme::kOnOff;
  s.node.array.element_efficiency = 0.55;  // no matching co-design
  s.node.array.f_design_hz = s.phy.carrier_hz;
  return s;
}

}  // namespace vab::sim
