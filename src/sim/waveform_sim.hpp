// Full waveform-level end-to-end trial:
//
//   projector carrier --forward multipath--> node
//   node: reflection-coefficient sequence (array modulation + static leak)
//   node --return multipath--> hydrophone  (+ direct projector blast + noise)
//   reader demodulator -> bits
//
// This exercises every DSP block under the real impairments (multipath ISI,
// carrier blast, Wenz noise, Doppler) and is the ground truth the analytic
// link budget is calibrated against.
#pragma once

#include <cstddef>
#include <optional>

#include "channel/waveform_channel.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "phy/modem.hpp"
#include "sim/scenario.hpp"

namespace vab::sim {

struct WaveformTrialResult {
  phy::DemodResult demod;
  bitvec tx_bits;
  std::size_t bit_errors = 0;
  std::size_t fec_corrections = 0;  ///< Hamming blocks repaired (coded runs)
  bool frame_ok = false;          ///< sync found and zero bit errors
  double incident_spl_at_node_db = 0.0;
};

class WaveformSimulator {
 public:
  WaveformSimulator(Scenario scenario, common::Rng& rng);

  /// Runs one uplink trial with the given payload bits.
  WaveformTrialResult run_trial(const bitvec& payload);

  /// Node-side reflection amplitude factors (modulated amplitude per state,
  /// and static leak), exposed for tests.
  double modulated_amplitude() const { return mod_amp_lin_; }
  double static_amplitude() const { return static_amp_lin_; }

  const Scenario& scenario() const { return scenario_; }

 private:
  /// `start_offset` delays the frame: the node begins its transmission only
  /// after the carrier reaches it (carrier-detect trigger). Writes the
  /// per-sample reflection coefficient into `coef` (resized to n_samples).
  void node_reflection_sequence(const bitvec& payload, std::size_t n_samples,
                                std::size_t start_offset, rvec& coef) const;

  Scenario scenario_;
  common::Rng* rng_;
  /// Engaged when the scenario carries a non-empty FaultPlan; applied to the
  /// return leg (SNR dips on the backscattered signal).
  std::optional<fault::FaultInjector> fault_;
  vanatta::VanAttaArray array_;
  phy::BackscatterModulator modulator_;
  phy::ReaderDemodulator demodulator_;
  double mod_amp_lin_ = 0.0;     ///< absolute linear reflection amplitude (1 m ref)
  double static_amp_lin_ = 0.0;
};

}  // namespace vab::sim
