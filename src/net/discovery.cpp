#include "net/discovery.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::net {

namespace {
// Discovery-round observability: slot accounting across all runs.
struct DiscoveryMetrics {
  obs::Counter rounds = obs::counter("net.discovery.rounds");
  obs::Counter slots = obs::counter("net.discovery.slots");
  obs::Counter singletons = obs::counter("net.discovery.singletons");
  obs::Counter collisions = obs::counter("net.discovery.collisions");
  obs::Counter empties = obs::counter("net.discovery.empties");

  static DiscoveryMetrics& get() {
    static DiscoveryMetrics* m = new DiscoveryMetrics;  // leaked: read at exit
    return *m;
  }
};
}  // namespace

DiscoveryResult run_discovery(const std::vector<std::uint8_t>& population,
                              const DiscoveryConfig& cfg, common::Rng& rng) {
  if (population.empty()) throw std::invalid_argument("empty population");
  {
    std::set<std::uint8_t> uniq(population.begin(), population.end());
    if (uniq.size() != population.size())
      throw std::invalid_argument("duplicate node addresses");
  }

  VAB_STAGE("net.discovery");
  DiscoveryMetrics& metrics = DiscoveryMetrics::get();
  DiscoveryResult result;
  std::set<std::uint8_t> pending(population.begin(), population.end());
  double qfp = static_cast<double>(cfg.initial_q);

  for (std::size_t round = 0; round < cfg.max_rounds && !pending.empty(); ++round) {
    VAB_SPAN("net.discovery.round");
    DiscoveryRound r;
    r.q = static_cast<std::uint8_t>(std::clamp(std::lround(qfp), 0L,
                                               static_cast<long>(cfg.max_q)));
    r.slots = static_cast<std::size_t>(1) << r.q;
    result.total_slots += r.slots;

    // Every undiscovered node picks a slot uniformly. A duty-cycled node
    // that sleeps through the announcement sits this round out entirely
    // (fault-injection hook; draws come from the injector's own stream so
    // the null-hook path is bit-identical).
    std::map<std::size_t, std::vector<std::uint8_t>> slot_map;
    for (auto addr : pending) {
      if (cfg.fault && cfg.fault->wake_missed()) continue;
      const auto slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long>(r.slots) - 1));
      slot_map[slot].push_back(addr);
    }

    for (std::size_t slot = 0; slot < r.slots; ++slot) {
      const auto it = slot_map.find(slot);
      if (it == slot_map.end()) {
        ++r.empties;
        qfp = std::max(0.0, qfp - cfg.q_step_down);
      } else if (it->second.size() == 1) {
        ++r.singletons;
        // Singleton decodes unless the channel eats it — via the clean
        // i.i.d. loss probability or an injected burst-loss episode.
        const bool clean_loss = rng.coin(cfg.reply_loss_prob);
        const bool burst_loss = cfg.fault && cfg.fault->reply_lost();
        if (!clean_loss && !burst_loss) {
          r.discovered.push_back(it->second.front());
        }
      } else {
        ++r.collisions;
        qfp = std::min(static_cast<double>(cfg.max_q), qfp + cfg.q_step_up);
      }
    }

    metrics.rounds.inc();
    metrics.slots.add(r.slots);
    metrics.singletons.add(r.singletons);
    metrics.collisions.add(r.collisions);
    metrics.empties.add(r.empties);

    for (auto addr : r.discovered) {
      pending.erase(addr);
      result.discovered.insert(addr);
    }
    result.rounds.push_back(std::move(r));
  }

  result.complete = pending.empty();
  return result;
}

}  // namespace vab::net
