#include "net/app.hpp"

#include <algorithm>
#include <cmath>

namespace vab::net {

namespace {
std::uint16_t clamp_u16(double v) {
  return static_cast<std::uint16_t>(std::clamp(v, 0.0, 65535.0));
}
}  // namespace

bytes encode_reading(const SensorReading& r) {
  const std::uint16_t t =
      clamp_u16(std::round((r.temperature_c + 40.0) / kTempResolutionC));
  const std::uint16_t p = clamp_u16(std::round(r.pressure_kpa / kPressureResolutionKpa));
  bytes out(kReadingBytes);
  out[0] = static_cast<std::uint8_t>(t >> 8);
  out[1] = static_cast<std::uint8_t>(t & 0xFF);
  out[2] = static_cast<std::uint8_t>(p >> 8);
  out[3] = static_cast<std::uint8_t>(p & 0xFF);
  out[4] = static_cast<std::uint8_t>(r.battery_mv >> 8);
  out[5] = static_cast<std::uint8_t>(r.battery_mv & 0xFF);
  return out;
}

std::optional<SensorReading> decode_reading(const bytes& data) {
  if (data.size() != kReadingBytes) return std::nullopt;
  SensorReading r;
  const auto t = static_cast<std::uint16_t>((data[0] << 8) | data[1]);
  const auto p = static_cast<std::uint16_t>((data[2] << 8) | data[3]);
  r.temperature_c = static_cast<double>(t) * kTempResolutionC - 40.0;
  r.pressure_kpa = static_cast<double>(p) * kPressureResolutionKpa;
  r.battery_mv = static_cast<std::uint16_t>((data[4] << 8) | data[5]);
  return r;
}

}  // namespace vab::net
