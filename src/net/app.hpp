// Application-layer sensor payloads for coastal-monitoring nodes.
//
// Readings are packed fixed-point to keep uplink frames short: at 500 bps a
// byte costs 16 ms of airtime, so a full report is 6 bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace vab::net {

struct SensorReading {
  double temperature_c = 0.0;   ///< [-40, +87.67] at 1/500 C resolution
  double pressure_kpa = 0.0;    ///< [0, 6553.5] at 0.1 kPa resolution
  std::uint16_t battery_mv = 0; ///< storage-capacitor voltage (energy state)
};

/// Wire size of a packed reading (2 bytes per field). The MAC payload
/// budget and the inventory engine size slots from this.
inline constexpr std::size_t kReadingBytes = 6;

/// Packs a reading into kReadingBytes (2 per field, big-endian fixed point).
bytes encode_reading(const SensorReading& r);

/// Unpacks; nullopt if the buffer is not exactly kReadingBytes.
std::optional<SensorReading> decode_reading(const bytes& data);

/// Round-trip quantization error bounds, used by tests.
inline constexpr double kTempResolutionC = 1.0 / 500.0;
inline constexpr double kPressureResolutionKpa = 0.1;

}  // namespace vab::net
