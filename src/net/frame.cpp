#include "net/frame.hpp"

#include <stdexcept>

#include "phy/coding.hpp"

namespace vab::net {

bytes serialize(const Frame& f) {
  if (f.payload.size() > kMaxPayload) throw std::invalid_argument("payload too large");
  bytes out;
  out.reserve(f.wire_size());
  out.push_back(f.addr);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.seq);
  out.push_back(static_cast<std::uint8_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return phy::append_crc(out);
}

bitvec serialize_bits(const Frame& f) { return phy::bits_from_bytes(serialize(f)); }

std::optional<Frame> parse(const bytes& wire) {
  bytes body;
  if (!phy::check_and_strip_crc(wire, body)) return std::nullopt;
  if (body.size() < 4) return std::nullopt;
  Frame f;
  f.addr = body[0];
  f.type = static_cast<FrameType>(body[1]);
  f.seq = body[2];
  const std::size_t len = body[3];
  if (body.size() != 4 + len) return std::nullopt;
  f.payload.assign(body.begin() + 4, body.end());
  return f;
}

std::optional<Frame> parse_bits(const bitvec& wire_bits) {
  if (wire_bits.size() % 8 != 0) return std::nullopt;
  return parse(phy::bytes_from_bits(wire_bits));
}

}  // namespace vab::net
