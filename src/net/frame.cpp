#include "net/frame.hpp"

#include <stdexcept>

#include "phy/coding.hpp"

namespace vab::net {

bytes serialize(const Frame& f) {
  if (f.payload.size() > kMaxPayload) throw std::invalid_argument("payload too large");
  bytes out;
  out.reserve(f.wire_size());
  out.push_back(f.addr);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.seq);
  out.push_back(static_cast<std::uint8_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return phy::append_crc(out);
}

bitvec serialize_bits(const Frame& f) { return phy::bits_from_bytes(serialize(f)); }

const char* parse_error_name(ParseError e) {
  switch (e) {
    case ParseError::kOk: return "ok";
    case ParseError::kTooShort: return "too_short";
    case ParseError::kTooLong: return "too_long";
    case ParseError::kBadCrc: return "bad_crc";
    case ParseError::kLengthMismatch: return "length_mismatch";
    case ParseError::kBadType: return "bad_type";
  }
  return "unknown";
}

namespace {
bool known_frame_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kQuery:
    case FrameType::kQueryAll:
    case FrameType::kSensorReport:
    case FrameType::kAck:
    case FrameType::kAssignSlot:
      return true;
  }
  return false;
}
}  // namespace

ParseResult parse_checked(const bytes& wire) {
  // Structural bounds first: no byte of a mis-sized buffer is interpreted.
  if (wire.size() < kMinWireSize) return {std::nullopt, ParseError::kTooShort};
  if (wire.size() > kMaxWireSize) return {std::nullopt, ParseError::kTooLong};
  bytes body;
  if (!phy::check_and_strip_crc(wire, body)) return {std::nullopt, ParseError::kBadCrc};
  // The len field must account for exactly the bytes present — a lying
  // length can therefore never drive a read past the buffer.
  const std::size_t len = body[3];
  if (body.size() != 4 + len) return {std::nullopt, ParseError::kLengthMismatch};
  if (!known_frame_type(body[1])) return {std::nullopt, ParseError::kBadType};
  Frame f;
  f.addr = body[0];
  f.type = static_cast<FrameType>(body[1]);
  f.seq = body[2];
  f.payload.assign(body.begin() + 4, body.end());
  return {f, ParseError::kOk};
}

std::optional<Frame> parse(const bytes& wire) { return parse_checked(wire).frame; }

std::optional<Frame> parse_bits(const bitvec& wire_bits) {
  if (wire_bits.size() % 8 != 0) return std::nullopt;
  return parse(phy::bytes_from_bits(wire_bits));
}

}  // namespace vab::net
