// Per-node rate adaptation over an McsLadder.
//
// The controller follows the dragonradio reconfigure-on-change discipline:
// it folds link observations into EWMAs and only *proposes* a rung change
// when the evidence crosses a hysteresis band and a minimum dwell has
// elapsed — the caller (ReaderMac) applies the change, and the node's
// modem/FEC state reconfigures only when the commanded rung differs from
// the current one.
//
// Two feedback paths drive the same rung state:
//  - SNR path (preferred): the transport reports a per-poll link SNR on the
//    reference scale; the EWMA is compared against per-rung thresholds
//    derived from the ladder's analytic delivery curves. Step down when the
//    EWMA falls below the SNR where the *current* rung sustains
//    `target_delivery`; step up when it clears the SNR where the *next*
//    rung sustains it, plus `hysteresis_db`. The gap between those
//    thresholds is what prevents rung flapping under constant SNR.
//  - Outcome path (fallback, e.g. over the historical i.i.d. model): a
//    delivery EWMA (a BER proxy) is compared against fixed delivery bands.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/mcs/mcs.hpp"

namespace vab::net::mcs {

struct AdaptConfig {
  double ewma_alpha = 0.25;        ///< weight of the newest observation
  double target_delivery = 0.9;    ///< per-rung sustainable delivery target
  double hysteresis_db = 1.5;      ///< extra SNR demanded before stepping up
  std::size_t min_dwell_polls = 4; ///< polls between consecutive rung changes
  std::size_t start_rung = McsLadder::kPaperRung;  ///< clamped to the ladder
  /// Representative frame length for the threshold curves.
  std::size_t frame_bits = kValidationFrameBits;
  /// Outcome-path bands (used when no SNR measurement is available).
  double outcome_down_below = 0.7;  ///< delivery EWMA that forces a step down
  double outcome_up_above = 0.98;   ///< delivery EWMA that allows a step up
  /// Pin the controller to start_rung (fault-matrix runs that must compare
  /// rungs under identical fault schedules).
  bool frozen = false;
};

/// One node's adaptation state machine. Deterministic: decisions are a pure
/// function of the observation sequence (no RNG, no clock).
class RateController {
 public:
  RateController(const McsLadder& ladder, AdaptConfig cfg);

  /// Feeds one poll observation. `snr_ref` is the transport's measured
  /// link SNR when it has one (reference scale); `delivered` is whether the
  /// report decoded. Returns +1 / -1 when the controller stepped up / down
  /// as a result, 0 otherwise.
  int observe(std::optional<common::SnrDb> snr_ref, bool delivered);

  /// Forgets link state (node demoted to re-discovery): rung returns to
  /// start_rung, EWMAs and dwell reset.
  void reset();

  std::size_t rung() const { return rung_; }
  std::size_t polls() const { return polls_; }
  std::size_t steps_up() const { return steps_up_; }
  std::size_t steps_down() const { return steps_down_; }
  bool has_snr() const { return snr_ewma_.has_value(); }
  common::SnrDb snr_ewma() const { return common::SnrDb{snr_ewma_.value_or(0.0)}; }
  double delivery_ewma() const { return delivery_ewma_; }

  /// SNR below which `rung` cannot sustain the delivery target (step-down
  /// threshold; -inf for the bottom rung).
  common::SnrDb down_threshold(std::size_t rung_index) const;
  /// SNR above which the rung *above* `rung_index` sustains the target with
  /// hysteresis margin (step-up threshold; +inf at the top).
  common::SnrDb up_threshold(std::size_t rung_index) const;

 private:
  int try_step();

  const McsLadder* ladder_;
  AdaptConfig cfg_;
  std::vector<double> sustain_snr_db_;  ///< per-rung target-delivery SNR
  std::size_t rung_ = 0;
  std::optional<double> snr_ewma_;
  double delivery_ewma_ = 1.0;
  bool have_outcome_ = false;
  std::size_t polls_ = 0;
  std::size_t polls_at_change_ = 0;
  std::size_t steps_up_ = 0;
  std::size_t steps_down_ = 0;
};

}  // namespace vab::net::mcs
