#include "net/mcs/mcs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "phy/ber.hpp"

namespace vab::net::mcs {

namespace {

/// Hamming(7,4) block failure probability at channel-bit error rate `p`:
/// the code corrects any single error in a 7-bit block, so a block fails
/// when two or more bits flip (the interleaver justifies the i.i.d.
/// assumption by spreading fade bursts across blocks).
double hamming74_block_failure(double p) {
  const double q = 1.0 - p;
  const double q6 = q * q * q * q * q * q;
  // The subtraction cancels to ~ -1e-17 for tiny p; clamp so the delivery
  // curve stays inside [0, 1] and monotone.
  return std::max(0.0, 1.0 - q6 * q - 7.0 * p * q6);
}

}  // namespace

std::size_t McsEntry::chips_per_bit() const {
  switch (code) {
    case phy::UplinkCode::kMiller2: return 4;
    case phy::UplinkCode::kMiller4: return 8;
    case phy::UplinkCode::kFm0: break;
  }
  return 2;
}

common::Db McsEntry::code_margin() const {
  switch (code) {
    case phy::UplinkCode::kMiller2: return common::Db{kMillerMarginDbPerDoubling};
    case phy::UplinkCode::kMiller4:
      return common::Db{2.0 * kMillerMarginDbPerDoubling};
    case phy::UplinkCode::kFm0: break;
  }
  return common::Db{0.0};
}

double McsEntry::ber(common::SnrDb snr_ref) const {
  // Energy conservation: the received power is fixed, so chip energy scales
  // as 1/chip_rate. The reference rung's offset is exactly 0.0 dB, keeping
  // its curve bit-identical to the legacy ber_fm0 path.
  const double offset_db =
      10.0 * std::log10(kReferenceChipRateHz / chip_rate().raw()) +
      code_margin().raw();
  const double snr_chip = std::pow(10.0, (snr_ref.raw() + offset_db) / 10.0);
  // A bit decision coherently combines chips_per_bit chips; FM0's two-chip
  // combining is the ber_fm0 convention, so the generic expression scales
  // the antipodal argument by chips_per_bit/2 (1.0 for FM0).
  const double combining = static_cast<double>(chips_per_bit()) / 2.0;
  return phy::ber_fm0(combining * snr_chip);
}

double McsEntry::frame_delivery_prob(common::SnrDb snr_ref,
                                     std::size_t payload_bits) const {
  const double p = ber(snr_ref);
  if (!fec) return std::pow(1.0 - p, static_cast<double>(payload_bits));
  // One Hamming block per 4 data bits (nibble-padded, matching FrameCodec).
  const double blocks = static_cast<double>((payload_bits + 3) / 4);
  return std::pow(1.0 - hamming74_block_failure(p), blocks);
}

std::size_t McsEntry::air_bits(std::size_t payload_bits) const {
  if (!fec) return payload_bits;
  return (payload_bits + 3) / 4 * 7;  // nibble-padded Hamming(7,4)
}

common::Seconds McsEntry::slot_duration(std::size_t slot_payload_bytes) const {
  // Mirrors MacTiming::slot_duration_s: frame bytes on the air at this
  // rung's bitrate (FEC expansion included), 10 ms preamble/idle overhead,
  // 20% margin.
  const std::size_t frame_bits = (4 + slot_payload_bytes + 2) * 8;
  const double bits = static_cast<double>(air_bits(frame_bits));
  return common::Seconds{1.2 * (bits / bitrate_bps + 0.010)};
}

void McsEntry::apply(phy::PhyConfig& phy, phy::FecConfig& fec_cfg) const {
  phy.bitrate_bps = bitrate_bps;
  phy.uplink_code = code;
  fec_cfg.enable = fec;
}

McsLadder::McsLadder(std::vector<McsEntry> rungs) : rungs_(std::move(rungs)) {
  if (rungs_.empty()) throw std::invalid_argument("MCS ladder is empty");
  if (rungs_.size() > kMaxRungs)
    throw std::invalid_argument("MCS ladder exceeds kMaxRungs");
  for (std::size_t i = 1; i < rungs_.size(); ++i) {
    if (!(rungs_[i].data_rate_bps() > rungs_[i - 1].data_rate_bps()))
      throw std::invalid_argument("MCS ladder not ordered by data rate at rung " +
                                  std::to_string(i));
  }
  // Robustness order: a faster rung must also need strictly more SNR for
  // the same frame delivery, or "step down" would not buy robustness.
  for (std::size_t i = 1; i < rungs_.size(); ++i) {
    const common::SnrDb lo = snr_for_delivery(i - 1, 0.5, kValidationFrameBits);
    const common::SnrDb hi = snr_for_delivery(i, 0.5, kValidationFrameBits);
    if (!(hi > lo))
      throw std::invalid_argument(
          "MCS ladder not ordered by waterfall SNR at rung " + std::to_string(i));
  }
}

McsLadder McsLadder::default_ladder() {
  std::vector<McsEntry> rungs;
  rungs.push_back({"m4-125-fec", 125.0, phy::UplinkCode::kMiller4, true});
  rungs.push_back({"m2-250-fec", 250.0, phy::UplinkCode::kMiller2, true});
  rungs.push_back({"fm0-500-fec", 500.0, phy::UplinkCode::kFm0, true});
  rungs.push_back({"fm0-500", 500.0, phy::UplinkCode::kFm0, false});
  rungs.push_back({"fm0-1000", 1000.0, phy::UplinkCode::kFm0, false});
  rungs.push_back({"fm0-2000", 2000.0, phy::UplinkCode::kFm0, false});
  rungs.push_back({"fm0-4000", 4000.0, phy::UplinkCode::kFm0, false});
  return McsLadder(std::move(rungs));
}

const McsEntry& McsLadder::rung(std::size_t i) const {
  if (i >= rungs_.size()) throw std::out_of_range("MCS rung index");
  return rungs_[i];
}

common::SnrDb McsLadder::snr_for_delivery(std::size_t rung_index, double target,
                                          std::size_t payload_bits) const {
  const McsEntry& e = rung(rung_index);
  if (!(target > 0.0 && target < 1.0))
    throw std::invalid_argument("delivery target outside (0, 1)");
  double lo = -40.0, hi = 40.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (e.frame_delivery_prob(common::SnrDb{mid}, payload_bits) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return common::SnrDb{0.5 * (lo + hi)};
}

}  // namespace vab::net::mcs
