#include "net/mcs/adapt.hpp"

#include <algorithm>
#include <limits>

namespace vab::net::mcs {

RateController::RateController(const McsLadder& ladder, AdaptConfig cfg)
    : ladder_(&ladder), cfg_(cfg) {
  sustain_snr_db_.reserve(ladder.size());
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    sustain_snr_db_.push_back(
        ladder.snr_for_delivery(r, cfg_.target_delivery, cfg_.frame_bits).raw());
  }
  rung_ = std::min(cfg_.start_rung, ladder.size() - 1);
  delivery_ewma_ = cfg_.target_delivery;
}

common::SnrDb RateController::down_threshold(std::size_t rung_index) const {
  if (rung_index == 0)
    return common::SnrDb{-std::numeric_limits<double>::infinity()};
  return common::SnrDb{sustain_snr_db_[rung_index]};
}

common::SnrDb RateController::up_threshold(std::size_t rung_index) const {
  if (rung_index + 1 >= sustain_snr_db_.size())
    return common::SnrDb{std::numeric_limits<double>::infinity()};
  return common::SnrDb{sustain_snr_db_[rung_index + 1] + cfg_.hysteresis_db};
}

int RateController::observe(std::optional<common::SnrDb> snr_ref, bool delivered) {
  ++polls_;
  if (snr_ref.has_value()) {
    if (snr_ewma_.has_value()) {
      *snr_ewma_ += cfg_.ewma_alpha * (snr_ref->raw() - *snr_ewma_);
    } else {
      snr_ewma_ = snr_ref->raw();
    }
  }
  const double sample = delivered ? 1.0 : 0.0;
  if (have_outcome_) {
    delivery_ewma_ += cfg_.ewma_alpha * (sample - delivery_ewma_);
  } else {
    delivery_ewma_ = sample;
    have_outcome_ = true;
  }
  return try_step();
}

int RateController::try_step() {
  if (cfg_.frozen) return 0;
  if (polls_ - polls_at_change_ < cfg_.min_dwell_polls) return 0;
  int dir = 0;
  if (snr_ewma_.has_value()) {
    if (*snr_ewma_ < down_threshold(rung_).raw()) {
      dir = -1;
    } else if (*snr_ewma_ > up_threshold(rung_).raw()) {
      dir = +1;
    }
  } else if (have_outcome_) {
    // Outcome path: the delivery EWMA stands in for a BER estimate.
    if (delivery_ewma_ < cfg_.outcome_down_below && rung_ > 0) {
      dir = -1;
    } else if (delivery_ewma_ > cfg_.outcome_up_above &&
               rung_ + 1 < ladder_->size()) {
      dir = +1;
    }
  }
  if (dir == 0) return 0;
  rung_ = static_cast<std::size_t>(static_cast<long>(rung_) + dir);
  polls_at_change_ = polls_;
  if (dir > 0) {
    ++steps_up_;
    // A just-promoted rung has no delivery history; seed the EWMA at the
    // target so one stale low sample cannot immediately bounce it back.
    if (!snr_ewma_.has_value()) delivery_ewma_ = cfg_.target_delivery;
  } else {
    ++steps_down_;
    if (!snr_ewma_.has_value()) delivery_ewma_ = cfg_.target_delivery;
  }
  return dir;
}

void RateController::reset() {
  rung_ = std::min(cfg_.start_rung, ladder_->size() - 1);
  snr_ewma_.reset();
  delivery_ewma_ = cfg_.target_delivery;
  have_outcome_ = false;
  polls_ = 0;
  polls_at_change_ = 0;
}

}  // namespace vab::net::mcs
