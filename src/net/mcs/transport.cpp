#include "net/mcs/transport.hpp"

namespace vab::net::mcs {

AnalyticMcsTransport::AnalyticMcsTransport(const McsLadder& ladder,
                                           AnalyticMcsConfig cfg)
    : ladder_(&ladder), cfg_(cfg) {
  if (cfg_.default_rung >= ladder.size())
    cfg_.default_rung = ladder.size() - 1;
}

bool AnalyticMcsTransport::downlink_delivered(std::uint8_t /*addr*/,
                                              common::Rng& /*rng*/) {
  // The PIE downlink rides the reader's full-power carrier; as in the
  // legacy models it is assumed reliable.
  return true;
}

bool AnalyticMcsTransport::uplink_delivered(std::uint8_t addr, bytes& wire,
                                            common::Rng& rng) {
  const McsEntry& e = entry_for(addr);
  double snr = snr_db(addr).raw();
  // Fixed draw order and count regardless of rung: fade first (only when
  // fading is on), then the delivery coin, then the extra erasure coin.
  if (cfg_.fading_sigma_db > 0.0) snr += rng.gaussian(0.0, cfg_.fading_sigma_db);
  last_snr_db_ = common::SnrDb{snr};
  const std::size_t bits = wire.size() * 8;
  bool ok = rng.coin(e.frame_delivery_prob(common::SnrDb{snr}, bits));
  if (cfg_.reply_loss_prob > 0.0 && !rng.coin(1.0 - cfg_.reply_loss_prob))
    ok = false;
  return ok;
}

bool AnalyticMcsTransport::ack_delivered(std::uint8_t /*addr*/, common::Rng& rng) {
  if (cfg_.ack_loss_prob <= 0.0) return true;
  return rng.coin(1.0 - cfg_.ack_loss_prob);
}

void AnalyticMcsTransport::set_uplink_mcs(std::uint8_t addr, const McsEntry* entry) {
  commanded_[addr] = entry;
}

void AnalyticMcsTransport::set_snr_db(std::uint8_t addr, common::SnrDb snr_ref) {
  snr_override_[addr] = snr_ref;
}

common::SnrDb AnalyticMcsTransport::snr_db(std::uint8_t addr) const {
  return snr_override_[addr].value_or(common::SnrDb{cfg_.snr_ref_db});
}

const McsEntry& AnalyticMcsTransport::entry_for(std::uint8_t addr) const {
  if (commanded_[addr] != nullptr) return *commanded_[addr];
  return ladder_->rung(cfg_.default_rung);
}

}  // namespace vab::net::mcs
