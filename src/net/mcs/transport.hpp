// Analytic SNR-driven LinkTransport over an McsLadder.
//
// The historical IidLossTransport flips fixed coins; this model instead
// evaluates the *commanded rung's* frame-delivery curve at the link's SNR
// (reference scale), so the same transport exercises every rung of the
// ladder and feeds measured SNR back to the MAC's rate controllers. It is
// the i.i.d.-model counterpart of the fleet transport's budget fidelity:
// per-uplink log-normal fading around a per-address mean SNR, one coin per
// uplink against the analytic delivery probability.
//
// Determinism: draws come only from the `rng` handed to each call — one
// gaussian (when fading_sigma_db > 0) then one coin per uplink, one coin
// per ACK when ack_loss_prob > 0. The draw count per call is independent of
// the commanded rung, so fault schedules line up across rungs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "net/mcs/mcs.hpp"
#include "net/transport.hpp"

namespace vab::net::mcs {

struct AnalyticMcsConfig {
  double snr_ref_db = 6.0;     ///< default link SNR (reference scale)
  double fading_sigma_db = 0.0;///< per-uplink log-normal fade spread
  /// Rung evaluated when the MAC has not commanded one via set_uplink_mcs
  /// (fixed-rate baselines use this).
  std::size_t default_rung = McsLadder::kPaperRung;
  double reply_loss_prob = 0.0;///< extra i.i.d. uplink erasure (ARQ tests)
  double ack_loss_prob = 0.0;  ///< i.i.d. ACK erasure (ARQ tests)
};

class AnalyticMcsTransport final : public LinkTransport {
 public:
  AnalyticMcsTransport(const McsLadder& ladder, AnalyticMcsConfig cfg);

  bool downlink_delivered(std::uint8_t addr, common::Rng& rng) override;
  bool uplink_delivered(std::uint8_t addr, bytes& wire, common::Rng& rng) override;
  bool ack_delivered(std::uint8_t addr, common::Rng& rng) override;

  void set_uplink_mcs(std::uint8_t addr, const McsEntry* entry) override;
  std::optional<common::SnrDb> last_uplink_snr_db() const override {
    return last_snr_db_;
  }

  /// Overrides the link SNR for one address (heterogeneous populations).
  void set_snr_db(std::uint8_t addr, common::SnrDb snr_ref);

  common::SnrDb snr_db(std::uint8_t addr) const;
  const McsEntry& entry_for(std::uint8_t addr) const;

 private:
  const McsLadder* ladder_;
  AnalyticMcsConfig cfg_;
  std::array<std::optional<common::SnrDb>, 256> snr_override_{};
  std::array<const McsEntry*, 256> commanded_{};
  std::optional<common::SnrDb> last_snr_db_;
};

}  // namespace vab::net::mcs
