// Modulation-and-coding-scheme (MCS) ladder for the backscatter uplink.
//
// The paper's link is fixed-rate: FM0 at 500 bps, uncoded. Its own range/SNR
// waterfall shows most deployments sit far above or far below that single
// operating point, so this module turns the three PHY knobs the codebase
// already models — chip rate (bitrate), line code (FM0 / Miller-M) and FEC
// strength (Hamming(7,4) + interleaver on/off) — into a validated ladder of
// rungs, each with an analytic BER / frame-delivery curve on a common SNR
// scale.
//
// SNR convention: every curve takes the link's chip SNR *as measured at the
// reference rung* (FM0 at 500 bps, chip rate 1000 Hz) — exactly the value
// the link budget produces for the paper's scenario. A rung converts to its
// own chip SNR by energy conservation (halving the chip rate doubles the
// energy per chip) plus a small clutter-rejection margin for Miller codes
// (data pushed away from the carrier residue that SIC must absorb).
//
// The ladder is a *validated table*: construction rejects ladders that are
// not totally ordered by data rate and by robustness (waterfall SNR), so
// rate adaptation can treat "up" and "down" as meaningful directions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "phy/fec.hpp"
#include "phy/modem.hpp"

namespace vab::net::mcs {

/// Chip rate of the reference rung (FM0 at 500 bps): the scale every
/// analytic curve in this module takes its SNR argument on.
inline constexpr double kReferenceChipRateHz = 1000.0;

/// Clutter-rejection margin per doubling of chips-per-bit over FM0: Miller
/// subcarriers move the data lobe away from the carrier residue, so the
/// effective post-SIC SNR improves even though AWGN performance alone would
/// not (the gain RFID readers exploit with Miller-4 at the range limit).
inline constexpr double kMillerMarginDbPerDoubling = 1.5;

/// Frame length (bits) used when validating ladder ordering.
inline constexpr std::size_t kValidationFrameBits = 96;

/// Hard cap on ladder size: the rung index rides a 4-bit field of the
/// query-frame MCS command byte.
inline constexpr std::size_t kMaxRungs = 16;

/// One rung: a (chip rate, line code, FEC) operating point with analytic
/// error curves. All members are value types; entries live in tables.
struct McsEntry {
  std::string name;                                ///< e.g. "fm0-500"
  double bitrate_bps = 500.0;                      ///< channel bit rate
  phy::UplinkCode code = phy::UplinkCode::kFm0;
  bool fec = false;                                ///< Hamming(7,4)+interleave

  /// Chips per channel bit for the line code (2 / 4 / 8).
  std::size_t chips_per_bit() const;
  common::Hz chip_rate() const {
    return common::Hz{static_cast<double>(chips_per_bit()) * bitrate_bps};
  }
  /// Net data rate after the FEC rate penalty (4/7 when coded).
  double data_rate_bps() const {
    return bitrate_bps * (fec ? 4.0 / 7.0 : 1.0);
  }
  /// Miller clutter-rejection margin relative to FM0 (>= 0 dB).
  common::Db code_margin() const;

  /// Channel-bit error rate at reference-scale SNR `snr_ref`.
  double ber(common::SnrDb snr_ref) const;

  /// Probability a `payload_bits`-bit frame decodes (CRC-clean) at
  /// reference-scale SNR, including the FEC's single-error-per-block
  /// correction when enabled. At the reference rung this reproduces the
  /// legacy uncoded FM0 expression bit-for-bit.
  double frame_delivery_prob(common::SnrDb snr_ref, std::size_t payload_bits) const;

  /// Bits on the air for `payload_bits` of frame data (FEC expansion).
  std::size_t air_bits(std::size_t payload_bits) const;

  /// Uplink slot duration for a `slot_payload_bytes` MAC payload; the MCS
  /// analogue of MacTiming::slot_duration_s (identical at the reference
  /// rung so legacy airtime accounting is unchanged).
  common::Seconds slot_duration(std::size_t slot_payload_bytes) const;

  /// Reconfigure-on-change hook (the dragonradio MCS.hh pattern): writes
  /// this rung's modem + FEC state into the node's PHY configuration.
  void apply(phy::PhyConfig& phy, phy::FecConfig& fec_cfg) const;
};

/// A validated, totally ordered rate ladder. Ordering invariants (enforced
/// at construction, throwing std::invalid_argument):
///  - 1..kMaxRungs rungs;
///  - data_rate_bps strictly increasing with rung index (throughput order);
///  - waterfall SNR (where frame delivery crosses 50% for a
///    kValidationFrameBits frame) strictly increasing with rung index
///    (robustness order) — faster rungs need more SNR.
class McsLadder {
 public:
  explicit McsLadder(std::vector<McsEntry> rungs);

  /// The shipped ladder: Miller-4+FEC at 125 bps up to uncoded FM0 at
  /// 4 kbps, with the paper's operating point at index kPaperRung.
  static McsLadder default_ladder();
  /// Index of the paper's fixed-rate operating point (FM0, 500 bps,
  /// uncoded) within default_ladder().
  static constexpr std::size_t kPaperRung = 3;

  std::size_t size() const { return rungs_.size(); }
  const McsEntry& rung(std::size_t i) const;
  const std::vector<McsEntry>& rungs() const { return rungs_; }

  /// Reference-scale SNR where `rung`'s frame delivery crosses `target`
  /// for a `payload_bits` frame (bisection; delivery is monotone in SNR).
  common::SnrDb snr_for_delivery(std::size_t rung, double target,
                                 std::size_t payload_bits) const;

 private:
  std::vector<McsEntry> rungs_;
};

}  // namespace vab::net::mcs
