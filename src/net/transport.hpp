// The MAC <-> medium seam: how a frame crosses the water.
//
// ReaderMac/NodeMac speak frames; whether a frame survives the trip is the
// medium's business. LinkTransport abstracts that decision so the same MAC
// state machines run over any channel model — the historical i.i.d. loss
// coins (IidLossTransport, the clean-channel floor of `run_inventory`), a
// link-budget SNR -> BER -> frame-loss draw, or the full waveform pipeline.
// The fleet simulator (src/sim/fleet) plugs both abstracted and waveform
// fidelities in through this interface and switches between them per link.
//
// Determinism contract: a transport draws only from the `rng` handed to each
// call (or from streams it derived from its own construction seed), never
// from hidden state, so a fixed call sequence yields fixed outcomes.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace vab::net {

namespace mcs {
struct McsEntry;
}  // namespace mcs

/// Decides the fate of each leg of one reader<->node exchange.
class LinkTransport {
 public:
  virtual ~LinkTransport() = default;

  /// True when the query downlink reaches node `addr`. The reader-side PIE
  /// downlink rides the full-power carrier, so most models return true
  /// without drawing.
  virtual bool downlink_delivered(std::uint8_t addr, common::Rng& rng) = 0;

  /// True when the node's report survives the uplink. A transport may
  /// corrupt `wire` in place instead of dropping it (bit errors from a
  /// waveform decode); the reader's CRC then classifies the damage.
  virtual bool uplink_delivered(std::uint8_t addr, bytes& wire, common::Rng& rng) = 0;

  /// True when the reader's ACK downlink reaches the node.
  virtual bool ack_delivered(std::uint8_t addr, common::Rng& rng) = 0;

  /// Rate-adaptation seam: the MAC announces the MCS rung the next uplink
  /// from `addr` will use (nullptr = the model's fixed default). SNR-aware
  /// transports evaluate that rung's delivery curve; the base class ignores
  /// the hint so legacy models are unaffected.
  virtual void set_uplink_mcs(std::uint8_t addr, const mcs::McsEntry* entry) {
    (void)addr;
    (void)entry;
  }

  /// Link SNR (reference scale) the most recent uplink_delivered call
  /// for any address was evaluated at, when the model measures one. The
  /// MAC feeds this into per-node rate controllers; loss-coin models return
  /// nullopt and the controller falls back to delivery-outcome feedback.
  virtual std::optional<common::SnrDb> last_uplink_snr_db() const {
    return std::nullopt;
  }
};

/// The historical clean-channel model: independent loss coins per leg, with
/// the downlink assumed reliable. `run_inventory` builds one of these from
/// InventoryConfig::{reply_loss_prob, ack_loss_prob} when no transport is
/// supplied; draw order matches the pre-seam inline code exactly, so every
/// seeded inventory outcome is unchanged.
class IidLossTransport final : public LinkTransport {
 public:
  IidLossTransport(double reply_loss_prob, double ack_loss_prob)
      : reply_loss_prob_(reply_loss_prob), ack_loss_prob_(ack_loss_prob) {}

  bool downlink_delivered(std::uint8_t addr, common::Rng& rng) override;
  bool uplink_delivered(std::uint8_t addr, bytes& wire, common::Rng& rng) override;
  bool ack_delivered(std::uint8_t addr, common::Rng& rng) override;

 private:
  double reply_loss_prob_;
  double ack_loss_prob_;
};

}  // namespace vab::net
