#include "net/anticollision/slotted.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace vab::net::anticollision {

namespace {
// Slot-outcome accounting across all slotted runs: how contention resolves.
struct SlottedMetrics {
  obs::Counter slots = obs::counter("net.slotted.slots");
  obs::Counter idle = obs::counter("net.slotted.idle");
  obs::Counter success = obs::counter("net.slotted.success");
  obs::Counter collision = obs::counter("net.slotted.collision");
  obs::Counter capture = obs::counter("net.slotted.capture");
  obs::Counter decode_fail = obs::counter("net.slotted.decode_fail");

  static SlottedMetrics& get() {
    static SlottedMetrics* m = new SlottedMetrics;  // leaked: read at exit
    return *m;
  }
};

double clamp_q(double q, const QConfig& cfg) {
  return std::min(cfg.q_max, std::max(cfg.q_min, q));
}
}  // namespace

QAdapter::QAdapter(const QConfig& cfg) : cfg_(cfg), qfp_(clamp_q(cfg.q_init, cfg)) {}

std::uint8_t QAdapter::q() const {
  return static_cast<std::uint8_t>(std::llround(qfp_));
}

void QAdapter::on_slot(SlotKind kind) {
  switch (kind) {
    case SlotKind::kCollision: qfp_ = clamp_q(qfp_ + cfg_.c_up, cfg_); break;
    case SlotKind::kIdle: qfp_ = clamp_q(qfp_ - cfg_.c_down, cfg_); break;
    case SlotKind::kSuccess:
    case SlotKind::kCapture: break;
  }
}

SlottedResult run_slotted_inventory(const std::vector<Contender>& contenders,
                                    const QConfig& cfg, common::Rng& rng) {
  SlottedResult res;
  QAdapter adapter(cfg);
  std::vector<std::size_t> unresolved;
  unresolved.reserve(contenders.size());
  for (std::size_t i = 0; i < contenders.size(); ++i) unresolved.push_back(i);

  SlottedMetrics& m = SlottedMetrics::get();
  while (!unresolved.empty() && res.rounds < cfg.max_rounds) {
    const std::uint8_t round_q = adapter.q();
    const std::size_t frame = adapter.frame_slots();
    // Every unresolved contender draws its slot first, in ascending
    // contender order: the documented draw schedule.
    std::vector<std::vector<std::size_t>> occupants(frame);
    for (std::size_t idx : unresolved) {
      const auto slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame) - 1));
      occupants[slot].push_back(idx);
    }
    // Then the reader walks the frame slot by slot.
    for (std::size_t s = 0; s < frame; ++s) {
      const std::vector<std::size_t>& occ = occupants[s];
      SlotKind kind = SlotKind::kIdle;
      std::uint16_t winner_id = 0;
      if (!occ.empty()) {
        std::vector<double> powers;
        powers.reserve(occ.size());
        for (std::size_t idx : occ) powers.push_back(contenders[idx].rx_power_rel);
        const std::optional<std::size_t> won = resolve_capture(powers, cfg.capture);
        if (!won.has_value()) {
          kind = SlotKind::kCollision;
        } else {
          const std::size_t widx = occ[*won];
          // The winning reply still has to decode at its link SNR; a failed
          // decode is indistinguishable from a collision at the reader.
          if (rng.coin(contenders[widx].delivery_prob)) {
            kind = occ.size() == 1 ? SlotKind::kSuccess : SlotKind::kCapture;
            winner_id = contenders[widx].id;
            res.resolved.push_back(winner_id);
            unresolved.erase(
                std::find(unresolved.begin(), unresolved.end(), widx));
          } else {
            kind = SlotKind::kCollision;
            ++res.decode_failures;
            m.decode_fail.inc();
          }
        }
      }
      adapter.on_slot(kind);
      ++res.slots;
      m.slots.inc();
      switch (kind) {
        case SlotKind::kIdle: ++res.idle_slots; m.idle.inc(); break;
        case SlotKind::kSuccess: ++res.success_slots; m.success.inc(); break;
        case SlotKind::kCollision: ++res.collision_slots; m.collision.inc(); break;
        case SlotKind::kCapture: ++res.capture_slots; m.capture.inc(); break;
      }
      if (cfg.record_trace)
        res.trace.push_back({res.rounds, s, kind, occ.size(), winner_id});
      // Gen2 QueryAdjust: once the accumulated evidence moves the integer Q,
      // the reader cancels the rest of the frame and re-announces at the new
      // size. Without this, a badly sized frame must be walked to the end
      // and Qfp overshoots by the full frame's worth of updates (a 2^15-slot
      // idle frame after one overloaded round).
      if (adapter.q() != round_q) break;
    }
    ++res.rounds;
  }
  res.complete = unresolved.empty();
  res.final_qfp = adapter.qfp();
  return res;
}

}  // namespace vab::net::anticollision
