// Capture effect for colliding backscatter replies.
//
// When several nodes reflect in one slot, the reader does not always lose
// the slot: if one reply's power dominates the sum of the others plus noise
// by a sufficient margin, its preamble locks the correlator and the slot
// resolves to that node (the "capture effect" RFID Gen2 readers rely on at
// high density). This module is the pure arbitration rule — who, if anyone,
// wins a slot given the received powers — so the conformance suite can pin
// it down independent of any MAC or channel model.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace vab::net::anticollision {

struct CaptureConfig {
  /// Minimum SINR (strongest reply over the sum of the other replies plus
  /// noise) for the strongest reply to capture a multi-occupant slot, in dB.
  double margin_db = 6.0;
  /// Receiver noise power on the same relative scale as the reply powers.
  double noise_power_rel = 0.0;
};

/// Arbitrates one slot. `rx_powers` holds the relative received power of
/// each reply present in the slot (linear scale, >= 0). Returns the index
/// of the winning reply: the sole occupant of a single-occupant slot (if
/// its power is nonzero), or
/// the strongest occupant of a multi-occupant slot when its SINR clears
/// `cfg.margin_db` (ties never capture — equal-power replies jam each
/// other). Returns nullopt for an empty slot or an unresolvable collision.
std::optional<std::size_t> resolve_capture(const std::vector<double>& rx_powers,
                                           const CaptureConfig& cfg);

}  // namespace vab::net::anticollision
