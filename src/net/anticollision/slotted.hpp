// Slotted Q-style inventory MAC with capture effect.
//
// The discovery module (net/discovery.hpp) resolves *addresses* with framed
// slotted Aloha; this module generalises that shape into an inventory-round
// MAC the fleet core can run per window: a frame-synced slot counter, four
// slot outcomes (idle / success / collision / capture), Gen2 floating-Q
// frame-size adaptation, and physical-layer capture arbitration
// (anticollision/capture.hpp) when several nodes reflect in one slot. It
// replaces the fleet transport's window-granular "3 dB per contender" SINR
// penalty with per-slot contention that actually resolves.
//
// Backscatter nodes cannot carrier-sense, so everything — slot boundaries,
// outcome classification, Q updates — lives at the reader; nodes only count
// announced slots and reflect in the one they drew. That is why a scripted
// reader-side trace fully determines the protocol and the conformance suite
// can assert it step by step.
//
// Determinism: each round draws one uniform_int slot per unresolved
// contender, in ascending contender order, then one delivery coin per
// decode attempt (winner of each non-idle slot), in ascending slot order.
// A round ends early (Gen2 QueryAdjust) when the integer Q moves: the
// remaining slots are never walked, their would-be winners recontend, and
// no coins are drawn for them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/anticollision/capture.hpp"

namespace vab::net::anticollision {

struct QConfig {
  double q_init = 4.0;    ///< starting floating Q (frame = 2^round(Q) slots)
  double q_min = 0.0;
  double q_max = 15.0;
  double c_up = 0.35;     ///< added to Qfp per collision slot
  double c_down = 0.25;   ///< subtracted per idle slot
  CaptureConfig capture;  ///< physical-layer slot arbitration
  std::size_t max_rounds = 64;
  bool record_trace = false;  ///< keep the per-slot trace (conformance tests)
};

enum class SlotKind : std::uint8_t { kIdle, kSuccess, kCollision, kCapture };

/// One node contending for inventory slots.
struct Contender {
  std::uint16_t id = 0;
  double rx_power_rel = 1.0;   ///< received reply power (linear, relative)
  double delivery_prob = 1.0;  ///< P(winning reply decodes) at its link SNR
};

/// One slot of the reader-side trace (record_trace only).
struct SlotRecord {
  std::size_t round = 0;
  std::size_t slot = 0;
  SlotKind kind = SlotKind::kIdle;
  std::size_t occupants = 0;
  std::uint16_t winner = 0;  ///< meaningful for kSuccess / kCapture
};

struct SlottedResult {
  std::size_t rounds = 0;
  std::size_t slots = 0;
  std::size_t idle_slots = 0;
  std::size_t success_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t capture_slots = 0;
  std::size_t decode_failures = 0;  ///< winner's reply failed its coin
  std::vector<std::uint16_t> resolved;  ///< resolution order
  bool complete = false;  ///< every contender resolved within max_rounds
  double final_qfp = 0.0;
  std::vector<SlotRecord> trace;

  /// Conservation invariant: every slot is exactly one of the four kinds.
  bool conserves() const {
    return idle_slots + success_slots + collision_slots + capture_slots == slots;
  }
};

/// Reader-side floating-Q state machine (EPC Gen2 shape). Pure protocol
/// logic with no channel model, so scripted traces pin it exactly.
class QAdapter {
 public:
  explicit QAdapter(const QConfig& cfg);

  /// Current integer Q (Qfp rounded to nearest, clamped).
  std::uint8_t q() const;
  std::size_t frame_slots() const { return std::size_t{1} << q(); }
  double qfp() const { return qfp_; }

  /// Folds one classified slot into Qfp: collision -> +c_up, idle ->
  /// -c_down, success/capture -> unchanged.
  void on_slot(SlotKind kind);

 private:
  QConfig cfg_;
  double qfp_;
};

/// Runs slotted inventory until every contender is resolved or
/// `cfg.max_rounds` frames elapse. Draw order is documented in the header
/// comment; obs counters `net.slotted.*` record slot outcomes.
SlottedResult run_slotted_inventory(const std::vector<Contender>& contenders,
                                    const QConfig& cfg, common::Rng& rng);

}  // namespace vab::net::anticollision
