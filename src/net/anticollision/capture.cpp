#include "net/anticollision/capture.hpp"

#include <cmath>

namespace vab::net::anticollision {

std::optional<std::size_t> resolve_capture(const std::vector<double>& rx_powers,
                                           const CaptureConfig& cfg) {
  if (rx_powers.empty()) return std::nullopt;
  if (rx_powers.size() == 1) return rx_powers[0] > 0.0
                                        ? std::optional<std::size_t>(0)
                                        : std::nullopt;
  std::size_t best = 0;
  double total = 0.0;
  bool tied = false;
  for (std::size_t i = 0; i < rx_powers.size(); ++i) {
    total += rx_powers[i];
    if (rx_powers[i] > rx_powers[best]) {
      best = i;
      tied = false;
    } else if (i != best && rx_powers[i] == rx_powers[best]) {
      tied = true;
    }
  }
  // Equal-power replies jam each other regardless of the margin: neither
  // preamble can lock the correlator.
  if (tied || rx_powers[best] <= 0.0) return std::nullopt;
  const double interference = (total - rx_powers[best]) + cfg.noise_power_rel;
  if (interference <= 0.0) return best;  // lone nonzero reply, no noise
  const double sinr_db = 10.0 * std::log10(rx_powers[best] / interference);
  if (sinr_db >= cfg.margin_db) return best;
  return std::nullopt;
}

}  // namespace vab::net::anticollision
