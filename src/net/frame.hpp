// VAB link-layer frame format.
//
// Uplink frames ride on the FM0 backscatter PHY; downlink commands ride on
// PIE. Both use the same byte layout:
//   [addr:1][type:1][seq:1][len:1][payload:len][crc16:2]
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace vab::net {

/// Broadcast address (all nodes).
inline constexpr std::uint8_t kBroadcastAddr = 0xFF;

enum class FrameType : std::uint8_t {
  kQuery = 0x01,        ///< reader -> node: report your sensor data
  kQueryAll = 0x02,     ///< reader -> all: TDMA round announcement
  kSensorReport = 0x10, ///< node -> reader: sensor payload
  kAck = 0x20,          ///< reader -> node: report received
  kAssignSlot = 0x30,   ///< reader -> node: TDMA slot assignment
};

struct Frame {
  std::uint8_t addr = 0;     ///< destination (downlink) or source (uplink)
  FrameType type = FrameType::kQuery;
  std::uint8_t seq = 0;
  bytes payload;

  /// Serialized size in bytes including CRC.
  std::size_t wire_size() const { return 4 + payload.size() + 2; }
};

/// Serializes with CRC appended.
bytes serialize(const Frame& f);

/// Serialized frame as bits (MSB-first), ready for the PHY.
bitvec serialize_bits(const Frame& f);

/// Parses and CRC-checks; nullopt on malformed/corrupt input.
std::optional<Frame> parse(const bytes& wire);
std::optional<Frame> parse_bits(const bitvec& wire_bits);

/// Maximum payload bytes (len field is one byte).
inline constexpr std::size_t kMaxPayload = 255;

}  // namespace vab::net
