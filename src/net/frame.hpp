// VAB link-layer frame format.
//
// Uplink frames ride on the FM0 backscatter PHY; downlink commands ride on
// PIE. Both use the same byte layout:
//   [addr:1][type:1][seq:1][len:1][payload:len][crc16:2]
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace vab::net {

/// Broadcast address (all nodes).
inline constexpr std::uint8_t kBroadcastAddr = 0xFF;

enum class FrameType : std::uint8_t {
  kQuery = 0x01,        ///< reader -> node: report your sensor data
  kQueryAll = 0x02,     ///< reader -> all: TDMA round announcement
  kSensorReport = 0x10, ///< node -> reader: sensor payload
  kAck = 0x20,          ///< reader -> node: report received
  kAssignSlot = 0x30,   ///< reader -> node: TDMA slot assignment
};

struct Frame {
  std::uint8_t addr = 0;     ///< destination (downlink) or source (uplink)
  FrameType type = FrameType::kQuery;
  std::uint8_t seq = 0;
  bytes payload;

  /// Serialized size in bytes including CRC.
  std::size_t wire_size() const { return 4 + payload.size() + 2; }
};

/// Serializes with CRC appended.
bytes serialize(const Frame& f);

/// Serialized frame as bits (MSB-first), ready for the PHY.
bitvec serialize_bits(const Frame& f);

/// Why a wire buffer failed to parse. Every rejection is classified before
/// any payload byte is read, so malformed length fields can never index
/// past the buffer.
enum class ParseError : std::uint8_t {
  kOk = 0,
  kTooShort,        ///< shorter than header + CRC (truncated frame)
  kTooLong,         ///< longer than header + kMaxPayload + CRC
  kBadCrc,          ///< CRC-16 mismatch (corruption)
  kLengthMismatch,  ///< len field disagrees with the buffer size
  kBadType,         ///< type byte is not a known FrameType
};

/// Human-readable name for a ParseError (logs and test failure messages).
const char* parse_error_name(ParseError e);

struct ParseResult {
  std::optional<Frame> frame;       ///< engaged iff error == kOk
  ParseError error = ParseError::kOk;
};

/// Parses with explicit error classification; `frame` is engaged only when
/// every structural check and the CRC pass.
ParseResult parse_checked(const bytes& wire);

/// Parses and CRC-checks; nullopt on malformed/corrupt input.
std::optional<Frame> parse(const bytes& wire);
std::optional<Frame> parse_bits(const bitvec& wire_bits);

/// Maximum payload bytes (len field is one byte).
inline constexpr std::size_t kMaxPayload = 255;
/// Smallest/largest possible wire frames: header + [0, kMaxPayload] + CRC.
inline constexpr std::size_t kMinWireSize = 4 + 2;
inline constexpr std::size_t kMaxWireSize = 4 + kMaxPayload + 2;

}  // namespace vab::net
