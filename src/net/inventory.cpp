#include "net/inventory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::net {

namespace {

double downlink_duration_s(const MacTiming& t, const Frame& f) {
  return static_cast<double>(f.wire_size() * 8) / t.downlink_bitrate_bps;
}

}  // namespace

PollOutcome poll_exchange(ReaderMac& reader, NodeMac& node,
                          const SensorReading& reading, const InventoryConfig& cfg,
                          LinkTransport& transport, fault::FaultInjector* fault,
                          common::Rng& rng, InventoryResult& res) {
  const MacTiming& t = cfg.timing;
  const Frame query = reader.make_query(node.address());
  ++res.polls;
  res.duration_s += downlink_duration_s(t, query);

  // Downlink: a duty-cycled node can sleep through the query, a dropped-out
  // node is dark for the whole exchange, and the transport may eat the
  // query outright (the default transport never does).
  if (fault && (fault->dropped_out() || fault->wake_missed())) {
    res.duration_s += t.reply_timeout_s();
    return PollOutcome::kMiss;
  }
  if (!transport.downlink_delivered(node.address(), rng)) {
    res.duration_s += t.reply_timeout_s();
    return PollOutcome::kMiss;
  }

  auto response = node.on_downlink(query, reading);
  if (!response) {
    res.duration_s += t.reply_timeout_s();
    return PollOutcome::kMiss;
  }
  res.duration_s += t.guard_s + t.slot_duration_s();

  // Uplink: the transport decides survival (clean-channel i.i.d. loss by
  // default, SNR-derived frame loss or a waveform decode in the fleet),
  // then burst loss, frame corruption, and clock skew pushing the reply
  // out of the reader's slot window.
  bytes wire = serialize(response->frame);
  if (!transport.uplink_delivered(node.address(), wire, rng))
    return PollOutcome::kMiss;
  if (fault && fault->reply_lost()) return PollOutcome::kMiss;
  if (fault) {
    if (fault->corrupt_frame(wire) == fault::FrameFate::kDropped)
      return PollOutcome::kMiss;
    const double skew = fault->clock_skew_s(t.slot_duration_s());
    if (std::abs(skew) > t.reply_timeout_s() - t.slot_duration_s())
      return PollOutcome::kMiss;
  }
  const ParseResult parsed = parse_checked(wire);
  if (!parsed.frame || parsed.frame->type != FrameType::kSensorReport)
    return PollOutcome::kMiss;

  const ReaderMac::UplinkEvent ev = reader.on_report(*parsed.frame);

  // ACK downlink (both for fresh and duplicate reports); a lost ACK leaves
  // the node awaiting and the next poll returns a deduped duplicate.
  const Frame ack = reader.make_ack(parsed.frame->addr, parsed.frame->seq);
  ++res.acks_sent;
  res.duration_s += downlink_duration_s(t, ack);
  const bool ack_lost = !transport.ack_delivered(node.address(), rng) ||
                        (fault && fault->wake_missed());
  if (ack_lost) {
    ++res.acks_lost;
  } else {
    node.on_downlink(ack, reading);
  }
  return ev == ReaderMac::UplinkEvent::kDuplicate ? PollOutcome::kDuplicate
                                                  : PollOutcome::kDelivered;
}

InventoryResult run_inventory(const std::vector<std::uint8_t>& population,
                              const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng,
                              LinkTransport* transport) {
  if (population.empty()) throw std::invalid_argument("empty population");
  VAB_STAGE("net.inventory");

  InventoryResult res;
  res.nodes = population.size();
  ReaderMac reader(cfg.timing, cfg.arq);
  std::vector<NodeMac> nodes;
  nodes.reserve(population.size());
  for (auto addr : population) nodes.emplace_back(addr, cfg.timing);

  std::vector<std::size_t> pending(population.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  IidLossTransport default_transport(cfg.reply_loss_prob, cfg.ack_loss_prob);
  LinkTransport& medium = transport ? *transport : default_transport;
  const double slot_s = cfg.timing.slot_duration_s();

  while (!pending.empty() && res.polls < cfg.max_polls) {
    VAB_SPAN("net.inventory.round");
    ++res.rounds;
    std::vector<std::size_t> still_pending;
    for (std::size_t idx : pending) {
      NodeMac& node = nodes[idx];
      // Each node reports its current reading; the payload content does not
      // influence the protocol, only the frame length does.
      const SensorReading reading{12.0 + static_cast<double>(node.address()), 101.3,
                                  2900};
      bool done = false;
      bool demoted = false;
      // Stop-and-wait with a per-report retry budget: first attempt plus
      // cfg.arq.max_retries re-polls with exponential backoff.
      for (std::size_t attempt = 0; attempt <= cfg.arq.max_retries; ++attempt) {
        if (res.polls >= cfg.max_polls) break;
        const PollOutcome out =
            poll_exchange(reader, node, reading, cfg, medium, fault, rng, res);
        if (out == PollOutcome::kDelivered || out == PollOutcome::kDuplicate) {
          // A duplicate means the previous report *was* received: the node
          // is inventoried either way once the ACK finally lands.
          done = true;
          break;
        }
        const ReaderMac::MissAction action = reader.on_miss(node.address());
        ++res.timeouts;
        if (action == ReaderMac::MissAction::kDemote) {
          reader.demote(node.address());
          ++res.demotions;
          demoted = true;
          break;
        }
        if (attempt < cfg.arq.max_retries) {
          ++res.retries;
          res.duration_s +=
              static_cast<double>(reader.backoff_slots(node.address())) * slot_s;
        }
      }
      if (done) {
        ++res.delivered;
      } else if (demoted) {
        // Re-discovery: the node is re-acquired via slotted Aloha at a fixed
        // airtime cost and rejoins the pending set with fresh ARQ state.
        res.duration_s += static_cast<double>(cfg.rediscovery_penalty_slots) * slot_s;
        ++res.rediscoveries;
        still_pending.push_back(idx);
      } else {
        // Retry budget spent: park the node and come back next round.
        ++res.budget_exhaustions;
        still_pending.push_back(idx);
      }
    }
    pending = std::move(still_pending);
  }

  res.complete = res.delivered == res.nodes;
  res.duplicates = 0;
  for (const auto& [addr, st] : reader.stats()) res.duplicates += st.duplicates;
  return res;
}

}  // namespace vab::net
