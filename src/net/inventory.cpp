#include "net/inventory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::net {

namespace {

double downlink_duration_s(const MacTiming& t, const Frame& f) {
  return static_cast<double>(f.wire_size() * 8) / t.downlink_bitrate_bps;
}

}  // namespace

PollOutcome poll_exchange(ReaderMac& reader, NodeMac& node,
                          const SensorReading& reading, const InventoryConfig& cfg,
                          LinkTransport& transport, fault::FaultInjector* fault,
                          common::Rng& rng, InventoryResult& res) {
  const MacTiming& t = cfg.timing;
  // In MCS mode the slot window follows the commanded rung (slower rungs
  // get longer slots); fixed-rate mode keeps the MacTiming values exactly.
  const mcs::McsEntry* entry =
      reader.mcs_enabled() ? reader.uplink_entry(node.address()) : nullptr;
  const double slot_s =
      entry ? entry->slot_duration(t.slot_payload_bytes).raw() : t.slot_duration_s();
  const double timeout_s = entry ? 1.5 * slot_s : t.reply_timeout_s();
  // Feeds the poll outcome into the node's rate controller. Only polls that
  // reached the uplink leg carry channel information: the reader's
  // correlator measured the slot window, so even a failed decode yields an
  // SNR sample when the transport measures one.
  const auto observe = [&](bool delivered) {
    if (entry == nullptr) return;
    reader.observe_link(node.address(), transport.last_uplink_snr_db(), delivered);
  };
  const Frame query = reader.make_query(node.address());
  ++res.polls;
  res.duration_s += downlink_duration_s(t, query);

  // Downlink: a duty-cycled node can sleep through the query, a dropped-out
  // node is dark for the whole exchange, and the transport may eat the
  // query outright (the default transport never does). A dark node tells
  // the rate controller nothing, so these paths do not observe.
  if (fault && (fault->dropped_out() || fault->wake_missed())) {
    res.duration_s += timeout_s;
    return PollOutcome::kMiss;
  }
  if (!transport.downlink_delivered(node.address(), rng)) {
    res.duration_s += timeout_s;
    return PollOutcome::kMiss;
  }

  auto response = node.on_downlink(query, reading);
  if (!response) {
    res.duration_s += timeout_s;
    return PollOutcome::kMiss;
  }
  res.duration_s += t.guard_s + slot_s;

  // Uplink: the transport decides survival (clean-channel i.i.d. loss by
  // default, SNR-derived frame loss or a waveform decode in the fleet),
  // then burst loss, frame corruption, and clock skew pushing the reply
  // out of the reader's slot window.
  bytes wire = serialize(response->frame);
  if (entry != nullptr) transport.set_uplink_mcs(node.address(), entry);
  if (!transport.uplink_delivered(node.address(), wire, rng)) {
    observe(false);
    return PollOutcome::kMiss;
  }
  if (fault && fault->reply_lost()) {
    observe(false);
    return PollOutcome::kMiss;
  }
  if (fault) {
    if (fault->corrupt_frame(wire) == fault::FrameFate::kDropped) {
      observe(false);
      return PollOutcome::kMiss;
    }
    const double skew = fault->clock_skew_s(slot_s);
    if (std::abs(skew) > timeout_s - slot_s) {
      observe(false);
      return PollOutcome::kMiss;
    }
  }
  const ParseResult parsed = parse_checked(wire);
  if (!parsed.frame || parsed.frame->type != FrameType::kSensorReport) {
    observe(false);
    return PollOutcome::kMiss;
  }
  observe(true);

  const ReaderMac::UplinkEvent ev = reader.on_report(*parsed.frame);

  // ACK downlink (both for fresh and duplicate reports); a lost ACK leaves
  // the node awaiting and the next poll returns a deduped duplicate.
  const Frame ack = reader.make_ack(parsed.frame->addr, parsed.frame->seq);
  ++res.acks_sent;
  res.duration_s += downlink_duration_s(t, ack);
  const bool ack_lost = !transport.ack_delivered(node.address(), rng) ||
                        (fault && fault->wake_missed());
  if (ack_lost) {
    ++res.acks_lost;
  } else {
    node.on_downlink(ack, reading);
  }
  return ev == ReaderMac::UplinkEvent::kDuplicate ? PollOutcome::kDuplicate
                                                  : PollOutcome::kDelivered;
}

InventoryResult run_inventory(const std::vector<std::uint8_t>& population,
                              const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng,
                              LinkTransport* transport) {
  if (population.empty()) throw std::invalid_argument("empty population");
  VAB_STAGE("net.inventory");

  InventoryResult res;
  res.nodes = population.size();
  ReaderMac reader(cfg.timing, cfg.arq);
  std::vector<NodeMac> nodes;
  nodes.reserve(population.size());
  for (auto addr : population) nodes.emplace_back(addr, cfg.timing);
  if (cfg.ladder != nullptr) {
    reader.enable_mcs(*cfg.ladder, cfg.adapt);
    for (auto& n : nodes) n.enable_mcs(*cfg.ladder);
  }

  std::vector<std::size_t> pending(population.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  IidLossTransport default_transport(cfg.reply_loss_prob, cfg.ack_loss_prob);
  LinkTransport& medium = transport ? *transport : default_transport;
  const double slot_s = cfg.timing.slot_duration_s();

  while (!pending.empty() && res.polls < cfg.max_polls) {
    VAB_SPAN("net.inventory.round");
    ++res.rounds;
    std::vector<std::size_t> still_pending;
    for (std::size_t idx : pending) {
      NodeMac& node = nodes[idx];
      // Each node reports its current reading; the payload content does not
      // influence the protocol, only the frame length does.
      const SensorReading reading{12.0 + static_cast<double>(node.address()), 101.3,
                                  2900};
      bool done = false;
      bool demoted = false;
      // Stop-and-wait with a per-report retry budget: first attempt plus
      // cfg.arq.max_retries re-polls with exponential backoff.
      for (std::size_t attempt = 0; attempt <= cfg.arq.max_retries; ++attempt) {
        if (res.polls >= cfg.max_polls) break;
        const PollOutcome out =
            poll_exchange(reader, node, reading, cfg, medium, fault, rng, res);
        if (out == PollOutcome::kDelivered || out == PollOutcome::kDuplicate) {
          // A duplicate means the previous report *was* received: the node
          // is inventoried either way once the ACK finally lands.
          done = true;
          break;
        }
        const ReaderMac::MissAction action = reader.on_miss(node.address());
        ++res.timeouts;
        if (action == ReaderMac::MissAction::kDemote) {
          reader.demote(node.address());
          ++res.demotions;
          demoted = true;
          break;
        }
        if (attempt < cfg.arq.max_retries) {
          ++res.retries;
          res.duration_s +=
              static_cast<double>(reader.backoff_slots(node.address())) * slot_s;
        }
      }
      if (done) {
        ++res.delivered;
      } else if (demoted) {
        // Re-discovery: the node is re-acquired via slotted Aloha at a fixed
        // airtime cost and rejoins the pending set with fresh ARQ state.
        res.duration_s += static_cast<double>(cfg.rediscovery_penalty_slots) * slot_s;
        ++res.rediscoveries;
        still_pending.push_back(idx);
      } else {
        // Retry budget spent: park the node and come back next round.
        ++res.budget_exhaustions;
        still_pending.push_back(idx);
      }
    }
    pending = std::move(still_pending);
  }

  res.complete = res.delivered == res.nodes;
  res.duplicates = 0;
  for (const auto& [addr, st] : reader.stats()) res.duplicates += st.duplicates;
  res.mcs_steps_up = reader.mcs_steps_up();
  res.mcs_steps_down = reader.mcs_steps_down();
  res.rung_polls = reader.rung_polls();
  for (const auto& n : nodes) res.reconfigures += n.reconfigures();
  return res;
}

double TelemetryResult::goodput_bps() const {
  if (totals.duration_s <= 0.0) return 0.0;
  const double bits =
      static_cast<double>(totals.delivered) * static_cast<double>(kReadingBytes) * 8.0;
  return bits / totals.duration_s;
}

double TelemetryResult::jain_fairness() const {
  if (delivered_per_node.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t d : delivered_per_node) {
    const double x = static_cast<double>(d);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // nothing delivered anywhere: vacuously fair
  return sum * sum / (static_cast<double>(delivered_per_node.size()) * sum_sq);
}

TelemetryResult run_telemetry(const std::vector<std::uint8_t>& population,
                              std::size_t cycles, const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng,
                              LinkTransport* transport) {
  if (population.empty()) throw std::invalid_argument("empty population");
  VAB_STAGE("net.telemetry");

  TelemetryResult tr;
  tr.cycles = cycles;
  tr.delivered_per_node.assign(population.size(), 0);
  InventoryResult& res = tr.totals;
  res.nodes = population.size();

  ReaderMac reader(cfg.timing, cfg.arq);
  std::vector<NodeMac> nodes;
  nodes.reserve(population.size());
  for (auto addr : population) nodes.emplace_back(addr, cfg.timing);
  if (cfg.ladder != nullptr) {
    reader.enable_mcs(*cfg.ladder, cfg.adapt);
    for (auto& n : nodes) n.enable_mcs(*cfg.ladder);
  }

  IidLossTransport default_transport(cfg.reply_loss_prob, cfg.ack_loss_prob);
  LinkTransport& medium = transport ? *transport : default_transport;

  for (std::size_t c = 0; c < cycles; ++c) {
    VAB_SPAN("net.telemetry.cycle");
    ++res.rounds;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const SensorReading reading{12.0 + static_cast<double>(nodes[i].address()),
                                  101.3, 2900};
      const PollOutcome out =
          poll_exchange(reader, nodes[i], reading, cfg, medium, fault, rng, res);
      if (out == PollOutcome::kDelivered) {
        ++res.delivered;
        ++tr.delivered_per_node[i];
      } else if (out == PollOutcome::kMiss) {
        ++res.timeouts;
      }
    }
  }

  res.complete = true;
  for (std::size_t d : tr.delivered_per_node) res.complete = res.complete && d > 0;
  res.duplicates = 0;
  for (const auto& [addr, st] : reader.stats()) res.duplicates += st.duplicates;
  res.mcs_steps_up = reader.mcs_steps_up();
  res.mcs_steps_down = reader.mcs_steps_down();
  res.rung_polls = reader.rung_polls();
  for (const auto& n : nodes) res.reconfigures += n.reconfigures();
  return tr;
}

}  // namespace vab::net
