#include "net/inventory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace vab::net {

namespace {

// One poll of one node: everything that can go wrong on the way down, up,
// and back down with the ACK.
enum class PollOutcome : std::uint8_t { kDelivered, kDuplicate, kMiss };

struct PollContext {
  const InventoryConfig& cfg;
  fault::FaultInjector* fault;
  common::Rng& rng;
  ReaderMac& reader;
  InventoryResult& res;
};

double downlink_duration_s(const MacTiming& t, const Frame& f) {
  return static_cast<double>(f.wire_size() * 8) / t.downlink_bitrate_bps;
}

PollOutcome poll_once(PollContext& ctx, NodeMac& node, const SensorReading& reading) {
  const MacTiming& t = ctx.cfg.timing;
  const Frame query = ctx.reader.make_query(node.address());
  ++ctx.res.polls;
  ctx.res.duration_s += downlink_duration_s(t, query);

  // Downlink: a duty-cycled node can sleep through the query, a dropped-out
  // node is dark for the whole exchange.
  if (ctx.fault && (ctx.fault->dropped_out() || ctx.fault->wake_missed())) {
    ctx.res.duration_s += t.reply_timeout_s();
    return PollOutcome::kMiss;
  }

  auto response = node.on_downlink(query, reading);
  if (!response) {
    ctx.res.duration_s += t.reply_timeout_s();
    return PollOutcome::kMiss;
  }
  ctx.res.duration_s += t.guard_s + t.slot_duration_s();

  // Uplink: clean-channel i.i.d. loss, burst loss, frame corruption, and
  // clock skew pushing the reply out of the reader's slot window.
  if (ctx.rng.coin(ctx.cfg.reply_loss_prob)) return PollOutcome::kMiss;
  if (ctx.fault && ctx.fault->reply_lost()) return PollOutcome::kMiss;
  bytes wire = serialize(response->frame);
  if (ctx.fault) {
    if (ctx.fault->corrupt_frame(wire) == fault::FrameFate::kDropped)
      return PollOutcome::kMiss;
    const double skew = ctx.fault->clock_skew_s(t.slot_duration_s());
    if (std::abs(skew) > t.reply_timeout_s() - t.slot_duration_s())
      return PollOutcome::kMiss;
  }
  const ParseResult parsed = parse_checked(wire);
  if (!parsed.frame || parsed.frame->type != FrameType::kSensorReport)
    return PollOutcome::kMiss;

  const ReaderMac::UplinkEvent ev = ctx.reader.on_report(*parsed.frame);

  // ACK downlink (both for fresh and duplicate reports); a lost ACK leaves
  // the node awaiting and the next poll returns a deduped duplicate.
  const Frame ack = ctx.reader.make_ack(parsed.frame->addr, parsed.frame->seq);
  ++ctx.res.acks_sent;
  ctx.res.duration_s += downlink_duration_s(t, ack);
  const bool ack_lost = ctx.rng.coin(ctx.cfg.ack_loss_prob) ||
                        (ctx.fault && ctx.fault->wake_missed());
  if (ack_lost) {
    ++ctx.res.acks_lost;
  } else {
    node.on_downlink(ack, reading);
  }
  return ev == ReaderMac::UplinkEvent::kDuplicate ? PollOutcome::kDuplicate
                                                  : PollOutcome::kDelivered;
}

}  // namespace

InventoryResult run_inventory(const std::vector<std::uint8_t>& population,
                              const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng) {
  if (population.empty()) throw std::invalid_argument("empty population");
  VAB_STAGE("net.inventory");

  InventoryResult res;
  res.nodes = population.size();
  ReaderMac reader(cfg.timing, cfg.arq);
  std::vector<NodeMac> nodes;
  nodes.reserve(population.size());
  for (auto addr : population) nodes.emplace_back(addr, cfg.timing);

  std::vector<std::size_t> pending(population.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  PollContext ctx{cfg, fault, rng, reader, res};
  const double slot_s = cfg.timing.slot_duration_s();

  while (!pending.empty() && res.polls < cfg.max_polls) {
    VAB_SPAN("net.inventory.round");
    ++res.rounds;
    std::vector<std::size_t> still_pending;
    for (std::size_t idx : pending) {
      NodeMac& node = nodes[idx];
      // Each node reports its current reading; the payload content does not
      // influence the protocol, only the frame length does.
      const SensorReading reading{12.0 + static_cast<double>(node.address()), 101.3,
                                  2900};
      bool done = false;
      bool demoted = false;
      // Stop-and-wait with a per-report retry budget: first attempt plus
      // cfg.arq.max_retries re-polls with exponential backoff.
      for (std::size_t attempt = 0; attempt <= cfg.arq.max_retries; ++attempt) {
        if (res.polls >= cfg.max_polls) break;
        const PollOutcome out = poll_once(ctx, node, reading);
        if (out == PollOutcome::kDelivered || out == PollOutcome::kDuplicate) {
          // A duplicate means the previous report *was* received: the node
          // is inventoried either way once the ACK finally lands.
          done = true;
          break;
        }
        const ReaderMac::MissAction action = reader.on_miss(node.address());
        ++res.timeouts;
        if (action == ReaderMac::MissAction::kDemote) {
          reader.demote(node.address());
          ++res.demotions;
          demoted = true;
          break;
        }
        if (attempt < cfg.arq.max_retries) {
          ++res.retries;
          res.duration_s +=
              static_cast<double>(reader.backoff_slots(node.address())) * slot_s;
        }
      }
      if (done) {
        ++res.delivered;
      } else if (demoted) {
        // Re-discovery: the node is re-acquired via slotted Aloha at a fixed
        // airtime cost and rejoins the pending set with fresh ARQ state.
        res.duration_s += static_cast<double>(cfg.rediscovery_penalty_slots) * slot_s;
        ++res.rediscoveries;
        still_pending.push_back(idx);
      } else {
        // Retry budget spent: park the node and come back next round.
        ++res.budget_exhaustions;
        still_pending.push_back(idx);
      }
    }
    pending = std::move(still_pending);
  }

  res.complete = res.delivered == res.nodes;
  res.duplicates = 0;
  for (const auto& [addr, st] : reader.stats()) res.duplicates += st.duplicates;
  return res;
}

}  // namespace vab::net
