// Reader-driven ARQ inventory: collect one ACKed sensor report from every
// node, under an impaired channel.
//
// This is the protocol-level engine behind the hostile-channel workload: it
// drives real NodeMac/ReaderMac state machines (serialized frames, CRC,
// seq-deduped stop-and-wait ARQ) over an abstract lossy channel, with all
// impairments supplied by a nullable fault::FaultInjector. The reader polls
// pending nodes round-robin; every miss retries with exponential backoff up
// to a per-report budget, and a node missing too many consecutive polls is
// demoted to re-discovery (costed as extra airtime) instead of stalling the
// whole inventory. Deterministic: one Rng for the clean channel, one
// injector stream for the faults, no wall-clock anywhere.
//
// The medium is pluggable: every leg of the exchange crosses a
// net::LinkTransport, so the same ARQ engine runs over the i.i.d. loss
// floor (the default), a link-budget abstraction, or the waveform pipeline
// (see src/sim/fleet).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "net/mac.hpp"
#include "net/mcs/adapt.hpp"
#include "net/transport.hpp"

namespace vab::net {

struct InventoryConfig {
  MacTiming timing{};
  ArqConfig arq{};
  /// Clean-channel i.i.d. loss probabilities (fading floor); burst loss and
  /// frame corruption come from the fault injector.
  double reply_loss_prob = 0.0;  ///< uplink report eaten by the channel
  double ack_loss_prob = 0.0;    ///< downlink ACK eaten by the channel
  /// Airtime charged when a demoted node is re-acquired via discovery.
  std::size_t rediscovery_penalty_slots = 4;
  /// Hard bound on reader polls; an inventory that cannot complete (e.g.
  /// a permanently dark node) terminates here with complete = false.
  std::size_t max_polls = 4096;
  /// Rate adaptation: when non-null, reader and nodes run the MCS ladder
  /// (queries carry the commanded rung, uplink airtime and the transport's
  /// delivery curve follow it). Null keeps every legacy code path — and
  /// every seeded outcome — bit-identical.
  const mcs::McsLadder* ladder = nullptr;
  mcs::AdaptConfig adapt{};
};

struct InventoryResult {
  std::size_t nodes = 0;
  std::size_t delivered = 0;       ///< nodes whose report was accepted
  std::size_t polls = 0;           ///< QUERY frames sent
  std::size_t retries = 0;         ///< re-polls after a miss
  std::size_t timeouts = 0;        ///< reply windows that expired or failed CRC
  std::size_t duplicates = 0;      ///< retransmissions deduped by seq
  std::size_t acks_sent = 0;
  std::size_t acks_lost = 0;
  std::size_t demotions = 0;       ///< nodes handed back to discovery
  std::size_t rediscoveries = 0;   ///< demoted nodes re-acquired
  std::size_t budget_exhaustions = 0;  ///< per-report retry budgets spent
  std::size_t rounds = 0;          ///< passes over the pending list
  double duration_s = 0.0;         ///< simulated airtime
  bool complete = false;           ///< every node delivered
  /// MCS accounting (all zero when InventoryConfig::ladder is null).
  std::size_t mcs_steps_up = 0;
  std::size_t mcs_steps_down = 0;
  std::size_t reconfigures = 0;    ///< node-side modem/FEC reconfigurations
  std::map<std::size_t, std::size_t> rung_polls;  ///< polls per rung index

  double delivery_ratio() const {
    return nodes ? static_cast<double>(delivered) / static_cast<double>(nodes) : 0.0;
  }
};

/// Outcome of one query -> report -> ACK exchange with one node.
enum class PollOutcome : std::uint8_t {
  kDelivered,  ///< fresh report accepted and counted
  kDuplicate,  ///< retransmission deduped by seq (node is inventoried)
  kMiss,       ///< no decodable reply inside the slot window
};

/// Runs one poll exchange between `reader` and `node` over `transport`,
/// accumulating protocol counters (polls, ACK accounting) and airtime into
/// `res`. This is the unit step both `run_inventory` and the fleet
/// simulator's event loop drive; `fault` may be null.
PollOutcome poll_exchange(ReaderMac& reader, NodeMac& node,
                          const SensorReading& reading, const InventoryConfig& cfg,
                          LinkTransport& transport, fault::FaultInjector* fault,
                          common::Rng& rng, InventoryResult& res);

/// Runs the ARQ inventory over `population` (node addresses). `fault` may
/// be null; with a null hook (or an empty plan) and zero loss probabilities
/// the inventory completes in exactly one poll per node. When `transport`
/// is null the clean channel is the historical i.i.d. loss model built
/// from cfg.{reply_loss_prob, ack_loss_prob}.
InventoryResult run_inventory(const std::vector<std::uint8_t>& population,
                              const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng,
                              LinkTransport* transport = nullptr);

/// Multi-cycle telemetry collection: the rate-adaptation workload. One
/// ReaderMac and one NodeMac per address persist across `cycles` polling
/// sweeps (one poll per node per cycle, no intra-cycle retries — ARQ
/// dedupe still recovers lost ACKs across cycles), so SNR/delivery EWMAs
/// accumulate and rungs actually move. Fixed-rate runs use a null
/// cfg.ladder; goodput and per-node delivery feed the EXT-6 fairness gate.
struct TelemetryResult {
  InventoryResult totals;  ///< protocol counters summed over all cycles
  std::size_t cycles = 0;
  std::vector<std::size_t> delivered_per_node;  ///< indexed like population

  /// Application goodput: ACKed fresh readings x payload bits over airtime.
  double goodput_bps() const;
  /// Jain fairness index over per-node delivered counts (1 = perfectly
  /// fair, 1/n = one node starves the rest).
  double jain_fairness() const;
};

TelemetryResult run_telemetry(const std::vector<std::uint8_t>& population,
                              std::size_t cycles, const InventoryConfig& cfg,
                              fault::FaultInjector* fault, common::Rng& rng,
                              LinkTransport* transport = nullptr);

}  // namespace vab::net
